file(REMOVE_RECURSE
  "CMakeFiles/syntox_cfg.dir/CfgBuilder.cpp.o"
  "CMakeFiles/syntox_cfg.dir/CfgBuilder.cpp.o.d"
  "CMakeFiles/syntox_cfg.dir/CfgDot.cpp.o"
  "CMakeFiles/syntox_cfg.dir/CfgDot.cpp.o.d"
  "libsyntox_cfg.a"
  "libsyntox_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
