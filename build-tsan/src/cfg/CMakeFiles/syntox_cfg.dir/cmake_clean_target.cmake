file(REMOVE_RECURSE
  "libsyntox_cfg.a"
)
