# Empty compiler generated dependencies file for syntox_cfg.
# This may be replaced when dependencies are built.
