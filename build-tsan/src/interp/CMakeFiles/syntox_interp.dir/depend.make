# Empty dependencies file for syntox_interp.
# This may be replaced when dependencies are built.
