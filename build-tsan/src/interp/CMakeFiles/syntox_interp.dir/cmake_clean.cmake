file(REMOVE_RECURSE
  "CMakeFiles/syntox_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/syntox_interp.dir/Interpreter.cpp.o.d"
  "libsyntox_interp.a"
  "libsyntox_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
