file(REMOVE_RECURSE
  "libsyntox_interp.a"
)
