# Empty dependencies file for syntox_frontend.
# This may be replaced when dependencies are built.
