file(REMOVE_RECURSE
  "libsyntox_frontend.a"
)
