file(REMOVE_RECURSE
  "CMakeFiles/syntox_frontend.dir/Ast.cpp.o"
  "CMakeFiles/syntox_frontend.dir/Ast.cpp.o.d"
  "CMakeFiles/syntox_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/syntox_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/syntox_frontend.dir/PaperPrograms.cpp.o"
  "CMakeFiles/syntox_frontend.dir/PaperPrograms.cpp.o.d"
  "CMakeFiles/syntox_frontend.dir/Parser.cpp.o"
  "CMakeFiles/syntox_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/syntox_frontend.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/syntox_frontend.dir/PrettyPrinter.cpp.o.d"
  "CMakeFiles/syntox_frontend.dir/Sema.cpp.o"
  "CMakeFiles/syntox_frontend.dir/Sema.cpp.o.d"
  "libsyntox_frontend.a"
  "libsyntox_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
