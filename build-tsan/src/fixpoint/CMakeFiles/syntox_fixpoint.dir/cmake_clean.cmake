file(REMOVE_RECURSE
  "CMakeFiles/syntox_fixpoint.dir/Wto.cpp.o"
  "CMakeFiles/syntox_fixpoint.dir/Wto.cpp.o.d"
  "libsyntox_fixpoint.a"
  "libsyntox_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
