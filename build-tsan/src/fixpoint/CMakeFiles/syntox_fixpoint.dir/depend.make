# Empty dependencies file for syntox_fixpoint.
# This may be replaced when dependencies are built.
