file(REMOVE_RECURSE
  "libsyntox_fixpoint.a"
)
