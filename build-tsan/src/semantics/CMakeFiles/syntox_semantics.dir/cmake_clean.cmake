file(REMOVE_RECURSE
  "CMakeFiles/syntox_semantics.dir/AbstractStore.cpp.o"
  "CMakeFiles/syntox_semantics.dir/AbstractStore.cpp.o.d"
  "CMakeFiles/syntox_semantics.dir/Analyzer.cpp.o"
  "CMakeFiles/syntox_semantics.dir/Analyzer.cpp.o.d"
  "CMakeFiles/syntox_semantics.dir/ExprSemantics.cpp.o"
  "CMakeFiles/syntox_semantics.dir/ExprSemantics.cpp.o.d"
  "CMakeFiles/syntox_semantics.dir/Interproc.cpp.o"
  "CMakeFiles/syntox_semantics.dir/Interproc.cpp.o.d"
  "CMakeFiles/syntox_semantics.dir/Transfer.cpp.o"
  "CMakeFiles/syntox_semantics.dir/Transfer.cpp.o.d"
  "libsyntox_semantics.a"
  "libsyntox_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
