# Empty compiler generated dependencies file for syntox_semantics.
# This may be replaced when dependencies are built.
