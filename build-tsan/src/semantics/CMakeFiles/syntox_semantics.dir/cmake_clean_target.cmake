file(REMOVE_RECURSE
  "libsyntox_semantics.a"
)
