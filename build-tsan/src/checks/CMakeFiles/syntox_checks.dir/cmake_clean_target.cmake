file(REMOVE_RECURSE
  "libsyntox_checks.a"
)
