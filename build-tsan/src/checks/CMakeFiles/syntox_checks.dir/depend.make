# Empty dependencies file for syntox_checks.
# This may be replaced when dependencies are built.
