file(REMOVE_RECURSE
  "CMakeFiles/syntox_checks.dir/CheckAnalysis.cpp.o"
  "CMakeFiles/syntox_checks.dir/CheckAnalysis.cpp.o.d"
  "libsyntox_checks.a"
  "libsyntox_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
