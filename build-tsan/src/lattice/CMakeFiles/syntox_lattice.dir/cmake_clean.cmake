file(REMOVE_RECURSE
  "CMakeFiles/syntox_lattice.dir/Interval.cpp.o"
  "CMakeFiles/syntox_lattice.dir/Interval.cpp.o.d"
  "libsyntox_lattice.a"
  "libsyntox_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
