# Empty dependencies file for syntox_lattice.
# This may be replaced when dependencies are built.
