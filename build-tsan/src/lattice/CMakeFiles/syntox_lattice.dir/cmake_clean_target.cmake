file(REMOVE_RECURSE
  "libsyntox_lattice.a"
)
