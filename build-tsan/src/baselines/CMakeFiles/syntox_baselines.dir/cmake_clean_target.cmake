file(REMOVE_RECURSE
  "libsyntox_baselines.a"
)
