
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/Baselines.cpp" "src/baselines/CMakeFiles/syntox_baselines.dir/Baselines.cpp.o" "gcc" "src/baselines/CMakeFiles/syntox_baselines.dir/Baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/checks/CMakeFiles/syntox_checks.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/semantics/CMakeFiles/syntox_semantics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cfg/CMakeFiles/syntox_cfg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fixpoint/CMakeFiles/syntox_fixpoint.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lattice/CMakeFiles/syntox_lattice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/frontend/CMakeFiles/syntox_frontend.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/syntox_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
