file(REMOVE_RECURSE
  "CMakeFiles/syntox_baselines.dir/Baselines.cpp.o"
  "CMakeFiles/syntox_baselines.dir/Baselines.cpp.o.d"
  "libsyntox_baselines.a"
  "libsyntox_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
