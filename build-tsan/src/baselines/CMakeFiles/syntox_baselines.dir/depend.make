# Empty dependencies file for syntox_baselines.
# This may be replaced when dependencies are built.
