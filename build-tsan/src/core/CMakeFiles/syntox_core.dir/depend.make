# Empty dependencies file for syntox_core.
# This may be replaced when dependencies are built.
