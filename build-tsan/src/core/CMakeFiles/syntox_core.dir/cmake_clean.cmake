file(REMOVE_RECURSE
  "CMakeFiles/syntox_core.dir/AbstractDebugger.cpp.o"
  "CMakeFiles/syntox_core.dir/AbstractDebugger.cpp.o.d"
  "libsyntox_core.a"
  "libsyntox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
