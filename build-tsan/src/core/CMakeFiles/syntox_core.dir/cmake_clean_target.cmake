file(REMOVE_RECURSE
  "libsyntox_core.a"
)
