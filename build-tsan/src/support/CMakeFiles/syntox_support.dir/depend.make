# Empty dependencies file for syntox_support.
# This may be replaced when dependencies are built.
