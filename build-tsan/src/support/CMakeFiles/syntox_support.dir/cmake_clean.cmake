file(REMOVE_RECURSE
  "CMakeFiles/syntox_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/syntox_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/syntox_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/syntox_support.dir/SourceLoc.cpp.o.d"
  "CMakeFiles/syntox_support.dir/Stats.cpp.o"
  "CMakeFiles/syntox_support.dir/Stats.cpp.o.d"
  "libsyntox_support.a"
  "libsyntox_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
