file(REMOVE_RECURSE
  "libsyntox_support.a"
)
