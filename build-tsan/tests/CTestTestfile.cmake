# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/interval_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/interval_property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/bool_lattice_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/support_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/lexer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parser_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sema_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cfg_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/wto_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/solver_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/interp_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/checks_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/debugger_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/soundness_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/store_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/expr_semantics_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/transfer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/interproc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cfgdot_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/analyzer_options_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/printer_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/endtoend_random_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/transfer_cache_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_solver_test[1]_include.cmake")
