file(REMOVE_RECURSE
  "CMakeFiles/endtoend_random_test.dir/semantics/endtoend_random_test.cpp.o"
  "CMakeFiles/endtoend_random_test.dir/semantics/endtoend_random_test.cpp.o.d"
  "endtoend_random_test"
  "endtoend_random_test.pdb"
  "endtoend_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
