# Empty dependencies file for endtoend_random_test.
# This may be replaced when dependencies are built.
