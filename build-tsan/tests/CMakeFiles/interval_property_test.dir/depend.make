# Empty dependencies file for interval_property_test.
# This may be replaced when dependencies are built.
