file(REMOVE_RECURSE
  "CMakeFiles/interval_property_test.dir/lattice/interval_property_test.cpp.o"
  "CMakeFiles/interval_property_test.dir/lattice/interval_property_test.cpp.o.d"
  "interval_property_test"
  "interval_property_test.pdb"
  "interval_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
