file(REMOVE_RECURSE
  "CMakeFiles/cfgdot_test.dir/cfg/cfgdot_test.cpp.o"
  "CMakeFiles/cfgdot_test.dir/cfg/cfgdot_test.cpp.o.d"
  "cfgdot_test"
  "cfgdot_test.pdb"
  "cfgdot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgdot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
