# Empty dependencies file for cfgdot_test.
# This may be replaced when dependencies are built.
