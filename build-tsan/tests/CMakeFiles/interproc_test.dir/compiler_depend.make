# Empty compiler generated dependencies file for interproc_test.
# This may be replaced when dependencies are built.
