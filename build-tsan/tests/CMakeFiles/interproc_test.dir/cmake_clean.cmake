file(REMOVE_RECURSE
  "CMakeFiles/interproc_test.dir/semantics/interproc_test.cpp.o"
  "CMakeFiles/interproc_test.dir/semantics/interproc_test.cpp.o.d"
  "interproc_test"
  "interproc_test.pdb"
  "interproc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interproc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
