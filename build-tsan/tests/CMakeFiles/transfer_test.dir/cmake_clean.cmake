file(REMOVE_RECURSE
  "CMakeFiles/transfer_test.dir/semantics/transfer_test.cpp.o"
  "CMakeFiles/transfer_test.dir/semantics/transfer_test.cpp.o.d"
  "transfer_test"
  "transfer_test.pdb"
  "transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
