file(REMOVE_RECURSE
  "CMakeFiles/bool_lattice_test.dir/lattice/bool_lattice_test.cpp.o"
  "CMakeFiles/bool_lattice_test.dir/lattice/bool_lattice_test.cpp.o.d"
  "bool_lattice_test"
  "bool_lattice_test.pdb"
  "bool_lattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bool_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
