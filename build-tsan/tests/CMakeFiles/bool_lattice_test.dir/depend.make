# Empty dependencies file for bool_lattice_test.
# This may be replaced when dependencies are built.
