file(REMOVE_RECURSE
  "CMakeFiles/debugger_test.dir/core/debugger_test.cpp.o"
  "CMakeFiles/debugger_test.dir/core/debugger_test.cpp.o.d"
  "debugger_test"
  "debugger_test.pdb"
  "debugger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
