file(REMOVE_RECURSE
  "CMakeFiles/analyzer_options_test.dir/semantics/analyzer_options_test.cpp.o"
  "CMakeFiles/analyzer_options_test.dir/semantics/analyzer_options_test.cpp.o.d"
  "analyzer_options_test"
  "analyzer_options_test.pdb"
  "analyzer_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
