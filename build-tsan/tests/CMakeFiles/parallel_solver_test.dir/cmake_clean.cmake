file(REMOVE_RECURSE
  "CMakeFiles/parallel_solver_test.dir/fixpoint/parallel_solver_test.cpp.o"
  "CMakeFiles/parallel_solver_test.dir/fixpoint/parallel_solver_test.cpp.o.d"
  "parallel_solver_test"
  "parallel_solver_test.pdb"
  "parallel_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
