# Empty dependencies file for transfer_cache_test.
# This may be replaced when dependencies are built.
