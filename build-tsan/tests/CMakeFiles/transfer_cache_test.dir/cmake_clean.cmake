file(REMOVE_RECURSE
  "CMakeFiles/transfer_cache_test.dir/semantics/transfer_cache_test.cpp.o"
  "CMakeFiles/transfer_cache_test.dir/semantics/transfer_cache_test.cpp.o.d"
  "transfer_cache_test"
  "transfer_cache_test.pdb"
  "transfer_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
