file(REMOVE_RECURSE
  "CMakeFiles/expr_semantics_test.dir/semantics/expr_semantics_test.cpp.o"
  "CMakeFiles/expr_semantics_test.dir/semantics/expr_semantics_test.cpp.o.d"
  "expr_semantics_test"
  "expr_semantics_test.pdb"
  "expr_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
