file(REMOVE_RECURSE
  "CMakeFiles/wto_test.dir/fixpoint/wto_test.cpp.o"
  "CMakeFiles/wto_test.dir/fixpoint/wto_test.cpp.o.d"
  "wto_test"
  "wto_test.pdb"
  "wto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
