# Empty compiler generated dependencies file for wto_test.
# This may be replaced when dependencies are built.
