file(REMOVE_RECURSE
  "CMakeFiles/bench_iterations.dir/bench_iterations.cpp.o"
  "CMakeFiles/bench_iterations.dir/bench_iterations.cpp.o.d"
  "bench_iterations"
  "bench_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
