file(REMOVE_RECURSE
  "CMakeFiles/bench_boundcheck.dir/bench_boundcheck.cpp.o"
  "CMakeFiles/bench_boundcheck.dir/bench_boundcheck.cpp.o.d"
  "bench_boundcheck"
  "bench_boundcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boundcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
