# Empty compiler generated dependencies file for bench_boundcheck.
# This may be replaced when dependencies are built.
