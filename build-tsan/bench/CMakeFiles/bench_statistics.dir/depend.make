# Empty dependencies file for bench_statistics.
# This may be replaced when dependencies are built.
