file(REMOVE_RECURSE
  "CMakeFiles/bench_statistics.dir/bench_statistics.cpp.o"
  "CMakeFiles/bench_statistics.dir/bench_statistics.cpp.o.d"
  "bench_statistics"
  "bench_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
