# Empty dependencies file for exception_handling.
# This may be replaced when dependencies are built.
