file(REMOVE_RECURSE
  "CMakeFiles/exception_handling.dir/exception_handling.cpp.o"
  "CMakeFiles/exception_handling.dir/exception_handling.cpp.o.d"
  "exception_handling"
  "exception_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
