# Empty dependencies file for boundcheck_elimination.
# This may be replaced when dependencies are built.
