file(REMOVE_RECURSE
  "CMakeFiles/boundcheck_elimination.dir/boundcheck_elimination.cpp.o"
  "CMakeFiles/boundcheck_elimination.dir/boundcheck_elimination.cpp.o.d"
  "boundcheck_elimination"
  "boundcheck_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundcheck_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
