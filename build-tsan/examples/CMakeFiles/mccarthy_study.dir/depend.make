# Empty dependencies file for mccarthy_study.
# This may be replaced when dependencies are built.
