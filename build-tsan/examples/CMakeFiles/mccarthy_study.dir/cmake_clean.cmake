file(REMOVE_RECURSE
  "CMakeFiles/mccarthy_study.dir/mccarthy_study.cpp.o"
  "CMakeFiles/mccarthy_study.dir/mccarthy_study.cpp.o.d"
  "mccarthy_study"
  "mccarthy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccarthy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
