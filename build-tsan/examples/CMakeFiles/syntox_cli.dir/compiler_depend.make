# Empty compiler generated dependencies file for syntox_cli.
# This may be replaced when dependencies are built.
