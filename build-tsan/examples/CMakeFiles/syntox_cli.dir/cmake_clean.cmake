file(REMOVE_RECURSE
  "CMakeFiles/syntox_cli.dir/syntox_cli.cpp.o"
  "CMakeFiles/syntox_cli.dir/syntox_cli.cpp.o.d"
  "syntox_cli"
  "syntox_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syntox_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
