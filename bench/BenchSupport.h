//===- bench/BenchSupport.h - Shared benchmark harness ----------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One harness for the benchmark binaries. Every bench accepts the
/// shared analysis/telemetry flags (parseAnalysisFlags: --strategy=,
/// --threads=, --cache, --trace=FILE, --trace-format=json|chrome,
/// --metrics-json=FILE, ...) plus
///
///   --out=FILE   machine-readable report path (default BENCH_<name>.json)
///
/// and writes a JSON report holding its table rows, the per-phase
/// breakdown of every analysis routed through the harness, and the
/// metrics snapshot accumulated across them — so successive PRs can
/// track per-phase trajectories, not just end-to-end seconds.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_BENCH_BENCHSUPPORT_H
#define SYNTOX_BENCH_BENCHSUPPORT_H

#include "core/AbstractDebugger.h"
#include "core/AnalysisFlags.h"
#include "core/AnalysisRequest.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace syntox {
namespace bench {

class Harness {
public:
  Harness(const char *BenchName, int Argc, char **Argv)
      : Name(BenchName),
        OutPath(std::string("BENCH_") + BenchName + ".json") {
    std::vector<std::string> Args(Argv + 1, Argv + Argc);
    std::string Error;
    if (!parseAnalysisFlags(Args, BaseOpts, Telem, Error)) {
      std::fprintf(stderr, "bench_%s: %s\n%s", Name.c_str(), Error.c_str(),
                   analysisFlagsHelp());
      std::exit(2);
    }
    for (std::string &Arg : Args) {
      if (Arg.rfind("--out=", 0) == 0) {
        OutPath = Arg.substr(6);
      } else if (Arg == "--help" || Arg == "-h") {
        std::fprintf(stderr,
                     "usage: bench_%s [options]\n"
                     "  --out=FILE           report path (default %s)\n%s",
                     Name.c_str(), OutPath.c_str(), analysisFlagsHelp());
        std::exit(0);
      } else {
        Rest.push_back(std::move(Arg));
      }
    }
    if (Telem.wantsTrace())
      Trace = std::make_unique<TraceRecorder>(Telem.traceMask());
    Rows = json::Value::array();
    Analyses = json::Value::array();
  }

  /// Command-line arguments the shared parser did not consume.
  const std::vector<std::string> &args() const { return Rest; }

  /// The configuration selected on the command line, with the harness
  /// telemetry attached. Copy and adjust per run.
  AnalysisOptions options() {
    AnalysisOptions O = BaseOpts;
    O.Telem.Metrics = &Metrics;
    O.Telem.Trace = Trace.get();
    return O;
  }

  MetricsRegistry &metrics() { return Metrics; }

  /// Creates and analyzes a fresh debugger for \p Source, timing
  /// analyze() and folding the per-phase breakdown into the report
  /// under \p Label. Returns null after printing on frontend errors.
  std::unique_ptr<AbstractDebugger> analyze(const std::string &Label,
                                            const std::string &Source,
                                            const AnalysisOptions &Opts,
                                            double *Seconds = nullptr) {
    DiagnosticsEngine Diags;
    auto Dbg = AbstractDebugger::create(Source, Diags, Opts);
    if (!Dbg) {
      std::printf("%s: frontend error\n%s", Label.c_str(),
                  Diags.str().c_str());
      return nullptr;
    }
    auto Start = std::chrono::steady_clock::now();
    Dbg->analyze();
    double T = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
    if (Seconds)
      *Seconds = T;
    recordPhases(Label, Dbg->stats(), T);
    return Dbg;
  }

  /// Session-layer counterpart of analyze(): runs \p Source through a
  /// fresh AnalysisSession (the entry path that owns the persistent
  /// CacheDir composition), timing the run and folding the per-phase
  /// breakdown into the report under \p Label. Returns nullopt after
  /// printing on frontend or runtime errors.
  std::optional<AnalysisResult> run(const std::string &Label,
                                    const std::string &Source,
                                    const AnalysisOptions &Opts,
                                    double *Seconds = nullptr) {
    AnalysisRequest R;
    R.Source = Source;
    R.Opts = Opts;
    AnalysisOutcome O = runRequest(std::move(R));
    if (!O.OK) {
      std::printf("%s: %s\n", Label.c_str(), O.Error.c_str());
      return std::nullopt;
    }
    if (Seconds)
      *Seconds = O.Seconds;
    recordPhases(Label, O.Result->stats(), O.Seconds);
    return std::move(O.Result);
  }

  /// Demand-query counterpart of run(): answers \p Spec through a
  /// fresh AnalysisSession (cone-restricted solve; a non-empty
  /// Opts.CacheDir replays the cone from the on-disk cache).
  std::optional<DemandResult> demand(const std::string &Label,
                                     const std::string &Source,
                                     const DemandSpec &Spec,
                                     const AnalysisOptions &Opts,
                                     double *Seconds = nullptr) {
    AnalysisRequest R;
    R.Source = Source;
    R.Opts = Opts;
    R.Query = Spec;
    AnalysisOutcome O = runRequest(std::move(R));
    if (!O.OK) {
      std::printf("%s: %s\n", Label.c_str(), O.Error.c_str());
      return std::nullopt;
    }
    if (Seconds)
      *Seconds = O.Seconds;
    recordPhases(Label, O.Demand->stats(), O.Seconds);
    return std::move(O.Demand);
  }

  /// Appends one per-phase breakdown entry to the report, for benches
  /// that drive the engine (and the stopwatch) themselves.
  void recordPhases(const std::string &Label, const AnalysisStats &S,
                    double Seconds) {
    json::Value E = json::Value::object();
    E.set("label", Label);
    E.set("seconds", Seconds);
    E.set("stats", S.toJson());
    Analyses.push(std::move(E));
  }

  /// Appends one table row to the report.
  void row(json::Value Row) { Rows.push(std::move(Row)); }

  /// Sets an extra top-level field of the report (e.g. a unit note).
  void setField(const std::string &Key, json::Value V) {
    Extra.emplace_back(Key, std::move(V));
  }

  /// Writes BENCH_<name>.json plus any --trace / --metrics-json
  /// outputs. Returns false after printing a message on I/O failure.
  bool write() {
    json::Value Report = json::Value::object();
    Report.set("benchmark", "bench_" + Name);
    // Host provenance: the ROADMAP's deferred multi-core comparisons
    // need reports from different machines to be comparable.
    Report.set("hardware_threads",
               static_cast<int64_t>(std::thread::hardware_concurrency()));
    {
      json::Value Host = json::Value::object();
#if defined(__linux__)
      Host.set("os", "linux");
#elif defined(__APPLE__)
      Host.set("os", "darwin");
#elif defined(_WIN32)
      Host.set("os", "windows");
#else
      Host.set("os", "unknown");
#endif
#if defined(__aarch64__) || defined(_M_ARM64)
      Host.set("arch", "arm64");
#elif defined(__x86_64__) || defined(_M_X64)
      Host.set("arch", "x86_64");
#else
      Host.set("arch", "unknown");
#endif
#if defined(__clang__)
      Host.set("compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
      Host.set("compiler", "gcc " __VERSION__);
#else
      Host.set("compiler", "unknown");
#endif
      Report.set("host", std::move(Host));
    }
    for (auto &KV : Extra)
      Report.set(KV.first, std::move(KV.second));
    Report.set("rows", std::move(Rows));
    Report.set("analyses", std::move(Analyses));
    Report.set("metrics", Metrics.snapshot());
    {
      std::ofstream Out(OutPath);
      if (Out)
        Out << Report.pretty() << '\n';
      if (!Out) {
        std::printf("could not write %s\n", OutPath.c_str());
        return false;
      }
    }
    std::printf("\nwrote %s\n", OutPath.c_str());
    std::string Error;
    if (!writeTelemetryOutputs(Trace.get(), &Metrics, Telem, Error)) {
      std::fprintf(stderr, "bench_%s: %s\n", Name.c_str(), Error.c_str());
      return false;
    }
    return true;
  }

private:
  std::string Name;
  std::string OutPath;
  AnalysisOptions BaseOpts;
  TelemetryFlags Telem;
  std::vector<std::string> Rest;
  MetricsRegistry Metrics;
  std::unique_ptr<TraceRecorder> Trace;
  json::Value Rows;
  json::Value Analyses;
  std::vector<std::pair<std::string, json::Value>> Extra;
};

} // namespace bench
} // namespace syntox

#endif // SYNTOX_BENCH_BENCHSUPPORT_H
