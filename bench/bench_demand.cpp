//===- bench/bench_demand.cpp - E-demand: demand-driven queries -----------===//
//
// Measures demand-driven queries (AbstractDebugger::analyzeDemand)
// against a cold full solve of the same program. Each family carries a
// runtime check / assertion at the far end of its chain, and each row
// is one query:
//
//   loopChain(K)   K sequential counting loops ending in a division
//                  check + assertion. point:front / point:mid queries
//                  demand only the chain prefix; the check:far query is
//                  the honest worst case of a purely sequential
//                  program — everything upstream is in the cone, so
//                  only the post-check tail is skipped (strict subset,
//                  but no meaningful step reduction).
//   dispatchChain(K) a K-arm if/else-if dispatch where every arm holds
//                  one counting loop and the far-end (last) arm ends in
//                  the division check + assertion. The check's cone
//                  holds the dispatch spine plus the one arm that can
//                  reach it: the single far-end assertion query skips
//                  the other K-1 loop bodies entirely.
//   mcCarthy(30)   the paper's McCarthy_30 tower. point:front (after
//                  read) demands nothing of the 30 unfolded instances;
//                  point:result (after m := mc(n)) pulls them all.
//
// Every demand row must satisfy the solved-cone ⊂ all-components claim:
// demanded_components > 0 and skipped_components > 0 (the schedule was
// a strict, non-empty subset). scripts/check.sh enforces that plus the
// >= 2x live-step reductions on loopChain point:front and the
// dispatchChain far-end assertion query.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

using namespace syntox;

namespace {

/// K sequential counting loops (the bench_complexity chain family) with
/// a division check and an invariant assertion appended at the far end.
std::string loopChain(unsigned K) {
  std::string Out = "program gen;\nvar\n";
  for (unsigned I = 0; I < K; ++I)
    Out += "  v" + std::to_string(I) + " : integer;\n";
  Out += "begin\n";
  for (unsigned I = 0; I < K; ++I) {
    std::string V = "v" + std::to_string(I);
    Out += "  " + V + " := 0;\n";
    Out += "  while " + V + " < 100 do " + V + " := " + V + " + 1;\n";
  }
  Out += "  v0 := v0 div v1;\n";
  Out += "  assert(v0 >= 0)\nend.\n";
  return Out;
}

/// A K-arm if/else-if dispatch on an input selector; each arm is one
/// counting loop, and the far-end (last) arm ends in the division
/// check + assertion the benchmark queries.
std::string dispatchChain(unsigned K) {
  std::string Out = "program gen;\nvar\n  s : integer;\n";
  for (unsigned I = 0; I < K; ++I)
    Out += "  v" + std::to_string(I) + " : integer;\n";
  Out += "begin\n  read(s);\n";
  for (unsigned I = 0; I < K; ++I) {
    std::string V = "v" + std::to_string(I);
    Out += I == 0 ? "  if s = 0 then begin\n"
          : I + 1 < K
              ? "  end else if s = " + std::to_string(I) + " then begin\n"
              : "  end else begin\n";
    Out += "    " + V + " := 0;\n";
    Out += "    while " + V + " < 100 do " + V + " := " + V + " + 1;\n";
    if (I + 1 == K) {
      Out += "    " + V + " := " + V + " div s;\n";
      Out += "    assert(" + V + " >= 0)\n";
    }
  }
  Out += "  end\nend.\n";
  return Out;
}

/// 1-based line of the first source line containing \p Needle (0 when
/// absent) — keeps the query locations robust against reformatting.
uint32_t lineOf(const std::string &Source, const std::string &Needle) {
  size_t Hit = Source.find(Needle);
  if (Hit == std::string::npos)
    return 0;
  uint32_t Line = 1;
  for (size_t I = 0; I < Hit; ++I)
    if (Source[I] == '\n')
      ++Line;
  return Line;
}

struct RunNumbers {
  uint64_t LiveEvals = 0; ///< widening + narrowing steps actually run
  uint64_t Demanded = 0;  ///< components scheduled under the cone
  uint64_t Skipped = 0;   ///< components excluded by the cone
  double Seconds = 0;
};

RunNumbers numbersOf(const AnalysisStats &S, double Seconds) {
  RunNumbers N;
  N.Seconds = Seconds;
  N.Demanded = S.DemandedComponents;
  N.Skipped = S.SkippedByDemand;
  for (const PhaseStats &P : S.Phases)
    N.LiveEvals += P.WideningSteps + P.NarrowingSteps;
  return N;
}

/// One demand query against a fresh session; records the per-phase
/// breakdown under \p Label like Harness::run does for full solves.
/// A non-empty \p CacheDir is the IDE scenario: a full solve already
/// populated the on-disk cache, and the query replays its cone from it
/// (the session layer loads it before the cone-restricted solve).
RunNumbers demandRun(bench::Harness &H, const std::string &Label,
                     const std::string &Source, const DemandSpec &Spec,
                     const std::string &CacheDir = std::string()) {
  AnalysisOptions Opts = H.options();
  Opts.CacheDir = CacheDir;
  double Seconds = 0;
  auto R = H.demand(Label, Source, Spec, Opts, &Seconds);
  if (!R)
    return RunNumbers();
  return numbersOf(R->stats(), Seconds);
}

/// The id of the single runtime check of \p Source (the far-end
/// division); the check table exists as soon as the CFG does.
unsigned farCheckId(bench::Harness &H, const std::string &Source) {
  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(Source, Diags, H.options());
  const AbstractDebugger *Probe = Dbg.get();
  if (!Probe || Probe->analyzer().checkTable().empty()) {
    std::printf("no runtime check found\n%s", Diags.str().c_str());
    std::exit(1);
  }
  return Probe->analyzer().checkTable().back().Id;
}

void reportRow(bench::Harness &H, const char *Family, unsigned K,
               const std::string &Query, const RunNumbers &Cold,
               const RunNumbers &Q, const RunNumbers &Warm) {
  std::printf("  %-14s %12llu %12llu %10llu %10llu %10llu\n", Query.c_str(),
              (unsigned long long)Cold.LiveEvals,
              (unsigned long long)Q.LiveEvals,
              (unsigned long long)Warm.LiveEvals,
              (unsigned long long)Q.Demanded, (unsigned long long)Q.Skipped);
  json::Value Row = json::Value::object();
  Row.set("family", Family);
  Row.set("k", K);
  Row.set("query", Query);
  Row.set("cold_evals", Cold.LiveEvals);
  Row.set("demand_evals", Q.LiveEvals);
  Row.set("warm_demand_evals", Warm.LiveEvals);
  Row.set("demanded_components", Q.Demanded);
  Row.set("skipped_components", Q.Skipped);
  Row.set("cold_seconds", Cold.Seconds);
  Row.set("demand_seconds", Q.Seconds);
  Row.set("warm_demand_seconds", Warm.Seconds);
  H.row(std::move(Row));
}

void header(const char *Family, unsigned K) {
  std::printf("%s(%u):\n", Family, K);
  std::printf("  %-14s %12s %12s %10s %10s %10s\n", "query", "cold evals",
              "cold query", "warm query", "demanded", "skipped");
}

/// A fresh per-family cache directory; the family's full solve seeds it
/// and the warm query rows replay from it.
std::string cacheDirFor(const char *Family) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() /
                 ("syntox_bench_demand_" + std::string(Family));
  std::error_code EC;
  fs::remove_all(Dir, EC);
  fs::create_directories(Dir, EC);
  return Dir.string();
}

void dropCacheDir(const std::string &Dir) {
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("demand", argc, argv);
  std::printf("==== E-demand: demand-driven queries vs full solves ====\n\n");
  H.setField("note",
             json::Value("every demand row must schedule a strict non-empty "
                         "subset of components: demanded > 0 and skipped > 0"));

  {
    const unsigned K = 160;
    std::string Source = loopChain(K);
    std::string Cache = cacheDirFor("loopChain");
    AnalysisOptions ColdOpts = H.options();
    ColdOpts.CacheDir = Cache; // seed the warm rows' on-disk cache
    double Seconds = 0;
    auto Cold = H.run("loopChain/cold", Source, ColdOpts, &Seconds);
    RunNumbers ColdN = numbersOf(Cold->stats(), Seconds);
    header("loopChain", K);
    DemandSpec Front =
        DemandSpec::point(SourceLoc(lineOf(Source, "v0 := 0;"), 0));
    reportRow(H, "loopChain", K, "point:front", ColdN,
              demandRun(H, "loopChain/point:front", Source, Front),
              demandRun(H, "loopChain/point:front/warm", Source, Front,
                        Cache));
    DemandSpec Mid = DemandSpec::point(
        SourceLoc(lineOf(Source, "v" + std::to_string(K / 2) + " := 0;"), 0));
    reportRow(H, "loopChain", K, "point:mid", ColdN,
              demandRun(H, "loopChain/point:mid", Source, Mid),
              demandRun(H, "loopChain/point:mid/warm", Source, Mid, Cache));
    DemandSpec Far = DemandSpec::check(farCheckId(H, Source));
    reportRow(H, "loopChain", K, "check:far", ColdN,
              demandRun(H, "loopChain/check:far", Source, Far),
              demandRun(H, "loopChain/check:far/warm", Source, Far, Cache));
    dropCacheDir(Cache);
    std::printf("  (sequential chain: a cold far-end query's cone is the "
                "whole upstream chain\n  — only the post-check tail is "
                "skipped; the warm rows replay the cone from\n  the cache "
                "a prior full solve left on disk)\n\n");
  }

  {
    const unsigned K = 160;
    std::string Source = dispatchChain(K);
    std::string Cache = cacheDirFor("dispatchChain");
    AnalysisOptions ColdOpts = H.options();
    ColdOpts.CacheDir = Cache;
    double Seconds = 0;
    auto Cold = H.run("dispatchChain/cold", Source, ColdOpts, &Seconds);
    RunNumbers ColdN = numbersOf(Cold->stats(), Seconds);
    header("dispatchChain", K);
    DemandSpec Far = DemandSpec::check(farCheckId(H, Source));
    reportRow(H, "dispatchChain", K, "check:far", ColdN,
              demandRun(H, "dispatchChain/check:far", Source, Far),
              demandRun(H, "dispatchChain/check:far/warm", Source, Far,
                        Cache));
    dropCacheDir(Cache);
    std::printf("  (the far-end assertion's cone is the dispatch spine plus "
                "one arm: the\n  other %u loop bodies never run)\n\n", K - 1);
  }

  {
    std::string Source = paper::mcCarthyK(30);
    std::string Cache = cacheDirFor("mcCarthy");
    AnalysisOptions ColdOpts = H.options();
    ColdOpts.CacheDir = Cache;
    double Seconds = 0;
    auto Cold = H.run("mcCarthy/cold", Source, ColdOpts, &Seconds);
    RunNumbers ColdN = numbersOf(Cold->stats(), Seconds);
    header("mcCarthy", 30);
    DemandSpec Front =
        DemandSpec::point(SourceLoc(lineOf(Source, "read(n);"), 0));
    reportRow(H, "mcCarthy", 30, "point:front", ColdN,
              demandRun(H, "mcCarthy/point:front", Source, Front),
              demandRun(H, "mcCarthy/point:front/warm", Source, Front,
                        Cache));
    DemandSpec Result =
        DemandSpec::point(SourceLoc(lineOf(Source, "m := mc(n);"), 0));
    reportRow(H, "mcCarthy", 30, "point:result", ColdN,
              demandRun(H, "mcCarthy/point:result", Source, Result),
              demandRun(H, "mcCarthy/point:result/warm", Source, Result,
                        Cache));
    dropCacheDir(Cache);
    std::printf("  (point:front precedes the recursion: all 30 unfolded "
                "instances are\n  outside the cone)\n\n");
  }

  H.write();
  return 0;
}
