//===- bench/bench_boundcheck.cpp - E3: Figure 3 check elimination --------===//
//
// The Figure 3 / §6.5 experiment: prove array accesses safe, then measure
// the runtime cost of the discharged checks with google-benchmark. The
// paper reports a 30-40% speedup for compiled Pascal; in our interpreter
// the dispatch overhead dilutes the ratio, so the shape to check is a
// consistently positive gap on check-dense programs, together with a
// near-100% static elimination rate for BinarySearch/HeapSort/BubbleSort
// and a partial rate for QuickSort.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"
#include "interp/Interpreter.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace syntox;

namespace {

bench::Harness *Harness = nullptr;

struct Workload {
  std::unique_ptr<AbstractDebugger> Dbg;
  std::vector<int64_t> Inputs;
};

Workload &workload(const char *Name, const char *Source) {
  static std::map<std::string, Workload> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  Workload W;
  W.Dbg = Harness->analyze(Name, Source, Harness->options());
  Rng R(7);
  if (std::string(Name) == "BinarySearch") {
    W.Inputs.push_back(100);
    W.Inputs.push_back(150);
    int64_t V = 0;
    for (int I = 0; I < 100; ++I)
      W.Inputs.push_back(V += R.range(0, 5));
  } else if (std::string(Name) == "Matrix") {
    for (int I = 0; I < 200; ++I)
      W.Inputs.push_back(R.range(-20, 20));
  } else {
    W.Inputs.push_back(100);
    for (int I = 0; I < 100; ++I)
      W.Inputs.push_back(R.range(-1000, 1000));
  }
  return Cache.emplace(Name, std::move(W)).first->second;
}

void runInterp(benchmark::State &State, const char *Name,
               const char *Source, bool Checks) {
  Workload &W = workload(Name, Source);
  Interpreter I(W.Dbg->program());
  Interpreter::Options Opts;
  Opts.Inputs = W.Inputs;
  Opts.EnableChecks = Checks;
  for (auto _ : State) {
    Interpreter::Result R = I.run(Opts);
    if (R.St != Interpreter::Status::Ok)
      State.SkipWithError("run failed");
    benchmark::DoNotOptimize(R.Output.data());
  }
}

#define BOUNDCHECK_BENCH(NAME, SOURCE)                                        \
  void NAME##Checked(benchmark::State &S) {                                   \
    runInterp(S, #NAME, SOURCE, true);                                        \
  }                                                                           \
  BENCHMARK(NAME##Checked);                                                   \
  void NAME##Unchecked(benchmark::State &S) {                                 \
    runInterp(S, #NAME, SOURCE, false);                                       \
  }                                                                           \
  BENCHMARK(NAME##Unchecked);

BOUNDCHECK_BENCH(BinarySearch, paper::BinarySearchProgram)
BOUNDCHECK_BENCH(HeapSort, paper::HeapSortProgram)
BOUNDCHECK_BENCH(BubbleSort, paper::BubbleSortProgram)
BOUNDCHECK_BENCH(QuickSort, paper::QuickSortProgram)
BOUNDCHECK_BENCH(Matrix, paper::MatrixProgram)
BOUNDCHECK_BENCH(Shuttle, paper::ShuttleProgram)

void printStaticTable() {
  std::printf("==== E3: static check elimination (paper 6.5/Figure 3) "
              "====\n\n");
  struct Row {
    const char *Name;
    const char *Source;
    const char *PaperClaim;
  } Rows[] = {
      {"BinarySearch", paper::BinarySearchProgram, "every access safe"},
      {"HeapSort", paper::HeapSortProgram, "every access safe"},
      {"BubbleSort", paper::BubbleSortProgram, "(extra program)"},
      {"QuickSort", paper::QuickSortProgram, "all but one or two"},
      {"Matrix", paper::MatrixProgram, "every access safe (Markstein)"},
      {"Shuttle", paper::ShuttleProgram, "every access safe (Markstein)"},
  };
  for (const Row &R : Rows) {
    Workload &W = workload(R.Name, R.Source);
    CheckSummary S = W.Dbg->checks().summary();
    Interpreter I(W.Dbg->program());
    Interpreter::Options Opts;
    Opts.Inputs = W.Inputs;
    Interpreter::Result Run = I.run(Opts);
    std::printf("%-14s %2u/%2u sites eliminable (%.0f%%), all array "
                "accesses proved: %-3s dynamic checks removed per run: "
                "%llu | paper: %s\n",
                R.Name, S.Safe + S.Unreachable, S.Total,
                100.0 * S.eliminationRatio(),
                W.Dbg->checks().allSafe() ? "yes" : "no",
                (unsigned long long)Run.ChecksExecuted, R.PaperClaim);
    json::Value Json = S.toJson();
    Json.set("program", R.Name);
    Json.set("all_safe", W.Dbg->checks().allSafe());
    Json.set("dynamic_checks_per_run", Run.ChecksExecuted);
    Harness->row(std::move(Json));
  }
  std::printf("\n(Interpreter dispatch dilutes the wall-clock gap below "
              "the paper's 30-40%%\n on compiled Pascal; compare the "
              "Checked vs Unchecked pairs below and the\n dynamic check "
              "counts above.)\n\n");
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("boundcheck", argc, argv);
  Harness = &H;
  // Hand the arguments the shared parser did not consume on to
  // google-benchmark (argv[0] plus the leftovers).
  std::vector<char *> BenchArgv{argv[0]};
  std::vector<std::string> Rest = H.args();
  for (std::string &Arg : Rest)
    BenchArgv.push_back(Arg.data());
  int BenchArgc = static_cast<int>(BenchArgv.size());
  printStaticTable();
  benchmark::Initialize(&BenchArgc, BenchArgv.data());
  benchmark::RunSpecifiedBenchmarks();
  H.write();
  return 0;
}
