//===- bench/bench_persist.cpp - E-persist: on-disk warm-start cache ------===//
//
// Measures the persistent warm-start cache end to end, through the same
// AnalysisSession entry point the CLI uses (the session layer owns the
// CacheDir composition). Three scenarios per program family:
//
//   cold       first run against an empty cache directory (pays the
//              full fixpoint plus the serialization cost),
//   persisted  a fresh process-equivalent rerun of the *unchanged*
//              program against the populated cache — every stable
//              component must replay, so live evaluations drop to ~0,
//   edited     one routine of the program is edited and the rerun pays
//              only for the components whose fingerprint set changed;
//              the edited-cold row is the no-cache baseline for the
//              same edited source.
//
// Families: procChain(K) (K independent procedures, the best case for
// per-routine invalidation) and McCarthy_k (mutually dependent
// recursion, the worst case: an edit to the callee re-keys every
// instance below it).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "frontend/PaperPrograms.h"

#include <cstdio>
#include <filesystem>
#include <string>

using namespace syntox;

namespace {

/// K procedures, each a self-contained counting loop over a var
/// parameter, called in sequence from the main body. Each procedure is
/// its own fingerprint domain: editing one leaves K-1 untouched.
std::string procChain(unsigned K, unsigned EditedProc = ~0u) {
  std::string Out = "program gen;\nvar\n";
  for (unsigned I = 0; I < K; ++I)
    Out += "  g" + std::to_string(I) + " : integer;\n";
  for (unsigned I = 0; I < K; ++I) {
    std::string P = std::to_string(I);
    // The edit: a different loop bound in one procedure.
    std::string Bound = I == EditedProc ? "60" : "100";
    Out += "procedure p" + P + "(var x : integer);\n";
    Out += "var i : integer;\nbegin\n";
    Out += "  i := 0;\n";
    Out += "  while i < " + Bound + " do begin\n";
    Out += "    i := i + 1;\n";
    Out += "    x := i\n";
    Out += "  end\nend;\n";
  }
  Out += "begin\n";
  for (unsigned I = 0; I < K; ++I) {
    std::string P = std::to_string(I);
    Out += "  g" + P + " := 0;\n  p" + P + "(g" + P + ");\n";
  }
  Out += "  g0 := 0\nend.\n";
  return Out;
}

struct RunNumbers {
  uint64_t LiveEvals = 0;
  uint64_t Skips = 0;
  uint64_t SkippedEvals = 0;
  double Seconds = 0;
};

RunNumbers numbersOf(const AnalysisStats &S, double Seconds) {
  RunNumbers N;
  N.Seconds = Seconds;
  for (const PhaseStats &P : S.Phases) {
    N.LiveEvals += P.WideningSteps + P.NarrowingSteps;
    N.Skips += P.ComponentSkips;
    N.SkippedEvals += P.SkippedSteps;
  }
  return N;
}

RunNumbers scenario(bench::Harness &H, const std::string &Label,
                    const std::string &Source, const std::string &CacheDir) {
  AnalysisOptions Opts = H.options();
  Opts.CacheDir = CacheDir;
  double Seconds = 0;
  auto R = H.run(Label, Source, Opts, &Seconds);
  if (!R)
    return RunNumbers();
  return numbersOf(R->stats(), Seconds);
}

void runFamily(bench::Harness &H, const char *Family, unsigned K,
               const std::string &Source, const std::string &Edited,
               const std::string &EditedLast = std::string()) {
  namespace fs = std::filesystem;
  fs::path Dir =
      fs::temp_directory_path() / ("syntox_bench_persist_" + std::string(Family));
  std::error_code EC;
  fs::remove_all(Dir, EC);
  fs::create_directories(Dir, EC);

  std::string Label = std::string(Family) + "/" + std::to_string(K);
  RunNumbers Cold = scenario(H, Label + "/cold", Source, Dir.string());
  RunNumbers Persisted =
      scenario(H, Label + "/persisted", Source, Dir.string());
  RunNumbers EditedWarm =
      scenario(H, Label + "/edited", Edited, Dir.string());
  RunNumbers EditedCold = scenario(H, Label + "/edited-cold", Edited, "");
  // The edited-first scenario consumed the cache and re-saved the
  // edited program's state; restore the original program's cache before
  // the edited-last scenario so both edits start from the same point.
  RunNumbers EditedLastWarm;
  if (!EditedLast.empty()) {
    fs::remove_all(Dir, EC);
    fs::create_directories(Dir, EC);
    scenario(H, Label + "/reseed", Source, Dir.string());
    EditedLastWarm =
        scenario(H, Label + "/edited-last", EditedLast, Dir.string());
  }

  std::printf("%s:\n", Label.c_str());
  std::printf("  %-12s %12s %10s %12s %10s\n", "scenario", "live evals",
              "replays", "avoided", "seconds");
  auto Line = [](const char *Name, const RunNumbers &N) {
    std::printf("  %-12s %12llu %10llu %12llu %10.4f\n", Name,
                (unsigned long long)N.LiveEvals,
                (unsigned long long)N.Skips,
                (unsigned long long)N.SkippedEvals, N.Seconds);
  };
  Line("cold", Cold);
  Line("persisted", Persisted);
  Line("edited", EditedWarm);
  if (!EditedLast.empty())
    Line("edited-last", EditedLastWarm);
  Line("edited-cold", EditedCold);
  if (Persisted.LiveEvals == 0)
    std::printf("  unchanged rerun: full replay (0 live evaluations)\n");
  if (EditedCold.LiveEvals) {
    std::printf("  edit of first routine re-paid %.0f%% of the cold "
                "edited run (changed values\n  flow through everything "
                "downstream)\n",
                100.0 * EditedWarm.LiveEvals / EditedCold.LiveEvals);
    if (!EditedLast.empty())
      std::printf("  edit of last routine re-paid %.0f%%: upstream "
                  "components replay from disk\n",
                  100.0 * EditedLastWarm.LiveEvals / EditedCold.LiveEvals);
  }
  std::printf("\n");

  json::Value Row = json::Value::object();
  Row.set("family", Family);
  Row.set("k", K);
  Row.set("cold_evals", Cold.LiveEvals);
  Row.set("persisted_evals", Persisted.LiveEvals);
  Row.set("persisted_replays", Persisted.Skips);
  Row.set("persisted_avoided", Persisted.SkippedEvals);
  Row.set("edited_evals", EditedWarm.LiveEvals);
  if (!EditedLast.empty())
    Row.set("edited_last_evals", EditedLastWarm.LiveEvals);
  Row.set("edited_cold_evals", EditedCold.LiveEvals);
  Row.set("cold_seconds", Cold.Seconds);
  Row.set("persisted_seconds", Persisted.Seconds);
  Row.set("edited_seconds", EditedWarm.Seconds);
  Row.set("edited_cold_seconds", EditedCold.Seconds);
  H.row(std::move(Row));

  fs::remove_all(Dir, EC);
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("persist", argc, argv);
  std::printf("==== E-persist: on-disk warm-start cache ====\n\n");
  H.setField("note",
             json::Value("persisted_evals must be 0: the unchanged rerun "
                         "replays every stable component from disk"));
  for (unsigned K : {4u, 8u, 16u})
    runFamily(H, "procchain", K, procChain(K),
              procChain(K, /*EditedProc=*/0),
              procChain(K, /*EditedProc=*/K - 1));
  // McCarthy_k: editing the innermost recursion is the invalidation
  // worst case — the fingerprint chain re-keys everything below it.
  runFamily(H, "mccarthy", 9, paper::mcCarthyK(9), paper::mcCarthyK(8));
  H.write();
  return 0;
}
