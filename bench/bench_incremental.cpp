//===- bench/bench_incremental.cpp - E-incr: warm-started refinement ------===//
//
// Measures what the warm-start machinery buys across the refinement
// chain: the same programs are analyzed cold (--no-warm-start, every
// round re-iterates every component) and warm (the default; rounds that
// leave a component's inputs unchanged replay its recorded sweeps), and
// the per-round live equation evaluations are compared. On programs
// whose envelope stabilizes after the first round — the common case —
// every round past the first replays almost everything, so the live
// evaluation count for rounds >= 2 must drop by at least 2x. Families:
// the sequential loop chain (wide, loosely coupled) and McCarthy_k (the
// paper's tightly-coupled recursive pathology).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace syntox;

namespace {

/// K sequential counting loops over distinct variables (the bench_
/// complexity chain family).
std::string loopChain(unsigned K) {
  std::string Out = "program gen;\nvar\n";
  for (unsigned I = 0; I < K; ++I)
    Out += "  v" + std::to_string(I) + " : integer;\n";
  Out += "begin\n";
  for (unsigned I = 0; I < K; ++I) {
    std::string V = "v" + std::to_string(I);
    Out += "  " + V + " := 0;\n";
    Out += "  while " + V + " < 100 do " + V + " := " + V + " + 1;\n";
  }
  Out += "  v0 := 0\nend.\n";
  return Out;
}

/// Live evaluations, replays and wall-clock per refinement round of one
/// completed run.
struct RoundBreakdown {
  uint64_t Evals = 0;        ///< widening + narrowing steps actually run
  uint64_t Skips = 0;        ///< components replayed from the memo
  uint64_t SkippedEvals = 0; ///< evaluations those replays avoided
  double Seconds = 0;
};

std::vector<RoundBreakdown> perRound(const AnalysisStats &S) {
  std::vector<RoundBreakdown> Rounds;
  for (const PhaseStats &P : S.Phases) {
    if (P.Round >= Rounds.size())
      Rounds.resize(P.Round + 1);
    RoundBreakdown &R = Rounds[P.Round];
    R.Evals += P.WideningSteps + P.NarrowingSteps;
    R.Skips += P.ComponentSkips;
    R.SkippedEvals += P.SkippedSteps;
    R.Seconds += P.Seconds;
  }
  return Rounds;
}

void runFamily(bench::Harness &H, const char *Family, unsigned K,
               const std::string &Source, unsigned Rounds) {
  AnalysisOptions Warm = H.options();
  Warm.TerminationGoal = true;
  Warm.BackwardRounds = Rounds;
  Warm.WarmStart = true;
  AnalysisOptions Cold = Warm;
  Cold.WarmStart = false;

  std::string Label = std::string(Family) + "/" + std::to_string(K);
  double ColdSeconds = 0, WarmSeconds = 0;
  auto ColdDbg = H.analyze(Label + "/cold", Source, Cold, &ColdSeconds);
  auto WarmDbg = H.analyze(Label + "/warm", Source, Warm, &WarmSeconds);
  if (!ColdDbg || !WarmDbg)
    return;

  std::vector<RoundBreakdown> ColdRounds = perRound(ColdDbg->stats());
  std::vector<RoundBreakdown> WarmRounds = perRound(WarmDbg->stats());

  std::printf("%s: %u points, cold %.4fs, warm %.4fs\n", Label.c_str(),
              static_cast<unsigned>(ColdDbg->stats().ControlPoints),
              ColdSeconds, WarmSeconds);
  std::printf("%8s %12s %12s %10s %12s %8s\n", "round", "cold evals",
              "warm evals", "replays", "avoided", "factor");
  for (size_t R = 0; R < ColdRounds.size() && R < WarmRounds.size(); ++R) {
    const RoundBreakdown &C = ColdRounds[R];
    const RoundBreakdown &W = WarmRounds[R];
    std::printf("%8zu %12llu %12llu %10llu %12llu ", R,
                static_cast<unsigned long long>(C.Evals),
                static_cast<unsigned long long>(W.Evals),
                static_cast<unsigned long long>(W.Skips),
                static_cast<unsigned long long>(W.SkippedEvals));
    if (W.Evals)
      std::printf("%7.1fx\n", static_cast<double>(C.Evals) / W.Evals);
    else
      std::printf("%8s\n", C.Evals ? "inf" : "-");

    json::Value Row = json::Value::object();
    Row.set("family", Family);
    Row.set("k", K);
    Row.set("round", static_cast<uint64_t>(R));
    Row.set("cold_evals", C.Evals);
    Row.set("warm_evals", W.Evals);
    Row.set("warm_component_skips", W.Skips);
    Row.set("warm_skipped_evals", W.SkippedEvals);
    Row.set("cold_unions", ColdDbg->stats().Unions);
    Row.set("warm_unions", WarmDbg->stats().Unions);
    Row.set("cold_seconds", C.Seconds);
    Row.set("warm_seconds", W.Seconds);
    H.row(std::move(Row));
  }
  std::printf("  summary reuses: %llu (callee instances replayed whole; "
              "see metrics interproc.*)\n\n",
              static_cast<unsigned long long>(
                  WarmDbg->stats().SummaryReuses));
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("incremental", argc, argv);
  unsigned Rounds = 4;
  for (const std::string &Arg : H.args())
    if (Arg.rfind("--bench-rounds=", 0) == 0)
      Rounds = static_cast<unsigned>(std::atoi(Arg.c_str() + 15));
  H.setField("rounds", Rounds);
  H.setField("note", "per-round live evaluations, cold vs warm-started "
                     "refinement chain; factor = cold/warm");

  std::printf("==== E-incr: incremental refinement-chain solving ====\n\n");
  for (unsigned K : {20u, 80u})
    runFamily(H, "loopChain", K, loopChain(K), Rounds);
  for (unsigned K : {6u, 12u})
    runFamily(H, "mcCarthy", K, paper::mcCarthyK(K), Rounds);

  H.write();
  return 0;
}
