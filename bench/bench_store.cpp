//===- bench/bench_store.cpp - E-store: store-operation throughput --------===//
//
// Microbenchmarks for the copy-on-write store representation: ops/sec
// for copy, join, widen, and equal at store sizes 4/32/256. The numbers
// demonstrate the two properties the solver's inner loop depends on:
//   - store copy is O(1) (a refcount increment, flat across sizes),
//   - join/widen/equal are O(1) on converged inputs via the payload
//     pointer-equality fast path, entry-wise only when values differ.
// Results are printed as a table and written to BENCH_store.json (path
// overridable via --out=FILE) so successive PRs can track the trajectory.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "semantics/AbstractStore.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace syntox;

namespace {

struct Setup {
  AstContext Ctx;
  IntervalDomain D;
  StoreOps Ops{D};
  std::vector<VarDecl *> Vars;

  explicit Setup(unsigned Size) {
    for (unsigned I = 0; I < Size; ++I)
      Vars.push_back(Ctx.create<VarDecl>(SourceLoc(),
                                         "v" + std::to_string(I),
                                         Ctx.integerType(), VarKind::Local));
  }

  /// A store constraining every variable to [Lo, Lo + I].
  AbstractStore make(int64_t Lo) const {
    AbstractStore S;
    for (unsigned I = 0; I < Vars.size(); ++I)
      S.set(Vars[I], AbsValue(Interval(Lo, Lo + static_cast<int64_t>(I))));
    return S;
  }
};

/// Runs Fn in a timing loop and returns operations per second.
template <typename Fn> double opsPerSec(Fn &&F) {
  // Warm up, then time enough iterations for a stable reading.
  for (int I = 0; I < 1000; ++I)
    F();
  uint64_t Iters = 0;
  auto Start = std::chrono::steady_clock::now();
  double Elapsed = 0;
  do {
    for (int I = 0; I < 4096; ++I)
      F();
    Iters += 4096;
    Elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  } while (Elapsed < 0.2);
  return static_cast<double>(Iters) / Elapsed;
}

struct Row {
  unsigned Size;
  double Copy, JoinSame, JoinDiff, Widen, WidenDiff, EqualPtr, EqualDeep;
};

Row measure(unsigned Size) {
  Setup S(Size);
  AbstractStore A = S.make(0);
  AbstractStore B = A;          // shares A's payload
  AbstractStore C = S.make(0);  // equal to A, distinct payload
  AbstractStore Grown = S.make(-1); // strictly wider than A per entry

  Row R{Size, 0, 0, 0, 0, 0, 0, 0};
  volatile bool Sink = false;
  R.Copy = opsPerSec([&] {
    AbstractStore Copy = A;
    Sink = Copy.isBottom();
  });
  // Converged join: result == A, returned with A's payload (no
  // allocation, no per-entry output).
  R.JoinSame = opsPerSec([&] {
    AbstractStore J = S.Ops.join(A, B);
    Sink = J.isBottom();
  });
  // General join: every entry changes, output payload built fresh.
  R.JoinDiff = opsPerSec([&] {
    AbstractStore J = S.Ops.join(A, Grown);
    Sink = J.isBottom();
  });
  // Stable widening: A already bounds B, so the delta pass returns A.
  R.Widen = opsPerSec([&] {
    AbstractStore W = S.Ops.widen(A, B);
    Sink = W.isBottom();
  });
  // Unstable widening: every entry grows, so the kernel extrapolates
  // every slot and builds a fresh output payload.
  R.WidenDiff = opsPerSec([&] {
    AbstractStore W = S.Ops.widen(A, Grown);
    Sink = W.isBottom();
  });
  R.EqualPtr = opsPerSec([&] { Sink = S.Ops.equal(A, B); });
  R.EqualDeep = opsPerSec([&] { Sink = S.Ops.equal(A, C); });
  return R;
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("store", argc, argv);
  std::printf("==== E-store: COW store operation throughput ====\n\n");
  std::printf("%6s %14s %14s %14s %14s %14s %14s %14s\n", "size", "copy",
              "join(same)", "join(diff)", "widen(stable)", "widen(diff)",
              "equal(ptr)", "equal(deep)");

  H.setField("unit", "ops_per_sec");
  for (unsigned Size : {4u, 32u, 256u}) {
    Row R = measure(Size);
    std::printf("%6u %12.2fM %12.2fM %12.2fM %12.2fM %12.2fM %12.2fM %12.2fM\n",
                R.Size, R.Copy / 1e6, R.JoinSame / 1e6, R.JoinDiff / 1e6,
                R.Widen / 1e6, R.WidenDiff / 1e6, R.EqualPtr / 1e6,
                R.EqualDeep / 1e6);
    json::Value Json = json::Value::object();
    Json.set("size", R.Size);
    Json.set("copy", R.Copy);
    Json.set("join_same", R.JoinSame);
    Json.set("join_diff", R.JoinDiff);
    Json.set("widen_stable", R.Widen);
    Json.set("widen_diff", R.WidenDiff);
    Json.set("equal_ptr", R.EqualPtr);
    Json.set("equal_deep", R.EqualDeep);
    H.row(std::move(Json));
  }
  std::printf("(ops/sec, millions. copy and the same-payload columns should "
              "stay flat across sizes\n — O(1) fast paths — while join(diff) "
              "and equal(deep) scale with the entry count)\n");

  return H.write() ? 0 : 1;
}
