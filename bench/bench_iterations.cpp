//===- bench/bench_iterations.cpp - E2: the Figure 2 session statistics ---===//
//
// Regenerates the statistics panel of the Syntox session shown in
// Figure 2 (program McCarthy): per-phase widening/narrowing iteration
// counts, CPU, memory, control points, equations, unions and widenings.
// The paper's screenshot shows (on a DEC 5000/200):
//     *** Forward analysis:        widening (84),  narrowing (56)
//     *** Intermittent assertions: widening (140), narrowing (28)
//     *** [Backward] analysis:     widening (81),  narrowing (28)
//     *** CPU: 0.6 seconds, Memory: 46 Kb, Control points: 32 [source]
//     *** Equations: 448 (2104 unions, 814 widenings)
// Absolute counts depend on the exact equation encoding; the shape to
// compare: a few iterations per equation per phase, unions an order of
// magnitude above the equation count, sub-second CPU.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <cstdio>

using namespace syntox;

static void session(bench::Harness &H, const char *Title,
                    const std::string &Source, bool TerminationGoal) {
  std::printf("---- %s ----\n", Title);
  AnalysisOptions Opts = H.options();
  Opts.TerminationGoal = TerminationGoal;
  auto Dbg = H.analyze(Title, Source, Opts);
  if (!Dbg)
    return;
  std::printf("%s", Dbg->stats().str().c_str());
  const AnalysisStats &S = Dbg->stats();
  double StepsPerEquation =
      S.Equations == 0
          ? 0.0
          : static_cast<double>([&] {
              uint64_t Total = 0;
              for (const PhaseStats &P : S.Phases)
                Total += P.WideningSteps + P.NarrowingSteps;
              return Total;
            }()) / S.Equations;
  std::printf("*** Complexity: %.1f evaluations per equation "
              "(paper: ~4 per phase)\n\n",
              StepsPerEquation);
  json::Value Row = json::Value::object();
  Row.set("session", Title);
  Row.set("equations", S.Equations);
  Row.set("unions", S.Unions);
  Row.set("widenings", S.Widenings);
  Row.set("steps_per_equation", StepsPerEquation);
  H.row(std::move(Row));
}

int main(int argc, char **argv) {
  bench::Harness H("iterations", argc, argv);
  std::printf("==== E2: Figure 2 analysis statistics ====\n\n");

  std::string McIntermittent = paper::McCarthyProgram;
  McIntermittent.insert(McIntermittent.find("writeln(m)"),
                        "intermittent(m = 91);\n  ");

  session(H, "McCarthy (plain)", paper::McCarthyProgram, false);
  session(H, "McCarthy with invariant n <= 101", paper::McCarthyWithInvariant,
          false);
  session(H, "McCarthy with intermittent m = 91", McIntermittent, false);
  H.write();
  return 0;
}
