//===- bench/bench_parallel.cpp - Parallel WTO-component speedup ----------===//
//
// Measures the Parallel iteration strategy against serial Recursive.
// The strategy schedules *independent* top-level WTO components
// concurrently, so the benchmark program is shaped as a binary branch
// tree whose K leaves each hold a heavy nested-loop blob over its own
// variables: the blobs are pairwise independent components and the task
// DAG is K-wide. (A sequential chain of loops, as in bench_complexity,
// is the worst case: its task DAG is a path and parallelism cannot
// help.)
//
// The transfer cache is disabled for the strategy sweep so the numbers
// isolate scheduling; a separate section reports what the cache itself
// buys on the same program.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

using namespace syntox;

namespace {

/// One heavy, self-contained abstract-interpretation workload: a nested
/// counting loop over blob-private variables with \p Stmts extra
/// arithmetic statements in the inner body. The inner loop restabilizes
/// on every outer iteration, so the fixpoint work per blob scales with
/// Stmts times the (abstract) iteration counts.
std::string heavyBlob(unsigned Id, unsigned Stmts) {
  std::string X = "x" + std::to_string(Id);
  std::string Y = "y" + std::to_string(Id);
  std::string Z = "z" + std::to_string(Id);
  std::string Out;
  Out += "    " + X + " := 0;\n";
  Out += "    while " + X + " < 1000 do begin\n";
  Out += "      " + Y + " := 0;\n";
  Out += "      while " + Y + " < 1000 do begin\n";
  for (unsigned I = 0; I < Stmts; ++I)
    Out += "        " + Z + " := (" + Y + " * 2 + " + X + ") div " +
           std::to_string(1 + I % 7) + ";\n";
  Out += "        " + Y + " := " + Y + " + 1\n";
  Out += "      end;\n";
  Out += "      " + X + " := " + X + " + 1\n";
  Out += "    end";
  return Out;
}

/// A balanced tree of if/else tests over `c` whose \p Leaves leaves are
/// independent heavy blobs: the widest antichain of the WTO's component
/// DAG has size Leaves.
std::string branchTree(unsigned Lo, unsigned Hi, unsigned Stmts) {
  if (Lo == Hi)
    return heavyBlob(Lo, Stmts);
  unsigned Mid = (Lo + Hi) / 2;
  std::string Out;
  Out += "    if c <= " + std::to_string(Mid) + " then begin\n";
  Out += branchTree(Lo, Mid, Stmts) + "\n    end else begin\n";
  Out += branchTree(Mid + 1, Hi, Stmts) + "\n    end";
  return Out;
}

std::string parallelProgram(unsigned Leaves, unsigned Stmts) {
  std::string Out = "program gen;\nvar c : integer;\n";
  for (unsigned I = 0; I < Leaves; ++I)
    Out += "  x" + std::to_string(I) + ", y" + std::to_string(I) + ", z" +
           std::to_string(I) + " : integer;\n";
  Out += "begin\n  read(c);\n";
  Out += branchTree(0, Leaves - 1, Stmts);
  Out += "\nend.\n";
  return Out;
}

struct Timing {
  double Seconds = 0;
  uint64_t CacheHits = 0;
  uint64_t DagWidth = 0;
  unsigned Points = 0;
};

/// Analyzes \p Source once with the given options. A fresh debugger per
/// run: the transfer cache outlives Analyzer::run(), so reusing one
/// instance would let later repetitions ride on earlier fills.
Timing timeAnalysis(bench::Harness &H, const std::string &Label,
                    const std::string &Source, IterationStrategy S,
                    unsigned Threads, bool Cache, int Reps = 3) {
  Timing T;
  T.Seconds = 1e9;
  std::unique_ptr<AbstractDebugger> Last;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    DiagnosticsEngine Diags;
    AbstractDebugger::Options Opts = H.options();
    Opts.Strategy = S;
    Opts.NumThreads = Threads;
    Opts.transferCache(Cache); // pin: keep the adaptive heuristic out
    auto Dbg = AbstractDebugger::create(Source, Diags, Opts);
    if (!Dbg) {
      std::printf("frontend error\n%s", Diags.str().c_str());
      return T;
    }
    auto Start = std::chrono::steady_clock::now();
    Dbg->analyze();
    T.Seconds = std::min(
        T.Seconds, std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count());
    T.CacheHits = Dbg->stats().CacheHits;
    T.DagWidth = Dbg->stats().ParallelDagWidth;
    T.Points = static_cast<unsigned>(Dbg->stats().ControlPoints);
    Last = std::move(Dbg);
  }
  if (Last)
    H.recordPhases(Label, Last->stats(), T.Seconds);
  return T;
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("parallel", argc, argv);
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("==== Parallel fixpoint strategy ====\n\n");
  std::printf("hardware threads on this host: %u\n", Cores);
  if (Cores < 2)
    std::printf("NOTE: single-core host -- wall-clock speedup is bounded "
                "by 1x here; the DAG width\ncolumn shows the parallelism "
                "the strategy exposes to a multicore machine.\n");
  std::printf("\n");

  std::printf("-- Speedup over serial Recursive (cache off, K independent "
              "components) --\n");
  std::printf("%8s %8s %6s %12s | %10s %10s %10s %10s\n", "leaves",
              "points", "width", "serial (s)", "1 thr", "2 thr", "4 thr",
              "8 thr");
  for (unsigned Leaves : {2u, 4u, 8u}) {
    std::string Source = parallelProgram(Leaves, /*Stmts=*/120);
    std::string Tag = "leaves" + std::to_string(Leaves);
    Timing Serial = timeAnalysis(H, Tag + "/serial", Source,
                                 IterationStrategy::Recursive, 0, false);
    uint64_t Width = 0;
    std::printf("%8u %8u", Leaves, Serial.Points);
    std::string Row;
    json::Value Json = json::Value::object();
    Json.set("leaves", Leaves);
    Json.set("points", Serial.Points);
    Json.set("serial_seconds", Serial.Seconds);
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      Timing Par =
          timeAnalysis(H, Tag + "/par" + std::to_string(Threads), Source,
                       IterationStrategy::Parallel, Threads, false);
      Width = Par.DagWidth;
      Json.set("par" + std::to_string(Threads) + "_seconds", Par.Seconds);
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "   %6.2fx ",
                    Serial.Seconds / Par.Seconds);
      Row += Buf;
    }
    Json.set("dag_width", Width);
    H.row(std::move(Json));
    std::printf(" %6llu %12.4f |%s\n",
                static_cast<unsigned long long>(Width), Serial.Seconds,
                Row.c_str());
  }
  std::printf("(each leaf is one independent WTO component, so the DAG "
              "width equals the leaf count;\n on a host with >= 4 cores "
              "the 4-thread column should exceed 1.5x from 4 leaves "
              "up)\n\n");

  std::printf("-- Worst case: a sequential loop chain (task DAG is a "
              "path) --\n");
  {
    std::string Chain = "program gen;\nvar c : integer;\n  x0, y0, z0 : "
                        "integer;\n  x1, y1, z1 : integer;\nbegin\n"
                        "  read(c);\n" +
                        heavyBlob(0, 120) + ";\n" + heavyBlob(1, 120) +
                        "\nend.\n";
    Timing Serial = timeAnalysis(H, "chain/serial", Chain,
                                 IterationStrategy::Recursive, 0, false);
    Timing Par = timeAnalysis(H, "chain/par4", Chain,
                              IterationStrategy::Parallel, 4, false);
    std::printf("  serial %.4f s, parallel(4) %.4f s -> %.2fx (DAG width "
                "%llu: no independent\n  components, so ~1x is expected "
                "on any host)\n",
                Serial.Seconds, Par.Seconds, Serial.Seconds / Par.Seconds,
                static_cast<unsigned long long>(Par.DagWidth));
    // The contention check: with component-owned arenas, the parallel
    // strategy's cache-on penalty must match the serial one (the cache
    // itself loses ~0.7x on cheap interval transfers — the E-store
    // band; the adaptive heuristic keeps it off here by default). What
    // must NOT remain is an extra parallel-only cost from probes
    // hitting shard locks.
    Timing SerialCache = timeAnalysis(H, "chain/serialcache", Chain,
                                      IterationStrategy::Recursive, 0,
                                      true);
    Timing ParCache = timeAnalysis(H, "chain/par4cache", Chain,
                                   IterationStrategy::Parallel, 4, true);
    double SerialPenalty = Serial.Seconds / SerialCache.Seconds;
    double ParPenalty = Par.Seconds / ParCache.Seconds;
    double Contention = ParPenalty / SerialPenalty;
    std::printf("  cache-on penalty: serial %.2fx, parallel(4) %.2fx -> "
                "relative %.2fx\n  (>= 1.0x expected: owned arenas keep "
                "parallel probes lock-free, so caching\n  costs the "
                "parallel strategy no more than it costs serial; %llu "
                "hits)\n\n",
                SerialPenalty, ParPenalty, Contention,
                static_cast<unsigned long long>(ParCache.CacheHits));
    json::Value Json = json::Value::object();
    Json.set("chain_serial_seconds", Serial.Seconds);
    Json.set("chain_par4_seconds", Par.Seconds);
    Json.set("chain_serial_cache_seconds", SerialCache.Seconds);
    Json.set("chain_par4_cache_seconds", ParCache.Seconds);
    Json.set("chain_cache_penalty_serial", SerialPenalty);
    Json.set("chain_cache_penalty_par4", ParPenalty);
    Json.set("chain_cache_on_speedup", Contention);
    H.row(std::move(Json));
  }

  std::printf("-- Transfer cache on the 8-leaf program (serial "
              "strategy) --\n");
  {
    std::string Source = parallelProgram(8, /*Stmts=*/120);
    Timing Off = timeAnalysis(H, "cache/off", Source,
                              IterationStrategy::Recursive, 0, false);
    Timing On = timeAnalysis(H, "cache/on", Source,
                             IterationStrategy::Recursive, 0, true);
    std::printf("  cache off %.4f s, cache on %.4f s (%.2fx, %llu hits)\n",
                Off.Seconds, On.Seconds, Off.Seconds / On.Seconds,
                static_cast<unsigned long long>(On.CacheHits));
    Timing Both = timeAnalysis(H, "cache/par4", Source,
                               IterationStrategy::Parallel, 4, true);
    std::printf("  parallel(4) + cache: %.4f s (%.2fx over serial "
                "uncached)\n",
                Both.Seconds, Off.Seconds / Both.Seconds);
  }
  H.write();
  return 0;
}
