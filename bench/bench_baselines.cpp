//===- bench/bench_baselines.cpp - E6: comparison vs baselines ------------===//
//
// Paper §6.5 compares Syntox against Harrison's 1977 analysis ("computes
// the greatest fixed point of the forward system, which has no semantic
// justification and gives poor results") and discusses the
// context-insensitive fallback of §6.4. This bench prints, per program
// and configuration: checks discharged, range precision (count of finite
// interval bounds), unfolded size and time.
//
// Shape to check: abstract-debugging >= forward-only = check discharge;
// harrison-gfp collapses in range precision; context-insensitive is
// smaller/cheaper but can lose per-site precision.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "baselines/Baselines.h"
#include "cfg/CfgBuilder.h"
#include "frontend/Lexer.h"
#include "frontend/PaperPrograms.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "semantics/Analyzer.h"

#include <chrono>
#include <cstdio>

using namespace syntox;

static void runProgram(bench::Harness &H, const char *Name,
                       const std::string &Source) {
  AstContext Ctx;
  DiagnosticsEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Ctx, Diags);
  RoutineDecl *Prog = P.parseProgram();
  Sema S(Ctx, Diags);
  if (!S.analyze(Prog)) {
    std::printf("%s: frontend error\n", Name);
    return;
  }
  CfgBuilder Builder(Ctx, Diags);
  auto Cfg = Builder.build(Prog);
  std::printf("---- %s ----\n", Name);
  for (const BaselineOutcome &O : runAllBaselines(*Cfg, Prog)) {
    std::printf("  %s\n", O.str().c_str());
    json::Value Row = json::Value::object();
    Row.set("program", Name);
    Row.set("outcome", O.str());
    H.row(std::move(Row));
  }

  // Cold vs warm-transplanted abstract debugging on the same build: a
  // second Analyzer that imports the first one's chain-slot memos
  // should replay every stable component instead of re-iterating.
  auto runOnce = [&](const Analyzer *Warm, double &Seconds,
                     uint64_t &Steps, uint64_t &Saved) {
    auto Start = std::chrono::steady_clock::now();
    auto An = std::make_unique<Analyzer>(*Cfg, Prog, H.options());
    if (Warm)
      An->importWarmFrom(*Warm);
    An->run();
    Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    Steps = Saved = 0;
    for (const PhaseStats &P : An->stats().Phases) {
      Steps += P.WideningSteps + P.NarrowingSteps;
      Saved += P.SkippedSteps;
    }
    return An;
  };
  double ColdSecs = 0, WarmSecs = 0;
  uint64_t ColdSteps = 0, ColdSaved = 0, WarmSteps = 0, WarmSaved = 0;
  auto Cold = runOnce(nullptr, ColdSecs, ColdSteps, ColdSaved);
  H.recordPhases(std::string(Name) + "/cold", Cold->stats(), ColdSecs);
  auto WarmAn = runOnce(Cold.get(), WarmSecs, WarmSteps, WarmSaved);
  H.recordPhases(std::string(Name) + "/warm", WarmAn->stats(), WarmSecs);
  std::printf("  abstract-debugging warm transplant: %llu -> %llu live "
              "steps (%llu replayed)\n",
              (unsigned long long)ColdSteps, (unsigned long long)WarmSteps,
              (unsigned long long)WarmSaved);
  json::Value Row = json::Value::object();
  Row.set("program", Name);
  Row.set("cold_steps", ColdSteps);
  Row.set("warm_steps", WarmSteps);
  Row.set("warm_saved_steps", WarmSaved);
  Row.set("cold_seconds", ColdSecs);
  Row.set("warm_seconds", WarmSecs);
  H.row(std::move(Row));
  std::printf("\n");
}

int main(int argc, char **argv) {
  bench::Harness H("baselines", argc, argv);
  std::printf("==== E6: abstract debugging vs baseline analyses ====\n\n");
  runProgram(H, "BinarySearch", paper::BinarySearchProgram);
  runProgram(H, "HeapSort", paper::HeapSortProgram);
  runProgram(H, "QuickSort", paper::QuickSortProgram);
  runProgram(H, "BubbleSort", paper::BubbleSortProgram);
  runProgram(H, "McCarthy9", paper::mcCarthyK(9));
  runProgram(H, "Ackermann", paper::AckermannProgram);
  H.write();
  return 0;
}
