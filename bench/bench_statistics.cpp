//===- bench/bench_statistics.cpp - E4: the Figure 4 statistics table -----===//
//
// Regenerates Figure 4: program size (control points after unfolding the
// interprocedural call graph), allocated memory, and analysis time, for
// the paper's benchmark set. The paper's numbers (DEC 5000/200 Ultrix):
//
//     Program      Size   Memory    Time
//     Fact           24    44 kb   0.5 s
//     Select         61    64 kb   0.9 s
//     Ackermann      72    99 kb   1.9 s
//     QuickSort      92    98 kb   2.1 s
//     HeapSort       96   108 kb   2.4 s
//     McCarthy9     176   230 kb   5.4 s
//     McCarthy30   1184  3387 kb 153.3 s
//
// Absolute values differ (hardware, encoding); the shape to check: sizes
// ordered the same way, near-linear growth except McCarthy30, which blows
// up super-linearly ("intrinsically complex programs").
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace syntox;

namespace {

struct PaperRow {
  unsigned Size;
  unsigned MemoryKb;
  double Seconds;
};

void row(bench::Harness &H, const char *Name, const std::string &Source,
         PaperRow Paper) {
  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(Source, Diags, H.options());
  if (!Dbg) {
    std::printf("%-12s frontend error\n", Name);
    return;
  }
  // Median-ish of three runs for the time column.
  double Best = 1e9;
  for (int K = 0; K < 3; ++K) {
    auto Start = std::chrono::steady_clock::now();
    Dbg->analyze();
    double T = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
    Best = std::min(Best, T);
  }
  const AnalysisStats &S = Dbg->stats();
  H.recordPhases(Name, S, Best);
  std::printf("%-12s %8llu %9llu kb %9.4f s   | paper: %5u %6u kb %7.1f s\n",
              Name, (unsigned long long)S.ControlPoints,
              (unsigned long long)(S.BytesUsed / 1024), Best, Paper.Size,
              Paper.MemoryKb, Paper.Seconds);
  json::Value Row = json::Value::object();
  Row.set("program", Name);
  Row.set("size", S.ControlPoints);
  Row.set("memory_kb", S.BytesUsed / 1024);
  Row.set("seconds", Best);
  Row.set("paper_size", Paper.Size);
  Row.set("paper_memory_kb", Paper.MemoryKb);
  Row.set("paper_seconds", Paper.Seconds);
  H.row(std::move(Row));
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("statistics", argc, argv);
  std::printf("==== E4: Figure 4 statistics "
              "(size = control points after unfolding) ====\n\n");
  std::printf("%-12s %8s %12s %11s\n", "Program", "Size", "Memory", "Time");
  row(H, "Fact", paper::FactProgram, {24, 44, 0.5});
  row(H, "Select", paper::SelectProgram, {61, 64, 0.9});
  row(H, "Ackermann", paper::AckermannProgram, {72, 99, 1.9});
  row(H, "QuickSort", paper::QuickSortProgram, {92, 98, 2.1});
  row(H, "HeapSort", paper::HeapSortProgram, {96, 108, 2.4});
  row(H, "McCarthy9", paper::mcCarthyK(9), {176, 230, 5.4});
  row(H, "McCarthy30", paper::mcCarthyK(30), {1184, 3387, 153.3});
  std::printf("\nShape: same ordering as the paper; McCarthy30 is the "
              "super-linear outlier.\n");
  H.write();
  return 0;
}
