//===- bench/bench_serve.cpp - Analysis daemon throughput benchmark ------===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer load generator: the bench_corpus randomized corpus
/// (plain, goto-heavy, deep-unfolding and aliasing-heavy families,
/// round-robin) pushed through a live serve::Server as pipelined
/// JSON-lines wire traffic over a socketpair — the exact bytes a
/// syntox_serve client would send. Three waves model an editor fleet:
///
///   cold   every document analyzed for the first time
///   warm   every document resubmitted unchanged (parked sessions +
///          the per-document disk shards answer)
///   edit   every document mutated once (a keystroke) and resubmitted
///
/// Reports programs/sec and p50/p99 response latency per wave (from the
/// envelopes' own timing.total_ms), checks every response's findings
/// bitwise against a direct sequential AnalysisSession run of the same
/// source, and checks that the post-save collector held the cache tree
/// at or under its byte cap across the edit wave. Any mismatch or a
/// cache overrun fails the run.
///
/// Extra flags (beyond the shared analysis/telemetry set):
///   --programs=N          corpus size                 (default 120)
///   --server-threads=N    server worker-slot budget   (default 4)
///   --cache-max-bytes=N   server cache-tree cap
///                         (default 8192 per program: tight enough that
///                         the fattest documents overflow it and the
///                         collector must evict, loose enough that most
///                         edit-wave loads still warm-start)
///   --seed=S              corpus base seed            (default 8101)
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AnalysisRequest.h"
#include "serve/Server.h"

#include "../tests/common/RandomProgramGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace syntox;
using namespace syntox::serve;
using test::ProgramGenerator;

namespace {

struct CorpusProgram {
  std::string Name;
  uint64_t Seed = 0;
  std::string Source;
};

std::vector<CorpusProgram> buildCorpus(unsigned N, uint64_t BaseSeed) {
  static const ProgramGenerator::Family Fams[] = {
      ProgramGenerator::Family::Plain,
      ProgramGenerator::Family::GotoHeavy,
      ProgramGenerator::Family::DeepUnfolding,
      ProgramGenerator::Family::AliasingHeavy,
  };
  std::vector<CorpusProgram> Corpus;
  Corpus.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    CorpusProgram P;
    ProgramGenerator::Family F = Fams[I % 4];
    P.Seed = BaseSeed + I;
    P.Name = std::string(ProgramGenerator::familyName(F)) + "-" +
             std::to_string(P.Seed);
    ProgramGenerator G(P.Seed, /*WithAssertions=*/true);
    P.Source = G.generate(F);
    Corpus.push_back(std::move(P));
  }
  return Corpus;
}

/// The findings document minus its timing-dependent members — the
/// bitwise-comparison payload.
json::Value findingsOnly(const json::Value &Findings) {
  json::Value V = json::Value::object();
  for (const auto &KV : Findings.members())
    if (KV.first != "stats" && KV.first != "metrics")
      V.set(KV.first, KV.second);
  return V;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

/// One in-process daemon behind its wire protocol: requests and
/// responses cross a socketpair exactly as a syntox_serve client's
/// bytes would.
class ServeClient {
public:
  explicit ServeClient(const ServerConfig &Cfg)
      : Srv(std::make_unique<Server>(Cfg)) {
    int Fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
      std::fprintf(stderr, "bench_serve: socketpair failed\n");
      std::exit(1);
    }
    Fd = Fds[0];
    ServerFd = Fds[1];
    Thread = std::thread(
        [this, SFd = ServerFd] { Srv->serve(SFd, SFd); });
  }

  ~ServeClient() {
    if (Thread.joinable()) {
      ::shutdown(Fd, SHUT_WR);
      Thread.join();
    }
    ::close(ServerFd);
    ::close(Fd);
  }

  Server &server() { return *Srv; }

  bool send(const std::string &Line) {
    std::string L = Line + "\n";
    size_t Off = 0;
    while (Off < L.size()) {
      ssize_t N = ::write(Fd, L.data() + Off, L.size() - Off);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  /// Blocks for the next response line (30s cap).
  bool recv(json::Value &Out) {
    if (!Reader)
      Reader = std::make_unique<LineReader>(Fd);
    std::string Line;
    auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < Deadline) {
      LineReader::Status S = Reader->next(Line, 100);
      if (S == LineReader::Status::Eof)
        return false;
      if (S != LineReader::Status::Line)
        continue;
      std::string Error;
      std::optional<json::Value> V = json::parse(Line, &Error);
      if (!V) {
        std::fprintf(stderr, "bench_serve: bad response: %s\n",
                     Error.c_str());
        return false;
      }
      Out = std::move(*V);
      return true;
    }
    return false;
  }

private:
  std::unique_ptr<Server> Srv;
  int Fd = -1;
  int ServerFd = -1;
  std::thread Thread;
  std::unique_ptr<LineReader> Reader;
};

struct WaveResult {
  double Seconds = 0.0;
  std::vector<double> LatencyMs; ///< envelope timing.total_ms
  unsigned Answered = 0;
  bool OK = true;
  bool Matches = true;
};

std::string analyzeLine(const std::string &Id, const std::string &Source,
                        const std::string &CacheKey) {
  json::Value Req = json::Value::object();
  Req.set("protocol_version", 1);
  Req.set("id", Id);
  Req.set("kind", "analyze");
  Req.set("source", Source);
  Req.set("cache_key", CacheKey);
  return Req.str();
}

/// Pipelines the whole corpus through the daemon, then collects the
/// (unordered) responses and diffs each findings document against a
/// direct sequential session run of the same source.
WaveResult runWave(ServeClient &C, const std::vector<CorpusProgram> &Corpus,
                   const std::vector<json::Value> &Expected) {
  WaveResult W;
  auto Start = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Corpus.size(); ++I)
    if (!C.send(analyzeLine("p" + std::to_string(I), Corpus[I].Source,
                            "doc-" + std::to_string(I)))) {
      W.OK = false;
      return W;
    }
  std::map<std::string, json::Value> ById;
  for (size_t I = 0; I < Corpus.size(); ++I) {
    json::Value R;
    if (!C.recv(R)) {
      W.OK = false;
      return W;
    }
    if (const json::Value *Id = R.find("id"))
      ById[Id->asString()] = std::move(R);
  }
  W.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();

  for (size_t I = 0; I < Corpus.size(); ++I) {
    auto It = ById.find("p" + std::to_string(I));
    if (It == ById.end()) {
      std::printf("  %s: no response\n", Corpus[I].Name.c_str());
      W.OK = false;
      continue;
    }
    const json::Value &R = It->second;
    const json::Value *Status = R.find("status");
    if (!Status || Status->asString() != "ok") {
      const json::Value *E = R.find("error");
      std::printf("  %s: status %s%s%s\n", Corpus[I].Name.c_str(),
                  Status ? Status->asString().c_str() : "?",
                  E ? ": " : "", E ? E->asString().c_str() : "");
      W.OK = false;
      continue;
    }
    ++W.Answered;
    if (const json::Value *T = R.find("timing"))
      if (const json::Value *Total = T->find("total_ms"))
        W.LatencyMs.push_back(Total->asDouble());
    const json::Value *F = R.find("findings");
    if (!F || !(findingsOnly(*F) == Expected[I])) {
      std::printf("  %s: FINDINGS MISMATCH vs sequential\n",
                  Corpus[I].Name.c_str());
      W.Matches = false;
    }
  }
  return W;
}

json::Value waveRow(const char *Wave, const WaveResult &W) {
  json::Value Row = json::Value::object();
  Row.set("wave", Wave);
  Row.set("programs", static_cast<uint64_t>(W.Answered));
  Row.set("seconds", W.Seconds);
  Row.set("programs_per_sec",
          W.Seconds > 0 ? W.Answered / W.Seconds : 0.0);
  Row.set("p50_ms", percentile(W.LatencyMs, 0.50));
  Row.set("p99_ms", percentile(W.LatencyMs, 0.99));
  Row.set("matches_sequential", W.Matches);
  return Row;
}

void printWave(const char *Wave, const WaveResult &W) {
  std::printf("  %-5s %5u prog %8.2fs %8.1f prog/s  p50 %7.2fms  "
              "p99 %7.2fms%s\n",
              Wave, W.Answered, W.Seconds,
              W.Seconds > 0 ? W.Answered / W.Seconds : 0.0,
              percentile(W.LatencyMs, 0.50),
              percentile(W.LatencyMs, 0.99),
              W.Matches ? "  ==seq" : "  MISMATCH");
}

uint64_t treeBytes(const std::filesystem::path &Dir) {
  namespace fs = std::filesystem;
  uint64_t Total = 0;
  std::error_code EC;
  for (fs::recursive_directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC))
    if (It->is_regular_file(EC))
      Total += It->file_size(EC);
  return Total;
}

/// Direct sequential reference for one source (no disk cache — warm
/// traffic is observationally identical to cold by construction, so one
/// cold reference serves every wave of the same source).
json::Value sequentialFindings(const std::string &Source,
                               const AnalysisOptions &Opts, bool &OK) {
  AnalysisRequest R;
  R.Source = Source;
  R.Opts = Opts;
  R.Opts.Telem.Metrics = nullptr;
  R.Opts.Telem.Trace = nullptr;
  R.Opts.CacheDir.clear();
  AnalysisOutcome O = runRequest(std::move(R));
  if (!O.OK) {
    std::printf("  sequential reference failed: %s\n", O.Error.c_str());
    OK = false;
    return json::Value();
  }
  return findingsOnly(O.findingsJson());
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("serve", argc, argv);

  unsigned Programs = 120;
  unsigned ServerThreads = 4;
  uint64_t CacheMaxBytes = 0; // 0 = scale with the corpus below
  uint64_t Seed = 8101;
  for (const std::string &Arg : H.args()) {
    if (Arg.rfind("--programs=", 0) == 0)
      Programs = static_cast<unsigned>(std::stoul(Arg.substr(11)));
    else if (Arg.rfind("--server-threads=", 0) == 0)
      ServerThreads = static_cast<unsigned>(std::stoul(Arg.substr(17)));
    else if (Arg.rfind("--cache-max-bytes=", 0) == 0)
      CacheMaxBytes = std::stoull(Arg.substr(18));
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::stoull(Arg.substr(7));
    else {
      std::fprintf(stderr, "bench_serve: unknown flag %s\n", Arg.c_str());
      return 2;
    }
  }

  if (CacheMaxBytes == 0)
    CacheMaxBytes = static_cast<uint64_t>(Programs) * 8192;

  std::printf("== daemon throughput: %u programs over the wire, "
              "%u-thread server, %llu-byte cache cap ==\n\n",
              Programs, ServerThreads,
              static_cast<unsigned long long>(CacheMaxBytes));

  std::vector<CorpusProgram> Corpus = buildCorpus(Programs, Seed);

  namespace fs = std::filesystem;
  fs::path CacheRoot = fs::temp_directory_path() / "syntox_bench_serve";
  std::error_code EC;
  fs::remove_all(CacheRoot, EC);
  fs::create_directories(CacheRoot, EC);

  ServerConfig Cfg;
  Cfg.Defaults = H.options();
  Cfg.Defaults.Telem.Metrics = nullptr; // the server owns its registry
  Cfg.Defaults.Telem.Trace = nullptr;
  Cfg.Defaults.CacheDir.clear();
  Cfg.TotalThreads = ServerThreads;
  Cfg.CacheDir = CacheRoot.string();
  Cfg.CacheMaxBytes = CacheMaxBytes;
  Cfg.SessionCapacity = Programs; // park every document between waves
  ServeClient Client(Cfg);

  bool AllOk = true;
  bool AllMatch = true;

  // Sequential reference for the initial sources (used by the cold and
  // warm waves — the daemon must answer identically both times).
  std::vector<json::Value> Expected;
  Expected.reserve(Programs);
  auto SeqStart = std::chrono::steady_clock::now();
  for (const CorpusProgram &P : Corpus)
    Expected.push_back(sequentialFindings(P.Source, H.options(), AllOk));
  double SeqSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - SeqStart)
                          .count();
  std::printf("  seq   %5u prog %8.2fs %8.1f prog/s  (in-process "
              "reference)\n",
              Programs, SeqSeconds,
              SeqSeconds > 0 ? Programs / SeqSeconds : 0.0);

  WaveResult Cold = runWave(Client, Corpus, Expected);
  printWave("cold", Cold);
  H.row(waveRow("cold", Cold));
  AllOk &= Cold.OK;
  AllMatch &= Cold.Matches;

  WaveResult Warm = runWave(Client, Corpus, Expected);
  printWave("warm", Warm);
  H.row(waveRow("warm", Warm));
  AllOk &= Warm.OK;
  AllMatch &= Warm.Matches;

  // Edit wave: every document mutated once, fresh sequential reference.
  for (size_t I = 0; I < Corpus.size(); ++I) {
    ProgramGenerator G(Seed + 100000 + I);
    Corpus[I].Source = G.mutate(std::move(Corpus[I].Source));
  }
  Expected.clear();
  for (const CorpusProgram &P : Corpus)
    Expected.push_back(sequentialFindings(P.Source, H.options(), AllOk));

  WaveResult Edit = runWave(Client, Corpus, Expected);
  printWave("edit", Edit);
  H.row(waveRow("edit", Edit));
  AllOk &= Edit.OK;
  AllMatch &= Edit.Matches;

  // The post-save collector must have held the tree at the cap through
  // the whole edit wave of saves.
  uint64_t CacheBytes = treeBytes(CacheRoot);
  bool CacheHeld = CacheBytes <= CacheMaxBytes;
  std::printf("\n  cache tree: %llu bytes (cap %llu) — %s\n",
              static_cast<unsigned long long>(CacheBytes),
              static_cast<unsigned long long>(CacheMaxBytes),
              CacheHeld ? "held" : "OVER CAP");

  MetricsRegistry &M = Client.server().metrics();
  std::printf("  server: %llu session hits, %llu engine reuses, "
              "%llu warm loads, %llu saves, peak %u live threads\n",
              static_cast<unsigned long long>(
                  M.counterValue("serve.session_hits")),
              static_cast<unsigned long long>(
                  M.counterValue("session.engine_reuses")),
              static_cast<unsigned long long>(
                  M.counterValue("persist.loaded")),
              static_cast<unsigned long long>(
                  M.counterValue("persist.saved")),
              Client.server().peakLiveThreads());
  std::printf("  findings: %s\n",
              AllMatch ? "daemon == sequential on every wave"
                       : "DAEMON/SEQUENTIAL MISMATCH");

  H.setField("programs", Programs);
  H.setField("server_threads", ServerThreads);
  H.setField("cache_max_bytes", CacheMaxBytes);
  H.setField("cache_bytes_final", CacheBytes);
  H.setField("cache_cap_held", CacheHeld);
  H.setField("sequential_seconds", SeqSeconds);
  H.setField("session_hits", M.counterValue("serve.session_hits"));
  H.setField("engine_reuses", M.counterValue("session.engine_reuses"));
  H.setField("peak_live_threads",
             static_cast<uint64_t>(Client.server().peakLiveThreads()));
  H.setField("daemon_matches_sequential", AllMatch);
  H.setField("note", "pipelined JSON-lines traffic over a socketpair; "
                     "latencies are the envelopes' timing.total_ms; "
                     "warm/edit waves exercise parked sessions and the "
                     "per-document disk shards under the GC cap");

  fs::remove_all(CacheRoot, EC);

  if (!H.write())
    return 1;
  return (AllOk && AllMatch && CacheHeld) ? 0 : 1;
}
