//===- bench/bench_corpus.cpp - Corpus throughput benchmark ---------------===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis-server load generator: a randomized corpus (plain,
/// goto-heavy, deep-unfolding and aliasing-heavy families, round-robin)
/// pushed through mixed cold / warm / edit traffic, sequentially and
/// through AnalysisBatch. Reports aggregate programs/sec, p50/p99
/// per-request latency, and cache hit/merge rates per wave, and checks
/// that every batch wave's findings are bitwise-identical to the
/// sequential run of the same traffic.
///
/// Sequential and batch waves use disjoint per-program disk-cache trees,
/// both copied from one prime pass, so warm and edit waves start from
/// identical cache state on both sides.
///
/// Extra flags (beyond the shared analysis/telemetry set):
///   --programs=N   corpus size          (default 200)
///   --batch=K      batch worker slots   (default 4)
///   --seed=S       corpus base seed     (default 7001)
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AnalysisBatch.h"
#include "core/AnalysisSession.h"

#include "../tests/common/RandomProgramGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace syntox;
using test::ProgramGenerator;

namespace {

struct CorpusProgram {
  std::string Name;
  uint64_t Seed = 0;
  std::string Source;
  std::string SeqDir;   ///< disk-cache dir for sequential waves
  std::string BatchDir; ///< disk-cache dir for batch waves
};

enum class DirUse { None, Seq, Batch };

std::vector<CorpusProgram> buildCorpus(unsigned N, uint64_t BaseSeed) {
  static const ProgramGenerator::Family Fams[] = {
      ProgramGenerator::Family::Plain,
      ProgramGenerator::Family::GotoHeavy,
      ProgramGenerator::Family::DeepUnfolding,
      ProgramGenerator::Family::AliasingHeavy,
  };
  std::vector<CorpusProgram> Corpus;
  Corpus.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    CorpusProgram P;
    ProgramGenerator::Family F = Fams[I % 4];
    P.Seed = BaseSeed + I;
    P.Name = std::string(ProgramGenerator::familyName(F)) + "-" +
             std::to_string(P.Seed);
    ProgramGenerator G(P.Seed, /*WithAssertions=*/true);
    P.Source = G.generate(F);
    Corpus.push_back(std::move(P));
  }
  return Corpus;
}

/// The findings document minus its timing-dependent members — the
/// bitwise-comparison payload (verdict, conditions, invariant warnings,
/// check classifications).
json::Value findingsOnly(const AnalysisResult &R) {
  json::Value Full = R.toJson();
  json::Value V = json::Value::object();
  for (const auto &KV : Full.members())
    if (KV.first != "stats" && KV.first != "metrics")
      V.set(KV.first, KV.second);
  return V;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

struct WaveResult {
  double Seconds = 0.0;
  std::vector<double> PerRequest;    ///< per-program run seconds
  std::vector<json::Value> Findings; ///< per-program findings-only doc
  uint64_t CacheHits = 0, CacheMisses = 0;
  uint64_t MergeInserted = 0, MergeCombined = 0, MergeDiscarded = 0;
  bool OK = true;
};

void harvestCacheCounters(MetricsRegistry &M, WaveResult &W) {
  W.CacheHits = M.counterValue("cache.hits");
  W.CacheMisses = M.counterValue("cache.misses");
  W.MergeInserted = M.counterValue("cache.merge_inserted");
  W.MergeCombined = M.counterValue("cache.merge_combined");
  W.MergeDiscarded = M.counterValue("cache.merge_discarded");
}

const std::string &dirFor(const CorpusProgram &P, DirUse Use) {
  static const std::string Empty;
  switch (Use) {
  case DirUse::Seq:
    return P.SeqDir;
  case DirUse::Batch:
    return P.BatchDir;
  default:
    return Empty;
  }
}

/// Sequential reference: one AnalysisSession per program, run back to
/// back on this thread.
WaveResult runSequential(const std::vector<CorpusProgram> &Corpus,
                         const AnalysisOptions &Base, DirUse Use) {
  WaveResult W;
  MetricsRegistry Metrics;
  auto WaveStart = std::chrono::steady_clock::now();
  for (const CorpusProgram &P : Corpus) {
    AnalysisOptions Opts = Base;
    Opts.Telem.Metrics = &Metrics;
    Opts.CacheDir = dirFor(P, Use);
    DiagnosticsEngine Diags;
    auto Session = AnalysisSession::create(P.Source, Diags, Opts);
    if (!Session) {
      std::printf("%s: frontend error\n%s", P.Name.c_str(),
                  Diags.str().c_str());
      W.OK = false;
      continue;
    }
    auto Start = std::chrono::steady_clock::now();
    AnalysisResult R = Session->run();
    W.PerRequest.push_back(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - Start)
                               .count());
    W.Findings.push_back(findingsOnly(R));
  }
  W.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - WaveStart)
                  .count();
  harvestCacheCounters(Metrics, W);
  return W;
}

/// Batch execution over one shared worker-slot budget.
WaveResult runBatch(const std::vector<CorpusProgram> &Corpus,
                    const AnalysisOptions &Base, DirUse Use,
                    unsigned BatchSlots) {
  WaveResult W;
  AnalysisBatch::Config Cfg;
  Cfg.TotalThreads = BatchSlots;
  AnalysisBatch Batch(Cfg);
  for (const CorpusProgram &P : Corpus) {
    AnalysisOptions Opts = Base;
    Opts.CacheDir = dirFor(P, Use);
    Batch.add(P.Source, std::move(Opts));
  }
  auto WaveStart = std::chrono::steady_clock::now();
  std::vector<AnalysisBatch::Outcome> Outcomes = Batch.runAll();
  W.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - WaveStart)
                  .count();
  for (AnalysisBatch::Outcome &O : Outcomes) {
    if (!O.OK) {
      std::printf("request %u failed: %s\n", O.Index, O.Error.c_str());
      W.OK = false;
      continue;
    }
    W.PerRequest.push_back(O.Seconds);
    W.Findings.push_back(findingsOnly(*O.Result));
  }
  harvestCacheCounters(Batch.metrics(), W);
  return W;
}

bool sameFindings(const WaveResult &A, const WaveResult &B) {
  if (A.Findings.size() != B.Findings.size())
    return false;
  for (size_t I = 0; I < A.Findings.size(); ++I)
    if (!(A.Findings[I] == B.Findings[I]))
      return false;
  return true;
}

json::Value waveRow(const char *Wave, const char *Mode, const WaveResult &W,
                    int MatchesSeq /* -1 = not applicable */) {
  json::Value Row = json::Value::object();
  Row.set("wave", Wave);
  Row.set("mode", Mode);
  Row.set("programs", static_cast<uint64_t>(W.PerRequest.size()));
  Row.set("seconds", W.Seconds);
  Row.set("programs_per_sec",
          W.Seconds > 0 ? W.PerRequest.size() / W.Seconds : 0.0);
  Row.set("p50_ms", percentile(W.PerRequest, 0.50) * 1e3);
  Row.set("p99_ms", percentile(W.PerRequest, 0.99) * 1e3);
  Row.set("cache_hits", W.CacheHits);
  Row.set("cache_misses", W.CacheMisses);
  Row.set("cache_merge_inserted", W.MergeInserted);
  Row.set("cache_merge_combined", W.MergeCombined);
  Row.set("cache_merge_discarded", W.MergeDiscarded);
  if (MatchesSeq >= 0)
    Row.set("matches_sequential", MatchesSeq != 0);
  return Row;
}

void printWave(const char *Wave, const char *Mode, const WaveResult &W,
               int MatchesSeq) {
  std::printf("  %-5s %-5s %5zu prog %8.2fs %8.1f prog/s  p50 %7.2fms  "
              "p99 %7.2fms%s\n",
              Wave, Mode, W.PerRequest.size(), W.Seconds,
              W.Seconds > 0 ? W.PerRequest.size() / W.Seconds : 0.0,
              percentile(W.PerRequest, 0.50) * 1e3,
              percentile(W.PerRequest, 0.99) * 1e3,
              MatchesSeq < 0    ? ""
              : MatchesSeq != 0 ? "  ==seq"
                                : "  MISMATCH");
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("corpus", argc, argv);

  unsigned Programs = 200;
  unsigned BatchSlots = 4;
  uint64_t Seed = 7001;
  for (const std::string &Arg : H.args()) {
    if (Arg.rfind("--programs=", 0) == 0)
      Programs = static_cast<unsigned>(std::stoul(Arg.substr(11)));
    else if (Arg.rfind("--batch=", 0) == 0)
      BatchSlots = static_cast<unsigned>(std::stoul(Arg.substr(8)));
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::stoull(Arg.substr(7));
    else {
      std::fprintf(stderr, "bench_corpus: unknown flag %s\n", Arg.c_str());
      return 2;
    }
  }

  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("== corpus throughput: %u programs, %u-way batch, %u cores "
              "==\n\n",
              Programs, BatchSlots, Cores);
  if (Cores < 2)
    std::printf("  note: single hardware thread — batch waves measure "
                "scheduling overhead only;\n  wall-clock speedup needs "
                ">= 2 cores.\n\n");

  std::vector<CorpusProgram> Corpus = buildCorpus(Programs, Seed);

  namespace fs = std::filesystem;
  fs::path CacheRoot = fs::temp_directory_path() / "syntox_bench_corpus";
  std::error_code EC;
  fs::remove_all(CacheRoot, EC);
  for (size_t I = 0; I < Corpus.size(); ++I) {
    fs::path Seq = CacheRoot / "seq" / ("p" + std::to_string(I));
    fs::path Bat = CacheRoot / "batch" / ("p" + std::to_string(I));
    fs::create_directories(Seq, EC);
    fs::create_directories(Bat, EC);
    Corpus[I].SeqDir = Seq.string();
    Corpus[I].BatchDir = Bat.string();
  }

  AnalysisOptions Base = H.options();
  // Per-wave registries are wired by the runners; the harness registry
  // would smear counters across waves.
  Base.Telem.Metrics = nullptr;
  bool AllMatch = true;
  bool AllOk = true;

  // Wave 1: cold traffic, no disk cache.
  WaveResult ColdSeq = runSequential(Corpus, Base, DirUse::None);
  printWave("cold", "seq", ColdSeq, -1);
  H.row(waveRow("cold", "seq", ColdSeq, -1));
  WaveResult ColdBatch = runBatch(Corpus, Base, DirUse::None, BatchSlots);
  bool M1 = sameFindings(ColdSeq, ColdBatch);
  printWave("cold", "batch", ColdBatch, M1);
  H.row(waveRow("cold", "batch", ColdBatch, M1));
  AllMatch &= M1;
  AllOk &= ColdSeq.OK && ColdBatch.OK;

  // Prime the sequential cache tree, then clone it for the batch waves
  // so warm/edit traffic starts from identical disk state on both sides.
  WaveResult Prime = runSequential(Corpus, Base, DirUse::Seq);
  printWave("prime", "seq", Prime, -1);
  H.row(waveRow("prime", "seq", Prime, -1));
  AllOk &= Prime.OK;
  fs::remove_all(CacheRoot / "batch", EC);
  fs::copy(CacheRoot / "seq", CacheRoot / "batch",
           fs::copy_options::recursive, EC);
  if (EC)
    std::printf("  warning: cache-tree clone failed: %s\n",
                EC.message().c_str());

  // Wave 2: warm traffic — unchanged programs replay from disk.
  WaveResult WarmSeq = runSequential(Corpus, Base, DirUse::Seq);
  printWave("warm", "seq", WarmSeq, -1);
  H.row(waveRow("warm", "seq", WarmSeq, -1));
  WaveResult WarmBatch = runBatch(Corpus, Base, DirUse::Batch, BatchSlots);
  bool M2 = sameFindings(WarmSeq, WarmBatch);
  printWave("warm", "batch", WarmBatch, M2);
  H.row(waveRow("warm", "batch", WarmBatch, M2));
  AllMatch &= M2;
  AllOk &= WarmSeq.OK && WarmBatch.OK;

  // Wave 3: edit traffic — every program mutated once (a keystroke),
  // re-analyzed against its now-stale disk cache. The seq and batch
  // trees diverge only by what the warm wave itself rewrote, which is
  // identical on both sides.
  for (size_t I = 0; I < Corpus.size(); ++I) {
    ProgramGenerator G(Seed + 100000 + I);
    Corpus[I].Source = G.mutate(std::move(Corpus[I].Source));
  }
  WaveResult EditSeq = runSequential(Corpus, Base, DirUse::Seq);
  printWave("edit", "seq", EditSeq, -1);
  H.row(waveRow("edit", "seq", EditSeq, -1));
  WaveResult EditBatch = runBatch(Corpus, Base, DirUse::Batch, BatchSlots);
  bool M3 = sameFindings(EditSeq, EditBatch);
  printWave("edit", "batch", EditBatch, M3);
  H.row(waveRow("edit", "batch", EditBatch, M3));
  AllMatch &= M3;
  AllOk &= EditSeq.OK && EditBatch.OK;

  double SeqTotal = ColdSeq.Seconds + WarmSeq.Seconds + EditSeq.Seconds;
  double BatchTotal =
      ColdBatch.Seconds + WarmBatch.Seconds + EditBatch.Seconds;
  std::printf("\n  aggregate (cold+warm+edit): seq %.2fs, batch %.2fs "
              "(%.2fx)\n",
              SeqTotal, BatchTotal,
              BatchTotal > 0 ? SeqTotal / BatchTotal : 0.0);
  std::printf("  findings: %s\n",
              AllMatch ? "batch == sequential on every wave"
                       : "BATCH/SEQUENTIAL MISMATCH");

  H.setField("programs", Programs);
  H.setField("batch_slots", BatchSlots);
  H.setField("hardware_threads", Cores);
  H.setField("batch_matches_sequential", AllMatch);
  H.setField("aggregate_speedup",
             BatchTotal > 0 ? SeqTotal / BatchTotal : 0.0);
  H.setField("note", "programs/sec per wave; batch waves share one "
                     "ThreadBudget between request and solver pools; "
                     "single-core hosts cannot show wall-clock speedup");

  fs::remove_all(CacheRoot, EC);

  if (!H.write())
    return 1;
  return (AllMatch && AllOk) ? 0 : 1;
}
