//===- bench/bench_ablation.cpp - E7: design-choice ablations -------------===//
//
// Ablates the design points the paper calls out:
//  - iteration strategy (§6.3/FMPA'93): recursive vs WTO-ordered worklist,
//  - narrowing passes (§6.1: without narrowing, widening overshoots;
//    Harrison's lack of narrowing is "extremely costly" in precision),
//  - widening thresholds (§6.1: "more sophisticated widening operators
//    can easily be designed").
// Reported per configuration: precision (finite interval bounds summed
// over the forward solution), solver steps, and time.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "cfg/CfgBuilder.h"
#include "frontend/Lexer.h"
#include "frontend/PaperPrograms.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "semantics/Analyzer.h"

#include <chrono>
#include <cstdio>

using namespace syntox;

namespace {

struct Built {
  AstContext Ctx;
  DiagnosticsEngine Diags;
  RoutineDecl *Prog = nullptr;
  std::unique_ptr<ProgramCfg> Cfg;
};

void build(Built &B, const std::string &Source) {
  Lexer L(Source, B.Diags);
  Parser P(L.lexAll(), B.Ctx, B.Diags);
  B.Prog = P.parseProgram();
  Sema S(B.Ctx, B.Diags);
  S.analyze(B.Prog);
  CfgBuilder Builder(B.Ctx, B.Diags);
  B.Cfg = Builder.build(B.Prog);
}

/// Runs one ablation configuration. When \p Warm is given, the sweep
/// tries to transplant its chain-slot memos first (importWarmFrom):
/// phases the swept knob does not affect then replay instead of
/// re-iterating, and the row reports the work saved. Knobs that change
/// solver semantics (narrowing passes, widening thresholds) are
/// auto-rejected by the transplant check, so every configuration's
/// numbers stay those of a sound fixpoint.
std::unique_ptr<Analyzer> runConfig(bench::Harness &H, const char *Name,
                                    const Built &B, const char *Label,
                                    Analyzer::Options Opts,
                                    const Analyzer *Warm = nullptr) {
  auto Start = std::chrono::steady_clock::now();
  auto An = std::make_unique<Analyzer>(*B.Cfg, B.Prog, Opts);
  bool Transplanted = Warm && An->importWarmFrom(*Warm);
  An->run();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  H.recordPhases(std::string(Name) + "/" + Label, An->stats(), Seconds);
  const IntervalDomain &D = An->storeOps().domain();
  uint64_t FiniteBounds = 0;
  for (unsigned Node = 0; Node < An->graph().numNodes(); ++Node) {
    const AbstractStore &S = An->forwardAt(Node);
    if (S.isBottom())
      continue;
    S.forEachEntry([&](const VarDecl *, const AbsValue &Value) {
      if (!Value.isInt())
        return;
      FiniteBounds += Value.asInt().Lo > D.minValue();
      FiniteBounds += Value.asInt().Hi < D.maxValue();
    });
  }
  uint64_t Steps = 0, Skips = 0, Saved = 0;
  for (const PhaseStats &P : An->stats().Phases) {
    Steps += P.WideningSteps + P.NarrowingSteps;
    Skips += P.ComponentSkips;
    Saved += P.SkippedSteps;
  }
  std::printf("  %-34s precision: %6llu finite bounds, steps: %7llu, "
              "time: %.4fs%s\n",
              Label, (unsigned long long)FiniteBounds,
              (unsigned long long)Steps, Seconds,
              Transplanted ? " [warm]" : "");
  json::Value Row = json::Value::object();
  Row.set("program", Name);
  Row.set("config", Label);
  Row.set("finite_bounds", FiniteBounds);
  Row.set("steps", Steps);
  Row.set("seconds", Seconds);
  Row.set("warm_transplant", Transplanted);
  Row.set("component_skips", Skips);
  Row.set("saved_steps", Saved);
  H.row(std::move(Row));
  return An;
}

void ablate(bench::Harness &H, const char *Name, const std::string &Source) {
  Built B;
  build(B, Source);
  if (B.Diags.hasErrors()) {
    std::printf("%s: frontend error\n", Name);
    return;
  }
  std::printf("---- %s ----\n", Name);

  Analyzer::Options Base = H.options();
  std::unique_ptr<Analyzer> BaseRun =
      runConfig(H, Name, B, "recursive strategy (default)", Base);

  Analyzer::Options Worklist = Base;
  Worklist.Strategy = IterationStrategy::Worklist;
  runConfig(H, Name, B, "worklist strategy", Worklist, BaseRun.get());

  Analyzer::Options NoNarrow = Base;
  NoNarrow.NarrowingPasses = 0;
  runConfig(H, Name, B, "no narrowing (overshoots)", NoNarrow,
            BaseRun.get());

  Analyzer::Options TwoNarrow = Base;
  TwoNarrow.NarrowingPasses = 2;
  runConfig(H, Name, B, "two narrowing passes", TwoNarrow, BaseRun.get());

  Analyzer::Options Thresholds = Base;
  Thresholds.WideningThresholds = {-1, 0, 1, 10, 100, 101};
  runConfig(H, Name, B, "threshold widening {0,1,10,100,...}", Thresholds,
            BaseRun.get());

  Analyzer::Options Rounds = Base;
  Rounds.BackwardRounds = 2;
  runConfig(H, Name, B, "two backward/forward rounds", Rounds,
            BaseRun.get());

  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("ablation", argc, argv);
  std::printf("==== E7: design-choice ablations ====\n\n");
  ablate(H, "McCarthy9", paper::mcCarthyK(9));
  ablate(H, "HeapSort", paper::HeapSortProgram);
  ablate(H, "BinarySearch", paper::BinarySearchProgram);
  ablate(H, "Intermittent", paper::IntermittentProgram);
  std::printf("Shape: narrowing recovers the precision widening gives up "
              "(no-narrowing has\nfewer finite bounds); both strategies "
              "agree on precision; thresholds never hurt.\n");
  H.write();
  return 0;
}
