//===- bench/bench_findings.cpp - E1: the Figure 1 findings table ---------===//
//
// Regenerates the paper's §2/Figure 1 findings: for each example program
// the necessary condition the abstract debugger derives, side by side
// with the condition the paper reports. The "shape" to check: every row
// matches.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <cstdio>
#include <string>

using namespace syntox;

namespace {

struct Row {
  const char *Program;
  const char *Source;
  bool TerminationGoal;
  const char *PaperClaim;
  const char *ExpectedNeedle; ///< substring that must appear in a condition
};

bool runRow(bench::Harness &H, const Row &R) {
  AnalysisOptions Opts = H.options();
  Opts.TerminationGoal = R.TerminationGoal;
  auto Dbg = H.analyze(R.Program, R.Source, Opts);
  if (!Dbg)
    return false;
  std::string Found = "(no condition)";
  bool Match = false;
  for (const NecessaryCondition &C : Dbg->conditions()) {
    if (C.str().find(R.ExpectedNeedle) != std::string::npos) {
      Found = C.str();
      Match = true;
      break;
    }
  }
  if (!Match && !Dbg->conditions().empty())
    Found = Dbg->conditions().front().str();
  std::printf("%-14s paper: %-34s derived: %-48s %s\n", R.Program,
              R.PaperClaim, Found.c_str(), Match ? "MATCH" : "DIFFER");
  json::Value Json = json::Value::object();
  Json.set("program", R.Program);
  Json.set("paper", R.PaperClaim);
  Json.set("derived", Found);
  Json.set("match", Match);
  H.row(std::move(Json));
  return Match;
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("findings", argc, argv);
  std::printf("==== E1: Figure 1 derived necessary conditions ====\n\n");

  std::string McIntermittent = paper::McCarthyProgram;
  McIntermittent.insert(McIntermittent.find("writeln(m)"),
                        "intermittent(m = 91);\n  ");

  const Row Rows[] = {
      {"For(0..n)", paper::ForProgram, false, "n < 0 at (1)",
       "n in [-oo, -1]"},
      {"For(1..n)", paper::ForProgram1ToN, true, "n <= 100 at (1)",
       "n in [-oo, 100]"},
      {"While", paper::WhileProgram, true, "b = false at (2)", "b = false"},
      {"Fact", paper::FactProgram, true, "x >= 0 at (1)", "x in [0, +oo]"},
      {"Select", paper::SelectProgram, true, "n <= 10 at (1)",
       "n in [-oo, 10]"},
      {"Intermittent", paper::IntermittentProgram, false,
       "i < 10 at (1) [to reach i = 10]", "i in [-oo, 9]"},
      {"McCarthy", McIntermittent.c_str(), false,
       "n <= 101 at (1) [for m = 91]", "n in [-oo, 101]"},
      {"McCarthyBuggy", paper::McCarthyBuggy, true,
       "n > 100 at (1) [to terminate]", "n in [101, +oo]"},
  };

  unsigned Matches = 0, Total = 0;
  for (const Row &R : Rows) {
    Matches += runRow(H, R);
    ++Total;
  }
  std::printf("\n%u/%u paper findings reproduced\n", Matches, Total);
  H.write();
  return Matches == Total ? 0 : 1;
}
