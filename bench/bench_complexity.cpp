//===- bench/bench_complexity.cpp - E5: the §6.3 complexity claim ---------===//
//
// Paper §6.3: the fixpoint complexity is h*n(c+p+l) — at most quadratic —
// but "practice shows that complexity is rarely quadratic", staying near
// linear except for tightly-coupled recursive programs like McCarthy_k.
// Two sweeps:
//   1. sequential loop chains of growing size       -> near-linear time,
//   2. the McCarthy_k generalization for growing k  -> super-linear time
//      (the unfolded size itself grows quadratically with k).
//
//===----------------------------------------------------------------------===//

#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace syntox;

namespace {

/// K sequential counting loops over distinct variables.
std::string loopChain(unsigned K) {
  std::string Out = "program gen;\nvar\n";
  for (unsigned I = 0; I < K; ++I)
    Out += "  v" + std::to_string(I) + " : integer;\n";
  Out += "begin\n";
  for (unsigned I = 0; I < K; ++I) {
    std::string V = "v" + std::to_string(I);
    Out += "  " + V + " := 0;\n";
    Out += "  while " + V + " < 100 do " + V + " := " + V + " + 1;\n";
  }
  Out += "  v0 := 0\nend.\n";
  return Out;
}

struct Measurement {
  unsigned Points = 0;
  double Seconds = 0;
};

Measurement measure(const std::string &Source) {
  DiagnosticsEngine Diags;
  auto Dbg = AbstractDebugger::create(Source, Diags);
  Measurement M;
  if (!Dbg) {
    std::printf("frontend error\n%s", Diags.str().c_str());
    return M;
  }
  double Best = 1e9;
  for (int I = 0; I < 3; ++I) {
    auto Start = std::chrono::steady_clock::now();
    Dbg->analyze();
    Best = std::min(Best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - Start)
                              .count());
  }
  M.Points = static_cast<unsigned>(Dbg->stats().ControlPoints);
  M.Seconds = Best;
  return M;
}

} // namespace

int main() {
  std::printf("==== E5: analysis complexity (paper 6.3) ====\n\n");

  std::printf("-- Loop chains (expected: near-linear time in size) --\n");
  std::printf("%8s %10s %12s %16s\n", "loops", "points", "time (s)",
              "us per point");
  Measurement Prev;
  for (unsigned K : {5u, 10u, 20u, 40u, 80u, 160u}) {
    Measurement M = measure(loopChain(K));
    std::printf("%8u %10u %12.5f %16.2f\n", K, M.Points, M.Seconds,
                1e6 * M.Seconds / M.Points);
    Prev = M;
  }
  std::printf("(a flat us-per-point column = linear scaling)\n\n");

  std::printf("-- McCarthy_k (expected: super-linear, the paper's "
              "pathological case) --\n");
  std::printf("%8s %10s %12s %16s\n", "k", "points", "time (s)",
              "us per point");
  for (unsigned K : {3u, 6u, 9u, 12u, 18u, 24u, 30u}) {
    Measurement M = measure(paper::mcCarthyK(K));
    std::printf("%8u %10u %12.5f %16.2f\n", K, M.Points, M.Seconds,
                1e6 * M.Seconds / M.Points);
  }
  std::printf("(points grow ~quadratically with k: the unfolded call "
              "graph has k+1 instances\n of a body whose size is itself "
              "proportional to k)\n");
  return 0;
}
