//===- bench/bench_complexity.cpp - E5: the §6.3 complexity claim ---------===//
//
// Paper §6.3: the fixpoint complexity is h*n(c+p+l) — at most quadratic —
// but "practice shows that complexity is rarely quadratic", staying near
// linear except for tightly-coupled recursive programs like McCarthy_k.
// Two sweeps:
//   1. sequential loop chains of growing size       -> near-linear time,
//   2. the McCarthy_k generalization for growing k  -> super-linear time
//      (the unfolded size itself grows quadratically with k).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AbstractDebugger.h"
#include "frontend/PaperPrograms.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace syntox;

namespace {

/// K sequential counting loops over distinct variables.
std::string loopChain(unsigned K) {
  std::string Out = "program gen;\nvar\n";
  for (unsigned I = 0; I < K; ++I)
    Out += "  v" + std::to_string(I) + " : integer;\n";
  Out += "begin\n";
  for (unsigned I = 0; I < K; ++I) {
    std::string V = "v" + std::to_string(I);
    Out += "  " + V + " := 0;\n";
    Out += "  while " + V + " < 100 do " + V + " := " + V + " + 1;\n";
  }
  Out += "  v0 := 0\nend.\n";
  return Out;
}

struct Measurement {
  unsigned Points = 0;
  double Seconds = 0;
  double ParallelSeconds = 0;
  /// A 3-round refinement chain, warm-started vs cold: the `warm`
  /// column is Cold3Seconds / Warm3Seconds.
  double Warm3Seconds = 0;
  double Cold3Seconds = 0;
};

double timeOnce(bench::Harness &H, const std::string &Label,
                const std::string &Source,
                const AbstractDebugger::Options &Opts, unsigned *Points) {
  double Best = 1e9;
  const AnalysisStats *Stats = nullptr;
  std::unique_ptr<AbstractDebugger> Last;
  for (int I = 0; I < 3; ++I) {
    // A fresh debugger per repetition so no state (e.g. an enabled
    // transfer cache) carries fills across analyze() calls.
    DiagnosticsEngine Diags;
    auto Dbg = AbstractDebugger::create(Source, Diags, Opts);
    if (!Dbg) {
      std::printf("frontend error\n%s", Diags.str().c_str());
      return 0;
    }
    auto Start = std::chrono::steady_clock::now();
    Dbg->analyze();
    Best = std::min(Best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - Start)
                              .count());
    if (Points)
      *Points = static_cast<unsigned>(Dbg->stats().ControlPoints);
    Last = std::move(Dbg);
    Stats = &Last->stats();
  }
  if (Stats)
    H.recordPhases(Label, *Stats, Best);
  return Best;
}

Measurement measure(bench::Harness &H, const std::string &Label,
                    const std::string &Source) {
  Measurement M;
  M.Seconds = timeOnce(H, Label, Source, H.options(), &M.Points);
  AbstractDebugger::Options Par = H.options();
  Par.Strategy = IterationStrategy::Parallel;
  Par.NumThreads = 4;
  M.ParallelSeconds =
      timeOnce(H, Label + "/parallel4", Source, Par, nullptr);
  AbstractDebugger::Options Chain = H.options();
  Chain.BackwardRounds = 3;
  Chain.WarmStart = true;
  M.Warm3Seconds = timeOnce(H, Label + "/warm3", Source, Chain, nullptr);
  Chain.WarmStart = false;
  M.Cold3Seconds = timeOnce(H, Label + "/cold3", Source, Chain, nullptr);
  return M;
}

void reportRow(bench::Harness &H, const char *Family, unsigned K,
               const Measurement &M) {
  json::Value Row = json::Value::object();
  Row.set("family", Family);
  Row.set("k", K);
  Row.set("points", M.Points);
  Row.set("seconds", M.Seconds);
  Row.set("parallel4_seconds", M.ParallelSeconds);
  Row.set("warm3_seconds", M.Warm3Seconds);
  Row.set("cold3_seconds", M.Cold3Seconds);
  H.row(std::move(Row));
}

} // namespace

int main(int argc, char **argv) {
  bench::Harness H("complexity", argc, argv);
  std::printf("==== E5: analysis complexity (paper 6.3) ====\n\n");

  std::printf("-- Loop chains (expected: near-linear time in size) --\n");
  std::printf("%8s %10s %12s %16s %10s %8s\n", "loops", "points",
              "time (s)", "us per point", "par(4)", "warm");
  for (unsigned K : {5u, 10u, 20u, 40u, 80u, 160u}) {
    Measurement M =
        measure(H, "loopChain/" + std::to_string(K), loopChain(K));
    reportRow(H, "loopChain", K, M);
    std::printf("%8u %10u %12.5f %16.2f %9.2fx %7.2fx\n", K, M.Points,
                M.Seconds, 1e6 * M.Seconds / M.Points,
                M.Seconds / M.ParallelSeconds,
                M.Cold3Seconds / M.Warm3Seconds);
  }
  std::printf("(a flat us-per-point column = linear scaling; the par(4) "
              "speedup stays ~1x because a\n sequential chain has no "
              "independent WTO components — see bench_parallel for the "
              "wide case)\n\n");

  std::printf("-- McCarthy_k (expected: super-linear, the paper's "
              "pathological case) --\n");
  std::printf("%8s %10s %12s %16s %10s %8s\n", "k", "points", "time (s)",
              "us per point", "par(4)", "warm");
  for (unsigned K : {3u, 6u, 9u, 12u, 18u, 24u, 30u}) {
    Measurement M =
        measure(H, "mcCarthy/" + std::to_string(K), paper::mcCarthyK(K));
    reportRow(H, "mcCarthy", K, M);
    std::printf("%8u %10u %12.5f %16.2f %9.2fx %7.2fx\n", K, M.Points,
                M.Seconds, 1e6 * M.Seconds / M.Points,
                M.Seconds / M.ParallelSeconds,
                M.Cold3Seconds / M.Warm3Seconds);
  }
  std::printf("(points grow ~quadratically with k: the unfolded call "
              "graph has k+1 instances\n of a body whose size is itself "
              "proportional to k)\n");
  H.write();
  return 0;
}
