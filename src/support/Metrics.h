//===- support/Metrics.h - Named counters, gauges, histograms ---*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named metrics that subsumes and extends the Figure 2
/// AnalysisStats aggregate: counters (monotone, thread-safe), gauges
/// (last/max value), and histograms (count/sum/min/max plus power-of-two
/// buckets). The analyzer publishes one metric per statistic it tracks
/// ("solver.widenings", "phase.seconds", ...; full taxonomy in
/// DESIGN.md §Telemetry), and exporters snapshot the registry into JSON
/// for --metrics-json and the BENCH_*.json per-phase breakdowns.
///
/// Instrument accessors return stable references: hot paths resolve the
/// name once and bump the returned object without further locking.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_METRICS_H
#define SYNTOX_SUPPORT_METRICS_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace syntox {

/// Monotonically increasing counter.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A point-in-time value; set() overwrites, accumulateMax() keeps the
/// largest observation.
class Gauge {
public:
  void set(int64_t New) { V.store(New, std::memory_order_relaxed); }
  void accumulateMax(int64_t New) {
    int64_t Cur = V.load(std::memory_order_relaxed);
    while (New > Cur &&
           !V.compare_exchange_weak(Cur, New, std::memory_order_relaxed))
      ;
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Distribution summary over double observations. Buckets are upper
/// bounds 2^(I - HalfBuckets), so sub-1.0 observations (phase seconds)
/// and large integer observations (sweep counts) both resolve.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;
  static constexpr int HalfBuckets = 32;

  void observe(double X);

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const;
  double minValue() const;
  double maxValue() const;
  uint64_t bucketCount(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket \p I.
  static double bucketBound(unsigned I);

private:
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> SumBits{0}; ///< double bit-pattern, CAS-updated
  std::atomic<uint64_t> MinBits{0x7FF0000000000000ull};  ///< +inf
  std::atomic<uint64_t> MaxBits{0xFFF0000000000000ull};  ///< -inf
  std::atomic<uint64_t> Buckets[NumBuckets]{};
};

/// Owner of all metrics of one analysis session. Lookup registers on
/// first use; returned references stay valid for the registry lifetime.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Point-in-time JSON snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:
  ///    {"count":..,"sum":..,"min":..,"max":..}}}
  /// Names are emitted sorted so snapshots are diffable.
  json::Value snapshot() const;

  /// Convenience for tests and text reports: counter value or 0.
  uint64_t counterValue(const std::string &Name) const;

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace syntox

#endif // SYNTOX_SUPPORT_METRICS_H
