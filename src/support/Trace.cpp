//===- support/Trace.cpp --------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

#include <algorithm>

using namespace syntox;

std::atomic<TraceRecorder *> syntox::trace::StoreDetachHook{nullptr};

const char *syntox::traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::PhaseBegin:
    return "phase_begin";
  case TraceEventKind::PhaseEnd:
    return "phase_end";
  case TraceEventKind::ComponentBegin:
    return "component_begin";
  case TraceEventKind::ComponentEnd:
    return "component_end";
  case TraceEventKind::Widening:
    return "widening";
  case TraceEventKind::Narrowing:
    return "narrowing";
  case TraceEventKind::TokenUnfold:
    return "token_unfold";
  case TraceEventKind::CacheHit:
    return "cache_hit";
  case TraceEventKind::CacheMiss:
    return "cache_miss";
  case TraceEventKind::TaskEnqueue:
    return "task_enqueue";
  case TraceEventKind::TaskRun:
    return "task_run";
  case TraceEventKind::TaskComplete:
    return "task_complete";
  case TraceEventKind::StoreDetach:
    return "store_detach";
  case TraceEventKind::ComponentSkip:
    return "component_skip";
  case TraceEventKind::DemandSkip:
    return "demand_skip";
  case TraceEventKind::CacheMerge:
    return "cache_merge";
  case TraceEventKind::StorePrune:
    return "store_prune";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

struct TraceRecorder::Buffer {
  uint16_t Tid = 0;
  std::vector<TraceEvent> Events;
};

namespace {
std::atomic<uint64_t> NextRecorderSerial{1};
} // namespace

TraceRecorder::TraceRecorder(uint32_t Mask)
    : Mask(Mask), Serial(NextRecorderSerial.fetch_add(1)),
      Epoch(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Stale thread-local cache entries keyed by this recorder's serial are
  // harmless: serials are never reused, so they can only miss.
}

TraceRecorder::Buffer &TraceRecorder::localBuffer() {
  // Per-thread cache of (recorder serial -> buffer). A thread records
  // to few recorders over its lifetime, so a linear scan beats a map.
  thread_local std::vector<std::pair<uint64_t, Buffer *>> Cache;
  for (auto &[S, B] : Cache)
    if (S == Serial)
      return *B;
  std::lock_guard<std::mutex> Lock(M);
  auto Owned = std::make_unique<Buffer>();
  Owned->Tid = static_cast<uint16_t>(Buffers.size());
  Buffer *B = Owned.get();
  Buffers.push_back(std::move(Owned));
  Cache.emplace_back(Serial, B);
  return *B;
}

void TraceRecorder::record(TraceEventKind K, uint64_t Arg0, uint64_t Arg1,
                           std::string Label) {
  if (!wants(K))
    return;
  Buffer &B = localBuffer();
  B.Events.push_back(
      TraceEvent{K, B.Tid, nowNs(), Arg0, Arg1, std::move(Label)});
}

std::vector<TraceEvent> TraceRecorder::take() {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<TraceEvent> Out;
  size_t Total = 0;
  for (const auto &B : Buffers)
    Total += B->Events.size();
  Out.reserve(Total);
  for (const auto &B : Buffers) {
    Out.insert(Out.end(), std::make_move_iterator(B->Events.begin()),
               std::make_move_iterator(B->Events.end()));
    B->Events.clear();
  }
  // Stable so simultaneous events keep their per-thread order (within a
  // thread timestamps are already non-decreasing).
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B2) {
                     return A.TimeNs < B2.TimeNs;
                   });
  return Out;
}

void TraceRecorder::flushTo(TraceSink &Sink) { Sink.consume(take()); }

unsigned TraceRecorder::numThreads() const {
  std::lock_guard<std::mutex> Lock(M);
  return static_cast<unsigned>(Buffers.size());
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

void syntox::writeJsonLinesTrace(const std::vector<TraceEvent> &Events,
                                 std::ostream &OS) {
  std::string Line;
  for (const TraceEvent &E : Events) {
    Line.clear();
    Line += "{\"ev\":";
    Line += json::quoted(traceEventKindName(E.Kind));
    Line += ",\"t\":";
    Line += std::to_string(E.TimeNs);
    Line += ",\"tid\":";
    Line += std::to_string(E.Tid);
    Line += ",\"arg0\":";
    Line += std::to_string(E.Arg0);
    Line += ",\"arg1\":";
    Line += std::to_string(E.Arg1);
    if (!E.Label.empty()) {
      Line += ",\"label\":";
      Line += json::quoted(E.Label);
    }
    Line += "}\n";
    OS << Line;
  }
}

namespace {

/// Chrome phase letter and span/instant classification per kind.
struct ChromeMapping {
  const char *Ph;  ///< "B", "E" or "i"
  const char *Cat; ///< trace_event category
};

ChromeMapping chromeMapping(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::PhaseBegin:
    return {"B", "phase"};
  case TraceEventKind::PhaseEnd:
    return {"E", "phase"};
  case TraceEventKind::ComponentBegin:
    return {"B", "component"};
  case TraceEventKind::ComponentEnd:
    return {"E", "component"};
  case TraceEventKind::TaskRun:
    return {"B", "task"};
  case TraceEventKind::TaskComplete:
    return {"E", "task"};
  case TraceEventKind::Widening:
  case TraceEventKind::Narrowing:
    return {"i", "lattice"};
  case TraceEventKind::TokenUnfold:
    return {"i", "interproc"};
  case TraceEventKind::CacheHit:
  case TraceEventKind::CacheMiss:
    return {"i", "cache"};
  case TraceEventKind::TaskEnqueue:
    return {"i", "task"};
  case TraceEventKind::StoreDetach:
    return {"i", "store"};
  case TraceEventKind::ComponentSkip:
  case TraceEventKind::DemandSkip:
    return {"i", "component"};
  case TraceEventKind::CacheMerge:
    return {"i", "cache"};
  case TraceEventKind::StorePrune:
    return {"i", "store"};
  }
  return {"i", "other"};
}

std::string chromeName(const TraceEvent &E) {
  if (!E.Label.empty())
    return E.Label;
  switch (E.Kind) {
  case TraceEventKind::ComponentBegin:
  case TraceEventKind::ComponentEnd:
    return (E.Arg1 ? "descend component head " : "stabilize component head ") +
           std::to_string(E.Arg0);
  case TraceEventKind::TaskRun:
  case TraceEventKind::TaskComplete:
  case TraceEventKind::TaskEnqueue:
    return "task " + std::to_string(E.Arg0);
  default:
    return traceEventKindName(E.Kind);
  }
}

} // namespace

void syntox::writeChromeTrace(const std::vector<TraceEvent> &Events,
                              std::ostream &OS) {
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool First = true;
  char Ts[32];
  for (const TraceEvent &E : Events) {
    ChromeMapping Map = chromeMapping(E.Kind);
    if (!First)
      OS << ",\n";
    First = false;
    // trace_event timestamps are microseconds.
    std::snprintf(Ts, sizeof(Ts), "%.3f",
                  static_cast<double>(E.TimeNs) / 1000.0);
    OS << "{\"name\":" << json::quoted(chromeName(E))
       << ",\"cat\":\"" << Map.Cat << "\",\"ph\":\"" << Map.Ph
       << "\",\"ts\":" << Ts << ",\"pid\":1,\"tid\":" << E.Tid;
    if (Map.Ph[0] == 'i')
      OS << ",\"s\":\"t\"";
    OS << ",\"args\":{\"kind\":" << json::quoted(traceEventKindName(E.Kind))
       << ",\"arg0\":" << E.Arg0 << ",\"arg1\":" << E.Arg1 << "}}";
  }
  OS << "\n]}\n";
}
