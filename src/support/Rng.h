//===- support/Rng.h - Deterministic PRNG -----------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny deterministic SplitMix64 PRNG so property tests and benchmark
/// workload generators are reproducible across platforms (std::mt19937
/// distributions are not portable across standard library versions).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_RNG_H
#define SYNTOX_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace syntox {

/// SplitMix64: fast, high-quality 64-bit mixing, fully deterministic.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
    // Span == 0 means the whole 64-bit range.
    uint64_t R = Span == 0 ? next() : next() % Span;
    return static_cast<int64_t>(static_cast<uint64_t>(Lo) + R);
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace syntox

#endif // SYNTOX_SUPPORT_RNG_H
