//===- support/Metrics.cpp ------------------------------------------------===//

#include "support/Metrics.h"

#include <bit>
#include <cmath>

using namespace syntox;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {

double bitsToDouble(uint64_t Bits) { return std::bit_cast<double>(Bits); }
uint64_t doubleToBits(double D) { return std::bit_cast<uint64_t>(D); }

/// CAS-accumulates Bits with Fn(old, X) — used for sum/min/max since
/// std::atomic<double>::fetch_add needs hardware support we don't assume.
template <typename Fn>
void accumulateBits(std::atomic<uint64_t> &Bits, double X, Fn &&F) {
  uint64_t Cur = Bits.load(std::memory_order_relaxed);
  for (;;) {
    double New = F(bitsToDouble(Cur), X);
    if (Bits.compare_exchange_weak(Cur, doubleToBits(New),
                                   std::memory_order_relaxed))
      return;
  }
}

} // namespace

void Histogram::observe(double X) {
  N.fetch_add(1, std::memory_order_relaxed);
  accumulateBits(SumBits, X, [](double A, double B) { return A + B; });
  accumulateBits(MinBits, X,
                 [](double A, double B) { return B < A ? B : A; });
  accumulateBits(MaxBits, X,
                 [](double A, double B) { return B > A ? B : A; });
  int Exp = 0;
  if (X > 0)
    (void)std::frexp(X, &Exp); // X in [2^(Exp-1), 2^Exp)
  int I = Exp + HalfBuckets;
  if (I < 0)
    I = 0;
  if (I >= static_cast<int>(NumBuckets))
    I = NumBuckets - 1;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const {
  return bitsToDouble(SumBits.load(std::memory_order_relaxed));
}
double Histogram::minValue() const {
  return count() ? bitsToDouble(MinBits.load(std::memory_order_relaxed))
                 : 0.0;
}
double Histogram::maxValue() const {
  return count() ? bitsToDouble(MaxBits.load(std::memory_order_relaxed))
                 : 0.0;
}
double Histogram::bucketBound(unsigned I) {
  return std::ldexp(1.0, static_cast<int>(I) - HalfBuckets);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->value();
}

json::Value MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  json::Value Out = json::Value::object();
  json::Value Cs = json::Value::object();
  for (const auto &[Name, C] : Counters) // std::map: already sorted
    Cs.set(Name, C->value());
  json::Value Gs = json::Value::object();
  for (const auto &[Name, G] : Gauges)
    Gs.set(Name, G->value());
  json::Value Hs = json::Value::object();
  for (const auto &[Name, H] : Histograms) {
    json::Value Summary = json::Value::object();
    Summary.set("count", H->count());
    Summary.set("sum", H->sum());
    Summary.set("min", H->minValue());
    Summary.set("max", H->maxValue());
    Hs.set(Name, std::move(Summary));
  }
  Out.set("counters", std::move(Cs));
  Out.set("gauges", std::move(Gs));
  Out.set("histograms", std::move(Hs));
  return Out;
}
