//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>

using namespace syntox;

std::string AnalysisStats::str() const {
  std::string Out;
  char Buf[160];
  for (const PhaseStats &P : Phases) {
    std::snprintf(Buf, sizeof(Buf),
                  "*** %s [round %u]: widening (%llu), narrowing (%llu), "
                  "%.3f s\n",
                  P.Name.c_str(), P.Round,
                  (unsigned long long)P.WideningSteps,
                  (unsigned long long)P.NarrowingSteps, P.Seconds);
    Out += Buf;
    if (P.ComponentSkips > 0) {
      std::snprintf(Buf, sizeof(Buf),
                    "***   warm start: %llu components replayed "
                    "(%llu evaluations avoided)\n",
                    (unsigned long long)P.ComponentSkips,
                    (unsigned long long)P.SkippedSteps);
      Out += Buf;
    }
  }
  std::snprintf(Buf, sizeof(Buf), "*** CPU: %.3f seconds\n", CpuSeconds);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "*** Memory: %llu Kb\n",
                (unsigned long long)(BytesUsed / 1024));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "*** Control points: %llu\n",
                (unsigned long long)ControlPoints);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "*** Equations: %llu (%llu unions, %llu widenings)\n",
                (unsigned long long)Equations, (unsigned long long)Unions,
                (unsigned long long)Widenings);
  Out += Buf;
  if (CacheHits + CacheMisses > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "*** Transfer cache: %llu hits, %llu misses (%.1f%%)\n",
                  (unsigned long long)CacheHits,
                  (unsigned long long)CacheMisses,
                  100.0 * CacheHits / (CacheHits + CacheMisses));
    Out += Buf;
  }
  if (ComponentSkips > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "*** Warm start: %llu component replays, %llu "
                  "evaluations avoided, %llu summaries reused\n",
                  (unsigned long long)ComponentSkips,
                  (unsigned long long)SkippedSteps,
                  (unsigned long long)SummaryReuses);
    Out += Buf;
  }
  if (ParallelComponents > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "*** Parallel components: %llu (%llu tasks, DAG "
                  "width %llu)\n",
                  (unsigned long long)ParallelComponents,
                  (unsigned long long)ParallelTasks,
                  (unsigned long long)ParallelDagWidth);
    Out += Buf;
  }
  if (DemandedComponents + SkippedByDemand > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "*** Demand cone: %llu components solved, %llu "
                  "skipped\n",
                  (unsigned long long)DemandedComponents,
                  (unsigned long long)SkippedByDemand);
    Out += Buf;
  }
  return Out;
}

json::Value PhaseStats::toJson() const {
  json::Value V = json::Value::object();
  V.set("name", Name);
  V.set("round", static_cast<int64_t>(Round));
  V.set("widening_steps", static_cast<int64_t>(WideningSteps));
  V.set("narrowing_steps", static_cast<int64_t>(NarrowingSteps));
  V.set("component_skips", static_cast<int64_t>(ComponentSkips));
  V.set("skipped_steps", static_cast<int64_t>(SkippedSteps));
  V.set("seconds", Seconds);
  return V;
}

json::Value AnalysisStats::toJson() const {
  json::Value V = json::Value::object();
  V.set("control_points", static_cast<int64_t>(ControlPoints));
  V.set("equations", static_cast<int64_t>(Equations));
  V.set("unions", static_cast<int64_t>(Unions));
  V.set("widenings", static_cast<int64_t>(Widenings));
  V.set("narrowings", static_cast<int64_t>(Narrowings));
  V.set("cache_hits", static_cast<int64_t>(CacheHits));
  V.set("cache_misses", static_cast<int64_t>(CacheMisses));
  V.set("cache_merge_inserted", static_cast<int64_t>(CacheMergeInserted));
  V.set("cache_merge_combined", static_cast<int64_t>(CacheMergeCombined));
  V.set("cache_merge_discarded", static_cast<int64_t>(CacheMergeDiscarded));
  V.set("cache_task_arenas", static_cast<int64_t>(CacheTaskArenas));
  V.set("component_skips", static_cast<int64_t>(ComponentSkips));
  V.set("skipped_steps", static_cast<int64_t>(SkippedSteps));
  V.set("summary_reuses", static_cast<int64_t>(SummaryReuses));
  V.set("parallel_components", static_cast<int64_t>(ParallelComponents));
  V.set("parallel_tasks", static_cast<int64_t>(ParallelTasks));
  V.set("parallel_dag_width", static_cast<int64_t>(ParallelDagWidth));
  V.set("demanded_components", static_cast<int64_t>(DemandedComponents));
  V.set("skipped_by_demand", static_cast<int64_t>(SkippedByDemand));
  V.set("bytes_used", static_cast<int64_t>(BytesUsed));
  V.set("cpu_seconds", CpuSeconds);
  json::Value Ps = json::Value::array();
  for (const PhaseStats &P : Phases)
    Ps.push(P.toJson());
  V.set("phases", std::move(Ps));
  return V;
}
