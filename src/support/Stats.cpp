//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>

using namespace syntox;

std::string AnalysisStats::str() const {
  std::string Out;
  char Buf[160];
  for (const PhaseStats &P : Phases) {
    std::snprintf(Buf, sizeof(Buf), "*** %s: widening (%llu), narrowing (%llu)\n",
                  P.Name.c_str(), (unsigned long long)P.WideningSteps,
                  (unsigned long long)P.NarrowingSteps);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "*** CPU: %.3f seconds\n", CpuSeconds);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "*** Memory: %llu Kb\n",
                (unsigned long long)(BytesUsed / 1024));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "*** Control points: %llu\n",
                (unsigned long long)ControlPoints);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "*** Equations: %llu (%llu unions, %llu widenings)\n",
                (unsigned long long)Equations, (unsigned long long)Unions,
                (unsigned long long)Widenings);
  Out += Buf;
  return Out;
}
