//===- support/Json.h - Minimal JSON value, writer and parser ---*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON library backing the telemetry exporters
/// (JSON-lines traces, Chrome trace_event files, metrics dumps) and the
/// machine-readable findings serialization of the session API. Writing
/// keeps object keys in insertion order so emitted files are
/// deterministic and diffable; parsing exists so tests can round-trip
/// and schema-validate every emitted artifact without external
/// dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_JSON_H
#define SYNTOX_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace syntox {
namespace json {

/// One JSON value. Objects preserve insertion order (deterministic
/// output); lookups are linear, which is fine at telemetry sizes.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(std::nullptr_t) : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolVal(B) {}
  Value(int64_t I) : K(Kind::Int), IntVal(I) {}
  Value(int I) : K(Kind::Int), IntVal(I) {}
  Value(unsigned I) : K(Kind::Int), IntVal(I) {}
  Value(uint64_t I) : K(Kind::Int), IntVal(static_cast<int64_t>(I)) {}
  Value(double D) : K(Kind::Double), DoubleVal(D) {}
  Value(std::string S) : K(Kind::String), StrVal(std::move(S)) {}
  Value(const char *S) : K(Kind::String), StrVal(S) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolVal; }
  int64_t asInt() const {
    return K == Kind::Double ? static_cast<int64_t>(DoubleVal) : IntVal;
  }
  double asDouble() const {
    return K == Kind::Int ? static_cast<double>(IntVal) : DoubleVal;
  }
  const std::string &asString() const { return StrVal; }

  /// \name Array interface
  /// @{
  void push(Value V) { Elems.push_back(std::move(V)); }
  size_t size() const { return Elems.size(); }
  const Value &at(size_t I) const { return Elems[I]; }
  const std::vector<Value> &elements() const { return Elems; }
  /// @}

  /// \name Object interface
  /// @{
  /// Sets \p Key (replacing an existing binding, keeping its position).
  void set(const std::string &Key, Value V);
  /// Member lookup; null when absent.
  const Value *find(const std::string &Key) const;
  bool has(const std::string &Key) const { return find(Key) != nullptr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }
  /// @}

  /// Serializes compactly (single line, no trailing newline).
  std::string str() const;
  /// Serializes with 2-space indentation.
  std::string pretty() const;

  bool operator==(const Value &Other) const;

private:
  void write(std::string &Out, int Indent, int Depth) const;

  Kind K;
  bool BoolVal = false;
  int64_t IntVal = 0;
  double DoubleVal = 0;
  std::string StrVal;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Appends the JSON escaping of \p S (without surrounding quotes).
void escape(const std::string &S, std::string &Out);
/// "quoted-and-escaped" rendering of \p S.
std::string quoted(const std::string &S);

/// Parses one JSON document. Returns nullopt on malformed input and, when
/// \p Error is given, stores a short reason with an offset.
std::optional<Value> parse(const std::string &Text,
                           std::string *Error = nullptr);

} // namespace json
} // namespace syntox

#endif // SYNTOX_SUPPORT_JSON_H
