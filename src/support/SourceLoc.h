//===- support/SourceLoc.h - Source locations and ranges --------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types describing positions in analyzed source text.
/// Every AST node, control point and diagnostic carries a SourceLoc so that
/// necessary conditions can be reported at the *origin* of a bug.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_SOURCELOC_H
#define SYNTOX_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace syntox {

/// A 1-based (line, column) position in a source buffer. Line 0 denotes an
/// invalid/unknown location.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const = default;

  bool operator<(const SourceLoc &Other) const {
    if (Line != Other.Line)
      return Line < Other.Line;
    return Column < Other.Column;
  }

  /// Renders as "line:col", or "<unknown>" when invalid.
  std::string str() const;
};

/// A half-open range of source positions [Begin, End).
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace syntox

#endif // SYNTOX_SUPPORT_SOURCELOC_H
