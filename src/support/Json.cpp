//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace syntox;
using namespace syntox::json;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

void Value::set(const std::string &Key, Value V) {
  for (auto &[K2, V2] : Members)
    if (K2 == Key) {
      V2 = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const Value *Value::find(const std::string &Key) const {
  for (const auto &[K2, V2] : Members)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

bool Value::operator==(const Value &Other) const {
  if (K != Other.K) {
    // Ints and doubles compare by numeric value (a parsed "1.0" matches
    // an emitted integer 1).
    if (isNumber() && Other.isNumber())
      return asDouble() == Other.asDouble();
    return false;
  }
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return BoolVal == Other.BoolVal;
  case Kind::Int:
    return IntVal == Other.IntVal;
  case Kind::Double:
    return DoubleVal == Other.DoubleVal;
  case Kind::String:
    return StrVal == Other.StrVal;
  case Kind::Array:
    return Elems == Other.Elems;
  case Kind::Object:
    if (Members.size() != Other.Members.size())
      return false;
    // Key order is irrelevant for equality.
    for (const auto &[Key, V] : Members) {
      const Value *O = Other.find(Key);
      if (!O || !(V == *O))
        return false;
    }
    return true;
  }
  return false;
}

void json::escape(const std::string &S, std::string &Out) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

std::string json::quoted(const std::string &S) {
  std::string Out = "\"";
  escape(S, Out);
  Out += '"';
  return Out;
}

void Value::write(std::string &Out, int Indent, int Depth) const {
  auto Newline = [&](int D) {
    if (Indent < 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolVal ? "true" : "false";
    break;
  case Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)IntVal);
    Out += Buf;
    break;
  }
  case Kind::Double: {
    if (!std::isfinite(DoubleVal)) {
      Out += "null"; // JSON has no inf/nan
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleVal);
    Out += Buf;
    break;
  }
  case Kind::String:
    Out += quoted(StrVal);
    break;
  case Kind::Array:
    Out += '[';
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        Out += Indent < 0 ? "," : ", ";
      Newline(Depth + 1);
      Elems[I].write(Out, Indent, Depth + 1);
    }
    if (!Elems.empty())
      Newline(Depth);
    Out += ']';
    break;
  case Kind::Object:
    Out += '{';
    for (size_t I = 0; I < Members.size(); ++I) {
      if (I)
        Out += Indent < 0 ? "," : ", ";
      Newline(Depth + 1);
      Out += quoted(Members[I].first);
      Out += Indent < 0 ? ":" : ": ";
      Members[I].second.write(Out, Indent, Depth + 1);
    }
    if (!Members.empty())
      Newline(Depth);
    Out += '}';
    break;
  }
}

std::string Value::str() const {
  std::string Out;
  write(Out, /*Indent=*/-1, 0);
  return Out;
}

std::string Value::pretty() const {
  std::string Out;
  write(Out, /*Indent=*/2, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Why) {
    if (Error.empty())
      Error = Why + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (Text.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if (C == '\\') {
        if (++Pos >= Text.size())
          return fail("unterminated escape");
        switch (Text[Pos]) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 >= Text.size())
            return fail("bad \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos + 1 + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= H - '0';
            else if (H >= 'a' && H <= 'f')
              Code |= H - 'a' + 10;
            else if (H >= 'A' && H <= 'F')
              Code |= H - 'A' + 10;
            else
              return fail("bad \\u escape");
          }
          Pos += 4;
          // UTF-8 encode (no surrogate-pair handling: telemetry strings
          // are ASCII).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
        ++Pos;
      } else {
        Out += C;
        ++Pos;
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == 'n') {
      if (!literal("null"))
        return false;
      Out = Value();
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return false;
      Out = Value(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return false;
      Out = Value(false);
      return true;
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    if (C == '[') {
      ++Pos;
      Out = Value::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        Value Elem;
        if (!parseValue(Elem))
          return false;
        Out.push(std::move(Elem));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      Out = Value::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWs();
        std::string Key;
        if (Pos >= Text.size() || !parseString(Key))
          return fail("expected object key");
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        Value Member;
        if (!parseValue(Member))
          return false;
        Out.set(Key, std::move(Member));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // Number.
    size_t Start = Pos;
    if (C == '-')
      ++Pos;
    bool IsDouble = false;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(D))) {
        ++Pos;
      } else if (D == '.' || D == 'e' || D == 'E' || D == '+' || D == '-') {
        IsDouble = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start || (Pos == Start + 1 && C == '-'))
      return fail("expected value");
    std::string Num = Text.substr(Start, Pos - Start);
    if (IsDouble)
      Out = Value(std::strtod(Num.c_str(), nullptr));
    else
      Out = Value(static_cast<int64_t>(std::strtoll(Num.c_str(), nullptr,
                                                    10)));
    return true;
  }
};

} // namespace

std::optional<Value> json::parse(const std::string &Text,
                                 std::string *Error) {
  Parser P(Text);
  Value V;
  if (!P.parseValue(V)) {
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = "trailing characters at offset " + std::to_string(P.Pos);
    return std::nullopt;
  }
  return V;
}
