//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace syntox;

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + severityName(Severity) + ": " + Message;
}

std::string DiagnosticsEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
