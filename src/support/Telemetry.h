//===- support/Telemetry.h - Trace + metrics context ------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry context threaded through the analysis engine: optional
/// pointers to a TraceRecorder and a MetricsRegistry, both owned by the
/// session. Every instrumentation hook degrades to a null-pointer check
/// when the corresponding sink is absent — the cost of the subsystem for
/// untelemetered runs is one predictable branch per hook site (verified
/// by bench_complexity's <2% acceptance bound).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_TELEMETRY_H
#define SYNTOX_SUPPORT_TELEMETRY_H

#include "support/Metrics.h"
#include "support/Trace.h"

namespace syntox {

/// Borrowed telemetry sinks; value-copied into options structs. Null
/// members simply disable that half of the subsystem.
struct Telemetry {
  TraceRecorder *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;

  bool enabled() const { return Trace || Metrics; }
};

/// Records \p K iff tracing is on and the kind is enabled. Use the
/// explicit two-step form at call sites that must build a label.
inline void traceEvent(TraceRecorder *R, TraceEventKind K,
                       uint64_t Arg0 = 0, uint64_t Arg1 = 0) {
  if (R && R->wants(K))
    R->record(K, Arg0, Arg1);
}

} // namespace syntox

#endif // SYNTOX_SUPPORT_TELEMETRY_H
