//===- support/Trace.h - Solver event tracing -------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event tracing for the analysis engine: a stream of typed, timestamped
/// events (solver phases, WTO-component stabilizations, widening and
/// narrowing applications, token unfolding, transfer-cache hits, the
/// parallel task DAG, store detaches) collected by a TraceRecorder and
/// rendered by exporters:
///  - JSON-lines: one self-describing JSON object per event,
///  - Chrome trace_event: loadable in chrome://tracing or Perfetto so the
///    parallel task DAG shows up as overlapping spans on a per-thread
///    timeline.
///
/// The recorder keeps one append-only buffer per recording thread; a
/// thread touches only its own buffer while recording, so events from
/// the parallel fixpoint strategy are collected without a lock on the
/// hot path. take() merges the buffers into one timestamp-ordered
/// stream and must only run while no thread is recording (the solver
/// joins its pool before the analyzer flushes).
///
/// When tracing is off the instrumentation hooks reduce to a
/// null-pointer check — see Telemetry.h.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_TRACE_H
#define SYNTOX_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace syntox {

/// The event taxonomy (documented in DESIGN.md §Telemetry). Span events
/// come in Begin/End pairs; the rest are instants.
enum class TraceEventKind : uint8_t {
  PhaseBegin,     ///< analysis phase starts; Label = phase name
  PhaseEnd,       ///< analysis phase done; Label = phase name
  ComponentBegin, ///< WTO component stabilization starts; Arg0 = head,
                  ///< Arg1 = 0 ascending / 1 descending
  ComponentEnd,   ///< WTO component stabilized; args as ComponentBegin
  Widening,       ///< widening applied; Arg0 = head vertex
  Narrowing,      ///< narrowing applied; Arg0 = head vertex
  TokenUnfold,    ///< activation class created; Arg0 = instance id,
                  ///< Arg1 = call site id, Label = routine name
  CacheHit,       ///< transfer-cache hit; Arg0 = edge, Arg1 = 0 fwd/1 bwd
  CacheMiss,      ///< transfer-cache miss; args as CacheHit
  TaskEnqueue,    ///< parallel task became ready; Arg0 = task index
  TaskRun,        ///< parallel task starts on a worker; Arg0 = task index,
                  ///< Arg1 = number of top-level WTO elements in the task
  TaskComplete,   ///< parallel task finished; Arg0 = task index
  StoreDetach,    ///< COW store payload cloned; Arg0 = entry count
  ComponentSkip,  ///< stable WTO element replayed from the warm-start
                  ///< memo instead of re-iterated; Arg0 = head vertex,
                  ///< Arg1 = 0 ascending / 1 descending sweep
  DemandSkip,     ///< top-level WTO element outside the demand cone,
                  ///< excluded from the schedule for the whole run;
                  ///< Arg0 = head vertex
  CacheMerge,     ///< transfer-cache arena merge barrier; Arg0 = entries
                  ///< inserted into the shared shards, Arg1 = entries
                  ///< combined with existing ones or discarded
  StorePrune,     ///< dead-slot restriction summary of one forward
                  ///< phase; Arg0 = slots dropped, Arg1 = live-slot
                  ///< total of the masks, Label = phase name
};

/// Number of distinct event kinds (for masks and tables).
constexpr unsigned NumTraceEventKinds =
    static_cast<unsigned>(TraceEventKind::StorePrune) + 1;

/// Stable machine-readable name ("phase_begin", "cache_hit", ...).
const char *traceEventKindName(TraceEventKind K);

/// Mask bit for one event kind (free function: usable in constant
/// expressions while TraceRecorder is still incomplete).
constexpr uint32_t traceEventBit(TraceEventKind K) {
  return 1u << static_cast<unsigned>(K);
}

/// One recorded event. TimeNs is nanoseconds since the recorder's epoch
/// (its construction); Tid is a small dense id assigned per recording
/// thread in first-record order.
struct TraceEvent {
  TraceEventKind Kind;
  uint16_t Tid = 0;
  uint64_t TimeNs = 0;
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
  std::string Label;
};

/// Consumer of a finished event stream (events arrive merged and in
/// timestamp order). Exporters implement this.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void consume(const std::vector<TraceEvent> &Events) = 0;
};

/// Collects events from any number of threads into per-thread buffers.
class TraceRecorder {
public:
  static constexpr uint32_t bit(TraceEventKind K) {
    return traceEventBit(K);
  }
  /// Every kind.
  static constexpr uint32_t AllEvents = (1u << NumTraceEventKinds) - 1;
  /// Default mask: everything except the per-lookup/per-clone detail
  /// kinds (cache hit/miss, store detach), whose volume can dwarf the
  /// rest of the stream. Enable them explicitly (--trace-detail).
  static constexpr uint32_t DefaultEvents =
      AllEvents & ~(traceEventBit(TraceEventKind::CacheHit) |
                    traceEventBit(TraceEventKind::CacheMiss) |
                    traceEventBit(TraceEventKind::StoreDetach) |
                    traceEventBit(TraceEventKind::StorePrune));

  explicit TraceRecorder(uint32_t Mask = DefaultEvents);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// Whether \p K is enabled; call sites check this before building
  /// event arguments.
  bool wants(TraceEventKind K) const { return (Mask & bit(K)) != 0; }

  /// The enabled-kind mask this recorder was built with.
  uint32_t mask() const { return Mask; }

  /// Records one event with the current timestamp on the calling
  /// thread's buffer. Events of disabled kinds are dropped.
  void record(TraceEventKind K, uint64_t Arg0 = 0, uint64_t Arg1 = 0,
              std::string Label = {});

  /// Nanoseconds since the recorder epoch.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Merges every per-thread buffer into one timestamp-ordered stream
  /// and resets the buffers. Must not race with record() — callers
  /// flush only after worker threads have been joined.
  std::vector<TraceEvent> take();

  /// take() piped into \p Sink.
  void flushTo(TraceSink &Sink);

  /// Number of recording threads seen so far.
  unsigned numThreads() const;

private:
  struct Buffer;
  Buffer &localBuffer();

  const uint32_t Mask;
  const uint64_t Serial; ///< process-unique, keys the thread-local cache
  const std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<std::unique_ptr<Buffer>> Buffers;
};

/// \name Exporters
/// @{

/// One JSON object per line:
///   {"ev":"widening","t":1234,"tid":0,"arg0":7,"arg1":0}
/// with "label" present when non-empty. See schemas/trace-jsonl.schema.json.
void writeJsonLinesTrace(const std::vector<TraceEvent> &Events,
                         std::ostream &OS);

/// Chrome trace_event JSON ({"traceEvents":[...]}): span kinds become
/// "B"/"E" duration events per thread, instant kinds become "i" events.
/// Load the file in chrome://tracing or https://ui.perfetto.dev.
void writeChromeTrace(const std::vector<TraceEvent> &Events,
                      std::ostream &OS);

enum class TraceFormat { JsonLines, Chrome };

/// TraceSink rendering the consumed stream to \p OS in \p Fmt. Expects a
/// single consume() call for the Chrome format (one JSON document).
class StreamTraceSink : public TraceSink {
public:
  StreamTraceSink(std::ostream &OS, TraceFormat Fmt) : OS(OS), Fmt(Fmt) {}
  void consume(const std::vector<TraceEvent> &Events) override {
    if (Fmt == TraceFormat::Chrome)
      writeChromeTrace(Events, OS);
    else
      writeJsonLinesTrace(Events, OS);
  }

private:
  std::ostream &OS;
  TraceFormat Fmt;
};

/// @}

namespace trace {
/// Process-global hook for COW-store detach events. AbstractStore has no
/// telemetry context of its own (stores are value types created
/// everywhere), so the session installs the recorder here for the
/// duration of a traced run. Null when detail tracing is off — the
/// instrumentation is one relaxed load and branch.
extern std::atomic<TraceRecorder *> StoreDetachHook;
} // namespace trace

} // namespace syntox

#endif // SYNTOX_SUPPORT_TRACE_H
