//===- support/ThreadPool.h - Minimal work-queue thread pool ----*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool over a FIFO job queue, used by the
/// parallel fixpoint strategy to stabilize independent WTO components
/// concurrently. Jobs may submit further jobs (the DAG scheduler enqueues
/// successor components from inside a worker); wait() blocks until the
/// queue is drained *and* every in-flight job has finished.
///
/// Oversubscription guard. When several analyses run concurrently (the
/// AnalysisBatch scheduler), every nested parallel solver would otherwise
/// spawn its own hardware_concurrency workers and the process would run
/// requests x threads workers. A ThreadBudget caps the *total* number of
/// pool workers: installing one via ThreadBudget::Scope makes every
/// ThreadPool constructed under it (on this thread or on a worker thread
/// of such a pool — workers inherit the budget) borrow its workers from
/// the shared slot pool instead of spawning freely. A pool granted zero
/// slots degrades to *inline execution*: submit() runs the job
/// immediately on the calling thread, so nested parallelism loses
/// concurrency but never correctness, and the number of live pool
/// threads never exceeds the budget.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_THREADPOOL_H
#define SYNTOX_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace syntox {

/// A global worker-slot budget shared by every ThreadPool constructed
/// under a ThreadBudget::Scope. Slots are acquired at pool construction
/// and released at pool destruction; live/peak worker counts are tracked
/// so tests (and ops dashboards) can assert the guard holds.
class ThreadBudget {
public:
  /// \p TotalSlots = 0 means one slot per hardware thread (floor 1).
  explicit ThreadBudget(unsigned TotalSlots = 0) {
    if (TotalSlots == 0)
      TotalSlots = std::thread::hardware_concurrency();
    if (TotalSlots == 0)
      TotalSlots = 1;
    Total = TotalSlots;
    Available.store(TotalSlots, std::memory_order_relaxed);
  }

  ThreadBudget(const ThreadBudget &) = delete;
  ThreadBudget &operator=(const ThreadBudget &) = delete;

  unsigned total() const { return Total; }

  /// Takes up to \p Want slots; returns how many were granted (possibly
  /// zero — the caller must then run inline).
  unsigned acquire(unsigned Want) {
    unsigned Avail = Available.load(std::memory_order_relaxed);
    for (;;) {
      unsigned Grant = Avail < Want ? Avail : Want;
      if (Grant == 0)
        return 0;
      if (Available.compare_exchange_weak(Avail, Avail - Grant,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed))
        return Grant;
    }
  }

  void release(unsigned N) {
    Available.fetch_add(N, std::memory_order_acq_rel);
  }

  /// Worker-thread accounting (called by pool workers).
  void noteThreadStart() {
    unsigned Now = Live.fetch_add(1, std::memory_order_acq_rel) + 1;
    unsigned Seen = Peak.load(std::memory_order_relaxed);
    while (Now > Seen &&
           !Peak.compare_exchange_weak(Seen, Now, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
    }
  }
  void noteThreadExit() { Live.fetch_sub(1, std::memory_order_acq_rel); }

  unsigned liveThreads() const {
    return Live.load(std::memory_order_acquire);
  }
  /// The largest number of budgeted pool workers ever alive at once —
  /// the oversubscription guard's acceptance metric (<= total()).
  unsigned peakLiveThreads() const {
    return Peak.load(std::memory_order_acquire);
  }

  /// The budget governing pools constructed on the current thread, or
  /// null (legacy behavior: pools size themselves freely).
  static ThreadBudget *current() { return CurrentBudget; }

  /// Installs a budget as the current one for the enclosing scope (and,
  /// transitively, for the workers of every pool constructed inside it).
  class Scope {
  public:
    explicit Scope(ThreadBudget &B) : Prev(CurrentBudget) {
      CurrentBudget = &B;
    }
    ~Scope() { CurrentBudget = Prev; }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    ThreadBudget *Prev;
  };

private:
  friend class ThreadPool;
  inline static thread_local ThreadBudget *CurrentBudget = nullptr;

  unsigned Total = 1;
  std::atomic<unsigned> Available{1};
  std::atomic<unsigned> Live{0};
  std::atomic<unsigned> Peak{0};
};

class ThreadPool {
public:
  /// Spawns \p NumThreads workers (0 = std::thread::hardware_concurrency,
  /// with a floor of one worker). Under a ThreadBudget::Scope the request
  /// is capped by the available slots instead — possibly to zero workers,
  /// in which case submit() executes jobs inline on the caller.
  explicit ThreadPool(unsigned NumThreads = 0) {
    if (NumThreads == 0)
      NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
    Budget = ThreadBudget::current();
    if (Budget)
      NumThreads = Granted = Budget->acquire(NumThreads);
    Workers.reserve(NumThreads);
    for (unsigned I = 0; I < NumThreads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      ShuttingDown = true;
    }
    WorkAvailable.notify_all();
    for (std::thread &W : Workers)
      W.join();
    if (Budget)
      Budget->release(Granted);
  }

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// True when the pool was granted no budget slots and executes every
  /// job inline on the submitting thread.
  bool inlineMode() const { return Workers.empty(); }

  /// Enqueues a job. Safe to call from worker threads. With zero workers
  /// the job runs here and now: recursion replaces concurrency (depth is
  /// bounded by the submitter's job-DAG depth), and wait() below is then
  /// trivially satisfied.
  void submit(std::function<void()> Job) {
    if (Workers.empty()) {
      Job();
      return;
    }
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Queue.push_back(std::move(Job));
      ++Outstanding;
    }
    WorkAvailable.notify_one();
  }

  /// Blocks until every submitted job (including jobs submitted by other
  /// jobs) has completed. The pool is reusable after wait() returns.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Outstanding == 0; });
  }

private:
  void workerLoop() {
    // Workers inherit the constructing thread's budget so pools created
    // *inside a job* (a nested parallel solver) keep drawing from the
    // same global slot pool, and they count toward its live/peak worker
    // accounting.
    ThreadBudget::CurrentBudget = Budget;
    if (Budget)
      Budget->noteThreadStart();
    for (;;) {
      std::function<void()> Job;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkAvailable.wait(
            Lock, [this] { return ShuttingDown || !Queue.empty(); });
        if (Queue.empty())
          break; // shutting down
        Job = std::move(Queue.front());
        Queue.pop_front();
      }
      Job();
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        if (--Outstanding == 0)
          AllDone.notify_all();
      }
    }
    if (Budget)
      Budget->noteThreadExit();
  }

  std::vector<std::thread> Workers;
  ThreadBudget *Budget = nullptr;
  unsigned Granted = 0;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Outstanding = 0;
  bool ShuttingDown = false;
};

} // namespace syntox

#endif // SYNTOX_SUPPORT_THREADPOOL_H
