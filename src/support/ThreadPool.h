//===- support/ThreadPool.h - Minimal work-queue thread pool ----*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool over a FIFO job queue, used by the
/// parallel fixpoint strategy to stabilize independent WTO components
/// concurrently. Jobs may submit further jobs (the DAG scheduler enqueues
/// successor components from inside a worker); wait() blocks until the
/// queue is drained *and* every in-flight job has finished.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_THREADPOOL_H
#define SYNTOX_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace syntox {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers (0 = std::thread::hardware_concurrency,
  /// with a floor of one worker).
  explicit ThreadPool(unsigned NumThreads = 0) {
    if (NumThreads == 0)
      NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
    Workers.reserve(NumThreads);
    for (unsigned I = 0; I < NumThreads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      ShuttingDown = true;
    }
    WorkAvailable.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues a job. Safe to call from worker threads.
  void submit(std::function<void()> Job) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Queue.push_back(std::move(Job));
      ++Outstanding;
    }
    WorkAvailable.notify_one();
  }

  /// Blocks until every submitted job (including jobs submitted by other
  /// jobs) has completed. The pool is reusable after wait() returns.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Outstanding == 0; });
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Job;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkAvailable.wait(
            Lock, [this] { return ShuttingDown || !Queue.empty(); });
        if (Queue.empty())
          return; // shutting down
        Job = std::move(Queue.front());
        Queue.pop_front();
      }
      Job();
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        if (--Outstanding == 0)
          AllDone.notify_all();
      }
    }
  }

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Outstanding = 0;
  bool ShuttingDown = false;
};

} // namespace syntox

#endif // SYNTOX_SUPPORT_THREADPOOL_H
