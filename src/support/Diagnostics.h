//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Libraries never abort or throw on bad input;
/// they report through a DiagnosticsEngine and return failure. The engine
/// records every diagnostic so tests can assert on exact messages.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_DIAGNOSTICS_H
#define SYNTOX_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace syntox {

/// Severity of a diagnostic, ordered by increasing gravity.
enum class DiagSeverity {
  Note,    ///< Supplementary information attached to another diagnostic.
  Warning, ///< Suspicious but analyzable construct, or a derived
           ///< necessary condition of correctness.
  Error,   ///< Construct that prevents analysis (parse/type errors).
};

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: severity: message".
  std::string str() const;
};

/// Collects diagnostics emitted by the frontend and the analyses.
///
/// The engine is deliberately simple: diagnostics accumulate in emission
/// order and can be inspected, counted or rendered. There is no stream
/// output in library code; callers decide how to surface messages.
class DiagnosticsEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message) {
    if (Severity == DiagSeverity::Error)
      ++NumErrors;
    if (Severity == DiagSeverity::Warning)
      ++NumWarnings;
    Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
  }

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
    NumWarnings = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace syntox

#endif // SYNTOX_SUPPORT_DIAGNOSTICS_H
