//===- support/Stats.h - Analysis statistics --------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters mirroring the statistics panel of the original Syntox session
/// (Figure 2 of the paper): control points, equations, unions, widenings,
/// narrowings, per-phase iteration counts, CPU time and memory. Benchmarks
/// E2 and E4 print these.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_STATS_H
#define SYNTOX_SUPPORT_STATS_H

#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace syntox {

/// Iteration counts for one fixpoint phase (e.g. "Forward analysis:
/// widening (84), narrowing (56)" in Figure 2).
struct PhaseStats {
  std::string Name;            ///< e.g. "forward", "intermittent", "invariant"
  uint64_t WideningSteps = 0;  ///< equation evaluations in the ascending phase
  uint64_t NarrowingSteps = 0; ///< equation evaluations in the descending phase
  /// Refinement round this phase ran in: 0 for the initial forward
  /// analyses, 1..BackwardRounds for the (always, eventually, forward)
  /// chain. Phases of the same name recur across rounds; reporting them
  /// per round is what lets E2 plot the convergence of the decreasing
  /// chain instead of one summed entry.
  unsigned Round = 0;
  /// Stable top-level WTO elements replayed from the warm-start memo
  /// (one count per element per sweep) instead of re-iterated.
  uint64_t ComponentSkips = 0;
  /// Equation evaluations those skips avoided (the recorded cost of the
  /// replayed elements in the round that computed them).
  uint64_t SkippedSteps = 0;
  double Seconds = 0.0;        ///< wall-clock time of this phase

  /// Stable JSON rendering (schemas/findings.schema.json).
  json::Value toJson() const;
};

/// Aggregate statistics for one complete abstract-debugging run.
struct AnalysisStats {
  uint64_t ControlPoints = 0; ///< control points after call-graph unfolding
  uint64_t Equations = 0;     ///< semantic equations solved
  uint64_t Unions = 0;        ///< abstract joins performed
  uint64_t Widenings = 0;     ///< widening applications
  uint64_t Narrowings = 0;    ///< narrowing applications
  uint64_t CacheHits = 0;     ///< transfer-function cache hits (all phases)
  uint64_t CacheMisses = 0;   ///< transfer-function cache misses
  /// Owned-mode cache merge ledger (parallel strategy only; 0 under the
  /// serial strategies): arena entries promoted into the shared shards
  /// at merge barriers, entries a shard already held, entries dropped
  /// (unprofitable or shard full), and task arenas merged.
  uint64_t CacheMergeInserted = 0;
  uint64_t CacheMergeCombined = 0;
  uint64_t CacheMergeDiscarded = 0;
  uint64_t CacheTaskArenas = 0;
  /// Stable WTO elements replayed by the warm-started refinement chain
  /// instead of re-iterated, summed over all phases.
  uint64_t ComponentSkips = 0;
  /// Equation evaluations avoided by those replays.
  uint64_t SkippedSteps = 0;
  /// Callee instances whose every WTO element was replayed in some
  /// phase — rounds that left the token's entry state unchanged and
  /// reused its exit summary outright.
  uint64_t SummaryReuses = 0;
  /// Top-level WTO components scheduled as independent tasks, summed
  /// over all phases (parallel strategy only).
  uint64_t ParallelComponents = 0;
  /// Tasks in the scheduling DAG after chain contraction (parallel
  /// strategy only; maximum over phases — the DAG is per-graph, not
  /// per-phase).
  uint64_t ParallelTasks = 0;
  /// Parallel width of the scheduling DAG: the largest number of tasks
  /// on one longest-path level. Width 1 = the schedule is a chain and
  /// threads cannot overlap; attainable speedup is bounded by the width.
  uint64_t ParallelDagWidth = 0;
  /// Top-level WTO elements scheduled under a demand cone, summed over
  /// all phases (demand-driven queries only; 0 on a full run).
  uint64_t DemandedComponents = 0;
  /// Top-level WTO elements outside the demand cone, excluded from the
  /// schedule (zero live evaluations), summed over all phases.
  uint64_t SkippedByDemand = 0;
  uint64_t BytesUsed = 0;     ///< live analysis structures, in bytes
  double CpuSeconds = 0.0;    ///< wall-clock analysis time
  std::vector<PhaseStats> Phases;

  /// Renders a Figure-2-style summary block.
  std::string str() const;

  /// Stable JSON rendering (schemas/findings.schema.json).
  json::Value toJson() const;
};

} // namespace syntox

#endif // SYNTOX_SUPPORT_STATS_H
