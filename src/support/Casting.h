//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal LLVM-style RTTI replacement. A class opts in by providing
/// `static bool classof(const Base *)`, typically testing a kind
/// discriminator. No v-tables or RTTI required.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SUPPORT_CASTING_H
#define SYNTOX_SUPPORT_CASTING_H

#include <cassert>

namespace syntox {

/// Returns true if \p Val is an instance of To. \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null on kind mismatch.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace syntox

#endif // SYNTOX_SUPPORT_CASTING_H
