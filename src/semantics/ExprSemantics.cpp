//===- semantics/ExprSemantics.cpp - Abstract expression semantics --------===//

#include "semantics/ExprSemantics.h"

#include <cassert>

using namespace syntox;

static CmpOp toCmpOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
    return CmpOp::EQ;
  case BinaryOp::Ne:
    return CmpOp::NE;
  case BinaryOp::Lt:
    return CmpOp::LT;
  case BinaryOp::Le:
    return CmpOp::LE;
  case BinaryOp::Gt:
    return CmpOp::GT;
  case BinaryOp::Ge:
    return CmpOp::GE;
  default:
    assert(false && "not a comparison");
    return CmpOp::EQ;
  }
}

//===----------------------------------------------------------------------===//
// Forward evaluation
//===----------------------------------------------------------------------===//

Interval ExprSemantics::evalInt(const Expr *E, const AbstractStore &S,
                                const FrameMap &F) const {
  if (S.isBottom())
    return Interval::bottom();
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return Interval::singleton(cast<IntLiteralExpr>(E)->value());
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::StringLiteral:
    assert(false && "not an integer expression");
    return D.top();
  case Expr::Kind::VarRef: {
    const auto *Ref = cast<VarRefExpr>(E);
    if (const ConstDecl *C = Ref->constDecl())
      return Interval::singleton(C->value());
    assert(Ref->varDecl() && "unresolved variable");
    return Ops.get(S, F.resolve(Ref->varDecl())).asInt();
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    // Array contents are summarized by one interval over all elements.
    const VarDecl *Array = I->base()->varDecl();
    if (evalInt(I->index(), S, F).isBottom())
      return Interval::bottom();
    return Ops.get(S, Array).asInt();
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    assert(C->builtin() != BuiltinFn::None && "routine call not flattened");
    Interval Arg = evalInt(C->args()[0], S, F);
    switch (C->builtin()) {
    case BuiltinFn::Abs:
      return D.abs(Arg);
    case BuiltinFn::Sqr:
      return D.sqr(Arg);
    default:
      assert(false && "odd() is boolean");
      return D.top();
    }
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    assert(U->op() == UnaryOp::Neg && "'not' is boolean");
    return D.neg(evalInt(U->subExpr(), S, F));
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Interval L = evalInt(B->lhs(), S, F);
    Interval R = evalInt(B->rhs(), S, F);
    switch (B->op()) {
    case BinaryOp::Add:
      return D.add(L, R);
    case BinaryOp::Sub:
      return D.sub(L, R);
    case BinaryOp::Mul:
      return D.mul(L, R);
    case BinaryOp::Div:
      return D.div(L, R);
    case BinaryOp::Mod:
      return D.mod(L, R);
    default:
      assert(false && "not an integer operator");
      return D.top();
    }
  }
  }
  return D.top();
}

BoolLattice ExprSemantics::evalBool(const Expr *E, const AbstractStore &S,
                                    const FrameMap &F) const {
  if (S.isBottom())
    return BoolLattice::bottom();
  switch (E->kind()) {
  case Expr::Kind::BoolLiteral:
    return BoolLattice(cast<BoolLiteralExpr>(E)->value());
  case Expr::Kind::VarRef: {
    const auto *Ref = cast<VarRefExpr>(E);
    if (const ConstDecl *C = Ref->constDecl())
      return BoolLattice(C->value() != 0);
    assert(Ref->varDecl() && "unresolved variable");
    return Ops.get(S, F.resolve(Ref->varDecl())).asBool();
  }
  case Expr::Kind::Index: {
    // Boolean array summary is not tracked: unknown.
    const auto *I = cast<IndexExpr>(E);
    if (evalInt(I->index(), S, F).isBottom())
      return BoolLattice::bottom();
    return BoolLattice::top();
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    assert(C->builtin() == BuiltinFn::Odd && "routine call not flattened");
    Interval Arg = evalInt(C->args()[0], S, F);
    if (Arg.isBottom())
      return BoolLattice::bottom();
    if (Arg.isSingleton())
      return BoolLattice((Arg.Lo % 2) != 0);
    return BoolLattice::top();
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    assert(U->op() == UnaryOp::Not && "negation is integer");
    return evalBool(U->subExpr(), S, F).logicalNot();
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::And)
      return evalBool(B->lhs(), S, F).logicalAnd(evalBool(B->rhs(), S, F));
    if (B->op() == BinaryOp::Or)
      return evalBool(B->lhs(), S, F).logicalOr(evalBool(B->rhs(), S, F));
    assert(isComparisonOp(B->op()) && "not a boolean operator");
    // Boolean equality is handled via the boolean lattice.
    if (B->lhs()->type() && B->lhs()->type()->isBoolean()) {
      BoolLattice L = evalBool(B->lhs(), S, F);
      BoolLattice R = evalBool(B->rhs(), S, F);
      if (L.isBottom() || R.isBottom())
        return BoolLattice::bottom();
      if (L.isConstant() && R.isConstant()) {
        bool Eq = L.constantValue() == R.constantValue();
        return BoolLattice(B->op() == BinaryOp::Eq ? Eq : !Eq);
      }
      return BoolLattice::top();
    }
    Interval L = evalInt(B->lhs(), S, F);
    Interval R = evalInt(B->rhs(), S, F);
    if (L.isBottom() || R.isBottom())
      return BoolLattice::bottom();
    CmpOp Op = toCmpOp(B->op());
    bool MayTrue = D.cmpMayBeTrue(Op, L, R);
    bool MayFalse = D.cmpMayBeFalse(Op, L, R);
    if (MayTrue && MayFalse)
      return BoolLattice::top();
    if (MayTrue)
      return BoolLattice(true);
    if (MayFalse)
      return BoolLattice(false);
    return BoolLattice::bottom();
  }
  case Expr::Kind::IntLiteral:
  case Expr::Kind::StringLiteral:
    assert(false && "not a boolean expression");
    return BoolLattice::top();
  }
  return BoolLattice::top();
}

//===----------------------------------------------------------------------===//
// Backward refinement
//===----------------------------------------------------------------------===//

void ExprSemantics::refineInt(const Expr *E, const Interval &Required,
                              AbstractStore &S, const FrameMap &F) const {
  if (S.isBottom())
    return;
  if (Required.isBottom()) {
    S.setBottom();
    return;
  }
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    if (!Required.contains(cast<IntLiteralExpr>(E)->value()))
      S.setBottom();
    return;
  case Expr::Kind::VarRef: {
    const auto *Ref = cast<VarRefExpr>(E);
    if (const ConstDecl *C = Ref->constDecl()) {
      if (!Required.contains(C->value()))
        S.setBottom();
      return;
    }
    Ops.refine(S, F.resolve(Ref->varDecl()), AbsValue(Required));
    return;
  }
  case Expr::Kind::Index:
    // The summary covers *all* elements; requiring one element's value
    // cannot refine it (weak read). Only infeasibility is propagated.
    if (D.meet(evalInt(E, S, F), Required).isBottom())
      S.setBottom();
    return;
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    Interval Arg = evalInt(C->args()[0], S, F);
    Interval Refined;
    switch (C->builtin()) {
    case BuiltinFn::Abs:
      Refined = D.bwdAbs(Required, Arg);
      break;
    case BuiltinFn::Sqr:
      Refined = D.bwdSqr(Required, Arg);
      break;
    default:
      return;
    }
    refineInt(C->args()[0], Refined, S, F);
    return;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Interval Sub = evalInt(U->subExpr(), S, F);
    refineInt(U->subExpr(), D.bwdNeg(Required, Sub), S, F);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Interval L = evalInt(B->lhs(), S, F);
    Interval R = evalInt(B->rhs(), S, F);
    std::pair<Interval, Interval> Refined;
    switch (B->op()) {
    case BinaryOp::Add:
      Refined = D.bwdAdd(Required, L, R);
      break;
    case BinaryOp::Sub:
      Refined = D.bwdSub(Required, L, R);
      break;
    case BinaryOp::Mul:
      Refined = D.bwdMul(Required, L, R);
      break;
    case BinaryOp::Div:
      Refined = D.bwdDiv(Required, L, R);
      break;
    case BinaryOp::Mod:
      Refined = D.bwdMod(Required, L, R);
      break;
    default:
      return;
    }
    refineInt(B->lhs(), Refined.first, S, F);
    refineInt(B->rhs(), Refined.second, S, F);
    return;
  }
  default:
    return;
  }
}

void ExprSemantics::refineBool(const Expr *E, bool Required, AbstractStore &S,
                               const FrameMap &F) const {
  if (S.isBottom())
    return;
  switch (E->kind()) {
  case Expr::Kind::BoolLiteral:
    if (cast<BoolLiteralExpr>(E)->value() != Required)
      S.setBottom();
    return;
  case Expr::Kind::VarRef: {
    const auto *Ref = cast<VarRefExpr>(E);
    if (const ConstDecl *C = Ref->constDecl()) {
      if ((C->value() != 0) != Required)
        S.setBottom();
      return;
    }
    Ops.refine(S, F.resolve(Ref->varDecl()),
               AbsValue(BoolLattice(Required)));
    return;
  }
  case Expr::Kind::Index:
    return; // boolean array summary: no refinement
  case Expr::Kind::Call:
    return; // odd(): no refinement
  case Expr::Kind::Unary:
    refineBool(cast<UnaryExpr>(E)->subExpr(), !Required, S, F);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::And || B->op() == BinaryOp::Or) {
      bool IsAnd = B->op() == BinaryOp::And;
      if (IsAnd == Required) {
        // Both sides are forced (to Required).
        refineBool(B->lhs(), Required, S, F);
        refineBool(B->rhs(), Required, S, F);
      } else {
        // One of the two sides is forced: join of the two refinements.
        AbstractStore Left = S;
        refineBool(B->lhs(), Required, Left, F);
        AbstractStore Right = S;
        refineBool(B->rhs(), Required, Right, F);
        S = Ops.join(Left, Right);
      }
      return;
    }
    assert(isComparisonOp(B->op()) && "not a boolean operator");
    if (B->lhs()->type() && B->lhs()->type()->isBoolean()) {
      // Boolean (in)equality: refine only when one side is constant.
      bool WantEqual = (B->op() == BinaryOp::Eq) == Required;
      BoolLattice L = evalBool(B->lhs(), S, F);
      BoolLattice R = evalBool(B->rhs(), S, F);
      if (L.isBottom() || R.isBottom()) {
        S.setBottom();
        return;
      }
      if (R.isConstant())
        refineBool(B->lhs(), WantEqual == R.constantValue(), S, F);
      if (L.isConstant())
        refineBool(B->rhs(), WantEqual == L.constantValue(), S, F);
      return;
    }
    CmpOp Op = toCmpOp(B->op());
    if (!Required)
      Op = negateCmp(Op);
    Interval L = evalInt(B->lhs(), S, F);
    Interval R = evalInt(B->rhs(), S, F);
    auto [NewL, NewR] = D.assumeCmp(Op, L, R);
    refineInt(B->lhs(), NewL, S, F);
    refineInt(B->rhs(), NewR, S, F);
    return;
  }
  default:
    return;
  }
}
