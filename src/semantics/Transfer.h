//===- semantics/Transfer.h - Action transfer functions ---------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward and backward abstract transfer functions for the non-call CFG
/// actions — the [x := e], [x := e]⁻¹, [i < 100] primitives of paper §4.
/// Call/return/channel transfer lives in the interprocedural layer.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_TRANSFER_H
#define SYNTOX_SEMANTICS_TRANSFER_H

#include "cfg/Cfg.h"
#include "semantics/ExprSemantics.h"
#include "support/Telemetry.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace syntox {

class Transfer {
public:
  Transfer(const StoreOps &Ops, const ExprSemantics &Exprs,
           const ProgramCfg &Cfg)
      : Ops(Ops), Exprs(Exprs), Cfg(Cfg) {}

  /// Forward transfer: the abstract post-state of executing \p A from
  /// \p In.
  AbstractStore fwd(const Action &A, const AbstractStore &In,
                    const FrameMap &F) const;

  /// Backward transfer: an over-approximation of the states whose
  /// successor through \p A lies in \p Out (the [·]⁻¹ primitives).
  AbstractStore bwd(const Action &A, const AbstractStore &Out,
                    const FrameMap &F) const;

private:
  AbstractStore applyCheck(const CheckInfo &Info, AbstractStore S,
                           const FrameMap &F) const;

  const StoreOps &Ops;
  const ExprSemantics &Exprs;
  const ProgramCfg &Cfg;
};

/// A memoizing cache in front of the per-edge transfer functions, keyed
/// on (edge, direction, input-store hash). The transfer functions are
/// pure, so memoization never changes results; lookups confirm hash
/// matches with full store equality, so hash collisions cost time, never
/// soundness. One cache is shared by every phase of the §3 refinement
/// chain: the final forward pass and the backward analyses reuse
/// evaluations from earlier phases whenever the flowing store is
/// unchanged (the envelope meet happens *after* the edge transfer, so a
/// tightened envelope does not invalidate entries).
///
/// Thread-safe: the parallel iteration strategy calls into the cache
/// concurrently from independent WTO components. The store is sharded;
/// the transfer itself runs outside any lock (a racing miss computes the
/// same value twice, which is benign).
///
/// Ownership model (parallel solves). Under the serial strategies every
/// lookup takes a shard mutex — uncontended and cheap. Under the
/// parallel strategy that mutex *is* contended by every worker, enough
/// to make the cache a net loss on chain-shaped programs (EXPERIMENTS.md
/// E-store). The solver therefore drives the cache through an owned
/// mode:
///  - beginOwned() freezes the shared shards: no insertions, so workers
///    probe them without taking any lock;
///  - each parallel task brackets beginTask()/endTask(), giving it a
///    private lock-free *arena* for the task's lifetime. A lookup probes
///    the arena, then the frozen shards (the copy-on-write seeding: the
///    arena shares the shard entries by reading through to them rather
///    than copying), and inserts misses into the arena only;
///  - endTask() parks the arena on a pending list (one mutex push per
///    task — off the per-lookup hot path);
///  - mergePending() — called by the solver at sweep barriers, while no
///    task is running — folds profitable arena entries (hit count >=
///    the merge threshold, i.e. proven reuse) back into the shared
///    shards and discards the rest, so the next sweep's lock-free
///    probes see them. endOwned() merges any stragglers and thaws the
///    shards.
/// Happens-before for the lock-free probes comes from the solver's pool:
/// merges run strictly between Pool->wait() and the next submit().
class TransferCache {
public:
  /// \p MaxEntries caps the number of memoized stores (oldest shards
  /// simply stop inserting once full — lookups stay correct).
  explicit TransferCache(const StoreOps &Ops, size_t MaxEntries = 1 << 20)
      : Ops(Ops), MaxPerShard(MaxEntries / NumShards + 1) {}

  ~TransferCache();

  TransferCache(const TransferCache &) = delete;
  TransferCache &operator=(const TransferCache &) = delete;

  /// Memoized Transfer::fwd for the action of edge \p EdgeId. Returns a
  /// pointer into the cache: a hit costs a hash and a bucket probe, not
  /// a store copy, which is what makes memoization cheaper than
  /// re-running even the inexpensive interval transfers. The pointee is
  /// heap-allocated and never evicted, so the pointer stays valid until
  /// clear() — but callers should consume it immediately (on a full
  /// shard it points to a thread-local overflow slot reused by the next
  /// overflowing call).
  const AbstractStore *fwd(const Transfer &Xfer, unsigned EdgeId,
                           const Action &A, const AbstractStore &In,
                           const FrameMap &F);

  /// Memoized Transfer::bwd for the action of edge \p EdgeId. Same
  /// lifetime contract as fwd().
  const AbstractStore *bwd(const Transfer &Xfer, unsigned EdgeId,
                           const Action &A, const AbstractStore &Out,
                           const FrameMap &F);

  /// Aggregate counters, collected in a single pass over the shards
  /// (plus the merge ledger maintained at barriers).
  struct Stats {
    uint64_t Hits = 0;   ///< lookups answered (shared, frozen or arena)
    uint64_t Misses = 0; ///< lookups that ran the transfer
    size_t Size = 0;     ///< entries resident in the shared shards
    uint64_t MergeInserted = 0;  ///< arena entries merged into the shards
    uint64_t MergeCombined = 0;  ///< arena entries a shard already held
    uint64_t MergeDiscarded = 0; ///< arena entries dropped (unprofitable
                                 ///< or shard full)
    uint64_t TaskArenas = 0;     ///< task arenas merged so far
  };
  Stats statsSnapshot() const;

  uint64_t hits() const { return statsSnapshot().Hits; }
  uint64_t misses() const { return statsSnapshot().Misses; }
  size_t size() const { return statsSnapshot().Size; }
  void clear();

  /// \name Owned mode (see the class comment)
  /// @{
  /// Freezes the shared shards; subsequent lookups must run inside a
  /// beginTask()/endTask() bracket (a stray lookup still answers
  /// correctly from the frozen shards, it just cannot insert).
  void beginOwned();
  /// Merges pending arenas and thaws the shards.
  void endOwned();
  /// Opens a private arena for the calling thread (nestable across
  /// caches; one arena per cache per thread).
  void beginTask();
  /// Closes the calling thread's arena and parks it for merging.
  void endTask();
  /// Folds parked arenas into the shared shards. Must not run
  /// concurrently with owned-mode lookups — the solver calls it at
  /// sweep barriers, after its pool drained.
  void mergePending();
  /// An arena entry is merged back when it served at least this many
  /// arena-local hits. The default 0 merges every entry: most reuse is
  /// *across* sweeps (the next sweep's lookup of a stabilized store),
  /// which an arena-local count cannot see — gating on it would discard
  /// the entry and recompute the transfer every sweep. Raise the
  /// threshold only to trade shard growth for recomputation.
  void setMergeThreshold(uint32_t N) { MergeThreshold = N; }
  /// @}

  /// Installs a trace recorder for per-lookup cache_hit/cache_miss
  /// events (high-volume: masked out of TraceRecorder::DefaultEvents)
  /// and per-barrier cache_merge events.
  void setTrace(TraceRecorder *R) { Trace = R; }

private:
  struct Entry {
    uint64_t Key = 0;
    uint32_t EdgeId = 0;
    bool Forward = true;
    AbstractStore In;
    /// Owned on the heap so the address survives bucket reallocation
    /// and concurrent insertions; freed only by clear()/destruction.
    std::unique_ptr<const AbstractStore> Result;
  };
  /// Each shard is a small flat hash table: the 64-bit lookup key is
  /// already a mixed hash, so the bucket index is just a bit slice —
  /// no rehashing policy, no prime modulo, one cache line to the bucket
  /// vector header. Low key bits pick the shard, the next bits the
  /// bucket.
  struct Shard {
    static constexpr unsigned NumBuckets = 256;
    mutable std::mutex M;
    std::array<std::vector<Entry>, NumBuckets> Buckets;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    size_t Count = 0;
  };

  /// One task's private cache arena: a small flat hash table with the
  /// same bucket discipline as a shard, but single-owner and lock-free.
  /// Per-entry hit counts drive the merge-back decision.
  struct ArenaEntry {
    uint64_t Key = 0;
    uint32_t EdgeId = 0;
    bool Forward = true;
    uint32_t Hits = 0; ///< arena-local reuses of this entry
    AbstractStore In;
    std::unique_ptr<const AbstractStore> Result;
  };
  /// Sized for the worst case of chain contraction: a path-shaped DAG
  /// collapses into ONE task, so a single arena can hold the whole
  /// program's working set and its buckets must stay short (the bucket
  /// array is lazily-allocated vectors — a wide empty arena costs ~50KB,
  /// not entries).
  struct Arena {
    static constexpr unsigned NumBuckets = 2048;
    std::array<std::vector<ArenaEntry>, NumBuckets> Buckets;
    /// Indices of non-empty buckets, in first-touch order: merging and
    /// recycling visit only these instead of sweeping all 2048.
    std::vector<unsigned> Touched;
    size_t Count = 0;
    uint64_t Hits = 0;   ///< arena + frozen-shard hits inside the task
    uint64_t Misses = 0; ///< transfers computed inside the task
  };

  template <typename Compute>
  const AbstractStore *lookupOrCompute(bool Forward, unsigned EdgeId,
                                       const AbstractStore &In,
                                       Compute &&Fn);
  template <typename Compute>
  const AbstractStore *lookupOwned(uint64_t Key, bool Forward,
                                   unsigned EdgeId, const AbstractStore &In,
                                   Compute &&Fn);
  Arena *currentArena() const;

  static constexpr unsigned NumShards = 64;
  const StoreOps &Ops;
  size_t MaxPerShard;
  TraceRecorder *Trace = nullptr;
  std::array<Shard, NumShards> Shards;

  /// Owned-mode state. Owned is written by beginOwned()/endOwned() on
  /// the solver's coordinating thread before/after its pool runs; the
  /// pool's queue mutex gives the workers a happens-before edge to it.
  bool Owned = false;
  uint32_t MergeThreshold = 0;
  mutable std::mutex PendingMutex;
  std::vector<std::unique_ptr<Arena>> Pending;
  /// Drained arenas waiting for reuse: a parallel solve opens one arena
  /// per task per sweep, and constructing the bucket array fresh each
  /// time costs more than the probes it serves. Guarded by PendingMutex.
  std::vector<std::unique_ptr<Arena>> FreeArenas;
  /// Merge ledger; mutated only at barriers (single-threaded), read by
  /// statsSnapshot() after the solve.
  uint64_t MergeInserted = 0;
  uint64_t MergeCombined = 0;
  uint64_t MergeDiscarded = 0;
  uint64_t TaskArenas = 0;
  uint64_t MergedArenaHits = 0;
  uint64_t MergedArenaMisses = 0;
  /// Hits/misses of owned-mode lookups that ran outside any task
  /// bracket (defensive path; normally zero).
  std::atomic<uint64_t> StrayHits{0};
  std::atomic<uint64_t> StrayMisses{0};
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_TRANSFER_H
