//===- semantics/Transfer.h - Action transfer functions ---------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward and backward abstract transfer functions for the non-call CFG
/// actions — the [x := e], [x := e]⁻¹, [i < 100] primitives of paper §4.
/// Call/return/channel transfer lives in the interprocedural layer.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_TRANSFER_H
#define SYNTOX_SEMANTICS_TRANSFER_H

#include "cfg/Cfg.h"
#include "semantics/ExprSemantics.h"

namespace syntox {

class Transfer {
public:
  Transfer(const StoreOps &Ops, const ExprSemantics &Exprs,
           const ProgramCfg &Cfg)
      : Ops(Ops), Exprs(Exprs), Cfg(Cfg) {}

  /// Forward transfer: the abstract post-state of executing \p A from
  /// \p In.
  AbstractStore fwd(const Action &A, const AbstractStore &In,
                    const FrameMap &F) const;

  /// Backward transfer: an over-approximation of the states whose
  /// successor through \p A lies in \p Out (the [·]⁻¹ primitives).
  AbstractStore bwd(const Action &A, const AbstractStore &Out,
                    const FrameMap &F) const;

private:
  AbstractStore applyCheck(const CheckInfo &Info, AbstractStore S,
                           const FrameMap &F) const;

  const StoreOps &Ops;
  const ExprSemantics &Exprs;
  const ProgramCfg &Cfg;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_TRANSFER_H
