//===- semantics/Transfer.h - Action transfer functions ---------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward and backward abstract transfer functions for the non-call CFG
/// actions — the [x := e], [x := e]⁻¹, [i < 100] primitives of paper §4.
/// Call/return/channel transfer lives in the interprocedural layer.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_TRANSFER_H
#define SYNTOX_SEMANTICS_TRANSFER_H

#include "cfg/Cfg.h"
#include "semantics/ExprSemantics.h"
#include "support/Telemetry.h"

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace syntox {

class Transfer {
public:
  Transfer(const StoreOps &Ops, const ExprSemantics &Exprs,
           const ProgramCfg &Cfg)
      : Ops(Ops), Exprs(Exprs), Cfg(Cfg) {}

  /// Forward transfer: the abstract post-state of executing \p A from
  /// \p In.
  AbstractStore fwd(const Action &A, const AbstractStore &In,
                    const FrameMap &F) const;

  /// Backward transfer: an over-approximation of the states whose
  /// successor through \p A lies in \p Out (the [·]⁻¹ primitives).
  AbstractStore bwd(const Action &A, const AbstractStore &Out,
                    const FrameMap &F) const;

private:
  AbstractStore applyCheck(const CheckInfo &Info, AbstractStore S,
                           const FrameMap &F) const;

  const StoreOps &Ops;
  const ExprSemantics &Exprs;
  const ProgramCfg &Cfg;
};

/// A memoizing cache in front of the per-edge transfer functions, keyed
/// on (edge, direction, input-store hash). The transfer functions are
/// pure, so memoization never changes results; lookups confirm hash
/// matches with full store equality, so hash collisions cost time, never
/// soundness. One cache is shared by every phase of the §3 refinement
/// chain: the final forward pass and the backward analyses reuse
/// evaluations from earlier phases whenever the flowing store is
/// unchanged (the envelope meet happens *after* the edge transfer, so a
/// tightened envelope does not invalidate entries).
///
/// Thread-safe: the parallel iteration strategy calls into the cache
/// concurrently from independent WTO components. The store is sharded;
/// the transfer itself runs outside any lock (a racing miss computes the
/// same value twice, which is benign).
class TransferCache {
public:
  /// \p MaxEntries caps the number of memoized stores (oldest shards
  /// simply stop inserting once full — lookups stay correct).
  explicit TransferCache(const StoreOps &Ops, size_t MaxEntries = 1 << 20)
      : Ops(Ops), MaxPerShard(MaxEntries / NumShards + 1) {}

  TransferCache(const TransferCache &) = delete;
  TransferCache &operator=(const TransferCache &) = delete;

  /// Memoized Transfer::fwd for the action of edge \p EdgeId. Returns a
  /// pointer into the cache: a hit costs a hash and a bucket probe, not
  /// a store copy, which is what makes memoization cheaper than
  /// re-running even the inexpensive interval transfers. The pointee is
  /// heap-allocated and never evicted, so the pointer stays valid until
  /// clear() — but callers should consume it immediately (on a full
  /// shard it points to a thread-local overflow slot reused by the next
  /// overflowing call).
  const AbstractStore *fwd(const Transfer &Xfer, unsigned EdgeId,
                           const Action &A, const AbstractStore &In,
                           const FrameMap &F);

  /// Memoized Transfer::bwd for the action of edge \p EdgeId. Same
  /// lifetime contract as fwd().
  const AbstractStore *bwd(const Transfer &Xfer, unsigned EdgeId,
                           const Action &A, const AbstractStore &Out,
                           const FrameMap &F);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  void clear();

  /// Installs a trace recorder for per-lookup cache_hit/cache_miss
  /// events (high-volume: masked out of TraceRecorder::DefaultEvents).
  void setTrace(TraceRecorder *R) { Trace = R; }

private:
  struct Entry {
    uint64_t Key = 0;
    uint32_t EdgeId = 0;
    bool Forward = true;
    AbstractStore In;
    /// Owned on the heap so the address survives bucket reallocation
    /// and concurrent insertions; freed only by clear()/destruction.
    std::unique_ptr<const AbstractStore> Result;
  };
  /// Each shard is a small flat hash table: the 64-bit lookup key is
  /// already a mixed hash, so the bucket index is just a bit slice —
  /// no rehashing policy, no prime modulo, one cache line to the bucket
  /// vector header. Low key bits pick the shard, the next bits the
  /// bucket.
  struct Shard {
    static constexpr unsigned NumBuckets = 256;
    mutable std::mutex M;
    std::array<std::vector<Entry>, NumBuckets> Buckets;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    size_t Count = 0;
  };

  template <typename Compute>
  const AbstractStore *lookupOrCompute(bool Forward, unsigned EdgeId,
                                       const AbstractStore &In,
                                       Compute &&Fn);

  static constexpr unsigned NumShards = 64;
  const StoreOps &Ops;
  size_t MaxPerShard;
  TraceRecorder *Trace = nullptr;
  std::array<Shard, NumShards> Shards;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_TRANSFER_H
