//===- semantics/Interproc.h - Token-based call-graph unfolding -*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural structure of the analyses, following the paper's
/// copy-in/copy-out semantics (§5) with call-graph unfolding by *tokens*
/// (§6.4): each procedure activation class is keyed by its static call
/// site and the exact alias partition of its reference parameters. Every
/// (routine, token) pair — an *instance* — gets its own copy of the
/// routine's control points, and the instances are linked by copy-in,
/// copy-out and non-local-jump (channel) edges into one global
/// *supergraph* whose forward equation system is solved directly; the
/// backward systems are its inversion.
///
/// Aliasing is exact: a `var` formal is redirected to its *root* location
/// (the origin variable after resolving chains of reference passing), so
/// two formals bound to the same variable share one store slot and every
/// scalar assignment stays a strong update — the key point of §5.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_INTERPROC_H
#define SYNTOX_SEMANTICS_INTERPROC_H

#include "cfg/Cfg.h"
#include "fixpoint/Digraph.h"
#include "semantics/StableIds.h"
#include "semantics/Transfer.h"

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <vector>

namespace syntox {

/// An activation-class key: the static call site plus the roots of the
/// reference formals (in parameter order). CallSiteId 0 is the program.
struct ActivationToken {
  const RoutineDecl *Routine = nullptr;
  /// 0 when call sites are merged (context-insensitive mode).
  unsigned CallSiteId = 0;
  std::vector<const VarDecl *> Roots;

  bool operator<(const ActivationToken &Other) const {
    if (Routine != Other.Routine)
      return Routine < Other.Routine;
    if (CallSiteId != Other.CallSiteId)
      return CallSiteId < Other.CallSiteId;
    return Roots < Other.Roots;
  }
  bool operator==(const ActivationToken &Other) const = default;
};

/// One unfolded activation class of a routine.
struct Instance {
  unsigned Id = 0;
  RoutineDecl *R = nullptr;
  const RoutineCfg *Cfg = nullptr;
  ActivationToken Tok;
  unsigned FirstNode = 0; ///< supergraph node of this instance's point 0
  FrameMap Frame;         ///< var formals -> roots
  /// Locations copied in and out across this instance's boundary: the
  /// variables of every proper ancestor routine plus the roots of the
  /// reference formals.
  std::vector<const VarDecl *> SharedKeys;
  /// The SharedKeys subset the forward copy-in/copy-out actually loops:
  /// defaults to all of SharedKeys, narrowed by the Analyzer to the
  /// transitively accessed set when dead-slot pruning is on (see
  /// semantics/Liveness.h). The backward duals always loop the full
  /// SharedKeys — requirements on untouched ancestor variables still
  /// flow through calls unchanged.
  std::vector<const VarDecl *> AccessedKeys;
};

/// One call relationship between instances.
struct CallLink {
  unsigned CallerInstance = 0;
  unsigned CalleeInstance = 0;
  const CallExpr *Call = nullptr;
  const VarDecl *ResultTemp = nullptr; ///< null for procedures
  unsigned NodeP = 0; ///< supergraph node before the call
  unsigned NodeQ = 0; ///< supergraph node after the call
};

/// A supergraph edge.
struct SuperEdge {
  enum class Kind {
    Local,      ///< intra-instance action edge
    CallIn,     ///< NodeP -> callee entry (copy-in)
    CallOut,    ///< callee exit -> NodeQ (copy-out, combined with NodeP)
    ChannelOut, ///< callee channel exit -> caller landing point
  };
  Kind K = Kind::Local;
  unsigned From = 0;
  unsigned To = 0;
  const Action *Act = nullptr; ///< Local only
  unsigned Link = 0;           ///< CallIn/CallOut/ChannelOut: CallLink index
};

/// The dense variable numbering backing the flat store representation:
/// a one-time pass over the program's routines (in declaration order,
/// program first) that assigns every owned variable — parameters, the
/// result variable, locals, and compiler temporaries — a globally
/// unique, per-routine *contiguous* store slot via
/// VarDecl::setStoreSlot(). Contiguity keeps each routine's slots
/// clustered so stores touch a compact slot range, and the walk order
/// makes the numbering deterministic and idempotent: re-running it on
/// the same AST reassigns identical slots, so stores from repeated
/// analyses of one AST stay comparable.
class VarNumbering {
public:
  explicit VarNumbering(const ProgramCfg &Cfg);

  /// Total slots assigned (== number of owned variables program-wide).
  unsigned numSlots() const { return NumSlots; }

  /// First slot / slot count of a routine's variables.
  struct Range {
    unsigned First = 0;
    unsigned Count = 0;
  };
  Range rangeOf(const RoutineDecl *R) const {
    auto It = Ranges.find(R);
    return It == Ranges.end() ? Range{} : It->second;
  }

private:
  unsigned NumSlots = 0;
  std::map<const RoutineDecl *, Range> Ranges;
};

/// Single-slot memo for one interprocedural edge transfer: the inputs
/// last seen and the result they produced. The transfers are pure
/// functions of their input stores, so a verified input match makes the
/// recorded output exact — and returning the recorded store preserves
/// its payload identity, which keeps downstream delta-aware joins and
/// equality checks O(1) across refinement rounds.
struct LinkTransferMemo {
  bool Valid = false;
  AbstractStore In1, In2, Out;
};

/// The fully unfolded program: instances, links, edges, and the
/// interprocedural transfer functions.
class SuperGraph {
public:
  /// \p ContextInsensitive merges every call site of a routine into one
  /// activation class (tokens keep only the alias partition).
  /// \p Telem optionally records a token_unfold event per created
  /// instance and counts interproc.instances.
  SuperGraph(const ProgramCfg &Cfg, RoutineDecl *Program,
             const StoreOps &Ops, const ExprSemantics &Exprs,
             const Transfer &Xfer, bool ContextInsensitive = false,
             Telemetry Telem = {});

  unsigned numNodes() const { return NumNodes; }
  const std::vector<Instance> &instances() const { return Instances; }
  const std::vector<CallLink> &links() const { return Links; }
  const std::vector<SuperEdge> &edges() const { return Edges; }

  unsigned mainEntry() const;
  unsigned mainExit() const;

  /// Supergraph node for \p Point of \p Inst.
  unsigned node(const Instance &Inst, unsigned Point) const {
    return Inst.FirstNode + Point;
  }
  /// Inverse mapping: instance and point of a node.
  const Instance &instanceOf(unsigned Node) const;
  unsigned pointOf(unsigned Node) const;

  /// Edges entering / leaving each node, as indices into edges().
  const std::vector<unsigned> &inEdges(unsigned Node) const {
    return In[Node];
  }
  const std::vector<unsigned> &outEdges(unsigned Node) const {
    return Out[Node];
  }

  /// \name Interprocedural transfer
  /// @{
  /// Copy-in: callee entry store from the caller store at NodeP.
  AbstractStore copyIn(const CallLink &L, const AbstractStore &AtP) const;
  /// Copy-out: store after the call from the callee exit store and the
  /// caller store at NodeP (which supplies the frozen caller frame).
  AbstractStore copyOut(const CallLink &L, const AbstractStore &AtExit,
                        const AbstractStore &AtP) const;
  /// Copy-out along a non-local jump: like copyOut without a result.
  AbstractStore channelOut(const CallLink &L, const AbstractStore &AtChan,
                           const AbstractStore &AtP) const;
  /// Backward copy-in: requirement at NodeP given one at the callee
  /// entry.
  AbstractStore bwdCopyIn(const CallLink &L,
                          const AbstractStore &AtEntry) const;
  /// Backward copy-out: requirement at the callee exit given one after
  /// the call. Requirements on frozen caller-only locations are dropped
  /// (sound over-approximation; see DESIGN.md).
  AbstractStore bwdCopyOut(const CallLink &L,
                           const AbstractStore &AtQ) const;
  AbstractStore bwdChannelOut(const CallLink &L,
                              const AbstractStore &AtTarget) const;
  /// @}

  /// \name Memoized edge transfers (warm-started refinement chains)
  /// @{
  /// Enables the per-edge transfer memo. Keyed on the unfolded token's
  /// entry/exit states: a refinement round that leaves an edge's input
  /// stores unchanged reuses the recorded summary instead of re-running
  /// the copy-in/copy-out remap.
  void enableTransferMemo() {
    TransferMemoEnabled = true;
    EdgeMemos.assign(Edges.size(), {});
  }
  /// Verified memo hits since construction.
  uint64_t transferMemoHits() const {
    return TransferMemoHits.load(std::memory_order_relaxed);
  }
  /// Forward transfer of interprocedural edge \p EdgeIdx (CallIn,
  /// CallOut or ChannelOut) over the current solution \p X, through the
  /// memo when enabled.
  AbstractStore fwdTransfer(unsigned EdgeIdx,
                            const std::vector<AbstractStore> &X) const;
  /// Backward dual, seeded from X[edge target].
  AbstractStore bwdTransfer(unsigned EdgeIdx,
                            const std::vector<AbstractStore> &X) const;
  /// @}

  /// The dense store-slot numbering this supergraph's stores run on.
  const VarNumbering &varNumbering() const { return Numbering; }

  /// The program-wide slot -> declaration table (one entry per
  /// VarNumbering slot), shared by every store payload the
  /// interprocedural transfers create (AbstractStore::adoptKeyTable):
  /// a COW detach then shares the table instead of copying it.
  const std::shared_ptr<const detail::StoreKeyTable> &keyTable() const {
    return KeyTable;
  }

  /// Replaces instance \p InstanceId's AccessedKeys (a subset of its
  /// SharedKeys, computed by the liveness pass).
  void setAccessedKeys(unsigned InstanceId,
                       std::vector<const VarDecl *> Keys) {
    Instances[InstanceId].AccessedKeys = std::move(Keys);
  }

  /// The content-addressed key layer over this supergraph (node,
  /// instance, edge and variable keys; see StableIds.h). Built once in
  /// the constructor.
  const StableIds &stableIds() const { return *Ids; }

  /// \name Persistence access to the edge memos
  /// @{
  bool transferMemoEnabled() const { return TransferMemoEnabled; }
  /// All memo slots, [edge][0 = forward, 1 = backward]; empty unless
  /// enableTransferMemo() ran.
  const std::vector<std::array<LinkTransferMemo, 2>> &edgeMemos() const {
    return EdgeMemos;
  }
  /// Installs a restored memo for one edge direction. Requires
  /// enableTransferMemo(); the transfer functions re-verify the
  /// recorded inputs by value before any reuse, so a stale import can
  /// cost a miss but never an incorrect summary.
  void importEdgeMemo(unsigned EdgeIdx, unsigned Dir, LinkTransferMemo M) {
    EdgeMemos[EdgeIdx][Dir] = std::move(M);
  }
  /// @}

  /// Rough bytes held by the supergraph structures (Figure 4 memory),
  /// including the stable-key side tables — charged once here, not per
  /// store payload that shares them.
  size_t approximateBytes() const;

private:
  void discoverInstances(RoutineDecl *Program);
  unsigned getOrCreateInstance(RoutineDecl *R, ActivationToken Tok);
  void buildEdges();

  std::unique_ptr<StableIds> Ids;

  const ProgramCfg &Cfg;
  VarNumbering Numbering; ///< assigns store slots; must precede analysis
  std::shared_ptr<const detail::StoreKeyTable> KeyTable;
  const StoreOps &Ops;
  const ExprSemantics &Exprs;
  Telemetry Telem;
  const Transfer &Xfer;

  std::vector<Instance> Instances;
  std::map<ActivationToken, unsigned> InstanceByToken;
  std::vector<CallLink> Links;
  std::vector<SuperEdge> Edges;
  std::vector<std::vector<unsigned>> In;
  std::vector<std::vector<unsigned>> Out;
  std::vector<unsigned> NodeInstance; ///< node -> instance id
  unsigned NumNodes = 0;
  bool ContextInsensitive = false;

  /// Per-edge transfer memos, [edge][0 = forward, 1 = backward]. A slot
  /// is read and written only while evaluating one fixed supergraph
  /// node (the edge's target forward, its source backward), phases run
  /// sequentially, and the parallel strategy never schedules one node
  /// on two threads — so plain single-writer slots are race-free.
  mutable std::vector<std::array<LinkTransferMemo, 2>> EdgeMemos;
  mutable std::atomic<uint64_t> TransferMemoHits{0};
  bool TransferMemoEnabled = false;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_INTERPROC_H
