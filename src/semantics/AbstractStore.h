//===- semantics/AbstractStore.h - Abstract memory states ------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-relational abstract memory state: a map from variables to
/// abstract values (intervals for integer-like variables, a four-valued
/// boolean lattice for booleans; arrays are summarized by one interval
/// over all elements). Missing keys mean "unconstrained" (top), so the
/// empty store is the top store; bottom (unreachable) is a separate flag.
///
/// Representation: a copy-on-write payload shared through a shared_ptr.
/// The payload is structure-of-arrays: two contiguous int64 rows (Lo/Hi)
/// indexed by each variable's dense *store slot* (VarDecl::storeSlot()),
/// a presence bitmap, and a lane bitmap marking boolean slots. Boolean
/// values are encoded as pseudo-intervals over {0, 1}:
///
///     bottom = [1, 0]   false = [0, 0]   true = [1, 1]   T = [0, 1]
///
/// which makes every lattice operation a uniform min/max/compare over
/// the rows — boolean join/meet/leq coincide with the interval formulas
/// once the lane's domain bounds are taken as (0, 1) instead of
/// (w-, w+). StoreOps exploits this: join/meet/widen/narrow/equal/hash
/// are whole-vector kernels that walk 64-slot bitmap words (absent
/// words are skipped wholesale) with branch-light inner loops over the
/// raw rows, never materializing an AbsValue.
///
/// The slot -> VarDecl key table is *shared*, not per-payload: payload
/// copies alias one immutable table (extended copy-on-write when a
/// store introduces a slot the table does not cover), so a COW detach
/// copies two int64 rows and two bitmaps — no pointer vector.
///
/// Copying a store is one refcount increment; mutation detaches
/// (clones) the payload only when it is shared. The lattice operations
/// in StoreOps are delta-aware: join/widen/narrow/meet return an input
/// store (payload pointer and all) whenever the result is semantically
/// identical to it, so the solver's convergence checks hit the O(1)
/// pointer-equality fast path of equal()/leq(), and the memoized hash
/// lives in the payload so COW copies never rehash.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_ABSTRACTSTORE_H
#define SYNTOX_SEMANTICS_ABSTRACTSTORE_H

#include "frontend/Ast.h"
#include "lattice/BoolLattice.h"
#include "lattice/Interval.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace syntox {

/// An abstract scalar value: an interval or an abstract boolean.
class AbsValue {
public:
  enum class Kind { Int, Bool };

  AbsValue() : K(Kind::Int), I(Interval::bottom()) {}
  /*implicit*/ AbsValue(Interval I) : K(Kind::Int), I(I) {}
  /*implicit*/ AbsValue(BoolLattice B) : K(Kind::Bool), B(B) {}

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }

  const Interval &asInt() const {
    assert(isInt() && "not an interval value");
    return I;
  }
  const BoolLattice &asBool() const {
    assert(isBool() && "not a boolean value");
    return B;
  }

  bool isBottom() const { return isInt() ? I.isBottom() : B.isBottom(); }

  bool operator==(const AbsValue &Other) const {
    if (K != Other.K)
      return false;
    return isInt() ? I == Other.I : B == Other.B;
  }

private:
  Kind K;
  Interval I;
  BoolLattice B;
};

/// Lattice operations over stores, parameterized by the interval domain.
class StoreOps;

namespace detail {

/// The shared slot -> VarDecl table aliased by payloads (see file
/// comment). Immutable once shared; extended copy-on-write.
using StoreKeyTable = std::vector<const VarDecl *>;

/// The shared, slot-indexed body of a store in structure-of-arrays
/// form. Lo/Hi are the value rows (booleans encoded over {0, 1}); Bits
/// is the presence bitmap (a slot without its bit is an implicit top
/// and its row entries are meaningless); BoolBits marks boolean lanes
/// for every slot ever written. Keys aliases the shared slot -> decl
/// table so the store can be iterated without the numbering at hand.
struct StorePayload {
  std::vector<int64_t> Lo;
  std::vector<int64_t> Hi;
  std::vector<uint64_t> Bits;
  std::vector<uint64_t> BoolBits;
  std::shared_ptr<const StoreKeyTable> Keys;
  uint32_t NumPresent = 0;
  /// StoreOps::hash memoized per payload version; 0 = not yet computed.
  /// COW copies share the payload and therefore the cached hash, so the
  /// O(entries) fold runs once per distinct store content no matter how
  /// many stores alias it. Relaxed atomic: concurrent readers of a
  /// shared payload may race to fill it, but they write the same value.
  mutable std::atomic<uint64_t> CachedHash{0};

  StorePayload() = default;
  StorePayload(const StorePayload &O)
      : Lo(O.Lo), Hi(O.Hi), Bits(O.Bits), BoolBits(O.BoolBits),
        Keys(O.Keys), NumPresent(O.NumPresent) {
    CachedHash.store(O.CachedHash.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  StorePayload &operator=(const StorePayload &) = delete;

  size_t capacity() const { return Lo.size(); }

  bool present(unsigned Slot) const {
    return Slot < capacity() && (Bits[Slot >> 6] >> (Slot & 63)) & 1;
  }

  bool isBoolLane(unsigned Slot) const {
    return (BoolBits[Slot >> 6] >> (Slot & 63)) & 1;
  }

  void ensureCapacity(unsigned Slot) {
    if (Slot < capacity())
      return;
    size_t NewCap = std::max<size_t>(Slot + 1, capacity() * 2);
    NewCap = std::max<size_t>(NewCap, 8);
    Lo.resize(NewCap);
    Hi.resize(NewCap);
    Bits.resize((NewCap + 63) / 64, 0);
    BoolBits.resize((NewCap + 63) / 64, 0);
  }

  /// Boolean lattice value -> pseudo-interval rows.
  static void encodeBool(BoolLattice B, int64_t &L, int64_t &H) {
    L = 1, H = 0;
    switch (B.kind()) {
    case BoolLattice::Bottom:
      return;
    case BoolLattice::False:
      L = 0, H = 0;
      return;
    case BoolLattice::True:
      L = 1, H = 1;
      return;
    case BoolLattice::Top:
      L = 0, H = 1;
      return;
    }
    assert(false && "unknown boolean kind");
  }

  static BoolLattice decodeBool(int64_t L, int64_t H) {
    if (L > H)
      return BoolLattice::bottom();
    if (L != H)
      return BoolLattice::top();
    return BoolLattice(L != 0);
  }

  /// The value of a present slot, rematerialized from the rows.
  AbsValue value(unsigned Slot) const {
    if (isBoolLane(Slot))
      return AbsValue(decodeBool(Lo[Slot], Hi[Slot]));
    return AbsValue(Interval(Lo[Slot], Hi[Slot]));
  }

  /// Records Slot -> V in the shared key table, extending a private
  /// copy when the table is shared or does not cover the slot yet.
  void noteKey(unsigned Slot, const VarDecl *V) {
    if (Keys && Slot < Keys->size() && (*Keys)[Slot] == V)
      return;
    std::shared_ptr<StoreKeyTable> Mut;
    if (Keys && Keys.use_count() == 1) {
      // Sole owner: extend in place (no other payload can observe it).
      Mut = std::const_pointer_cast<StoreKeyTable>(Keys);
    } else {
      Mut = Keys ? std::make_shared<StoreKeyTable>(*Keys)
                 : std::make_shared<StoreKeyTable>();
    }
    if (Mut->size() <= Slot)
      Mut->resize(Slot + 1, nullptr);
    (*Mut)[Slot] = V;
    Keys = std::move(Mut);
  }

  const VarDecl *key(unsigned Slot) const { return (*Keys)[Slot]; }

  /// Writes the raw rows of a slot without touching the key table; the
  /// caller guarantees the shared table already covers the slot (the
  /// kernels do: output slots come from an input payload).
  void putRaw(unsigned Slot, int64_t L, int64_t H, bool IsBool) {
    Lo[Slot] = L;
    Hi[Slot] = H;
    uint64_t Mask = uint64_t(1) << (Slot & 63);
    if (IsBool)
      BoolBits[Slot >> 6] |= Mask;
    uint64_t &Word = Bits[Slot >> 6];
    NumPresent += !(Word & Mask);
    Word |= Mask;
  }

  void put(unsigned Slot, const VarDecl *V, const AbsValue &Value) {
    ensureCapacity(Slot);
    noteKey(Slot, V);
    int64_t L, H;
    bool IsBool = Value.isBool();
    if (IsBool)
      encodeBool(Value.asBool(), L, H);
    else {
      L = Value.asInt().Lo;
      H = Value.asInt().Hi;
    }
    uint64_t Mask = uint64_t(1) << (Slot & 63);
    uint64_t &LaneWord = BoolBits[Slot >> 6];
    LaneWord = IsBool ? (LaneWord | Mask) : (LaneWord & ~Mask);
    Lo[Slot] = L;
    Hi[Slot] = H;
    uint64_t &Word = Bits[Slot >> 6];
    NumPresent += !(Word & Mask);
    Word |= Mask;
  }

  void erase(unsigned Slot) {
    if (!present(Slot))
      return;
    Bits[Slot >> 6] &= ~(uint64_t(1) << (Slot & 63));
    --NumPresent;
  }

  /// Calls Fn(Slot, VarDecl, AbsValue) for every present slot,
  /// ascending. Rematerializes values; the lattice kernels read the
  /// rows directly instead.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t W = 0; W < Bits.size(); ++W) {
      uint64_t Word = Bits[W];
      while (Word) {
        unsigned Slot =
            static_cast<unsigned>(W * 64) + __builtin_ctzll(Word);
        Word &= Word - 1;
        F(Slot, key(Slot), value(Slot));
      }
    }
  }
};

} // namespace detail

/// An abstract store: variable -> abstract value, with top as the
/// default for missing keys. Copies are O(1) (shared payload); mutation
/// is copy-on-write.
class AbstractStore {
public:
  /// The top store: every variable unconstrained (no payload at all).
  AbstractStore() = default;

  static AbstractStore bottom() {
    AbstractStore S;
    S.IsBottom = true;
    return S;
  }
  static AbstractStore top() { return AbstractStore(); }

  bool isBottom() const { return IsBottom; }

  /// True when no variable is constrained.
  bool isTop() const { return !IsBottom && (!P || P->NumPresent == 0); }

  /// Whether the store has an explicit entry for \p V.
  bool hasEntry(const VarDecl *V) const {
    return !IsBottom && P && P->present(V->storeSlot());
  }

  /// Number of explicit entries.
  size_t numEntries() const { return !IsBottom && P ? P->NumPresent : 0; }

  /// Calls Fn(const VarDecl *, const AbsValue &) for every explicit
  /// entry, in ascending slot order (per-routine declaration order —
  /// deterministic across runs, unlike the pointer order of the old
  /// map representation).
  template <typename Fn> void forEachEntry(Fn &&F) const {
    if (IsBottom || !P)
      return;
    P->forEach([&](unsigned, const VarDecl *V, const AbsValue &Value) {
      F(V, Value);
    });
  }

  /// Sets (strong update). Setting on bottom is a no-op.
  void set(const VarDecl *V, AbsValue Value) {
    if (IsBottom)
      return;
    detach();
    P->put(V->storeSlot(), V, Value);
    invalidateHash();
  }

  /// Removes the constraint on \p V (makes it top).
  void forget(const VarDecl *V) {
    if (IsBottom || !P || !P->present(V->storeSlot()))
      return;
    detach();
    P->erase(V->storeSlot());
    invalidateHash();
  }

  void setBottom() {
    IsBottom = true;
    P.reset();
  }

  /// Pre-seeds the payload's shared slot -> decl table (typically the
  /// program-wide table owned by VarNumbering), so subsequent writes
  /// never pay a per-store table extension. No-op on bottom or when a
  /// table is already attached.
  void adoptKeyTable(std::shared_ptr<const detail::StoreKeyTable> T) {
    if (IsBottom || !T)
      return;
    detach();
    if (!P->Keys)
      P->Keys = std::move(T);
  }

  /// True when both stores alias the same payload (or are both
  /// payload-free), i.e. equality is decidable without looking at any
  /// entry. The delta-aware lattice ops return their input store when
  /// nothing changed exactly so this fires on convergence.
  bool samePayload(const AbstractStore &Other) const {
    return P == Other.P;
  }
  /// Identity of the shared payload (null for top/bottom); used for
  /// shared-once memory accounting and by tests.
  const void *payloadIdentity() const { return P.get(); }

  /// Rough byte footprint (Figure 4 memory accounting). The payload is
  /// counted in full; use the Seen overload to count shared payloads
  /// (and the shared key table) once across a collection of stores.
  size_t approximateBytes() const {
    return sizeof(*this) + payloadBytes() + keyTableBytes();
  }
  size_t approximateBytes(std::unordered_set<const void *> &Seen) const {
    size_t Bytes = sizeof(*this);
    if (P && Seen.insert(P.get()).second) {
      Bytes += payloadBytes();
      if (P->Keys && Seen.insert(P->Keys.get()).second)
        Bytes += keyTableBytes();
    }
    return Bytes;
  }

private:
  friend class StoreOps;

  size_t payloadBytes() const {
    if (!P)
      return 0;
    return sizeof(detail::StorePayload) +
           P->capacity() * 2 * sizeof(int64_t) +
           (P->Bits.size() + P->BoolBits.size()) * sizeof(uint64_t);
  }
  size_t keyTableBytes() const {
    return P && P->Keys ? P->Keys->size() * sizeof(const VarDecl *) : 0;
  }

  /// Makes the payload exclusively owned (clone on shared write).
  void detach() {
    if (!P) {
      P = std::make_shared<detail::StorePayload>();
    } else if (P.use_count() != 1) {
      P = std::make_shared<detail::StorePayload>(*P);
      // Stores are context-free value types, so detail tracing of COW
      // clones goes through a process-global hook (one relaxed load
      // when off). NumPresent sizes the clone that just happened.
      if (TraceRecorder *R =
              trace::StoreDetachHook.load(std::memory_order_relaxed);
          R && R->wants(TraceEventKind::StoreDetach))
        R->record(TraceEventKind::StoreDetach, P->NumPresent);
    }
  }

  void invalidateHash() {
    P->CachedHash.store(0, std::memory_order_relaxed);
  }

  std::shared_ptr<detail::StorePayload> P;
  bool IsBottom = false;
};

/// Store-level lattice operations; needs the interval domain for bounds.
class StoreOps {
public:
  explicit StoreOps(const IntervalDomain &D) : D(D) {}

  const IntervalDomain &domain() const { return D; }

  /// Installs widening thresholds (§6.1: "more sophisticated widening
  /// operators can be easily designed"). Must be sorted ascending. Empty
  /// means the standard operator.
  void setWideningThresholds(std::vector<int64_t> Thresholds) {
    WideningThresholds = std::move(Thresholds);
  }
  const std::vector<int64_t> &wideningThresholds() const {
    return WideningThresholds;
  }

  /// Value of \p V (top of the right kind when absent). The variable's
  /// declared base kind decides int vs bool.
  AbsValue get(const AbstractStore &S, const VarDecl *V) const;

  /// The top value of the right kind for \p V. For scalars with a
  /// subrange *type* the top is still the full interval: subranges are
  /// enforced by checks, not silently assumed.
  AbsValue topFor(const VarDecl *V) const;

  /// Declared-type interval of \p V: the subrange for subrange-typed
  /// variables (and array element subranges), full otherwise.
  Interval typeRange(const VarDecl *V) const;

  bool leq(const AbstractStore &A, const AbstractStore &B) const;
  bool equal(const AbstractStore &A, const AbstractStore &B) const;

  /// 64-bit hash consistent with equal(): stores with equal constraints
  /// hash equal (explicit entries at top are ignored, matching the
  /// missing-key-is-top convention). Memoized in the shared payload, so
  /// COW copies of a store never rehash. The transfer-function cache
  /// keys on this; lookups still confirm with equal(), so collisions
  /// cost time, never soundness.
  uint64_t hash(const AbstractStore &S) const;

  /// \name Delta-aware lattice operations
  /// Each returns one of its *inputs* (payload shared, not copied)
  /// whenever the result is semantically equal to it, so converged
  /// solver iterations produce pointer-stable values.
  /// @{
  AbstractStore join(const AbstractStore &A, const AbstractStore &B) const;
  AbstractStore meet(const AbstractStore &A, const AbstractStore &B) const;
  AbstractStore widen(const AbstractStore &A, const AbstractStore &B) const;
  AbstractStore narrow(const AbstractStore &A, const AbstractStore &B) const;
  /// @}

  /// Drops every present slot of \p S whose bit is clear in the
  /// \p MaskWords live bitmap (\p NumWords 64-bit words; slots past the
  /// mask count as dead). Returns \p S itself — payload shared — when
  /// nothing drops, so converged sweeps stay pointer-stable. Bottom and
  /// top pass through. When \p PrunedSlots is non-null it accumulates
  /// the number of dropped slots.
  AbstractStore restrictTo(const AbstractStore &S, const uint64_t *MaskWords,
                           size_t NumWords,
                           uint64_t *PrunedSlots = nullptr) const;

  /// Sets V to Value, normalizing: bottom value -> bottom store.
  void assign(AbstractStore &S, const VarDecl *V, const AbsValue &Value) const;

  /// Meets V's value with Value (refinement); bottom -> bottom store.
  void refine(AbstractStore &S, const VarDecl *V, const AbsValue &Value) const;

  AbsValue joinValues(const AbsValue &A, const AbsValue &B) const;
  AbsValue meetValues(const AbsValue &A, const AbsValue &B) const;
  bool leqValues(const AbsValue &A, const AbsValue &B) const;
  /// One widening step on values, honoring the installed thresholds.
  /// Public alongside the other scalar helpers: the kernel differential
  /// tests use them as the per-key reference semantics.
  AbsValue widenValues(const AbsValue &A, const AbsValue &B) const;

  /// Renders the store, e.g. "{ i -> [0, 100], b -> true }", in slot
  /// (per-routine declaration) order.
  std::string str(const AbstractStore &S) const;

  /// Number of non-empty 64-slot bitmap words the vector kernels have
  /// walked since construction (the store.kernel_blocks counter).
  uint64_t kernelBlocks() const {
    return KernelBlocks.load(std::memory_order_relaxed);
  }

private:
  /// True when \p Value is the top of its own kind (the full interval
  /// for ints, T for booleans) — i.e. carries no constraint and is
  /// semantically identical to a missing entry.
  bool isTopValue(const AbsValue &Value) const {
    return Value.isInt() ? D.isTop(Value.asInt()) : Value.asBool().isTop();
  }

  const IntervalDomain &D;
  std::vector<int64_t> WideningThresholds;
  /// Kernel telemetry (relaxed; one add per kernel invocation).
  mutable std::atomic<uint64_t> KernelBlocks{0};
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_ABSTRACTSTORE_H
