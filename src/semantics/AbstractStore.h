//===- semantics/AbstractStore.h - Abstract memory states ------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-relational abstract memory state: a map from variables to
/// abstract values (intervals for integer-like variables, a four-valued
/// boolean lattice for booleans; arrays are summarized by one interval
/// over all elements). Missing keys mean "unconstrained" (top), so the
/// empty map is the top store; bottom (unreachable) is a separate flag.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_ABSTRACTSTORE_H
#define SYNTOX_SEMANTICS_ABSTRACTSTORE_H

#include "frontend/Ast.h"
#include "lattice/BoolLattice.h"
#include "lattice/Interval.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace syntox {

/// An abstract scalar value: an interval or an abstract boolean.
class AbsValue {
public:
  enum class Kind { Int, Bool };

  AbsValue() : K(Kind::Int), I(Interval::bottom()) {}
  /*implicit*/ AbsValue(Interval I) : K(Kind::Int), I(I) {}
  /*implicit*/ AbsValue(BoolLattice B) : K(Kind::Bool), B(B) {}

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }

  const Interval &asInt() const {
    assert(isInt() && "not an interval value");
    return I;
  }
  const BoolLattice &asBool() const {
    assert(isBool() && "not a boolean value");
    return B;
  }

  bool isBottom() const { return isInt() ? I.isBottom() : B.isBottom(); }

  bool operator==(const AbsValue &Other) const {
    if (K != Other.K)
      return false;
    return isInt() ? I == Other.I : B == Other.B;
  }

private:
  Kind K;
  Interval I;
  BoolLattice B;
};

/// Lattice operations over stores, parameterized by the interval domain.
class StoreOps;

/// An abstract store: variable -> abstract value, with top as the
/// default for missing keys.
class AbstractStore {
public:
  /// The top store: every variable unconstrained.
  AbstractStore() = default;

  // The memoized hash is an atomic, so the special members are spelled
  // out. Copies inherit the cached hash (same content); moves reset the
  // source so a reused moved-from store cannot report a stale hash.
  AbstractStore(const AbstractStore &O)
      : Values(O.Values), IsBottom(O.IsBottom) {
    CachedHash.store(O.CachedHash.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  AbstractStore(AbstractStore &&O) noexcept
      : Values(std::move(O.Values)), IsBottom(O.IsBottom) {
    CachedHash.store(O.CachedHash.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    O.CachedHash.store(0, std::memory_order_relaxed);
  }
  AbstractStore &operator=(const AbstractStore &O) {
    Values = O.Values;
    IsBottom = O.IsBottom;
    CachedHash.store(O.CachedHash.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
  AbstractStore &operator=(AbstractStore &&O) noexcept {
    Values = std::move(O.Values);
    IsBottom = O.IsBottom;
    CachedHash.store(O.CachedHash.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    O.CachedHash.store(0, std::memory_order_relaxed);
    return *this;
  }

  static AbstractStore bottom() {
    AbstractStore S;
    S.IsBottom = true;
    return S;
  }
  static AbstractStore top() { return AbstractStore(); }

  bool isBottom() const { return IsBottom; }

  /// True when no variable is constrained.
  bool isTop() const { return !IsBottom && Values.empty(); }

  /// Whether the store has an explicit entry for \p V.
  bool hasEntry(const VarDecl *V) const { return Values.count(V) != 0; }

  /// The entries map (missing keys are top).
  const std::map<const VarDecl *, AbsValue> &entries() const {
    return Values;
  }

  /// Sets (strong update). Setting on bottom is a no-op.
  void set(const VarDecl *V, AbsValue Value) {
    if (IsBottom)
      return;
    Values[V] = std::move(Value);
    invalidateHash();
  }

  /// Removes the constraint on \p V (makes it top).
  void forget(const VarDecl *V) {
    if (!IsBottom && Values.erase(V))
      invalidateHash();
  }

  void setBottom() {
    IsBottom = true;
    Values.clear();
    invalidateHash();
  }

  /// Rough byte footprint (Figure 4 memory accounting).
  size_t approximateBytes() const {
    return sizeof(*this) + Values.size() * 64;
  }

private:
  friend class StoreOps;

  void invalidateHash() { CachedHash.store(0, std::memory_order_relaxed); }

  std::map<const VarDecl *, AbsValue> Values;
  bool IsBottom = false;
  /// StoreOps::hash memoized per store object; 0 = not yet computed.
  /// Solver values are hashed on every cache lookup of every outgoing
  /// edge but mutate rarely, so the O(entries) fold runs once per store
  /// version. Relaxed atomic: concurrent readers of a shared store may
  /// race to fill it, but they write the same value.
  mutable std::atomic<uint64_t> CachedHash{0};
};

/// Store-level lattice operations; needs the interval domain for bounds.
class StoreOps {
public:
  explicit StoreOps(const IntervalDomain &D) : D(D) {}

  const IntervalDomain &domain() const { return D; }

  /// Installs widening thresholds (§6.1: "more sophisticated widening
  /// operators can be easily designed"). Must be sorted ascending. Empty
  /// means the standard operator.
  void setWideningThresholds(std::vector<int64_t> Thresholds) {
    WideningThresholds = std::move(Thresholds);
  }
  const std::vector<int64_t> &wideningThresholds() const {
    return WideningThresholds;
  }

  /// Value of \p V (top of the right kind when absent). The variable's
  /// declared base kind decides int vs bool.
  AbsValue get(const AbstractStore &S, const VarDecl *V) const;

  /// The top value of the right kind for \p V. For scalars with a
  /// subrange *type* the top is still the full interval: subranges are
  /// enforced by checks, not silently assumed.
  AbsValue topFor(const VarDecl *V) const;

  /// Declared-type interval of \p V: the subrange for subrange-typed
  /// variables (and array element subranges), full otherwise.
  Interval typeRange(const VarDecl *V) const;

  bool leq(const AbstractStore &A, const AbstractStore &B) const;
  bool equal(const AbstractStore &A, const AbstractStore &B) const;

  /// 64-bit hash consistent with equal(): stores with equal constraints
  /// hash equal (explicit entries at top are ignored, matching the
  /// missing-key-is-top convention). The transfer-function cache keys on
  /// this; lookups still confirm with equal(), so collisions cost time,
  /// never soundness.
  uint64_t hash(const AbstractStore &S) const;
  AbstractStore join(const AbstractStore &A, const AbstractStore &B) const;
  AbstractStore meet(const AbstractStore &A, const AbstractStore &B) const;
  AbstractStore widen(const AbstractStore &A, const AbstractStore &B) const;
  AbstractStore narrow(const AbstractStore &A, const AbstractStore &B) const;

  /// Sets V to Value, normalizing: bottom value -> bottom store.
  void assign(AbstractStore &S, const VarDecl *V, const AbsValue &Value) const;

  /// Meets V's value with Value (refinement); bottom -> bottom store.
  void refine(AbstractStore &S, const VarDecl *V, const AbsValue &Value) const;

  AbsValue joinValues(const AbsValue &A, const AbsValue &B) const;
  AbsValue meetValues(const AbsValue &A, const AbsValue &B) const;
  bool leqValues(const AbsValue &A, const AbsValue &B) const;

  /// Renders the store restricted to the given variables (or all entries
  /// when empty), e.g. "{ i -> [0, 100], b -> true }".
  std::string str(const AbstractStore &S) const;

private:
  const IntervalDomain &D;
  std::vector<int64_t> WideningThresholds;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_ABSTRACTSTORE_H
