//===- semantics/Transfer.cpp - Action transfer functions -----------------===//

#include "semantics/Transfer.h"

#include <cassert>

using namespace syntox;

AbstractStore Transfer::applyCheck(const CheckInfo &Info, AbstractStore S,
                                   const FrameMap &F) const {
  const IntervalDomain &D = Ops.domain();
  switch (Info.Kind) {
  case CheckKind::ArrayBound:
  case CheckKind::SubrangeBound:
    Exprs.refineInt(Info.Value, D.make(Info.Lo, Info.Hi), S, F);
    return S;
  case CheckKind::DivByZero: {
    Interval V = Exprs.evalInt(Info.Value, S, F);
    if (V.isBottom() || (V.isSingleton() && V.Lo == 0))
      return AbstractStore::bottom();
    // Trim a zero endpoint; straddling intervals cannot be refined.
    if (V.Lo == 0)
      Exprs.refineInt(Info.Value, D.make(1, D.maxValue()), S, F);
    else if (V.Hi == 0)
      Exprs.refineInt(Info.Value, D.make(D.minValue(), -1), S, F);
    return S;
  }
  case CheckKind::CaseMatch:
    // Reaching the fallthrough of an else-less case is always an error:
    // no state survives.
    return AbstractStore::bottom();
  }
  return S;
}

AbstractStore Transfer::fwd(const Action &A, const AbstractStore &In,
                            const FrameMap &F) const {
  if (In.isBottom())
    return In;
  switch (A.K) {
  case Action::Kind::Nop:
    return In;
  case Action::Kind::Assign: {
    AbstractStore Out = In;
    const VarDecl *Target = F.resolve(A.Var);
    if (Target->type()->isBoolean())
      Ops.assign(Out, Target, AbsValue(Exprs.evalBool(A.Value, In, F)));
    else
      Ops.assign(Out, Target, AbsValue(Exprs.evalInt(A.Value, In, F)));
    return Out;
  }
  case Action::Kind::ArrayStore: {
    if (Exprs.evalInt(A.Index, In, F).isBottom())
      return AbstractStore::bottom();
    Interval Value = Exprs.evalInt(A.Value, In, F);
    if (Value.isBottom())
      return AbstractStore::bottom();
    AbstractStore Out = In;
    // Weak update: the summary covers both old and new elements.
    Interval Summary =
        Ops.domain().join(Ops.get(In, A.Var).asInt(), Value);
    Ops.assign(Out, A.Var, AbsValue(Summary));
    return Out;
  }
  case Action::Kind::ReadScalar: {
    AbstractStore Out = In;
    const VarDecl *Target = F.resolve(A.Var);
    Ops.assign(Out, Target, Ops.topFor(Target));
    return Out;
  }
  case Action::Kind::ReadArray: {
    if (Exprs.evalInt(A.Index, In, F).isBottom())
      return AbstractStore::bottom();
    AbstractStore Out = In;
    Ops.assign(Out, A.Var, Ops.topFor(A.Var));
    return Out;
  }
  case Action::Kind::Assume: {
    AbstractStore Out = In;
    Exprs.refineBool(A.Value, A.Sense, Out, F);
    return Out;
  }
  case Action::Kind::Check:
    return applyCheck(Cfg.check(A.CheckId), In, F);
  case Action::Kind::Invariant: {
    AbstractStore Out = In;
    Exprs.refineBool(A.Value, true, Out, F);
    return Out;
  }
  case Action::Kind::Call:
    assert(false && "call transfer handled interprocedurally");
    return In;
  }
  return In;
}

//===----------------------------------------------------------------------===//
// TransferCache
//===----------------------------------------------------------------------===//

template <typename Compute>
const AbstractStore *TransferCache::lookupOrCompute(bool Forward,
                                                    unsigned EdgeId,
                                                    const AbstractStore &In,
                                                    Compute &&Fn) {
  uint64_t Key = hashCombine(0x9216d5d98979fb1bull,
                             (static_cast<uint64_t>(EdgeId) << 1) | Forward);
  // Ops.hash is memoized in the store's shared payload, so keying a
  // store the solver already hashed (the steady state: COW keeps
  // payloads alive unchanged across iterations) costs one atomic load.
  Key = hashCombine(Key, Ops.hash(In));
  Shard &Sh = Shards[Key % NumShards];
  auto &Bucket = Sh.Buckets[(Key / NumShards) % Shard::NumBuckets];
  const AbstractStore *Found = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Sh.M);
    for (const Entry &E : Bucket)
      // Payload identity first: a re-lookup of the very store that
      // populated the entry short-circuits inside equal() without
      // touching a single entry; only genuinely distinct payloads pay
      // the entry-wise confirm.
      if (E.Key == Key && E.EdgeId == EdgeId && E.Forward == Forward &&
          Ops.equal(E.In, In)) {
        ++Sh.Hits;
        Found = E.Result.get();
        break;
      }
    if (!Found)
      ++Sh.Misses;
  }
  // Trace outside the shard lock; the recorder appends to a per-thread
  // buffer, so this never contends, but there is no reason to hold the
  // shard hostage while it does.
  if (Found) {
    traceEvent(Trace, TraceEventKind::CacheHit, EdgeId, Forward);
    return Found;
  }
  traceEvent(Trace, TraceEventKind::CacheMiss, EdgeId, Forward);
  // Compute outside the lock; a racing miss on the same key computes the
  // same pure function twice, which is benign.
  auto Result = std::make_unique<const AbstractStore>(Fn());
  std::lock_guard<std::mutex> Lock(Sh.M);
  if (Sh.Count < MaxPerShard) {
    Entry E;
    E.Key = Key;
    E.EdgeId = EdgeId;
    E.Forward = Forward;
    E.In = In;
    E.Result = std::move(Result);
    Bucket.push_back(std::move(E));
    ++Sh.Count;
    return Bucket.back().Result.get();
  }
  // Shard full: park the value in a thread-local overflow slot; valid
  // until this thread's next overflowing lookup.
  static thread_local std::unique_ptr<const AbstractStore> Overflow;
  Overflow = std::move(Result);
  return Overflow.get();
}

const AbstractStore *TransferCache::fwd(const Transfer &Xfer,
                                        unsigned EdgeId, const Action &A,
                                        const AbstractStore &In,
                                        const FrameMap &F) {
  return lookupOrCompute(/*Forward=*/true, EdgeId, In,
                         [&] { return Xfer.fwd(A, In, F); });
}

const AbstractStore *TransferCache::bwd(const Transfer &Xfer,
                                        unsigned EdgeId, const Action &A,
                                        const AbstractStore &Out,
                                        const FrameMap &F) {
  return lookupOrCompute(/*Forward=*/false, EdgeId, Out,
                         [&] { return Xfer.bwd(A, Out, F); });
}

uint64_t TransferCache::hits() const {
  uint64_t Total = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    Total += Sh.Hits;
  }
  return Total;
}

uint64_t TransferCache::misses() const {
  uint64_t Total = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    Total += Sh.Misses;
  }
  return Total;
}

size_t TransferCache::size() const {
  size_t Total = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    Total += Sh.Count;
  }
  return Total;
}

void TransferCache::clear() {
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    for (auto &Bucket : Sh.Buckets)
      Bucket.clear();
    Sh.Count = 0;
    Sh.Hits = 0;
    Sh.Misses = 0;
  }
}

AbstractStore Transfer::bwd(const Action &A, const AbstractStore &Out,
                            const FrameMap &F) const {
  if (Out.isBottom())
    return Out;
  switch (A.K) {
  case Action::Kind::Nop:
    return Out;
  case Action::Kind::Assign: {
    // [v := e]^-1(S) = { m : m[v -> e(m)] in S }: release v, then require
    // e to evaluate into S's constraint on v.
    const VarDecl *Target = F.resolve(A.Var);
    AbsValue Required = Ops.get(Out, Target);
    AbstractStore Pre = Out;
    Pre.forget(Target);
    if (Target->type()->isBoolean()) {
      const BoolLattice &B = Required.asBool();
      if (B.isBottom())
        return AbstractStore::bottom();
      if (B.isConstant())
        Exprs.refineBool(A.Value, B.constantValue(), Pre, F);
      return Pre;
    }
    Exprs.refineInt(A.Value, Required.asInt(), Pre, F);
    return Pre;
  }
  case Action::Kind::ArrayStore: {
    // Weak update: only the stored value is required to satisfy the
    // summary requirement; the pre-store summary is released.
    AbsValue Required = Ops.get(Out, A.Var);
    AbstractStore Pre = Out;
    Pre.forget(A.Var);
    Exprs.refineInt(A.Value, Required.asInt(), Pre, F);
    return Pre;
  }
  case Action::Kind::ReadScalar: {
    // read is non-deterministic: a state is an ancestor if *some* input
    // satisfies the requirement, so the requirement on the target must
    // merely be satisfiable.
    const VarDecl *Target = F.resolve(A.Var);
    if (Ops.get(Out, Target).isBottom())
      return AbstractStore::bottom();
    AbstractStore Pre = Out;
    Pre.forget(Target);
    return Pre;
  }
  case Action::Kind::ReadArray: {
    if (Ops.get(Out, A.Var).isBottom())
      return AbstractStore::bottom();
    AbstractStore Pre = Out;
    Pre.forget(A.Var);
    return Pre;
  }
  case Action::Kind::Assume: {
    // Tests filter states symmetrically in both directions.
    AbstractStore Pre = Out;
    Exprs.refineBool(A.Value, A.Sense, Pre, F);
    return Pre;
  }
  case Action::Kind::Check:
    return applyCheck(Cfg.check(A.CheckId), Out, F);
  case Action::Kind::Invariant: {
    AbstractStore Pre = Out;
    Exprs.refineBool(A.Value, true, Pre, F);
    return Pre;
  }
  case Action::Kind::Call:
    assert(false && "call transfer handled interprocedurally");
    return Out;
  }
  return Out;
}
