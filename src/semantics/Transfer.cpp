//===- semantics/Transfer.cpp - Action transfer functions -----------------===//

#include "semantics/Transfer.h"

#include <cassert>

using namespace syntox;

AbstractStore Transfer::applyCheck(const CheckInfo &Info, AbstractStore S,
                                   const FrameMap &F) const {
  const IntervalDomain &D = Ops.domain();
  switch (Info.Kind) {
  case CheckKind::ArrayBound:
  case CheckKind::SubrangeBound:
    Exprs.refineInt(Info.Value, D.make(Info.Lo, Info.Hi), S, F);
    return S;
  case CheckKind::DivByZero: {
    Interval V = Exprs.evalInt(Info.Value, S, F);
    if (V.isBottom() || (V.isSingleton() && V.Lo == 0))
      return AbstractStore::bottom();
    // Trim a zero endpoint; straddling intervals cannot be refined.
    if (V.Lo == 0)
      Exprs.refineInt(Info.Value, D.make(1, D.maxValue()), S, F);
    else if (V.Hi == 0)
      Exprs.refineInt(Info.Value, D.make(D.minValue(), -1), S, F);
    return S;
  }
  case CheckKind::CaseMatch:
    // Reaching the fallthrough of an else-less case is always an error:
    // no state survives.
    return AbstractStore::bottom();
  }
  return S;
}

AbstractStore Transfer::fwd(const Action &A, const AbstractStore &In,
                            const FrameMap &F) const {
  if (In.isBottom())
    return In;
  switch (A.K) {
  case Action::Kind::Nop:
    return In;
  case Action::Kind::Assign: {
    AbstractStore Out = In;
    const VarDecl *Target = F.resolve(A.Var);
    if (Target->type()->isBoolean())
      Ops.assign(Out, Target, AbsValue(Exprs.evalBool(A.Value, In, F)));
    else
      Ops.assign(Out, Target, AbsValue(Exprs.evalInt(A.Value, In, F)));
    return Out;
  }
  case Action::Kind::ArrayStore: {
    if (Exprs.evalInt(A.Index, In, F).isBottom())
      return AbstractStore::bottom();
    Interval Value = Exprs.evalInt(A.Value, In, F);
    if (Value.isBottom())
      return AbstractStore::bottom();
    AbstractStore Out = In;
    // Weak update: the summary covers both old and new elements.
    Interval Summary =
        Ops.domain().join(Ops.get(In, A.Var).asInt(), Value);
    Ops.assign(Out, A.Var, AbsValue(Summary));
    return Out;
  }
  case Action::Kind::ReadScalar: {
    AbstractStore Out = In;
    const VarDecl *Target = F.resolve(A.Var);
    Ops.assign(Out, Target, Ops.topFor(Target));
    return Out;
  }
  case Action::Kind::ReadArray: {
    if (Exprs.evalInt(A.Index, In, F).isBottom())
      return AbstractStore::bottom();
    AbstractStore Out = In;
    Ops.assign(Out, A.Var, Ops.topFor(A.Var));
    return Out;
  }
  case Action::Kind::Assume: {
    AbstractStore Out = In;
    Exprs.refineBool(A.Value, A.Sense, Out, F);
    return Out;
  }
  case Action::Kind::Check:
    return applyCheck(Cfg.check(A.CheckId), In, F);
  case Action::Kind::Invariant: {
    AbstractStore Out = In;
    Exprs.refineBool(A.Value, true, Out, F);
    return Out;
  }
  case Action::Kind::Call:
    assert(false && "call transfer handled interprocedurally");
    return In;
  }
  return In;
}

//===----------------------------------------------------------------------===//
// TransferCache
//===----------------------------------------------------------------------===//

namespace {
/// The calling thread's open task arenas, one frame per cache instance
/// (nesting across caches is possible when inline-executing pools run a
/// batch request's solver on an outer worker; nesting *within* one cache
/// is not — endTask() closes a frame before the next task starts).
struct ArenaFrame {
  const void *Owner = nullptr;
  void *Arena = nullptr;
};
thread_local std::vector<ArenaFrame> OpenArenas;
} // namespace

TransferCache::~TransferCache() = default;

TransferCache::Arena *TransferCache::currentArena() const {
  for (size_t I = OpenArenas.size(); I-- > 0;)
    if (OpenArenas[I].Owner == this)
      return static_cast<Arena *>(OpenArenas[I].Arena);
  return nullptr;
}

void TransferCache::beginTask() {
  std::unique_ptr<Arena> A;
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    if (!FreeArenas.empty()) {
      A = std::move(FreeArenas.back());
      FreeArenas.pop_back();
    }
  }
  if (!A)
    A = std::make_unique<Arena>();
  OpenArenas.push_back({this, A.release()});
}

void TransferCache::endTask() {
  for (size_t I = OpenArenas.size(); I-- > 0;) {
    if (OpenArenas[I].Owner != this)
      continue;
    std::unique_ptr<Arena> A(static_cast<Arena *>(OpenArenas[I].Arena));
    OpenArenas.erase(OpenArenas.begin() + static_cast<ptrdiff_t>(I));
    std::lock_guard<std::mutex> Lock(PendingMutex);
    Pending.push_back(std::move(A));
    return;
  }
}

void TransferCache::beginOwned() { Owned = true; }

void TransferCache::endOwned() {
  mergePending();
  Owned = false;
}

void TransferCache::mergePending() {
  std::vector<std::unique_ptr<Arena>> Work;
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    Work.swap(Pending);
  }
  if (Work.empty())
    return;
  uint64_t InsertedBefore = MergeInserted;
  uint64_t DroppedBefore = MergeCombined + MergeDiscarded;
  for (std::unique_ptr<Arena> &APtr : Work) {
    Arena &A = *APtr;
    ++TaskArenas;
    MergedArenaHits += A.Hits;
    MergedArenaMisses += A.Misses;
    for (unsigned BI : A.Touched)
      for (ArenaEntry &E : A.Buckets[BI]) {
        if (E.Hits < MergeThreshold) {
          ++MergeDiscarded; // never reused: not worth a shard slot
          continue;
        }
        Shard &Sh = Shards[E.Key % NumShards];
        auto &SB = Sh.Buckets[(E.Key / NumShards) % Shard::NumBuckets];
        // The shard lock is uncontended here (merges run at barriers,
        // with no lookup in flight) but keeps the serial-strategy
        // locked path correct if both modes ever interleave.
        std::lock_guard<std::mutex> Lock(Sh.M);
        bool Present = false;
        for (const Entry &SE : SB)
          if (SE.Key == E.Key && SE.EdgeId == E.EdgeId &&
              SE.Forward == E.Forward && Ops.equal(SE.In, E.In)) {
            Present = true;
            break;
          }
        if (Present) {
          // Another task (or an earlier sweep) already promoted this
          // result; the arena's copy dissolves into it.
          ++MergeCombined;
          continue;
        }
        if (Sh.Count >= MaxPerShard) {
          ++MergeDiscarded;
          continue;
        }
        Entry NE;
        NE.Key = E.Key;
        NE.EdgeId = E.EdgeId;
        NE.Forward = E.Forward;
        NE.In = std::move(E.In);
        NE.Result = std::move(E.Result);
        SB.push_back(std::move(NE));
        ++Sh.Count;
        ++MergeInserted;
      }
    // Recycle the drained arena: clear only the buckets this task
    // touched and return it to the free list for the next sweep.
    for (unsigned BI : A.Touched)
      A.Buckets[BI].clear();
    A.Touched.clear();
    A.Count = 0;
    A.Hits = 0;
    A.Misses = 0;
  }
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    for (std::unique_ptr<Arena> &APtr : Work)
      FreeArenas.push_back(std::move(APtr));
  }
  traceEvent(Trace, TraceEventKind::CacheMerge,
             MergeInserted - InsertedBefore,
             MergeCombined + MergeDiscarded - DroppedBefore);
}

/// Owned-mode lookup: arena probe, then a lock-free probe of the frozen
/// shards, then compute-and-insert into the arena. See the class
/// comment for why no shard lock is needed.
template <typename Compute>
const AbstractStore *TransferCache::lookupOwned(uint64_t Key, bool Forward,
                                                unsigned EdgeId,
                                                const AbstractStore &In,
                                                Compute &&Fn) {
  Arena *A = currentArena();
  if (A) {
    auto &Bucket = A->Buckets[(Key / NumShards) % Arena::NumBuckets];
    for (ArenaEntry &E : Bucket)
      if (E.Key == Key && E.EdgeId == EdgeId && E.Forward == Forward &&
          Ops.equal(E.In, In)) {
        ++E.Hits;
        ++A->Hits;
        traceEvent(Trace, TraceEventKind::CacheHit, EdgeId, Forward);
        return E.Result.get();
      }
  }
  // Copy-on-write seeding from the shared shards: the frozen entries are
  // read in place (no insertion happens while Owned), so the arena
  // "inherits" the whole shared cache without copying a single store.
  const Shard &Sh = Shards[Key % NumShards];
  const auto &SB = Sh.Buckets[(Key / NumShards) % Shard::NumBuckets];
  for (const Entry &E : SB)
    if (E.Key == Key && E.EdgeId == EdgeId && E.Forward == Forward &&
        Ops.equal(E.In, In)) {
      if (A)
        ++A->Hits;
      else
        StrayHits.fetch_add(1, std::memory_order_relaxed);
      traceEvent(Trace, TraceEventKind::CacheHit, EdgeId, Forward);
      return E.Result.get();
    }
  traceEvent(Trace, TraceEventKind::CacheMiss, EdgeId, Forward);
  auto Result = std::make_unique<const AbstractStore>(Fn());
  if (A && A->Count < MaxPerShard) {
    ArenaEntry E;
    E.Key = Key;
    E.EdgeId = EdgeId;
    E.Forward = Forward;
    E.In = In;
    E.Result = std::move(Result);
    unsigned BI = (Key / NumShards) % Arena::NumBuckets;
    auto &Bucket = A->Buckets[BI];
    if (Bucket.empty())
      A->Touched.push_back(BI);
    Bucket.push_back(std::move(E));
    ++A->Count;
    ++A->Misses;
    return Bucket.back().Result.get();
  }
  if (A)
    ++A->Misses;
  else
    StrayMisses.fetch_add(1, std::memory_order_relaxed);
  // Arena full (or stray lookup): park the value in a thread-local
  // overflow slot; valid until this thread's next overflowing lookup.
  static thread_local std::unique_ptr<const AbstractStore> Overflow;
  Overflow = std::move(Result);
  return Overflow.get();
}

template <typename Compute>
const AbstractStore *TransferCache::lookupOrCompute(bool Forward,
                                                    unsigned EdgeId,
                                                    const AbstractStore &In,
                                                    Compute &&Fn) {
  uint64_t Key = hashCombine(0x9216d5d98979fb1bull,
                             (static_cast<uint64_t>(EdgeId) << 1) | Forward);
  // Ops.hash is memoized in the store's shared payload, so keying a
  // store the solver already hashed (the steady state: COW keeps
  // payloads alive unchanged across iterations) costs one atomic load.
  Key = hashCombine(Key, Ops.hash(In));
  if (Owned)
    return lookupOwned(Key, Forward, EdgeId, In,
                       std::forward<Compute>(Fn));
  Shard &Sh = Shards[Key % NumShards];
  auto &Bucket = Sh.Buckets[(Key / NumShards) % Shard::NumBuckets];
  const AbstractStore *Found = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Sh.M);
    for (const Entry &E : Bucket)
      // Payload identity first: a re-lookup of the very store that
      // populated the entry short-circuits inside equal() without
      // touching a single entry; only genuinely distinct payloads pay
      // the entry-wise confirm.
      if (E.Key == Key && E.EdgeId == EdgeId && E.Forward == Forward &&
          Ops.equal(E.In, In)) {
        ++Sh.Hits;
        Found = E.Result.get();
        break;
      }
    if (!Found)
      ++Sh.Misses;
  }
  // Trace outside the shard lock; the recorder appends to a per-thread
  // buffer, so this never contends, but there is no reason to hold the
  // shard hostage while it does.
  if (Found) {
    traceEvent(Trace, TraceEventKind::CacheHit, EdgeId, Forward);
    return Found;
  }
  traceEvent(Trace, TraceEventKind::CacheMiss, EdgeId, Forward);
  // Compute outside the lock; a racing miss on the same key computes the
  // same pure function twice, which is benign.
  auto Result = std::make_unique<const AbstractStore>(Fn());
  std::lock_guard<std::mutex> Lock(Sh.M);
  if (Sh.Count < MaxPerShard) {
    Entry E;
    E.Key = Key;
    E.EdgeId = EdgeId;
    E.Forward = Forward;
    E.In = In;
    E.Result = std::move(Result);
    Bucket.push_back(std::move(E));
    ++Sh.Count;
    return Bucket.back().Result.get();
  }
  // Shard full: park the value in a thread-local overflow slot; valid
  // until this thread's next overflowing lookup.
  static thread_local std::unique_ptr<const AbstractStore> Overflow;
  Overflow = std::move(Result);
  return Overflow.get();
}

const AbstractStore *TransferCache::fwd(const Transfer &Xfer,
                                        unsigned EdgeId, const Action &A,
                                        const AbstractStore &In,
                                        const FrameMap &F) {
  return lookupOrCompute(/*Forward=*/true, EdgeId, In,
                         [&] { return Xfer.fwd(A, In, F); });
}

const AbstractStore *TransferCache::bwd(const Transfer &Xfer,
                                        unsigned EdgeId, const Action &A,
                                        const AbstractStore &Out,
                                        const FrameMap &F) {
  return lookupOrCompute(/*Forward=*/false, EdgeId, Out,
                         [&] { return Xfer.bwd(A, Out, F); });
}

TransferCache::Stats TransferCache::statsSnapshot() const {
  // One pass over the shards (the old hits()/misses()/size() triple
  // swept them three times), folding in the merge ledger and the
  // owned-mode counters that live outside the shards.
  Stats S;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    S.Hits += Sh.Hits;
    S.Misses += Sh.Misses;
    S.Size += Sh.Count;
  }
  S.Hits += MergedArenaHits + StrayHits.load(std::memory_order_relaxed);
  S.Misses += MergedArenaMisses + StrayMisses.load(std::memory_order_relaxed);
  {
    // Arenas parked but not yet merged still carry their task's
    // hit/miss tallies — count them so a snapshot between barriers
    // (or after an aborted solve) never under-reports.
    std::lock_guard<std::mutex> Lock(PendingMutex);
    for (const auto &A : Pending) {
      S.Hits += A->Hits;
      S.Misses += A->Misses;
    }
  }
  S.MergeInserted = MergeInserted;
  S.MergeCombined = MergeCombined;
  S.MergeDiscarded = MergeDiscarded;
  S.TaskArenas = TaskArenas;
  return S;
}

void TransferCache::clear() {
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    for (auto &Bucket : Sh.Buckets)
      Bucket.clear();
    Sh.Count = 0;
    Sh.Hits = 0;
    Sh.Misses = 0;
  }
  {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    Pending.clear();
    FreeArenas.clear();
  }
  MergeInserted = MergeCombined = MergeDiscarded = 0;
  TaskArenas = MergedArenaHits = MergedArenaMisses = 0;
  StrayHits.store(0, std::memory_order_relaxed);
  StrayMisses.store(0, std::memory_order_relaxed);
}

AbstractStore Transfer::bwd(const Action &A, const AbstractStore &Out,
                            const FrameMap &F) const {
  if (Out.isBottom())
    return Out;
  switch (A.K) {
  case Action::Kind::Nop:
    return Out;
  case Action::Kind::Assign: {
    // [v := e]^-1(S) = { m : m[v -> e(m)] in S }: release v, then require
    // e to evaluate into S's constraint on v.
    const VarDecl *Target = F.resolve(A.Var);
    AbsValue Required = Ops.get(Out, Target);
    AbstractStore Pre = Out;
    Pre.forget(Target);
    if (Target->type()->isBoolean()) {
      const BoolLattice &B = Required.asBool();
      if (B.isBottom())
        return AbstractStore::bottom();
      if (B.isConstant())
        Exprs.refineBool(A.Value, B.constantValue(), Pre, F);
      return Pre;
    }
    Exprs.refineInt(A.Value, Required.asInt(), Pre, F);
    return Pre;
  }
  case Action::Kind::ArrayStore: {
    // Weak update: only the stored value is required to satisfy the
    // summary requirement; the pre-store summary is released.
    AbsValue Required = Ops.get(Out, A.Var);
    AbstractStore Pre = Out;
    Pre.forget(A.Var);
    Exprs.refineInt(A.Value, Required.asInt(), Pre, F);
    return Pre;
  }
  case Action::Kind::ReadScalar: {
    // read is non-deterministic: a state is an ancestor if *some* input
    // satisfies the requirement, so the requirement on the target must
    // merely be satisfiable.
    const VarDecl *Target = F.resolve(A.Var);
    if (Ops.get(Out, Target).isBottom())
      return AbstractStore::bottom();
    AbstractStore Pre = Out;
    Pre.forget(Target);
    return Pre;
  }
  case Action::Kind::ReadArray: {
    if (Ops.get(Out, A.Var).isBottom())
      return AbstractStore::bottom();
    AbstractStore Pre = Out;
    Pre.forget(A.Var);
    return Pre;
  }
  case Action::Kind::Assume: {
    // Tests filter states symmetrically in both directions.
    AbstractStore Pre = Out;
    Exprs.refineBool(A.Value, A.Sense, Pre, F);
    return Pre;
  }
  case Action::Kind::Check:
    return applyCheck(Cfg.check(A.CheckId), Out, F);
  case Action::Kind::Invariant: {
    AbstractStore Pre = Out;
    Exprs.refineBool(A.Value, true, Pre, F);
    return Pre;
  }
  case Action::Kind::Call:
    assert(false && "call transfer handled interprocedurally");
    return Out;
  }
  return Out;
}
