//===- semantics/Analyzer.cpp - The abstract debugging analyses -----------===//

#include "semantics/Analyzer.h"

#include "semantics/Liveness.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <unordered_set>

using namespace syntox;

namespace {

/// Shared helpers for the three equation systems. The union counter is
/// atomic because the parallel strategy evaluates equations of
/// independent WTO components concurrently.
struct SystemBase {
  const SuperGraph &G;
  const StoreOps &Ops;
  /// The shared transfer cache, or null when caching is off. Owned by
  /// the Analyzer; the fwd/bwd systems consult it per Local edge.
  TransferCache *Cache;
  mutable std::atomic<uint64_t> Unions{0};
  /// Warm-start dirty bits: per node, whether the non-graph inputs of
  /// its equation (envelope slot, seed) are unchanged since the run
  /// that recorded the warm-start memo. Empty (conservative: nothing
  /// provably unchanged) unless the Analyzer filled it in.
  std::vector<uint8_t> ExternalUnchanged;

  SystemBase(const SuperGraph &G, const StoreOps &Ops,
             TransferCache *Cache = nullptr)
      : G(G), Ops(Ops), Cache(Cache) {}

  using Value = AbstractStore;

  bool externalInputsUnchanged(unsigned Node) const {
    return Node < ExternalUnchanged.size() && ExternalUnchanged[Node];
  }

  /// Cache-ownership hooks driven by the parallel solver (see
  /// TransferCache's ownership model and the HasCacheOwnership trait).
  /// The serial strategies never call these; with no cache they are
  /// no-ops, so systems without one schedule identically.
  void parallelPhaseBegin() const {
    if (Cache)
      Cache->beginOwned();
  }
  void parallelPhaseEnd() const {
    if (Cache)
      Cache->endOwned();
  }
  void parallelTaskBegin() const {
    if (Cache)
      Cache->beginTask();
  }
  void parallelTaskEnd() const {
    if (Cache)
      Cache->endTask();
  }
  void parallelMergeBarrier() const {
    if (Cache)
      Cache->mergePending();
  }

  bool leq(const AbstractStore &A, const AbstractStore &B) const {
    return Ops.leq(A, B);
  }
  bool equal(const AbstractStore &A, const AbstractStore &B) const {
    return Ops.equal(A, B);
  }
  AbstractStore widen(const AbstractStore &A, const AbstractStore &B) const {
    return Ops.widen(A, B);
  }
  AbstractStore narrow(const AbstractStore &A, const AbstractStore &B) const {
    return Ops.narrow(A, B);
  }
};

/// Builds the forward dependency digraph: every supergraph edge, plus
/// the NodeP -> NodeQ dependency of the copy-out/channel-out transfers
/// (they read the frozen caller store at NodeP). Shared between the
/// ForwardSystem the solver iterates and the public
/// Analyzer::forwardDependencies() the persistence layer keys WTO
/// elements from — one builder, so they cannot diverge.
Digraph buildForwardDep(const SuperGraph &G) {
  Digraph Dep(G.numNodes());
  for (const SuperEdge &E : G.edges()) {
    Dep.addEdge(E.From, E.To);
    if (E.K == SuperEdge::Kind::CallOut ||
        E.K == SuperEdge::Kind::ChannelOut)
      Dep.addEdge(G.links()[E.Link].NodeP, E.To);
  }
  return Dep;
}

/// Backward dependency digraph: the inversion of every supergraph edge.
Digraph buildBackwardDep(const SuperGraph &G) {
  Digraph Dep(G.numNodes());
  for (const SuperEdge &E : G.edges())
    Dep.addEdge(E.To, E.From);
  return Dep;
}

/// Forward reachability: X_c = (entry seed) |_| join over incoming edges
/// of the forward transfer, met with the envelope when present.
struct ForwardSystem : SystemBase {
  const Transfer &Xfer;
  const std::vector<AbstractStore> *Envelope;
  /// Per-node live-slot masks; null = no dead-slot pruning. The
  /// restriction runs *after* the envelope meet, so requirement residue
  /// a backward phase left on dead slots never re-enters the forward
  /// values. Atomic counter: the parallel strategy evaluates
  /// independent components concurrently.
  const LivenessInfo *Live;
  mutable std::atomic<uint64_t> PrunedSlots{0};
  Digraph Dep;

  ForwardSystem(const SuperGraph &G, const StoreOps &Ops,
                const Transfer &Xfer, TransferCache *Cache,
                const std::vector<AbstractStore> *Envelope,
                const LivenessInfo *Live)
      : SystemBase(G, Ops, Cache), Xfer(Xfer), Envelope(Envelope),
        Live(Live), Dep(buildForwardDep(G)) {}

  unsigned numNodes() const { return G.numNodes(); }
  const Digraph &graph() const { return Dep; }
  std::vector<unsigned> roots() const { return {G.mainEntry()}; }

  AbstractStore initialValue(unsigned, bool) const {
    return AbstractStore::bottom();
  }

  AbstractStore evaluate(unsigned Node,
                         const std::vector<AbstractStore> &X) const {
    AbstractStore Out = Node == G.mainEntry() ? AbstractStore::top()
                                              : AbstractStore::bottom();
    for (unsigned EdgeIdx : G.inEdges(Node)) {
      const SuperEdge &E = G.edges()[EdgeIdx];
      AbstractStore V;
      switch (E.K) {
      case SuperEdge::Kind::Local:
        if (Cache) {
          // Join straight out of the shared cache entry: no store copy.
          ++Unions;
          Out = Ops.join(Out, *Cache->fwd(Xfer, EdgeIdx, *E.Act, X[E.From],
                                          G.instanceOf(E.From).Frame));
          continue;
        }
        V = Xfer.fwd(*E.Act, X[E.From], G.instanceOf(E.From).Frame);
        break;
      case SuperEdge::Kind::CallIn:
      case SuperEdge::Kind::CallOut:
      case SuperEdge::Kind::ChannelOut:
        V = G.fwdTransfer(EdgeIdx, X);
        break;
      }
      ++Unions;
      Out = Ops.join(Out, V);
    }
    if (Envelope)
      Out = Ops.meet(Out, (*Envelope)[Node]);
    if (Live) {
      uint64_t Dropped = 0;
      Out = Ops.restrictTo(Out, Live->maskFor(Node), Live->wordsPerNode(),
                           &Dropped);
      if (Dropped)
        PrunedSlots.fetch_add(Dropped, std::memory_order_relaxed);
    }
    return Out;
  }
};

/// Backward systems: the inversion of the forward one. For
/// `always` (gfp) the seed is top at the program exit; for `eventually`
/// (lfp) the seeds are the intermittent assertions. In both cases
///   X_c = seed_c |_| join over outgoing edges of the backward transfer,
/// met with the envelope.
struct BackwardSystem : SystemBase {
  const Transfer &Xfer;
  const std::vector<AbstractStore> &Envelope;
  std::vector<AbstractStore> Seeds;
  Digraph Dep;

  BackwardSystem(const SuperGraph &G, const StoreOps &Ops,
                 const Transfer &Xfer, TransferCache *Cache,
                 const std::vector<AbstractStore> &Envelope)
      : SystemBase(G, Ops, Cache), Xfer(Xfer), Envelope(Envelope),
        Dep(buildBackwardDep(G)) {
    Seeds.assign(G.numNodes(), AbstractStore::bottom());
  }

  unsigned numNodes() const { return G.numNodes(); }
  const Digraph &graph() const { return Dep; }
  std::vector<unsigned> roots() const { return {G.mainExit()}; }

  AbstractStore initialValue(unsigned, bool FromTop) const {
    return FromTop ? AbstractStore::top() : AbstractStore::bottom();
  }

  AbstractStore evaluate(unsigned Node,
                         const std::vector<AbstractStore> &X) const {
    AbstractStore Out = Seeds[Node];
    for (unsigned EdgeIdx : G.outEdges(Node)) {
      const SuperEdge &E = G.edges()[EdgeIdx];
      AbstractStore V;
      switch (E.K) {
      case SuperEdge::Kind::Local:
        if (Cache) {
          ++Unions;
          Out = Ops.join(Out, *Cache->bwd(Xfer, EdgeIdx, *E.Act, X[E.To],
                                          G.instanceOf(E.From).Frame));
          continue;
        }
        V = Xfer.bwd(*E.Act, X[E.To], G.instanceOf(E.From).Frame);
        break;
      case SuperEdge::Kind::CallIn:
      case SuperEdge::Kind::CallOut:
      case SuperEdge::Kind::ChannelOut:
        V = G.bwdTransfer(EdgeIdx, X);
        break;
      }
      ++Unions;
      Out = Ops.join(Out, V);
    }
    return Ops.meet(Out, Envelope[Node]);
  }
};

/// Callee instances whose every control point sat in a fully-replayed
/// WTO element of this solve: the round left the token's entry state
/// unchanged and reused its exit summary without evaluating a single
/// equation of the instance.
template <typename SolverT>
uint64_t countFullInstanceReplays(const SolverT &Solver,
                                  const SuperGraph &G) {
  const std::vector<uint8_t> &Replayed = Solver.fullyReplayedElements();
  if (Replayed.empty())
    return 0;
  std::vector<uint8_t> Seen(G.instances().size(), 0);
  std::vector<uint8_t> AllReplayed(G.instances().size(), 1);
  for (unsigned V = 0; V < G.numNodes(); ++V) {
    unsigned Inst = G.instanceOf(V).Id;
    Seen[Inst] = 1;
    if (!Replayed[Solver.wto().topElement(V)])
      AllReplayed[Inst] = 0;
  }
  uint64_t Count = 0;
  for (size_t I = 0; I < Seen.size(); ++I)
    Count += Seen[I] && AllReplayed[I];
  return Count;
}

} // namespace

Analyzer::Analyzer(const ProgramCfg &Cfg, RoutineDecl *Program, Options Opts)
    : Cfg(Cfg), Program(Program), Opts(std::move(Opts)), Domain(),
      Ops(Domain), Exprs(Ops), Xfer(Ops, Exprs, Cfg) {
  if (!this->Opts.WideningThresholds.empty())
    Ops.setWideningThresholds(this->Opts.WideningThresholds);
  Graph = std::make_unique<SuperGraph>(Cfg, Program, Ops, Exprs, Xfer,
                                       this->Opts.ContextInsensitive,
                                       this->Opts.Telem);
  // Adaptive transfer cache: unless the caller pinned the cache
  // explicitly (--cache/--no-cache), enable it once the token unfolding
  // is large enough that shared transfer results start repeating across
  // instances — the regime where the E-store measurements show it
  // winning.
  if (!this->Opts.TransferCacheSet &&
      Graph->instances().size() >=
          this->Opts.AdaptiveCacheInstanceThreshold)
    this->Opts.UseTransferCache = true;
  if (this->Opts.UseTransferCache) {
    Cache = std::make_unique<TransferCache>(Ops);
    Cache->setTrace(this->Opts.Telem.Trace);
    if (!this->Opts.TransferCacheSet)
      if (MetricsRegistry *M = this->Opts.Telem.Metrics)
        M->counter("cache.auto_enabled").inc();
  }
  if (this->Opts.WarmStart)
    Graph->enableTransferMemo();
  if (this->Opts.PruneDeadSlots) {
    Live = std::make_unique<LivenessInfo>(*Graph, Cfg);
    for (unsigned I = 0; I < Graph->instances().size(); ++I)
      Graph->setAccessedKeys(I, Live->accessedShared(I));
  }
}

Analyzer::Analyzer(const ProgramCfg &Cfg, RoutineDecl *Program)
    : Analyzer(Cfg, Program, Options()) {}

Analyzer::~Analyzer() = default;

Digraph Analyzer::forwardDependencies() const {
  return buildForwardDep(*Graph);
}

Digraph Analyzer::backwardDependencies() const {
  return buildBackwardDep(*Graph);
}

std::vector<unsigned> Analyzer::forwardRoots() const {
  return {Graph->mainEntry()};
}

std::vector<unsigned> Analyzer::backwardRoots() const {
  return {Graph->mainExit()};
}

Analyzer::WarmSlot &Analyzer::chainSlot(PhaseSig Sig) {
  unsigned Ord = ChainOrdinal++;
  if (Ord >= ChainSlots.size())
    ChainSlots.emplace_back();
  WarmSlot &S = ChainSlots[Ord];
  if (S.Memo.Valid && S.Sig != Sig)
    S = WarmSlot(); // the schedule changed shape under this ordinal
  if (!S.Memo.Valid) {
    // Fresh ordinal: seed from the nearest earlier slot of the same
    // system, so within one run a later round still replays against the
    // previous round's recording (COW stores make the copy cheap).
    for (unsigned I = Ord; I-- > 0;)
      if (ChainSlots[I].Memo.Valid && ChainSlots[I].Sig == Sig) {
        S = ChainSlots[I];
        break;
      }
  }
  S.Sig = Sig;
  return S;
}

bool Analyzer::importWarmFrom(const Analyzer &Other) {
  // Same program shape: the memos are indexed by supergraph node and
  // WTO element, so the graphs must match key-for-key.
  if (Graph->stableIds().supergraphHash() !=
          Other.Graph->stableIds().supergraphHash() ||
      Graph->numNodes() != Other.Graph->numNodes())
    return false;
  // Same value semantics: replayed boundaries were computed under the
  // donor's widening/narrowing configuration; verification compares
  // values against *recorded* values, so it cannot detect that the
  // recording itself would differ under this analyzer's semantics.
  if (Opts.solverSemanticsHash() != Other.Opts.solverSemanticsHash())
    return false;
  ChainSlots = Other.ChainSlots;
  // The per-edge transfer memos are input-verified on every probe, so
  // they transplant safely whenever the value semantics match.
  if (Graph->transferMemoEnabled() && Other.Graph->transferMemoEnabled()) {
    const auto &Donor = Other.Graph->edgeMemos();
    for (unsigned E = 0; E < Donor.size(); ++E)
      for (unsigned Dir = 0; Dir < 2; ++Dir)
        if (Donor[E][Dir].Valid)
          Graph->importEdgeMemo(E, Dir, Donor[E][Dir]);
  }
  return true;
}

bool Analyzer::hasEventuallySeeds() const {
  if (Opts.TerminationGoal)
    return true;
  for (const Instance &Inst : Graph->instances())
    if (!Inst.Cfg->intermittents().empty())
      return true;
  return false;
}

/// Phase begin/end events around a solver run, with the phase name as
/// the span label.
void Analyzer::tracePhase(bool Begin, const PhaseStats &Phase) {
  TraceRecorder *R = Opts.Telem.Trace;
  TraceEventKind K =
      Begin ? TraceEventKind::PhaseBegin : TraceEventKind::PhaseEnd;
  if (R && R->wants(K))
    R->record(K, Stats.Phases.size() - 1, 0, Phase.Name);
}

/// Folds one solver run's counters into the aggregate stats and the
/// metrics registry.
void Analyzer::accumulateSolverStats(const SolverStats &S,
                                     uint64_t SysUnions,
                                     PhaseStats &Phase) {
  Phase.WideningSteps = S.AscendingSteps;
  Phase.NarrowingSteps = S.DescendingSteps;
  Phase.ComponentSkips = S.ComponentSkips;
  Phase.SkippedSteps = S.SkippedSteps;
  Stats.Widenings += S.Widenings;
  Stats.Narrowings += S.Narrowings;
  Stats.ComponentSkips += S.ComponentSkips;
  Stats.SkippedSteps += S.SkippedSteps;
  Stats.ParallelComponents += S.ParallelComponents;
  Stats.ParallelTasks = std::max(Stats.ParallelTasks, S.ParallelTasks);
  Stats.ParallelDagWidth =
      std::max(Stats.ParallelDagWidth, S.ParallelDagWidth);
  Stats.DemandedComponents += S.DemandedComponents;
  Stats.SkippedByDemand += S.SkippedByDemand;
  Stats.Unions += SysUnions;
  if (MetricsRegistry *M = Opts.Telem.Metrics) {
    M->counter("solver.ascending_steps").inc(S.AscendingSteps);
    M->counter("solver.descending_steps").inc(S.DescendingSteps);
    M->counter("solver.widenings").inc(S.Widenings);
    M->counter("solver.narrowings").inc(S.Narrowings);
    M->counter("solver.component_skips").inc(S.ComponentSkips);
    M->counter("solver.skipped_steps").inc(S.SkippedSteps);
    M->counter("solver.unions").inc(SysUnions);
    M->counter("parallel.components").inc(S.ParallelComponents);
    if (S.DemandedComponents + S.SkippedByDemand > 0) {
      M->counter("demand.components").inc(S.DemandedComponents);
      M->counter("demand.skipped_components").inc(S.SkippedByDemand);
    }
    M->gauge("parallel.tasks")
        .accumulateMax(static_cast<int64_t>(S.ParallelTasks));
    M->gauge("parallel.dag_width")
        .accumulateMax(static_cast<int64_t>(S.ParallelDagWidth));
    M->histogram("phase.seconds").observe(Phase.Seconds);
    M->histogram("phase." + Phase.Name + ".seconds").observe(Phase.Seconds);
  }
}

/// Marks the nodes whose non-graph inputs match what \p Slot's recorded
/// run solved under. Payload-identity equality makes the common case —
/// an envelope slot the previous round did not refine — O(1) per node.
std::vector<uint8_t>
Analyzer::unchangedInputs(const WarmSlot &Slot,
                          const std::vector<AbstractStore> *Env,
                          const std::vector<AbstractStore> *Seeds) const {
  unsigned N = Graph->numNodes();
  std::vector<uint8_t> U(N, 0);
  if (!Slot.Memo.Valid)
    return U; // first run of the slot: nothing to compare against
  if ((Env != nullptr) != Slot.HadEnv)
    return U; // no-envelope vs. envelope run: every input is dirty
  if ((Env && Slot.Env.size() != N) || (Seeds && Slot.Seeds.size() != N))
    return U;
  for (unsigned I = 0; I < N; ++I) {
    bool Same = !Env || Ops.equal((*Env)[I], Slot.Env[I]);
    if (Same && Seeds)
      Same = Ops.equal((*Seeds)[I], Slot.Seeds[I]);
    U[I] = Same;
  }
  return U;
}

std::vector<AbstractStore>
Analyzer::solveForward(const std::vector<AbstractStore> *Env,
                       PhaseStats &Phase,
                       const std::vector<uint8_t> *Demand) {
  auto Start = std::chrono::steady_clock::now();
  tracePhase(/*Begin=*/true, Phase);
  ForwardSystem Sys(*Graph, Ops, Xfer, Cache.get(), Env, Live.get());
  FixpointSolver<ForwardSystem>::Options SolverOpts;
  SolverOpts.Kind = Opts.HarrisonGfp ? FixpointKind::Gfp : FixpointKind::Lfp;
  SolverOpts.Strategy = Opts.Strategy;
  SolverOpts.NumThreads = Opts.NumThreads;
  SolverOpts.NarrowingPasses = Opts.NarrowingPasses;
  SolverOpts.Telem = Opts.Telem;
  SolverOpts.DemandNodes = Demand;
  WarmSlot *Slot = nullptr;
  if (Opts.WarmStart) {
    // Demand runs take the same path: runImpl swapped in a private copy
    // of the chain, so the slot they replay from holds the published
    // recordings while their own (cone-partial) recording never reaches
    // the chain future full runs replay against.
    Slot = &chainSlot(Env ? PhaseSig::FwdEnv : PhaseSig::FwdNoEnv);
    Sys.ExternalUnchanged = unchangedInputs(*Slot, Env, nullptr);
    SolverOpts.Memo = &Slot->Memo;
  }
  FixpointSolver<ForwardSystem> Solver(Sys, SolverOpts);
  std::vector<AbstractStore> Result = Solver.solve();
  if (Slot) {
    Slot->HadEnv = Env != nullptr;
    Slot->Env = Env ? *Env : std::vector<AbstractStore>();
    if (!Demand)
      Stats.SummaryReuses += countFullInstanceReplays(Solver, *Graph);
  }
  Phase.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  accumulateSolverStats(Solver.stats(), Sys.Unions, Phase);
  if (Live) {
    uint64_t Dropped = Sys.PrunedSlots.load(std::memory_order_relaxed);
    PrunedSlotsRun += Dropped;
    if (TraceRecorder *Rec = Opts.Telem.Trace;
        Rec && Rec->wants(TraceEventKind::StorePrune))
      Rec->record(TraceEventKind::StorePrune, Dropped,
                  Live->liveSlotCount(), Phase.Name);
  }
  if (Demand)
    DemandAudit.push_back({Phase.Name, *Demand, Solver.nodeLiveSteps()});
  tracePhase(/*Begin=*/false, Phase);
  return Result;
}

std::vector<AbstractStore>
Analyzer::solveBackward(bool Eventually,
                        const std::vector<AbstractStore> &Env,
                        PhaseStats &Phase,
                        const std::vector<uint8_t> *Demand) {
  auto Start = std::chrono::steady_clock::now();
  tracePhase(/*Begin=*/true, Phase);
  BackwardSystem Sys(*Graph, Ops, Xfer, Cache.get(), Env);
  if (Eventually) {
    // Seeds: the intermittent assertions (and optionally termination).
    for (const Instance &Inst : Graph->instances()) {
      for (const IntermittentAssertion &A : Inst.Cfg->intermittents()) {
        unsigned Node = Graph->node(Inst, A.Point);
        AbstractStore Seed = AbstractStore::top();
        Exprs.refineBool(A.Cond, true, Seed, Inst.Frame);
        Sys.Seeds[Node] = Ops.join(Sys.Seeds[Node], Seed);
      }
    }
    if (Opts.TerminationGoal)
      Sys.Seeds[Graph->mainExit()] = AbstractStore::top();
  } else {
    // always(Pi): output states are stable and satisfy Pi trivially.
    Sys.Seeds[Graph->mainExit()] = AbstractStore::top();
  }

  FixpointSolver<BackwardSystem>::Options SolverOpts;
  SolverOpts.Kind = Eventually ? FixpointKind::Lfp : FixpointKind::Gfp;
  SolverOpts.Strategy = Opts.Strategy;
  SolverOpts.NumThreads = Opts.NumThreads;
  SolverOpts.NarrowingPasses = Opts.NarrowingPasses;
  SolverOpts.Telem = Opts.Telem;
  SolverOpts.DemandNodes = Demand;
  WarmSlot *Slot = nullptr;
  if (Opts.WarmStart) {
    // Same private-chain arrangement as solveForward for demand runs.
    Slot = &chainSlot(Eventually ? PhaseSig::Eventually : PhaseSig::Always);
    Sys.ExternalUnchanged = unchangedInputs(*Slot, &Env, &Sys.Seeds);
    SolverOpts.Memo = &Slot->Memo;
  }
  FixpointSolver<BackwardSystem> Solver(Sys, SolverOpts);
  std::vector<AbstractStore> Result = Solver.solve();
  if (Slot) {
    Slot->HadEnv = true;
    Slot->Env = Env;
    Slot->Seeds = Sys.Seeds;
    if (!Demand)
      Stats.SummaryReuses += countFullInstanceReplays(Solver, *Graph);
  }
  Phase.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  accumulateSolverStats(Solver.stats(), Sys.Unions, Phase);
  if (Demand)
    DemandAudit.push_back({Phase.Name, *Demand, Solver.nodeLiveSteps()});
  tracePhase(/*Begin=*/false, Phase);
  return Result;
}

void Analyzer::meetInto(std::vector<AbstractStore> &Env,
                        const std::vector<AbstractStore> &Refinement) {
  for (size_t I = 0; I < Env.size(); ++I)
    Env[I] = Ops.meet(Env[I], Refinement[I]);
}

std::vector<Analyzer::PlannedPhase> Analyzer::phasePlan() const {
  std::vector<PlannedPhase> Plan;
  Plan.push_back({PhaseSig::FwdNoEnv, 0, "Forward analysis"});
  Plan.push_back({PhaseSig::FwdEnv, 0, "Forward refinement"});
  bool Backward = Opts.UseBackward && !Opts.HarrisonGfp;
  for (unsigned Round = 0; Round < Opts.BackwardRounds && Backward;
       ++Round) {
    Plan.push_back({PhaseSig::Always, Round + 1, "Invariant assertions"});
    if (hasEventuallySeeds())
      Plan.push_back(
          {PhaseSig::Eventually, Round + 1, "Intermittent assertions"});
    Plan.push_back({PhaseSig::FwdEnv, Round + 1, "Forward analysis"});
  }
  return Plan;
}

std::vector<uint8_t>
Analyzer::dependencyCone(const Digraph &Dep,
                         const std::vector<unsigned> &Query) {
  std::vector<uint8_t> In(Dep.numNodes(), 0);
  std::vector<unsigned> Work;
  for (unsigned Q : Query)
    if (Q < In.size() && !In[Q]) {
      In[Q] = 1;
      Work.push_back(Q);
    }
  while (!Work.empty()) {
    unsigned V = Work.back();
    Work.pop_back();
    for (unsigned P : Dep.preds(V))
      if (!In[P]) {
        In[P] = 1;
        Work.push_back(P);
      }
  }
  return In;
}

void Analyzer::run() { runImpl(nullptr); }

void Analyzer::runDemand(const std::vector<unsigned> &QueryNodes) {
  // One mask per planned phase, computed back-to-front: the cone of
  // phase k is everything whose value phase k+1's cone reads — its own
  // transitive dependencies under phase k's equation system, seeded by
  // the *nodes* of phase k+1's cone (envelope/seed reads are per-node).
  // Masks therefore grow monotonically backward (Masks.back() is the
  // smallest), every mask contains the query nodes, and each is closed
  // under its phase's dependency-graph predecessors — the invariant
  // Solver::Options::DemandNodes requires for exact sub-solutions.
  std::vector<PlannedPhase> Plan = phasePlan();
  Digraph Fwd = buildForwardDep(*Graph);
  Digraph Bwd = buildBackwardDep(*Graph);
  std::vector<std::vector<uint8_t>> Masks(Plan.size());
  std::vector<unsigned> Want = QueryNodes;
  for (size_t I = Plan.size(); I-- > 0;) {
    const Digraph &Dep = (Plan[I].Sig == PhaseSig::Always ||
                          Plan[I].Sig == PhaseSig::Eventually)
                             ? Bwd
                             : Fwd;
    Masks[I] = dependencyCone(Dep, Want);
    Want.clear();
    for (unsigned V = 0; V < Masks[I].size(); ++V)
      if (Masks[I][V])
        Want.push_back(V);
  }
  runImpl(&Masks);
}

void Analyzer::runImpl(const std::vector<std::vector<uint8_t>> *Masks) {
  auto Start = std::chrono::steady_clock::now();
  Stats = AnalysisStats();
  Stats.ControlPoints = Graph->numNodes();
  Stats.Equations = Graph->numNodes();
  // The chain slots deliberately survive into the next run(): an
  // Analyzer's options and equation systems are fixed at construction,
  // so a repeated run() solves the identical chain phase-by-phase and
  // every replay check (memo shape, recorded Env/Seeds, value-by-value
  // boundary comparison) re-verifies against the same ordinal of the
  // previous run. Phases whose inputs still match replay outright;
  // anything else is solved cold. A second AbstractDebugger::analyze()
  // of an unchanged program therefore replays the *entire* chain —
  // zero live solver steps — while remaining bitwise-identical.
  // Demand runs (Masks != null) walk the same ordinals against a
  // private copy of the chain: they replay whatever the published
  // slots allow AND record their own phases (so a later round replays
  // the earlier round's cone — the masks only shrink along the plan),
  // but the copy is discarded below, so a demand run never poisons the
  // chain a future full run replays against.
  ChainOrdinal = 0;
  std::vector<WarmSlot> PublishedChain;
  if (Masks)
    PublishedChain = ChainSlots; // COW stores: structural sharing
  uint64_t MemoHitsAtStart = Graph->transferMemoHits();
  uint64_t KernelBlocksAtStart = Ops.kernelBlocks();
  PrunedSlotsRun = 0;

  Snapshots.clear();
  DemandMask.clear();
  DemandAudit.clear();

  std::vector<PlannedPhase> Plan = phasePlan();
  for (size_t I = 0; I < Plan.size(); ++I) {
    const PlannedPhase &P = Plan[I];
    const std::vector<uint8_t> *Mask = Masks ? &(*Masks)[I] : nullptr;
    Stats.Phases.push_back(PhaseStats{P.Name, 0, 0});
    Stats.Phases.back().Round = P.Round;
    PhaseStats &Phase = Stats.Phases.back();
    switch (P.Sig) {
    case PhaseSig::FwdNoEnv:
      Forward = solveForward(nullptr, Phase, Mask);
      break;
    case PhaseSig::FwdEnv:
      if (P.Round == 0) {
        // Second ascent from bottom *inside* the first result: widening
        // at nested component heads mixes iterations of enclosing loops
        // (an outer loop's variable overshoots at an inner head, and
        // narrowing cannot descend past the first finite bound it
        // finds). Restarting within the sound envelope removes that
        // loss — this is what proves the Matrix accesses of §6.5.
        // Still pure reachability, so check elimination may rely on it.
        Forward = solveForward(&Forward, Phase, Mask);
        Envelope = Forward;
      } else {
        Envelope = solveForward(&Envelope, Phase, Mask);
      }
      Snapshots.emplace_back("forward", Envelope);
      break;
    case PhaseSig::Always: {
      std::vector<AbstractStore> Always =
          solveBackward(/*Eventually=*/false, Envelope, Phase, Mask);
      meetInto(Envelope, Always);
      Snapshots.emplace_back("always", Envelope);
      break;
    }
    case PhaseSig::Eventually:
      Envelope =
          solveBackward(/*Eventually=*/true, Envelope, Phase, Mask);
      Snapshots.emplace_back("eventually", Envelope);
      break;
    }
  }

  // The answerable set of a demand run is the final phase's cone (the
  // last phase is always forward, so the mask is predecessor-closed
  // under the forward dependencies the findings derivations read).
  if (Masks) {
    DemandMask = Masks->back();
    ChainSlots = std::move(PublishedChain);
  }

  if (Cache) {
    // One snapshot pass over the shards (hits()/misses() would each
    // sweep all 64 again).
    TransferCache::Stats CS = Cache->statsSnapshot();
    Stats.CacheHits = CS.Hits;
    Stats.CacheMisses = CS.Misses;
    Stats.CacheMergeInserted = CS.MergeInserted;
    Stats.CacheMergeCombined = CS.MergeCombined;
    Stats.CacheMergeDiscarded = CS.MergeDiscarded;
    Stats.CacheTaskArenas = CS.TaskArenas;
  }
  Stats.BytesUsed = Graph->approximateBytes();
  // COW stores structurally share payloads across program points; count
  // each distinct payload once so Figure 4 reports the real footprint.
  std::unordered_set<const void *> SeenPayloads;
  for (const AbstractStore &S : Forward)
    Stats.BytesUsed += S.approximateBytes(SeenPayloads);
  for (const AbstractStore &S : Envelope)
    Stats.BytesUsed += S.approximateBytes(SeenPayloads);
  Stats.CpuSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  if (MetricsRegistry *M = Opts.Telem.Metrics) {
    M->gauge("graph.control_points")
        .set(static_cast<int64_t>(Stats.ControlPoints));
    M->gauge("graph.equations").set(static_cast<int64_t>(Stats.Equations));
    M->gauge("graph.instances")
        .set(static_cast<int64_t>(Graph->instances().size()));
    M->gauge("memory.bytes").set(static_cast<int64_t>(Stats.BytesUsed));
    if (Cache) {
      M->counter("cache.hits").inc(Stats.CacheHits);
      M->counter("cache.misses").inc(Stats.CacheMisses);
      M->counter("cache.merge_inserted").inc(Stats.CacheMergeInserted);
      M->counter("cache.merge_combined").inc(Stats.CacheMergeCombined);
      M->counter("cache.merge_discarded").inc(Stats.CacheMergeDiscarded);
      M->counter("cache.task_arenas").inc(Stats.CacheTaskArenas);
    }
    if (Opts.WarmStart) {
      M->counter("interproc.summary_reuse").inc(Stats.SummaryReuses);
      M->counter("interproc.link_memo_hits")
          .inc(Graph->transferMemoHits() - MemoHitsAtStart);
    }
    if (Live) {
      M->gauge("store.live_slots")
          .set(static_cast<int64_t>(Live->liveSlotCount()));
      M->counter("store.pruned_slots").inc(PrunedSlotsRun);
    }
    M->counter("store.kernel_blocks")
        .inc(Ops.kernelBlocks() - KernelBlocksAtStart);
    M->histogram("analysis.seconds").observe(Stats.CpuSeconds);
  }
}
