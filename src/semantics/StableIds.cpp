//===- semantics/StableIds.cpp - Content-addressed supergraph keys --------===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "semantics/StableIds.h"

#include "frontend/Ast.h"
#include "semantics/Interproc.h"

#include <cassert>
#include <functional>

using namespace syntox;

namespace {

/// Deterministic pre-order walk over every CallExpr of a statement tree
/// (nested routine declarations are not entered: their call sites get
/// ordinals of their own routine). The traversal order matches source
/// structure, so a routine's call ordinals are stable as long as its
/// fingerprint is.
void walkCalls(const Expr *E, const std::function<void(const CallExpr *)> &F);

void walkCalls(const Stmt *S, const std::function<void(const CallExpr *)> &F) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *AS = cast<AssignStmt>(S);
    walkCalls(AS->target(), F);
    walkCalls(AS->value(), F);
    break;
  }
  case Stmt::Kind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      walkCalls(Sub, F);
    break;
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    walkCalls(IS->cond(), F);
    walkCalls(IS->thenStmt(), F);
    walkCalls(IS->elseStmt(), F);
    break;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    walkCalls(WS->cond(), F);
    walkCalls(WS->body(), F);
    break;
  }
  case Stmt::Kind::Repeat: {
    const auto *RS = cast<RepeatStmt>(S);
    for (const Stmt *Sub : RS->body())
      walkCalls(Sub, F);
    walkCalls(RS->cond(), F);
    break;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    walkCalls(FS->from(), F);
    walkCalls(FS->to(), F);
    walkCalls(FS->body(), F);
    break;
  }
  case Stmt::Kind::Case: {
    const auto *CS = cast<CaseStmt>(S);
    walkCalls(CS->selector(), F);
    for (const CaseArm &Arm : CS->arms())
      walkCalls(Arm.Body, F);
    walkCalls(CS->elseStmt(), F);
    break;
  }
  case Stmt::Kind::Call:
    walkCalls(cast<CallStmt>(S)->call(), F);
    break;
  case Stmt::Kind::Read:
    for (const Expr *T : cast<ReadStmt>(S)->targets())
      walkCalls(T, F);
    break;
  case Stmt::Kind::Write:
    for (const Expr *V : cast<WriteStmt>(S)->values())
      walkCalls(V, F);
    break;
  case Stmt::Kind::Labeled:
    walkCalls(cast<LabeledStmt>(S)->subStmt(), F);
    break;
  case Stmt::Kind::Assert:
    walkCalls(cast<AssertStmt>(S)->cond(), F);
    break;
  case Stmt::Kind::Goto:
  case Stmt::Kind::Empty:
    break;
  }
}

void walkCalls(const Expr *E, const std::function<void(const CallExpr *)> &F) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::Index: {
    const auto *IE = cast<IndexExpr>(E);
    walkCalls(IE->base(), F);
    walkCalls(IE->index(), F);
    break;
  }
  case Expr::Kind::Call: {
    const auto *CE = cast<CallExpr>(E);
    F(CE);
    for (const Expr *A : CE->args())
      walkCalls(A, F);
    break;
  }
  case Expr::Kind::Unary:
    walkCalls(cast<UnaryExpr>(E)->subExpr(), F);
    break;
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    walkCalls(BE->lhs(), F);
    walkCalls(BE->rhs(), F);
    break;
  }
  default:
    break;
  }
}

} // namespace

StableIds::StableIds(const SuperGraph &G, const ProgramCfg &Cfg,
                     RoutineDecl *Program) {
  computeFingerprints(Program);

  // Call-site keys: (caller fingerprint, per-caller call ordinal). The
  // Sema-assigned CallSiteId is positional program-wide; this map
  // re-keys it so an edit to one routine leaves every other routine's
  // call-site keys intact. Id 0 is the program activation (and every
  // token in context-insensitive mode) — keyed as 0.
  std::unordered_map<unsigned, uint64_t> CallSiteKey;
  for (const RoutineCfg *C : Cfg.cfgs()) {
    const RoutineDecl *R = C->routine();
    uint64_t Ordinal = 0;
    if (R->block())
      walkCalls(R->block()->Body, [&](const CallExpr *CE) {
        if (!CE->routine())
          return; // builtins never become instances
        CallSiteKey[CE->callSiteId()] =
            fpMix(fpMix(R->fingerprint(), 0xC511), Ordinal++);
      });
  }

  // Variable keys: (owner fingerprint, index in owner). Owner variable
  // lists (params, result, locals, CfgBuilder temps) are rebuilt in the
  // same order whenever the owner's fingerprint is unchanged, so the
  // pair is content-stable.
  for (const RoutineCfg *C : Cfg.cfgs()) {
    const RoutineDecl *R = C->routine();
    for (const VarDecl *V : R->ownedVars()) {
      uint64_t K = fpMix(fpMix(R->fingerprint(), 0x7A12), V->indexInOwner());
      VarKeys.emplace(V, K);
      // Duplicate keys (textually identical twin routines) are
      // ambiguous: resolving one would graft cached state onto the
      // wrong twin, so the inverse map poisons them instead.
      auto [It, Inserted] = VarByKey.emplace(K, V);
      if (!Inserted)
        It->second = nullptr;
    }
  }

  // Instance keys: the routine's fingerprint, its lexical ancestor
  // chain (covers binding and shared-key changes from enclosing
  // routines), the call-site key, and the reference-parameter roots.
  InstanceKeys.reserve(G.instances().size());
  NodeKeys.assign(G.numNodes(), 0);
  for (const Instance &Inst : G.instances()) {
    uint64_t K = fpMix(fpSeed(), Inst.R->fingerprint());
    for (const RoutineDecl *A = Inst.R->parent(); A; A = A->parent())
      K = fpMix(K, A->fingerprint());
    auto CsIt = CallSiteKey.find(Inst.Tok.CallSiteId);
    K = fpMix(K, Inst.Tok.CallSiteId == 0 ? 0
              : CsIt != CallSiteKey.end() ? CsIt->second
                                          : Inst.Tok.CallSiteId);
    for (const VarDecl *Root : Inst.Tok.Roots)
      K = fpMix(K, varKey(Root));
    InstanceKeys.push_back(K);
    for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P) {
      uint64_t NK = fpMix(fpMix(K, 0x4E0D), P);
      NodeKeys[Inst.FirstNode + P] = NK;
      auto [It, Inserted] = NodeByKey.emplace(NK, Inst.FirstNode + P);
      if (!Inserted)
        It->second = ~0u; // ambiguous: see the var-key comment
    }
  }

  // Edge keys: kind + endpoint keys, disambiguated by an occurrence
  // ordinal (parallel Local edges — e.g. the two assume edges of a
  // branch — share endpoints).
  std::unordered_map<uint64_t, unsigned> Seen;
  EdgeKeys.reserve(G.edges().size());
  for (const SuperEdge &E : G.edges()) {
    uint64_t K = fpMix(fpSeed(), 0xE0 + static_cast<unsigned>(E.K));
    K = fpMix(K, NodeKeys[E.From]);
    K = fpMix(K, NodeKeys[E.To]);
    K = fpMix(K, Seen[K]++);
    EdgeKeys.push_back(K);
  }

  GraphHash = fpMix(fpSeed(), G.numNodes());
  for (uint64_t K : NodeKeys)
    GraphHash = fpMix(GraphHash, K);
  for (uint64_t K : EdgeKeys)
    GraphHash = fpMix(GraphHash, K);
}

uint64_t StableIds::varKey(const VarDecl *V) const {
  auto It = VarKeys.find(V);
  assert(It != VarKeys.end() && "variable outside the numbered program");
  return It->second;
}

const VarDecl *StableIds::varForKey(uint64_t Key) const {
  auto It = VarByKey.find(Key);
  return It == VarByKey.end() ? nullptr : It->second;
}

bool StableIds::nodeForKey(uint64_t Key, unsigned &NodeOut) const {
  auto It = NodeByKey.find(Key);
  if (It == NodeByKey.end() || It->second == ~0u)
    return false;
  NodeOut = It->second;
  return true;
}

size_t StableIds::approximateBytes() const {
  size_t Bytes = sizeof(*this);
  Bytes += (NodeKeys.size() + InstanceKeys.size() + EdgeKeys.size()) *
           sizeof(uint64_t);
  // Hash-map entries: key/value plus a bucket pointer's worth of
  // overhead each.
  Bytes += VarKeys.size() * (sizeof(void *) + 2 * sizeof(uint64_t));
  Bytes += VarByKey.size() * (sizeof(void *) + 2 * sizeof(uint64_t));
  Bytes += NodeByKey.size() * (sizeof(void *) + 2 * sizeof(uint64_t));
  return Bytes;
}
