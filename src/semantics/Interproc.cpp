//===- semantics/Interproc.cpp - Token-based call-graph unfolding ---------===//

#include "semantics/Interproc.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace syntox;

VarNumbering::VarNumbering(const ProgramCfg &Cfg) {
  // CFG order is declaration order (program first), and ownedVars() is
  // registration order (params, result, locals, then CfgBuilder temps),
  // so the assignment below is deterministic for a given AST and safe
  // to re-run: every analysis of the same program sees the same slots.
  for (const RoutineCfg *C : Cfg.cfgs()) {
    Range &R = Ranges[C->routine()];
    R.First = NumSlots;
    for (VarDecl *V : C->routine()->ownedVars())
      V->setStoreSlot(NumSlots++);
    R.Count = NumSlots - R.First;
  }
}

SuperGraph::SuperGraph(const ProgramCfg &Cfg, RoutineDecl *Program,
                       const StoreOps &Ops, const ExprSemantics &Exprs,
                       const Transfer &Xfer, bool ContextInsensitive,
                       Telemetry Telem)
    : Cfg(Cfg), Numbering(Cfg), Ops(Ops), Exprs(Exprs), Telem(Telem),
      Xfer(Xfer), ContextInsensitive(ContextInsensitive) {
  // The constant slot -> declaration table behind every store payload:
  // VarNumbering just assigned the slots, so one pass over the owned
  // variables fills it completely and no payload ever grows its own.
  {
    auto Table =
        std::make_shared<detail::StoreKeyTable>(Numbering.numSlots(), nullptr);
    for (const RoutineCfg *C : Cfg.cfgs())
      for (VarDecl *V : C->routine()->ownedVars())
        (*Table)[V->storeSlot()] = V;
    KeyTable = std::move(Table);
  }
  discoverInstances(Program);
  buildEdges();
  Ids = std::make_unique<StableIds>(*this, Cfg, Program);
  if (Telem.Metrics)
    Telem.Metrics->counter("interproc.instances").inc(Instances.size());
}

unsigned SuperGraph::mainEntry() const {
  return Instances[0].FirstNode + Instances[0].Cfg->entry();
}

unsigned SuperGraph::mainExit() const {
  return Instances[0].FirstNode + Instances[0].Cfg->exit();
}

const Instance &SuperGraph::instanceOf(unsigned Node) const {
  return Instances[NodeInstance[Node]];
}

unsigned SuperGraph::pointOf(unsigned Node) const {
  return Node - instanceOf(Node).FirstNode;
}

unsigned SuperGraph::getOrCreateInstance(RoutineDecl *R, ActivationToken Tok) {
  auto It = InstanceByToken.find(Tok);
  if (It != InstanceByToken.end())
    return It->second;

  Instance Inst;
  Inst.Id = static_cast<unsigned>(Instances.size());
  Inst.R = R;
  Inst.Cfg = Cfg.cfgFor(R);
  assert(Inst.Cfg && "routine without CFG");
  Inst.Tok = Tok;
  Inst.FirstNode = NumNodes;
  NumNodes += Inst.Cfg->numPoints();

  // Frame: redirect each reference formal to its root.
  unsigned RootIdx = 0;
  for (VarDecl *Formal : R->params()) {
    if (!Formal->isVarParam())
      continue;
    assert(RootIdx < Tok.Roots.size() && "token/parameter mismatch");
    Inst.Frame.redirect(Formal, Tok.Roots[RootIdx++]);
  }

  // Shared keys: every variable of every proper ancestor, plus the roots.
  std::set<const VarDecl *> Shared;
  for (const RoutineDecl *A = R->parent(); A; A = A->parent())
    for (VarDecl *V : A->ownedVars())
      Shared.insert(V);
  for (const VarDecl *Root : Tok.Roots)
    Shared.insert(Root);
  Inst.SharedKeys.assign(Shared.begin(), Shared.end());
  Inst.AccessedKeys = Inst.SharedKeys;

  InstanceByToken[Tok] = Inst.Id;
  // One token_unfold event per activation class created (§6.4): the
  // routine name labels the event, the call site ties it to the source.
  if (TraceRecorder *Rec = Telem.Trace;
      Rec && Rec->wants(TraceEventKind::TokenUnfold))
    Rec->record(TraceEventKind::TokenUnfold, Inst.Id, Tok.CallSiteId,
                R->name());
  Instances.push_back(std::move(Inst));
  return Instances.back().Id;
}

void SuperGraph::discoverInstances(RoutineDecl *Program) {
  ActivationToken MainTok;
  MainTok.Routine = Program;
  getOrCreateInstance(Program, MainTok);
  // Instances.size() grows during the scan: classic worklist.
  for (unsigned Idx = 0; Idx < Instances.size(); ++Idx) {
    // Note: Instances may reallocate inside the loop; index it afresh.
    for (const CfgEdge &E : Instances[Idx].Cfg->edges()) {
      if (E.Act.K != Action::Kind::Call)
        continue;
      const CallExpr *CE = E.Act.Call;
      RoutineDecl *Callee = CE->routine();
      ActivationToken Tok;
      Tok.Routine = Callee;
      Tok.CallSiteId = ContextInsensitive ? 0 : CE->callSiteId();
      const std::vector<VarDecl *> &Formals = Callee->params();
      for (size_t I = 0; I < Formals.size() && I < CE->args().size(); ++I) {
        if (!Formals[I]->isVarParam())
          continue;
        const auto *Ref = cast<VarRefExpr>(CE->args()[I]);
        // Resolve through the caller's own frame: roots stay roots.
        Tok.Roots.push_back(
            Instances[Idx].Frame.resolve(Ref->varDecl()));
      }
      unsigned CalleeId = getOrCreateInstance(Callee, std::move(Tok));
      CallLink Link;
      Link.CallerInstance = Idx;
      Link.CalleeInstance = CalleeId;
      Link.Call = CE;
      Link.ResultTemp = E.Act.ResultVar;
      Link.NodeP = Instances[Idx].FirstNode + E.From;
      Link.NodeQ = Instances[Idx].FirstNode + E.To;
      Links.push_back(Link);
    }
  }
  NodeInstance.resize(NumNodes);
  for (const Instance &Inst : Instances)
    for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P)
      NodeInstance[Inst.FirstNode + P] = Inst.Id;
}

void SuperGraph::buildEdges() {
  // Local edges.
  for (const Instance &Inst : Instances) {
    for (const CfgEdge &E : Inst.Cfg->edges()) {
      if (E.Act.K == Action::Kind::Call)
        continue;
      SuperEdge SE;
      SE.K = SuperEdge::Kind::Local;
      SE.From = Inst.FirstNode + E.From;
      SE.To = Inst.FirstNode + E.To;
      SE.Act = &E.Act;
      Edges.push_back(SE);
    }
  }
  // Call, return and channel edges.
  for (unsigned LinkIdx = 0; LinkIdx < Links.size(); ++LinkIdx) {
    const CallLink &L = Links[LinkIdx];
    const Instance &Caller = Instances[L.CallerInstance];
    const Instance &Callee = Instances[L.CalleeInstance];

    SuperEdge InE;
    InE.K = SuperEdge::Kind::CallIn;
    InE.From = L.NodeP;
    InE.To = Callee.FirstNode + Callee.Cfg->entry();
    InE.Link = LinkIdx;
    Edges.push_back(InE);

    SuperEdge OutE;
    OutE.K = SuperEdge::Kind::CallOut;
    OutE.From = Callee.FirstNode + Callee.Cfg->exit();
    OutE.To = L.NodeQ;
    OutE.Link = LinkIdx;
    Edges.push_back(OutE);

    for (const auto &[Chan, ChanPoint] : Callee.Cfg->channelExits()) {
      SuperEdge ChanE;
      ChanE.K = SuperEdge::Kind::ChannelOut;
      ChanE.From = Callee.FirstNode + ChanPoint;
      ChanE.Link = LinkIdx;
      if (Chan.Target == Caller.R) {
        // The jump lands on the caller's own labeled statement.
        auto It = Caller.Cfg->labelPoints().find(Chan.Label);
        assert(It != Caller.Cfg->labelPoints().end() &&
               "non-local target label without a point");
        ChanE.To = Caller.FirstNode + It->second;
      } else {
        // Re-raise: the caller forwards the channel to its own caller.
        auto It = Caller.Cfg->channelExits().find(Chan);
        assert(It != Caller.Cfg->channelExits().end() &&
               "channel not propagated to caller");
        ChanE.To = Caller.FirstNode + It->second;
      }
      Edges.push_back(ChanE);
    }
  }

  In.assign(NumNodes, {});
  Out.assign(NumNodes, {});
  for (unsigned I = 0; I < Edges.size(); ++I) {
    In[Edges[I].To].push_back(I);
    Out[Edges[I].From].push_back(I);
  }
}

//===----------------------------------------------------------------------===//
// Interprocedural transfer
//===----------------------------------------------------------------------===//

AbstractStore SuperGraph::copyIn(const CallLink &L,
                                 const AbstractStore &AtP) const {
  if (AtP.isBottom())
    return AbstractStore::bottom();
  const Instance &Caller = Instances[L.CallerInstance];
  const Instance &Callee = Instances[L.CalleeInstance];

  AbstractStore S; // top: callee locals start undefined
  S.adoptKeyTable(KeyTable);
  for (const VarDecl *K : Callee.AccessedKeys)
    Ops.assign(S, K, Ops.get(AtP, K));
  if (S.isBottom())
    return S;

  const std::vector<VarDecl *> &Formals = Callee.R->params();
  const std::vector<Expr *> &Args = L.Call->args();
  for (size_t I = 0; I < Formals.size() && I < Args.size(); ++I) {
    VarDecl *Formal = Formals[I];
    if (Formal->isVarParam()) {
      // The root was copied with the shared keys; the formal's declared
      // subrange (checked at the caller) refines it.
      const VarDecl *Root = Callee.Frame.resolve(Formal);
      if (Formal->type()->isIntegerLike())
        Ops.refine(S, Root, AbsValue(Ops.typeRange(Formal)));
      continue;
    }
    if (Formal->type()->isBoolean()) {
      Ops.assign(S, Formal,
                 AbsValue(Exprs.evalBool(Args[I], AtP, Caller.Frame)));
    } else {
      Interval V = Exprs.evalInt(Args[I], AtP, Caller.Frame);
      V = Ops.domain().meet(V, Ops.typeRange(Formal));
      Ops.assign(S, Formal, AbsValue(V));
    }
  }
  return S;
}

AbstractStore SuperGraph::copyOut(const CallLink &L,
                                  const AbstractStore &AtExit,
                                  const AbstractStore &AtP) const {
  if (AtExit.isBottom() || AtP.isBottom())
    return AbstractStore::bottom();
  const Instance &Callee = Instances[L.CalleeInstance];
  // Keys the activation never touches keep their caller value: the
  // callee state is exact on AccessedKeys and vacuous elsewhere.
  AbstractStore S = AtP;
  for (const VarDecl *K : Callee.AccessedKeys)
    Ops.assign(S, K, Ops.get(AtExit, K));
  if (L.ResultTemp && Callee.R->resultVar())
    Ops.assign(S, L.ResultTemp, Ops.get(AtExit, Callee.R->resultVar()));
  return S;
}

AbstractStore SuperGraph::channelOut(const CallLink &L,
                                     const AbstractStore &AtChan,
                                     const AbstractStore &AtP) const {
  if (AtChan.isBottom() || AtP.isBottom())
    return AbstractStore::bottom();
  const Instance &Callee = Instances[L.CalleeInstance];
  AbstractStore S = AtP;
  for (const VarDecl *K : Callee.AccessedKeys)
    Ops.assign(S, K, Ops.get(AtChan, K));
  return S;
}

AbstractStore SuperGraph::bwdCopyIn(const CallLink &L,
                                    const AbstractStore &AtEntry) const {
  if (AtEntry.isBottom())
    return AbstractStore::bottom();
  const Instance &Caller = Instances[L.CallerInstance];
  const Instance &Callee = Instances[L.CalleeInstance];

  AbstractStore S;
  S.adoptKeyTable(KeyTable);
  for (const VarDecl *K : Callee.SharedKeys)
    Ops.assign(S, K, Ops.get(AtEntry, K));
  if (S.isBottom())
    return S;

  const std::vector<VarDecl *> &Formals = Callee.R->params();
  const std::vector<Expr *> &Args = L.Call->args();
  for (size_t I = 0; I < Formals.size() && I < Args.size(); ++I) {
    VarDecl *Formal = Formals[I];
    if (Formal->isVarParam())
      continue; // covered by the shared keys
    // The requirement on the formal constrains the argument expression.
    if (Formal->type()->isBoolean()) {
      BoolLattice B = Ops.get(AtEntry, Formal).asBool();
      if (B.isBottom())
        return AbstractStore::bottom();
      if (B.isConstant())
        Exprs.refineBool(Args[I], B.constantValue(), S, Caller.Frame);
    } else {
      Exprs.refineInt(Args[I], Ops.get(AtEntry, Formal).asInt(), S,
                      Caller.Frame);
    }
    if (S.isBottom())
      return S;
  }
  return S;
}

AbstractStore SuperGraph::bwdCopyOut(const CallLink &L,
                                     const AbstractStore &AtQ) const {
  if (AtQ.isBottom())
    return AbstractStore::bottom();
  const Instance &Callee = Instances[L.CalleeInstance];
  AbstractStore S;
  S.adoptKeyTable(KeyTable);
  for (const VarDecl *K : Callee.SharedKeys)
    Ops.assign(S, K, Ops.get(AtQ, K));
  if (S.isBottom())
    return S;
  if (L.ResultTemp && Callee.R->resultVar())
    Ops.assign(S, Callee.R->resultVar(), Ops.get(AtQ, L.ResultTemp));
  return S;
}

AbstractStore
SuperGraph::bwdChannelOut(const CallLink &L,
                          const AbstractStore &AtTarget) const {
  if (AtTarget.isBottom())
    return AbstractStore::bottom();
  const Instance &Callee = Instances[L.CalleeInstance];
  AbstractStore S;
  S.adoptKeyTable(KeyTable);
  for (const VarDecl *K : Callee.SharedKeys)
    Ops.assign(S, K, Ops.get(AtTarget, K));
  return S;
}

AbstractStore
SuperGraph::fwdTransfer(unsigned EdgeIdx,
                        const std::vector<AbstractStore> &X) const {
  const SuperEdge &E = Edges[EdgeIdx];
  const CallLink &L = Links[E.Link];
  const AbstractStore &In1 = X[E.From];
  // CallOut/ChannelOut combine the callee state with the frozen caller
  // state before the call.
  const AbstractStore *In2 =
      E.K == SuperEdge::Kind::CallIn ? nullptr : &X[L.NodeP];
  LinkTransferMemo *M =
      TransferMemoEnabled ? &EdgeMemos[EdgeIdx][0] : nullptr;
  if (M && M->Valid && Ops.equal(M->In1, In1) &&
      (!In2 || Ops.equal(M->In2, *In2))) {
    TransferMemoHits.fetch_add(1, std::memory_order_relaxed);
    return M->Out;
  }
  AbstractStore Out;
  switch (E.K) {
  case SuperEdge::Kind::CallIn:
    Out = copyIn(L, In1);
    break;
  case SuperEdge::Kind::CallOut:
    Out = copyOut(L, In1, *In2);
    break;
  case SuperEdge::Kind::ChannelOut:
    Out = channelOut(L, In1, *In2);
    break;
  case SuperEdge::Kind::Local:
    break; // not an interprocedural edge; unreachable by contract
  }
  if (M) {
    M->Valid = true;
    M->In1 = In1;
    if (In2)
      M->In2 = *In2;
    M->Out = Out;
  }
  return Out;
}

AbstractStore
SuperGraph::bwdTransfer(unsigned EdgeIdx,
                        const std::vector<AbstractStore> &X) const {
  const SuperEdge &E = Edges[EdgeIdx];
  const CallLink &L = Links[E.Link];
  const AbstractStore &In = X[E.To];
  LinkTransferMemo *M =
      TransferMemoEnabled ? &EdgeMemos[EdgeIdx][1] : nullptr;
  if (M && M->Valid && Ops.equal(M->In1, In)) {
    TransferMemoHits.fetch_add(1, std::memory_order_relaxed);
    return M->Out;
  }
  AbstractStore Out;
  switch (E.K) {
  case SuperEdge::Kind::CallIn:
    Out = bwdCopyIn(L, In);
    break;
  case SuperEdge::Kind::CallOut:
    Out = bwdCopyOut(L, In);
    break;
  case SuperEdge::Kind::ChannelOut:
    Out = bwdChannelOut(L, In);
    break;
  case SuperEdge::Kind::Local:
    break; // unreachable by contract
  }
  if (M) {
    M->Valid = true;
    M->In1 = In;
    M->Out = Out;
  }
  return Out;
}

size_t SuperGraph::approximateBytes() const {
  size_t Bytes = sizeof(*this);
  Bytes += Instances.size() * sizeof(Instance);
  for (const Instance &Inst : Instances)
    Bytes += Inst.SharedKeys.size() * sizeof(void *) +
             Inst.Frame.map().size() * 2 * sizeof(void *);
  Bytes += Links.size() * sizeof(CallLink);
  Bytes += Edges.size() * sizeof(SuperEdge);
  Bytes += NumNodes * 2 * sizeof(std::vector<unsigned>);
  for (unsigned N = 0; N < NumNodes; ++N)
    Bytes += (In[N].size() + Out[N].size()) * sizeof(unsigned);
  // The stable-key side tables are shared by every store snapshot and
  // memo; they are charged exactly once, here.
  if (Ids)
    Bytes += Ids->approximateBytes();
  return Bytes;
}
