//===- semantics/Analyzer.h - The abstract debugging analyses ---*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-debugging engine of paper §3/§4: an iterated sequence of
///  1. a *forward* least-fixpoint analysis of the reachable states,
///  2. a *backward* greatest-fixpoint analysis of `always(Pi_a)` — the
///     states whose descendants keep satisfying the invariant assertions
///     and the runtime checks,
///  3. a *backward* least-fixpoint analysis of `eventually(Pi_e)` — the
///     states with a descendant satisfying some intermittent assertion,
///  4. a final forward pass inside the refined invariant,
/// each phase computed inside the *envelope* produced by the previous
/// ones (the decreasing chain I_k of §3). The default schedule matches
/// Syntox §6.4: forward, two backward analyses, final forward.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_ANALYZER_H
#define SYNTOX_SEMANTICS_ANALYZER_H

#include "fixpoint/Solver.h"
#include "semantics/AnalysisOptions.h"
#include "semantics/Interproc.h"
#include "support/Stats.h"

#include <memory>

namespace syntox {

class Analyzer {
public:
  /// The analysis knobs — one struct shared by the whole stack (see
  /// semantics/AnalysisOptions.h). The alias keeps the historical
  /// `Analyzer::Options` spelling compiling.
  using Options = AnalysisOptions;

  Analyzer(const ProgramCfg &Cfg, RoutineDecl *Program, Options Opts);
  Analyzer(const ProgramCfg &Cfg, RoutineDecl *Program);
  ~Analyzer();

  /// Runs the full analysis schedule.
  void run();

  const SuperGraph &graph() const { return *Graph; }
  const StoreOps &storeOps() const { return Ops; }
  const ExprSemantics &exprSemantics() const { return Exprs; }
  const ProgramCfg &programCfg() const { return Cfg; }
  /// The registered runtime checks (shared with the ProgramCfg).
  const std::vector<CheckInfo> &checkTable() const { return Cfg.checks(); }

  /// The initial forward analysis result (pure reachability; the sound
  /// basis for check elimination).
  const AbstractStore &forwardAt(unsigned Node) const {
    return Forward[Node];
  }
  /// The final program invariant I (forward meet backward refinements).
  const AbstractStore &envelopeAt(unsigned Node) const {
    return Envelope[Node];
  }

  const AnalysisStats &stats() const { return Stats; }

  /// Per-phase envelope snapshots (phase name, stores) in execution
  /// order, for inspection and debugging of the iterated chain I_k.
  const std::vector<std::pair<std::string, std::vector<AbstractStore>>> &
  phaseSnapshots() const {
    return Snapshots;
  }

private:
  /// Warm-start state for one slot of the refinement chain: the memo
  /// the solver records/replays, plus the external inputs the recorded
  /// run solved under (to mark the nodes whose inputs changed since).
  /// Three slots exist — the forward phases share one, and the two
  /// backward analyses get one each — because replay is only exact
  /// against a run of the *same* equation system.
  struct WarmSlot {
    WarmStartMemo<AbstractStore> Memo;
    bool HadEnv = false; ///< the recorded run solved inside an envelope
    std::vector<AbstractStore> Env;   ///< envelope of the recorded run
    std::vector<AbstractStore> Seeds; ///< seeds of the recorded run
  };

  std::vector<AbstractStore> solveForward(
      const std::vector<AbstractStore> *Env, PhaseStats &Phase);
  std::vector<AbstractStore> solveBackward(
      bool Eventually, const std::vector<AbstractStore> &Env,
      PhaseStats &Phase);
  bool hasEventuallySeeds() const;
  void meetInto(std::vector<AbstractStore> &Env,
                const std::vector<AbstractStore> &Refinement);
  void tracePhase(bool Begin, const PhaseStats &Phase);
  void accumulateSolverStats(const SolverStats &S, uint64_t SysUnions,
                             PhaseStats &Phase);
  std::vector<uint8_t> unchangedInputs(
      const WarmSlot &Slot, const std::vector<AbstractStore> *Env,
      const std::vector<AbstractStore> *Seeds) const;

  const ProgramCfg &Cfg;
  RoutineDecl *Program;
  Options Opts;
  IntervalDomain Domain;
  StoreOps Ops;
  ExprSemantics Exprs;
  Transfer Xfer;
  std::unique_ptr<TransferCache> Cache;
  std::unique_ptr<SuperGraph> Graph;
  std::vector<AbstractStore> Forward;
  std::vector<AbstractStore> Envelope;
  std::vector<std::pair<std::string, std::vector<AbstractStore>>> Snapshots;
  AnalysisStats Stats;
  WarmSlot FwdSlot, AlwaysSlot, EventuallySlot;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_ANALYZER_H
