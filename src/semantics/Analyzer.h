//===- semantics/Analyzer.h - The abstract debugging analyses ---*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-debugging engine of paper §3/§4: an iterated sequence of
///  1. a *forward* least-fixpoint analysis of the reachable states,
///  2. a *backward* greatest-fixpoint analysis of `always(Pi_a)` — the
///     states whose descendants keep satisfying the invariant assertions
///     and the runtime checks,
///  3. a *backward* least-fixpoint analysis of `eventually(Pi_e)` — the
///     states with a descendant satisfying some intermittent assertion,
///  4. a final forward pass inside the refined invariant,
/// each phase computed inside the *envelope* produced by the previous
/// ones (the decreasing chain I_k of §3). The default schedule matches
/// Syntox §6.4: forward, two backward analyses, final forward.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_ANALYZER_H
#define SYNTOX_SEMANTICS_ANALYZER_H

#include "fixpoint/Solver.h"
#include "semantics/AnalysisOptions.h"
#include "semantics/Interproc.h"
#include "support/Stats.h"

#include <memory>

namespace syntox {

class LivenessInfo;

class Analyzer {
public:
  /// The analysis knobs — one struct shared by the whole stack (see
  /// semantics/AnalysisOptions.h). The alias keeps the historical
  /// `Analyzer::Options` spelling compiling.
  using Options = AnalysisOptions;

  Analyzer(const ProgramCfg &Cfg, RoutineDecl *Program, Options Opts);
  Analyzer(const ProgramCfg &Cfg, RoutineDecl *Program);
  ~Analyzer();

  /// Runs the full analysis schedule.
  void run();

  /// Demand-driven solve: runs the same refinement-chain schedule as
  /// run(), but restricts every phase to the backward dependency cone
  /// of \p QueryNodes — the phase masks are computed back-to-front
  /// (each phase must deliver correct values wherever the next phase's
  /// cone reads its envelope/seeds, and those reads are per-node), so
  /// the values at every node of demandMask() are bitwise-identical to
  /// a full run() while out-of-cone components perform zero live
  /// evaluations. The run replays from (and records into) a private
  /// copy of the warm-start chain, so earlier rounds of the demand run
  /// itself replay while the published chain is never mutated; results
  /// outside demandMask() are unspecified and must not be read.
  void runDemand(const std::vector<unsigned> &QueryNodes);

  /// After runDemand(): the per-node answerable mask (the final
  /// phase's cone). Empty after a full run(), where every node is
  /// answerable.
  const std::vector<uint8_t> &demandMask() const { return DemandMask; }

  /// Audit record of one phase of a demand-driven run: the cone the
  /// phase was restricted to, and the per-node live evaluation counts
  /// its solver performed. Tests assert the zero-out-of-cone-steps
  /// guarantee directly from this.
  struct DemandPhaseAudit {
    std::string Phase;
    std::vector<uint8_t> Mask;
    std::vector<uint64_t> NodeLiveSteps;
  };
  const std::vector<DemandPhaseAudit> &demandAudit() const {
    return DemandAudit;
  }

  /// Predecessor closure of \p Query in \p Dep: the nodes whose values
  /// the queried equations transitively depend on. The cone primitive
  /// behind runDemand(), exposed for direct unit testing on hand-built
  /// dependency digraphs.
  static std::vector<uint8_t> dependencyCone(const Digraph &Dep,
                                             const std::vector<unsigned> &Query);

  /// The equation-system signature of one slot of the refinement chain.
  /// Replay is only exact against a run of the same system, so each
  /// chain slot remembers which system recorded it and resets when the
  /// schedule changes shape under its ordinal.
  enum class PhaseSig : uint8_t { FwdNoEnv, FwdEnv, Always, Eventually };

  /// One phase of the refinement-chain schedule, computable *before*
  /// solving: run() and runDemand() both execute exactly this plan, so
  /// demand masks derived from it line up with the executed phases by
  /// construction.
  struct PlannedPhase {
    PhaseSig Sig;
    unsigned Round;   ///< 0 for the initial forward passes
    const char *Name; ///< PhaseStats display name
  };

  /// The schedule the next run()/runDemand() will execute, from the
  /// options and the program's assertion structure.
  std::vector<PlannedPhase> phasePlan() const;

  /// Warm-start state for one slot of the refinement chain: the memo
  /// the solver records/replays, plus the external inputs the recorded
  /// run solved under (to mark the nodes whose inputs changed since).
  /// One slot exists per *phase ordinal* of the chain (F0, F1, A1, E1,
  /// F2, ... in execution order), so a repeated run() replays each
  /// phase against the same phase of the previous run — including the
  /// envelope-free initial forward pass, which a shared slot would
  /// poison with the final pass's envelope.
  struct WarmSlot {
    WarmStartMemo<AbstractStore> Memo;
    PhaseSig Sig = PhaseSig::FwdNoEnv;
    bool HadEnv = false; ///< the recorded run solved inside an envelope
    std::vector<AbstractStore> Env;   ///< envelope of the recorded run
    std::vector<AbstractStore> Seeds; ///< seeds of the recorded run
  };

  const SuperGraph &graph() const { return *Graph; }
  const Options &options() const { return Opts; }
  const StoreOps &storeOps() const { return Ops; }
  const ExprSemantics &exprSemantics() const { return Exprs; }
  const ProgramCfg &programCfg() const { return Cfg; }
  /// The registered runtime checks (shared with the ProgramCfg).
  const std::vector<CheckInfo> &checkTable() const { return Cfg.checks(); }

  /// The initial forward analysis result (pure reachability; the sound
  /// basis for check elimination).
  const AbstractStore &forwardAt(unsigned Node) const {
    return Forward[Node];
  }
  /// The final program invariant I (forward meet backward refinements).
  const AbstractStore &envelopeAt(unsigned Node) const {
    return Envelope[Node];
  }

  const AnalysisStats &stats() const { return Stats; }

  /// The live-slot masks driving dead-slot pruning, or null when
  /// pruning is off (--no-prune). UI layers use this to tell a
  /// genuinely-top variable from a pruned one.
  const LivenessInfo *liveness() const { return Live.get(); }
  /// Slots dropped by store restriction during the last run()/runDemand().
  uint64_t prunedSlots() const { return PrunedSlotsRun; }

  /// Per-phase envelope snapshots (phase name, stores) in execution
  /// order, for inspection and debugging of the iterated chain I_k.
  const std::vector<std::pair<std::string, std::vector<AbstractStore>>> &
  phaseSnapshots() const {
    return Snapshots;
  }

  /// \name Warm-start state access (persistence, warm bench transplants)
  /// @{
  /// The chain slots in phase-ordinal order, as recorded by the last
  /// run(). Empty before the first warm-started run.
  const std::vector<WarmSlot> &chainSlots() const { return ChainSlots; }
  /// Installs externally restored chain slots (e.g. loaded from the
  /// on-disk cache). The solver re-validates every memo header and every
  /// replayed value, so a stale import degrades to cold solving, never
  /// to wrong results.
  void importChainSlots(std::vector<WarmSlot> Slots) {
    ChainSlots = std::move(Slots);
  }
  /// Installs a restored edge-transfer memo (input-verified on every
  /// probe, so stale imports cost a miss, never a wrong summary).
  void importEdgeMemo(unsigned EdgeIdx, unsigned Dir, LinkTransferMemo M) {
    Graph->importEdgeMemo(EdgeIdx, Dir, std::move(M));
  }
  /// Transplants the warm-start state (chain slots and edge-transfer
  /// memos) recorded by \p Other into this analyzer. Returns false — and
  /// imports nothing — unless both analyzers solve the same supergraph
  /// (equal stable hashes) under the same value semantics: replayed
  /// values were *computed* under the donor's widening/narrowing
  /// configuration, so value verification alone cannot catch a
  /// semantics mismatch.
  bool importWarmFrom(const Analyzer &Other);
  /// The forward / backward dependency digraphs — built by the same
  /// shared helpers the internal equation systems use, so WTOs derived
  /// from them can never diverge from the ones the solver iterated.
  Digraph forwardDependencies() const;
  Digraph backwardDependencies() const;
  std::vector<unsigned> forwardRoots() const;
  std::vector<unsigned> backwardRoots() const;
  /// True when the transfer cache is live (explicitly requested, or
  /// auto-enabled by the instance-count heuristic).
  bool transferCacheEnabled() const { return Cache != nullptr; }
  /// @}

private:
  /// Claims the next chain slot of this run and tags it \p Sig. A slot
  /// whose recorded signature differs is reset (the schedule changed
  /// shape under its ordinal); a fresh slot is seeded with a copy of
  /// the nearest earlier same-signature slot, which preserves the
  /// within-run reuse of the old shared-slot scheme (round k+1 replays
  /// against round k) on top of the across-run per-ordinal replay.
  WarmSlot &chainSlot(PhaseSig Sig);

  /// Executes the phase plan; \p Masks (one per planned phase) restricts
  /// each phase to its demand cone, null = full run.
  void runImpl(const std::vector<std::vector<uint8_t>> *Masks);

  std::vector<AbstractStore> solveForward(
      const std::vector<AbstractStore> *Env, PhaseStats &Phase,
      const std::vector<uint8_t> *Demand = nullptr);
  std::vector<AbstractStore> solveBackward(
      bool Eventually, const std::vector<AbstractStore> &Env,
      PhaseStats &Phase, const std::vector<uint8_t> *Demand = nullptr);
  bool hasEventuallySeeds() const;
  void meetInto(std::vector<AbstractStore> &Env,
                const std::vector<AbstractStore> &Refinement);
  void tracePhase(bool Begin, const PhaseStats &Phase);
  void accumulateSolverStats(const SolverStats &S, uint64_t SysUnions,
                             PhaseStats &Phase);
  std::vector<uint8_t> unchangedInputs(
      const WarmSlot &Slot, const std::vector<AbstractStore> *Env,
      const std::vector<AbstractStore> *Seeds) const;

  const ProgramCfg &Cfg;
  RoutineDecl *Program;
  Options Opts;
  IntervalDomain Domain;
  StoreOps Ops;
  ExprSemantics Exprs;
  Transfer Xfer;
  std::unique_ptr<TransferCache> Cache;
  std::unique_ptr<SuperGraph> Graph;
  std::unique_ptr<LivenessInfo> Live;
  uint64_t PrunedSlotsRun = 0;
  std::vector<AbstractStore> Forward;
  std::vector<AbstractStore> Envelope;
  std::vector<std::pair<std::string, std::vector<AbstractStore>>> Snapshots;
  AnalysisStats Stats;
  /// One warm slot per phase ordinal of the refinement chain, surviving
  /// across run() calls (and importable from the persistent cache).
  std::vector<WarmSlot> ChainSlots;
  /// Ordinal of the next phase within the current run().
  unsigned ChainOrdinal = 0;
  /// Answerable mask of the last runDemand(); empty after a full run().
  std::vector<uint8_t> DemandMask;
  /// Per-phase audit of the last runDemand(); empty after a full run().
  std::vector<DemandPhaseAudit> DemandAudit;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_ANALYZER_H
