//===- semantics/StableIds.h - Content-addressed supergraph keys *- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable identity layer of the analysis pipeline. Every positional
/// identity used by the solvers — store slots, supergraph node indices,
/// WTO element indices, interprocedural instances — is given a 64-bit
/// *content-derived key* built from routine fingerprints
/// (frontend/Fingerprint.h):
///
///   var key       = H(owner routine fingerprint, index in owner)
///   call-site key = H(caller fingerprint, per-caller call ordinal)
///   instance key  = H(routine fp, lexical-ancestor fp chain,
///                     call-site key, root var keys)
///   node key      = H(instance key, control point)
///   edge key      = H(edge kind, from node key, to node key)
///   element key   = H(sorted member node keys)         (computed by the
///                    persistence layer from a WTO)
///
/// Keys are equal across process runs and across edits that do not
/// change the fingerprints involved, which is what lets the persistent
/// warm-start cache map recorded state into a re-built supergraph and
/// invalidate exactly the parts whose fingerprint set changed
/// (DESIGN.md §8). The ancestor chain in instance keys covers
/// name-binding changes: editing an enclosing routine (e.g. adding a
/// shadowing local) re-keys every instance nested below it even when
/// the nested routine's own text is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_STABLEIDS_H
#define SYNTOX_SEMANTICS_STABLEIDS_H

#include "frontend/Fingerprint.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace syntox {

class ProgramCfg;
class RoutineDecl;
class SuperGraph;
class VarDecl;

class StableIds {
public:
  /// Derives every key for \p G. Runs computeFingerprints() on
  /// \p Program first (idempotent).
  StableIds(const SuperGraph &G, const ProgramCfg &Cfg,
            RoutineDecl *Program);

  /// Content key of supergraph node \p Node.
  uint64_t nodeKey(unsigned Node) const { return NodeKeys[Node]; }
  const std::vector<uint64_t> &nodeKeys() const { return NodeKeys; }

  /// Content key of instance \p Id.
  uint64_t instanceKey(unsigned Id) const { return InstanceKeys[Id]; }

  /// Content key of supergraph edge \p EdgeIdx.
  uint64_t edgeKey(unsigned EdgeIdx) const { return EdgeKeys[EdgeIdx]; }
  const std::vector<uint64_t> &edgeKeys() const { return EdgeKeys; }

  /// Content key of a numbered variable.
  uint64_t varKey(const VarDecl *V) const;

  /// Inverse of varKey over this program's numbered variables; null for
  /// keys minted by a different program version.
  const VarDecl *varForKey(uint64_t Key) const;

  /// Inverse of nodeKey; returns false when the key has no counterpart
  /// in this supergraph.
  bool nodeForKey(uint64_t Key, unsigned &NodeOut) const;

  /// Hash of the whole lowered supergraph (all node keys + edge keys).
  /// Equal hashes mean the analyzed structure is identical, so a cached
  /// run can be replayed wholesale.
  uint64_t supergraphHash() const { return GraphHash; }

  /// Bytes held by the key side tables. Counted once by
  /// SuperGraph::approximateBytes (these tables are shared by every
  /// store snapshot, so charging them per payload would double-count).
  size_t approximateBytes() const;

private:
  std::vector<uint64_t> NodeKeys;
  std::vector<uint64_t> InstanceKeys;
  std::vector<uint64_t> EdgeKeys;
  std::unordered_map<const VarDecl *, uint64_t> VarKeys;
  std::unordered_map<uint64_t, const VarDecl *> VarByKey;
  std::unordered_map<uint64_t, unsigned> NodeByKey;
  uint64_t GraphHash = 0;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_STABLEIDS_H
