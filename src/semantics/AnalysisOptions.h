//===- semantics/AnalysisOptions.h - All analysis knobs ---------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single options struct for the whole analysis stack. It used to be
/// scattered: Analyzer::Options, AbstractDebugger::Options wrapping it,
/// a test-only fluent builder, and ad-hoc flag parsing duplicated across
/// the CLI and every bench. Now there is one struct with chainable
/// setters (so `AnalysisOptions().terminationGoal().backwardRounds(2)`
/// reads like the old builder), consumed identically by Analyzer,
/// AbstractDebugger, AnalysisSession, and the shared CLI parser
/// (core/AnalysisFlags.h).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_ANALYSISOPTIONS_H
#define SYNTOX_SEMANTICS_ANALYSISOPTIONS_H

#include "fixpoint/Solver.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <string>
#include <vector>

namespace syntox {

struct AnalysisOptions {
  /// Chaotic iteration strategy for every phase.
  IterationStrategy Strategy = IterationStrategy::Recursive;
  /// Worker threads for the parallel strategy (0 = one per hardware
  /// thread). Ignored by the serial strategies.
  unsigned NumThreads = 0;
  /// Memoize the per-edge transfer functions across all phases (the
  /// cache is purely memoizing: results are identical either way).
  /// Off by default: interval transfers are about as cheap as the
  /// hash-and-probe bookkeeping, so memoization only pays once the
  /// transfer functions themselves are expensive (richer domains,
  /// costly expression semantics).
  bool UseTransferCache = false;
  /// True once transferCache() (or --cache/--no-cache) pinned the cache
  /// explicitly. When false, the Analyzer auto-enables the cache for
  /// programs whose token unfolding crosses
  /// AdaptiveCacheInstanceThreshold instances — the regime where the
  /// EXPERIMENTS.md E-store measurements show the cache winning
  /// (McCarthy's 11-instance unfolding gains 1.11-1.25x; small loop
  /// chains lose 0.66-0.79x).
  bool TransferCacheSet = false;
  /// Instance count at which the adaptive heuristic turns the transfer
  /// cache on (only when TransferCacheSet is false).
  unsigned AdaptiveCacheInstanceThreshold = 10;
  /// Narrowing passes after each ascending phase.
  unsigned NarrowingPasses = 1;
  /// Rounds of (always, eventually, forward) refinement after the
  /// initial forward analysis (Syntox's default is one).
  unsigned BackwardRounds = 1;
  /// Treat program termination as a goal: seed `eventually true` at the
  /// program exit (the paper's "intermittent assertion true at the
  /// end").
  bool TerminationGoal = false;
  /// Disable backward propagation entirely (forward-only baseline).
  bool UseBackward = true;
  /// Harrison-77 baseline (paper §6.5): compute the *greatest* fixpoint
  /// of the forward system, "which has no semantic justification and
  /// gives poor results". Implies forward-only.
  bool HarrisonGfp = false;
  /// Merge every call site of a routine into one activation class
  /// (§6.4: "it is possible to avoid [the duplication], at the cost of
  /// a loss of precision").
  bool ContextInsensitive = false;
  /// Warm-start the refinement chain: each phase records its iteration
  /// trajectory and the next round replays the WTO components whose
  /// inputs provably did not change (see fixpoint/Solver.h). The replay
  /// is exact, so results are bit-for-bit those of a cold chain; only
  /// the iteration counters differ. On by default — turn off to
  /// reproduce the pre-warm-start cold behavior (--no-warm-start).
  bool WarmStart = true;
  /// Liveness-driven dead-slot pruning (see semantics/Liveness.h):
  /// forward stores are restricted to each node's live-slot mask and
  /// interprocedural copies loop only the accessed keys. Findings and
  /// live-variable states are bitwise those of the unpruned analysis;
  /// dead slots read as top (the UI flags them as pruned). On by
  /// default — --no-prune restores the exhaustive stores.
  bool PruneDeadSlots = true;
  /// Widening thresholds (empty = the standard §6.1 operator).
  std::vector<int64_t> WideningThresholds;
  /// Directory of the persistent warm-start cache (empty = disabled).
  /// When set, the session layer (AnalysisSession / runRequest) loads
  /// matching chain-slot memos before solving and saves the recorded
  /// ones after a full run (see persist/WarmCache.h).
  std::string CacheDir;
  /// Optional trace/metrics sinks (borrowed; owned by the session or
  /// the caller). Null members disable that half of the telemetry.
  Telemetry Telem;

  /// Hash of every knob that changes the *values* the solver computes
  /// (as opposed to how fast it computes them). Two runs with equal
  /// solverSemanticsHash() and equal programs produce bitwise-identical
  /// stores, so warm-start state may flow between them.
  uint64_t solverSemanticsHash() const {
    uint64_t H = 0xcbf29ce484222325ull;
    auto Mix = [&H](uint64_t V) {
      H ^= V + 0x9e3779b97f4a7c15ull + (H << 12) + (H >> 3);
      H *= 0x100000001b3ull;
    };
    Mix(NarrowingPasses);
    Mix(WideningThresholds.size());
    for (int64_t T : WideningThresholds)
      Mix(static_cast<uint64_t>(T));
    Mix(HarrisonGfp);
    Mix(ContextInsensitive);
    Mix(TerminationGoal);
    Mix(UseBackward);
    // Pruning preserves findings and live-variable states bitwise, but
    // the stored *stores* differ on dead slots, so warm-start state must
    // not flow between pruned and unpruned runs.
    Mix(PruneDeadSlots);
    return H;
  }

  /// Semantics hash plus the knobs that change the *shape* of the
  /// recorded warm-start state (iteration strategy, chain length).
  /// This keys the on-disk cache file: state recorded under a different
  /// options hash is never even loaded.
  uint64_t optionsHash() const {
    uint64_t H = solverSemanticsHash();
    auto Mix = [&H](uint64_t V) {
      H ^= V + 0x9e3779b97f4a7c15ull + (H << 12) + (H >> 3);
      H *= 0x100000001b3ull;
    };
    Mix(static_cast<uint64_t>(Strategy));
    Mix(BackwardRounds);
    return H;
  }

  /// \name Chainable setters
  /// @{
  AnalysisOptions &strategy(IterationStrategy S) {
    Strategy = S;
    return *this;
  }
  AnalysisOptions &threads(unsigned N) {
    NumThreads = N;
    return *this;
  }
  AnalysisOptions &transferCache(bool On) {
    UseTransferCache = On;
    TransferCacheSet = true;
    return *this;
  }
  AnalysisOptions &adaptiveCacheThreshold(unsigned N) {
    AdaptiveCacheInstanceThreshold = N;
    return *this;
  }
  AnalysisOptions &cacheDir(std::string Dir) {
    CacheDir = std::move(Dir);
    return *this;
  }
  AnalysisOptions &narrowingPasses(unsigned N) {
    NarrowingPasses = N;
    return *this;
  }
  AnalysisOptions &backwardRounds(unsigned N) {
    BackwardRounds = N;
    return *this;
  }
  AnalysisOptions &terminationGoal(bool On = true) {
    TerminationGoal = On;
    return *this;
  }
  AnalysisOptions &backward(bool On) {
    UseBackward = On;
    return *this;
  }
  AnalysisOptions &harrisonGfp(bool On = true) {
    HarrisonGfp = On;
    return *this;
  }
  AnalysisOptions &contextInsensitive(bool On = true) {
    ContextInsensitive = On;
    return *this;
  }
  AnalysisOptions &warmStart(bool On) {
    WarmStart = On;
    return *this;
  }
  AnalysisOptions &prune(bool On) {
    PruneDeadSlots = On;
    return *this;
  }
  AnalysisOptions &wideningThresholds(std::vector<int64_t> T) {
    WideningThresholds = std::move(T);
    return *this;
  }
  AnalysisOptions &telemetry(Telemetry T) {
    Telem = T;
    return *this;
  }
  /// @}
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_ANALYSISOPTIONS_H
