//===- semantics/AbstractStore.cpp - Abstract memory states ---------------===//

#include "semantics/AbstractStore.h"

using namespace syntox;

AbsValue StoreOps::topFor(const VarDecl *V) const {
  const Type *Ty = V->type();
  if (Ty->isBoolean())
    return AbsValue(BoolLattice::top());
  return AbsValue(D.top());
}

Interval StoreOps::typeRange(const VarDecl *V) const {
  const Type *Ty = V->type();
  if (const auto *Arr = dyn_cast<ArrayType>(Ty))
    Ty = Arr->elementType();
  if (const auto *Sub = dyn_cast<SubrangeType>(Ty))
    return D.make(Sub->lo(), Sub->hi());
  return D.top();
}

AbsValue StoreOps::get(const AbstractStore &S, const VarDecl *V) const {
  if (S.isBottom()) {
    if (V->type()->isBoolean())
      return AbsValue(BoolLattice::bottom());
    return AbsValue(Interval::bottom());
  }
  auto It = S.Values.find(V);
  if (It != S.Values.end())
    return It->second;
  return topFor(V);
}

AbsValue StoreOps::joinValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "joining mismatched kinds");
  if (A.isInt())
    return AbsValue(D.join(A.asInt(), B.asInt()));
  return AbsValue(A.asBool().join(B.asBool()));
}

AbsValue StoreOps::meetValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "meeting mismatched kinds");
  if (A.isInt())
    return AbsValue(D.meet(A.asInt(), B.asInt()));
  return AbsValue(A.asBool().meet(B.asBool()));
}

bool StoreOps::leqValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "comparing mismatched kinds");
  if (A.isInt())
    return D.leq(A.asInt(), B.asInt());
  return A.asBool().leq(B.asBool());
}

bool StoreOps::leq(const AbstractStore &A, const AbstractStore &B) const {
  if (A.isBottom())
    return true;
  if (B.isBottom())
    return false;
  // A <= B iff every constraint of B is implied by A. Keys absent in A
  // are top, which is only below B's entry if that entry is top too.
  for (const auto &[V, BV] : B.Values) {
    auto It = A.Values.find(V);
    if (It == A.Values.end()) {
      if (!leqValues(topFor(V), BV))
        return false;
    } else if (!leqValues(It->second, BV)) {
      return false;
    }
  }
  return true;
}

bool StoreOps::equal(const AbstractStore &A, const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return A.isBottom() == B.isBottom();
  // Synchronized walk over both ordered maps (missing key = top): one
  // O(n) pass instead of two leq() passes of per-entry lookups. This is
  // the hot comparison of the fixpoint loop and the transfer cache.
  auto EqValues = [&](const AbsValue &X, const AbsValue &Y) {
    return leqValues(X, Y) && leqValues(Y, X);
  };
  auto ItA = A.Values.begin(), EndA = A.Values.end();
  auto ItB = B.Values.begin(), EndB = B.Values.end();
  auto KeyLess = A.Values.key_comp();
  while (ItA != EndA || ItB != EndB) {
    if (ItB == EndB || (ItA != EndA && KeyLess(ItA->first, ItB->first))) {
      if (!EqValues(ItA->second, topFor(ItA->first)))
        return false;
      ++ItA;
    } else if (ItA == EndA || KeyLess(ItB->first, ItA->first)) {
      if (!EqValues(ItB->second, topFor(ItB->first)))
        return false;
      ++ItB;
    } else {
      // Identical representations are equal without lattice dispatch;
      // distinct ones get the full semantic comparison.
      if (!(ItA->second == ItB->second) &&
          !EqValues(ItA->second, ItB->second))
        return false;
      ++ItA;
      ++ItB;
    }
  }
  return true;
}

uint64_t StoreOps::hash(const AbstractStore &S) const {
  uint64_t Cached = S.CachedHash.load(std::memory_order_relaxed);
  if (Cached)
    return Cached;
  uint64_t H = 0x13198a2e03707344ull;
  if (S.isBottom()) {
    H = 0x452821e638d01377ull;
  } else {
    // std::map iterates in pointer order, so the fold is deterministic
    // within one run (cache keys never cross runs).
    for (const auto &[V, Value] : S.entries()) {
      if (leqValues(topFor(V), Value))
        continue; // explicit top entry == missing key
      H = hashCombine(H, reinterpret_cast<uintptr_t>(V));
      if (Value.isInt()) {
        H = hashCombine(H, hashValue(Value.asInt()));
      } else {
        H = hashCombine(H, 0xa4093822299f31d0ull);
        H = hashCombine(H, static_cast<uint64_t>(Value.asBool().kind()));
      }
    }
  }
  if (H == 0)
    H = 0x3f84d5b5b5470917ull; // 0 is the "not yet computed" sentinel
  S.CachedHash.store(H, std::memory_order_relaxed);
  return H;
}

AbstractStore StoreOps::join(const AbstractStore &A,
                             const AbstractStore &B) const {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  AbstractStore Out;
  // Only keys constrained in *both* stores stay constrained.
  for (const auto &[V, AV] : A.Values) {
    auto It = B.Values.find(V);
    if (It == B.Values.end())
      continue;
    AbsValue Joined = joinValues(AV, It->second);
    if (!leqValues(topFor(V), Joined)) // skip entries that became top
      Out.Values.emplace(V, std::move(Joined));
  }
  return Out;
}

AbstractStore StoreOps::meet(const AbstractStore &A,
                             const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return AbstractStore::bottom();
  AbstractStore Out = A;
  for (const auto &[V, BV] : B.Values) {
    auto It = Out.Values.find(V);
    AbsValue Met = It == Out.Values.end() ? BV : meetValues(It->second, BV);
    if (Met.isBottom())
      return AbstractStore::bottom();
    Out.Values[V] = std::move(Met);
  }
  Out.invalidateHash(); // Values was edited directly, not through set()
  return Out;
}

AbstractStore StoreOps::widen(const AbstractStore &A,
                              const AbstractStore &B) const {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  AbstractStore Out;
  for (const auto &[V, AV] : A.Values) {
    auto It = B.Values.find(V);
    if (It == B.Values.end())
      continue; // unstable towards top: drop the constraint
    if (AV.isInt()) {
      Interval W =
          WideningThresholds.empty()
              ? D.widen(AV.asInt(), It->second.asInt())
              : D.widenWithThresholds(AV.asInt(), It->second.asInt(),
                                      WideningThresholds);
      if (!D.leq(D.top(), W))
        Out.Values.emplace(V, AbsValue(W));
    } else {
      BoolLattice W = AV.asBool().join(It->second.asBool());
      if (!W.isTop())
        Out.Values.emplace(V, AbsValue(W));
    }
  }
  return Out;
}

AbstractStore StoreOps::narrow(const AbstractStore &A,
                               const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return AbstractStore::bottom();
  AbstractStore Out;
  // Keys of A are narrowed; keys only in B refine omega bounds of the
  // implicit top entry of A, which narrowing replaces entirely.
  for (const auto &[V, AV] : A.Values) {
    auto It = B.Values.find(V);
    if (It == B.Values.end()) {
      // B's entry is top: x A T = x (keeps soundness and termination).
      Out.Values.emplace(V, AV);
      continue;
    }
    AbsValue BV = It->second;
    if (AV.isInt()) {
      Interval N = D.narrow(AV.asInt(), BV.asInt());
      if (N.isBottom())
        return AbstractStore::bottom();
      Out.Values.emplace(V, AbsValue(N));
    } else {
      // Boolean lattice is finite: meet acts as a narrowing.
      BoolLattice N = AV.asBool().meet(BV.asBool());
      if (N.isBottom())
        return AbstractStore::bottom();
      Out.Values.emplace(V, AbsValue(N));
    }
  }
  for (const auto &[V, BV] : B.Values) {
    if (Out.Values.count(V) || A.Values.count(V))
      continue;
    // A's entry is top: both bounds at omega, so narrowing takes B's.
    if (BV.isBottom())
      return AbstractStore::bottom();
    Out.Values.emplace(V, BV);
  }
  return Out;
}

void StoreOps::assign(AbstractStore &S, const VarDecl *V,
                      const AbsValue &Value) const {
  if (S.isBottom())
    return;
  if (Value.isBottom()) {
    S.setBottom();
    return;
  }
  if (leqValues(topFor(V), Value))
    S.forget(V);
  else
    S.set(V, Value);
}

void StoreOps::refine(AbstractStore &S, const VarDecl *V,
                      const AbsValue &Value) const {
  if (S.isBottom())
    return;
  AbsValue Met = meetValues(get(S, V), Value);
  if (Met.isBottom()) {
    S.setBottom();
    return;
  }
  assign(S, V, Met);
}

std::string StoreOps::str(const AbstractStore &S) const {
  if (S.isBottom())
    return "_|_";
  if (S.isTop())
    return "{ }";
  std::string Out = "{ ";
  bool First = true;
  for (const auto &[V, Value] : S.entries()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += V->name();
    Out += " -> ";
    Out += Value.isInt() ? D.str(Value.asInt()) : Value.asBool().str();
  }
  Out += " }";
  return Out;
}
