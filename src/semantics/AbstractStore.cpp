//===- semantics/AbstractStore.cpp - Abstract memory states ---------------===//
//
// The lattice operations here are whole-vector kernels over the
// structure-of-arrays payload: each walks the 64-slot presence bitmap
// words (skipping absent words wholesale) and runs a branch-light body
// over the raw Lo/Hi rows. Boolean lanes are pseudo-intervals over
// {0, 1} (see AbstractStore.h), so the same min/max/compare formulas
// serve both kinds once a lane's domain bounds are selected per slot —
// the single exception is narrowing, where the boolean operator is the
// lattice *meet* (max-lo/min-hi), not the omega-bound formula.
//
// Every kernel must reproduce the scalar per-entry semantics bit for
// bit (store_soa_test runs a fuzzed differential against a scalar
// reference), including non-canonical bottom rows (Lo > Hi) that
// set() may have stored verbatim.
//
//===----------------------------------------------------------------------===//

#include "semantics/AbstractStore.h"

using namespace syntox;
using detail::StorePayload;

AbsValue StoreOps::topFor(const VarDecl *V) const {
  const Type *Ty = V->type();
  if (Ty->isBoolean())
    return AbsValue(BoolLattice::top());
  return AbsValue(D.top());
}

Interval StoreOps::typeRange(const VarDecl *V) const {
  const Type *Ty = V->type();
  if (const auto *Arr = dyn_cast<ArrayType>(Ty))
    Ty = Arr->elementType();
  if (const auto *Sub = dyn_cast<SubrangeType>(Ty))
    return D.make(Sub->lo(), Sub->hi());
  return D.top();
}

AbsValue StoreOps::get(const AbstractStore &S, const VarDecl *V) const {
  if (S.isBottom()) {
    if (V->type()->isBoolean())
      return AbsValue(BoolLattice::bottom());
    return AbsValue(Interval::bottom());
  }
  unsigned Slot = V->storeSlot();
  if (S.P && S.P->present(Slot))
    return S.P->value(Slot);
  return topFor(V);
}

AbsValue StoreOps::joinValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "joining mismatched kinds");
  if (A.isInt())
    return AbsValue(D.join(A.asInt(), B.asInt()));
  return AbsValue(A.asBool().join(B.asBool()));
}

AbsValue StoreOps::meetValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "meeting mismatched kinds");
  if (A.isInt())
    return AbsValue(D.meet(A.asInt(), B.asInt()));
  return AbsValue(A.asBool().meet(B.asBool()));
}

bool StoreOps::leqValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "comparing mismatched kinds");
  if (A.isInt())
    return D.leq(A.asInt(), B.asInt());
  return A.asBool().leq(B.asBool());
}

AbsValue StoreOps::widenValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "widening mismatched kinds");
  if (A.isInt()) {
    const Interval &X = A.asInt(), &Y = B.asInt();
    return AbsValue(WideningThresholds.empty()
                        ? D.widen(X, Y)
                        : D.widenWithThresholds(X, Y, WideningThresholds));
  }
  // Boolean lattice is finite: join acts as a widening.
  return AbsValue(A.asBool().join(B.asBool()));
}

//===----------------------------------------------------------------------===//
// Kernel helpers
//===----------------------------------------------------------------------===//

namespace {

/// Raw row view of a payload word: base slot plus the four bitmap words
/// a kernel body needs. WordsOf is the payload's word count.
inline size_t wordsOf(const StorePayload *P) {
  return P ? P->Bits.size() : 0;
}

/// Per-slot lane bounds: (0, 1) for boolean lanes, (w-, w+) otherwise.
struct Lane {
  int64_t KMin, KMax;
};
inline Lane laneOf(uint64_t BoolWord, unsigned Bit, int64_t MinV,
                   int64_t MaxV) {
  bool IsBool = (BoolWord >> Bit) & 1;
  return {IsBool ? 0 : MinV, IsBool ? 1 : MaxV};
}

/// Top test on raw rows: a non-empty row spanning the whole lane.
inline bool rowIsTop(int64_t Lo, int64_t Hi, const Lane &L) {
  return Lo <= Hi && Lo <= L.KMin && Hi >= L.KMax;
}

/// EqValues on raw rows (the scalar AbsValue/Interval operator==): all
/// bottom representations compare equal, otherwise the bounds must
/// match exactly.
inline bool rowsEqual(int64_t ALo, int64_t AHi, int64_t BLo, int64_t BHi) {
  bool ABot = ALo > AHi, BBot = BLo > BHi;
  if (ABot || BBot)
    return ABot && BBot;
  return ALo == BLo && AHi == BHi;
}

/// leqValues on raw rows; valid for both lanes (the boolean encoding
/// makes interval inclusion coincide with the flat-lattice order).
inline bool rowLeq(int64_t ALo, int64_t AHi, int64_t BLo, int64_t BHi) {
  bool ABot = ALo > AHi, BBot = BLo > BHi;
  return ABot || (!BBot && BLo <= ALo && AHi <= BHi);
}

} // namespace

//===----------------------------------------------------------------------===//
// Comparison kernels
//===----------------------------------------------------------------------===//

bool StoreOps::leq(const AbstractStore &A, const AbstractStore &B) const {
  if (A.isBottom())
    return true;
  if (B.isBottom())
    return false;
  // Identical payloads are equal, and leq is reflexive.
  if (A.samePayload(B))
    return true;
  if (!B.P)
    return true; // B is top
  // A <= B iff every constraint of B is implied by A. Slots absent in A
  // are top, which is only below B's entry if that entry is top too.
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  const int64_t MinV = D.minValue(), MaxV = D.maxValue();
  const size_t WA = wordsOf(PA), WB = wordsOf(PB);
  uint64_t Blocks = 0;
  for (size_t W = 0; W < WB; ++W) {
    uint64_t MB = PB->Bits[W];
    if (!MB)
      continue;
    ++Blocks;
    uint64_t MA = W < WA ? PA->Bits[W] : 0;
    uint64_t BoolW = PB->BoolBits[W];
    size_t Base = W * 64;
    while (MB) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(MB));
      MB &= MB - 1;
      size_t S = Base + Bit;
      int64_t BLo = PB->Lo[S], BHi = PB->Hi[S];
      Lane L = laneOf(BoolW, Bit, MinV, MaxV);
      if (rowIsTop(BLo, BHi, L))
        continue; // top BV constrains nothing
      if (!((MA >> Bit) & 1)) {
        KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
        return false; // top !<= a real constraint
      }
      if (!rowLeq(PA->Lo[S], PA->Hi[S], BLo, BHi)) {
        KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
        return false;
      }
    }
  }
  KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
  return true;
}

bool StoreOps::equal(const AbstractStore &A, const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return A.isBottom() == B.isBottom();
  // Pointer-stable convergence fast path: the delta-aware ops return
  // their input payload when nothing changed, so the solver's equality
  // checks usually resolve right here.
  if (A.samePayload(B))
    return true;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  // Memoized-hash short-circuit: differing computed hashes mean the
  // stores differ (hash is consistent with equal); do not force a
  // computation just for this.
  if (PA && PB) {
    uint64_t HA = PA->CachedHash.load(std::memory_order_relaxed);
    uint64_t HB = PB->CachedHash.load(std::memory_order_relaxed);
    if (HA && HB && HA != HB)
      return false;
  }
  // Synchronized walk over the union of present slots (missing slot =
  // top; explicit top entries match missing ones).
  const int64_t MinV = D.minValue(), MaxV = D.maxValue();
  const size_t WA = wordsOf(PA), WB = wordsOf(PB);
  uint64_t Blocks = 0;
  bool Eq = true;
  for (size_t W = 0; Eq && W < std::max(WA, WB); ++W) {
    uint64_t MA = W < WA ? PA->Bits[W] : 0;
    uint64_t MB = W < WB ? PB->Bits[W] : 0;
    uint64_t Union = MA | MB;
    if (!Union)
      continue;
    ++Blocks;
    size_t Base = W * 64;
    uint64_t Common = MA & MB;
    if (Common == ~0ull) {
      // Dense word (the dominant shape once a sweep has populated the
      // store): a pure xor/or reduction the compiler vectorizes. Equal
      // raw bits mean equal rows; differing bits *almost* always mean a
      // real difference — the only exception is two bottom rows with
      // different representations, and a non-bottom payload never holds
      // a bottom row (any bottom entry collapses the whole store), so
      // the slow per-slot walk below runs only on genuine mismatches.
      uint64_t Diff = 0;
      for (unsigned I = 0; I < 64; ++I) {
        size_t S = Base + I;
        Diff |= uint64_t(PA->Lo[S] ^ PB->Lo[S]) |
                uint64_t(PA->Hi[S] ^ PB->Hi[S]);
      }
      if (!Diff)
        continue;
    }
    while (Union) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Union));
      Union &= Union - 1;
      size_t S = Base + Bit;
      bool InA = (MA >> Bit) & 1, InB = (MB >> Bit) & 1;
      if (InA && InB) {
        if (!rowsEqual(PA->Lo[S], PA->Hi[S], PB->Lo[S], PB->Hi[S])) {
          Eq = false;
          break;
        }
      } else {
        const StorePayload *PX = InA ? PA : PB;
        Lane L = laneOf(PX->BoolBits[W], Bit, MinV, MaxV);
        if (!rowIsTop(PX->Lo[S], PX->Hi[S], L)) {
          Eq = false;
          break;
        }
      }
    }
  }
  KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
  return Eq;
}

uint64_t StoreOps::hash(const AbstractStore &S) const {
  if (S.isBottom())
    return 0x452821e638d01377ull;
  if (!S.P || S.P->NumPresent == 0)
    return 0x13198a2e03707344ull; // the top store
  uint64_t Cached = S.P->CachedHash.load(std::memory_order_relaxed);
  if (Cached)
    return Cached;
  const StorePayload *P = S.P.get();
  const int64_t MinV = D.minValue(), MaxV = D.maxValue();
  uint64_t H = 0x13198a2e03707344ull;
  uint64_t Blocks = 0;
  // Slot order is deterministic across runs (per-routine declaration
  // order), unlike the pointer order of the old map representation.
  for (size_t W = 0; W < P->Bits.size(); ++W) {
    uint64_t Mask = P->Bits[W];
    if (!Mask)
      continue;
    ++Blocks;
    uint64_t BoolW = P->BoolBits[W];
    size_t Base = W * 64;
    while (Mask) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Mask));
      Mask &= Mask - 1;
      size_t Slot = Base + Bit;
      int64_t Lo = P->Lo[Slot], Hi = P->Hi[Slot];
      bool IsBool = (BoolW >> Bit) & 1;
      Lane L{IsBool ? 0 : MinV, IsBool ? 1 : MaxV};
      if (rowIsTop(Lo, Hi, L))
        continue; // explicit top entry == missing slot
      H = hashCombine(H, static_cast<uint64_t>(Slot));
      if (!IsBool) {
        H = hashCombine(H, hashValue(Interval(Lo, Hi)));
      } else {
        // BoolLattice::kind(): Bottom=0, False=1, True=2, Top=3,
        // recovered from the pseudo-interval rows.
        uint64_t Kind = Lo > Hi ? 0
                                : static_cast<uint64_t>(1 + Lo +
                                                        2 * (Hi - Lo));
        H = hashCombine(H, 0xa4093822299f31d0ull);
        H = hashCombine(H, Kind);
      }
    }
  }
  if (H == 0)
    H = 0x3f84d5b5b5470917ull; // 0 is the "not yet computed" sentinel
  S.P->CachedHash.store(H, std::memory_order_relaxed);
  KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
  return H;
}

//===----------------------------------------------------------------------===//
// Lattice kernels
//===----------------------------------------------------------------------===//

AbstractStore StoreOps::join(const AbstractStore &A,
                             const AbstractStore &B) const {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  if (A.samePayload(B) || A.isTop())
    return A;
  if (B.isTop())
    return B;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  const int64_t MinV = D.minValue(), MaxV = D.maxValue();
  const size_t WA = wordsOf(PA), WB = wordsOf(PB);
  uint64_t Blocks = 0;
  // Delta pass 1: result == A when every real constraint of A absorbs
  // B's value (B present and below). Explicit top entries of A never
  // constrain anything, so they cannot break equality. No allocation.
  bool EqA = true;
  for (size_t W = 0; EqA && W < WA; ++W) {
    uint64_t MA = PA->Bits[W];
    if (!MA)
      continue;
    ++Blocks;
    uint64_t MB = W < WB ? PB->Bits[W] : 0;
    uint64_t BoolW = PA->BoolBits[W];
    size_t Base = W * 64;
    while (MA) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(MA));
      MA &= MA - 1;
      size_t S = Base + Bit;
      int64_t ALo = PA->Lo[S], AHi = PA->Hi[S];
      if (rowIsTop(ALo, AHi, laneOf(BoolW, Bit, MinV, MaxV)))
        continue;
      if (!((MB >> Bit) & 1) ||
          !rowLeq(PB->Lo[S], PB->Hi[S], ALo, AHi)) {
        EqA = false;
        break;
      }
    }
  }
  if (EqA) {
    KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
    return A;
  }
  // Delta pass 2: symmetric check for result == B (the growing phase of
  // an ascending iteration usually lands here).
  bool EqB = true;
  for (size_t W = 0; EqB && W < WB; ++W) {
    uint64_t MB = PB->Bits[W];
    if (!MB)
      continue;
    ++Blocks;
    uint64_t MA = W < WA ? PA->Bits[W] : 0;
    uint64_t BoolW = PB->BoolBits[W];
    size_t Base = W * 64;
    while (MB) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(MB));
      MB &= MB - 1;
      size_t S = Base + Bit;
      int64_t BLo = PB->Lo[S], BHi = PB->Hi[S];
      if (rowIsTop(BLo, BHi, laneOf(BoolW, Bit, MinV, MaxV)))
        continue;
      if (!((MA >> Bit) & 1) ||
          !rowLeq(PA->Lo[S], PA->Hi[S], BLo, BHi)) {
        EqB = false;
        break;
      }
    }
  }
  if (EqB) {
    KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
    return B;
  }
  // General case: only slots constrained in *both* stores stay
  // constrained. The output rows are written straight from the input
  // rows — no per-entry growth checks, no AbsValue materialization.
  AbstractStore Out;
  Out.P = std::make_shared<StorePayload>();
  StorePayload &PO = *Out.P;
  const size_t Cap = std::min(PA->capacity(), PB->capacity());
  const size_t Words = (Cap + 63) / 64;
  PO.Lo.resize(Cap);
  PO.Hi.resize(Cap);
  PO.Bits.assign(Words, 0);
  PO.BoolBits.assign(PA->BoolBits.begin(), PA->BoolBits.begin() + Words);
  PO.Keys = PA->Keys;
  uint32_t Num = 0;
  for (size_t W = 0; W < Words; ++W) {
    uint64_t Common = PA->Bits[W] & PB->Bits[W];
    if (!Common)
      continue;
    ++Blocks;
    uint64_t BoolW = PO.BoolBits[W];
    size_t Base = W * 64;
    uint64_t OutBits = 0;
    uint64_t M = Common;
    while (M) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
      M &= M - 1;
      size_t S = Base + Bit;
      int64_t ALo = PA->Lo[S], AHi = PA->Hi[S];
      int64_t BLo = PB->Lo[S], BHi = PB->Hi[S];
      bool ABot = ALo > AHi, BBot = BLo > BHi;
      int64_t JLo = ABot ? BLo : (BBot ? ALo : std::min(ALo, BLo));
      int64_t JHi = ABot ? BHi : (BBot ? AHi : std::max(AHi, BHi));
      Lane L = laneOf(BoolW, Bit, MinV, MaxV);
      if (rowIsTop(JLo, JHi, L))
        continue; // skip entries that became top
      PO.Lo[S] = JLo;
      PO.Hi[S] = JHi;
      OutBits |= uint64_t(1) << Bit;
    }
    PO.Bits[W] = OutBits;
    Num += static_cast<uint32_t>(__builtin_popcountll(OutBits));
  }
  PO.NumPresent = Num;
  KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
  return Out;
}

AbstractStore StoreOps::meet(const AbstractStore &A,
                             const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return AbstractStore::bottom();
  if (A.samePayload(B) || B.isTop())
    return A;
  if (A.isTop())
    return B;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  const int64_t MinV = D.minValue(), MaxV = D.maxValue();
  const size_t WA = wordsOf(PA), WB = wordsOf(PB);
  uint64_t Blocks = 0;
  // Delta pass: result == A when every constraint of B is already
  // implied by A (the common case once the solver iterates inside a
  // previously computed envelope).
  bool EqA = true;
  for (size_t W = 0; EqA && W < WB; ++W) {
    uint64_t MB = PB->Bits[W];
    if (!MB)
      continue;
    ++Blocks;
    uint64_t MA = W < WA ? PA->Bits[W] : 0;
    uint64_t BoolW = PB->BoolBits[W];
    size_t Base = W * 64;
    while (MB) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(MB));
      MB &= MB - 1;
      size_t S = Base + Bit;
      int64_t BLo = PB->Lo[S], BHi = PB->Hi[S];
      if (rowIsTop(BLo, BHi, laneOf(BoolW, Bit, MinV, MaxV)))
        continue;
      if (!((MA >> Bit) & 1) ||
          !rowLeq(PA->Lo[S], PA->Hi[S], BLo, BHi)) {
        EqA = false;
        break;
      }
    }
  }
  if (EqA) {
    KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
    return A;
  }
  // General case: clone A's payload and fold every non-top constraint
  // of B into it (meet = max-lo/min-hi on both lanes; an absent A slot
  // adopts B's value).
  AbstractStore Out;
  Out.P = std::make_shared<StorePayload>(*PA);
  StorePayload &PO = *Out.P;
  for (size_t W = 0; W < WB; ++W) {
    uint64_t MB = PB->Bits[W];
    if (!MB)
      continue;
    ++Blocks;
    uint64_t BoolW = PB->BoolBits[W];
    size_t Base = W * 64;
    while (MB) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(MB));
      MB &= MB - 1;
      size_t S = Base + Bit;
      int64_t BLo = PB->Lo[S], BHi = PB->Hi[S];
      bool IsBool = (BoolW >> Bit) & 1;
      Lane L{IsBool ? 0 : MinV, IsBool ? 1 : MaxV};
      if (rowIsTop(BLo, BHi, L))
        continue;
      int64_t MLo = BLo, MHi = BHi;
      if (PO.present(static_cast<unsigned>(S))) {
        int64_t ALo = PO.Lo[S], AHi = PO.Hi[S];
        // meetValues: any bottom operand (or empty overlap) -> bottom.
        bool ABot = ALo > AHi, BBot = BLo > BHi;
        if (ABot || BBot) {
          MLo = 1;
          MHi = 0;
        } else {
          MLo = std::max(ALo, BLo);
          MHi = std::min(AHi, BHi);
        }
      }
      if (MLo > MHi) {
        KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
        return AbstractStore::bottom();
      }
      PO.ensureCapacity(static_cast<unsigned>(S));
      PO.noteKey(static_cast<unsigned>(S), PB->key(static_cast<unsigned>(S)));
      PO.putRaw(static_cast<unsigned>(S), MLo, MHi, IsBool);
    }
  }
  PO.CachedHash.store(0, std::memory_order_relaxed);
  KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
  return Out;
}

AbstractStore StoreOps::widen(const AbstractStore &A,
                              const AbstractStore &B) const {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  if (A.samePayload(B) || A.isTop())
    return A;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  const int64_t MinV = D.minValue(), MaxV = D.maxValue();
  const size_t WA = wordsOf(PA), WB = wordsOf(PB);
  const bool Thresholded = !WideningThresholds.empty();
  uint64_t Blocks = 0;
  // Delta pass: widening is stable (result == A) when every constraint
  // of A already bounds B's value — both the standard and the threshold
  // operator keep stable bounds unchanged.
  bool EqA = true;
  for (size_t W = 0; EqA && W < WA; ++W) {
    uint64_t MA = PA->Bits[W];
    if (!MA)
      continue;
    ++Blocks;
    uint64_t MB = W < WB && PB ? PB->Bits[W] : 0;
    uint64_t BoolW = PA->BoolBits[W];
    size_t Base = W * 64;
    while (MA) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(MA));
      MA &= MA - 1;
      size_t S = Base + Bit;
      int64_t ALo = PA->Lo[S], AHi = PA->Hi[S];
      if (rowIsTop(ALo, AHi, laneOf(BoolW, Bit, MinV, MaxV)))
        continue;
      if (!((MB >> Bit) & 1) ||
          !rowLeq(PB->Lo[S], PB->Hi[S], ALo, AHi)) {
        EqA = false;
        break;
      }
    }
  }
  if (EqA) {
    KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
    return A;
  }
  // General case: slots of A with B present widen bound-wise (unstable
  // bounds jump to the lane's w-/w+; boolean join is exactly that
  // formula over {0, 1}); slots absent in B are unstable towards top
  // and drop.
  AbstractStore Out;
  Out.P = std::make_shared<StorePayload>();
  StorePayload &PO = *Out.P;
  const size_t Cap = std::min(PA->capacity(), PB ? PB->capacity() : 0);
  const size_t Words = (Cap + 63) / 64;
  PO.Lo.resize(Cap);
  PO.Hi.resize(Cap);
  PO.Bits.assign(Words, 0);
  PO.BoolBits.assign(PA->BoolBits.begin(), PA->BoolBits.begin() + Words);
  PO.Keys = PA->Keys;
  uint32_t Num = 0;
  for (size_t W = 0; W < Words; ++W) {
    uint64_t Common = PA->Bits[W] & PB->Bits[W];
    if (!Common)
      continue;
    ++Blocks;
    uint64_t BoolW = PO.BoolBits[W];
    size_t Base = W * 64;
    uint64_t OutBits = 0;
    uint64_t M = Common;
    while (M) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
      M &= M - 1;
      size_t S = Base + Bit;
      int64_t ALo = PA->Lo[S], AHi = PA->Hi[S];
      int64_t BLo = PB->Lo[S], BHi = PB->Hi[S];
      bool IsBool = (BoolW >> Bit) & 1;
      Lane L{IsBool ? 0 : MinV, IsBool ? 1 : MaxV};
      int64_t WLo, WHi;
      if (Thresholded && !IsBool) {
        // Scalar fallback: the threshold operator scans the threshold
        // list per unstable bound — rare enough to stay off the fast
        // path.
        Interval R = D.widenWithThresholds(Interval(ALo, AHi),
                                           Interval(BLo, BHi),
                                           WideningThresholds);
        WLo = R.Lo;
        WHi = R.Hi;
      } else {
        bool ABot = ALo > AHi, BBot = BLo > BHi;
        WLo = ABot ? BLo : (BBot ? ALo : (BLo < ALo ? L.KMin : ALo));
        WHi = ABot ? BHi : (BBot ? AHi : (BHi > AHi ? L.KMax : AHi));
      }
      if (rowIsTop(WLo, WHi, L))
        continue;
      PO.Lo[S] = WLo;
      PO.Hi[S] = WHi;
      OutBits |= uint64_t(1) << Bit;
    }
    PO.Bits[W] = OutBits;
    Num += static_cast<uint32_t>(__builtin_popcountll(OutBits));
  }
  PO.NumPresent = Num;
  KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
  return Out;
}

AbstractStore StoreOps::narrow(const AbstractStore &A,
                               const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return AbstractStore::bottom();
  if (A.samePayload(B))
    return A;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  const int64_t MinV = D.minValue(), MaxV = D.maxValue();
  const size_t WA = wordsOf(PA), WB = wordsOf(PB);
  uint64_t Blocks = 0;

  // NarrowValues on raw rows. Integer lanes use the §6.1 operator (only
  // omega bounds are refined); boolean lanes use the lattice meet,
  // which over the pseudo-interval encoding is max-lo/min-hi. Both
  // yield bottom as Lo > Hi.
  auto NarrowRow = [&](size_t S, bool IsBool, int64_t &NLo, int64_t &NHi) {
    int64_t ALo = PA->Lo[S], AHi = PA->Hi[S];
    int64_t BLo = PB->Lo[S], BHi = PB->Hi[S];
    if (IsBool) {
      // meet: Top is the identity; disagreeing constants empty out.
      bool ATop = ALo == 0 && AHi == 1, BTop = BLo == 0 && BHi == 1;
      NLo = ATop ? BLo : (BTop ? ALo : std::max(ALo, BLo));
      NHi = ATop ? BHi : (BTop ? AHi : std::min(AHi, BHi));
      return;
    }
    if (ALo > AHi || BLo > BHi) { // either bottom -> bottom
      NLo = 1;
      NHi = 0;
      return;
    }
    NLo = ALo == MinV ? BLo : std::min(ALo, BLo);
    NHi = AHi == MaxV ? BHi : std::max(AHi, BHi);
  };

  // Delta pass: result == A when narrowing refines nothing — every slot
  // of A is already past its omega bounds w.r.t. B, and B adds no
  // constraint on slots where A is (implicitly or explicitly) top.
  bool EqA = true;
  for (size_t W = 0; EqA && W < WA; ++W) {
    uint64_t MA = PA->Bits[W];
    if (!MA)
      continue;
    ++Blocks;
    uint64_t MB = W < WB && PB ? PB->Bits[W] : 0;
    uint64_t BoolW = PA->BoolBits[W];
    size_t Base = W * 64;
    uint64_t M = MA & MB;
    while (M) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
      M &= M - 1;
      size_t S = Base + Bit;
      int64_t NLo, NHi;
      NarrowRow(S, (BoolW >> Bit) & 1, NLo, NHi);
      if (!rowsEqual(NLo, NHi, PA->Lo[S], PA->Hi[S])) {
        EqA = false;
        break;
      }
    }
  }
  if (EqA && PB) {
    for (size_t W = 0; EqA && W < WB; ++W) {
      uint64_t MB = PB->Bits[W];
      if (!MB)
        continue;
      ++Blocks;
      uint64_t MA = W < WA && PA ? PA->Bits[W] : 0;
      uint64_t BoolW = PB->BoolBits[W];
      size_t Base = W * 64;
      uint64_t M = MB & ~MA;
      while (M) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
        M &= M - 1;
        size_t S = Base + Bit;
        // A's entry is top: narrowing adopts B's bound, so equality
        // needs that bound to be vacuous.
        if (!rowIsTop(PB->Lo[S], PB->Hi[S],
                      laneOf(BoolW, Bit, MinV, MaxV))) {
          EqA = false;
          break;
        }
      }
    }
  }
  if (EqA) {
    KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
    return A;
  }

  // General case. Slots of A are narrowed (B absent keeps A's row:
  // x /\~ T = x); slots only in B refine omega bounds of the implicit
  // top entry of A, which narrowing replaces entirely. Any bottom row
  // collapses the whole store.
  AbstractStore Out;
  Out.P = std::make_shared<StorePayload>();
  StorePayload &PO = *Out.P;
  const size_t CapA = PA ? PA->capacity() : 0;
  const size_t CapB = PB ? PB->capacity() : 0;
  const size_t Cap = std::max(CapA, CapB);
  const size_t Words = (Cap + 63) / 64;
  PO.Lo.resize(Cap);
  PO.Hi.resize(Cap);
  PO.Bits.assign(Words, 0);
  PO.BoolBits.assign(Words, 0);
  for (size_t W = 0; W < Words; ++W) {
    uint64_t LA = W < WA ? PA->BoolBits[W] : 0;
    uint64_t LB = W < WB ? PB->BoolBits[W] : 0;
    PO.BoolBits[W] = LA | LB;
  }
  PO.Keys = PA ? PA->Keys : nullptr;
  uint32_t Num = 0;
  for (size_t W = 0; W < Words; ++W) {
    uint64_t MA = W < WA ? PA->Bits[W] : 0;
    uint64_t MB = W < WB ? PB->Bits[W] : 0;
    if (!(MA | MB))
      continue;
    ++Blocks;
    uint64_t BoolW = PO.BoolBits[W];
    size_t Base = W * 64;
    uint64_t OutBits = 0;
    uint64_t M = MA | MB;
    while (M) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
      M &= M - 1;
      size_t S = Base + Bit;
      bool InA = (MA >> Bit) & 1, InB = (MB >> Bit) & 1;
      int64_t NLo, NHi;
      if (InA && InB) {
        NarrowRow(S, (BoolW >> Bit) & 1, NLo, NHi);
        if (NLo > NHi) {
          KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
          return AbstractStore::bottom();
        }
      } else if (InA) {
        NLo = PA->Lo[S]; // B's entry is top: x /\~ T = x
        NHi = PA->Hi[S];
      } else {
        NLo = PB->Lo[S]; // A's entry is top: narrowing takes B's bound
        NHi = PB->Hi[S];
        if (NLo > NHi) {
          KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
          return AbstractStore::bottom();
        }
        PO.noteKey(static_cast<unsigned>(S),
                   PB->key(static_cast<unsigned>(S)));
      }
      PO.Lo[S] = NLo;
      PO.Hi[S] = NHi;
      OutBits |= uint64_t(1) << Bit;
    }
    PO.Bits[W] = OutBits;
    Num += static_cast<uint32_t>(__builtin_popcountll(OutBits));
  }
  PO.NumPresent = Num;
  KernelBlocks.fetch_add(Blocks, std::memory_order_relaxed);
  return Out;
}

AbstractStore StoreOps::restrictTo(const AbstractStore &S,
                                   const uint64_t *MaskWords, size_t NumWords,
                                   uint64_t *PrunedSlots) const {
  if (S.isBottom() || !S.P || S.P->NumPresent == 0)
    return S;
  const StorePayload *P = S.P.get();
  const size_t Words = P->Bits.size();
  // Identity probe first: converged sweeps must stay pointer-stable, so
  // a store already inside the live mask is returned payload and all.
  uint64_t Dropped = 0;
  for (size_t W = 0; W < Words; ++W) {
    uint64_t Live = W < NumWords ? MaskWords[W] : 0;
    Dropped += static_cast<uint64_t>(
        __builtin_popcountll(P->Bits[W] & ~Live));
  }
  if (!Dropped)
    return S;
  AbstractStore Out = S;
  Out.detach();
  StorePayload &PO = *Out.P;
  uint32_t Removed = 0;
  for (size_t W = 0; W < Words; ++W) {
    uint64_t Live = W < NumWords ? MaskWords[W] : 0;
    uint64_t Extra = PO.Bits[W] & ~Live;
    if (!Extra)
      continue;
    Removed += static_cast<uint32_t>(__builtin_popcountll(Extra));
    PO.Bits[W] &= Live;
  }
  PO.NumPresent -= Removed;
  PO.CachedHash.store(0, std::memory_order_relaxed);
  if (PrunedSlots)
    *PrunedSlots += Removed;
  return Out;
}

void StoreOps::assign(AbstractStore &S, const VarDecl *V,
                      const AbsValue &Value) const {
  if (S.isBottom())
    return;
  if (Value.isBottom()) {
    S.setBottom();
    return;
  }
  if (leqValues(topFor(V), Value))
    S.forget(V);
  else
    S.set(V, Value);
}

void StoreOps::refine(AbstractStore &S, const VarDecl *V,
                      const AbsValue &Value) const {
  if (S.isBottom())
    return;
  AbsValue Met = meetValues(get(S, V), Value);
  if (Met.isBottom()) {
    S.setBottom();
    return;
  }
  assign(S, V, Met);
}

std::string StoreOps::str(const AbstractStore &S) const {
  if (S.isBottom())
    return "_|_";
  if (S.isTop())
    return "{ }";
  std::string Out = "{ ";
  bool First = true;
  S.forEachEntry([&](const VarDecl *V, const AbsValue &Value) {
    if (!First)
      Out += ", ";
    First = false;
    Out += V->name();
    Out += " -> ";
    Out += Value.isInt() ? D.str(Value.asInt()) : Value.asBool().str();
  });
  Out += " }";
  return Out;
}
