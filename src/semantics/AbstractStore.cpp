//===- semantics/AbstractStore.cpp - Abstract memory states ---------------===//

#include "semantics/AbstractStore.h"

using namespace syntox;
using detail::StorePayload;

AbsValue StoreOps::topFor(const VarDecl *V) const {
  const Type *Ty = V->type();
  if (Ty->isBoolean())
    return AbsValue(BoolLattice::top());
  return AbsValue(D.top());
}

Interval StoreOps::typeRange(const VarDecl *V) const {
  const Type *Ty = V->type();
  if (const auto *Arr = dyn_cast<ArrayType>(Ty))
    Ty = Arr->elementType();
  if (const auto *Sub = dyn_cast<SubrangeType>(Ty))
    return D.make(Sub->lo(), Sub->hi());
  return D.top();
}

AbsValue StoreOps::get(const AbstractStore &S, const VarDecl *V) const {
  if (S.isBottom()) {
    if (V->type()->isBoolean())
      return AbsValue(BoolLattice::bottom());
    return AbsValue(Interval::bottom());
  }
  unsigned Slot = V->storeSlot();
  if (S.P && S.P->present(Slot))
    return S.P->Values[Slot];
  return topFor(V);
}

AbsValue StoreOps::joinValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "joining mismatched kinds");
  if (A.isInt())
    return AbsValue(D.join(A.asInt(), B.asInt()));
  return AbsValue(A.asBool().join(B.asBool()));
}

AbsValue StoreOps::meetValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "meeting mismatched kinds");
  if (A.isInt())
    return AbsValue(D.meet(A.asInt(), B.asInt()));
  return AbsValue(A.asBool().meet(B.asBool()));
}

bool StoreOps::leqValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "comparing mismatched kinds");
  if (A.isInt())
    return D.leq(A.asInt(), B.asInt());
  return A.asBool().leq(B.asBool());
}

AbsValue StoreOps::widenValues(const AbsValue &A, const AbsValue &B) const {
  assert(A.kind() == B.kind() && "widening mismatched kinds");
  if (A.isInt()) {
    const Interval &X = A.asInt(), &Y = B.asInt();
    return AbsValue(WideningThresholds.empty()
                        ? D.widen(X, Y)
                        : D.widenWithThresholds(X, Y, WideningThresholds));
  }
  // Boolean lattice is finite: join acts as a widening.
  return AbsValue(A.asBool().join(B.asBool()));
}

bool StoreOps::leq(const AbstractStore &A, const AbstractStore &B) const {
  if (A.isBottom())
    return true;
  if (B.isBottom())
    return false;
  // Identical payloads are equal, and leq is reflexive.
  if (A.samePayload(B))
    return true;
  if (!B.P)
    return true; // B is top
  // A <= B iff every constraint of B is implied by A. Slots absent in A
  // are top, which is only below B's entry if that entry is top too.
  const StorePayload *PA = A.P.get();
  bool Ok = true;
  B.P->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &BV) {
    if (!Ok || isTopValue(BV))
      return;
    if (PA && PA->present(Slot))
      Ok = leqValues(PA->Values[Slot], BV);
    else
      Ok = false; // top !<= a real constraint
  });
  return Ok;
}

bool StoreOps::equal(const AbstractStore &A, const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return A.isBottom() == B.isBottom();
  // Pointer-stable convergence fast path: the delta-aware ops return
  // their input payload when nothing changed, so the solver's equality
  // checks usually resolve right here.
  if (A.samePayload(B))
    return true;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  // Memoized-hash short-circuit: differing computed hashes mean the
  // stores differ (hash is consistent with equal); do not force a
  // computation just for this.
  if (PA && PB) {
    uint64_t HA = PA->CachedHash.load(std::memory_order_relaxed);
    uint64_t HB = PB->CachedHash.load(std::memory_order_relaxed);
    if (HA && HB && HA != HB)
      return false;
  }
  // Synchronized walk over the union of present slots (missing slot =
  // top; explicit top entries match missing ones).
  auto EqValues = [&](const AbsValue &X, const AbsValue &Y) {
    return X == Y || (leqValues(X, Y) && leqValues(Y, X));
  };
  size_t WordsA = PA ? PA->Bits.size() : 0;
  size_t WordsB = PB ? PB->Bits.size() : 0;
  for (size_t W = 0; W < std::max(WordsA, WordsB); ++W) {
    uint64_t BitsA = W < WordsA ? PA->Bits[W] : 0;
    uint64_t BitsB = W < WordsB ? PB->Bits[W] : 0;
    uint64_t Union = BitsA | BitsB;
    while (Union) {
      unsigned Slot = static_cast<unsigned>(W * 64) + __builtin_ctzll(Union);
      Union &= Union - 1;
      uint64_t Mask = uint64_t(1) << (Slot & 63);
      bool InA = BitsA & Mask, InB = BitsB & Mask;
      if (InA && InB) {
        if (!EqValues(PA->Values[Slot], PB->Values[Slot]))
          return false;
      } else if (InA) {
        if (!isTopValue(PA->Values[Slot]))
          return false;
      } else {
        if (!isTopValue(PB->Values[Slot]))
          return false;
      }
    }
  }
  return true;
}

uint64_t StoreOps::hash(const AbstractStore &S) const {
  if (S.isBottom())
    return 0x452821e638d01377ull;
  if (!S.P || S.P->NumPresent == 0)
    return 0x13198a2e03707344ull; // the top store
  uint64_t Cached = S.P->CachedHash.load(std::memory_order_relaxed);
  if (Cached)
    return Cached;
  uint64_t H = 0x13198a2e03707344ull;
  // Slot order is deterministic across runs (per-routine declaration
  // order), unlike the pointer order of the old map representation.
  S.P->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &Value) {
    if (isTopValue(Value))
      return; // explicit top entry == missing slot
    H = hashCombine(H, Slot);
    if (Value.isInt()) {
      H = hashCombine(H, hashValue(Value.asInt()));
    } else {
      H = hashCombine(H, 0xa4093822299f31d0ull);
      H = hashCombine(H, static_cast<uint64_t>(Value.asBool().kind()));
    }
  });
  if (H == 0)
    H = 0x3f84d5b5b5470917ull; // 0 is the "not yet computed" sentinel
  S.P->CachedHash.store(H, std::memory_order_relaxed);
  return H;
}

AbstractStore StoreOps::join(const AbstractStore &A,
                             const AbstractStore &B) const {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  if (A.samePayload(B) || A.isTop())
    return A;
  if (B.isTop())
    return B;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  // Delta pass 1: result == A when every real constraint of A absorbs
  // B's value (B present and below). Explicit top entries of A never
  // constrain anything, so they cannot break equality. No allocation.
  bool EqA = true;
  PA->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &AV) {
    if (!EqA || isTopValue(AV))
      return;
    EqA = PB->present(Slot) && leqValues(PB->Values[Slot], AV);
  });
  if (EqA)
    return A;
  // Delta pass 2: symmetric check for result == B (the growing phase of
  // an ascending iteration usually lands here).
  bool EqB = true;
  PB->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &BV) {
    if (!EqB || isTopValue(BV))
      return;
    EqB = PA->present(Slot) && leqValues(PA->Values[Slot], BV);
  });
  if (EqB)
    return B;
  // General case: only slots constrained in *both* stores stay
  // constrained.
  AbstractStore Out;
  Out.detach();
  PA->forEach([&](unsigned Slot, const VarDecl *V, const AbsValue &AV) {
    if (!PB->present(Slot))
      return;
    AbsValue Joined = joinValues(AV, PB->Values[Slot]);
    if (!isTopValue(Joined)) // skip entries that became top
      Out.P->put(Slot, V, std::move(Joined));
  });
  return Out;
}

AbstractStore StoreOps::meet(const AbstractStore &A,
                             const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return AbstractStore::bottom();
  if (A.samePayload(B) || B.isTop())
    return A;
  if (A.isTop())
    return B;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();
  // Delta pass: result == A when every constraint of B is already
  // implied by A (the common case once the solver iterates inside a
  // previously computed envelope).
  bool EqA = true;
  PB->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &BV) {
    if (!EqA || isTopValue(BV))
      return;
    EqA = PA->present(Slot) && leqValues(PA->Values[Slot], BV);
  });
  if (EqA)
    return A;
  AbstractStore Out = A; // shared; detach happens on the first write
  bool Bottom = false;
  PB->forEach([&](unsigned Slot, const VarDecl *V, const AbsValue &BV) {
    if (Bottom || isTopValue(BV))
      return;
    AbsValue Met =
        PA->present(Slot) ? meetValues(PA->Values[Slot], BV) : BV;
    if (Met.isBottom()) {
      Bottom = true;
      return;
    }
    Out.set(V, std::move(Met));
  });
  if (Bottom)
    return AbstractStore::bottom();
  return Out;
}

AbstractStore StoreOps::widen(const AbstractStore &A,
                              const AbstractStore &B) const {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  if (A.samePayload(B) || A.isTop())
    return A;
  const StorePayload *PA = A.P.get();
  const StorePayload *PB = B.P.get();
  // Delta pass: widening is stable (result == A) when every constraint
  // of A already bounds B's value — both the standard and the threshold
  // operator keep stable bounds unchanged.
  bool EqA = true;
  PA->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &AV) {
    if (!EqA || isTopValue(AV))
      return;
    EqA = PB && PB->present(Slot) && leqValues(PB->Values[Slot], AV);
  });
  if (EqA)
    return A;
  AbstractStore Out;
  Out.detach();
  PA->forEach([&](unsigned Slot, const VarDecl *V, const AbsValue &AV) {
    if (isTopValue(AV))
      return;
    if (!PB || !PB->present(Slot))
      return; // unstable towards top: drop the constraint
    AbsValue W = widenValues(AV, PB->Values[Slot]);
    if (!isTopValue(W))
      Out.P->put(Slot, V, std::move(W));
  });
  return Out;
}

AbstractStore StoreOps::narrow(const AbstractStore &A,
                               const AbstractStore &B) const {
  if (A.isBottom() || B.isBottom())
    return AbstractStore::bottom();
  if (A.samePayload(B))
    return A;
  const StorePayload *PA = A.P.get(), *PB = B.P.get();

  auto NarrowValues = [&](const AbsValue &AV, const AbsValue &BV) {
    if (AV.isInt())
      return AbsValue(D.narrow(AV.asInt(), BV.asInt()));
    // Boolean lattice is finite: meet acts as a narrowing.
    return AbsValue(AV.asBool().meet(BV.asBool()));
  };

  // Delta pass: result == A when narrowing refines nothing — every slot
  // of A is already past its omega bounds w.r.t. B, and B adds no
  // constraint on slots where A is (implicitly or explicitly) top.
  bool EqA = true;
  if (PA)
    PA->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &AV) {
      if (!EqA)
        return;
      if (!PB || !PB->present(Slot))
        return; // B's entry is top: x /\~ T = x
      EqA = NarrowValues(AV, PB->Values[Slot]) == AV;
    });
  if (EqA && PB)
    PB->forEach([&](unsigned Slot, const VarDecl *, const AbsValue &BV) {
      if (!EqA || (PA && PA->present(Slot)))
        return;
      // A's entry is top: narrowing adopts B's bound, so equality needs
      // that bound to be vacuous.
      EqA = isTopValue(BV);
    });
  if (EqA)
    return A;

  AbstractStore Out;
  Out.detach();
  bool Bottom = false;
  // Slots of A are narrowed; slots only in B refine omega bounds of the
  // implicit top entry of A, which narrowing replaces entirely.
  if (PA)
    PA->forEach([&](unsigned Slot, const VarDecl *V, const AbsValue &AV) {
      if (Bottom)
        return;
      if (!PB || !PB->present(Slot)) {
        // B's entry is top: x /\~ T = x (keeps soundness and
        // termination).
        Out.P->put(Slot, V, AV);
        return;
      }
      AbsValue N = NarrowValues(AV, PB->Values[Slot]);
      if (N.isBottom()) {
        Bottom = true;
        return;
      }
      Out.P->put(Slot, V, std::move(N));
    });
  if (!Bottom && PB)
    PB->forEach([&](unsigned Slot, const VarDecl *V, const AbsValue &BV) {
      if (Bottom || (PA && PA->present(Slot)))
        return;
      // A's entry is top: both bounds at omega, so narrowing takes B's.
      if (BV.isBottom()) {
        Bottom = true;
        return;
      }
      Out.P->put(Slot, V, BV);
    });
  if (Bottom)
    return AbstractStore::bottom();
  return Out;
}

void StoreOps::assign(AbstractStore &S, const VarDecl *V,
                      const AbsValue &Value) const {
  if (S.isBottom())
    return;
  if (Value.isBottom()) {
    S.setBottom();
    return;
  }
  if (leqValues(topFor(V), Value))
    S.forget(V);
  else
    S.set(V, Value);
}

void StoreOps::refine(AbstractStore &S, const VarDecl *V,
                      const AbsValue &Value) const {
  if (S.isBottom())
    return;
  AbsValue Met = meetValues(get(S, V), Value);
  if (Met.isBottom()) {
    S.setBottom();
    return;
  }
  assign(S, V, Met);
}

std::string StoreOps::str(const AbstractStore &S) const {
  if (S.isBottom())
    return "_|_";
  if (S.isTop())
    return "{ }";
  std::string Out = "{ ";
  bool First = true;
  S.forEachEntry([&](const VarDecl *V, const AbsValue &Value) {
    if (!First)
      Out += ", ";
    First = false;
    Out += V->name();
    Out += " -> ";
    Out += Value.isInt() ? D.str(Value.asInt()) : Value.asBool().str();
  });
  Out += " }";
  return Out;
}
