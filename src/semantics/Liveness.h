//===- semantics/Liveness.h - Live-slot masks for store pruning -*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic backward may-use liveness analysis, run once over the whole
/// unfolded supergraph, producing one live-slot bitmask per control
/// point. The Analyzer restricts every forward store to its node's mask
/// (see StoreOps::restrictTo), so dead slots never enter joins, widening
/// sequences, hashes or warm-cache rows.
///
/// Two properties make the restriction *exact* (bitwise-equal findings
/// and live-variable states), not merely sound:
///
///  1. **Gens are unconditional.** Every variable an action *evaluates*
///     is live before the action even when the written target is dead,
///     because evaluation can bottom the whole store (a division by
///     zero's empty quotient, an array store with an unreachable index),
///     and bottomness — i.e. reachability — must be preserved slot-for-
///     slot. With all evaluated slots live, a transfer over a restricted
///     store computes exactly the unrestricted value on live slots.
///
///  2. **Interprocedural edges pass live sets through conservatively.**
///     A call makes every slot the callee (transitively) accesses live
///     at the call point, plus the evaluated actual arguments; slots
///     live after the call are live at the callee exit *and* at the
///     call point (the copy-out reads both sides). Channel edges do the
///     same toward their landing point. Over-approximation here only
///     keeps extra slots alive — it never loses precision, it just
///     prunes less.
///
/// Backward (requirement) phases are *not* restricted: their envelope
/// meet folds the pruned forward values in at every node, and the
/// requirement residue a dead slot carries can only refine live slots
/// vacuously (the HC4 constraints it induces are already implied by the
/// forward values the envelope meets in). The 200-seed pruning
/// differential in tests/semantics/liveness_prune_test.cpp is the
/// empirical referee of this argument.
///
/// The same pass computes, per instance, the subset of its SharedKeys
/// the activation actually accesses (transitively); SuperGraph's
/// copy-in/copy-out loops only those keys, so untouched ancestor
/// variables never enter callee stores at all.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_LIVENESS_H
#define SYNTOX_SEMANTICS_LIVENESS_H

#include "semantics/Interproc.h"

#include <cstdint>
#include <vector>

namespace syntox {

/// Per-node live-slot masks plus per-instance accessed-key sets for the
/// supergraph of one analysis. Immutable once built.
class LivenessInfo {
public:
  LivenessInfo(const SuperGraph &G, const ProgramCfg &Cfg);

  /// Slots of the underlying VarNumbering.
  unsigned numSlots() const { return Slots; }
  /// 64-bit words per node mask.
  unsigned wordsPerNode() const { return Words; }

  /// The live mask of \p Node (wordsPerNode() words; bit s = slot s).
  const uint64_t *maskFor(unsigned Node) const {
    return Masks.data() + size_t(Node) * Words;
  }

  /// True when \p V's slot is live at \p Node. Top-level UI predicate:
  /// dead variables render as "top (pruned)".
  bool isLive(unsigned Node, const VarDecl *V) const;

  /// The SharedKeys subset instance \p InstanceId (transitively)
  /// accesses, in SharedKeys order, always including the token roots.
  const std::vector<const VarDecl *> &accessedShared(unsigned InstanceId) const {
    return Accessed[InstanceId];
  }

  /// Total live bits across all node masks (metrics: store.live_slots).
  uint64_t liveSlotCount() const { return LiveBits; }
  /// Total (node, slot) pairs — the unpruned universe the masks carve.
  uint64_t slotUniverse() const { return SlotUniverse; }

private:
  unsigned Slots = 0;
  unsigned Words = 0;
  std::vector<uint64_t> Masks;
  std::vector<std::vector<const VarDecl *>> Accessed;
  uint64_t LiveBits = 0;
  uint64_t SlotUniverse = 0;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_LIVENESS_H
