//===- semantics/Liveness.cpp - Live-slot masks for store pruning ---------===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "semantics/Liveness.h"

#include <bit>

namespace syntox {

namespace {

/// Collects the store slots an expression evaluates, frame-resolved.
/// Constant-bound references have no slot and are skipped; Call nodes
/// are builtins (action expressions are otherwise call-free) and
/// evaluate inline over their arguments.
void collectVars(const Expr *E, const FrameMap &F,
                 std::vector<const VarDecl *> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::VarRef:
    if (const VarDecl *V = cast<VarRefExpr>(E)->varDecl())
      Out.push_back(F.resolve(V));
    return;
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    collectVars(I->base(), F, Out);
    collectVars(I->index(), F, Out);
    return;
  }
  case Expr::Kind::Call:
    for (const Expr *A : cast<CallExpr>(E)->args())
      collectVars(A, F, Out);
    return;
  case Expr::Kind::Unary:
    collectVars(cast<UnaryExpr>(E)->subExpr(), F, Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectVars(B->lhs(), F, Out);
    collectVars(B->rhs(), F, Out);
    return;
  }
  default:
    return; // literals
  }
}

/// The slots an action's forward transfer *evaluates* — unconditionally
/// live before the action (see the header: evaluation can bottom the
/// store, so even writes into dead targets must see exact operands).
void genVarsOf(const Action &A, const FrameMap &F,
               std::vector<const VarDecl *> &Out) {
  switch (A.K) {
  case Action::Kind::Assign:
    collectVars(A.Value, F, Out);
    return;
  case Action::Kind::ArrayStore:
    Out.push_back(F.resolve(A.Var)); // weak update reads the summary
    collectVars(A.Index, F, Out);
    collectVars(A.Value, F, Out);
    return;
  case Action::Kind::ReadScalar:
    return;
  case Action::Kind::ReadArray:
    Out.push_back(F.resolve(A.Var));
    collectVars(A.Index, F, Out);
    return;
  case Action::Kind::Assume:
  case Action::Kind::Check:
  case Action::Kind::Invariant:
    collectVars(A.Value, F, Out);
    return;
  case Action::Kind::Call:
    // Call edges become CallIn/CallOut superedges; this path is only
    // reached by the accessed-key scan, where the evaluated actual
    // arguments are what the *caller* touches.
    for (const Expr *Arg : A.Call->args())
      collectVars(Arg, F, Out);
    return;
  case Action::Kind::Nop:
    return;
  }
}

/// Slot strongly (destructively) written by the action, or -1. Array
/// stores are weak updates and kill nothing.
int killSlotOf(const Action &A, const FrameMap &F) {
  if (A.K == Action::Kind::Assign || A.K == Action::Kind::ReadScalar)
    return static_cast<int>(F.resolve(A.Var)->storeSlot());
  return -1;
}

} // namespace

LivenessInfo::LivenessInfo(const SuperGraph &G, const ProgramCfg &) {
  Slots = G.varNumbering().numSlots();
  Words = (Slots + 63) / 64;
  const unsigned NumNodes = G.numNodes();
  const auto &Instances = G.instances();
  SlotUniverse = uint64_t(NumNodes) * Slots;
  if (Words == 0 || NumNodes == 0) {
    Accessed.resize(Instances.size());
    return;
  }

  std::vector<const VarDecl *> Tmp;
  auto MarkIn = [&](std::vector<uint64_t> &M, const VarDecl *V) {
    unsigned S = V->storeSlot();
    M[S >> 6] |= 1ull << (S & 63);
  };

  // --- Per-instance accessed slots, closed over the call links -------
  std::vector<std::vector<uint64_t>> Acc(Instances.size(),
                                         std::vector<uint64_t>(Words, 0));
  for (const Instance &I : Instances) {
    auto &M = Acc[I.Id];
    for (const CfgEdge &E : I.Cfg->edges()) {
      Tmp.clear();
      genVarsOf(E.Act, I.Frame, Tmp);
      if (E.Act.K == Action::Kind::Assign ||
          E.Act.K == Action::Kind::ReadScalar)
        Tmp.push_back(I.Frame.resolve(E.Act.Var));
      if (E.Act.ResultVar)
        Tmp.push_back(I.Frame.resolve(E.Act.ResultVar));
      for (const VarDecl *V : Tmp)
        MarkIn(M, V);
    }
    for (const IntermittentAssertion &IA : I.Cfg->intermittents()) {
      Tmp.clear();
      collectVars(IA.Cond, I.Frame, Tmp);
      for (const VarDecl *V : Tmp)
        MarkIn(M, V);
    }
    // Roots are always accessed: copy-in refines them by the formal's
    // declared subrange even when the callee never mentions them.
    for (const VarDecl *R : I.Tok.Roots)
      MarkIn(M, R);
  }
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (const CallLink &L : G.links()) {
      auto &Caller = Acc[L.CallerInstance];
      const auto &Callee = Acc[L.CalleeInstance];
      for (unsigned W = 0; W < Words; ++W)
        if (Callee[W] & ~Caller[W]) {
          Caller[W] |= Callee[W];
          Changed = true;
        }
    }
  }
  Accessed.resize(Instances.size());
  for (const Instance &I : Instances) {
    auto &Keys = Accessed[I.Id];
    for (const VarDecl *K : I.SharedKeys) {
      unsigned S = K->storeSlot();
      if (Acc[I.Id][S >> 6] & (1ull << (S & 63)))
        Keys.push_back(K);
    }
  }

  // --- Per-node live masks -------------------------------------------
  Masks.assign(size_t(NumNodes) * Words, 0);
  auto MaskAt = [&](unsigned N) { return Masks.data() + size_t(N) * Words; };

  // Point gens: an intermittent assertion's condition is evaluated at
  // its control point by the eventually-phase seeds.
  for (const Instance &I : Instances)
    for (const IntermittentAssertion &IA : I.Cfg->intermittents()) {
      Tmp.clear();
      collectVars(IA.Cond, I.Frame, Tmp);
      uint64_t *M = MaskAt(G.node(I, IA.Point));
      for (const VarDecl *V : Tmp) {
        unsigned S = V->storeSlot();
        M[S >> 6] |= 1ull << (S & 63);
      }
    }

  // --- Edge propagation rules, precomputed ---------------------------
  struct EdgeProp {
    unsigned From = 0;
    unsigned To = 0;
    unsigned Extra = ~0u; ///< also propagate live(To) here (NodeP)
    int Kill = -1;
    std::vector<uint64_t> Gen;
  };
  std::vector<EdgeProp> Props;
  Props.reserve(G.edges().size());
  auto GenBits = [&](EdgeProp &P, const std::vector<const VarDecl *> &Vs) {
    if (Vs.empty() && P.Gen.empty())
      return;
    if (P.Gen.empty())
      P.Gen.assign(Words, 0);
    for (const VarDecl *V : Vs)
      MarkIn(P.Gen, V);
  };
  for (const SuperEdge &E : G.edges()) {
    EdgeProp P;
    P.From = E.From;
    P.To = E.To;
    switch (E.K) {
    case SuperEdge::Kind::Local: {
      const Instance &I = G.instanceOf(E.From);
      Tmp.clear();
      genVarsOf(*E.Act, I.Frame, Tmp);
      GenBits(P, Tmp);
      P.Kill = killSlotOf(*E.Act, I.Frame);
      // Point-gen every referenced slot (operands and the written
      // target) at the *destination* too: the backward transfers
      // evaluate conditions against the forward store at the edge's To
      // node to resolve disjunctions (e.g. "¬(b and i < 100)" needs
      // i's forward value right after the loop to pin the blame on b),
      // and the duals of writes consult the written value there. One
      // extra node per reference — the backward phases stay exact
      // without being mask-restricted themselves.
      {
        uint64_t *MT = MaskAt(E.To);
        if (P.Kill >= 0)
          MT[P.Kill >> 6] |= 1ull << (P.Kill & 63);
        for (const VarDecl *V : Tmp) {
          unsigned S = V->storeSlot();
          MT[S >> 6] |= 1ull << (S & 63);
        }
      }
      break;
    }
    case SuperEdge::Kind::CallIn: {
      const CallLink &L = G.links()[E.Link];
      P.Gen = Acc[L.CalleeInstance]; // all slots the activation touches
      Tmp.clear();
      for (const Expr *Arg : L.Call->args())
        collectVars(Arg, Instances[L.CallerInstance].Frame, Tmp);
      GenBits(P, Tmp);
      break;
    }
    case SuperEdge::Kind::CallOut: {
      const CallLink &L = G.links()[E.Link];
      P.Extra = L.NodeP; // copy-out also reads the caller store at P
      if (L.ResultTemp && Instances[L.CalleeInstance].R->resultVar()) {
        Tmp.assign(1, Instances[L.CalleeInstance].R->resultVar());
        GenBits(P, Tmp);
      }
      break;
    }
    case SuperEdge::Kind::ChannelOut:
      P.Extra = G.links()[E.Link].NodeP;
      break;
    }
    Props.push_back(std::move(P));
  }

  // --- Chaotic OR-iteration to the least fixpoint --------------------
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (auto It = Props.rbegin(); It != Props.rend(); ++It) {
      const EdgeProp &P = *It;
      const uint64_t *LT = MaskAt(P.To);
      uint64_t *LF = MaskAt(P.From);
      for (unsigned W = 0; W < Words; ++W) {
        uint64_t V = LT[W];
        if (P.Kill >= 0 && unsigned(P.Kill >> 6) == W)
          V &= ~(1ull << (P.Kill & 63));
        if (!P.Gen.empty())
          V |= P.Gen[W];
        if (V & ~LF[W]) {
          LF[W] |= V;
          Changed = true;
        }
      }
      if (P.Extra != ~0u) {
        uint64_t *LX = MaskAt(P.Extra);
        for (unsigned W = 0; W < Words; ++W)
          if (LT[W] & ~LX[W]) {
            LX[W] |= LT[W];
            Changed = true;
          }
      }
    }
  }

  for (uint64_t W : Masks)
    LiveBits += std::popcount(W);
}

bool LivenessInfo::isLive(unsigned Node, const VarDecl *V) const {
  if (Masks.empty())
    return true;
  unsigned S = V->storeSlot();
  if (S >= Slots)
    return true;
  return maskFor(Node)[S >> 6] & (1ull << (S & 63));
}

} // namespace syntox
