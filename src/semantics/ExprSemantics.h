//===- semantics/ExprSemantics.h - Abstract expression semantics -*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward evaluation and backward (HC4-style) refinement of call-free
/// expressions over abstract stores. Backward refinement is the engine of
/// the paper's backward propagation: given a requirement on an
/// expression's value, it evaluates the tree bottom-up and pushes refined
/// intervals top-down onto the variables — e.g. requiring `i + 1 in
/// [1,100]` refines `i` to `[0,99]` (paper §2).
///
/// Variable accesses go through a FrameMap, which redirects a reference
/// (`var`) formal parameter to its *root* location: the token's exact
/// aliasing information (paper §5/§6.4) makes every scalar assignment a
/// strong, destructive update.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SEMANTICS_EXPRSEMANTICS_H
#define SYNTOX_SEMANTICS_EXPRSEMANTICS_H

#include "semantics/AbstractStore.h"

#include <map>

namespace syntox {

/// Redirection of `var` formals to their root locations for one
/// activation token. Identity for every other variable.
class FrameMap {
public:
  void redirect(const VarDecl *Formal, const VarDecl *Root) {
    Redirect[Formal] = Root;
  }

  const VarDecl *resolve(const VarDecl *V) const {
    auto It = Redirect.find(V);
    return It == Redirect.end() ? V : It->second;
  }

  bool empty() const { return Redirect.empty(); }
  const std::map<const VarDecl *, const VarDecl *> &map() const {
    return Redirect;
  }

private:
  std::map<const VarDecl *, const VarDecl *> Redirect;
};

/// Forward and backward abstract semantics of expressions.
class ExprSemantics {
public:
  explicit ExprSemantics(const StoreOps &Ops) : Ops(Ops), D(Ops.domain()) {}

  /// \name Forward evaluation
  /// Bottom results mean "no execution reaches here with a value".
  /// @{
  Interval evalInt(const Expr *E, const AbstractStore &S,
                   const FrameMap &F) const;
  BoolLattice evalBool(const Expr *E, const AbstractStore &S,
                       const FrameMap &F) const;
  /// @}

  /// \name Backward refinement
  /// Refines \p S so that it keeps exactly the states where E *may*
  /// evaluate into the required set; sets S to bottom when impossible.
  /// Sound: never removes a state where E's value is in the requirement.
  /// @{
  void refineInt(const Expr *E, const Interval &Required, AbstractStore &S,
                 const FrameMap &F) const;
  void refineBool(const Expr *E, bool Required, AbstractStore &S,
                  const FrameMap &F) const;
  /// @}

private:
  const StoreOps &Ops;
  const IntervalDomain &D;
};

} // namespace syntox

#endif // SYNTOX_SEMANTICS_EXPRSEMANTICS_H
