//===- core/AbstractDebugger.h - Public abstract-debugging API --*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level API of the abstract debugger: load a Pascal program,
/// run the iterated forward/backward analyses, then query
///  - derived *necessary conditions of correctness* at their origin
///    (paper §2: conditions are back-propagated as far as possible and
///    reported once, e.g. "n <= 100 right after read(n)" rather than a
///    warning at every array access),
///  - possibly-violated invariant assertions,
///  - the classification of every runtime check,
///  - the abstract memory state at any statement (the paper's
///    click-on-a-statement inspector, Figure 2),
///  - the Figure 2 analysis statistics.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CORE_ABSTRACTDEBUGGER_H
#define SYNTOX_CORE_ABSTRACTDEBUGGER_H

#include "checks/CheckAnalysis.h"
#include "frontend/Ast.h"
#include "semantics/Analyzer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace syntox {

/// A derived necessary condition of correctness: unless the condition
/// holds at the given point, the program will certainly violate its
/// specification later (loop, fail a check, or miss an intermittent
/// assertion).
struct NecessaryCondition {
  SourceLoc Loc;
  std::string Var;       ///< variable the condition constrains
  std::string Condition; ///< e.g. "n in [-oo, 100]" or "b = false"
  std::string PointDesc; ///< description of the control point

  std::string str() const {
    return Loc.str() + ": necessary condition: " + Condition + " (" +
           PointDesc + ")";
  }
};

/// A possibly-violated user invariant assertion.
struct InvariantWarning {
  SourceLoc Loc;
  std::string Message;
};

class AbstractDebugger {
public:
  struct Options {
    Analyzer::Options Analysis;
  };

  /// Parses, checks, lowers and prepares \p Source. Returns null (with
  /// diagnostics in \p Diags) when the program has frontend errors.
  static std::unique_ptr<AbstractDebugger>
  create(const std::string &Source, DiagnosticsEngine &Diags,
         Options Opts = Options());

  ~AbstractDebugger();

  /// Runs the analysis schedule; must be called before the queries.
  void analyze();

  /// The whole-program verdict: false when the analysis proved that *no*
  /// input can satisfy the specification (envelope empty at entry).
  bool someExecutionMaySatisfySpec() const;

  /// Derived necessary conditions at their origin points.
  const std::vector<NecessaryCondition> &conditions() const {
    return Conditions;
  }

  /// Invariant assertions the forward analysis could not discharge.
  const std::vector<InvariantWarning> &invariantWarnings() const {
    return InvariantWarnings;
  }

  /// Classification of every runtime check (needs analyze()).
  const CheckAnalysis &checks() const { return *Checks; }

  /// Renders the abstract memory state (the final invariant) at every
  /// control point of the main routine whose description contains
  /// \p DescFilter — the paper's statement inspector.
  std::string stateReport(const std::string &DescFilter = "") const;

  /// Figure 2 statistics.
  const AnalysisStats &stats() const { return An->stats(); }

  RoutineDecl *program() const { return Program; }
  const Analyzer &analyzer() const { return *An; }
  Analyzer &analyzer() { return *An; }
  const ProgramCfg &cfg() const { return *Cfg; }
  AstContext &context() { return *Ctx; }

private:
  AbstractDebugger() = default;
  void deriveConditions();
  void deriveInvariantWarnings();

  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<ProgramCfg> Cfg;
  std::unique_ptr<Analyzer> An;
  std::unique_ptr<CheckAnalysis> Checks;
  RoutineDecl *Program = nullptr;
  Options Opts;
  std::vector<NecessaryCondition> Conditions;
  std::vector<InvariantWarning> InvariantWarnings;
};

} // namespace syntox

#endif // SYNTOX_CORE_ABSTRACTDEBUGGER_H
