//===- core/AbstractDebugger.h - Public abstract-debugging API --*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level API of the abstract debugger: load a Pascal program,
/// run the iterated forward/backward analyses, then query
///  - derived *necessary conditions of correctness* at their origin
///    (paper §2: conditions are back-propagated as far as possible and
///    reported once, e.g. "n <= 100 right after read(n)" rather than a
///    warning at every array access),
///  - possibly-violated invariant assertions,
///  - the classification of every runtime check,
///  - the abstract memory state at any statement (the paper's
///    click-on-a-statement inspector, Figure 2),
///  - the Figure 2 analysis statistics.
///
/// Querying before analyze() throws std::logic_error — it used to read
/// uninitialized state. Prefer the AnalysisSession/AnalysisResult API
/// (core/AnalysisSession.h), which makes the run/query phases explicit
/// in the types.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CORE_ABSTRACTDEBUGGER_H
#define SYNTOX_CORE_ABSTRACTDEBUGGER_H

#include "checks/CheckAnalysis.h"
#include "frontend/Ast.h"
#include "semantics/Analyzer.h"
#include "support/Diagnostics.h"
#include "support/Json.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace syntox {

/// A derived necessary condition of correctness: unless the condition
/// holds at the given point, the program will certainly violate its
/// specification later (loop, fail a check, or miss an intermittent
/// assertion).
struct NecessaryCondition {
  SourceLoc Loc;
  std::string Var;       ///< variable the condition constrains
  std::string Condition; ///< e.g. "n in [-oo, 100]" or "b = false"
  std::string PointDesc; ///< description of the control point

  std::string str() const {
    return Loc.str() + ": necessary condition: " + Condition + " (" +
           PointDesc + ")";
  }

  /// Stable JSON rendering (schemas/findings.schema.json).
  json::Value toJson() const;
};

/// A possibly-violated user invariant assertion.
struct InvariantWarning {
  SourceLoc Loc;
  std::string Message;

  /// Stable JSON rendering (schemas/findings.schema.json).
  json::Value toJson() const;
};

/// One variable binding in a point-state query result.
struct StateBinding {
  std::string Var;
  std::string Value; ///< rendered abstract value, e.g. "[1, 100]"
};

/// The abstract memory state at one control point of one activation
/// instance — the paper's click-on-a-statement inspector, structured.
struct PointState {
  SourceLoc Loc;
  std::string Routine;   ///< routine of the containing instance
  unsigned InstanceId = 0;
  std::string PointDesc; ///< e.g. "before i := i + 1"
  bool Reachable = false;   ///< forward analysis reaches this point
  bool InEnvelope = false;  ///< reachable within the refined invariant
  /// Envelope constraints on the named program variables (analysis
  /// temporaries are omitted); unconstrained variables are absent.
  std::vector<StateBinding> Bindings;
  /// Variables whose store slot is *dead* at this point under
  /// liveness-driven pruning (--no-prune disables it): the analysis
  /// never tracked them here, so they read as top regardless of any
  /// value the unpruned analysis would have shown. JSON: "pruned".
  std::vector<std::string> PrunedVars;

  json::Value toJson() const;
};

/// What a demand-driven analysis is asked about: the abstract state at
/// one source point, or the verdict of one runtime check. The demand
/// cone — the set of control points actually solved — is derived from
/// the spec.
struct DemandSpec {
  enum class Kind { Point, Check };
  Kind K = Kind::Point;
  SourceLoc Loc;        ///< Kind::Point: the queried source location
  unsigned CheckId = 0; ///< Kind::Check: id in the program's check table

  static DemandSpec point(SourceLoc Loc) {
    DemandSpec S;
    S.K = Kind::Point;
    S.Loc = Loc;
    return S;
  }
  static DemandSpec check(unsigned Id) {
    DemandSpec S;
    S.K = Kind::Check;
    S.CheckId = Id;
    return S;
  }
};

class AbstractDebugger {
public:
  /// Historical spelling of the shared options struct. The old nested
  /// `Options::Analysis` member is gone: what used to be
  /// `Opts.Analysis.Strategy` is now just `Opts.Strategy`.
  using Options = AnalysisOptions;

  /// Parses, checks, lowers and prepares \p Source. Returns null (with
  /// diagnostics in \p Diags) when the program has frontend errors.
  static std::unique_ptr<AbstractDebugger>
  create(const std::string &Source, DiagnosticsEngine &Diags,
         Options Opts = Options());

  ~AbstractDebugger();

  /// Runs the analysis schedule; must be called before the queries.
  /// May be called again: a re-analysis warm-starts from the previous
  /// run's recordings (unless WarmStart is off) and produces identical
  /// results.
  void analyze();

  /// Whether analyze() has completed (the queries below require it).
  bool analyzed() const { return Analyzed; }

  /// \name Demand-driven queries
  /// Solves only the backward dependency cone of one query instead of
  /// the whole program: the same refinement-chain schedule as
  /// analyze(), restricted per phase to the cone, with out-of-cone
  /// components replayed from warm memos (or the on-disk cache) at
  /// zero live solver steps. Answers at in-cone points are
  /// bitwise-identical to a full analyze(); queries outside the solved
  /// cone are refused (std::out_of_range), never answered wrongly.
  /// @{

  /// Runs the cone-restricted analysis for \p Spec. Composes with
  /// WarmStart exactly like analyze() — a warm chain (in-memory, or
  /// one the session layer loaded from the on-disk cache) replays
  /// everything outside the cone — but never writes back (the chain
  /// slots and the on-disk cache only ever hold full recordings).
  /// Throws std::logic_error on a debugger that already ran a full
  /// analyze() (the demand run would overwrite its published
  /// results); std::out_of_range for an unknown check id. May be
  /// called repeatedly with different specs.
  void analyzeDemand(const DemandSpec &Spec);

  /// Whether analyzeDemand() has completed (the demand queries below
  /// require it).
  bool demandAnalyzed() const { return DemandAnalyzed; }

  /// The abstract state at every control point matching \p Loc, like
  /// stateAt(), but answered from the demand run. Throws
  /// std::logic_error before analyzeDemand(), and std::out_of_range
  /// when any matching point lies outside the solved cone.
  std::vector<PointState> demandStateAt(SourceLoc Loc) const;

  /// True when every control point matching \p Loc is inside the
  /// solved cone, i.e. demandStateAt(Loc) will answer.
  bool demandCovers(SourceLoc Loc) const;

  /// The classification of runtime check \p CheckId from the demand
  /// run. Throws std::logic_error before analyzeDemand(), and
  /// std::out_of_range when the check's sites are outside the cone.
  CheckResult demandCheck(unsigned CheckId) const;

  /// Necessary conditions derived inside the solved cone. At in-cone
  /// points these equal the full-analysis conditions; conditions whose
  /// origin lies outside the cone are absent.
  const std::vector<NecessaryCondition> &demandConditions() const {
    requireDemandAnalyzed("demandConditions()");
    return Conditions;
  }

  /// Invariant warnings derived inside the solved cone (same caveat as
  /// demandConditions()).
  const std::vector<InvariantWarning> &demandInvariantWarnings() const {
    requireDemandAnalyzed("demandInvariantWarnings()");
    return InvariantWarnings;
  }

  /// @}

  /// The whole-program verdict: false when the analysis proved that *no*
  /// input can satisfy the specification (envelope empty at entry).
  bool someExecutionMaySatisfySpec() const;

  /// Derived necessary conditions at their origin points.
  const std::vector<NecessaryCondition> &conditions() const {
    requireAnalyzed("conditions()");
    return Conditions;
  }

  /// Invariant assertions the forward analysis could not discharge.
  const std::vector<InvariantWarning> &invariantWarnings() const {
    requireAnalyzed("invariantWarnings()");
    return InvariantWarnings;
  }

  /// Classification of every runtime check.
  const CheckAnalysis &checks() const {
    requireAnalyzed("checks()");
    return *Checks;
  }

  /// The abstract state at every control point whose source location
  /// matches \p Loc — all activation instances, main and callees. A
  /// zero column matches the whole line. Empty when no point matches.
  std::vector<PointState> stateAt(SourceLoc Loc) const;

  /// Structured form of the whole-program statement inspector: the
  /// abstract state at every control point of the main routine whose
  /// description contains \p DescFilter (empty = all points).
  std::vector<PointState>
  mainStates(const std::string &DescFilter = "") const;

  /// Figure 2 statistics (of the full or the demand run, whichever
  /// completed).
  const AnalysisStats &stats() const {
    if (!Analyzed)
      requireDemandAnalyzed("stats()");
    return An->stats();
  }

  RoutineDecl *program() const { return Program; }
  const Analyzer &analyzer() const { return *An; }
  const ProgramCfg &cfg() const { return *Cfg; }
  AstContext &context() { return *Ctx; }

private:
  AbstractDebugger() = default;
  /// \p Cone restricts derivation to in-cone nodes (demand runs; null
  /// = all nodes). The cone is predecessor-closed over the forward
  /// dependencies, so every value the frontier tests read is in-cone.
  void deriveConditions(const std::vector<uint8_t> *Cone = nullptr);
  void deriveInvariantWarnings(const std::vector<uint8_t> *Cone = nullptr);
  /// Throws std::logic_error mentioning \p Query when analyze() has not
  /// completed (such reads returned garbage before this guard existed).
  void requireAnalyzed(const char *Query) const;
  /// Same contract for the demand-query entry points: pre-run queries
  /// throw std::logic_error, exactly like the full-analysis queries.
  void requireDemandAnalyzed(const char *Query) const;

  /// The session layer owns the persistent-cache composition (loading
  /// warm state into the analyzer before a run, saving it after) and
  /// needs mutable engine access for it; everyone else goes through the
  /// const surface above.
  friend class AnalysisSession;

  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<ProgramCfg> Cfg;
  std::unique_ptr<Analyzer> An;
  std::unique_ptr<CheckAnalysis> Checks;
  RoutineDecl *Program = nullptr;
  Options Opts;
  bool Analyzed = false;
  bool DemandAnalyzed = false;
  std::vector<NecessaryCondition> Conditions;
  std::vector<InvariantWarning> InvariantWarnings;
};

} // namespace syntox

#endif // SYNTOX_CORE_ABSTRACTDEBUGGER_H
