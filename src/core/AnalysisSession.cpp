//===- core/AnalysisSession.cpp - Session/result analysis API -------------===//

#include "core/AnalysisSession.h"

#include <cassert>

using namespace syntox;

json::Value AnalysisResult::toJson() const {
  json::Value V = json::Value::object();
  V.set("verdict", someExecutionMaySatisfySpec()
                       ? "some_execution_may_satisfy_spec"
                       : "no_execution_satisfies_spec");
  json::Value Cs = json::Value::array();
  for (const NecessaryCondition &C : conditions())
    Cs.push(C.toJson());
  V.set("conditions", std::move(Cs));
  json::Value Ws = json::Value::array();
  for (const InvariantWarning &W : invariantWarnings())
    Ws.push(W.toJson());
  V.set("invariant_warnings", std::move(Ws));
  V.set("checks", checks().toJson());
  V.set("stats", stats().toJson());
  V.set("metrics", MetricsSnapshot);
  return V;
}

json::Value DemandResult::toJson() const {
  json::Value V = json::Value::object();
  json::Value Q = json::Value::object();
  if (Spec.K == DemandSpec::Kind::Point) {
    Q.set("kind", "point");
    Q.set("line", Spec.Loc.Line);
    Q.set("column", Spec.Loc.Column);
  } else {
    Q.set("kind", "check");
    Q.set("check_id", Spec.CheckId);
  }
  V.set("query", std::move(Q));
  json::Value Ss = json::Value::array();
  for (const PointState &S : States)
    Ss.push(S.toJson());
  V.set("states", std::move(Ss));
  if (const CheckResult *C = check())
    V.set("check", C->toJson(Dbg->analyzer().storeOps().domain()));
  json::Value Cs = json::Value::array();
  for (const NecessaryCondition &C : conditions())
    Cs.push(C.toJson());
  V.set("conditions", std::move(Cs));
  json::Value Ws = json::Value::array();
  for (const InvariantWarning &W : invariantWarnings())
    Ws.push(W.toJson());
  V.set("invariant_warnings", std::move(Ws));
  V.set("stats", stats().toJson());
  V.set("metrics", MetricsSnapshot);
  return V;
}

std::unique_ptr<AnalysisSession>
AnalysisSession::create(std::string Source, DiagnosticsEngine &Diags,
                        AnalysisOptions Opts) {
  // Validate the program up front so run() cannot fail: frontend errors
  // surface here, once, with diagnostics.
  std::unique_ptr<AbstractDebugger> Probe =
      AbstractDebugger::create(Source, Diags, Opts);
  if (!Probe)
    return nullptr;
  std::unique_ptr<AnalysisSession> S(new AnalysisSession());
  S->Source = std::move(Source);
  S->Opts = std::move(Opts);
  return S;
}

AnalysisSession::~AnalysisSession() = default;

TraceRecorder &AnalysisSession::enableTracing(uint32_t Mask) {
  if (!Trace || Trace->mask() != Mask)
    Trace = std::make_unique<TraceRecorder>(Mask);
  return *Trace;
}

void AnalysisSession::flushTrace(TraceSink &Sink) {
  if (Trace)
    Trace->flushTo(Sink);
}

AnalysisResult AnalysisSession::run() {
  Opts.Telem.Trace = Trace.get();
  if (!Opts.Telem.Metrics)
    Opts.Telem.Metrics = &Metrics;

  // Store detaches happen inside a value type with no telemetry
  // context; route them through the process-global hook for the
  // duration of this run when detail tracing asked for them.
  TraceRecorder *DetachHook =
      Trace && Trace->wants(TraceEventKind::StoreDetach) ? Trace.get()
                                                         : nullptr;
  if (DetachHook)
    trace::StoreDetachHook.store(DetachHook, std::memory_order_relaxed);

  DiagnosticsEngine Diags;
  std::shared_ptr<AbstractDebugger> Dbg =
      AbstractDebugger::create(Source, Diags, Opts);
  assert(Dbg && "session source was validated by create()");
  Dbg->analyze();

  if (DetachHook)
    trace::StoreDetachHook.store(nullptr, std::memory_order_relaxed);

  return AnalysisResult(std::move(Dbg), Metrics.snapshot());
}

DemandResult AnalysisSession::runDemandQuery(const DemandSpec &Spec) {
  Opts.Telem.Trace = Trace.get();
  if (!Opts.Telem.Metrics)
    Opts.Telem.Metrics = &Metrics;

  TraceRecorder *DetachHook =
      Trace && Trace->wants(TraceEventKind::StoreDetach) ? Trace.get()
                                                         : nullptr;
  if (DetachHook)
    trace::StoreDetachHook.store(DetachHook, std::memory_order_relaxed);

  DiagnosticsEngine Diags;
  std::shared_ptr<AbstractDebugger> Dbg =
      AbstractDebugger::create(Source, Diags, Opts);
  assert(Dbg && "session source was validated by create()");
  std::vector<PointState> States;
  CheckResult Check;
  try {
    Dbg->analyzeDemand(Spec);
    if (Spec.K == DemandSpec::Kind::Point)
      States = Dbg->demandStateAt(Spec.Loc);
    else
      Check = Dbg->demandCheck(Spec.CheckId);
  } catch (...) {
    if (DetachHook)
      trace::StoreDetachHook.store(nullptr, std::memory_order_relaxed);
    throw;
  }

  if (DetachHook)
    trace::StoreDetachHook.store(nullptr, std::memory_order_relaxed);

  return DemandResult(std::move(Dbg), Spec, std::move(States), Check,
                      Metrics.snapshot());
}

DemandResult AnalysisSession::demandStateAt(SourceLoc Loc) {
  return runDemandQuery(DemandSpec::point(Loc));
}

DemandResult AnalysisSession::demandCheck(unsigned CheckId) {
  return runDemandQuery(DemandSpec::check(CheckId));
}
