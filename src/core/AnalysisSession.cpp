//===- core/AnalysisSession.cpp - Session/result analysis API -------------===//

#include "core/AnalysisSession.h"

#include "persist/WarmCache.h"

#include <cassert>

using namespace syntox;

/// Whether two configurations build observably identical engines — the
/// engine-reuse gate. Every field matters: the semantic knobs change
/// the computed values, the strategy/thread knobs change the recorded
/// warm-chain shape, and the telemetry pointers are captured by the
/// Analyzer at construction. Keep in sync with AnalysisOptions.
static bool sameEngineConfig(const AnalysisOptions &A,
                             const AnalysisOptions &B) {
  return A.Strategy == B.Strategy && A.NumThreads == B.NumThreads &&
         A.UseTransferCache == B.UseTransferCache &&
         A.TransferCacheSet == B.TransferCacheSet &&
         A.AdaptiveCacheInstanceThreshold ==
             B.AdaptiveCacheInstanceThreshold &&
         A.NarrowingPasses == B.NarrowingPasses &&
         A.BackwardRounds == B.BackwardRounds &&
         A.TerminationGoal == B.TerminationGoal &&
         A.UseBackward == B.UseBackward &&
         A.HarrisonGfp == B.HarrisonGfp &&
         A.ContextInsensitive == B.ContextInsensitive &&
         A.WarmStart == B.WarmStart &&
         A.WideningThresholds == B.WideningThresholds &&
         A.CacheDir == B.CacheDir && A.Telem.Trace == B.Telem.Trace &&
         A.Telem.Metrics == B.Telem.Metrics;
}

json::Value AnalysisResult::toJson() const {
  json::Value V = json::Value::object();
  V.set("verdict", someExecutionMaySatisfySpec()
                       ? "some_execution_may_satisfy_spec"
                       : "no_execution_satisfies_spec");
  json::Value Cs = json::Value::array();
  for (const NecessaryCondition &C : conditions())
    Cs.push(C.toJson());
  V.set("conditions", std::move(Cs));
  json::Value Ws = json::Value::array();
  for (const InvariantWarning &W : invariantWarnings())
    Ws.push(W.toJson());
  V.set("invariant_warnings", std::move(Ws));
  V.set("checks", checks().toJson());
  V.set("stats", stats().toJson());
  V.set("metrics", MetricsSnapshot);
  return V;
}

json::Value DemandResult::toJson() const {
  json::Value V = json::Value::object();
  json::Value Q = json::Value::object();
  if (Spec.K == DemandSpec::Kind::Point) {
    Q.set("kind", "point");
    Q.set("line", Spec.Loc.Line);
    Q.set("column", Spec.Loc.Column);
  } else {
    Q.set("kind", "check");
    Q.set("check_id", Spec.CheckId);
  }
  V.set("query", std::move(Q));
  json::Value Ss = json::Value::array();
  for (const PointState &S : States)
    Ss.push(S.toJson());
  V.set("states", std::move(Ss));
  if (const CheckResult *C = check())
    V.set("check", C->toJson(Dbg->analyzer().storeOps().domain()));
  json::Value Cs = json::Value::array();
  for (const NecessaryCondition &C : conditions())
    Cs.push(C.toJson());
  V.set("conditions", std::move(Cs));
  json::Value Ws = json::Value::array();
  for (const InvariantWarning &W : invariantWarnings())
    Ws.push(W.toJson());
  V.set("invariant_warnings", std::move(Ws));
  V.set("stats", stats().toJson());
  V.set("metrics", MetricsSnapshot);
  return V;
}

std::unique_ptr<AnalysisSession>
AnalysisSession::create(std::string Source, DiagnosticsEngine &Diags,
                        AnalysisOptions Opts) {
  // Validate the program up front so run() cannot fail: frontend errors
  // surface here, once, with diagnostics.
  std::unique_ptr<AbstractDebugger> Probe =
      AbstractDebugger::create(Source, Diags, Opts);
  if (!Probe)
    return nullptr;
  std::unique_ptr<AnalysisSession> S(new AnalysisSession());
  S->Source = std::move(Source);
  S->Opts = std::move(Opts);
  return S;
}

AnalysisSession::~AnalysisSession() = default;

TraceRecorder &AnalysisSession::enableTracing(uint32_t Mask) {
  if (!Trace || Trace->mask() != Mask)
    Trace = std::make_unique<TraceRecorder>(Mask);
  return *Trace;
}

void AnalysisSession::flushTrace(TraceSink &Sink) {
  if (Trace)
    Trace->flushTo(Sink);
}

std::shared_ptr<AbstractDebugger> AnalysisSession::engineForRun(
    bool ForDemand) {
  // Reuse requires: we kept an engine, nothing else can observe it (a
  // live AnalysisResult/DemandResult shares ownership), the options
  // are unchanged, and the run kinds compose — a full run must not
  // recycle a demand engine (the published chain only ever held a
  // private demand replay) and a demand run must not recycle a fully
  // analyzed engine (analyzeDemand() refuses, to protect published
  // results).
  bool Reusable = Engine && Engine.use_count() == 1 &&
                  sameEngineConfig(EngineOpts, Opts) &&
                  (ForDemand ? !Engine->Analyzed : !Engine->DemandAnalyzed);
  if (Reusable) {
    if (MetricsRegistry *M = Opts.Telem.Metrics)
      M->counter("session.engine_reuses").inc();
    return Engine;
  }
  DiagnosticsEngine Diags;
  Engine = AbstractDebugger::create(Source, Diags, Opts);
  assert(Engine && "session source was validated by create()");
  EngineOpts = Opts;
  EnginePersistProbed = false;
  return Engine;
}

void AnalysisSession::loadPersistCache(AbstractDebugger &Dbg) {
  // With a cache directory configured, the first run on a fresh engine
  // warm-starts from the persisted recordings of an earlier process,
  // falling back to cold on any mismatch.
  if (Opts.CacheDir.empty() || !Opts.WarmStart || EnginePersistProbed)
    return;
  EnginePersistProbed = true;
  MetricsRegistry *M = Opts.Telem.Metrics;
  persist::CacheLoadResult R = persist::loadWarmCache(Opts.CacheDir, *Dbg.An);
  if (M) {
    if (R.Loaded) {
      M->counter("persist.loaded").inc();
      M->counter("persist.slots").inc(R.Slots);
      M->counter("persist.restored_nodes").inc(R.RestoredNodes);
      M->counter("persist.invalidated_nodes").inc(R.InvalidatedNodes);
      M->counter("persist.matched_elements").inc(R.MatchedElements);
      M->counter("persist.unmatched_elements").inc(R.UnmatchedElements);
      M->counter("persist.restored_edge_memos").inc(R.RestoredEdgeMemos);
    } else {
      M->counter("persist.fallback").inc();
    }
  }
}

void AnalysisSession::savePersistCache(const AbstractDebugger &Dbg) {
  if (Opts.CacheDir.empty() || !Opts.WarmStart)
    return;
  if (persist::saveWarmCache(Opts.CacheDir, *Dbg.An))
    if (MetricsRegistry *M = Opts.Telem.Metrics)
      M->counter("persist.saved").inc();
}

AnalysisResult AnalysisSession::run() {
  Opts.Telem.Trace = Trace.get();
  if (!Opts.Telem.Metrics)
    Opts.Telem.Metrics = &Metrics;

  // Store detaches happen inside a value type with no telemetry
  // context; route them through the process-global hook for the
  // duration of this run when detail tracing asked for them.
  TraceRecorder *DetachHook =
      Trace && Trace->wants(TraceEventKind::StoreDetach) ? Trace.get()
                                                         : nullptr;
  if (DetachHook)
    trace::StoreDetachHook.store(DetachHook, std::memory_order_relaxed);

  std::shared_ptr<AbstractDebugger> Dbg = engineForRun(/*ForDemand=*/false);
  loadPersistCache(*Dbg);
  Dbg->analyze();
  savePersistCache(*Dbg);

  if (DetachHook)
    trace::StoreDetachHook.store(nullptr, std::memory_order_relaxed);

  return AnalysisResult(std::move(Dbg), Metrics.snapshot());
}

DemandResult AnalysisSession::runDemandQuery(const DemandSpec &Spec) {
  Opts.Telem.Trace = Trace.get();
  if (!Opts.Telem.Metrics)
    Opts.Telem.Metrics = &Metrics;

  TraceRecorder *DetachHook =
      Trace && Trace->wants(TraceEventKind::StoreDetach) ? Trace.get()
                                                         : nullptr;
  if (DetachHook)
    trace::StoreDetachHook.store(DetachHook, std::memory_order_relaxed);

  std::shared_ptr<AbstractDebugger> Dbg = engineForRun(/*ForDemand=*/true);
  // Demand runs compose with the on-disk cache exactly like full runs
  // (out-of-cone components replay from the loaded chain) but never
  // save: the cache must only ever hold full recordings.
  loadPersistCache(*Dbg);
  std::vector<PointState> States;
  CheckResult Check;
  try {
    Dbg->analyzeDemand(Spec);
    if (Spec.K == DemandSpec::Kind::Point)
      States = Dbg->demandStateAt(Spec.Loc);
    else
      Check = Dbg->demandCheck(Spec.CheckId);
  } catch (...) {
    if (DetachHook)
      trace::StoreDetachHook.store(nullptr, std::memory_order_relaxed);
    throw;
  }

  if (DetachHook)
    trace::StoreDetachHook.store(nullptr, std::memory_order_relaxed);

  return DemandResult(std::move(Dbg), Spec, std::move(States), Check,
                      Metrics.snapshot());
}

DemandResult AnalysisSession::demandStateAt(SourceLoc Loc) {
  return runDemandQuery(DemandSpec::point(Loc));
}

DemandResult AnalysisSession::demandCheck(unsigned CheckId) {
  return runDemandQuery(DemandSpec::check(CheckId));
}
