//===- core/AbstractDebugger.cpp - Public abstract-debugging API ----------===//

#include "core/AbstractDebugger.h"

#include "cfg/CfgBuilder.h"
#include "frontend/Lexer.h"
#include "semantics/Liveness.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <algorithm>
#include <set>
#include <stdexcept>

using namespace syntox;

std::unique_ptr<AbstractDebugger>
AbstractDebugger::create(const std::string &Source, DiagnosticsEngine &Diags,
                         Options Opts) {
  auto Ctx = std::make_unique<AstContext>();
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), *Ctx, Diags);
  RoutineDecl *Program = P.parseProgram();
  if (!Program || Diags.hasErrors())
    return nullptr;
  Sema S(*Ctx, Diags);
  if (!S.analyze(Program))
    return nullptr;
  CfgBuilder Builder(*Ctx, Diags);
  auto Cfg = Builder.build(Program);
  if (Diags.hasErrors())
    return nullptr;

  std::unique_ptr<AbstractDebugger> Dbg(new AbstractDebugger());
  Dbg->Ctx = std::move(Ctx);
  Dbg->Cfg = std::move(Cfg);
  Dbg->Program = Program;
  Dbg->Opts = Opts;
  Dbg->An = std::make_unique<Analyzer>(*Dbg->Cfg, Program, Opts);
  return Dbg;
}

AbstractDebugger::~AbstractDebugger() = default;

void AbstractDebugger::analyze() {
  // Repeated analyze() calls re-run the chain on the same engine. With
  // warm starts on (the default), the analyzer's warm slots survive
  // between runs, so a re-analysis replays every phase whose recorded
  // inputs still verify and only re-derives the findings — the results
  // are bitwise-identical to the first call either way.
  //
  // The persistent on-disk cache (AnalysisOptions::CacheDir) is the
  // session layer's business: AnalysisSession loads warm state into
  // the engine before this call and saves the recordings after it.
  An->run();
  Checks = std::make_unique<CheckAnalysis>(*An);
  Analyzed = true;
  DemandAnalyzed = false;
  deriveConditions();
  deriveInvariantWarnings();
}

void AbstractDebugger::analyzeDemand(const DemandSpec &Spec) {
  if (Analyzed)
    throw std::logic_error(
        "analyzeDemand() on an analyzed debugger would overwrite the "
        "published full-analysis results; use a fresh debugger (the "
        "AnalysisSession demand queries do)");

  const SuperGraph &G = An->graph();
  std::vector<unsigned> Query;
  if (Spec.K == DemandSpec::Kind::Check) {
    Query = CheckAnalysis::checkNodes(*An, Spec.CheckId);
    bool Known = false;
    for (const CheckInfo &I : An->checkTable())
      Known |= I.Id == Spec.CheckId;
    if (!Known)
      throw std::out_of_range("no runtime check with id " +
                              std::to_string(Spec.CheckId));
  } else {
    for (const Instance &Inst : G.instances())
      for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P) {
        SourceLoc PLoc = Inst.Cfg->pointLoc(P);
        if (!PLoc.isValid() || PLoc.Line != Spec.Loc.Line)
          continue;
        if (Spec.Loc.Column != 0 && PLoc.Column != Spec.Loc.Column)
          continue;
        Query.push_back(G.node(Inst, P));
      }
  }

  // Demand runs compose with the warm chain exactly like full runs
  // (out-of-cone components replay from it) but never record back: the
  // chain slots — and hence the on-disk cache the session layer saves
  // them to — only ever hold full recordings.
  An->runDemand(Query);
  DemandAnalyzed = true;
  deriveConditions(&An->demandMask());
  deriveInvariantWarnings(&An->demandMask());
}

void AbstractDebugger::requireAnalyzed(const char *Query) const {
  if (!Analyzed)
    throw std::logic_error(std::string(Query) +
                           " requires a completed analyze() call");
}

void AbstractDebugger::requireDemandAnalyzed(const char *Query) const {
  if (!DemandAnalyzed)
    throw std::logic_error(std::string(Query) +
                           " requires a completed analyzeDemand() call");
}

bool AbstractDebugger::someExecutionMaySatisfySpec() const {
  requireAnalyzed("someExecutionMaySatisfySpec()");
  return !An->envelopeAt(An->graph().mainEntry()).isBottom();
}

/// All predecessor nodes of \p Node in the supergraph (including the
/// frozen-frame side input of call returns).
static std::vector<unsigned> predecessors(const SuperGraph &G,
                                          unsigned Node) {
  std::vector<unsigned> Out;
  for (unsigned EdgeIdx : G.inEdges(Node)) {
    const SuperEdge &E = G.edges()[EdgeIdx];
    Out.push_back(E.From);
    if (E.K == SuperEdge::Kind::CallOut ||
        E.K == SuperEdge::Kind::ChannelOut)
      Out.push_back(G.links()[E.Link].NodeP);
  }
  return Out;
}

void AbstractDebugger::deriveConditions(const std::vector<uint8_t> *Cone) {
  Conditions.clear();
  const SuperGraph &G = An->graph();
  const StoreOps &Ops = An->storeOps();
  const IntervalDomain &D = Ops.domain();
  std::set<std::string> Dedup;

  // Is the envelope strictly below the forward value for (Node, Var)?
  auto Tighter = [&](unsigned Node, const VarDecl *V) {
    AbsValue Env = Ops.get(An->envelopeAt(Node), V);
    AbsValue Fwd = Ops.get(An->forwardAt(Node), V);
    return Ops.leqValues(Env, Fwd) && !Ops.leqValues(Fwd, Env);
  };

  for (unsigned Node = 0; Node < G.numNodes(); ++Node) {
    if (Cone && !(*Cone)[Node])
      continue; // demand run: values outside the cone are unspecified
    const AbstractStore &Fwd = An->forwardAt(Node);
    const AbstractStore &Env = An->envelopeAt(Node);
    if (Fwd.isBottom())
      continue; // not reachable at all: nothing to report
    const Instance &Inst = G.instanceOf(Node);
    unsigned Point = G.pointOf(Node);
    SourceLoc Loc = Inst.Cfg->pointLoc(Point);

    if (Env.isBottom()) {
      // The whole point is excluded by the specification: report the
      // frontier only (first such point on a path).
      bool IsFrontier = true;
      for (unsigned Pred : predecessors(G, Node))
        IsFrontier &= !(An->envelopeAt(Pred).isBottom() &&
                        !An->forwardAt(Pred).isBottom());
      if (!IsFrontier || !Loc.isValid())
        continue;
      NecessaryCondition C;
      C.Loc = Loc;
      C.Condition = "this point is never reached in any execution "
                    "satisfying the specification";
      C.PointDesc = Inst.Cfg->pointDesc(Point);
      if (Dedup.insert(C.str()).second)
        Conditions.push_back(std::move(C));
      continue;
    }

    Env.forEachEntry([&](const VarDecl *V, const AbsValue &EnvVal) {
      if (!V->name().empty() && V->name()[0] == '$')
        return; // analysis temporaries
      if (!Tighter(Node, V))
        return;
      // Report only at the origin: no predecessor already carries the
      // same tightening for this variable.
      bool IsFrontier = true;
      for (unsigned Pred : predecessors(G, Node)) {
        if (An->forwardAt(Pred).isBottom())
          continue;
        if (An->envelopeAt(Pred).isBottom() || Tighter(Pred, V))
          IsFrontier = false;
      }
      if (!IsFrontier || !Loc.isValid())
        return;
      NecessaryCondition C;
      C.Loc = Loc;
      C.Var = V->name();
      if (EnvVal.isInt())
        C.Condition = V->name() + " in " + D.str(EnvVal.asInt());
      else
        C.Condition = V->name() + " = " + EnvVal.asBool().str();
      C.PointDesc = Inst.Cfg->pointDesc(Point);
      if (Dedup.insert(C.str()).second)
        Conditions.push_back(std::move(C));
    });
  }
}

void AbstractDebugger::deriveInvariantWarnings(
    const std::vector<uint8_t> *Cone) {
  InvariantWarnings.clear();
  const SuperGraph &G = An->graph();
  const ExprSemantics &Exprs = An->exprSemantics();
  std::set<std::string> Dedup;
  for (const SuperEdge &E : G.edges()) {
    if (E.K != SuperEdge::Kind::Local ||
        E.Act->K != Action::Kind::Invariant)
      continue;
    if (Cone && !(*Cone)[E.From])
      continue; // demand run: values outside the cone are unspecified
    const AbstractStore &In = An->forwardAt(E.From);
    if (In.isBottom())
      continue;
    const Instance &Inst = G.instanceOf(E.From);
    BoolLattice V = Exprs.evalBool(E.Act->Value, In, Inst.Frame);
    if (!V.mayBeFalse())
      continue;
    InvariantWarning W;
    W.Loc = E.Act->Value->loc();
    W.Message = V.mayBeTrue()
                    ? "invariant assertion may be violated"
                    : "invariant assertion is always violated here";
    std::string Key = W.Loc.str() + W.Message;
    if (Dedup.insert(Key).second)
      InvariantWarnings.push_back(std::move(W));
  }
}

/// Builds the PointState of control point \p P of \p Inst.
static PointState pointState(const Analyzer &An, const Instance &Inst,
                             unsigned P) {
  const SuperGraph &G = An.graph();
  const IntervalDomain &D = An.storeOps().domain();
  unsigned Node = G.node(Inst, P);
  const AbstractStore &Env = An.envelopeAt(Node);
  PointState S;
  S.Loc = Inst.Cfg->pointLoc(P);
  S.Routine = Inst.R->name();
  S.InstanceId = Inst.Id;
  S.PointDesc = Inst.Cfg->pointDesc(P);
  S.Reachable = !An.forwardAt(Node).isBottom();
  S.InEnvelope = !Env.isBottom();
  const LivenessInfo *Live = An.liveness();
  Env.forEachEntry([&](const VarDecl *V, const AbsValue &Val) {
    if (!V->name().empty() && V->name()[0] == '$')
      return; // analysis temporaries
    if (Live && !Live->isLive(Node, V)) {
      // Dead slot: any envelope entry here is backward-requirement
      // residue, not a forward fact — the pruned analysis reads it as
      // top. Flag it instead of showing a value the unpruned analysis
      // might not agree with.
      S.PrunedVars.push_back(V->name());
      return;
    }
    StateBinding B;
    B.Var = V->name();
    B.Value = Val.isInt() ? D.str(Val.asInt()) : Val.asBool().str();
    S.Bindings.push_back(std::move(B));
  });
  if (Live && !Env.isBottom()) {
    // Most dead slots have no residual entry at all — the restriction
    // drops them from the stores before they are ever written — so the
    // envelope walk above never sees them. Flag every dead variable of
    // the point's frame (the routine's own variables plus the ancestor
    // variables copied across its boundary) so a reader comparing
    // against an unpruned run can account for each missing binding.
    auto FlagDead = [&](const VarDecl *V) {
      if (!V->name().empty() && V->name()[0] == '$')
        return;
      if (!Env.hasEntry(V) && !Live->isLive(Node, V))
        S.PrunedVars.push_back(V->name());
    };
    for (const VarDecl *V : Inst.R->ownedVars())
      FlagDead(V);
    for (const VarDecl *V : Inst.SharedKeys)
      FlagDead(V);
  }
  // forEachEntry iterates in slot order, which is stable but arbitrary
  // to a reader; present alphabetically.
  std::sort(S.Bindings.begin(), S.Bindings.end(),
            [](const StateBinding &A, const StateBinding &B) {
              return A.Var < B.Var;
            });
  std::sort(S.PrunedVars.begin(), S.PrunedVars.end());
  return S;
}

std::vector<PointState> AbstractDebugger::stateAt(SourceLoc Loc) const {
  requireAnalyzed("stateAt()");
  const SuperGraph &G = An->graph();
  std::vector<PointState> Out;
  for (const Instance &Inst : G.instances()) {
    for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P) {
      SourceLoc PLoc = Inst.Cfg->pointLoc(P);
      if (!PLoc.isValid() || PLoc.Line != Loc.Line)
        continue;
      if (Loc.Column != 0 && PLoc.Column != Loc.Column)
        continue;
      Out.push_back(pointState(*An, Inst, P));
    }
  }
  return Out;
}

std::vector<PointState>
AbstractDebugger::demandStateAt(SourceLoc Loc) const {
  requireDemandAnalyzed("demandStateAt()");
  const SuperGraph &G = An->graph();
  const std::vector<uint8_t> &Cone = An->demandMask();
  std::vector<PointState> Out;
  for (const Instance &Inst : G.instances()) {
    for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P) {
      SourceLoc PLoc = Inst.Cfg->pointLoc(P);
      if (!PLoc.isValid() || PLoc.Line != Loc.Line)
        continue;
      if (Loc.Column != 0 && PLoc.Column != Loc.Column)
        continue;
      unsigned Node = G.node(Inst, P);
      if (Cone.empty() || !Cone[Node])
        throw std::out_of_range(
            "demandStateAt(): " + PLoc.str() +
            " is outside the solved demand cone; re-query through "
            "analyzeDemand() for this point or run a full analyze()");
      Out.push_back(pointState(*An, Inst, P));
    }
  }
  return Out;
}

bool AbstractDebugger::demandCovers(SourceLoc Loc) const {
  requireDemandAnalyzed("demandCovers()");
  const SuperGraph &G = An->graph();
  const std::vector<uint8_t> &Cone = An->demandMask();
  for (const Instance &Inst : G.instances()) {
    for (unsigned P = 0; P < Inst.Cfg->numPoints(); ++P) {
      SourceLoc PLoc = Inst.Cfg->pointLoc(P);
      if (!PLoc.isValid() || PLoc.Line != Loc.Line)
        continue;
      if (Loc.Column != 0 && PLoc.Column != Loc.Column)
        continue;
      unsigned Node = G.node(Inst, P);
      if (Cone.empty() || !Cone[Node])
        return false;
    }
  }
  return true;
}

CheckResult AbstractDebugger::demandCheck(unsigned CheckId) const {
  requireDemandAnalyzed("demandCheck()");
  const std::vector<uint8_t> &Cone = An->demandMask();
  for (unsigned Node : CheckAnalysis::checkNodes(*An, CheckId))
    if (Cone.empty() || !Cone[Node])
      throw std::out_of_range(
          "demandCheck(): check " + std::to_string(CheckId) +
          " has sites outside the solved demand cone; query it through "
          "analyzeDemand(DemandSpec::check(id))");
  return CheckAnalysis::classifyCheck(*An, CheckId);
}

std::vector<PointState>
AbstractDebugger::mainStates(const std::string &DescFilter) const {
  requireAnalyzed("mainStates()");
  const SuperGraph &G = An->graph();
  const Instance &Main = G.instances()[0];
  std::vector<PointState> Out;
  for (unsigned P = 0; P < Main.Cfg->numPoints(); ++P) {
    if (!DescFilter.empty() &&
        Main.Cfg->pointDesc(P).find(DescFilter) == std::string::npos)
      continue;
    Out.push_back(pointState(*An, Main, P));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON renderings (stable keys; see schemas/findings.schema.json)
//===----------------------------------------------------------------------===//

json::Value NecessaryCondition::toJson() const {
  json::Value V = json::Value::object();
  V.set("line", Loc.Line);
  V.set("column", Loc.Column);
  if (!Var.empty())
    V.set("var", Var);
  V.set("condition", Condition);
  V.set("point", PointDesc);
  return V;
}

json::Value InvariantWarning::toJson() const {
  json::Value V = json::Value::object();
  V.set("line", Loc.Line);
  V.set("column", Loc.Column);
  V.set("message", Message);
  return V;
}

json::Value PointState::toJson() const {
  json::Value V = json::Value::object();
  V.set("line", Loc.Line);
  V.set("column", Loc.Column);
  V.set("routine", Routine);
  V.set("instance", InstanceId);
  V.set("point", PointDesc);
  V.set("reachable", Reachable);
  V.set("in_envelope", InEnvelope);
  json::Value Bs = json::Value::object();
  for (const StateBinding &B : Bindings)
    Bs.set(B.Var, B.Value);
  V.set("state", std::move(Bs));
  if (!PrunedVars.empty()) {
    json::Value Ps = json::Value::array();
    for (const std::string &P : PrunedVars)
      Ps.push(json::Value(P));
    V.set("pruned", std::move(Ps));
  }
  return V;
}
