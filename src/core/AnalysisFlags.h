//===- core/AnalysisFlags.h - Shared command-line flag parsing --*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One parser for the analysis and telemetry flags, shared by the CLI,
/// the examples and every benchmark — each of which used to hand-roll
/// its own (drifting) subset. Recognized flags:
///
///   --strategy=recursive|worklist|parallel   iteration strategy
///   --threads=N            workers for --strategy=parallel (0 = all)
///   --cache / --no-cache   memoizing transfer-function cache
///   --rounds=N             backward/forward refinement rounds
///   --narrowing=N          narrowing passes per ascending phase
///   --terminate            add the goal "the program must terminate"
///   --no-backward          forward analysis only
///   --context-insensitive  merge the call sites of each routine
///   --trace=FILE           write an event trace ("-" = stdout)
///   --trace-format=json|chrome   trace encoding (default json-lines)
///   --trace-detail         include per-lookup/per-clone detail events
///   --metrics-json=FILE    write a metrics snapshot ("-" = stdout)
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CORE_ANALYSISFLAGS_H
#define SYNTOX_CORE_ANALYSISFLAGS_H

#include "core/AbstractDebugger.h"
#include "semantics/AnalysisOptions.h"
#include "support/Trace.h"

#include <string>
#include <vector>

namespace syntox {

class AnalysisSession;

/// Where (and how) to export telemetry, as requested on a command line.
struct TelemetryFlags {
  std::string TracePath;   ///< --trace=; empty = off, "-" = stdout
  TraceFormat TraceFmt = TraceFormat::JsonLines; ///< --trace-format=
  bool TraceDetail = false;                      ///< --trace-detail
  std::string MetricsPath; ///< --metrics-json=; empty = off, "-" = stdout

  bool wantsTrace() const { return !TracePath.empty(); }
  bool wantsMetrics() const { return !MetricsPath.empty(); }
  /// Recorder mask honoring --trace-detail.
  uint32_t traceMask() const {
    return TraceDetail ? TraceRecorder::AllEvents
                       : TraceRecorder::DefaultEvents;
  }
};

/// Outcome of offering one argument to the shared parser.
enum class FlagParse {
  Consumed,        ///< recognized and applied
  NotAnalysisFlag, ///< not ours; the caller handles it
  Error,           ///< recognized but malformed (see the Error out-param)
};

/// Offers \p Arg to the shared parser, updating \p Opts / \p Telem.
FlagParse parseAnalysisFlag(const std::string &Arg, AnalysisOptions &Opts,
                            TelemetryFlags &Telem, std::string &Error);

/// Consumes every recognized flag from \p Args (erasing them in place;
/// unrecognized arguments are left for the caller). Returns false and
/// sets \p Error when a recognized flag is malformed.
bool parseAnalysisFlags(std::vector<std::string> &Args,
                        AnalysisOptions &Opts, TelemetryFlags &Telem,
                        std::string &Error);

/// Usage text describing every flag the shared parser accepts, for
/// embedding in --help output (one flag per line, indented).
const char *analysisFlagsHelp();

/// Parses a demand-query spec — "point:LINE[:COL]" or "assertion:ID" —
/// into \p Out. One grammar for every driver: the CLI's --query= flag
/// and the serve protocol's "query" member go through here. Returns
/// false with \p Error set on malformed input.
bool parseQuerySpec(const std::string &Spec, DemandSpec &Out,
                    std::string &Error);

/// Enables tracing on \p S as requested by \p Telem (no-op when no
/// --trace flag was given). Call before run().
void configureSessionTelemetry(AnalysisSession &S,
                               const TelemetryFlags &Telem);

/// Writes the --trace / --metrics-json outputs accumulated in \p S.
/// Returns false and sets \p Error on I/O failure.
bool writeTelemetryOutputs(AnalysisSession &S, const TelemetryFlags &Telem,
                           std::string &Error);

/// Variant over a raw recorder/registry, for tools that drive the engine
/// without an AnalysisSession (the benchmark binaries). Either pointer
/// may be null; the corresponding output is skipped.
bool writeTelemetryOutputs(TraceRecorder *Trace, const MetricsRegistry *Metrics,
                           const TelemetryFlags &Telem, std::string &Error);

} // namespace syntox

#endif // SYNTOX_CORE_ANALYSISFLAGS_H
