//===- core/AnalysisBatch.h - Cross-request analysis scheduling -*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch execution of many AnalysisSessions over one shared worker-slot
/// budget — the throughput layer under the future syntox_serve. A batch
/// composes two axes of parallelism without oversubscribing:
///
///  - *outer*: requests run concurrently on a batch-owned ThreadPool;
///  - *inner*: a request whose options select IterationStrategy::Parallel
///    spawns a nested solver pool, which borrows its workers from the
///    same ThreadBudget (workers inherit the budget; see ThreadPool.h).
///    On a saturated budget the nested pool is granted zero slots and
///    degrades to inline execution — correctness identical, threads
///    bounded.
///
/// The total number of live pool threads therefore never exceeds
/// Config::TotalThreads regardless of how requests and strategies mix.
///
/// Isolation: each request is a self-contained AnalysisSession over its
/// own source text; the engine's copy-on-write stores share nothing
/// across requests, so no cross-request synchronization is needed beyond
/// the scheduler itself. All sessions report into the batch-owned
/// MetricsRegistry (thread-safe), giving one aggregate metrics snapshot
/// for the whole batch.
///
/// Results are bitwise-identical to running each program through its own
/// sequential AnalysisSession: scheduling affects only *when* a request
/// runs, never what it computes.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CORE_ANALYSISBATCH_H
#define SYNTOX_CORE_ANALYSISBATCH_H

#include "core/AnalysisRequest.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace syntox {

class AnalysisBatch {
public:
  struct Config {
    /// Global worker-slot budget shared by the request pool and every
    /// nested parallel solver (0 = one slot per hardware thread).
    unsigned TotalThreads = 0;
    /// Cap on requests in flight at once (0 = up to the whole budget).
    /// Lowering it below TotalThreads leaves slots for nested parallel
    /// solvers inside each request.
    unsigned MaxConcurrentRequests = 0;
  };

  AnalysisBatch() = default;
  explicit AnalysisBatch(Config Cfg) : Cfg(Cfg) {}

  /// Queues \p R (the shared submission type — source, options,
  /// optional demand query) and returns its request index. The program
  /// is validated here; a frontend error is recorded and surfaces as a
  /// failed outcome (runAll never throws for it). Telemetry metrics
  /// are routed to the batch registry.
  unsigned add(AnalysisRequest R);

  /// Convenience: a full-analysis request for \p Source under \p Opts.
  unsigned add(std::string Source, AnalysisOptions Opts = {});

  /// Number of queued requests.
  unsigned size() const { return static_cast<unsigned>(Requests.size()); }

  /// One request's result, in the shared outcome type: OK with the
  /// frozen findings (or the partial demand result for query requests),
  /// or the frontend/runtime error that stopped it. Index is the add()
  /// order, which runAll()'s return preserves.
  using Outcome = AnalysisOutcome;

  /// Runs every queued request to completion and returns the outcomes in
  /// add() order. May be called again (e.g. a warm second wave): each
  /// call re-runs all requests.
  std::vector<Outcome> runAll();

  /// The batch-owned registry all sessions report into. Snapshot it for
  /// the batch-level metrics document.
  MetricsRegistry &metrics() { return Metrics; }

  /// Largest number of budgeted pool threads ever live at once across
  /// runAll() calls — the oversubscription guard's observable.
  unsigned peakLiveThreads() const { return PeakLive; }

private:
  struct Request {
    std::unique_ptr<AnalysisSession> Session; ///< null on frontend error
    std::optional<DemandSpec> Query;
    std::string Error;
  };

  Config Cfg;
  MetricsRegistry Metrics;
  std::vector<Request> Requests;
  unsigned PeakLive = 0;
};

} // namespace syntox

#endif // SYNTOX_CORE_ANALYSISBATCH_H
