//===- core/AnalysisBatch.cpp - Cross-request analysis scheduling ---------===//

#include "core/AnalysisBatch.h"

#include "support/Diagnostics.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace syntox;

unsigned AnalysisBatch::add(AnalysisRequest R) {
  unsigned Index = size();
  // Route every session's metrics into the batch registry. Session
  // run() only substitutes its own registry when none is set, so the
  // batch one sticks; the registry is thread-safe, so concurrent
  // requests may report into it freely.
  R.Opts.Telem.Metrics = &Metrics;
  Request Q;
  Q.Query = R.Query;
  DiagnosticsEngine Diags;
  Q.Session = AnalysisSession::create(std::move(R.Source), Diags,
                                      std::move(R.Opts));
  if (!Q.Session)
    Q.Error = Diags.str();
  Requests.push_back(std::move(Q));
  return Index;
}

unsigned AnalysisBatch::add(std::string Source, AnalysisOptions Opts) {
  AnalysisRequest R;
  R.Source = std::move(Source);
  R.Opts = std::move(Opts);
  return add(std::move(R));
}

std::vector<AnalysisBatch::Outcome> AnalysisBatch::runAll() {
  std::vector<Outcome> Outcomes(Requests.size());
  ThreadBudget Budget(Cfg.TotalThreads);
  unsigned Workers = Budget.total();
  if (Cfg.MaxConcurrentRequests)
    Workers = std::min(Workers, Cfg.MaxConcurrentRequests);
  {
    // The request pool draws from the budget like any other pool; its
    // workers inherit the budget, so nested parallel solvers inside
    // run() borrow whatever the request pool left over.
    ThreadBudget::Scope Scope(Budget);
    ThreadPool Pool(Workers);
    for (size_t I = 0; I < Requests.size(); ++I)
      Pool.submit([this, I, &Outcomes] {
        Request &R = Requests[I];
        Outcome &O = Outcomes[I];
        if (!R.Session) {
          O.Index = static_cast<unsigned>(I);
          O.Error = R.Error;
          return;
        }
        O = runRequest(*R.Session, R.Query);
        O.Index = static_cast<unsigned>(I);
        Metrics.histogram("batch.request_seconds").observe(O.Seconds);
      });
    // wait() + pool destruction publish every outcome slot to this
    // thread before the budget goes out of scope.
    Pool.wait();
  }
  PeakLive = std::max(PeakLive, Budget.peakLiveThreads());
  Metrics.counter("batch.requests").inc(Requests.size());
  Metrics.gauge("batch.peak_live_threads")
      .set(static_cast<int64_t>(PeakLive));
  return Outcomes;
}
