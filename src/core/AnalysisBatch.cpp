//===- core/AnalysisBatch.cpp - Cross-request analysis scheduling ---------===//

#include "core/AnalysisBatch.h"

#include "support/Diagnostics.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <exception>

using namespace syntox;

unsigned AnalysisBatch::add(std::string Source, AnalysisOptions Opts) {
  unsigned Index = size();
  // Route every session's metrics into the batch registry. Session
  // run() only substitutes its own registry when none is set, so the
  // batch one sticks; the registry is thread-safe, so concurrent
  // requests may report into it freely.
  Opts.Telem.Metrics = &Metrics;
  Request R;
  DiagnosticsEngine Diags;
  R.Session = AnalysisSession::create(std::move(Source), Diags,
                                      std::move(Opts));
  if (!R.Session)
    R.Error = Diags.str();
  Requests.push_back(std::move(R));
  return Index;
}

std::vector<AnalysisBatch::Outcome> AnalysisBatch::runAll() {
  std::vector<Outcome> Outcomes(Requests.size());
  ThreadBudget Budget(Cfg.TotalThreads);
  unsigned Workers = Budget.total();
  if (Cfg.MaxConcurrentRequests)
    Workers = std::min(Workers, Cfg.MaxConcurrentRequests);
  {
    // The request pool draws from the budget like any other pool; its
    // workers inherit the budget, so nested parallel solvers inside
    // run() borrow whatever the request pool left over.
    ThreadBudget::Scope Scope(Budget);
    ThreadPool Pool(Workers);
    for (size_t I = 0; I < Requests.size(); ++I)
      Pool.submit([this, I, &Outcomes] {
        Outcome &O = Outcomes[I];
        O.Index = static_cast<unsigned>(I);
        Request &R = Requests[I];
        if (!R.Session) {
          O.Error = R.Error;
          return;
        }
        auto Start = std::chrono::steady_clock::now();
        try {
          O.Result.emplace(R.Session->run());
          O.OK = true;
        } catch (const std::exception &E) {
          O.Error = E.what();
        }
        O.Seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
        Metrics.histogram("batch.request_seconds").observe(O.Seconds);
      });
    // wait() + pool destruction publish every outcome slot to this
    // thread before the budget goes out of scope.
    Pool.wait();
  }
  PeakLive = std::max(PeakLive, Budget.peakLiveThreads());
  Metrics.counter("batch.requests").inc(Requests.size());
  Metrics.gauge("batch.peak_live_threads")
      .set(static_cast<int64_t>(PeakLive));
  return Outcomes;
}
