//===- core/AnalysisSession.h - Session/result analysis API -----*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The preferred entry point to the abstract debugger: an AnalysisSession
/// holds a validated program plus the analysis configuration and the
/// telemetry plumbing (an owned MetricsRegistry, an optional owned
/// TraceRecorder); run() executes the full schedule and returns an
/// *immutable* AnalysisResult that owns every finding — necessary
/// conditions, invariant warnings, check classifications, statistics, a
/// metrics snapshot, and structured per-point state queries.
///
/// The split fixes the footgun of the bare AbstractDebugger API, where
/// results were mutable views into an object that a later analyze()
/// could silently invalidate: each run() freezes its engine behind
/// shared const ownership, so results outlive the session and never
/// change under the caller.
///
/// The session is also the sole owner of the persistent warm-start
/// cache composition (AnalysisOptions::CacheDir): it loads matching
/// recordings into the engine before the first run and saves them back
/// after every full run, so the CLI, AnalysisBatch and syntox_serve all
/// share one entry path — the engine itself knows nothing about disk.
///
/// Engine reuse: run() keeps the analyzed engine and, when nothing
/// observable holds a reference to it (no live AnalysisResult) and the
/// configuration is unchanged, re-analyzes it in place — the in-memory
/// warm-start chain then replays stable components at zero live steps,
/// which is what makes resubmit-after-edit traffic cheap for a
/// long-lived server. Results are bitwise-identical either way; only
/// iteration counters differ. Any outstanding result pins the engine
/// and forces the next run onto a fresh one, preserving immutability.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CORE_ANALYSISSESSION_H
#define SYNTOX_CORE_ANALYSISSESSION_H

#include "core/AbstractDebugger.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <memory>
#include <string>
#include <vector>

namespace syntox {

/// Immutable findings of one completed analysis run. Cheap to copy
/// (shared const ownership of the underlying debugger); valid after the
/// creating session is gone.
class AnalysisResult {
public:
  /// The whole-program verdict: false when the analysis proved that *no*
  /// input can satisfy the specification.
  bool someExecutionMaySatisfySpec() const {
    return Dbg->someExecutionMaySatisfySpec();
  }

  /// Derived necessary conditions of correctness at their origin points.
  const std::vector<NecessaryCondition> &conditions() const {
    return Dbg->conditions();
  }

  /// Invariant assertions the forward analysis could not discharge.
  const std::vector<InvariantWarning> &invariantWarnings() const {
    return Dbg->invariantWarnings();
  }

  /// Classification of every runtime check.
  const CheckAnalysis &checks() const { return Dbg->checks(); }

  /// Figure 2 statistics of this run.
  const AnalysisStats &stats() const { return Dbg->stats(); }

  /// Metrics snapshot taken when the run finished. Counters accumulate
  /// over the owning session's lifetime, so in a multi-run session this
  /// is "session totals as of this run".
  const json::Value &metrics() const { return MetricsSnapshot; }

  /// The abstract state at every control point matching \p Loc (zero
  /// column matches the whole line) — the structured statement
  /// inspector.
  std::vector<PointState> stateAt(SourceLoc Loc) const {
    return Dbg->stateAt(Loc);
  }

  /// The abstract state at every control point of the main routine
  /// (optionally filtered by point-description substring).
  std::vector<PointState> mainStates(const std::string &DescFilter = "") const {
    return Dbg->mainStates(DescFilter);
  }

  /// The complete findings document (verdict, conditions, warnings,
  /// checks, stats, metrics) with stable keys — see
  /// schemas/findings.schema.json.
  json::Value toJson() const;

  /// Read-only access to the underlying engine for advanced queries.
  const Analyzer &analyzer() const { return Dbg->analyzer(); }
  const AbstractDebugger &debugger() const { return *Dbg; }

private:
  friend class AnalysisSession;
  AnalysisResult(std::shared_ptr<const AbstractDebugger> Dbg,
                 json::Value MetricsSnapshot)
      : Dbg(std::move(Dbg)), MetricsSnapshot(std::move(MetricsSnapshot)) {}

  std::shared_ptr<const AbstractDebugger> Dbg;
  json::Value MetricsSnapshot;
};

/// Immutable result of one demand-driven query: the answer plus the
/// findings derived inside the solved cone. A *partial* result — only
/// the points inside the cone carry trustworthy values, and every
/// accessor that could touch an out-of-cone point refuses
/// (std::out_of_range) instead of answering from unspecified state.
/// Cheap to copy; valid after the creating session is gone.
class DemandResult {
public:
  /// What was asked.
  const DemandSpec &spec() const { return Spec; }

  /// Point query: the abstract state at every control point matching
  /// the queried location (empty for check queries and for locations
  /// matching no point — same contract as AnalysisResult::stateAt).
  const std::vector<PointState> &states() const { return States; }

  /// Check query: the classification of the queried check, or null for
  /// point queries. The CheckInfo pointer stays valid for this
  /// result's lifetime.
  const CheckResult *check() const {
    return Check.Info ? &Check : nullptr;
  }

  /// Follow-up state query against the same demand run. Throws
  /// std::out_of_range when any matching point is outside the cone.
  std::vector<PointState> stateAt(SourceLoc Loc) const {
    return Dbg->demandStateAt(Loc);
  }

  /// True when stateAt(\p Loc) will answer (every matching point is
  /// inside the solved cone).
  bool covers(SourceLoc Loc) const { return Dbg->demandCovers(Loc); }

  /// Necessary conditions whose origin lies inside the cone (equal to
  /// the full-analysis conditions at those points).
  const std::vector<NecessaryCondition> &conditions() const {
    return Dbg->demandConditions();
  }

  /// Invariant warnings derived inside the cone.
  const std::vector<InvariantWarning> &invariantWarnings() const {
    return Dbg->demandInvariantWarnings();
  }

  /// Statistics of the demand run (DemandedComponents/SkippedByDemand
  /// carry the cone accounting).
  const AnalysisStats &stats() const { return Dbg->stats(); }

  /// Metrics snapshot taken when the query finished.
  const json::Value &metrics() const { return MetricsSnapshot; }

  /// The partial-findings document — see schemas/demand.schema.json.
  json::Value toJson() const;

  /// Read-only access to the underlying engine (demandMask() etc.).
  const Analyzer &analyzer() const { return Dbg->analyzer(); }
  const AbstractDebugger &debugger() const { return *Dbg; }

private:
  friend class AnalysisSession;
  DemandResult(std::shared_ptr<const AbstractDebugger> Dbg,
               DemandSpec Spec, std::vector<PointState> States,
               CheckResult Check, json::Value MetricsSnapshot)
      : Dbg(std::move(Dbg)), Spec(Spec), States(std::move(States)),
        Check(Check), MetricsSnapshot(std::move(MetricsSnapshot)) {}

  std::shared_ptr<const AbstractDebugger> Dbg;
  DemandSpec Spec;
  std::vector<PointState> States;
  CheckResult Check; ///< Info null for point queries
  json::Value MetricsSnapshot;
};

/// A validated program plus configuration; factory of AnalysisResults.
class AnalysisSession {
public:
  /// Parses and validates \p Source. Returns null (with diagnostics in
  /// \p Diags) when the program has frontend errors.
  static std::unique_ptr<AnalysisSession>
  create(std::string Source, DiagnosticsEngine &Diags,
         AnalysisOptions Opts = {});

  ~AnalysisSession();

  /// Enables event tracing for subsequent run() calls and returns the
  /// recorder. Repeated calls replace the recorder (and drop any
  /// unflushed events) only when \p Mask differs.
  TraceRecorder &enableTracing(uint32_t Mask = TraceRecorder::DefaultEvents);

  /// The recorder installed by enableTracing, or null.
  TraceRecorder *traceRecorder() { return Trace.get(); }

  /// Merges and clears the events recorded so far into \p Sink.
  /// No-op without enableTracing().
  void flushTrace(TraceSink &Sink);

  /// The session-owned metrics registry (live values; results carry
  /// frozen snapshots).
  MetricsRegistry &metrics() { return Metrics; }

  /// Runs the full analysis schedule and returns the frozen findings.
  /// May be called repeatedly (e.g. after changing options()); earlier
  /// results remain valid and unchanged — when one is still alive the
  /// run analyzes a fresh engine, otherwise the previous engine is
  /// re-analyzed in place and its warm chain replays stable work.
  AnalysisResult run();

  /// Demand-driven point query: solves only the backward dependency
  /// cone of the control points matching \p Loc (replaying everything
  /// outside the cone from warm memos at zero live steps) and returns
  /// the frozen partial result. Answers are bitwise-identical to the
  /// same query against run(). Like run(), may be called repeatedly,
  /// with the same engine-reuse rule.
  DemandResult demandStateAt(SourceLoc Loc);

  /// Demand-driven check query: solves only the cone of runtime check
  /// \p CheckId (an id from the findings document / check table) and
  /// returns its classification. Throws std::out_of_range for an
  /// unknown check id.
  DemandResult demandCheck(unsigned CheckId);

  /// The analysis configuration used by the next run(). Telemetry
  /// members are managed by the session and reset on run().
  AnalysisOptions &options() { return Opts; }

private:
  AnalysisSession() = default;
  DemandResult runDemandQuery(const DemandSpec &Spec);
  /// The engine the next run will use: the kept one when it is
  /// uniquely owned, compatible with the current options, and \p
  /// ForDemand-admissible; a freshly created one otherwise. Bumps the
  /// "session.engine_reuses" counter on reuse.
  std::shared_ptr<AbstractDebugger> engineForRun(bool ForDemand);
  /// One-time per-engine load of the persistent warm cache, with the
  /// persist.* telemetry counters. No-op without CacheDir/WarmStart.
  void loadPersistCache(AbstractDebugger &Dbg);
  /// Saves the engine's recordings back to the cache directory after a
  /// full run (demand runs never save). No-op without CacheDir.
  void savePersistCache(const AbstractDebugger &Dbg);

  std::string Source;
  AnalysisOptions Opts;
  MetricsRegistry Metrics;
  std::unique_ptr<TraceRecorder> Trace;
  /// The engine of the last run, kept for warm reuse. A live
  /// AnalysisResult/DemandResult shares ownership, which is exactly
  /// the reuse gate: use_count() > 1 means someone can observe the
  /// engine, so the next run must not touch it.
  std::shared_ptr<AbstractDebugger> Engine;
  /// Options the kept engine was built with (reuse requires equality).
  AnalysisOptions EngineOpts;
  /// Whether the kept engine already probed the on-disk cache (the
  /// load happens once per engine, like the old per-debugger probe).
  bool EnginePersistProbed = false;
};

} // namespace syntox

#endif // SYNTOX_CORE_ANALYSISSESSION_H
