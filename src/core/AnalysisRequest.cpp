//===- core/AnalysisRequest.cpp - One submission model --------------------===//

#include "core/AnalysisRequest.h"

#include <chrono>
#include <exception>

using namespace syntox;

json::Value AnalysisOutcome::findingsJson() const {
  if (Demand)
    return Demand->toJson();
  return Result->toJson();
}

AnalysisOutcome syntox::runRequest(AnalysisSession &S,
                                   const std::optional<DemandSpec> &Query) {
  AnalysisOutcome O;
  auto Start = std::chrono::steady_clock::now();
  try {
    if (Query) {
      O.Demand.emplace(Query->K == DemandSpec::Kind::Point
                           ? S.demandStateAt(Query->Loc)
                           : S.demandCheck(Query->CheckId));
    } else {
      O.Result.emplace(S.run());
    }
    O.OK = true;
  } catch (const std::exception &E) {
    O.Error = E.what();
  }
  O.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  return O;
}

AnalysisOutcome syntox::runRequest(AnalysisRequest R) {
  DiagnosticsEngine Diags;
  std::unique_ptr<AnalysisSession> S = AnalysisSession::create(
      std::move(R.Source), Diags, std::move(R.Opts));
  if (!S) {
    AnalysisOutcome O;
    O.Error = Diags.str();
    return O;
  }
  return runRequest(*S, R.Query);
}
