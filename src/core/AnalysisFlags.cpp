//===- core/AnalysisFlags.cpp - Shared command-line flag parsing ----------===//

#include "core/AnalysisFlags.h"

#include "core/AnalysisSession.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace syntox;

/// Parses the value of a "--flag=N" argument as a non-negative integer.
static bool parseUnsigned(const std::string &Value, unsigned &Out) {
  if (Value.empty())
    return false;
  char *End = nullptr;
  unsigned long N = std::strtoul(Value.c_str(), &End, 10);
  if (*End != '\0')
    return false;
  Out = static_cast<unsigned>(N);
  return true;
}

FlagParse syntox::parseAnalysisFlag(const std::string &Arg,
                                    AnalysisOptions &Opts,
                                    TelemetryFlags &Telem,
                                    std::string &Error) {
  auto valueOf = [&](const char *Prefix) -> const char * {
    size_t Len = std::char_traits<char>::length(Prefix);
    return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
  };

  if (Arg == "--terminate") {
    Opts.TerminationGoal = true;
  } else if (Arg == "--no-backward") {
    Opts.UseBackward = false;
  } else if (Arg == "--context-insensitive") {
    Opts.ContextInsensitive = true;
  } else if (Arg == "--cache") {
    Opts.transferCache(true);
  } else if (Arg == "--no-cache") {
    Opts.transferCache(false);
  } else if (Arg == "--warm-start") {
    Opts.WarmStart = true;
  } else if (Arg == "--no-warm-start") {
    Opts.WarmStart = false;
  } else if (Arg == "--prune") {
    Opts.PruneDeadSlots = true;
  } else if (Arg == "--no-prune") {
    Opts.PruneDeadSlots = false;
  } else if (Arg == "--trace-detail") {
    Telem.TraceDetail = true;
  } else if (const char *V = valueOf("--rounds=")) {
    if (!parseUnsigned(V, Opts.BackwardRounds)) {
      Error = "invalid --rounds value '" + std::string(V) + "'";
      return FlagParse::Error;
    }
  } else if (const char *V = valueOf("--narrowing=")) {
    if (!parseUnsigned(V, Opts.NarrowingPasses)) {
      Error = "invalid --narrowing value '" + std::string(V) + "'";
      return FlagParse::Error;
    }
  } else if (const char *V = valueOf("--threads=")) {
    if (!parseUnsigned(V, Opts.NumThreads)) {
      Error = "invalid --threads value '" + std::string(V) + "'";
      return FlagParse::Error;
    }
  } else if (const char *V = valueOf("--strategy=")) {
    std::string Name = V;
    if (Name == "recursive") {
      Opts.Strategy = IterationStrategy::Recursive;
    } else if (Name == "worklist") {
      Opts.Strategy = IterationStrategy::Worklist;
    } else if (Name == "parallel") {
      Opts.Strategy = IterationStrategy::Parallel;
    } else {
      Error = "unknown strategy '" + Name +
              "' (expected recursive, worklist or parallel)";
      return FlagParse::Error;
    }
  } else if (const char *V = valueOf("--trace-format=")) {
    std::string Name = V;
    if (Name == "json") {
      Telem.TraceFmt = TraceFormat::JsonLines;
    } else if (Name == "chrome") {
      Telem.TraceFmt = TraceFormat::Chrome;
    } else {
      Error = "unknown trace format '" + Name +
              "' (expected json or chrome)";
      return FlagParse::Error;
    }
  } else if (const char *V = valueOf("--trace=")) {
    if (*V == '\0') {
      Error = "--trace needs a file name (or - for stdout)";
      return FlagParse::Error;
    }
    Telem.TracePath = V;
  } else if (const char *V = valueOf("--metrics-json=")) {
    if (*V == '\0') {
      Error = "--metrics-json needs a file name (or - for stdout)";
      return FlagParse::Error;
    }
    Telem.MetricsPath = V;
  } else if (const char *V = valueOf("--cache-dir=")) {
    if (*V == '\0') {
      Error = "--cache-dir needs a directory name";
      return FlagParse::Error;
    }
    Opts.CacheDir = V;
  } else {
    return FlagParse::NotAnalysisFlag;
  }
  return FlagParse::Consumed;
}

bool syntox::parseAnalysisFlags(std::vector<std::string> &Args,
                                AnalysisOptions &Opts,
                                TelemetryFlags &Telem, std::string &Error) {
  for (auto It = Args.begin(); It != Args.end();) {
    switch (parseAnalysisFlag(*It, Opts, Telem, Error)) {
    case FlagParse::Consumed:
      It = Args.erase(It);
      break;
    case FlagParse::NotAnalysisFlag:
      ++It;
      break;
    case FlagParse::Error:
      return false;
    }
  }
  return true;
}

bool syntox::parseQuerySpec(const std::string &Spec, DemandSpec &Out,
                            std::string &Error) {
  auto parseLoc = [](const std::string &Pt, SourceLoc &Loc) {
    size_t Colon = Pt.find(':');
    unsigned Line = 0, Column = 0;
    if (!parseUnsigned(Pt.substr(0, Colon), Line) || Line == 0)
      return false;
    if (Colon != std::string::npos &&
        !parseUnsigned(Pt.substr(Colon + 1), Column))
      return false;
    Loc.Line = Line;
    Loc.Column = Column;
    return true;
  };
  if (Spec.rfind("point:", 0) == 0) {
    SourceLoc Loc;
    if (!parseLoc(Spec.substr(6), Loc)) {
      Error = "invalid query '" + Spec + "' (expected point:LINE[:COL])";
      return false;
    }
    Out = DemandSpec::point(Loc);
    return true;
  }
  if (Spec.rfind("assertion:", 0) == 0) {
    unsigned Id = 0;
    if (!parseUnsigned(Spec.substr(10), Id)) {
      Error = "invalid query '" + Spec + "' (expected assertion:ID)";
      return false;
    }
    Out = DemandSpec::check(Id);
    return true;
  }
  Error = "invalid query '" + Spec +
          "' (expected point:LINE[:COL] or assertion:ID)";
  return false;
}

const char *syntox::analysisFlagsHelp() {
  return "  --strategy=recursive|worklist|parallel\n"
         "                       chaotic iteration strategy\n"
         "  --threads=N          workers for --strategy=parallel (0 = all)\n"
         "  --cache, --no-cache  memoizing transfer-function cache\n"
         "                       (default: auto-enabled for large token\n"
         "                       unfoldings)\n"
         "  --cache-dir=DIR      persistent warm-start cache: reruns\n"
         "                       replay unchanged analysis state from\n"
         "                       disk; edits re-solve only the changed\n"
         "                       components (results are identical)\n"
         "  --warm-start, --no-warm-start\n"
         "                       replay stable WTO components across\n"
         "                       refinement rounds (default on; results\n"
         "                       are identical either way)\n"
         "  --prune, --no-prune  liveness-driven dead-slot store pruning\n"
         "                       (default on; findings and live-variable\n"
         "                       states are identical, dead variables\n"
         "                       read as top)\n"
         "  --rounds=N           backward/forward refinement rounds\n"
         "  --narrowing=N        narrowing passes per ascending phase\n"
         "  --terminate          add the goal 'the program terminates'\n"
         "  --no-backward        forward analysis only\n"
         "  --context-insensitive\n"
         "                       merge the call sites of each routine\n"
         "  --trace=FILE         write an event trace (- = stdout)\n"
         "  --trace-format=json|chrome\n"
         "                       trace encoding (default json-lines)\n"
         "  --trace-detail       include cache, store-detach and\n"
         "                       store-prune events\n"
         "  --metrics-json=FILE  write a metrics snapshot (- = stdout)\n";
}

void syntox::configureSessionTelemetry(AnalysisSession &S,
                                       const TelemetryFlags &Telem) {
  if (Telem.wantsTrace())
    S.enableTracing(Telem.traceMask());
}

/// Runs \p Fn with the stream named by \p Path ("-" selects stdout).
template <typename Fn>
static bool withOutputStream(const std::string &Path, std::string &Error,
                             Fn &&F) {
  if (Path == "-") {
    F(std::cout);
    return true;
  }
  std::ofstream OS(Path);
  if (!OS) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  F(OS);
  OS.flush();
  if (!OS) {
    Error = "error writing '" + Path + "'";
    return false;
  }
  return true;
}

bool syntox::writeTelemetryOutputs(AnalysisSession &S,
                                   const TelemetryFlags &Telem,
                                   std::string &Error) {
  return writeTelemetryOutputs(S.traceRecorder(), &S.metrics(), Telem, Error);
}

bool syntox::writeTelemetryOutputs(TraceRecorder *Trace,
                                   const MetricsRegistry *Metrics,
                                   const TelemetryFlags &Telem,
                                   std::string &Error) {
  if (Telem.wantsTrace() && Trace) {
    bool Ok = withOutputStream(Telem.TracePath, Error, [&](std::ostream &OS) {
      StreamTraceSink Sink(OS, Telem.TraceFmt);
      Trace->flushTo(Sink);
    });
    if (!Ok)
      return false;
  }
  if (Telem.wantsMetrics() && Metrics) {
    bool Ok =
        withOutputStream(Telem.MetricsPath, Error, [&](std::ostream &OS) {
          OS << Metrics->snapshot().pretty() << '\n';
        });
    if (!Ok)
      return false;
  }
  return true;
}
