//===- core/AnalysisRequest.h - One submission model ------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one submission model shared by every driver of the analysis:
/// an AnalysisRequest is program text + options + an optional demand
/// query, and an AnalysisOutcome is the error-or-result of running it.
/// The CLI one-shot, AnalysisBatch and syntox_serve all build the same
/// request type and hand it to the same runner, instead of three ad-hoc
/// signatures — adding a capability (like the demand query) reaches all
/// three at once.
///
/// Two runners: the one-shot overload validates and runs in one step
/// (frontend errors surface in the outcome, never as exceptions); the
/// session overload runs a request against a caller-owned
/// AnalysisSession, which is how the batch and the server reuse warm
/// engines across resubmissions.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CORE_ANALYSISREQUEST_H
#define SYNTOX_CORE_ANALYSISREQUEST_H

#include "core/AnalysisSession.h"

#include <optional>
#include <string>

namespace syntox {

/// One unit of analysis work: what to analyze, how, and (optionally)
/// the single demand-driven question to answer instead of the full
/// schedule.
struct AnalysisRequest {
  std::string Source;
  AnalysisOptions Opts;
  /// When set, the request is a demand-driven query: only the query's
  /// backward dependency cone is solved and Outcome::Demand carries
  /// the partial result; otherwise the full schedule runs and
  /// Outcome::Result carries the frozen findings.
  std::optional<DemandSpec> Query;
};

/// The error-or-result of one request. Exactly one of Result / Demand
/// is set on success (matching AnalysisRequest::Query); Error is
/// non-empty on failure (frontend diagnostics, an out-of-cone demand
/// refusal, or a runtime error).
struct AnalysisOutcome {
  unsigned Index = 0; ///< submission order, for batch drivers
  bool OK = false;
  std::string Error;
  std::optional<AnalysisResult> Result;
  std::optional<DemandResult> Demand;
  double Seconds = 0.0; ///< wall-clock of the run itself

  /// The findings document of whichever result is present — the full
  /// findings (schemas/findings.schema.json) or the partial demand
  /// document. Must only be called when OK.
  json::Value findingsJson() const;
};

/// Runs \p Query (or, when unset, the full schedule) on \p S. Never
/// throws: exceptions from the engine surface as a failed outcome.
AnalysisOutcome runRequest(AnalysisSession &S,
                           const std::optional<DemandSpec> &Query =
                               std::nullopt);

/// One-shot: validates \p R's source and runs it. Frontend errors land
/// in the outcome (diagnostics rendered into Error). Metrics are routed
/// wherever R.Opts.Telem.Metrics points (a private registry otherwise).
AnalysisOutcome runRequest(AnalysisRequest R);

} // namespace syntox

#endif // SYNTOX_CORE_ANALYSISREQUEST_H
