//===- baselines/Baselines.h - Comparator analyses --------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison analyses of the paper's evaluation (§6.4/§6.5):
///  - the full abstract debugger (forward + backward, token unfolding),
///  - forward-only interval analysis (no backward propagation),
///  - Harrison-77 style: *greatest* fixpoint of the forward system
///    ("no semantic justification and gives poor results"),
///  - context-insensitive interprocedural analysis (call sites merged,
///    "at the cost of a loss of precision").
/// Each configuration is run over a program and summarized by precision
/// (check discharge, range tightness) and cost.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_BASELINES_BASELINES_H
#define SYNTOX_BASELINES_BASELINES_H

#include "checks/CheckAnalysis.h"
#include "semantics/Analyzer.h"

#include <string>
#include <vector>

namespace syntox {

/// Which analysis configuration to run.
enum class BaselineKind {
  FullAbstractDebugging,
  ForwardOnly,
  HarrisonGfp,
  ContextInsensitive,
};

const char *baselineKindName(BaselineKind Kind);

/// Translates a baseline into analyzer options.
Analyzer::Options baselineOptions(BaselineKind Kind);

/// Measured outcome of one configuration on one program.
struct BaselineOutcome {
  BaselineKind Kind = BaselineKind::FullAbstractDebugging;
  CheckSummary Checks;
  /// Sum over all reachable points and integer variables of the count of
  /// finite interval bounds — a simple, monotone precision score (higher
  /// is tighter).
  uint64_t FiniteBounds = 0;
  /// Number of unreachable (bottom) points proved.
  uint64_t BottomPoints = 0;
  double Seconds = 0.0;
  uint64_t ControlPoints = 0;

  std::string str() const;
};

/// Runs one configuration over an already-built program CFG.
BaselineOutcome runBaseline(BaselineKind Kind, const ProgramCfg &Cfg,
                            RoutineDecl *Program);

/// Runs every configuration.
std::vector<BaselineOutcome> runAllBaselines(const ProgramCfg &Cfg,
                                             RoutineDecl *Program);

} // namespace syntox

#endif // SYNTOX_BASELINES_BASELINES_H
