//===- baselines/Baselines.cpp - Comparator analyses ----------------------===//

#include "baselines/Baselines.h"

#include <chrono>
#include <cstdio>

using namespace syntox;

const char *syntox::baselineKindName(BaselineKind Kind) {
  switch (Kind) {
  case BaselineKind::FullAbstractDebugging:
    return "abstract-debugging";
  case BaselineKind::ForwardOnly:
    return "forward-only";
  case BaselineKind::HarrisonGfp:
    return "harrison-gfp";
  case BaselineKind::ContextInsensitive:
    return "context-insensitive";
  }
  return "?";
}

Analyzer::Options syntox::baselineOptions(BaselineKind Kind) {
  Analyzer::Options Opts;
  switch (Kind) {
  case BaselineKind::FullAbstractDebugging:
    break;
  case BaselineKind::ForwardOnly:
    Opts.UseBackward = false;
    break;
  case BaselineKind::HarrisonGfp:
    Opts.HarrisonGfp = true;
    break;
  case BaselineKind::ContextInsensitive:
    Opts.ContextInsensitive = true;
    break;
  }
  return Opts;
}

std::string BaselineOutcome::str() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%-20s checks: %u safe / %u total (%.0f%% eliminable), "
                "finite bounds: %llu, points: %llu, time: %.4fs",
                baselineKindName(Kind), Checks.Safe + Checks.Unreachable,
                Checks.Total, 100.0 * Checks.eliminationRatio(),
                (unsigned long long)FiniteBounds,
                (unsigned long long)ControlPoints, Seconds);
  return Buf;
}

BaselineOutcome syntox::runBaseline(BaselineKind Kind, const ProgramCfg &Cfg,
                                    RoutineDecl *Program) {
  BaselineOutcome Out;
  Out.Kind = Kind;
  auto Start = std::chrono::steady_clock::now();
  Analyzer An(Cfg, Program, baselineOptions(Kind));
  An.run();
  Out.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Out.ControlPoints = An.graph().numNodes();

  CheckAnalysis Checks(An);
  Out.Checks = Checks.summary();

  const IntervalDomain &D = An.storeOps().domain();
  for (unsigned Node = 0; Node < An.graph().numNodes(); ++Node) {
    const AbstractStore &S = An.forwardAt(Node);
    if (S.isBottom()) {
      ++Out.BottomPoints;
      continue;
    }
    S.forEachEntry([&](const VarDecl *, const AbsValue &Value) {
      if (!Value.isInt())
        return;
      const Interval &I = Value.asInt();
      Out.FiniteBounds += I.Lo > D.minValue();
      Out.FiniteBounds += I.Hi < D.maxValue();
    });
  }
  return Out;
}

std::vector<BaselineOutcome>
syntox::runAllBaselines(const ProgramCfg &Cfg, RoutineDecl *Program) {
  std::vector<BaselineOutcome> Out;
  for (BaselineKind Kind :
       {BaselineKind::FullAbstractDebugging, BaselineKind::ForwardOnly,
        BaselineKind::HarrisonGfp, BaselineKind::ContextInsensitive})
    Out.push_back(runBaseline(Kind, Cfg, Program));
  return Out;
}
