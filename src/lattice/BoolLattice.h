//===- lattice/BoolLattice.h - Four-valued boolean lattice ------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat boolean lattice {_|_, true, false, T} used to abstract Pascal
/// boolean variables and the outcome of comparison tests.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_LATTICE_BOOLLATTICE_H
#define SYNTOX_LATTICE_BOOLLATTICE_H

#include <cassert>
#include <string>

namespace syntox {

/// Abstract boolean value.
class BoolLattice {
public:
  enum Kind { Bottom, False, True, Top };

  BoolLattice() : K(Bottom) {}
  /*implicit*/ BoolLattice(bool B) : K(B ? True : False) {}

  static BoolLattice bottom() { return BoolLattice(Bottom); }
  static BoolLattice top() { return BoolLattice(Top); }

  Kind kind() const { return K; }
  bool isBottom() const { return K == Bottom; }
  bool isTop() const { return K == Top; }
  bool mayBeTrue() const { return K == True || K == Top; }
  bool mayBeFalse() const { return K == False || K == Top; }
  bool isConstant() const { return K == True || K == False; }
  bool constantValue() const {
    assert(isConstant() && "not a boolean constant");
    return K == True;
  }

  bool operator==(const BoolLattice &Other) const = default;

  bool leq(const BoolLattice &Other) const {
    return K == Bottom || Other.K == Top || K == Other.K;
  }

  BoolLattice join(const BoolLattice &Other) const {
    if (K == Bottom)
      return Other;
    if (Other.K == Bottom)
      return *this;
    if (K == Other.K)
      return *this;
    return top();
  }

  BoolLattice meet(const BoolLattice &Other) const {
    if (K == Top)
      return Other;
    if (Other.K == Top)
      return *this;
    if (K == Other.K)
      return *this;
    return bottom();
  }

  /// Three-valued logical negation.
  BoolLattice logicalNot() const {
    switch (K) {
    case Bottom:
      return bottom();
    case False:
      return BoolLattice(true);
    case True:
      return BoolLattice(false);
    case Top:
      return top();
    }
    assert(false && "unknown kind");
    return top();
  }

  /// Three-valued conjunction (Kleene).
  BoolLattice logicalAnd(const BoolLattice &Other) const {
    if (K == Bottom || Other.K == Bottom)
      return bottom();
    if (K == False || Other.K == False)
      return BoolLattice(false);
    if (K == True && Other.K == True)
      return BoolLattice(true);
    return top();
  }

  /// Three-valued disjunction (Kleene).
  BoolLattice logicalOr(const BoolLattice &Other) const {
    if (K == Bottom || Other.K == Bottom)
      return bottom();
    if (K == True || Other.K == True)
      return BoolLattice(true);
    if (K == False && Other.K == False)
      return BoolLattice(false);
    return top();
  }

  std::string str() const {
    switch (K) {
    case Bottom:
      return "_|_";
    case False:
      return "false";
    case True:
      return "true";
    case Top:
      return "T";
    }
    return "?";
  }

private:
  explicit BoolLattice(Kind K) : K(K) {}
  Kind K;
};

} // namespace syntox

#endif // SYNTOX_LATTICE_BOOLLATTICE_H
