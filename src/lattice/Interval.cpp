//===- lattice/Interval.cpp - The interval lattice I(Z_b) -----------------===//

#include "lattice/Interval.h"

#include <algorithm>
#include <cmath>

using namespace syntox;

std::string Interval::str() const {
  if (isBottom())
    return "_|_";
  return "[" + std::to_string(Lo) + ", " + std::to_string(Hi) + "]";
}

CmpOp syntox::negateCmp(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return CmpOp::NE;
  case CmpOp::NE:
    return CmpOp::EQ;
  case CmpOp::LT:
    return CmpOp::GE;
  case CmpOp::LE:
    return CmpOp::GT;
  case CmpOp::GT:
    return CmpOp::LE;
  case CmpOp::GE:
    return CmpOp::LT;
  }
  assert(false && "unknown comparison");
  return CmpOp::EQ;
}

CmpOp syntox::swapCmp(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return CmpOp::EQ;
  case CmpOp::NE:
    return CmpOp::NE;
  case CmpOp::LT:
    return CmpOp::GT;
  case CmpOp::LE:
    return CmpOp::GE;
  case CmpOp::GT:
    return CmpOp::LT;
  case CmpOp::GE:
    return CmpOp::LE;
  }
  assert(false && "unknown comparison");
  return CmpOp::EQ;
}

const char *syntox::cmpOpName(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return "=";
  case CmpOp::NE:
    return "<>";
  case CmpOp::LT:
    return "<";
  case CmpOp::LE:
    return "<=";
  case CmpOp::GT:
    return ">";
  case CmpOp::GE:
    return ">=";
  }
  assert(false && "unknown comparison");
  return "?";
}

//===----------------------------------------------------------------------===//
// Saturating bound arithmetic
//===----------------------------------------------------------------------===//

int64_t IntervalDomain::clamp(int64_t V) const {
  return std::max(MinV, std::min(MaxV, V));
}

int64_t IntervalDomain::satAdd(int64_t A, int64_t B) const {
  __int128 R = static_cast<__int128>(A) + B;
  if (R < MinV)
    return MinV;
  if (R > MaxV)
    return MaxV;
  return static_cast<int64_t>(R);
}

int64_t IntervalDomain::satSub(int64_t A, int64_t B) const {
  __int128 R = static_cast<__int128>(A) - B;
  if (R < MinV)
    return MinV;
  if (R > MaxV)
    return MaxV;
  return static_cast<int64_t>(R);
}

int64_t IntervalDomain::satMul(int64_t A, int64_t B) const {
  __int128 R = static_cast<__int128>(A) * B;
  if (R < MinV)
    return MinV;
  if (R > MaxV)
    return MaxV;
  return static_cast<int64_t>(R);
}

//===----------------------------------------------------------------------===//
// Lattice structure
//===----------------------------------------------------------------------===//

Interval IntervalDomain::make(int64_t Lo, int64_t Hi) const {
  // Empty, or entirely outside Z_b.
  if (Lo > Hi || Hi < MinV || Lo > MaxV)
    return bottom();
  return Interval(clamp(Lo), clamp(Hi));
}

bool IntervalDomain::leq(const Interval &X, const Interval &Y) const {
  if (X.isBottom())
    return true;
  if (Y.isBottom())
    return false;
  return Y.Lo <= X.Lo && X.Hi <= Y.Hi;
}

Interval IntervalDomain::join(const Interval &X, const Interval &Y) const {
  if (X.isBottom())
    return Y;
  if (Y.isBottom())
    return X;
  return Interval(std::min(X.Lo, Y.Lo), std::max(X.Hi, Y.Hi));
}

Interval IntervalDomain::meet(const Interval &X, const Interval &Y) const {
  if (X.isBottom() || Y.isBottom())
    return bottom();
  int64_t Lo = std::max(X.Lo, Y.Lo);
  int64_t Hi = std::min(X.Hi, Y.Hi);
  if (Lo > Hi)
    return bottom();
  return Interval(Lo, Hi);
}

Interval IntervalDomain::widen(const Interval &X, const Interval &Y) const {
  // _|_ V x = x V _|_ = x (paper §6.1).
  if (X.isBottom())
    return Y;
  if (Y.isBottom())
    return X;
  int64_t Lo = Y.Lo < X.Lo ? MinV : X.Lo;
  int64_t Hi = Y.Hi > X.Hi ? MaxV : X.Hi;
  return Interval(Lo, Hi);
}

Interval IntervalDomain::widenWithThresholds(
    const Interval &X, const Interval &Y,
    const std::vector<int64_t> &Thresholds) const {
  if (X.isBottom())
    return Y;
  if (Y.isBottom())
    return X;
  int64_t Lo = X.Lo;
  if (Y.Lo < X.Lo) {
    // Largest threshold <= Y.Lo, else w-.
    Lo = MinV;
    for (int64_t T : Thresholds) {
      if (T <= Y.Lo)
        Lo = std::max(Lo, clamp(T));
      else
        break;
    }
  }
  int64_t Hi = X.Hi;
  if (Y.Hi > X.Hi) {
    // Smallest threshold >= Y.Hi, else w+.
    Hi = MaxV;
    for (auto It = Thresholds.rbegin(); It != Thresholds.rend(); ++It) {
      if (*It >= Y.Hi)
        Hi = std::min(Hi, clamp(*It));
      else
        break;
    }
  }
  return Interval(Lo, Hi);
}

Interval IntervalDomain::narrow(const Interval &X, const Interval &Y) const {
  // _|_ A x = x A _|_ = _|_ (paper §6.1).
  if (X.isBottom() || Y.isBottom())
    return bottom();
  int64_t Lo = X.Lo == MinV ? Y.Lo : std::min(X.Lo, Y.Lo);
  int64_t Hi = X.Hi == MaxV ? Y.Hi : std::max(X.Hi, Y.Hi);
  if (Lo > Hi)
    return bottom();
  return Interval(Lo, Hi);
}

//===----------------------------------------------------------------------===//
// Forward arithmetic
//===----------------------------------------------------------------------===//

Interval IntervalDomain::add(const Interval &A, const Interval &B) const {
  if (A.isBottom() || B.isBottom())
    return bottom();
  return Interval(satAdd(A.Lo, B.Lo), satAdd(A.Hi, B.Hi));
}

Interval IntervalDomain::sub(const Interval &A, const Interval &B) const {
  if (A.isBottom() || B.isBottom())
    return bottom();
  return Interval(satSub(A.Lo, B.Hi), satSub(A.Hi, B.Lo));
}

Interval IntervalDomain::mul(const Interval &A, const Interval &B) const {
  if (A.isBottom() || B.isBottom())
    return bottom();
  int64_t C[4] = {satMul(A.Lo, B.Lo), satMul(A.Lo, B.Hi), satMul(A.Hi, B.Lo),
                  satMul(A.Hi, B.Hi)};
  return Interval(*std::min_element(C, C + 4), *std::max_element(C, C + 4));
}

/// Truncating quotient on __int128 to avoid INT64_MIN / -1 overflow.
static int64_t truncQuot(int64_t A, int64_t B, int64_t MinV, int64_t MaxV) {
  assert(B != 0 && "division by zero");
  __int128 Q = static_cast<__int128>(A) / B;
  if (Q < MinV)
    return MinV;
  if (Q > MaxV)
    return MaxV;
  return static_cast<int64_t>(Q);
}

Interval IntervalDomain::div(const Interval &A, const Interval &B) const {
  if (A.isBottom() || B.isBottom())
    return bottom();
  Interval Result = bottom();
  // Split the divisor into its strictly positive and strictly negative
  // halves; division by zero is an error, not a value.
  for (const Interval &Half :
       {meet(B, make(1, MaxV)), meet(B, make(MinV, -1))}) {
    if (Half.isBottom())
      continue;
    int64_t C[4] = {truncQuot(A.Lo, Half.Lo, MinV, MaxV),
                    truncQuot(A.Lo, Half.Hi, MinV, MaxV),
                    truncQuot(A.Hi, Half.Lo, MinV, MaxV),
                    truncQuot(A.Hi, Half.Hi, MinV, MaxV)};
    Result = join(Result, Interval(*std::min_element(C, C + 4),
                                   *std::max_element(C, C + 4)));
  }
  return Result;
}

Interval IntervalDomain::mod(const Interval &A, const Interval &B) const {
  if (A.isBottom() || B.isBottom())
    return bottom();
  // Largest divisor magnitude, excluding zero.
  int64_t MaxAbs = 0;
  Interval Pos = meet(B, make(1, MaxV));
  Interval Neg = meet(B, make(MinV, -1));
  if (!Pos.isBottom())
    MaxAbs = std::max(MaxAbs, Pos.Hi);
  if (!Neg.isBottom())
    MaxAbs = std::max(MaxAbs, Neg.Lo == INT64_MIN ? INT64_MAX : -Neg.Lo);
  if (MaxAbs == 0)
    return bottom(); // divisor is exactly {0}
  int64_t M = MaxAbs - 1;
  // Result has the sign of the dividend and magnitude <= min(|a|, |b|-1).
  int64_t Lo = A.Lo >= 0 ? 0 : std::max(A.Lo, -M);
  int64_t Hi = A.Hi <= 0 ? 0 : std::min(A.Hi, M);
  return make(Lo, Hi);
}

Interval IntervalDomain::neg(const Interval &A) const {
  if (A.isBottom())
    return bottom();
  return Interval(clamp(satSub(0, A.Hi)), clamp(satSub(0, A.Lo)));
}

Interval IntervalDomain::abs(const Interval &A) const {
  if (A.isBottom())
    return bottom();
  if (A.Lo >= 0)
    return A;
  if (A.Hi <= 0)
    return neg(A);
  return Interval(0, std::max(satSub(0, A.Lo), A.Hi));
}

Interval IntervalDomain::sqr(const Interval &A) const {
  Interval Ab = abs(A);
  if (Ab.isBottom())
    return bottom();
  return Interval(satMul(Ab.Lo, Ab.Lo), satMul(Ab.Hi, Ab.Hi));
}

//===----------------------------------------------------------------------===//
// Backward arithmetic
//===----------------------------------------------------------------------===//

/// Forward operations saturate at the Z_b bounds, so a result bound sitting
/// at w-/w+ may have been produced by *any* sufficiently extreme operand.
/// These guards widen a computed preimage candidate back to the domain
/// bound on the saturating side, keeping backward refinement sound. The
/// direction depends on the monotonicity of the forward operation in the
/// operand being refined.

/// Guard for an operand the operation is *increasing* in.
static Interval guardInc(Interval C, const Interval &R, int64_t MinV,
                         int64_t MaxV) {
  if (C.isBottom() || R.isBottom())
    return C;
  if (R.Lo <= MinV)
    C.Lo = MinV;
  if (R.Hi >= MaxV)
    C.Hi = MaxV;
  return C;
}

/// Guard for an operand the operation is *decreasing* in.
static Interval guardDec(Interval C, const Interval &R, int64_t MinV,
                         int64_t MaxV) {
  if (C.isBottom() || R.isBottom())
    return C;
  if (R.Lo <= MinV)
    C.Hi = MaxV;
  if (R.Hi >= MaxV)
    C.Lo = MinV;
  return C;
}

/// True when a result bound sits at a domain bound, i.e. saturation may
/// have occurred. Non-monotone operations skip refinement entirely then.
static bool touchesDomainBounds(const Interval &R, int64_t MinV,
                                int64_t MaxV) {
  return !R.isBottom() && (R.Lo <= MinV || R.Hi >= MaxV);
}

std::pair<Interval, Interval>
IntervalDomain::bwdAdd(const Interval &R, const Interval &A,
                       const Interval &B) const {
  if (R.isBottom() || A.isBottom() || B.isBottom())
    return {bottom(), bottom()};
  Interval NewA = meet(A, guardInc(sub(R, B), R, MinV, MaxV));
  if (NewA.isBottom())
    return {bottom(), bottom()};
  Interval NewB = meet(B, guardInc(sub(R, NewA), R, MinV, MaxV));
  if (NewB.isBottom())
    return {bottom(), bottom()};
  return {NewA, NewB};
}

std::pair<Interval, Interval>
IntervalDomain::bwdSub(const Interval &R, const Interval &A,
                       const Interval &B) const {
  if (R.isBottom() || A.isBottom() || B.isBottom())
    return {bottom(), bottom()};
  Interval NewA = meet(A, guardInc(add(R, B), R, MinV, MaxV));
  if (NewA.isBottom())
    return {bottom(), bottom()};
  // a - b is decreasing in b.
  Interval NewB = meet(B, guardDec(sub(NewA, R), R, MinV, MaxV));
  if (NewB.isBottom())
    return {bottom(), bottom()};
  return {NewA, NewB};
}

/// Conservative interval of a with "a * b in R possible" for some b in B.
/// Uses floor/ceil quotients of all endpoint combinations over the nonzero
/// halves of B. If 0 in B and 0 in R, any a is possible.
static Interval divPreimageQuot(const IntervalDomain &D, const Interval &R,
                                const Interval &B) {
  if (B.contains(0) && R.contains(0))
    return D.top();
  auto FloorDiv = [](__int128 Num, __int128 Den) -> __int128 {
    __int128 Q = Num / Den;
    return Q - ((Num % Den != 0 && ((Num < 0) != (Den < 0))) ? 1 : 0);
  };
  auto CeilDiv = [](__int128 Num, __int128 Den) -> __int128 {
    __int128 Q = Num / Den;
    return Q + ((Num % Den != 0 && ((Num < 0) == (Den < 0))) ? 1 : 0);
  };
  auto Clamp = [&D](__int128 V) -> int64_t {
    if (V < D.minValue())
      return D.minValue();
    if (V > D.maxValue())
      return D.maxValue();
    return static_cast<int64_t>(V);
  };

  Interval Out = Interval::bottom();
  for (const Interval &Half :
       {D.meet(B, D.make(1, D.maxValue())),
        D.meet(B, D.make(D.minValue(), -1))}) {
    if (Half.isBottom())
      continue;
    if (Half.isSingleton()) {
      // Exact: {a : a*b in R} = [ceil(R.Lo/b), floor(R.Hi/b)] for b > 0,
      // mirrored for b < 0.
      __int128 Bv = Half.Lo;
      __int128 Lo = Bv > 0 ? CeilDiv(R.Lo, Bv) : CeilDiv(R.Hi, Bv);
      __int128 Hi = Bv > 0 ? FloorDiv(R.Hi, Bv) : FloorDiv(R.Lo, Bv);
      if (Lo <= Hi)
        Out = D.join(Out, D.make(Clamp(Lo), Clamp(Hi)));
      continue;
    }
    int64_t Lo = INT64_MAX, Hi = INT64_MIN;
    for (int64_t Rv : {R.Lo, R.Hi}) {
      for (int64_t Bv : {Half.Lo, Half.Hi}) {
        int64_t F = Clamp(FloorDiv(Rv, Bv));
        int64_t C = Clamp(CeilDiv(Rv, Bv));
        Lo = std::min({Lo, F, C});
        Hi = std::max({Hi, F, C});
      }
    }
    Out = D.join(Out, D.make(Lo, Hi));
  }
  return Out;
}

std::pair<Interval, Interval>
IntervalDomain::bwdMul(const Interval &R, const Interval &A,
                       const Interval &B) const {
  if (R.isBottom() || A.isBottom() || B.isBottom())
    return {bottom(), bottom()};
  // Multiplication is not monotone, and a saturated result may come from
  // arbitrarily extreme operands of either sign: skip refinement then.
  if (touchesDomainBounds(R, MinV, MaxV))
    return {A, B};
  Interval NewA = meet(A, divPreimageQuot(*this, R, B));
  if (NewA.isBottom())
    return {bottom(), bottom()};
  Interval NewB = meet(B, divPreimageQuot(*this, R, NewA));
  if (NewB.isBottom())
    return {bottom(), bottom()};
  return {NewA, NewB};
}

std::pair<Interval, Interval>
IntervalDomain::bwdDiv(const Interval &R, const Interval &A,
                       const Interval &B) const {
  if (R.isBottom() || A.isBottom() || B.isBottom())
    return {bottom(), bottom()};
  // a div b = r implies a in [r*b - (|b|-1), r*b + (|b|-1)].
  Interval Pos = meet(B, make(1, MaxV));
  Interval Neg = meet(B, make(MinV, -1));
  if (Pos.isBottom() && Neg.isBottom())
    return {bottom(), bottom()}; // division by {0} never succeeds
  int64_t MaxAbs = 0;
  if (!Pos.isBottom())
    MaxAbs = std::max(MaxAbs, Pos.Hi);
  if (!Neg.isBottom())
    MaxAbs = std::max(MaxAbs, Neg.Lo == INT64_MIN ? INT64_MAX : -Neg.Lo);
  Interval NewA = A;
  // Quotient clamping can only happen when a result bound is at w-/w+
  // (|a div b| <= |a|); skip dividend refinement in that case.
  if (!touchesDomainBounds(R, MinV, MaxV)) {
    Interval Prod = bottom();
    if (!Pos.isBottom())
      Prod = join(Prod, mul(R, Pos));
    if (!Neg.isBottom())
      Prod = join(Prod, mul(R, Neg));
    Interval CandA(satSub(Prod.Lo, MaxAbs - 1), satAdd(Prod.Hi, MaxAbs - 1));
    NewA = meet(A, CandA);
  }
  if (NewA.isBottom())
    return {bottom(), bottom()};
  // Divisor refinement: drop 0 (division by zero is an error).
  Interval NewB = B;
  if (NewB.Lo == 0)
    NewB = meet(NewB, make(1, MaxV));
  else if (NewB.Hi == 0)
    NewB = meet(NewB, make(MinV, -1));
  if (NewB.isBottom())
    return {bottom(), bottom()};
  return {NewA, NewB};
}

std::pair<Interval, Interval>
IntervalDomain::bwdMod(const Interval &R, const Interval &A,
                       const Interval &B) const {
  if (R.isBottom() || A.isBottom() || B.isBottom())
    return {bottom(), bottom()};
  // The result has the sign of the dividend.
  Interval NewA = A;
  if (R.Lo > 0)
    NewA = meet(NewA, make(1, MaxV));
  else if (R.Hi < 0)
    NewA = meet(NewA, make(MinV, -1));
  // |r| < |b|: when the divisor is known positive, b > max(|R| lower bound).
  Interval NewB = B;
  if (NewB.Lo == 0)
    NewB = meet(NewB, make(1, MaxV));
  else if (NewB.Hi == 0)
    NewB = meet(NewB, make(MinV, -1));
  if (!NewB.isBottom() && NewB.Lo >= 1) {
    int64_t MinAbsR = 0;
    if (R.Lo > 0)
      MinAbsR = R.Lo;
    else if (R.Hi < 0)
      MinAbsR = R.Hi == INT64_MIN ? INT64_MAX : -R.Hi;
    if (MinAbsR > 0 && MinAbsR < INT64_MAX)
      NewB = meet(NewB, make(satAdd(MinAbsR, 1), MaxV));
  }
  if (NewA.isBottom() || NewB.isBottom())
    return {bottom(), bottom()};
  return {NewA, NewB};
}

Interval IntervalDomain::bwdNeg(const Interval &R, const Interval &A) const {
  if (R.isBottom() || A.isBottom())
    return bottom();
  // Negation is decreasing.
  return meet(A, guardDec(neg(R), R, MinV, MaxV));
}

Interval IntervalDomain::bwdAbs(const Interval &R, const Interval &A) const {
  if (R.isBottom() || A.isBottom())
    return bottom();
  Interval NonNeg = meet(R, nonNegative());
  if (NonNeg.isBottom())
    return bottom(); // |a| is never negative
  Interval Cand = join(NonNeg, neg(NonNeg));
  // |a| saturates at w+ for very negative a on asymmetric domains.
  if (R.Hi >= MaxV)
    Cand.Lo = MinV;
  return meet(A, Cand);
}

Interval IntervalDomain::bwdSqr(const Interval &R, const Interval &A) const {
  if (R.isBottom() || A.isBottom())
    return bottom();
  if (R.Hi < 0)
    return bottom(); // a^2 is never negative
  // Saturation: a result at w+ may come from any sufficiently large |a|.
  if (R.Hi >= MaxV)
    return A;
  // |a| <= floor(sqrt(R.Hi)).
  double Approx = std::sqrt(static_cast<double>(R.Hi));
  int64_t S = static_cast<int64_t>(Approx) + 2;
  while (S > 0 && satMul(S, S) > R.Hi)
    --S;
  Interval Cand(clamp(-S), clamp(S));
  return meet(A, Cand);
}

//===----------------------------------------------------------------------===//
// Comparison tests
//===----------------------------------------------------------------------===//

bool IntervalDomain::cmpMayBeTrue(CmpOp Op, const Interval &A,
                                  const Interval &B) const {
  if (A.isBottom() || B.isBottom())
    return false;
  switch (Op) {
  case CmpOp::EQ:
    return !meet(A, B).isBottom();
  case CmpOp::NE:
    return !(A.isSingleton() && B.isSingleton() && A.Lo == B.Lo);
  case CmpOp::LT:
    return A.Lo < B.Hi;
  case CmpOp::LE:
    return A.Lo <= B.Hi;
  case CmpOp::GT:
    return A.Hi > B.Lo;
  case CmpOp::GE:
    return A.Hi >= B.Lo;
  }
  assert(false && "unknown comparison");
  return true;
}

bool IntervalDomain::cmpMayBeFalse(CmpOp Op, const Interval &A,
                                   const Interval &B) const {
  return cmpMayBeTrue(negateCmp(Op), A, B);
}

std::pair<Interval, Interval>
IntervalDomain::assumeCmp(CmpOp Op, const Interval &A,
                          const Interval &B) const {
  if (A.isBottom() || B.isBottom())
    return {bottom(), bottom()};
  switch (Op) {
  case CmpOp::EQ: {
    Interval M = meet(A, B);
    return {M, M};
  }
  case CmpOp::NE: {
    Interval NewA = A;
    Interval NewB = B;
    if (B.isSingleton()) {
      if (NewA.isSingleton() && NewA.Lo == B.Lo)
        NewA = bottom();
      else if (NewA.Lo == B.Lo)
        NewA = Interval(NewA.Lo + 1, NewA.Hi);
      else if (NewA.Hi == B.Lo)
        NewA = Interval(NewA.Lo, NewA.Hi - 1);
    }
    if (A.isSingleton() && !NewA.isBottom()) {
      if (NewB.isSingleton() && NewB.Lo == A.Lo)
        NewB = bottom();
      else if (NewB.Lo == A.Lo)
        NewB = Interval(NewB.Lo + 1, NewB.Hi);
      else if (NewB.Hi == A.Lo)
        NewB = Interval(NewB.Lo, NewB.Hi - 1);
    }
    if (NewA.isBottom() || NewB.isBottom())
      return {bottom(), bottom()};
    return {NewA, NewB};
  }
  case CmpOp::LT: {
    Interval NewA = meet(A, make(MinV, satSub(B.Hi, 1)));
    Interval NewB =
        meet(B, make(satAdd(NewA.isBottom() ? A.Lo : NewA.Lo, 1), MaxV));
    if (NewA.isBottom() || NewB.isBottom())
      return {bottom(), bottom()};
    return {NewA, NewB};
  }
  case CmpOp::LE: {
    Interval NewA = meet(A, make(MinV, B.Hi));
    Interval NewB = meet(B, make(NewA.isBottom() ? A.Lo : NewA.Lo, MaxV));
    if (NewA.isBottom() || NewB.isBottom())
      return {bottom(), bottom()};
    return {NewA, NewB};
  }
  case CmpOp::GT:
  case CmpOp::GE: {
    auto [NewB, NewA] = assumeCmp(swapCmp(Op), B, A);
    return {NewA, NewB};
  }
  }
  assert(false && "unknown comparison");
  return {A, B};
}

std::string IntervalDomain::str(const Interval &X) const {
  if (X.isBottom())
    return "_|_";
  std::string Lo = X.Lo <= MinV ? "-oo" : std::to_string(X.Lo);
  std::string Hi = X.Hi >= MaxV ? "+oo" : std::to_string(X.Hi);
  return "[" + Lo + ", " + Hi + "]";
}
