//===- lattice/Interval.h - The interval lattice I(Z_b) ---------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval lattice I(Z_b) of paper §6.1, where Z_b is the set of
/// integers between w- and w+ (the machine bounds). Top is [w-, w+]; there
/// are no separate infinities — "unbounded" means a bound has reached w- or
/// w+, exactly as in the paper. The domain is parameterized by the bounds
/// so property tests can exhaustively enumerate a tiny Z_b.
///
/// Besides the standard lattice operations and the paper's widening and
/// narrowing operators, this file provides:
///  - forward abstract arithmetic (the [x := e] primitives are built on it),
///  - *backward* (inverse) arithmetic used by the [x := e]⁻¹ primitives,
///  - forward and backward comparison tests (the [i < 100] primitives).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_LATTICE_INTERVAL_H
#define SYNTOX_LATTICE_INTERVAL_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace syntox {

/// A closed integer interval [Lo, Hi]. Bottom (the empty interval) is
/// canonically represented as [1, 0]. Plain data; all semantics live in
/// IntervalDomain, which knows the Z_b bounds.
struct Interval {
  int64_t Lo = 1;
  int64_t Hi = 0;

  Interval() = default; // bottom
  Interval(int64_t Lo, int64_t Hi) : Lo(Lo), Hi(Hi) {}

  static Interval bottom() { return Interval(); }
  static Interval singleton(int64_t V) { return Interval(V, V); }

  bool isBottom() const { return Lo > Hi; }
  bool isSingleton() const { return Lo == Hi; }

  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }

  bool operator==(const Interval &Other) const {
    if (isBottom() && Other.isBottom())
      return true;
    return Lo == Other.Lo && Hi == Other.Hi;
  }

  /// Renders as "[lo, hi]" with "-oo"/"+oo" for the Z_b bounds of \p D,
  /// or "_|_" for bottom (see IntervalDomain::str for the bound-aware
  /// rendering; this one prints raw numbers).
  std::string str() const;
};

/// Mixes \p V into the running hash \p H (boost-style combiner). Shared
/// by the interval and store hashes of the transfer-function cache.
inline uint64_t hashCombine(uint64_t H, uint64_t V) {
  return H ^ (V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
}

/// 64-bit hash of an interval, consistent with operator==: every bottom
/// representation hashes alike, and equal intervals hash equal. Used as
/// part of the transfer-function cache key.
inline uint64_t hashValue(const Interval &X) {
  if (X.isBottom())
    return 0x7b10bb04ed2c4045ull;
  uint64_t H = 0x243f6a8885a308d3ull;
  H = hashCombine(H, static_cast<uint64_t>(X.Lo));
  H = hashCombine(H, static_cast<uint64_t>(X.Hi));
  return H;
}

/// Comparison operators for the abstract test primitives.
enum class CmpOp { EQ, NE, LT, LE, GT, GE };

/// Returns the negation of \p Op (e.g. LT -> GE).
CmpOp negateCmp(CmpOp Op);
/// Returns the operator with swapped operands (e.g. LT -> GT).
CmpOp swapCmp(CmpOp Op);
/// Renders "=", "<>", "<", "<=", ">", ">=".
const char *cmpOpName(CmpOp Op);

/// The interval domain over Z_b = [MinValue, MaxValue].
///
/// All operations are total and sound: forward operations over-approximate
/// the image of the concrete operation, backward operations over-approximate
/// the preimage restricted to the given argument intervals.
class IntervalDomain {
public:
  /// Constructs I(Z_b) with the given machine bounds (w- and w+).
  IntervalDomain(int64_t MinValue = INT64_MIN, int64_t MaxValue = INT64_MAX)
      : MinV(MinValue), MaxV(MaxValue) {
    assert(MinValue < MaxValue && "degenerate domain");
  }

  int64_t minValue() const { return MinV; }
  int64_t maxValue() const { return MaxV; }

  Interval top() const { return Interval(MinV, MaxV); }
  Interval bottom() const { return Interval::bottom(); }

  /// Builds [Lo, Hi] clamped into Z_b; returns bottom if empty after
  /// clamping.
  Interval make(int64_t Lo, int64_t Hi) const;

  /// The set of non-negative elements [0, w+].
  Interval nonNegative() const { return Interval(0, MaxV); }

  bool isTop(const Interval &X) const {
    return !X.isBottom() && X.Lo <= MinV && X.Hi >= MaxV;
  }

  /// Partial order: X ⊑ Y.
  bool leq(const Interval &X, const Interval &Y) const;

  Interval join(const Interval &X, const Interval &Y) const;
  Interval meet(const Interval &X, const Interval &Y) const;

  /// The widening operator of paper §6.1: unstable bounds jump to w-/w+.
  Interval widen(const Interval &X, const Interval &Y) const;

  /// Widening with thresholds: an unstable bound jumps to the nearest
  /// enclosing threshold instead of all the way to w-/w+. \p Thresholds
  /// must be sorted ascending. This is the §6.1 remark that "more
  /// sophisticated widening operators can easily be designed".
  Interval widenWithThresholds(const Interval &X, const Interval &Y,
                               const std::vector<int64_t> &Thresholds) const;

  /// The narrowing operator of paper §6.1: only bounds at w-/w+ are
  /// refined.
  Interval narrow(const Interval &X, const Interval &Y) const;

  /// \name Forward abstract arithmetic
  /// Results saturate at the Z_b bounds (concrete overflow is modeled as
  /// saturation; the concrete interpreter saturates identically).
  /// @{
  Interval add(const Interval &A, const Interval &B) const;
  Interval sub(const Interval &A, const Interval &B) const;
  Interval mul(const Interval &A, const Interval &B) const;
  /// Truncating division; the divisor is implicitly refined to exclude 0
  /// (division by zero is a runtime error handled by the check machinery).
  /// Returns bottom if B is {0} or bottom.
  Interval div(const Interval &A, const Interval &B) const;
  /// a mod b with the sign of the dividend (matches the interpreter);
  /// divisor implicitly refined to exclude 0.
  Interval mod(const Interval &A, const Interval &B) const;
  Interval neg(const Interval &A) const;
  Interval abs(const Interval &A) const;
  Interval sqr(const Interval &A) const;
  /// @}

  /// \name Backward (inverse) abstract arithmetic
  /// Given the result interval R of an operation and the current operand
  /// intervals, returns refined operand intervals: every concrete operand
  /// pair whose result lies in R (and whose operands lie in A x B) lies in
  /// the returned pair. Refinement never *adds* values: results are always
  /// ⊑ the inputs.
  /// @{
  std::pair<Interval, Interval> bwdAdd(const Interval &R, const Interval &A,
                                       const Interval &B) const;
  std::pair<Interval, Interval> bwdSub(const Interval &R, const Interval &A,
                                       const Interval &B) const;
  std::pair<Interval, Interval> bwdMul(const Interval &R, const Interval &A,
                                       const Interval &B) const;
  std::pair<Interval, Interval> bwdDiv(const Interval &R, const Interval &A,
                                       const Interval &B) const;
  std::pair<Interval, Interval> bwdMod(const Interval &R, const Interval &A,
                                       const Interval &B) const;
  Interval bwdNeg(const Interval &R, const Interval &A) const;
  Interval bwdAbs(const Interval &R, const Interval &A) const;
  Interval bwdSqr(const Interval &R, const Interval &A) const;
  /// @}

  /// \name Comparison tests
  /// @{
  /// May the comparison "A op B" evaluate to true / to false?
  bool cmpMayBeTrue(CmpOp Op, const Interval &A, const Interval &B) const;
  bool cmpMayBeFalse(CmpOp Op, const Interval &A, const Interval &B) const;

  /// Refines (A, B) under the assumption "A op B" holds — the abstract
  /// test primitive [a op b] of paper §4. Sound: every concrete pair in
  /// A x B satisfying the comparison lies in the result.
  std::pair<Interval, Interval> assumeCmp(CmpOp Op, const Interval &A,
                                          const Interval &B) const;
  /// @}

  /// Renders \p X with "-oo"/"+oo" when a bound sits at w-/w+.
  std::string str(const Interval &X) const;

private:
  int64_t clamp(int64_t V) const;
  /// Saturating arithmetic on bounds (never overflows int64).
  int64_t satAdd(int64_t A, int64_t B) const;
  int64_t satSub(int64_t A, int64_t B) const;
  int64_t satMul(int64_t A, int64_t B) const;

  int64_t MinV;
  int64_t MaxV;
};

} // namespace syntox

#endif // SYNTOX_LATTICE_INTERVAL_H
