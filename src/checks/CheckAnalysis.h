//===- checks/CheckAnalysis.h - Static check classification -----*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies every runtime check site against the forward analysis:
/// statically safe (the compiler can drop the check — paper §6.5's array
/// bound check elimination), unreachable, certainly failing, or possibly
/// failing. Classification uses the *pure forward* invariant, never the
/// backward-refined envelope: eliminating a check must not assume that
/// the program meets its specification.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CHECKS_CHECKANALYSIS_H
#define SYNTOX_CHECKS_CHECKANALYSIS_H

#include "semantics/Analyzer.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace syntox {

/// Verdict for one check site.
enum class CheckVerdict {
  Safe,        ///< proved to pass on every execution reaching it
  Unreachable, ///< no execution reaches the check
  MustFail,    ///< every execution reaching it fails
  MayFail,     ///< not proved either way
};

const char *checkVerdictName(CheckVerdict Verdict);

/// Stable machine-readable verdict key for JSON output ("safe",
/// "unreachable", "must_fail", "may_fail").
const char *checkVerdictKey(CheckVerdict Verdict);

/// Classification of one check site, aggregated over every activation
/// instance containing it.
struct CheckResult {
  const CheckInfo *Info = nullptr;
  CheckVerdict Verdict = CheckVerdict::MayFail;
  /// Join of the checked expression's values over all reaching states.
  Interval Observed;

  std::string str(const IntervalDomain &D) const;
  /// Stable JSON rendering (schemas/findings.schema.json).
  json::Value toJson(const IntervalDomain &D) const;
};

/// Summary counters for a program.
struct CheckSummary {
  unsigned Total = 0;
  unsigned Safe = 0;
  unsigned Unreachable = 0;
  unsigned MustFail = 0;
  unsigned MayFail = 0;

  /// Fraction of checks a compiler can remove (safe + unreachable).
  double eliminationRatio() const {
    return Total == 0 ? 1.0
                      : static_cast<double>(Safe + Unreachable) / Total;
  }

  /// Stable JSON rendering (schemas/findings.schema.json).
  json::Value toJson() const;
};

/// Runs the classification against a finished Analyzer.
class CheckAnalysis {
public:
  explicit CheckAnalysis(const Analyzer &An);

  /// The verdict for one check site given the join \p Observed of the
  /// checked value over every reaching state (\p SeenReachable false
  /// when no instance of the check is forward-reachable). The single
  /// classification rule shared by the full table and the demand path.
  static CheckVerdict classify(const IntervalDomain &D,
                               const CheckInfo &Info,
                               const Interval &Observed,
                               bool SeenReachable);

  /// Classifies one check site against \p An without building the full
  /// table — the demand-query path. Requires An's forward values to be
  /// valid at every edge performing the check (a demand run seeded
  /// with checkNodes() guarantees this by construction). Throws
  /// std::out_of_range for an unknown check id.
  static CheckResult classifyCheck(const Analyzer &An, unsigned CheckId);

  /// The source nodes of every supergraph edge performing check
  /// \p CheckId, across all activation instances — the demand-query
  /// seed set for a check query.
  static std::vector<unsigned> checkNodes(const Analyzer &An,
                                          unsigned CheckId);

  const std::vector<CheckResult> &results() const { return Results; }
  CheckSummary summary() const;

  /// True when every check in the program is statically discharged
  /// (paper §6.5: "every array access statically correct").
  bool allSafe() const;

  /// {"summary": ..., "results": [...]} — see
  /// schemas/findings.schema.json.
  json::Value toJson() const;

private:
  const Analyzer &An;
  std::vector<CheckResult> Results;
};

} // namespace syntox

#endif // SYNTOX_CHECKS_CHECKANALYSIS_H
