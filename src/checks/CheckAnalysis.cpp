//===- checks/CheckAnalysis.cpp - Static check classification -------------===//

#include "checks/CheckAnalysis.h"

#include <stdexcept>

using namespace syntox;

const char *syntox::checkVerdictName(CheckVerdict Verdict) {
  switch (Verdict) {
  case CheckVerdict::Safe:
    return "safe";
  case CheckVerdict::Unreachable:
    return "unreachable";
  case CheckVerdict::MustFail:
    return "must fail";
  case CheckVerdict::MayFail:
    return "may fail";
  }
  return "?";
}

const char *syntox::checkVerdictKey(CheckVerdict Verdict) {
  switch (Verdict) {
  case CheckVerdict::Safe:
    return "safe";
  case CheckVerdict::Unreachable:
    return "unreachable";
  case CheckVerdict::MustFail:
    return "must_fail";
  case CheckVerdict::MayFail:
    return "may_fail";
  }
  return "?";
}

std::string CheckResult::str(const IntervalDomain &D) const {
  std::string Out = Info->Loc.str();
  Out += ": ";
  Out += checkKindName(Info->Kind);
  Out += " check on ";
  Out += Info->Subject;
  Out += ": ";
  Out += checkVerdictName(Verdict);
  if (Verdict != CheckVerdict::Unreachable) {
    Out += " (observed ";
    Out += D.str(Observed);
    if (Info->Kind != CheckKind::DivByZero) {
      Out += ", required [" + std::to_string(Info->Lo) + ", " +
             std::to_string(Info->Hi) + "]";
    } else {
      Out += ", required <> 0";
    }
    Out += ")";
  }
  return Out;
}

CheckAnalysis::CheckAnalysis(const Analyzer &An) : An(An) {
  const SuperGraph &G = An.graph();
  const StoreOps &Ops = An.storeOps();
  const IntervalDomain &D = Ops.domain();
  const ExprSemantics &Exprs = An.exprSemantics();

  // Aggregate the checked value over every instance of every check edge.
  struct PerCheck {
    Interval Observed = Interval::bottom();
    bool SeenReachable = false;
  };
  const ProgramCfg *Cfg = nullptr;
  std::vector<PerCheck> Per;

  for (const SuperEdge &E : G.edges()) {
    if (E.K != SuperEdge::Kind::Local ||
        E.Act->K != Action::Kind::Check)
      continue;
    const Instance &Inst = G.instanceOf(E.From);
    // All instances share the same ProgramCfg; recover it lazily from
    // the check table sizes via the Analyzer-provided stores only.
    const AbstractStore &In = An.forwardAt(E.From);
    if (Per.size() <= E.Act->CheckId)
      Per.resize(E.Act->CheckId + 1);
    PerCheck &P = Per[E.Act->CheckId];
    if (In.isBottom())
      continue;
    P.SeenReachable = true;
    P.Observed = D.join(P.Observed, Exprs.evalInt(E.Act->Value, In,
                                                  Inst.Frame));
  }
  (void)Cfg;

  // Build results from the check table of the CFG (recovered through the
  // analyzer's graph: every check id below Per.size() or in the table).
  const std::vector<CheckInfo> &Table = An.checkTable();
  Results.reserve(Table.size());
  for (const CheckInfo &Info : Table) {
    CheckResult R;
    R.Info = &Info;
    PerCheck P = Info.Id < Per.size() ? Per[Info.Id] : PerCheck();
    R.Observed = P.Observed;
    R.Verdict = classify(D, Info, P.Observed, P.SeenReachable);
    Results.push_back(R);
  }
}

CheckVerdict CheckAnalysis::classify(const IntervalDomain &D,
                                     const CheckInfo &Info,
                                     const Interval &Observed,
                                     bool SeenReachable) {
  if (!SeenReachable || Observed.isBottom())
    return CheckVerdict::Unreachable;
  switch (Info.Kind) {
  case CheckKind::ArrayBound:
  case CheckKind::SubrangeBound: {
    Interval Required = D.make(Info.Lo, Info.Hi);
    if (D.leq(Observed, Required))
      return CheckVerdict::Safe;
    if (D.meet(Observed, Required).isBottom())
      return CheckVerdict::MustFail;
    return CheckVerdict::MayFail;
  }
  case CheckKind::DivByZero:
    if (!Observed.contains(0))
      return CheckVerdict::Safe;
    if (Observed.isSingleton())
      return CheckVerdict::MustFail;
    return CheckVerdict::MayFail;
  case CheckKind::CaseMatch:
    // Reaching the fallthrough is itself the error.
    return CheckVerdict::MustFail;
  }
  return CheckVerdict::MayFail;
}

CheckResult CheckAnalysis::classifyCheck(const Analyzer &An,
                                         unsigned CheckId) {
  const SuperGraph &G = An.graph();
  const IntervalDomain &D = An.storeOps().domain();
  const ExprSemantics &Exprs = An.exprSemantics();
  const CheckInfo *Info = nullptr;
  for (const CheckInfo &I : An.checkTable())
    if (I.Id == CheckId) {
      Info = &I;
      break;
    }
  if (!Info)
    throw std::out_of_range("no runtime check with id " +
                            std::to_string(CheckId));
  CheckResult R;
  R.Info = Info;
  Interval Observed = Interval::bottom();
  bool SeenReachable = false;
  for (const SuperEdge &E : G.edges()) {
    if (E.K != SuperEdge::Kind::Local ||
        E.Act->K != Action::Kind::Check || E.Act->CheckId != CheckId)
      continue;
    const AbstractStore &In = An.forwardAt(E.From);
    if (In.isBottom())
      continue;
    SeenReachable = true;
    Observed = D.join(
        Observed, Exprs.evalInt(E.Act->Value, In, G.instanceOf(E.From).Frame));
  }
  R.Observed = Observed;
  R.Verdict = classify(D, *Info, Observed, SeenReachable);
  return R;
}

std::vector<unsigned> CheckAnalysis::checkNodes(const Analyzer &An,
                                                unsigned CheckId) {
  std::vector<unsigned> Out;
  for (const SuperEdge &E : An.graph().edges())
    if (E.K == SuperEdge::Kind::Local &&
        E.Act->K == Action::Kind::Check && E.Act->CheckId == CheckId)
      Out.push_back(E.From);
  return Out;
}

CheckSummary CheckAnalysis::summary() const {
  CheckSummary S;
  S.Total = static_cast<unsigned>(Results.size());
  for (const CheckResult &R : Results) {
    switch (R.Verdict) {
    case CheckVerdict::Safe:
      ++S.Safe;
      break;
    case CheckVerdict::Unreachable:
      ++S.Unreachable;
      break;
    case CheckVerdict::MustFail:
      ++S.MustFail;
      break;
    case CheckVerdict::MayFail:
      ++S.MayFail;
      break;
    }
  }
  return S;
}

bool CheckAnalysis::allSafe() const {
  for (const CheckResult &R : Results) {
    if (R.Info->InputValidation)
      continue; // input checks are inherently dynamic
    if (R.Verdict == CheckVerdict::MayFail ||
        R.Verdict == CheckVerdict::MustFail)
      return false;
  }
  return true;
}

json::Value CheckResult::toJson(const IntervalDomain &D) const {
  json::Value V = json::Value::object();
  V.set("id", Info->Id);
  V.set("kind", checkKindKey(Info->Kind));
  V.set("subject", Info->Subject);
  V.set("line", Info->Loc.Line);
  V.set("column", Info->Loc.Column);
  V.set("verdict", checkVerdictKey(Verdict));
  if (Verdict != CheckVerdict::Unreachable)
    V.set("observed", D.str(Observed));
  if (Info->Kind != CheckKind::DivByZero) {
    V.set("required_lo", Info->Lo);
    V.set("required_hi", Info->Hi);
  }
  V.set("input_validation", Info->InputValidation);
  return V;
}

json::Value CheckSummary::toJson() const {
  json::Value V = json::Value::object();
  V.set("total", Total);
  V.set("safe", Safe);
  V.set("unreachable", Unreachable);
  V.set("must_fail", MustFail);
  V.set("may_fail", MayFail);
  V.set("elimination_ratio", eliminationRatio());
  return V;
}

json::Value CheckAnalysis::toJson() const {
  json::Value V = json::Value::object();
  V.set("summary", summary().toJson());
  json::Value Rs = json::Value::array();
  const IntervalDomain &D = An.storeOps().domain();
  for (const CheckResult &R : Results)
    Rs.push(R.toJson(D));
  V.set("results", std::move(Rs));
  return V;
}
