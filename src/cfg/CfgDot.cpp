//===- cfg/CfgDot.cpp - Graphviz dumpers -----------------------------------===//

#include "cfg/CfgDot.h"

#include "frontend/PrettyPrinter.h"

using namespace syntox;

static std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string syntox::actionLabel(const Action &A, const ProgramCfg *Checks) {
  switch (A.K) {
  case Action::Kind::Nop:
    return "";
  case Action::Kind::Assign:
    return A.Var->name() + " := " + printExpr(A.Value);
  case Action::Kind::ArrayStore:
    return A.Var->name() + "[" + printExpr(A.Index) +
           "] := " + printExpr(A.Value);
  case Action::Kind::ReadScalar:
    return "read(" + A.Var->name() + ")";
  case Action::Kind::ReadArray:
    return "read(" + A.Var->name() + "[" + printExpr(A.Index) + "])";
  case Action::Kind::Assume:
    return std::string("[") + (A.Sense ? "" : "not ") + printExpr(A.Value) +
           "]";
  case Action::Kind::Check: {
    std::string Label = "check " + printExpr(A.Value);
    if (Checks) {
      const CheckInfo &Info = Checks->check(A.CheckId);
      if (Info.Kind == CheckKind::DivByZero)
        Label += " <> 0";
      else
        Label += " in [" + std::to_string(Info.Lo) + ", " +
                 std::to_string(Info.Hi) + "]";
    }
    return Label;
  }
  case Action::Kind::Invariant:
    return "invariant " + printExpr(A.Value);
  case Action::Kind::Call: {
    std::string Label = "call " + A.Call->callee();
    if (A.ResultVar)
      Label = A.ResultVar->name() + " := " + Label;
    return Label;
  }
  }
  return "?";
}

static void renderRoutine(const RoutineCfg &Cfg, const ProgramCfg *Checks,
                          const std::string &Prefix, std::string &Out) {
  for (unsigned P = 0; P < Cfg.numPoints(); ++P) {
    Out += "  " + Prefix + std::to_string(P) + " [label=\"" +
           std::to_string(P) + ": " + escape(Cfg.pointDesc(P)) + "\"";
    if (P == Cfg.entry())
      Out += ", shape=box";
    if (P == Cfg.exit())
      Out += ", shape=doublecircle";
    Out += "];\n";
  }
  for (const CfgEdge &E : Cfg.edges()) {
    Out += "  " + Prefix + std::to_string(E.From) + " -> " + Prefix +
           std::to_string(E.To);
    std::string Label = actionLabel(E.Act, Checks);
    if (!Label.empty())
      Out += " [label=\"" + escape(Label) + "\"]";
    Out += ";\n";
  }
}

std::string syntox::toDot(const RoutineCfg &Cfg) {
  std::string Out = "digraph \"" + escape(Cfg.routine()->name()) + "\" {\n";
  renderRoutine(Cfg, nullptr, "n", Out);
  Out += "}\n";
  return Out;
}

std::string syntox::toDot(const ProgramCfg &Cfg) {
  std::string Out = "digraph program {\n";
  unsigned Index = 0;
  for (const RoutineCfg *Routine : Cfg.cfgs()) {
    std::string Prefix = "r" + std::to_string(Index++) + "_";
    Out += "  subgraph \"cluster_" + escape(Routine->routine()->name()) +
           "\" {\n  label=\"" + escape(Routine->routine()->name()) +
           "\";\n";
    renderRoutine(*Routine, &Cfg, Prefix, Out);
    Out += "  }\n";
  }
  Out += "}\n";
  return Out;
}
