//===- cfg/CfgDot.h - Graphviz dumpers --------------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz renderers for the per-routine CFGs — handy for debugging the
/// lowering and for documentation. The supergraph has its own dumper in
/// the semantics layer (it needs instance information).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CFG_CFGDOT_H
#define SYNTOX_CFG_CFGDOT_H

#include "cfg/Cfg.h"

#include <string>

namespace syntox {

/// Renders one routine's CFG as a Graphviz digraph.
std::string toDot(const RoutineCfg &Cfg);

/// Renders every routine of the program, one cluster per routine.
std::string toDot(const ProgramCfg &Cfg);

/// One-line description of an action, e.g. "i := i + 1", "[i < 100]",
/// "check idx in [1,100]".
std::string actionLabel(const Action &A, const ProgramCfg *Checks);

} // namespace syntox

#endif // SYNTOX_CFG_CFGDOT_H
