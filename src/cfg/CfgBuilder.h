//===- cfg/CfgBuilder.h - AST to CFG lowering -------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically-checked program into per-routine CFGs:
///  - nested calls are flattened into temporaries so every call is its
///    own edge,
///  - runtime checks (array bounds, subranges, div-by-zero, case
///    coverage) are materialized as Check edges in evaluation order,
///  - `for` and `case` are desugared into tests and assignments,
///  - local gotos become edges; non-local gotos become exits through the
///    routine's *channels*, which are propagated over the call graph so a
///    caller of a routine that may jump non-locally owns the matching
///    re-raise channel.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CFG_CFGBUILDER_H
#define SYNTOX_CFG_CFGBUILDER_H

#include "cfg/Cfg.h"
#include "frontend/Ast.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>

namespace syntox {

/// Conservative side-effect query: may executing \p S modify \p V?
/// Any routine call is assumed to clobber everything.
bool mayModifyVar(const Stmt *S, const VarDecl *V);

class CfgBuilder {
public:
  CfgBuilder(AstContext &Ctx, DiagnosticsEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  /// Builds CFGs for the program and every nested routine, including the
  /// channel fixpoint over the call graph.
  std::unique_ptr<ProgramCfg> build(RoutineDecl *Program);

private:
  void buildRoutine(RoutineDecl *R);
  void propagateChannels();

  unsigned lowerStmt(Stmt *S, unsigned Cur);
  unsigned lowerScalarAssign(SourceLoc Loc, VarDecl *Target, Expr *Value,
                             unsigned Cur);
  unsigned lowerCall(CallExpr *CE, unsigned Cur, VarDecl **ResultOut);

  /// Flattens \p E starting at *Cur: emits Call and Check edges and
  /// returns a call-free expression equivalent to E.
  Expr *flattenExpr(Expr *E, unsigned &Cur);

  VarDecl *makeTemp(const Type *Ty);
  unsigned newPoint(SourceLoc Loc, const std::string &Desc);
  unsigned labelPoint(int64_t Label);

  // Typed expression construction helpers.
  VarRefExpr *varRef(VarDecl *V);
  Expr *intLit(int64_t V);
  Expr *cmp(BinaryOp Op, Expr *L, Expr *R);
  Expr *conj(Expr *L, Expr *R); ///< null-tolerant 'and'
  Expr *disj(Expr *L, Expr *R); ///< null-tolerant 'or'

  AstContext &Ctx;
  DiagnosticsEngine &Diags;
  std::unique_ptr<ProgramCfg> Prog;
  RoutineCfg *Cur = nullptr;       ///< CFG being built
  RoutineDecl *CurRoutine = nullptr;
  unsigned TempCounter = 0;
  std::map<int64_t, unsigned> PendingLabels; ///< label -> point (per routine)
};

} // namespace syntox

#endif // SYNTOX_CFG_CFGBUILDER_H
