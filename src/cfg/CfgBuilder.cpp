//===- cfg/CfgBuilder.cpp - AST to CFG lowering ---------------------------===//

#include "cfg/CfgBuilder.h"

#include <cassert>

using namespace syntox;

const char *syntox::checkKindName(CheckKind Kind) {
  switch (Kind) {
  case CheckKind::ArrayBound:
    return "array bound";
  case CheckKind::SubrangeBound:
    return "subrange bound";
  case CheckKind::DivByZero:
    return "division by zero";
  case CheckKind::CaseMatch:
    return "case coverage";
  }
  return "check";
}

const char *syntox::checkKindKey(CheckKind Kind) {
  switch (Kind) {
  case CheckKind::ArrayBound:
    return "array_bound";
  case CheckKind::SubrangeBound:
    return "subrange_bound";
  case CheckKind::DivByZero:
    return "div_by_zero";
  case CheckKind::CaseMatch:
    return "case_match";
  }
  return "check";
}

//===----------------------------------------------------------------------===//
// Expression helpers
//===----------------------------------------------------------------------===//

VarRefExpr *CfgBuilder::varRef(VarDecl *V) {
  auto *Ref = Ctx.create<VarRefExpr>(V->loc(), V->name());
  Ref->setVarDecl(V);
  Ref->setType(V->type());
  return Ref;
}

Expr *CfgBuilder::intLit(int64_t V) {
  auto *Lit = Ctx.create<IntLiteralExpr>(SourceLoc(), V);
  Lit->setType(Ctx.integerType());
  return Lit;
}

Expr *CfgBuilder::cmp(BinaryOp Op, Expr *L, Expr *R) {
  auto *E = Ctx.create<BinaryExpr>(L->loc(), Op, L, R);
  E->setType(Ctx.booleanType());
  return E;
}

Expr *CfgBuilder::conj(Expr *L, Expr *R) {
  if (!L)
    return R;
  if (!R)
    return L;
  auto *E = Ctx.create<BinaryExpr>(L->loc(), BinaryOp::And, L, R);
  E->setType(Ctx.booleanType());
  return E;
}

Expr *CfgBuilder::disj(Expr *L, Expr *R) {
  if (!L)
    return R;
  if (!R)
    return L;
  auto *E = Ctx.create<BinaryExpr>(L->loc(), BinaryOp::Or, L, R);
  E->setType(Ctx.booleanType());
  return E;
}

VarDecl *CfgBuilder::makeTemp(const Type *Ty) {
  auto *Temp = Ctx.create<VarDecl>(
      SourceLoc(), "$t" + std::to_string(TempCounter++), Ty, VarKind::Local);
  Temp->setOwner(CurRoutine);
  Temp->setIndexInOwner(CurRoutine->ownedVars().size());
  CurRoutine->addOwnedVar(Temp);
  return Temp;
}

unsigned CfgBuilder::newPoint(SourceLoc Loc, const std::string &Desc) {
  return Cur->addPoint(Loc, Desc);
}

unsigned CfgBuilder::labelPoint(int64_t Label) {
  auto It = PendingLabels.find(Label);
  if (It != PendingLabels.end())
    return It->second;
  unsigned P = newPoint(SourceLoc(), "label " + std::to_string(Label));
  PendingLabels[Label] = P;
  Cur->setLabelPoint(Label, P);
  return P;
}

//===----------------------------------------------------------------------===//
// Expression flattening
//===----------------------------------------------------------------------===//

Expr *CfgBuilder::flattenExpr(Expr *E, unsigned &At) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::VarRef:
    return E;
  case Expr::Kind::Index: {
    auto *I = cast<IndexExpr>(E);
    Expr *Index = flattenExpr(I->index(), At);
    const auto *ArrTy = dyn_cast<ArrayType>(I->base()->type());
    if (ArrTy) {
      unsigned Id = Prog->registerCheck(
          CheckInfo{0, CheckKind::ArrayBound, E->loc(), Index,
                    ArrTy->indexLo(), ArrTy->indexHi(),
                    "index of " + I->base()->name()});
      unsigned Next = newPoint(E->loc(), "bound check");
      Cur->addEdge(At, Next, Action::check(Id, Index));
      At = Next;
    }
    auto *NewIndex = Ctx.create<IndexExpr>(E->loc(), I->base(), Index);
    NewIndex->setType(E->type());
    return NewIndex;
  }
  case Expr::Kind::Call: {
    auto *CE = cast<CallExpr>(E);
    if (CE->builtin() != BuiltinFn::None) {
      std::vector<Expr *> Args;
      for (Expr *Arg : CE->args())
        Args.push_back(flattenExpr(Arg, At));
      auto *NewCall =
          Ctx.create<CallExpr>(E->loc(), CE->callee(), std::move(Args));
      NewCall->setBuiltin(CE->builtin());
      NewCall->setType(E->type());
      return NewCall;
    }
    VarDecl *Result = nullptr;
    At = lowerCall(CE, At, &Result);
    assert(Result && "function call without result");
    return varRef(Result);
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Expr *Sub = flattenExpr(U->subExpr(), At);
    auto *NewU = Ctx.create<UnaryExpr>(E->loc(), U->op(), Sub);
    NewU->setType(E->type());
    return NewU;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    Expr *Lhs = flattenExpr(B->lhs(), At);
    Expr *Rhs = flattenExpr(B->rhs(), At);
    if (B->op() == BinaryOp::Div || B->op() == BinaryOp::Mod) {
      unsigned Id = Prog->registerCheck(
          CheckInfo{0, CheckKind::DivByZero, E->loc(), Rhs, 0, 0,
                    B->op() == BinaryOp::Div ? "divisor" : "modulus"});
      unsigned Next = newPoint(E->loc(), "div check");
      Cur->addEdge(At, Next, Action::check(Id, Rhs));
      At = Next;
    }
    auto *NewB = Ctx.create<BinaryExpr>(E->loc(), B->op(), Lhs, Rhs);
    NewB->setType(E->type());
    return NewB;
  }
  }
  return E;
}

/// Lowers a routine call: flattens arguments, emits subrange checks for
/// the copy-in, the Call edge, and copy-out subrange checks for var
/// parameters. Returns the point after the call; *ResultOut receives the
/// temp holding a function result (if the callee is a function).
unsigned CfgBuilder::lowerCall(CallExpr *CE, unsigned At,
                               VarDecl **ResultOut) {
  RoutineDecl *Callee = CE->routine();
  assert(Callee && "unresolved call");

  std::vector<Expr *> Args;
  const std::vector<VarDecl *> &Formals = Callee->params();
  for (size_t I = 0; I < CE->args().size(); ++I) {
    Expr *Arg = flattenExpr(CE->args()[I], At);
    Args.push_back(Arg);
    if (I >= Formals.size())
      continue;
    // Copy-in subrange check for the formal's declared range.
    if (const auto *Sub = dyn_cast<SubrangeType>(Formals[I]->type())) {
      unsigned Id = Prog->registerCheck(
          CheckInfo{0, CheckKind::SubrangeBound, Arg->loc(), Arg, Sub->lo(),
                    Sub->hi(), "argument for " + Formals[I]->name()});
      unsigned Next = newPoint(Arg->loc(), "subrange check");
      Cur->addEdge(At, Next, Action::check(Id, Arg));
      At = Next;
    }
  }

  auto *NewCall = Ctx.create<CallExpr>(CE->loc(), CE->callee(), Args);
  NewCall->setRoutine(Callee);
  NewCall->setCallSiteId(CE->callSiteId());
  NewCall->setType(CE->type());

  VarDecl *Result = nullptr;
  if (Callee->isFunction())
    Result = makeTemp(Callee->resultType());
  if (ResultOut)
    *ResultOut = Result;

  unsigned After = newPoint(CE->loc(), "after call " + Callee->name());
  Cur->addEdge(At, After, Action::call(NewCall, Result));
  At = After;

  // Copy-out subrange checks: a var-param actual with a subrange type may
  // have received an out-of-range value from the callee.
  for (size_t I = 0; I < Args.size() && I < Formals.size(); ++I) {
    if (!Formals[I]->isVarParam())
      continue;
    auto *Ref = dyn_cast<VarRefExpr>(Args[I]);
    if (!Ref || !Ref->varDecl())
      continue;
    const auto *Sub = dyn_cast<SubrangeType>(Ref->varDecl()->type());
    if (!Sub)
      continue;
    unsigned Id = Prog->registerCheck(
        CheckInfo{0, CheckKind::SubrangeBound, Ref->loc(), Ref, Sub->lo(),
                  Sub->hi(), "var argument " + Ref->name() + " after call"});
    unsigned Next = newPoint(Ref->loc(), "subrange check");
    Cur->addEdge(At, Next, Action::check(Id, Ref));
    At = Next;
  }
  return At;
}

//===----------------------------------------------------------------------===//
// Statement lowering
//===----------------------------------------------------------------------===//

namespace {

/// Conservative: may executing \p S change \p V? Any routine call counts
/// as modifying everything (it may reach globals or pass V by
/// reference).
bool exprHasRoutineCall(const Expr *E) {
  if (!E)
    return false;
  switch (E->kind()) {
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    if (C->builtin() == BuiltinFn::None)
      return true;
    for (const Expr *Arg : C->args())
      if (exprHasRoutineCall(Arg))
        return true;
    return false;
  }
  case Expr::Kind::Index:
    return exprHasRoutineCall(cast<IndexExpr>(E)->index());
  case Expr::Kind::Unary:
    return exprHasRoutineCall(cast<UnaryExpr>(E)->subExpr());
  case Expr::Kind::Binary:
    return exprHasRoutineCall(cast<BinaryExpr>(E)->lhs()) ||
           exprHasRoutineCall(cast<BinaryExpr>(E)->rhs());
  default:
    return false;
  }
}

} // namespace

bool syntox::mayModifyVar(const Stmt *S, const VarDecl *V) {
  if (!S)
    return false;
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    if (const auto *Ref = dyn_cast<VarRefExpr>(A->target()))
      if (Ref->varDecl() == V)
        return true;
    return exprHasRoutineCall(A->value()) ||
           exprHasRoutineCall(A->target());
  }
  case Stmt::Kind::Compound: {
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      if (mayModifyVar(Sub, V))
        return true;
    return false;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return exprHasRoutineCall(I->cond()) || mayModifyVar(I->thenStmt(), V) ||
           mayModifyVar(I->elseStmt(), V);
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    return exprHasRoutineCall(W->cond()) || mayModifyVar(W->body(), V);
  }
  case Stmt::Kind::Repeat: {
    const auto *R = cast<RepeatStmt>(S);
    for (const Stmt *Sub : R->body())
      if (mayModifyVar(Sub, V))
        return true;
    return exprHasRoutineCall(R->cond());
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    if (F->var()->varDecl() == V)
      return true;
    return exprHasRoutineCall(F->from()) || exprHasRoutineCall(F->to()) ||
           mayModifyVar(F->body(), V);
  }
  case Stmt::Kind::Case: {
    const auto *C = cast<CaseStmt>(S);
    if (exprHasRoutineCall(C->selector()))
      return true;
    for (const CaseArm &Arm : C->arms())
      if (mayModifyVar(Arm.Body, V))
        return true;
    return mayModifyVar(C->elseStmt(), V);
  }
  case Stmt::Kind::Call:
    return true; // conservatively clobbers everything
  case Stmt::Kind::Read: {
    for (const Expr *T : cast<ReadStmt>(S)->targets()) {
      if (const auto *Ref = dyn_cast<VarRefExpr>(T))
        if (Ref->varDecl() == V)
          return true;
      if (exprHasRoutineCall(T))
        return true;
    }
    return false;
  }
  case Stmt::Kind::Write: {
    for (const Expr *E : cast<WriteStmt>(S)->values())
      if (exprHasRoutineCall(E))
        return true;
    return false;
  }
  case Stmt::Kind::Goto:
  case Stmt::Kind::Empty:
    return false;
  case Stmt::Kind::Labeled:
    return mayModifyVar(cast<LabeledStmt>(S)->subStmt(), V);
  case Stmt::Kind::Assert:
    return exprHasRoutineCall(cast<AssertStmt>(S)->cond());
  }
  return true;
}

unsigned CfgBuilder::lowerScalarAssign(SourceLoc Loc, VarDecl *Target,
                                       Expr *Value, unsigned At) {
  if (const auto *Sub = dyn_cast<SubrangeType>(Target->type())) {
    unsigned Id = Prog->registerCheck(
        CheckInfo{0, CheckKind::SubrangeBound, Loc, Value, Sub->lo(),
                  Sub->hi(), "assignment to " + Target->name()});
    unsigned Next = newPoint(Loc, "subrange check");
    Cur->addEdge(At, Next, Action::check(Id, Value));
    At = Next;
  }
  unsigned Next = newPoint(Loc, "after " + Target->name() + " :=");
  Cur->addEdge(At, Next, Action::assign(Target, Value));
  return Next;
}

unsigned CfgBuilder::lowerStmt(Stmt *S, unsigned At) {
  if (!S)
    return At;
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    if (auto *Ref = dyn_cast<VarRefExpr>(A->target())) {
      Expr *Value = flattenExpr(A->value(), At);
      assert(Ref->varDecl() && "unresolved assignment target");
      return lowerScalarAssign(S->loc(), Ref->varDecl(), Value, At);
    }
    auto *Idx = cast<IndexExpr>(A->target());
    VarDecl *Array = Idx->base()->varDecl();
    assert(Array && "unresolved array");
    Expr *Index = flattenExpr(Idx->index(), At);
    const auto *ArrTy = cast<ArrayType>(Array->type());
    unsigned Id = Prog->registerCheck(
        CheckInfo{0, CheckKind::ArrayBound, S->loc(), Index, ArrTy->indexLo(),
                  ArrTy->indexHi(), "index of " + Array->name()});
    unsigned AfterCheck = newPoint(S->loc(), "bound check");
    Cur->addEdge(At, AfterCheck, Action::check(Id, Index));
    At = AfterCheck;
    Expr *Value = flattenExpr(A->value(), At);
    if (const auto *Sub = dyn_cast<SubrangeType>(ArrTy->elementType())) {
      unsigned CheckId = Prog->registerCheck(
          CheckInfo{0, CheckKind::SubrangeBound, S->loc(), Value, Sub->lo(),
                    Sub->hi(), "element of " + Array->name()});
      unsigned Next = newPoint(S->loc(), "subrange check");
      Cur->addEdge(At, Next, Action::check(CheckId, Value));
      At = Next;
    }
    unsigned Next = newPoint(S->loc(), "after store to " + Array->name());
    Cur->addEdge(At, Next, Action::arrayStore(Array, Index, Value));
    return Next;
  }
  case Stmt::Kind::Compound: {
    for (Stmt *Sub : cast<CompoundStmt>(S)->body())
      At = lowerStmt(Sub, At);
    return At;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    Expr *Cond = flattenExpr(I->cond(), At);
    unsigned ThenStart = newPoint(I->thenStmt()->loc(), "then");
    Cur->addEdge(At, ThenStart, Action::assume(Cond, true));
    unsigned ThenEnd = lowerStmt(I->thenStmt(), ThenStart);
    unsigned Join = newPoint(S->loc(), "endif");
    Cur->addEdge(ThenEnd, Join, Action::nop());
    if (I->elseStmt()) {
      unsigned ElseStart = newPoint(I->elseStmt()->loc(), "else");
      Cur->addEdge(At, ElseStart, Action::assume(Cond, false));
      unsigned ElseEnd = lowerStmt(I->elseStmt(), ElseStart);
      Cur->addEdge(ElseEnd, Join, Action::nop());
    } else {
      Cur->addEdge(At, Join, Action::assume(Cond, false));
    }
    return Join;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    unsigned Head = newPoint(S->loc(), "while head");
    Cur->addEdge(At, Head, Action::nop());
    unsigned CondPt = Head;
    Expr *Cond = flattenExpr(W->cond(), CondPt);
    unsigned BodyStart = newPoint(W->body()->loc(), "while body");
    Cur->addEdge(CondPt, BodyStart, Action::assume(Cond, true));
    unsigned BodyEnd = lowerStmt(W->body(), BodyStart);
    Cur->addEdge(BodyEnd, Head, Action::nop());
    unsigned After = newPoint(S->loc(), "after while");
    Cur->addEdge(CondPt, After, Action::assume(Cond, false));
    return After;
  }
  case Stmt::Kind::Repeat: {
    auto *Rep = cast<RepeatStmt>(S);
    unsigned BodyStart = newPoint(S->loc(), "repeat body");
    Cur->addEdge(At, BodyStart, Action::nop());
    unsigned P = BodyStart;
    for (Stmt *Sub : Rep->body())
      P = lowerStmt(Sub, P);
    Expr *Cond = flattenExpr(Rep->cond(), P);
    Cur->addEdge(P, BodyStart, Action::assume(Cond, false));
    unsigned After = newPoint(S->loc(), "after repeat");
    Cur->addEdge(P, After, Action::assume(Cond, true));
    return After;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    VarDecl *Var = F->var()->varDecl();
    assert(Var && "unresolved for variable");
    Expr *FromE = flattenExpr(F->from(), At);
    Expr *ToE = flattenExpr(F->to(), At);
    // Pascal evaluates the final bound once. When it is a constant or a
    // variable the body cannot change, use it directly — this keeps the
    // loop tests talking about the *program's* variable, which is what
    // lets backward propagation factorize conditions like "n <= 100"
    // onto n itself (paper §2). Otherwise materialize a temp.
    Expr *ToUse = ToE;
    bool Direct = false;
    if (isa<IntLiteralExpr>(ToE)) {
      Direct = true;
    } else if (const auto *Ref = dyn_cast<VarRefExpr>(ToE)) {
      Direct = Ref->constDecl() ||
               (Ref->varDecl() && Ref->varDecl() != Var &&
                !mayModifyVar(F->body(), Ref->varDecl()));
    }
    if (!Direct) {
      VarDecl *ToTemp = makeTemp(Ctx.integerType());
      unsigned P = newPoint(S->loc(), "for to");
      Cur->addEdge(At, P, Action::assign(ToTemp, ToE));
      At = P;
      ToUse = varRef(ToTemp);
    }
    // A compound initial bound gets a temp too, so the loop-entry test
    // refines the very value assigned to the loop variable (refining
    // `n div 2 >= 1` cannot tighten a re-evaluation of `n div 2`).
    Expr *FromUse = FromE;
    if (!isa<IntLiteralExpr>(FromE) && !isa<VarRefExpr>(FromE)) {
      VarDecl *FromTemp = makeTemp(Ctx.integerType());
      unsigned P = newPoint(S->loc(), "for from");
      Cur->addEdge(At, P, Action::assign(FromTemp, FromE));
      At = P;
      FromUse = varRef(FromTemp);
    }

    bool Down = F->isDownward();
    Expr *Enter = cmp(Down ? BinaryOp::Ge : BinaryOp::Le, FromUse, ToUse);
    unsigned After = newPoint(S->loc(), "after for");
    Cur->addEdge(At, After, Action::assume(Enter, false));
    unsigned InitPt = newPoint(S->loc(), "for init");
    Cur->addEdge(At, InitPt, Action::assume(Enter, true));
    unsigned Head = lowerScalarAssign(S->loc(), Var, FromUse, InitPt);
    // Head: body runs with Var in [from, to].
    unsigned BodyEnd = lowerStmt(F->body(), Head);
    Expr *Continue =
        cmp(Down ? BinaryOp::Gt : BinaryOp::Lt, varRef(Var), ToUse);
    Cur->addEdge(BodyEnd, After, Action::assume(Continue, false));
    unsigned IncPt = newPoint(S->loc(), "for step");
    Cur->addEdge(BodyEnd, IncPt, Action::assume(Continue, true));
    auto *Step = Ctx.create<BinaryExpr>(S->loc(),
                                        Down ? BinaryOp::Sub : BinaryOp::Add,
                                        varRef(Var), intLit(1));
    Step->setType(Ctx.integerType());
    unsigned BackPt = lowerScalarAssign(S->loc(), Var, Step, IncPt);
    Cur->addEdge(BackPt, Head, Action::nop());
    return After;
  }
  case Stmt::Kind::Case: {
    auto *C = cast<CaseStmt>(S);
    Expr *Sel = flattenExpr(C->selector(), At);
    VarDecl *SelTemp = makeTemp(Ctx.integerType());
    unsigned P = newPoint(S->loc(), "case selector");
    Cur->addEdge(At, P, Action::assign(SelTemp, Sel));
    unsigned Join = newPoint(S->loc(), "after case");
    Expr *NoMatch = nullptr;
    int64_t MinLabel = INT64_MAX, MaxLabel = INT64_MIN;
    for (const CaseArm &Arm : C->arms()) {
      Expr *Match = nullptr;
      for (int64_t L : Arm.Labels) {
        Match = disj(Match, cmp(BinaryOp::Eq, varRef(SelTemp), intLit(L)));
        NoMatch = conj(NoMatch, cmp(BinaryOp::Ne, varRef(SelTemp), intLit(L)));
        MinLabel = std::min(MinLabel, L);
        MaxLabel = std::max(MaxLabel, L);
      }
      if (!Match)
        continue;
      unsigned ArmStart = newPoint(Arm.Body->loc(), "case arm");
      Cur->addEdge(P, ArmStart, Action::assume(Match, true));
      unsigned ArmEnd = lowerStmt(Arm.Body, ArmStart);
      Cur->addEdge(ArmEnd, Join, Action::nop());
    }
    if (C->elseStmt()) {
      unsigned ElseStart = newPoint(C->elseStmt()->loc(), "case else");
      if (NoMatch)
        Cur->addEdge(P, ElseStart, Action::assume(NoMatch, true));
      else
        Cur->addEdge(P, ElseStart, Action::nop());
      unsigned ElseEnd = lowerStmt(C->elseStmt(), ElseStart);
      Cur->addEdge(ElseEnd, Join, Action::nop());
    } else if (NoMatch) {
      // No else: falling through every arm is a runtime error. The check
      // requires membership in an empty set, so any state surviving the
      // no-match assumption is reported.
      unsigned ErrPt = newPoint(S->loc(), "case fallthrough");
      Cur->addEdge(P, ErrPt, Action::assume(NoMatch, true));
      unsigned Id = Prog->registerCheck(
          CheckInfo{0, CheckKind::CaseMatch, S->loc(), varRef(SelTemp),
                    MinLabel, MaxLabel, "case selector"});
      Cur->addEdge(ErrPt, Join, Action::check(Id, varRef(SelTemp)));
    }
    return Join;
  }
  case Stmt::Kind::Call: {
    auto *CS = cast<CallStmt>(S);
    return lowerCall(CS->call(), At, nullptr);
  }
  case Stmt::Kind::Read: {
    auto *RS = cast<ReadStmt>(S);
    for (Expr *Target : RS->targets()) {
      if (auto *Ref = dyn_cast<VarRefExpr>(Target)) {
        VarDecl *Var = Ref->varDecl();
        assert(Var && "unresolved read target");
        unsigned Next = newPoint(S->loc(), "after read " + Var->name());
        Cur->addEdge(At, Next, Action::readScalar(Var));
        At = Next;
        if (const auto *Sub = dyn_cast<SubrangeType>(Var->type())) {
          unsigned Id = Prog->registerCheck(
              CheckInfo{0, CheckKind::SubrangeBound, Target->loc(),
                        varRef(Var), Sub->lo(), Sub->hi(),
                        "read into " + Var->name(),
                        /*InputValidation=*/true});
          unsigned P = newPoint(S->loc(), "subrange check");
          Cur->addEdge(At, P, Action::check(Id, varRef(Var)));
          At = P;
        }
        continue;
      }
      auto *Idx = cast<IndexExpr>(Target);
      VarDecl *Array = Idx->base()->varDecl();
      Expr *Index = flattenExpr(Idx->index(), At);
      const auto *ArrTy = cast<ArrayType>(Array->type());
      unsigned Id = Prog->registerCheck(
          CheckInfo{0, CheckKind::ArrayBound, Target->loc(), Index,
                    ArrTy->indexLo(), ArrTy->indexHi(),
                    "index of " + Array->name()});
      unsigned P = newPoint(S->loc(), "bound check");
      Cur->addEdge(At, P, Action::check(Id, Index));
      unsigned Next = newPoint(S->loc(), "after read " + Array->name());
      Cur->addEdge(P, Next, Action::readArray(Array, Index));
      At = Next;
    }
    return At;
  }
  case Stmt::Kind::Write: {
    auto *WS = cast<WriteStmt>(S);
    for (Expr *Value : WS->values()) {
      if (isa<StringLiteralExpr>(Value))
        continue;
      // Evaluation can trigger checks and calls; the value is discarded.
      (void)flattenExpr(Value, At);
    }
    return At;
  }
  case Stmt::Kind::Goto: {
    auto *G = cast<GotoStmt>(S);
    assert(G->targetRoutine() && "unresolved goto");
    if (G->targetRoutine() == CurRoutine) {
      Cur->addEdge(At, labelPoint(G->label()), Action::nop());
    } else {
      Channel C{G->targetRoutine(), G->label()};
      Cur->addEdge(At, Cur->channelExit(C), Action::nop());
    }
    // Code after an unconditional jump is unreachable.
    return newPoint(S->loc(), "after goto");
  }
  case Stmt::Kind::Labeled: {
    auto *L = cast<LabeledStmt>(S);
    unsigned LP = labelPoint(L->label());
    Cur->addEdge(At, LP, Action::nop());
    return lowerStmt(L->subStmt(), LP);
  }
  case Stmt::Kind::Empty:
    return At;
  case Stmt::Kind::Assert: {
    auto *A = cast<AssertStmt>(S);
    Expr *Cond = flattenExpr(A->cond(), At);
    if (A->isIntermittent()) {
      Cur->addIntermittent(IntermittentAssertion{At, Cond, S->loc()});
      return At;
    }
    unsigned Next = newPoint(S->loc(), "after invariant");
    Cur->addEdge(At, Next, Action::invariant(Cond));
    return Next;
  }
  }
  return At;
}

//===----------------------------------------------------------------------===//
// Routine and program lowering
//===----------------------------------------------------------------------===//

void CfgBuilder::buildRoutine(RoutineDecl *R) {
  Cur = Prog->createCfg(R);
  CurRoutine = R;
  PendingLabels.clear();

  unsigned Entry = Cur->addPoint(R->loc(), "entry of " + R->name());
  Cur->setEntry(Entry);
  unsigned End = Entry;
  if (R->block() && R->block()->Body)
    End = lowerStmt(R->block()->Body, Entry);
  unsigned Exit = Cur->addPoint(R->loc(), "exit of " + R->name());
  Cur->addEdge(End, Exit, Action::nop());
  Cur->setExit(Exit);

  if (R->block())
    for (RoutineDecl *Nested : R->block()->Routines)
      buildRoutine(Nested);
  Cur = Prog->cfgFor(R); // restore after recursion for safety
  CurRoutine = R;
}

void CfgBuilder::propagateChannels() {
  // A routine that calls a routine with channel (A, L) inherits that
  // channel unless it *is* A (then the jump lands on the local label).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (RoutineCfg *C : Prog->cfgs()) {
      for (const CfgEdge &E : C->edges()) {
        if (E.Act.K != Action::Kind::Call)
          continue;
        RoutineCfg *CalleeCfg = Prog->cfgFor(E.Act.Call->routine());
        if (!CalleeCfg)
          continue;
        for (const auto &[Chan, Point] : CalleeCfg->channelExits()) {
          (void)Point;
          if (Chan.Target == C->routine())
            continue; // handled locally at instantiation
          if (!C->hasChannel(Chan)) {
            C->channelExit(Chan);
            Changed = true;
          }
        }
      }
    }
  }
}

std::unique_ptr<ProgramCfg> CfgBuilder::build(RoutineDecl *Program) {
  Prog = std::make_unique<ProgramCfg>();
  TempCounter = 0;
  buildRoutine(Program);
  propagateChannels();
  return std::move(Prog);
}
