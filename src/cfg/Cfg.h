//===- cfg/Cfg.h - Control-flow graphs and semantic actions -----*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs for the analyses. Each routine is lowered into a
/// graph of *control points* connected by edges carrying semantic
/// *actions* — the abstract primitives of paper §4 ([x := e], [i < 100],
/// read, runtime checks, calls). The forward system of semantic equations
/// follows directly from this graph, and the backward systems are its
/// "trivial inversion".
///
/// Expressions on actions are call-free: the builder flattens nested
/// function calls into temporaries, so a Call action is always a
/// dedicated edge. Runtime checks (array bounds, subrange assignments,
/// division by zero, case coverage) are materialized as Check actions —
/// they act as the *permanent invariant assertions* of paper §6.5.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_CFG_CFG_H
#define SYNTOX_CFG_CFG_H

#include "frontend/Ast.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace syntox {

/// What a runtime check verifies.
enum class CheckKind {
  ArrayBound,   ///< array index within the declared bounds
  SubrangeBound,///< value assigned to a subrange-typed variable fits
  DivByZero,    ///< divisor (or modulus) is non-zero
  CaseMatch,    ///< case selector is covered by some arm
};

const char *checkKindName(CheckKind Kind);

/// Stable machine-readable kind key for JSON output ("array_bound",
/// "subrange_bound", "div_by_zero", "case_match").
const char *checkKindKey(CheckKind Kind);

/// A runtime check site. Forward semantics: meet the checked expression
/// with the required set; an empty result means the check *must* fail.
/// The checks library classifies each site as statically-safe or not.
struct CheckInfo {
  unsigned Id = 0;
  CheckKind Kind = CheckKind::ArrayBound;
  SourceLoc Loc;
  /// The checked (call-free) expression: the index, the assigned value,
  /// or the divisor.
  Expr *Value = nullptr;
  /// Required range for ArrayBound/SubrangeBound/CaseMatch; for
  /// DivByZero the requirement is "not 0".
  int64_t Lo = 0;
  int64_t Hi = 0;
  /// Human-readable subject, e.g. "index of T" or "assignment to n".
  std::string Subject;
  /// True for the validation of a value coming from `read`: such a check
  /// can never be discharged statically (the input is arbitrary) and is
  /// excluded from the §6.5 elimination claims.
  bool InputValidation = false;
};

/// One semantic action attached to a CFG edge.
struct Action {
  enum class Kind {
    Nop,        ///< no state change (gotos, joins)
    Assign,     ///< Var := Value (scalar strong update)
    ArrayStore, ///< Var[Index] := Value (weak update of the summary)
    ReadScalar, ///< read(Var): Var gets an arbitrary input
    ReadArray,  ///< read(Var[Index]): summary gets an arbitrary input
    Assume,     ///< control passes only if Value evaluates to Sense
    Check,      ///< runtime check (see CheckInfo)
    Invariant,  ///< user invariant assertion (paper §1)
    Call,       ///< call of Call->routine(); result into ResultVar if set
  };

  Kind K = Kind::Nop;
  VarDecl *Var = nullptr;   ///< Assign/Read target or array variable
  Expr *Value = nullptr;    ///< assigned value / condition / checked expr
  Expr *Index = nullptr;    ///< array index (ArrayStore/ReadArray)
  bool Sense = true;        ///< Assume polarity
  unsigned CheckId = 0;     ///< Check: index into ProgramCfg::checks()
  CallExpr *Call = nullptr; ///< Call action payload
  VarDecl *ResultVar = nullptr; ///< temp receiving a function result

  static Action nop() { return Action(); }
  static Action assign(VarDecl *Var, Expr *Value) {
    Action A;
    A.K = Kind::Assign;
    A.Var = Var;
    A.Value = Value;
    return A;
  }
  static Action arrayStore(VarDecl *Array, Expr *Index, Expr *Value) {
    Action A;
    A.K = Kind::ArrayStore;
    A.Var = Array;
    A.Index = Index;
    A.Value = Value;
    return A;
  }
  static Action readScalar(VarDecl *Var) {
    Action A;
    A.K = Kind::ReadScalar;
    A.Var = Var;
    return A;
  }
  static Action readArray(VarDecl *Array, Expr *Index) {
    Action A;
    A.K = Kind::ReadArray;
    A.Var = Array;
    A.Index = Index;
    return A;
  }
  static Action assume(Expr *Cond, bool Sense) {
    Action A;
    A.K = Kind::Assume;
    A.Value = Cond;
    A.Sense = Sense;
    return A;
  }
  static Action check(unsigned CheckId, Expr *Value) {
    Action A;
    A.K = Kind::Check;
    A.CheckId = CheckId;
    A.Value = Value;
    return A;
  }
  static Action invariant(Expr *Cond) {
    Action A;
    A.K = Kind::Invariant;
    A.Value = Cond;
    return A;
  }
  static Action call(CallExpr *CE, VarDecl *ResultVar) {
    Action A;
    A.K = Kind::Call;
    A.Call = CE;
    A.ResultVar = ResultVar;
    return A;
  }
};

/// A CFG edge From --Action--> To.
struct CfgEdge {
  unsigned From = 0;
  unsigned To = 0;
  Action Act;
};

/// An intermittent assertion attached to a control point (paper §1): the
/// program must *eventually* reach this point with Cond holding.
struct IntermittentAssertion {
  unsigned Point = 0;
  Expr *Cond = nullptr;
  SourceLoc Loc;
};

/// A non-local exit channel: control leaving a routine by jumping to
/// label Label declared in routine Target (an ancestor).
struct Channel {
  const RoutineDecl *Target = nullptr;
  int64_t Label = 0;

  bool operator<(const Channel &Other) const {
    if (Target != Other.Target)
      return Target < Other.Target;
    return Label < Other.Label;
  }
  bool operator==(const Channel &Other) const = default;
};

/// The control-flow graph of one routine.
class RoutineCfg {
public:
  explicit RoutineCfg(RoutineDecl *Routine) : Routine(Routine) {}

  RoutineDecl *routine() const { return Routine; }

  unsigned addPoint(SourceLoc Loc, std::string Desc) {
    Locs.push_back(Loc);
    Descs.push_back(std::move(Desc));
    return static_cast<unsigned>(Locs.size() - 1);
  }
  unsigned numPoints() const { return static_cast<unsigned>(Locs.size()); }
  SourceLoc pointLoc(unsigned P) const { return Locs[P]; }
  const std::string &pointDesc(unsigned P) const { return Descs[P]; }

  void addEdge(unsigned From, unsigned To, Action A) {
    Edges.push_back(CfgEdge{From, To, std::move(A)});
  }
  const std::vector<CfgEdge> &edges() const { return Edges; }

  unsigned entry() const { return Entry; }
  unsigned exit() const { return Exit; }
  void setEntry(unsigned P) { Entry = P; }
  void setExit(unsigned P) { Exit = P; }

  /// Exit point for non-local jumps into channel \p C, created on demand.
  unsigned channelExit(const Channel &C) {
    auto It = ChannelExits.find(C);
    if (It != ChannelExits.end())
      return It->second;
    unsigned P = addPoint(SourceLoc(), "channel exit " +
                                           std::to_string(C.Label) + " of " +
                                           C.Target->name());
    ChannelExits[C] = P;
    return P;
  }
  const std::map<Channel, unsigned> &channelExits() const {
    return ChannelExits;
  }
  bool hasChannel(const Channel &C) const { return ChannelExits.count(C); }

  /// Point of a local labeled statement.
  void setLabelPoint(int64_t Label, unsigned P) { LabelPoints[Label] = P; }
  const std::map<int64_t, unsigned> &labelPoints() const {
    return LabelPoints;
  }

  const std::vector<IntermittentAssertion> &intermittents() const {
    return Intermittents;
  }
  void addIntermittent(IntermittentAssertion A) {
    Intermittents.push_back(std::move(A));
  }

private:
  RoutineDecl *Routine;
  std::vector<SourceLoc> Locs;
  std::vector<std::string> Descs;
  std::vector<CfgEdge> Edges;
  unsigned Entry = 0;
  unsigned Exit = 0;
  std::map<Channel, unsigned> ChannelExits;
  std::map<int64_t, unsigned> LabelPoints;
  std::vector<IntermittentAssertion> Intermittents;
};

/// CFGs for a whole program plus the shared check table.
class ProgramCfg {
public:
  RoutineCfg *cfgFor(const RoutineDecl *R) {
    auto It = Cfgs.find(R);
    return It == Cfgs.end() ? nullptr : It->second.get();
  }
  const RoutineCfg *cfgFor(const RoutineDecl *R) const {
    auto It = Cfgs.find(R);
    return It == Cfgs.end() ? nullptr : It->second.get();
  }
  RoutineCfg *createCfg(RoutineDecl *R) {
    auto Owned = std::make_unique<RoutineCfg>(R);
    RoutineCfg *Ptr = Owned.get();
    Cfgs[R] = std::move(Owned);
    Order.push_back(Ptr);
    return Ptr;
  }
  /// Routine CFGs in declaration order (program first).
  const std::vector<RoutineCfg *> &cfgs() const { return Order; }

  unsigned registerCheck(CheckInfo Info) {
    Info.Id = static_cast<unsigned>(Checks.size());
    Checks.push_back(std::move(Info));
    return Checks.back().Id;
  }
  const std::vector<CheckInfo> &checks() const { return Checks; }
  const CheckInfo &check(unsigned Id) const { return Checks[Id]; }

  /// Total control points over all routine CFGs (before unfolding).
  unsigned totalPoints() const {
    unsigned N = 0;
    for (const RoutineCfg *C : Order)
      N += C->numPoints();
    return N;
  }

private:
  std::map<const RoutineDecl *, std::unique_ptr<RoutineCfg>> Cfgs;
  std::vector<RoutineCfg *> Order;
  std::vector<CheckInfo> Checks;
};

} // namespace syntox

#endif // SYNTOX_CFG_CFG_H
