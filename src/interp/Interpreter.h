//===- interp/Interpreter.h - Concrete Pascal interpreter -------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter for the analyzed Pascal subset. It serves two
/// purposes:
///  - *validation*: property tests cross-check that every state reached
///    by a successful concrete run is covered by the abstract analysis
///    (necessary conditions really are necessary), and
///  - *the Figure 3 experiment*: runtime checks (array bounds, subranges,
///    division, case coverage) can be switched off to measure the cost
///    of the checks that the abstract debugger proves redundant.
///
/// Reference (`var`) parameters alias their actual storage exactly, and
/// non-local gotos unwind the frame stack, matching the semantics the
/// analyses abstract.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_INTERP_INTERPRETER_H
#define SYNTOX_INTERP_INTERPRETER_H

#include "frontend/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace syntox {

class Interpreter {
public:
  struct Options {
    /// Values consumed by read/readln, in order.
    std::vector<int64_t> Inputs;
    /// Statement budget; exceeding it stops the run (loop detection).
    uint64_t MaxSteps = 1000000;
    /// Frame budget (runaway recursion detection). The interpreter
    /// recurses on the host stack, roughly a few kilobytes per Pascal
    /// activation, so keep this well below the host stack capacity.
    unsigned MaxFrames = 2000;
    /// Execute the runtime checks. When false, only a minimal memory-
    /// safety clamp remains (simulating a compiler that removed the
    /// checks the analysis proved redundant).
    bool EnableChecks = true;
  };

  enum class Status {
    Ok,            ///< ran to completion
    RuntimeError,  ///< check failure or other runtime error
    StepLimit,     ///< exceeded MaxSteps (looping)
    FrameLimit,    ///< exceeded MaxFrames (runaway recursion)
    InputExhausted ///< read past the provided inputs
  };

  struct Result {
    Status St = Status::Ok;
    std::string Output;   ///< everything written by write/writeln
    std::string Error;    ///< message for RuntimeError
    SourceLoc ErrorLoc;
    uint64_t Steps = 0;   ///< statements executed
    /// Runtime range checks executed (0 when checks are disabled) — the
    /// dynamic count the Figure 3 experiment eliminates.
    uint64_t ChecksExecuted = 0;
  };

  explicit Interpreter(const RoutineDecl *Program) : Program(Program) {}

  /// Runs the program to completion (or failure).
  Result run(const Options &Opts) const;

private:
  const RoutineDecl *Program;
};

} // namespace syntox

#endif // SYNTOX_INTERP_INTERPRETER_H
