//===- interp/Interpreter.cpp - Concrete Pascal interpreter ---------------===//

#include "interp/Interpreter.h"

#include <cassert>
#include <deque>
#include <map>

using namespace syntox;

namespace {

/// Saturating concrete arithmetic matching the abstract domain's Z_b.
int64_t satAdd64(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) + B;
  return R < INT64_MIN ? INT64_MIN : R > INT64_MAX ? INT64_MAX : (int64_t)R;
}
int64_t satSub64(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) - B;
  return R < INT64_MIN ? INT64_MIN : R > INT64_MAX ? INT64_MAX : (int64_t)R;
}
int64_t satMul64(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) * B;
  return R < INT64_MIN ? INT64_MIN : R > INT64_MAX ? INT64_MAX : (int64_t)R;
}

/// The runtime range-check routine. Deliberately not inlinable: a
/// checked Pascal compiler emits a call into the RTS for every range
/// check, and that call is precisely the cost the Figure 3 experiment
/// measures. Returns true when the value is in range.
__attribute__((noinline)) bool rtsRangeCheck(int64_t Value, int64_t Lo,
                                             int64_t Hi) {
  bool Ok = Value >= Lo && Value <= Hi;
  // Defeat interprocedural const-prop so the call is never elided.
  asm volatile("" : "+r"(Ok));
  return Ok;
}

/// Storage location: a scalar cell or an array block.
struct Location {
  bool IsArray = false;
  size_t Index = 0; ///< into Scalars or Arrays
};

/// One activation record.
struct Frame {
  const RoutineDecl *R = nullptr;
  std::map<const VarDecl *, Location> Locals;
};

/// How a statement finished.
struct Flow {
  enum Kind { Normal, Jump, Fail } K = Normal;
  const RoutineDecl *JumpRoutine = nullptr;
  int64_t JumpLabel = 0;
};

class Machine {
public:
  Machine(const RoutineDecl *Program, const Interpreter::Options &Opts)
      : Opts(Opts), Program(Program) {}

  Interpreter::Result run() {
    pushFrame(Program);
    Flow F = execBlock(Program);
    if (F.K == Flow::Jump && Res.St == Interpreter::Status::Ok)
      fail(SourceLoc(), "jump to a label that was never reached");
    Res.Steps = Steps;
    return Res;
  }

private:
  //===--------------------------------------------------------------------===//
  // Storage
  //===--------------------------------------------------------------------===//

  void pushFrame(const RoutineDecl *R) {
    Frames.emplace_back();
    Frames.back().R = R;
  }

  void allocate(Frame &F, const VarDecl *V) {
    Location Loc;
    if (const auto *Arr = dyn_cast<ArrayType>(V->type())) {
      Loc.IsArray = true;
      Loc.Index = Arrays.size();
      Arrays.emplace_back(
          static_cast<size_t>(Arr->indexHi() - Arr->indexLo() + 1), 0);
    } else {
      Loc.Index = Scalars.size();
      Scalars.push_back(0);
    }
    F.Locals[V] = Loc;
  }

  /// Resolves the storage of \p V from the current frame, following the
  /// static chain for uplevel variables.
  Location *lookup(const VarDecl *V) {
    // Search the current frame, then the frames of the owner routine
    // (most recent activation), Pascal display-style.
    auto It = Frames.back().Locals.find(V);
    if (It != Frames.back().Locals.end())
      return &It->second;
    for (auto FrameIt = Frames.rbegin(); FrameIt != Frames.rend(); ++FrameIt) {
      if (FrameIt->R != V->owner())
        continue;
      auto Found = FrameIt->Locals.find(V);
      if (Found != FrameIt->Locals.end())
        return &Found->second;
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Failure plumbing
  //===--------------------------------------------------------------------===//

  Flow fail(SourceLoc Loc, std::string Message) {
    if (Res.St == Interpreter::Status::Ok) {
      Res.St = Interpreter::Status::RuntimeError;
      Res.Error = std::move(Message);
      Res.ErrorLoc = Loc;
    }
    Flow F;
    F.K = Flow::Fail;
    return F;
  }

  Flow failWith(Interpreter::Status St, SourceLoc Loc, std::string Message) {
    if (Res.St == Interpreter::Status::Ok) {
      Res.St = St;
      Res.Error = std::move(Message);
      Res.ErrorLoc = Loc;
    }
    Flow F;
    F.K = Flow::Fail;
    return F;
  }

  bool running() const { return Res.St == Interpreter::Status::Ok; }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Evaluates \p E; on error sets the failure state and returns 0.
  int64_t eval(const Expr *E) {
    if (!running())
      return 0;
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      return cast<IntLiteralExpr>(E)->value();
    case Expr::Kind::BoolLiteral:
      return cast<BoolLiteralExpr>(E)->value() ? 1 : 0;
    case Expr::Kind::StringLiteral:
      fail(E->loc(), "string used as a value");
      return 0;
    case Expr::Kind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(E);
      if (const ConstDecl *C = Ref->constDecl())
        return C->value();
      Location *Loc = lookup(Ref->varDecl());
      if (!Loc) {
        fail(E->loc(), "variable '" + Ref->name() + "' has no storage");
        return 0;
      }
      return Scalars[Loc->Index];
    }
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      int64_t Idx = eval(I->index());
      if (!running())
        return 0;
      Location *Loc = lookup(I->base()->varDecl());
      const auto *Arr = cast<ArrayType>(I->base()->varDecl()->type());
      if (!checkIndex(E->loc(), I->base()->name(), Idx, Arr))
        return 0;
      size_t Offset = clampOffset(Idx, Arr, Arrays[Loc->Index].size());
      return Arrays[Loc->Index][Offset];
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      if (C->builtin() != BuiltinFn::None) {
        int64_t Arg = eval(C->args()[0]);
        switch (C->builtin()) {
        case BuiltinFn::Abs:
          return Arg < 0 ? satSub64(0, Arg) : Arg;
        case BuiltinFn::Sqr:
          return satMul64(Arg, Arg);
        case BuiltinFn::Odd:
          return (Arg % 2) != 0 ? 1 : 0;
        case BuiltinFn::None:
          break;
        }
        return 0;
      }
      return call(C);
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      int64_t Sub = eval(U->subExpr());
      return U->op() == UnaryOp::Neg ? satSub64(0, Sub) : (Sub == 0 ? 1 : 0);
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      // Pascal's 'and'/'or' evaluate both operands (no short-circuit).
      int64_t L = eval(B->lhs());
      int64_t R = eval(B->rhs());
      if (!running())
        return 0;
      switch (B->op()) {
      case BinaryOp::Add:
        return satAdd64(L, R);
      case BinaryOp::Sub:
        return satSub64(L, R);
      case BinaryOp::Mul:
        return satMul64(L, R);
      case BinaryOp::Div:
        if (R == 0) {
          fail(E->loc(), "division by zero");
          return 0;
        }
        if (L == INT64_MIN && R == -1)
          return INT64_MAX;
        return L / R;
      case BinaryOp::Mod:
        if (R == 0) {
          fail(E->loc(), "modulus is zero");
          return 0;
        }
        if (L == INT64_MIN && R == -1)
          return 0;
        return L % R;
      case BinaryOp::And:
        return (L != 0 && R != 0) ? 1 : 0;
      case BinaryOp::Or:
        return (L != 0 || R != 0) ? 1 : 0;
      case BinaryOp::Eq:
        return L == R;
      case BinaryOp::Ne:
        return L != R;
      case BinaryOp::Lt:
        return L < R;
      case BinaryOp::Le:
        return L <= R;
      case BinaryOp::Gt:
        return L > R;
      case BinaryOp::Ge:
        return L >= R;
      }
      return 0;
    }
    }
    return 0;
  }

  bool checkIndex(SourceLoc Loc, const std::string &Name, int64_t Idx,
                  const ArrayType *Arr) {
    if (Opts.EnableChecks) {
      ++Res.ChecksExecuted;
      if (!rtsRangeCheck(Idx, Arr->indexLo(), Arr->indexHi())) {
        fail(Loc, "index " + std::to_string(Idx) + " out of bounds " +
                      std::to_string(Arr->indexLo()) + ".." +
                      std::to_string(Arr->indexHi()) + " of " + Name);
        return false;
      }
    }
    return true;
  }

  /// Memory-safety clamp used when checks are disabled: out-of-range
  /// offsets wrap into the block, matching what an unchecked program
  /// would read from adjacent memory (a deliberate wrong answer, never a
  /// crash).
  static size_t clampOffset(int64_t Idx, const ArrayType *Arr, size_t Size) {
    int64_t Offset = Idx - Arr->indexLo();
    return static_cast<size_t>(Offset) % Size;
  }

  bool checkSubrange(SourceLoc Loc, const VarDecl *V, int64_t Value) {
    if (!Opts.EnableChecks)
      return true;
    const auto *Sub = dyn_cast<SubrangeType>(V->type());
    if (!Sub)
      return true;
    ++Res.ChecksExecuted;
    if (!rtsRangeCheck(Value, Sub->lo(), Sub->hi())) {
      fail(Loc, "value " + std::to_string(Value) + " out of range " +
                    std::to_string(Sub->lo()) + ".." +
                    std::to_string(Sub->hi()) + " of " + V->name());
      return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  int64_t call(const CallExpr *C) {
    const RoutineDecl *Callee = C->routine();
    if (Frames.size() >= Opts.MaxFrames) {
      failWith(Interpreter::Status::FrameLimit, C->loc(),
               "recursion too deep");
      return 0;
    }
    // Evaluate arguments in the caller's frame.
    Frame NewFrame;
    NewFrame.R = Callee;
    const std::vector<VarDecl *> &Formals = Callee->params();
    for (size_t I = 0; I < Formals.size() && I < C->args().size(); ++I) {
      VarDecl *Formal = Formals[I];
      if (Formal->isVarParam()) {
        const auto *Ref = cast<VarRefExpr>(C->args()[I]);
        Location *Loc = lookup(Ref->varDecl());
        if (!Loc) {
          fail(C->loc(), "missing storage for var argument");
          return 0;
        }
        NewFrame.Locals[Formal] = *Loc; // true aliasing
      } else {
        int64_t V = eval(C->args()[I]);
        if (!running())
          return 0;
        if (!checkSubrange(C->args()[I]->loc(), Formal, V))
          return 0;
        Location Loc;
        Loc.Index = Scalars.size();
        Scalars.push_back(V);
        NewFrame.Locals[Formal] = Loc;
      }
    }
    Frames.push_back(std::move(NewFrame));
    Flow F = execBlock(Callee);
    int64_t Result = 0;
    if (running() && Callee->isFunction()) {
      Location *Loc = &Frames.back().Locals[Callee->resultVar()];
      Result = Scalars[Loc->Index];
    }
    Frames.pop_back();
    if (F.K == Flow::Jump) {
      // Non-local jump: keep unwinding by re-raising through the current
      // routine (execStmtList loops check for it).
      PendingJump = F;
    }
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  Flow execBlock(const RoutineDecl *R) {
    Frame &F = Frames.back();
    if (R->isFunction())
      allocate(F, R->resultVar());
    if (R->block()) {
      for (VarDecl *V : R->block()->Vars)
        allocate(F, V);
    }
    // Temps created by the CFG builder are not in block()->Vars; the
    // interpreter never sees them (it walks the original AST).
    if (!R->block() || !R->block()->Body)
      return Flow();
    Flow Result = execStmt(R->block()->Body);
    if (Result.K == Flow::Jump && Result.JumpRoutine == R) {
      // A jump to one of our own labels that was not handled inside
      // execStmt: restart scanning from the labeled statement at the
      // outermost level.
      return jumpWithin(R, Result);
    }
    return Result;
  }

  /// Handles a pending jump whose target label lives at the outermost
  /// statement level of \p R's body.
  Flow jumpWithin(const RoutineDecl *R, Flow Jump) {
    const CompoundStmt *Body = R->block()->Body;
    while (running() && Jump.K == Flow::Jump && Jump.JumpRoutine == R) {
      const auto &List = Body->body();
      size_t Target = List.size();
      for (size_t I = 0; I < List.size(); ++I) {
        const auto *L = dyn_cast<LabeledStmt>(List[I]);
        if (L && L->label() == Jump.JumpLabel) {
          Target = I;
          break;
        }
      }
      if (Target == List.size())
        return fail(SourceLoc(), "goto target label " +
                                     std::to_string(Jump.JumpLabel) +
                                     " must be at the outermost level");
      Jump = Flow();
      for (size_t I = Target; I < List.size(); ++I) {
        Flow F = execStmt(List[I]);
        if (F.K != Flow::Normal) {
          Jump = F;
          break;
        }
      }
      if (Jump.K == Flow::Jump && Jump.JumpRoutine != R)
        return Jump;
    }
    return Jump;
  }

  Flow execStmtList(const std::vector<Stmt *> &List) {
    for (const Stmt *S : List) {
      Flow F = execStmt(S);
      if (F.K != Flow::Normal)
        return F;
    }
    return Flow();
  }

  Flow step(SourceLoc Loc) {
    if (++Steps > Opts.MaxSteps)
      return failWith(Interpreter::Status::StepLimit, Loc, "step limit");
    return Flow();
  }

  Flow execStmt(const Stmt *S) {
    if (!running())
      return Flow{Flow::Fail, nullptr, 0};
    if (Flow F = step(S->loc()); F.K != Flow::Normal)
      return F;
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      int64_t V = eval(A->value());
      if (!running())
        return Flow{Flow::Fail, nullptr, 0};
      if (Flow F = checkPendingJump(); F.K != Flow::Normal)
        return F;
      if (const auto *Ref = dyn_cast<VarRefExpr>(A->target())) {
        if (!checkSubrange(S->loc(), Ref->varDecl(), V))
          return Flow{Flow::Fail, nullptr, 0};
        Location *Loc = lookup(Ref->varDecl());
        Scalars[Loc->Index] = V;
        return Flow();
      }
      const auto *Idx = cast<IndexExpr>(A->target());
      int64_t Index = eval(Idx->index());
      if (!running())
        return Flow{Flow::Fail, nullptr, 0};
      const auto *Arr = cast<ArrayType>(Idx->base()->varDecl()->type());
      if (!checkIndex(S->loc(), Idx->base()->name(), Index, Arr))
        return Flow{Flow::Fail, nullptr, 0};
      Location *Loc = lookup(Idx->base()->varDecl());
      size_t Offset = clampOffset(Index, Arr, Arrays[Loc->Index].size());
      Arrays[Loc->Index][Offset] = V;
      return Flow();
    }
    case Stmt::Kind::Compound:
      return execStmtList(cast<CompoundStmt>(S)->body());
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      int64_t C = eval(I->cond());
      if (!running())
        return Flow{Flow::Fail, nullptr, 0};
      if (Flow F = checkPendingJump(); F.K != Flow::Normal)
        return F;
      if (C != 0)
        return execStmt(I->thenStmt());
      if (I->elseStmt())
        return execStmt(I->elseStmt());
      return Flow();
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      for (;;) {
        if (Flow F = step(S->loc()); F.K != Flow::Normal)
          return F;
        int64_t C = eval(W->cond());
        if (!running())
          return Flow{Flow::Fail, nullptr, 0};
        if (Flow F = checkPendingJump(); F.K != Flow::Normal)
          return F;
        if (C == 0)
          return Flow();
        Flow F = execStmt(W->body());
        if (F.K != Flow::Normal)
          return F;
      }
    }
    case Stmt::Kind::Repeat: {
      const auto *R = cast<RepeatStmt>(S);
      for (;;) {
        if (Flow F = step(S->loc()); F.K != Flow::Normal)
          return F;
        Flow F = execStmtList(R->body());
        if (F.K != Flow::Normal)
          return F;
        int64_t C = eval(R->cond());
        if (!running())
          return Flow{Flow::Fail, nullptr, 0};
        if (Flow PJ = checkPendingJump(); PJ.K != Flow::Normal)
          return PJ;
        if (C != 0)
          return Flow();
      }
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      int64_t From = eval(F->from());
      int64_t To = eval(F->to());
      if (!running())
        return Flow{Flow::Fail, nullptr, 0};
      if (Flow PJ = checkPendingJump(); PJ.K != Flow::Normal)
        return PJ;
      const VarDecl *Var = F->var()->varDecl();
      bool Down = F->isDownward();
      if (Down ? From < To : From > To)
        return Flow();
      Location *Loc = lookup(Var);
      for (int64_t I = From;; I += Down ? -1 : 1) {
        if (!checkSubrange(S->loc(), Var, I))
          return Flow{Flow::Fail, nullptr, 0};
        Scalars[Loc->Index] = I;
        if (Flow Fl = step(S->loc()); Fl.K != Flow::Normal)
          return Fl;
        Flow Fl = execStmt(F->body());
        if (Fl.K != Flow::Normal)
          return Fl;
        if (I == To)
          return Flow();
      }
    }
    case Stmt::Kind::Case: {
      const auto *C = cast<CaseStmt>(S);
      int64_t Sel = eval(C->selector());
      if (!running())
        return Flow{Flow::Fail, nullptr, 0};
      if (Flow PJ = checkPendingJump(); PJ.K != Flow::Normal)
        return PJ;
      for (const CaseArm &Arm : C->arms())
        for (int64_t L : Arm.Labels)
          if (Sel == L)
            return execStmt(Arm.Body);
      if (C->elseStmt())
        return execStmt(C->elseStmt());
      if (Opts.EnableChecks)
        return fail(S->loc(), "case selector " + std::to_string(Sel) +
                                  " matches no arm");
      return Flow();
    }
    case Stmt::Kind::Call: {
      (void)call(cast<CallStmt>(S)->call());
      if (!running())
        return Flow{Flow::Fail, nullptr, 0};
      return checkPendingJump();
    }
    case Stmt::Kind::Read: {
      const auto *R = cast<ReadStmt>(S);
      for (const Expr *Target : R->targets()) {
        if (InputPos >= Opts.Inputs.size())
          return failWith(Interpreter::Status::InputExhausted, S->loc(),
                          "input exhausted");
        int64_t V = Opts.Inputs[InputPos++];
        if (const auto *Ref = dyn_cast<VarRefExpr>(Target)) {
          if (!checkSubrange(S->loc(), Ref->varDecl(), V))
            return Flow{Flow::Fail, nullptr, 0};
          Scalars[lookup(Ref->varDecl())->Index] = V;
          continue;
        }
        const auto *Idx = cast<IndexExpr>(Target);
        int64_t Index = eval(Idx->index());
        if (!running())
          return Flow{Flow::Fail, nullptr, 0};
        const auto *Arr = cast<ArrayType>(Idx->base()->varDecl()->type());
        if (!checkIndex(S->loc(), Idx->base()->name(), Index, Arr))
          return Flow{Flow::Fail, nullptr, 0};
        Location *Loc = lookup(Idx->base()->varDecl());
        size_t Offset = clampOffset(Index, Arr, Arrays[Loc->Index].size());
        Arrays[Loc->Index][Offset] = V;
      }
      return Flow();
    }
    case Stmt::Kind::Write: {
      const auto *W = cast<WriteStmt>(S);
      for (const Expr *E : W->values()) {
        if (const auto *Str = dyn_cast<StringLiteralExpr>(E)) {
          Res.Output += Str->value();
          continue;
        }
        int64_t V = eval(E);
        if (!running())
          return Flow{Flow::Fail, nullptr, 0};
        if (E->type() && E->type()->isBoolean())
          Res.Output += V ? "true" : "false";
        else
          Res.Output += std::to_string(V);
        Res.Output += ' ';
      }
      Res.Output += '\n';
      return checkPendingJump();
    }
    case Stmt::Kind::Goto: {
      const auto *G = cast<GotoStmt>(S);
      Flow F;
      F.K = Flow::Jump;
      F.JumpRoutine = G->targetRoutine();
      F.JumpLabel = G->label();
      return F;
    }
    case Stmt::Kind::Labeled:
      return execStmt(cast<LabeledStmt>(S)->subStmt());
    case Stmt::Kind::Empty:
      return Flow();
    case Stmt::Kind::Assert: {
      // Assertions are analysis directives; a violated *invariant* is a
      // runtime error under checks (like C assert), intermittent
      // assertions have no runtime effect.
      const auto *A = cast<AssertStmt>(S);
      if (A->isInvariant() && Opts.EnableChecks) {
        int64_t C = eval(A->cond());
        if (!running())
          return Flow{Flow::Fail, nullptr, 0};
        if (C == 0)
          return fail(S->loc(), "invariant assertion violated");
      }
      return Flow();
    }
    }
    return Flow();
  }

  /// A non-local jump raised inside an expression call surfaces here.
  Flow checkPendingJump() {
    if (PendingJump.K != Flow::Jump)
      return Flow();
    Flow F = PendingJump;
    PendingJump = Flow();
    // If the jump targets the current routine, let execBlock handle it.
    return F;
  }

  const Interpreter::Options &Opts;
  const RoutineDecl *Program;
  std::deque<int64_t> Scalars;
  std::deque<std::vector<int64_t>> Arrays;
  std::vector<Frame> Frames;
  Interpreter::Result Res;
  Flow PendingJump;
  uint64_t Steps = 0;
  size_t InputPos = 0;
};

} // namespace

Interpreter::Result Interpreter::run(const Options &Opts) const {
  Machine M(Program, Opts);
  return M.run();
}
