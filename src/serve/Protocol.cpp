//===- serve/Protocol.cpp - syntox_serve wire protocol --------------------===//

#include "serve/Protocol.h"

#include "core/AnalysisFlags.h"

#include <cerrno>
#include <poll.h>
#include <unistd.h>

using namespace syntox;
using namespace syntox::serve;

const char *serve::requestKindName(RequestKind K) {
  switch (K) {
  case RequestKind::Analyze:
    return "analyze";
  case RequestKind::Gc:
    return "gc";
  case RequestKind::Metrics:
    return "metrics";
  case RequestKind::Ping:
    return "ping";
  case RequestKind::Shutdown:
    return "shutdown";
  }
  return "analyze";
}

namespace {

bool parseKind(const std::string &Name, RequestKind &Out) {
  if (Name == "analyze")
    Out = RequestKind::Analyze;
  else if (Name == "gc")
    Out = RequestKind::Gc;
  else if (Name == "metrics")
    Out = RequestKind::Metrics;
  else if (Name == "ping")
    Out = RequestKind::Ping;
  else if (Name == "shutdown")
    Out = RequestKind::Shutdown;
  else
    return false;
  return true;
}

bool wantBool(const json::Value &V, const std::string &Key, bool &Out,
              std::string &Error) {
  if (!V.isBool()) {
    Error = "option '" + Key + "' must be a boolean";
    return false;
  }
  Out = V.asBool();
  return true;
}

bool wantUnsigned(const json::Value &V, const std::string &Key,
                  unsigned &Out, std::string &Error) {
  if (!V.isInt() || V.asInt() < 0) {
    Error = "option '" + Key + "' must be a non-negative integer";
    return false;
  }
  Out = static_cast<unsigned>(V.asInt());
  return true;
}

/// Applies one "options" member onto \p Opts. The member vocabulary is
/// the wire rendering of AnalysisOptions — kept in lockstep with
/// schemas/serve-request.schema.json.
bool applyOption(const std::string &Key, const json::Value &V,
                 AnalysisOptions &Opts, std::string &Error) {
  if (Key == "strategy") {
    if (V.isString() && V.asString() == "recursive")
      Opts.Strategy = IterationStrategy::Recursive;
    else if (V.isString() && V.asString() == "worklist")
      Opts.Strategy = IterationStrategy::Worklist;
    else if (V.isString() && V.asString() == "parallel")
      Opts.Strategy = IterationStrategy::Parallel;
    else {
      Error = "option 'strategy' must be \"recursive\", \"worklist\" "
              "or \"parallel\"";
      return false;
    }
    return true;
  }
  if (Key == "threads")
    return wantUnsigned(V, Key, Opts.NumThreads, Error);
  if (Key == "transfer_cache") {
    bool On = false;
    if (!wantBool(V, Key, On, Error))
      return false;
    Opts.transferCache(On);
    return true;
  }
  if (Key == "narrowing_passes")
    return wantUnsigned(V, Key, Opts.NarrowingPasses, Error);
  if (Key == "backward_rounds")
    return wantUnsigned(V, Key, Opts.BackwardRounds, Error);
  if (Key == "termination_goal")
    return wantBool(V, Key, Opts.TerminationGoal, Error);
  if (Key == "backward")
    return wantBool(V, Key, Opts.UseBackward, Error);
  if (Key == "harrison_gfp")
    return wantBool(V, Key, Opts.HarrisonGfp, Error);
  if (Key == "context_insensitive")
    return wantBool(V, Key, Opts.ContextInsensitive, Error);
  if (Key == "warm_start")
    return wantBool(V, Key, Opts.WarmStart, Error);
  if (Key == "widening_thresholds") {
    if (!V.isArray()) {
      Error = "option 'widening_thresholds' must be an array of integers";
      return false;
    }
    std::vector<int64_t> T;
    for (const json::Value &E : V.elements()) {
      if (!E.isInt()) {
        Error = "option 'widening_thresholds' must be an array of integers";
        return false;
      }
      T.push_back(E.asInt());
    }
    Opts.WideningThresholds = std::move(T);
    return true;
  }
  if (Key == "cache_dir") {
    Error = "option 'cache_dir' is not accepted over the wire: the "
            "server owns its cache directory; name the document with "
            "'cache_key' instead";
    return false;
  }
  Error = "unknown option '" + Key + "'";
  return false;
}

} // namespace

bool serve::parseServeRequest(const std::string &Line,
                              const AnalysisOptions &Defaults,
                              ServeRequest &Out, std::string &Error) {
  Out = ServeRequest();
  Out.Opts = Defaults;

  std::string ParseError;
  std::optional<json::Value> Doc = json::parse(Line, &ParseError);
  if (!Doc) {
    Error = "malformed request line: " + ParseError;
    return false;
  }
  if (!Doc->isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  // Recover the id first so even a rejected request gets a correlated
  // error response.
  if (const json::Value *Id = Doc->find("id"); Id && Id->isString())
    Out.Id = Id->asString();

  const json::Value *Version = Doc->find("protocol_version");
  if (!Version || !Version->isInt() ||
      Version->asInt() != static_cast<int64_t>(ProtocolVersion)) {
    Error = "missing or unsupported protocol_version (this server "
            "speaks version " +
            std::to_string(ProtocolVersion) + ")";
    return false;
  }
  if (Out.Id.empty()) {
    Error = "missing request id (a non-empty string)";
    return false;
  }

  if (const json::Value *Kind = Doc->find("kind")) {
    if (!Kind->isString() || !parseKind(Kind->asString(), Out.Kind)) {
      Error = "unknown request kind" +
              (Kind->isString() ? " '" + Kind->asString() + "'"
                                : std::string()) +
              " (expected analyze, gc, metrics, ping or shutdown)";
      return false;
    }
  }

  for (const auto &KV : Doc->members()) {
    const std::string &Key = KV.first;
    const json::Value &V = KV.second;
    if (Key == "protocol_version" || Key == "id" || Key == "kind")
      continue;
    if (Key == "source") {
      if (!V.isString()) {
        Error = "'source' must be a string";
        return false;
      }
      Out.Source = V.asString();
    } else if (Key == "options") {
      if (!V.isObject()) {
        Error = "'options' must be an object";
        return false;
      }
      for (const auto &Opt : V.members())
        if (!applyOption(Opt.first, Opt.second, Out.Opts, Error))
          return false;
    } else if (Key == "query") {
      if (!V.isString()) {
        Error = "'query' must be a string (point:LINE[:COL] or "
                "assertion:ID)";
        return false;
      }
      DemandSpec Spec;
      if (!parseQuerySpec(V.asString(), Spec, Error))
        return false;
      Out.Query = Spec;
    } else if (Key == "cache_key") {
      if (!V.isString() || V.asString().empty()) {
        Error = "'cache_key' must be a non-empty string";
        return false;
      }
      Out.CacheKey = V.asString();
    } else if (Key == "timeout_ms") {
      if (!V.isInt() || V.asInt() < 0) {
        Error = "'timeout_ms' must be a non-negative integer";
        return false;
      }
      Out.TimeoutMs = static_cast<unsigned>(V.asInt());
    } else {
      Error = "unknown request member '" + Key + "'";
      return false;
    }
  }

  if (Out.Kind == RequestKind::Analyze && Out.Source.empty()) {
    Error = "analyze request without 'source'";
    return false;
  }
  if (Out.Kind != RequestKind::Analyze &&
      (!Out.Source.empty() || Out.Query)) {
    Error = std::string("'source'/'query' are only valid on analyze "
                        "requests, not '") +
            requestKindName(Out.Kind) + "'";
    return false;
  }
  return true;
}

json::Value serve::makeEnvelope(const std::string &Id, RequestKind Kind,
                                const char *Status) {
  json::Value V = json::Value::object();
  V.set("protocol_version", ProtocolVersion);
  V.set("id", Id);
  V.set("kind", requestKindName(Kind));
  V.set("status", Status);
  return V;
}

void serve::setTiming(json::Value &Envelope, double QueueMs, double RunMs) {
  json::Value T = json::Value::object();
  T.set("queue_ms", QueueMs);
  T.set("run_ms", RunMs);
  T.set("total_ms", QueueMs + RunMs);
  Envelope.set("timing", std::move(T));
}

LineReader::Status LineReader::next(std::string &Line, int TimeoutMs) {
  for (;;) {
    size_t Nl = Buffer.find('\n');
    if (Nl != std::string::npos) {
      Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      return Status::Line;
    }
    if (AtEof) {
      if (!Buffer.empty()) {
        Line = std::move(Buffer);
        Buffer.clear();
        return Status::Line;
      }
      return Status::Eof;
    }
    struct pollfd P = {Fd, POLLIN, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N == 0)
      return Status::Idle;
    if (N < 0) {
      if (errno == EINTR)
        return Status::Idle; // let the caller re-check its drain flag
      AtEof = true;
      continue;
    }
    char Chunk[4096];
    ssize_t Got = ::read(Fd, Chunk, sizeof(Chunk));
    if (Got <= 0) {
      AtEof = true; // disconnect (or error): flush, then EOF
      continue;
    }
    Buffer.append(Chunk, static_cast<size_t>(Got));
  }
}
