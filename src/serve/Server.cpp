//===- serve/Server.cpp - Long-lived analysis daemon ----------------------===//

#include "serve/Server.h"

#include "frontend/Fingerprint.h"
#include "persist/CacheGc.h"
#include "support/Diagnostics.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <unistd.h>

using namespace syntox;
using namespace syntox::serve;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start, Clock::time_point End) {
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

uint64_t fpString(const std::string &S) {
  uint64_t H = fpSeed();
  for (unsigned char C : S)
    H = fpMix(H, C);
  return H;
}

/// Canonical rendering of every option member a request can set (plus
/// the derived cache shard) — the re-runnable identity half of a
/// parked-session key.
std::string renderOptions(const AnalysisOptions &O) {
  std::string S;
  S += std::to_string(static_cast<int>(O.Strategy));
  S += '|';
  S += std::to_string(O.NumThreads);
  S += '|';
  S += O.TransferCacheSet ? (O.UseTransferCache ? '1' : '0') : '-';
  S += '|';
  S += std::to_string(O.AdaptiveCacheInstanceThreshold);
  S += '|';
  S += std::to_string(O.NarrowingPasses);
  S += '|';
  S += std::to_string(O.BackwardRounds);
  S += '|';
  S += O.TerminationGoal ? '1' : '0';
  S += O.UseBackward ? '1' : '0';
  S += O.HarrisonGfp ? '1' : '0';
  S += O.ContextInsensitive ? '1' : '0';
  S += O.WarmStart ? '1' : '0';
  S += '|';
  for (int64_t T : O.WideningThresholds) {
    S += std::to_string(T);
    S += ',';
  }
  S += '|';
  S += O.CacheDir;
  return S;
}

std::string sessionKey(const std::string &Source,
                       const AnalysisOptions &Opts) {
  // Hash the (potentially large) source, keep the options readable;
  // collisions would only ever swap two sessions, never findings —
  // the session re-runs whatever program it actually holds.
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx:",
                static_cast<unsigned long long>(fpString(Source)));
  return Buf + renderOptions(Opts);
}

} // namespace

/// One admitted analyze request, shared between the read loop and the
/// worker that runs it.
struct Server::Pending {
  ServeRequest R;
  Clock::time_point Enqueued;
};

Server::Server(ServerConfig Cfg) : Cfg(std::move(Cfg)) {}
Server::~Server() = default;

std::unique_ptr<AnalysisSession> Server::takeSession(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(SessionMutex);
  for (auto It = Parked.begin(); It != Parked.end(); ++It)
    if (It->Key == Key) {
      std::unique_ptr<AnalysisSession> S = std::move(It->Session);
      Parked.erase(It);
      Metrics.counter("serve.session_hits").inc();
      return S;
    }
  Metrics.counter("serve.session_misses").inc();
  return nullptr;
}

void Server::parkSession(std::string Key,
                         std::unique_ptr<AnalysisSession> Session) {
  if (Cfg.SessionCapacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(SessionMutex);
  Parked.push_front(ParkedSession{std::move(Key), std::move(Session)});
  while (Parked.size() > Cfg.SessionCapacity) {
    Parked.pop_back();
    Metrics.counter("serve.session_evictions").inc();
  }
}

void Server::writeLine(int OutFd, const json::Value &Response) {
  std::string Line = Response.str();
  Line += '\n';
  std::lock_guard<std::mutex> Lock(WriteMutex);
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(OutFd, Line.data() + Off, Line.size() - Off);
    if (N <= 0)
      return; // client gone; the drain still completes server-side
    Off += static_cast<size_t>(N);
  }
}

json::Value Server::gcPayload() {
  persist::CacheGcResult G;
  {
    std::lock_guard<std::mutex> Lock(GcMutex);
    G = persist::gcCacheDir(Cfg.CacheDir, Cfg.CacheMaxBytes);
  }
  Metrics.counter("serve.gc_runs").inc();
  Metrics.counter("serve.gc_files_removed").inc(G.FilesRemoved);
  json::Value V = json::Value::object();
  V.set("bytes_before", G.BytesBefore);
  V.set("bytes_after", G.BytesAfter);
  V.set("files_removed", G.FilesRemoved);
  V.set("files_kept", G.FilesKept);
  V.set("max_bytes", Cfg.CacheMaxBytes);
  return V;
}

void Server::runAnalyze(std::shared_ptr<Pending> P, int OutFd) {
  const ServeRequest &R = P->R;
  Clock::time_point Picked = Clock::now();
  double QueueMs = msSince(P->Enqueued, Picked);
  Metrics.histogram("serve.queue_ms").observe(QueueMs);

  // Admission-time deadline: the solver has no preemption point, so an
  // expired request is shed here, before it can occupy a worker for a
  // full solve.
  unsigned TimeoutMs = R.TimeoutMs ? R.TimeoutMs : Cfg.RequestTimeoutMs;
  if (TimeoutMs && QueueMs > static_cast<double>(TimeoutMs)) {
    Metrics.counter("serve.timeouts").inc();
    json::Value Resp = makeEnvelope(R.Id, R.Kind, "timeout");
    Resp.set("error", "request spent " + std::to_string(QueueMs) +
                          "ms in queue, past its " +
                          std::to_string(TimeoutMs) + "ms deadline");
    setTiming(Resp, QueueMs, 0.0);
    writeLine(OutFd, Resp);
    return;
  }

  if (Cfg.TestStartDelayMs)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Cfg.TestStartDelayMs));

  AnalysisOptions Opts = R.Opts;
  Opts.Telem.Metrics = &Metrics;
  Opts.Telem.Trace = nullptr;
  if (!R.CacheKey.empty() && !Cfg.CacheDir.empty()) {
    char Shard[24];
    std::snprintf(Shard, sizeof(Shard), "/%016llx",
                  static_cast<unsigned long long>(fpString(R.CacheKey)));
    Opts.CacheDir = Cfg.CacheDir + Shard;
  } else {
    Opts.CacheDir.clear();
  }

  std::string Key = sessionKey(R.Source, Opts);
  std::unique_ptr<AnalysisSession> Session = takeSession(Key);
  if (!Session) {
    DiagnosticsEngine Diags;
    Session = AnalysisSession::create(R.Source, Diags, Opts);
    if (!Session) {
      Metrics.counter("serve.errors").inc();
      json::Value Resp = makeEnvelope(R.Id, R.Kind, "error");
      Resp.set("error", Diags.str());
      setTiming(Resp, QueueMs, msSince(Picked, Clock::now()));
      writeLine(OutFd, Resp);
      return;
    }
  }

  AnalysisOutcome O = runRequest(*Session, R.Query);
  double RunMs = msSince(Picked, Clock::now());
  Metrics.histogram("serve.run_ms").observe(RunMs);

  json::Value Resp = makeEnvelope(R.Id, R.Kind, O.OK ? "ok" : "error");
  if (!O.OK) {
    Metrics.counter("serve.errors").inc();
    Resp.set("error", O.Error);
  } else if (O.Demand) {
    Resp.set("demand", O.findingsJson());
  } else {
    Resp.set("findings", O.findingsJson());
  }
  setTiming(Resp, QueueMs, RunMs);

  if (O.OK)
    parkSession(std::move(Key), std::move(Session));
  if (O.OK && !Opts.CacheDir.empty() && Cfg.CacheMaxBytes)
    gcPayload(); // hold the tree under its cap after every save

  writeLine(OutFd, Resp);
}

void Server::handleLine(const std::string &Line, ThreadPool &Pool,
                        int OutFd) {
  ServeRequest R;
  std::string Error;
  if (!parseServeRequest(Line, Cfg.Defaults, R, Error)) {
    Metrics.counter("serve.errors").inc();
    json::Value Resp = makeEnvelope(R.Id, R.Kind, "error");
    Resp.set("error", Error);
    setTiming(Resp, 0.0, 0.0);
    writeLine(OutFd, Resp);
    return;
  }

  Metrics.counter("serve.requests").inc();
  switch (R.Kind) {
  case RequestKind::Analyze: {
    auto P = std::make_shared<Pending>();
    P->R = std::move(R);
    P->Enqueued = Clock::now();
    Pool.submit([this, P, OutFd] { runAnalyze(P, OutFd); });
    return;
  }
  case RequestKind::Gc: {
    json::Value Resp = makeEnvelope(R.Id, R.Kind, "ok");
    Resp.set("gc", gcPayload());
    setTiming(Resp, 0.0, 0.0);
    writeLine(OutFd, Resp);
    return;
  }
  case RequestKind::Metrics: {
    json::Value Resp = makeEnvelope(R.Id, R.Kind, "ok");
    Resp.set("metrics", Metrics.snapshot());
    setTiming(Resp, 0.0, 0.0);
    writeLine(OutFd, Resp);
    return;
  }
  case RequestKind::Ping: {
    json::Value Resp = makeEnvelope(R.Id, R.Kind, "ok");
    setTiming(Resp, 0.0, 0.0);
    writeLine(OutFd, Resp);
    return;
  }
  case RequestKind::Shutdown: {
    ShutdownRequested.store(true, std::memory_order_relaxed);
    requestDrain();
    json::Value Resp = makeEnvelope(R.Id, R.Kind, "ok");
    setTiming(Resp, 0.0, 0.0);
    writeLine(OutFd, Resp);
    return;
  }
  }
}

bool Server::serve(int InFd, int OutFd) {
  ThreadBudget Budget(Cfg.TotalThreads);
  unsigned Workers = Budget.total();
  if (Cfg.MaxConcurrentRequests)
    Workers = std::min(Workers, Cfg.MaxConcurrentRequests);
  {
    // Identical to the AnalysisBatch admission scheme: the request pool
    // draws from the budget, its workers inherit it, nested parallel
    // solvers borrow what the request pool left over.
    ThreadBudget::Scope Scope(Budget);
    ThreadPool Pool(Workers);
    ActiveBudget.store(&Budget, std::memory_order_release);
    LineReader Reader(InFd);
    std::string Line;
    while (!draining()) {
      LineReader::Status S = Reader.next(Line, /*TimeoutMs=*/100);
      if (S == LineReader::Status::Eof)
        break;
      if (S == LineReader::Status::Idle)
        continue;
      if (Line.empty())
        continue;
      handleLine(Line, Pool, OutFd);
    }
    // Graceful drain: every admitted request completes and responds
    // before the pool (and with it this connection's serving) winds
    // down.
    Pool.wait();
    ActiveBudget.store(nullptr, std::memory_order_release);
  }
  unsigned Peak = std::max(PeakLive.load(std::memory_order_relaxed),
                           Budget.peakLiveThreads());
  PeakLive.store(Peak, std::memory_order_relaxed);
  Metrics.gauge("serve.peak_live_threads").set(static_cast<int64_t>(Peak));
  return !ShutdownRequested.load(std::memory_order_relaxed);
}

unsigned Server::peakLiveThreads() const {
  unsigned Peak = PeakLive.load(std::memory_order_relaxed);
  if (ThreadBudget *B = ActiveBudget.load(std::memory_order_acquire))
    Peak = std::max(Peak, B->peakLiveThreads());
  return Peak;
}
