//===- serve/Protocol.h - syntox_serve wire protocol ------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned JSON-lines protocol of the analysis daemon: one JSON
/// object per line in, one JSON object per line out, in request order
/// of completion (responses carry the request id, so clients may
/// pipeline).
///
/// Request (schemas/serve-request.schema.json):
///
///   {"protocol_version": 1, "id": "r1", "kind": "analyze",
///    "source": "program p; ...", "options": {"strategy": "parallel"},
///    "query": "point:12", "cache_key": "file:///a.pas",
///    "timeout_ms": 5000}
///
///   kind       analyze (default) | gc | metrics | ping | shutdown
///   source     program text — required for analyze
///   options    per-request analysis knobs overriding the server
///              defaults, member by member. Unknown members are
///              rejected; "cache_dir" in particular is rejected —
///              clients name documents via cache_key, never server
///              paths.
///   query      optional demand query, the CLI's --query= grammar:
///              "point:LINE[:COL]" or "assertion:ID"
///   cache_key  optional stable client document identity (a URI, a
///              path...). Requests carrying one share the per-document
///              shard of the server's on-disk warm cache, so
///              resubmitting an edited document warm-starts. Without
///              it a request never touches the disk cache.
///   timeout_ms per-request override of the server's admission timeout
///
/// Response (schemas/serve-response.schema.json): an envelope
///
///   {"protocol_version": 1, "id": "r1", "kind": "analyze",
///    "status": "ok", "findings": {...}, "timing": {"queue_ms": ...,
///    "run_ms": ..., "total_ms": ...}}
///
///   status     ok | error | timeout
///   findings   the full findings document (findings.schema.json) for
///              full analyze requests
///   demand     the partial-findings document for query requests
///   gc / metrics   admin-request payloads
///
/// A line that cannot be parsed at all, or whose envelope members are
/// malformed, produces a status:"error" response (with the request id
/// when one was recoverable) and never kills the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SERVE_PROTOCOL_H
#define SYNTOX_SERVE_PROTOCOL_H

#include "core/AnalysisRequest.h"
#include "support/Json.h"

#include <optional>
#include <string>

namespace syntox {
namespace serve {

/// Version of the wire protocol; requests must carry exactly this.
inline constexpr uint32_t ProtocolVersion = 1;

enum class RequestKind { Analyze, Gc, Metrics, Ping, Shutdown };

const char *requestKindName(RequestKind K);

/// One parsed request line.
struct ServeRequest {
  std::string Id;      ///< echoed in the response envelope
  RequestKind Kind = RequestKind::Analyze;
  std::string Source;  ///< program text (analyze only)
  AnalysisOptions Opts; ///< server defaults + request "options" overlay
  std::optional<DemandSpec> Query;
  std::string CacheKey; ///< empty = this request skips the disk cache
  unsigned TimeoutMs = 0; ///< 0 = the server default applies
};

/// Parses one request line against \p Defaults (the server's analysis
/// configuration, which the request's "options" object overrides member
/// by member). Returns false with \p Error set on malformed input; when
/// an "id" member was readable it is left in \p Out.Id so the error
/// response can still be correlated.
bool parseServeRequest(const std::string &Line,
                       const AnalysisOptions &Defaults, ServeRequest &Out,
                       std::string &Error);

/// The response envelope shared by every status: protocol_version, id,
/// kind, status. Payload members and timing are set by the caller.
json::Value makeEnvelope(const std::string &Id, RequestKind Kind,
                         const char *Status);

/// Attaches the required timing block (milliseconds).
void setTiming(json::Value &Envelope, double QueueMs, double RunMs);

/// A buffered line reader over a file descriptor, built on poll(2) so
/// the serving loop can interleave reads with drain-flag checks.
class LineReader {
public:
  explicit LineReader(int Fd) : Fd(Fd) {}

  enum class Status {
    Line, ///< a complete line was produced
    Idle, ///< nothing arrived within the poll timeout
    Eof,  ///< peer closed and the buffer is drained
  };

  /// Produces the next input line (without its terminator) in \p Line,
  /// waiting at most \p TimeoutMs for input. A read error counts as
  /// end of stream (a disconnected client); a trailing partial line at
  /// EOF is delivered as a final line.
  Status next(std::string &Line, int TimeoutMs);

private:
  int Fd;
  std::string Buffer;
  bool AtEof = false;
};

} // namespace serve
} // namespace syntox

#endif // SYNTOX_SERVE_PROTOCOL_H
