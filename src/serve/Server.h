//===- serve/Server.h - Long-lived analysis daemon --------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer: a Server reads JSON-lines requests (see
/// serve/Protocol.h) from a descriptor, schedules analyze requests over
/// one shared worker-slot budget, and writes one response line per
/// request. It is the third driver of the shared AnalysisRequest /
/// AnalysisOutcome submission model, after the CLI and AnalysisBatch.
///
/// Scheduling. Analyze requests run on a server-owned ThreadPool whose
/// workers draw from a ThreadBudget of Config::TotalThreads slots —
/// exactly the AnalysisBatch admission scheme, so a request whose
/// options select the parallel strategy borrows *nested* solver workers
/// from the same budget and the process never oversubscribes
/// (peakLiveThreads() <= TotalThreads, regardless of traffic). Admin
/// requests (gc, metrics, ping, shutdown) are answered inline on the
/// reading thread, ahead of queued analyses.
///
/// Resource bounds.
///  - In-memory: completed sessions are parked in an LRU keyed by
///    (source, effective options, cache shard), capacity
///    Config::SessionCapacity. A resubmitted identical request takes
///    the parked session and re-runs it — the engine-reuse path, which
///    replays unchanged work at zero live steps. Entries are *taken*
///    while in use, so concurrent identical requests each get their own
///    session (sessions are not thread-safe).
///  - On-disk: requests carrying a cache_key persist warm-start state
///    under CacheDir/<fnv1a(cache_key)>/ (one shard per client
///    document, so distinct documents never fight over one cache
///    file). After every save the server collects the tree down to
///    Config::CacheMaxBytes, oldest entries first (persist/CacheGc.h);
///    the `gc` admin request forces a collection.
///
/// Timeouts are enforced at admission: the solver has no preemption
/// point, so a deadline cannot cancel a running fixpoint — instead a
/// request that has already exceeded its deadline when a worker picks
/// it up is answered status:"timeout" without running. An overloaded
/// server therefore sheds queued work at the deadline, and every
/// accepted request is answered in bounded queue time plus at most one
/// full solve.
///
/// Shutdown. requestDrain() (wired to SIGTERM/SIGINT by syntox_serve)
/// or a `shutdown` request stops the read loop; every admitted request
/// still runs to completion and writes its response before serve()
/// returns — a graceful drain, never a mid-response cut.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_SERVE_SERVER_H
#define SYNTOX_SERVE_SERVER_H

#include "core/AnalysisRequest.h"
#include "serve/Protocol.h"
#include "support/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

namespace syntox {

class ThreadBudget;
class ThreadPool;

namespace serve {

struct ServerConfig {
  /// Per-request analysis defaults; a request's "options" object
  /// overrides them member by member.
  AnalysisOptions Defaults;
  /// Worker-slot budget shared by the request pool and nested parallel
  /// solvers (0 = one slot per hardware thread).
  unsigned TotalThreads = 0;
  /// Cap on analyze requests in flight at once (0 = the whole budget).
  unsigned MaxConcurrentRequests = 0;
  /// Default admission deadline per analyze request, in milliseconds
  /// (0 = none). A request's timeout_ms member overrides it.
  unsigned RequestTimeoutMs = 0;
  /// Root of the on-disk warm cache (empty = disk cache off). Requests
  /// name their shard with cache_key; requests without one never touch
  /// the disk.
  std::string CacheDir;
  /// Size cap the post-save collector holds the cache tree to
  /// (0 = unbounded).
  uint64_t CacheMaxBytes = 0;
  /// Capacity of the parked-session LRU (0 = parking disabled).
  unsigned SessionCapacity = 32;
  /// Test hook: every analyze job sleeps this long at the start of its
  /// run phase, making in-flight windows deterministic for the drain
  /// and timeout tests. Zero in production.
  unsigned TestStartDelayMs = 0;
};

class Server {
public:
  explicit Server(ServerConfig Cfg);
  ~Server();

  /// Serves one client connection: requests from \p InFd, responses to
  /// \p OutFd, until end of input, a shutdown request, or
  /// requestDrain(). Admitted work is drained before returning.
  /// Returns false when the client asked the daemon to shut down (the
  /// accept loop should then stop), true when more clients may follow.
  bool serve(int InFd, int OutFd);

  /// Initiates a graceful drain from any thread (async-signal-safe: a
  /// lock-free atomic store).
  void requestDrain() { Draining.store(true, std::memory_order_relaxed); }
  bool draining() const { return Draining.load(std::memory_order_relaxed); }

  /// The server-wide registry every request reports into.
  MetricsRegistry &metrics() { return Metrics; }

  /// Largest number of budgeted pool threads ever live at once — the
  /// oversubscription guard's observable (<= TotalThreads). Valid both
  /// mid-serve and after serve() returns.
  unsigned peakLiveThreads() const;

private:
  struct Pending; // one admitted analyze request

  void handleLine(const std::string &Line, ThreadPool &Pool, int OutFd);
  void runAnalyze(std::shared_ptr<Pending> P, int OutFd);
  json::Value gcPayload();
  void writeLine(int OutFd, const json::Value &Response);

  /// The parked-session cache (see file comment). Key is the exact
  /// re-runnable identity: source text, effective options rendering,
  /// cache shard.
  struct ParkedSession {
    std::string Key;
    std::unique_ptr<AnalysisSession> Session;
  };
  std::unique_ptr<AnalysisSession> takeSession(const std::string &Key);
  void parkSession(std::string Key,
                   std::unique_ptr<AnalysisSession> Session);

  ServerConfig Cfg;
  MetricsRegistry Metrics;
  std::atomic<bool> Draining{false};
  std::atomic<bool> ShutdownRequested{false};
  std::mutex WriteMutex;   ///< one response line at a time
  std::mutex SessionMutex; ///< guards Parked
  std::mutex GcMutex;      ///< one collection at a time
  std::list<ParkedSession> Parked; ///< front = most recently used
  std::atomic<unsigned> PeakLive{0};
  /// The budget of the connection currently being served, so
  /// peakLiveThreads() sees live traffic, not just finished
  /// connections.
  std::atomic<ThreadBudget *> ActiveBudget{nullptr};
};

} // namespace serve
} // namespace syntox

#endif // SYNTOX_SERVE_SERVER_H
