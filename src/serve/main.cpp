//===- serve/main.cpp - syntox_serve entry point --------------------------===//
//
// The long-lived analysis daemon. Speaks the JSON-lines protocol of
// serve/Protocol.h over stdio (default), a Unix socket, or a TCP port:
//
//   syntox_serve [options]
//     --listen=stdio | unix:PATH | tcp:PORT
//     --threads-total=N     worker-slot budget (0 = hardware threads)
//     --max-concurrent=N    analyze requests in flight (0 = budget)
//     --timeout-ms=N        default admission deadline (0 = none)
//     --cache-dir=DIR       root of the on-disk warm cache
//     --cache-max-bytes=N   size cap the cache tree is collected to
//     --sessions=N          parked-session LRU capacity
//     --test-start-delay-ms=N   test hook (see ServerConfig)
//   plus every shared analysis flag (--strategy=, --rounds=, ...) as
//   the per-request defaults that a request's "options" object
//   overrides.
//
// SIGTERM/SIGINT start a graceful drain: the read loop stops, every
// admitted request still answers, then the process exits 0. Socket
// modes accept one connection at a time and serve it to EOF; a client
// `shutdown` request ends the accept loop.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisFlags.h"
#include "serve/Server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <poll.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace syntox;
using namespace syntox::serve;

namespace {

Server *ActiveServer = nullptr;

void onDrainSignal(int) {
  if (ActiveServer)
    ActiveServer->requestDrain(); // lock-free atomic store: signal-safe
}

void usage() {
  std::fprintf(
      stderr,
      "usage: syntox_serve [options]\n"
      "  --listen=stdio|unix:PATH|tcp:PORT   transport (default stdio)\n"
      "  --threads-total=N    worker-slot budget (0 = hardware threads)\n"
      "  --max-concurrent=N   analyze requests in flight (0 = budget)\n"
      "  --timeout-ms=N       default admission deadline (0 = none)\n"
      "  --cache-dir=DIR      root of the on-disk warm cache\n"
      "  --cache-max-bytes=N  cache-tree size cap (0 = unbounded)\n"
      "  --sessions=N         parked-session LRU capacity (default 32)\n"
      "%s",
      analysisFlagsHelp());
}

bool parseUnsignedArg(const std::string &Value, const char *Flag,
                      unsigned &Out) {
  char *End = nullptr;
  unsigned long N = std::strtoul(Value.c_str(), &End, 10);
  if (Value.empty() || *End != '\0') {
    std::fprintf(stderr, "syntox_serve: invalid %s '%s'\n", Flag,
                 Value.c_str());
    return false;
  }
  Out = static_cast<unsigned>(N);
  return true;
}

int listenUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    std::fprintf(stderr, "syntox_serve: socket path too long\n");
    return -1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(Fd, 8) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int listenTcp(unsigned Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(Fd, 8) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Accepts connections until a drain or a client shutdown request,
/// serving each to EOF in turn.
int acceptLoop(Server &S, int ListenFd) {
  while (!S.draining()) {
    struct pollfd P = {ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0)
      continue;
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0)
      continue;
    bool More = S.serve(Conn, Conn);
    ::close(Conn);
    if (!More)
      break;
  }
  ::close(ListenFd);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Cfg;
  TelemetryFlags Telem; // accepted for flag compatibility; serve routes
                        // metrics through the `metrics` request instead
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  std::string Error;
  if (!parseAnalysisFlags(Args, Cfg.Defaults, Telem, Error)) {
    std::fprintf(stderr, "syntox_serve: %s\n", Error.c_str());
    usage();
    return 2;
  }

  std::string Listen = "stdio";
  for (const std::string &Arg : Args) {
    if (Arg.rfind("--listen=", 0) == 0) {
      Listen = Arg.substr(9);
    } else if (Arg.rfind("--threads-total=", 0) == 0) {
      if (!parseUnsignedArg(Arg.substr(16), "--threads-total",
                            Cfg.TotalThreads))
        return 2;
    } else if (Arg.rfind("--max-concurrent=", 0) == 0) {
      if (!parseUnsignedArg(Arg.substr(17), "--max-concurrent",
                            Cfg.MaxConcurrentRequests))
        return 2;
    } else if (Arg.rfind("--timeout-ms=", 0) == 0) {
      if (!parseUnsignedArg(Arg.substr(13), "--timeout-ms",
                            Cfg.RequestTimeoutMs))
        return 2;
    } else if (Arg.rfind("--cache-max-bytes=", 0) == 0) {
      unsigned N = 0;
      if (!parseUnsignedArg(Arg.substr(18), "--cache-max-bytes", N))
        return 2;
      Cfg.CacheMaxBytes = N;
    } else if (Arg.rfind("--sessions=", 0) == 0) {
      if (!parseUnsignedArg(Arg.substr(11), "--sessions",
                            Cfg.SessionCapacity))
        return 2;
    } else if (Arg.rfind("--test-start-delay-ms=", 0) == 0) {
      if (!parseUnsignedArg(Arg.substr(22), "--test-start-delay-ms",
                            Cfg.TestStartDelayMs))
        return 2;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "syntox_serve: unknown option '%s'\n",
                   Arg.c_str());
      usage();
      return 2;
    }
  }
  // The shared parser consumed --cache-dir= into the per-request
  // defaults; for the daemon it is the server's cache root (requests
  // name their shard with cache_key), never a per-request knob.
  Cfg.CacheDir = Cfg.Defaults.CacheDir;
  Cfg.Defaults.CacheDir.clear();

  Server S(Cfg);
  ActiveServer = &S;
  std::signal(SIGTERM, onDrainSignal);
  std::signal(SIGINT, onDrainSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (Listen == "stdio") {
    S.serve(STDIN_FILENO, STDOUT_FILENO);
    return 0;
  }
  if (Listen.rfind("unix:", 0) == 0) {
    std::string Path = Listen.substr(5);
    int Fd = listenUnix(Path);
    if (Fd < 0) {
      std::fprintf(stderr, "syntox_serve: cannot listen on unix:%s\n",
                   Path.c_str());
      return 1;
    }
    int RC = acceptLoop(S, Fd);
    ::unlink(Path.c_str());
    return RC;
  }
  if (Listen.rfind("tcp:", 0) == 0) {
    unsigned Port = 0;
    if (!parseUnsignedArg(Listen.substr(4), "--listen=tcp", Port) ||
        Port == 0 || Port > 65535) {
      std::fprintf(stderr, "syntox_serve: invalid tcp port\n");
      return 2;
    }
    int Fd = listenTcp(Port);
    if (Fd < 0) {
      std::fprintf(stderr, "syntox_serve: cannot listen on tcp:%u\n",
                   Port);
      return 1;
    }
    return acceptLoop(S, Fd);
  }
  std::fprintf(stderr, "syntox_serve: unknown --listen '%s'\n",
               Listen.c_str());
  usage();
  return 2;
}
