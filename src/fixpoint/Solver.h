//===- fixpoint/Solver.h - Chaotic iteration with widening ------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic equation-system solver implementing the fixpoint machinery
/// of paper §4:
///  - least fixpoints: an ascending *widening phase* from bottom followed
///    by a descending *narrowing phase* (a configurable number of
///    passes),
///  - greatest fixpoints: a single narrowing phase starting from top.
///
/// Two chaotic iteration strategies from the companion FMPA'93 paper are
/// provided: the *recursive* strategy, which stabilizes every WTO
/// component before leaving it, and the *worklist* strategy, which picks
/// pending equations in WTO order. Widening/narrowing is applied at the
/// WTO component heads, which cut every dependency cycle.
///
/// The System type parameter supplies the lattice and the equations:
///
///   struct System {
///     using Value = ...;
///     unsigned numNodes() const;
///     const Digraph &graph() const;          // dependency graph
///     std::vector<unsigned> roots() const;   // where iteration starts
///     Value initialValue(unsigned Node, bool FromTop) const;
///     // Evaluate the RHS of equation Node given current values.
///     Value evaluate(unsigned Node, const std::vector<Value> &X) const;
///     bool leq(const Value &A, const Value &B) const;
///     bool equal(const Value &A, const Value &B) const;
///     Value widen(const Value &A, const Value &B) const;
///     Value narrow(const Value &A, const Value &B) const;
///   };
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FIXPOINT_SOLVER_H
#define SYNTOX_FIXPOINT_SOLVER_H

#include "fixpoint/Digraph.h"
#include "fixpoint/Wto.h"

#include <cstdint>
#include <set>
#include <vector>

namespace syntox {

/// Which fixpoint to approximate.
enum class FixpointKind {
  /// Least fixpoint: ascending widening phase from bottom, then
  /// descending narrowing passes.
  Lfp,
  /// Greatest fixpoint: single descending narrowing phase from top
  /// (paper §4).
  Gfp,
};

/// Chaotic iteration strategy (paper §6.3 / FMPA'93).
enum class IterationStrategy {
  Recursive, ///< stabilize each WTO component before moving on
  Worklist,  ///< WTO-ordered worklist
};

/// Counters reported by one solver run.
struct SolverStats {
  uint64_t AscendingSteps = 0;  ///< equation evaluations while ascending
  uint64_t DescendingSteps = 0; ///< equation evaluations while descending
  uint64_t Widenings = 0;
  uint64_t Narrowings = 0;
};

template <typename System> class FixpointSolver {
public:
  using Value = typename System::Value;

  struct Options {
    FixpointKind Kind = FixpointKind::Lfp;
    IterationStrategy Strategy = IterationStrategy::Recursive;
    /// Descending passes after the ascending phase (Lfp only). The
    /// paper's Syntox runs one narrowing phase per analysis.
    unsigned NarrowingPasses = 1;
  };

  FixpointSolver(const System &Sys, Options Opts)
      : Sys(Sys), Opts(Opts), Order(Sys.graph(), Sys.roots()) {}

  /// Runs the solver and returns the per-node solution.
  std::vector<Value> solve() {
    unsigned N = Sys.numNodes();
    X.clear();
    X.reserve(N);
    bool FromTop = Opts.Kind == FixpointKind::Gfp;
    for (unsigned Node = 0; Node < N; ++Node)
      X.push_back(Sys.initialValue(Node, FromTop));

    if (Opts.Kind == FixpointKind::Lfp) {
      if (Opts.Strategy == IterationStrategy::Recursive)
        ascendRecursive();
      else
        ascendWorklist();
      for (unsigned Pass = 0; Pass < Opts.NarrowingPasses; ++Pass)
        if (!descendOnce())
          break;
    } else {
      // Gfp: descending narrowing iterations until stable. The sweep
      // bound is a safety net; narrowing at the heads makes the chain
      // finite in practice long before it triggers.
      for (unsigned Sweep = 0; Sweep < MaxGfpSweeps; ++Sweep)
        if (!descendOnce())
          break;
    }
    return X;
  }

  const SolverStats &stats() const { return Stats; }
  const Wto &wto() const { return Order; }

private:
  //===--------------------------------------------------------------------===//
  // Ascending phase (recursive strategy)
  //===--------------------------------------------------------------------===//

  void ascendRecursive() {
    for (const WtoElement &E : Order.elements())
      ascendElement(E);
  }

  /// Resets every vertex of a component (head and body, recursively) to
  /// its ascending start value.
  void resetComponent(const WtoElement &E) {
    X[E.Vertex] = Sys.initialValue(E.Vertex, /*FromTop=*/false);
    for (const WtoElement &Sub : E.Body)
      if (Sub.IsComponent)
        resetComponent(Sub);
      else
        X[Sub.Vertex] = Sys.initialValue(Sub.Vertex, /*FromTop=*/false);
  }

  void ascendElement(const WtoElement &E) {
    if (!E.IsComponent) {
      ++Stats.AscendingSteps;
      X[E.Vertex] = Sys.evaluate(E.Vertex, X);
      return;
    }
    // Restart *leaf* components from bottom: when an enclosing component
    // iterates, re-widening this head against values from the previous
    // outer iteration mixes unrelated ascents and overshoots on the
    // outer loop's variables (they look unstable here even though they
    // are invariant within this component). A clean local ascent per
    // outer iteration avoids that. Only leaves are restarted: resetting
    // at every nesting level would multiply the work of each level into
    // its parents (exponential in nesting depth, which deeply recursive
    // programs like McCarthy_30 cannot afford), while the leaf loops are
    // where the loss shows up in practice (see the Matrix program of
    // paper §6.5).
    bool IsLeaf = true;
    for (const WtoElement &Sub : E.Body)
      IsLeaf &= !Sub.IsComponent;
    if (IsLeaf)
      resetComponent(E);
    // Stabilize: body then head, widening at the head, until the head's
    // equation is satisfied. The body runs first so that equations with
    // their own sources inside the component (e.g. intermittent
    // assertion seeds in the backward system) are picked up even when
    // the head starts out stable.
    for (;;) {
      for (const WtoElement &Sub : E.Body)
        ascendElement(Sub);
      ++Stats.AscendingSteps;
      Value New = Sys.evaluate(E.Vertex, X);
      if (Sys.leq(New, X[E.Vertex]))
        break;
      ++Stats.Widenings;
      X[E.Vertex] = Sys.widen(X[E.Vertex], New);
    }
  }

  //===--------------------------------------------------------------------===//
  // Ascending phase (worklist strategy)
  //===--------------------------------------------------------------------===//

  void ascendWorklist() {
    auto ByPosition = [this](unsigned A, unsigned B) {
      unsigned PA = Order.position(A), PB = Order.position(B);
      if (PA != PB)
        return PA < PB;
      return A < B;
    };
    std::set<unsigned, decltype(ByPosition)> Pending(ByPosition);
    for (unsigned Node = 0; Node < Sys.numNodes(); ++Node)
      Pending.insert(Node);
    while (!Pending.empty()) {
      unsigned Node = *Pending.begin();
      Pending.erase(Pending.begin());
      ++Stats.AscendingSteps;
      Value New = Sys.evaluate(Node, X);
      if (Sys.leq(New, X[Node]))
        continue;
      if (Order.isHead(Node)) {
        ++Stats.Widenings;
        X[Node] = Sys.widen(X[Node], New);
      } else {
        X[Node] = New;
      }
      for (unsigned Succ : Sys.graph().succs(Node))
        Pending.insert(Succ);
    }
  }

  //===--------------------------------------------------------------------===//
  // Descending phase (shared by Lfp narrowing and Gfp)
  //===--------------------------------------------------------------------===//

  /// One full descending sweep in WTO order, stabilizing components with
  /// narrowing at their heads. Returns true when any value changed.
  bool descendOnce() {
    bool Changed = false;
    for (const WtoElement &E : Order.elements())
      descendElement(E, Changed);
    return Changed;
  }

  void descendElement(const WtoElement &E, bool &Changed) {
    if (!E.IsComponent) {
      ++Stats.DescendingSteps;
      Value New = Sys.evaluate(E.Vertex, X);
      if (!Sys.equal(New, X[E.Vertex])) {
        X[E.Vertex] = New;
        Changed = true;
      }
      return;
    }
    // Stabilize the component: iterate while the head *or* its body
    // still changes. Termination: every cycle passes through a head, and
    // heads use narrowing (finite chains); between heads the body is
    // acyclic. The sweep bound is a safety net only.
    for (unsigned Sweep = 0; Sweep < MaxComponentSweeps; ++Sweep) {
      ++Stats.DescendingSteps;
      Value New = Sys.evaluate(E.Vertex, X);
      ++Stats.Narrowings;
      Value Narrowed = Sys.narrow(X[E.Vertex], New);
      bool SweepChanged = !Sys.equal(Narrowed, X[E.Vertex]);
      X[E.Vertex] = Narrowed;
      for (const WtoElement &Sub : E.Body)
        descendElement(Sub, SweepChanged);
      Changed |= SweepChanged;
      if (!SweepChanged)
        break;
    }
  }

  static constexpr unsigned MaxGfpSweeps = 1000;
  static constexpr unsigned MaxComponentSweeps = 1000;

  const System &Sys;
  Options Opts;
  Wto Order;
  std::vector<Value> X;
  SolverStats Stats;
};

} // namespace syntox

#endif // SYNTOX_FIXPOINT_SOLVER_H
