//===- fixpoint/Solver.h - Chaotic iteration with widening ------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic equation-system solver implementing the fixpoint machinery
/// of paper §4:
///  - least fixpoints: an ascending *widening phase* from bottom followed
///    by a descending *narrowing phase* (a configurable number of
///    passes),
///  - greatest fixpoints: a single narrowing phase starting from top.
///
/// Three chaotic iteration strategies are provided. The *recursive*
/// strategy (companion FMPA'93 paper) stabilizes every WTO component
/// before leaving it; the *worklist* strategy picks pending equations in
/// WTO order. The *parallel* strategy computes the WTO once, treats each
/// top-level WTO element as a task, orders tasks by the dependency edges
/// between them (the condensation of the dependency digraph is a DAG, so
/// independent components have no path between them), and stabilizes
/// ready tasks concurrently on a small worker pool — falling back to the
/// recursive strategy *inside* each component, so the widening and
/// narrowing points are exactly those of the recursive strategy and the
/// solution is bit-identical to it by construction. Widening/narrowing is
/// applied at the WTO component heads, which cut every dependency cycle.
///
/// The System type parameter supplies the lattice and the equations:
///
///   struct System {
///     using Value = ...;
///     unsigned numNodes() const;
///     const Digraph &graph() const;          // dependency graph
///     std::vector<unsigned> roots() const;   // where iteration starts
///     Value initialValue(unsigned Node, bool FromTop) const;
///     // Evaluate the RHS of equation Node given current values.
///     Value evaluate(unsigned Node, const std::vector<Value> &X) const;
///     bool leq(const Value &A, const Value &B) const;
///     bool equal(const Value &A, const Value &B) const;
///     Value widen(const Value &A, const Value &B) const;
///     Value narrow(const Value &A, const Value &B) const;
///   };
///
/// Under the parallel strategy, evaluate() and the lattice operations are
/// called concurrently from several threads (for nodes of independent
/// components), so they must be const-thread-safe: no mutation of shared
/// state except through atomics.
///
/// Warm starts. A refinement chain re-solves the same equation system
/// with slightly different external inputs (envelope slots, seeds).
/// Passing a caller-owned WarmStartMemo through Options::Memo makes the
/// solver (a) record its per-sweep trajectory into the memo and (b) on
/// the next run, *replay* every top-level WTO element whose inputs
/// provably match the recording — the element's values are copied from
/// the memo instead of re-iterated, which is exact (not merely sound):
/// the element's stabilization is a deterministic function of its
/// external feeder values, its seed/envelope slice and its start state,
/// and all three are verified equal before a replay. Systems with
/// inputs that are not values of other nodes additionally implement
///
///   // True when Node's non-graph inputs (envelope slot, seed) are
///   // unchanged since the run that recorded the memo.
///   bool externalInputsUnchanged(unsigned Node) const;
///
/// (detected at compile time; absent means "always unchanged", which is
/// correct for closed systems whose equations read only other nodes).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FIXPOINT_SOLVER_H
#define SYNTOX_FIXPOINT_SOLVER_H

#include "fixpoint/Digraph.h"
#include "fixpoint/Wto.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <type_traits>
#include <vector>

namespace syntox {

/// Which fixpoint to approximate.
enum class FixpointKind {
  /// Least fixpoint: ascending widening phase from bottom, then
  /// descending narrowing passes.
  Lfp,
  /// Greatest fixpoint: single descending narrowing phase from top
  /// (paper §4).
  Gfp,
};

/// Chaotic iteration strategy (paper §6.3 / FMPA'93).
enum class IterationStrategy {
  Recursive, ///< stabilize each WTO component before moving on
  Worklist,  ///< WTO-ordered worklist
  Parallel,  ///< independent WTO components stabilized concurrently
};

/// Counters reported by one solver run.
struct SolverStats {
  uint64_t AscendingSteps = 0;  ///< equation evaluations while ascending
  uint64_t DescendingSteps = 0; ///< equation evaluations while descending
  uint64_t Widenings = 0;
  uint64_t Narrowings = 0;
  /// Stable top-level WTO elements replayed from the warm-start memo
  /// instead of re-iterated (one count per element per sweep).
  uint64_t ComponentSkips = 0;
  /// Equation evaluations those replays avoided: the cost the run that
  /// recorded the memo spent on the replayed elements.
  uint64_t SkippedSteps = 0;
  /// Top-level WTO components scheduled as independent tasks (parallel
  /// strategy only; 0 otherwise).
  uint64_t ParallelComponents = 0;
  /// Tasks in the scheduling DAG after chain contraction (parallel
  /// strategy only).
  uint64_t ParallelTasks = 0;
  /// Maximum number of tasks on one level of the scheduling DAG (levels
  /// by longest path from a root). A width of 1 means the schedule is a
  /// chain and threading cannot help; the attainable speedup is bounded
  /// by the width regardless of thread count.
  uint64_t ParallelDagWidth = 0;
  /// Top-level WTO elements scheduled under the demand mask (demand
  /// solves only; 0 on a full solve).
  uint64_t DemandedComponents = 0;
  /// Top-level WTO elements outside the demand cone, excluded from the
  /// schedule entirely — they perform zero live evaluations.
  uint64_t SkippedByDemand = 0;
};

/// Cross-run memo connecting consecutive solver runs of one slot of a
/// refinement chain (see the file comment). Owned by the caller and
/// reused across rounds; a run with Options::Memo set replays whatever
/// the previous contents allow and then overwrites them with its own
/// trajectory.
template <typename ValueT> struct WarmStartMemo {
  bool Valid = false; ///< a completed run recorded the fields below
  FixpointKind Kind = FixpointKind::Lfp;
  IterationStrategy Strategy = IterationStrategy::Recursive;
  unsigned NumNodes = 0;
  /// Full solution snapshot at each sweep boundary, in sweep order: for
  /// Lfp, snapshot 0 is the post-ascending state and the rest follow
  /// the descending passes; for Gfp every snapshot is one descending
  /// sweep. Copy-on-write values make a snapshot O(numNodes) pointer
  /// copies, not a deep copy.
  std::vector<std::vector<ValueT>> Boundaries;
  /// Per boundary, per top-level WTO element: whether the element
  /// changed during that sweep. Replayed elements contribute this flag
  /// to the descending convergence test, so a warm run performs exactly
  /// the sweeps the cold run would. (Ascending sweeps record 1; the
  /// flag is unused there.)
  std::vector<std::vector<uint8_t>> ElemChanged;
  /// Per boundary, per element: equation evaluations the recorded run
  /// spent on it (reported as SkippedSteps when replayed).
  std::vector<std::vector<uint64_t>> ElemSteps;
  /// Per node: 1 when the Boundaries entries for this node are genuine
  /// recorded values; 0 for placeholder entries created when a
  /// persisted memo was mapped into an edited program (the node had no
  /// counterpart in the recorded run). Empty = all valid, the
  /// in-process case. An element containing an invalid node can
  /// neither replay nor be verified as matched, and an invalid feeder
  /// value fails verification unconditionally — placeholders must
  /// never satisfy an equality check.
  std::vector<uint8_t> NodeValid;
  /// Per top-level element: 1 when the ElemChanged/ElemSteps rows are
  /// genuine recordings for this element; 0 when the element's
  /// membership did not match the recorded run (its values may still
  /// be valid and serve feeder verification, but replay needs the
  /// per-sweep rows). Empty = all replayable.
  std::vector<uint8_t> ElemReplayable;
};

namespace solver_detail {
/// Detects the optional System::externalInputsUnchanged(unsigned).
template <typename S, typename = void>
struct HasExternalInputs : std::false_type {};
template <typename S>
struct HasExternalInputs<
    S, std::void_t<decltype(static_cast<bool>(
           std::declval<const S &>().externalInputsUnchanged(0u)))>>
    : std::true_type {};

/// Detects the optional cache-ownership hooks a system may expose so the
/// parallel strategy can drive a component-owned transfer cache (see
/// TransferCache's ownership model): parallelPhaseBegin/End bracket one
/// parallel solve, parallelTaskBegin/End bracket one scheduled task on
/// its worker thread, and parallelMergeBarrier runs on the coordinating
/// thread after each sweep's pool drain, while no task is in flight.
/// Absent hooks cost nothing — the calls compile away.
template <typename S, typename = void>
struct HasCacheOwnership : std::false_type {};
template <typename S>
struct HasCacheOwnership<
    S, std::void_t<decltype(std::declval<const S &>().parallelPhaseBegin()),
                   decltype(std::declval<const S &>().parallelPhaseEnd()),
                   decltype(std::declval<const S &>().parallelTaskBegin()),
                   decltype(std::declval<const S &>().parallelTaskEnd()),
                   decltype(std::declval<const S &>().parallelMergeBarrier())>>
    : std::true_type {};
} // namespace solver_detail

template <typename System> class FixpointSolver {
public:
  using Value = typename System::Value;

  struct Options {
    FixpointKind Kind = FixpointKind::Lfp;
    IterationStrategy Strategy = IterationStrategy::Recursive;
    /// Descending passes after the ascending phase (Lfp only). The
    /// paper's Syntox runs one narrowing phase per analysis.
    unsigned NarrowingPasses = 1;
    /// Worker threads for the parallel strategy (0 = one per hardware
    /// thread). Ignored by the serial strategies.
    unsigned NumThreads = 0;
    /// Optional trace/metrics sinks; every hook is a null-pointer check
    /// when absent.
    Telemetry Telem;
    /// Caller-owned warm-start memo (see the file comment). When set,
    /// the run replays provably-stable top-level WTO elements from it
    /// and then overwrites it with this run's trajectory. Null = cold
    /// solve, bit-for-bit the pre-warm-start behavior.
    WarmStartMemo<typename System::Value> *Memo = nullptr;
    /// Demand-driven solve: per-node mask (numNodes() entries, 1 =
    /// demanded). Top-level WTO elements containing no demanded node
    /// are excluded from the schedule — never evaluated, never
    /// activated — and when a replayable memo is present their values
    /// are spliced in from its last recorded boundary instead. The
    /// mask must be closed under graph predecessors; closure makes
    /// every feeder of a demanded element demanded itself, so the
    /// demanded sub-solution is bitwise-identical to the same nodes of
    /// a full solve. Null = full solve.
    const std::vector<uint8_t> *DemandNodes = nullptr;
    /// Replay from Options::Memo but never overwrite it. A
    /// demand-restricted run's recording describes a partial schedule —
    /// genuine rows for scheduled elements, placeholder rows elsewhere —
    /// so callers must either set this flag or hand a demand solve a
    /// private memo copy they will not replay full solves from (the
    /// analyzer's demand chain does the latter, which keeps cross-round
    /// replay alive inside one demand run).
    bool MemoReadOnly = false;
  };

  FixpointSolver(const System &Sys, Options Opts)
      : Sys(Sys), Opts(Opts), Order(Sys.graph(), Sys.roots()),
        Trace(Opts.Telem.Trace) {}

  /// Runs the solver and returns the per-node solution.
  std::vector<Value> solve() {
    unsigned N = Sys.numNodes();
    X.clear();
    X.reserve(N);
    bool FromTop = Opts.Kind == FixpointKind::Gfp;
    for (unsigned Node = 0; Node < N; ++Node)
      X.push_back(Sys.initialValue(Node, FromTop));

    NodeSteps.assign(N, 0);
    bool Par = Opts.Strategy == IterationStrategy::Parallel;
    if (Par) {
      prepareParallel();
      hookParallelPhaseBegin();
    }
    prepareWarm();
    prepareDemand();

    if (Opts.Kind == FixpointKind::Lfp) {
      if (Par)
        ascendParallel();
      else if (Opts.Strategy == IterationStrategy::Recursive)
        ascendRecursive();
      else
        ascendWorklist();
      for (unsigned Pass = 0; Pass < Opts.NarrowingPasses; ++Pass)
        if (!(Par ? descendOnceParallel() : descendOnce()))
          break;
    } else {
      // Gfp: descending narrowing iterations until stable. The sweep
      // bound is a safety net; narrowing at the heads makes the chain
      // finite in practice long before it triggers.
      for (unsigned Sweep = 0; Sweep < MaxGfpSweeps; ++Sweep)
        if (!(Par ? descendOnceParallel() : descendOnce()))
          break;
    }
    if (Par)
      hookParallelPhaseEnd();
    finishWarm();
    return X;
  }

  const SolverStats &stats() const { return Stats; }
  const Wto &wto() const { return Order; }

  /// Per top-level WTO element (in WTO order): 1 when every sweep of
  /// this run replayed the element from the memo — none of its
  /// equations were re-evaluated. Empty when no memo was passed;
  /// all-zero on the run that records a memo for the first time. The
  /// element's head vertex is wto().elements()[i].Vertex.
  const std::vector<uint8_t> &fullyReplayedElements() const {
    return FullyReplayed;
  }

  /// Per node: live equation evaluations this run performed on it
  /// (replays and demand skips contribute nothing). The audit trail
  /// behind the demand-mode guarantee that out-of-cone nodes run zero
  /// live steps.
  const std::vector<uint64_t> &nodeLiveSteps() const { return NodeSteps; }

private:
  //===--------------------------------------------------------------------===//
  // Warm start: exact replay of stable top-level elements
  //===--------------------------------------------------------------------===//
  //
  // Top-level WTO elements only depend on *earlier* top-level elements
  // (every cycle is inside one component, and the WTO orders the rest
  // topologically), so the values an element stabilizes to are a
  // deterministic function of three inputs: the final values of its
  // external feeder nodes for the current sweep, its non-graph inputs
  // (envelope slot, seeds), and its own start values. When all three
  // are verified equal to what the recorded run saw at the same sweep
  // boundary, copying the recorded values *is* the cold computation —
  // the replay is exact by induction over WTO order and sweeps, not an
  // approximation. Anything unverifiable is solved cold, so a warm run
  // and a cold run produce identical solutions (and identical sweep
  // counts, since replayed elements re-emit their recorded change
  // flags).

  bool nodeInputsUnchanged(unsigned V) const {
    if constexpr (solver_detail::HasExternalInputs<System>::value)
      return Sys.externalInputsUnchanged(V);
    else
      return true;
  }

  /// \name Cache-ownership hooks (no-ops unless the system opts in).
  /// @{
  void hookParallelPhaseBegin() {
    if constexpr (solver_detail::HasCacheOwnership<System>::value)
      Sys.parallelPhaseBegin();
  }
  void hookParallelPhaseEnd() {
    if constexpr (solver_detail::HasCacheOwnership<System>::value)
      Sys.parallelPhaseEnd();
  }
  void hookParallelTaskBegin() {
    if constexpr (solver_detail::HasCacheOwnership<System>::value)
      Sys.parallelTaskBegin();
  }
  void hookParallelTaskEnd() {
    if constexpr (solver_detail::HasCacheOwnership<System>::value)
      Sys.parallelTaskEnd();
  }
  void hookParallelMergeBarrier() {
    if constexpr (solver_detail::HasCacheOwnership<System>::value)
      Sys.parallelMergeBarrier();
  }
  /// @}

  /// Fills the node -> top-level-element maps (idempotent; shared by the
  /// warm-start and demand preparations).
  void prepareElements() {
    if (!ElemOf.empty())
      return;
    unsigned N = Sys.numNodes();
    NumElems = static_cast<unsigned>(Order.elements().size());
    ElemOf.assign(N, 0);
    ElemVerts.assign(NumElems, {});
    for (unsigned V = 0; V < N; ++V) {
      ElemOf[V] = Order.topElement(V);
      ElemVerts[ElemOf[V]].push_back(V);
    }
  }

  void prepareWarm() {
    if (!Opts.Memo)
      return;
    Recording = true;
    unsigned N = Sys.numNodes();
    prepareElements();
    // External feeders: nodes outside the element with an edge into it.
    // They live in strictly earlier top-level elements, so their values
    // are final for the current sweep by the time the element runs.
    ElemFeeders.assign(NumElems, {});
    for (unsigned E = 0; E < NumElems; ++E) {
      for (unsigned V : ElemVerts[E])
        for (unsigned U : Sys.graph().preds(V))
          if (ElemOf[U] != E)
            ElemFeeders[E].push_back(U);
      std::sort(ElemFeeders[E].begin(), ElemFeeders[E].end());
      ElemFeeders[E].erase(
          std::unique(ElemFeeders[E].begin(), ElemFeeders[E].end()),
          ElemFeeders[E].end());
    }
    SeedClean.assign(NumElems, 1);
    for (unsigned E = 0; E < NumElems; ++E)
      for (unsigned V : ElemVerts[E])
        if (!nodeInputsUnchanged(V)) {
          SeedClean[E] = 0;
          break;
        }
    const WarmStartMemo<Value> &M = *Opts.Memo;
    WarmReplay = M.Valid && M.Kind == Opts.Kind &&
                 M.Strategy == Opts.Strategy && M.NumNodes == N &&
                 !M.Boundaries.empty() &&
                 M.ElemChanged.size() == M.Boundaries.size() &&
                 M.ElemSteps.size() == M.Boundaries.size() &&
                 M.ElemChanged.front().size() == NumElems &&
                 (M.NodeValid.empty() || M.NodeValid.size() == N) &&
                 (M.ElemReplayable.empty() ||
                  M.ElemReplayable.size() == NumElems);
    // Partial-validity mask of a memo mapped in from the persistent
    // cache: an element containing a placeholder node has untrustworthy
    // boundary values — it must not replay and must never be reported
    // as matched, or a placeholder could satisfy an equality check.
    ElemMembersValid.assign(NumElems, 1);
    if (WarmReplay && !M.NodeValid.empty())
      for (unsigned E = 0; E < NumElems; ++E)
        for (unsigned V : ElemVerts[E])
          if (!M.NodeValid[V]) {
            ElemMembersValid[E] = 0;
            break;
          }
    // Matched[e]: the element's current values equal the recorded
    // snapshot of the boundary last processed. True initially — both
    // runs start from the same initialValue() state — except for
    // elements with placeholder members, whose recorded snapshots are
    // not comparable.
    Matched.assign(NumElems, 1);
    FullyReplayed.assign(NumElems, WarmReplay ? 1 : 0);
    for (unsigned E = 0; E < NumElems; ++E)
      if (!ElemMembersValid[E]) {
        Matched[E] = 0;
        FullyReplayed[E] = 0;
      }
    CurBoundary = 0;
    NewMemo = WarmStartMemo<Value>();
    NewMemo.Kind = Opts.Kind;
    NewMemo.Strategy = Opts.Strategy;
    NewMemo.NumNodes = N;
  }

  void finishWarm() {
    if (!Recording)
      return;
    // A read-only run replays from the memo but must not replace it.
    // (Demand-restricted runs may record — their recording is genuine
    // for every scheduled element and the mask shrinks monotonically
    // along a demand chain — but only into a memo the caller keeps
    // private to the demand run; see Options::MemoReadOnly.)
    if (Opts.MemoReadOnly)
      return;
    NewMemo.Valid = true;
    *Opts.Memo = std::move(NewMemo);
  }

  //===--------------------------------------------------------------------===//
  // Demand-driven scheduling: cone-restricted solves
  //===--------------------------------------------------------------------===//
  //
  // The demand mask is closed under graph predecessors, and a top-level
  // WTO component is a strongly connected set of its cyclic dependency
  // structure: one demanded member node therefore implies every member
  // is demanded (each member reaches the demanded one, so the closure
  // pulls the whole component in). Element-level demand flags are thus
  // exact, every feeder of a demanded element lives in a demanded
  // element, and the restricted iteration reads only values the full
  // schedule would produce identically — the demanded sub-solution is
  // bitwise-equal to the full solve by the same induction that makes
  // warm replay exact. Skipped elements are never evaluated; their
  // values are either the untouched initial values or, when a
  // replayable memo is present, the memo's final boundary (a splice for
  // presentation only — demand callers must not read out-of-cone
  // results, and the analyzer's query layer refuses to answer there).

  void prepareDemand() {
    if (!Opts.DemandNodes)
      return;
    Demand = true;
    unsigned N = Sys.numNodes();
    prepareElements();
    const std::vector<uint8_t> &D = *Opts.DemandNodes;
    ElemDemanded.assign(NumElems, 0);
    for (unsigned V = 0; V < N && V < D.size(); ++V)
      if (D[V])
        ElemDemanded[ElemOf[V]] = 1;
    for (unsigned E = 0; E < NumElems; ++E) {
      if (ElemDemanded[E]) {
        ++Stats.DemandedComponents;
        continue;
      }
      ++Stats.SkippedByDemand;
      if (!FullyReplayed.empty())
        FullyReplayed[E] = 0; // excluded, not replayed
      traceEvent(Trace, TraceEventKind::DemandSkip,
                 Order.elements()[E].Vertex);
      if (WarmReplay) {
        const std::vector<Value> &B = Opts.Memo->Boundaries.back();
        const std::vector<uint8_t> &NV = Opts.Memo->NodeValid;
        for (unsigned V : ElemVerts[E])
          if (NV.empty() || NV[V])
            X[V] = B[V];
      }
    }
  }

  /// Whether top-level element \p E is scheduled (always true on a full
  /// solve).
  bool elemDemanded(unsigned E) const {
    return ElemDemanded.empty() || ElemDemanded[E] != 0;
  }

  /// Whether \p V belongs to a scheduled element (worklist activation
  /// filter; element-exact because demand flags are — see above).
  bool nodeDemanded(unsigned V) const {
    return !Demand || ElemDemanded[ElemOf[V]] != 0;
  }

  void beginSweep() {
    if (!Recording)
      return;
    SweepChangedBuf.assign(NumElems, 0);
    SweepStepsBuf.assign(NumElems, 0);
  }

  void endSweep() {
    if (!Recording)
      return;
    NewMemo.Boundaries.push_back(X);
    NewMemo.ElemChanged.push_back(SweepChangedBuf);
    NewMemo.ElemSteps.push_back(SweepStepsBuf);
    ++CurBoundary;
  }

  /// Whether element \p E of the current sweep can be replayed from the
  /// memo. Checked *before* the element runs: feeder elements have
  /// already been processed this sweep (they precede E in WTO order, and
  /// under the parallel strategy their tasks complete first), so their
  /// Matched flags are current, while Matched[E] still describes the
  /// previous boundary — exactly the element's start state.
  bool canReplay(unsigned E) const {
    if (!WarmReplay || CurBoundary >= Opts.Memo->Boundaries.size())
      return false;
    if (!SeedClean[E] || !ElemMembersValid[E])
      return false;
    if (!Opts.Memo->ElemReplayable.empty() && !Opts.Memo->ElemReplayable[E])
      return false;
    if (CurBoundary > 0 && !Matched[E])
      return false;
    const std::vector<Value> &B = Opts.Memo->Boundaries[CurBoundary];
    const std::vector<uint8_t> &NV = Opts.Memo->NodeValid;
    for (unsigned U : ElemFeeders[E])
      if (!Matched[ElemOf[U]] &&
          ((!NV.empty() && !NV[U]) || !Sys.equal(X[U], B[U])))
        return false;
    return true;
  }

  /// Copies the recorded boundary values over element \p E and re-emits
  /// its recorded change flag and cost. COW values keep this O(1) per
  /// node and preserve payload identity for downstream comparisons.
  void replayElement(unsigned E, bool Descending, SolverStats &S,
                     bool &Changed) {
    const WarmStartMemo<Value> &M = *Opts.Memo;
    const std::vector<Value> &B = M.Boundaries[CurBoundary];
    for (unsigned V : ElemVerts[E])
      X[V] = B[V];
    Matched[E] = 1;
    bool Flag = M.ElemChanged[CurBoundary][E] != 0;
    uint64_t Steps = M.ElemSteps[CurBoundary][E];
    Changed |= Flag;
    ++S.ComponentSkips;
    S.SkippedSteps += Steps;
    SweepChangedBuf[E] = Flag;
    SweepStepsBuf[E] = Steps;
    traceEvent(Trace, TraceEventKind::ComponentSkip,
               Order.elements()[E].Vertex, Descending);
  }

  /// Refreshes Matched[E] after the element was solved cold this sweep.
  void updateMatched(unsigned E) {
    FullyReplayed[E] = 0;
    Matched[E] = 0;
    if (!WarmReplay || !ElemMembersValid[E] ||
        CurBoundary >= Opts.Memo->Boundaries.size())
      return;
    const std::vector<Value> &B = Opts.Memo->Boundaries[CurBoundary];
    for (unsigned V : ElemVerts[E])
      if (!Sys.equal(X[V], B[V]))
        return;
    Matched[E] = 1;
  }

  //===--------------------------------------------------------------------===//
  // Ascending phase (recursive strategy)
  //===--------------------------------------------------------------------===//

  void ascendRecursive() {
    if (!Recording) {
      for (unsigned E = 0; E < Order.elements().size(); ++E)
        if (elemDemanded(E))
          ascendElement(Order.elements()[E], Stats);
      return;
    }
    beginSweep();
    bool Ignored = false;
    for (unsigned E = 0; E < NumElems; ++E) {
      if (!elemDemanded(E))
        continue;
      if (canReplay(E)) {
        replayElement(E, /*Descending=*/false, Stats, Ignored);
        continue;
      }
      uint64_t Before = Stats.AscendingSteps;
      ascendElement(Order.elements()[E], Stats);
      SweepChangedBuf[E] = 1;
      SweepStepsBuf[E] = Stats.AscendingSteps - Before;
      updateMatched(E);
    }
    endSweep();
  }

  /// Resets every vertex of a component (head and body, recursively) to
  /// its ascending start value.
  void resetComponent(const WtoElement &E) {
    X[E.Vertex] = Sys.initialValue(E.Vertex, /*FromTop=*/false);
    for (const WtoElement &Sub : E.Body)
      if (Sub.IsComponent)
        resetComponent(Sub);
      else
        X[Sub.Vertex] = Sys.initialValue(Sub.Vertex, /*FromTop=*/false);
  }

  void ascendElement(const WtoElement &E, SolverStats &S) {
    if (!E.IsComponent) {
      ++S.AscendingSteps;
      ++NodeSteps[E.Vertex];
      X[E.Vertex] = Sys.evaluate(E.Vertex, X);
      return;
    }
    // Restart *leaf* components from bottom: when an enclosing component
    // iterates, re-widening this head against values from the previous
    // outer iteration mixes unrelated ascents and overshoots on the
    // outer loop's variables (they look unstable here even though they
    // are invariant within this component). A clean local ascent per
    // outer iteration avoids that. Only leaves are restarted: resetting
    // at every nesting level would multiply the work of each level into
    // its parents (exponential in nesting depth, which deeply recursive
    // programs like McCarthy_30 cannot afford), while the leaf loops are
    // where the loss shows up in practice (see the Matrix program of
    // paper §6.5).
    bool IsLeaf = true;
    for (const WtoElement &Sub : E.Body)
      IsLeaf &= !Sub.IsComponent;
    if (IsLeaf)
      resetComponent(E);
    traceEvent(Trace, TraceEventKind::ComponentBegin, E.Vertex,
               /*Descending=*/0);
    // Stabilize: body then head, widening at the head, until the head's
    // equation is satisfied. The body runs first so that equations with
    // their own sources inside the component (e.g. intermittent
    // assertion seeds in the backward system) are picked up even when
    // the head starts out stable.
    for (;;) {
      for (const WtoElement &Sub : E.Body)
        ascendElement(Sub, S);
      ++S.AscendingSteps;
      ++NodeSteps[E.Vertex];
      Value New = Sys.evaluate(E.Vertex, X);
      if (Sys.leq(New, X[E.Vertex]))
        break;
      ++S.Widenings;
      traceEvent(Trace, TraceEventKind::Widening, E.Vertex);
      X[E.Vertex] = Sys.widen(X[E.Vertex], New);
    }
    traceEvent(Trace, TraceEventKind::ComponentEnd, E.Vertex,
               /*Descending=*/0);
  }

  //===--------------------------------------------------------------------===//
  // Ascending phase (worklist strategy)
  //===--------------------------------------------------------------------===//

  void ascendWorklist() {
    auto ByPosition = [this](unsigned A, unsigned B) {
      unsigned PA = Order.position(A), PB = Order.position(B);
      if (PA != PB)
        return PA < PB;
      return A < B;
    };
    std::set<unsigned, decltype(ByPosition)> Pending(ByPosition);
    auto Step = [&] {
      unsigned Node = *Pending.begin();
      Pending.erase(Pending.begin());
      ++Stats.AscendingSteps;
      ++NodeSteps[Node];
      Value New = Sys.evaluate(Node, X);
      if (Sys.leq(New, X[Node]))
        return;
      if (Order.isHead(Node)) {
        ++Stats.Widenings;
        traceEvent(Trace, TraceEventKind::Widening, Node);
        X[Node] = Sys.widen(X[Node], New);
      } else {
        X[Node] = std::move(New);
      }
      // Successor activations stay inside the demand cone: an
      // out-of-cone successor is never evaluated, not even when its
      // in-cone predecessor changes.
      for (unsigned Succ : Sys.graph().succs(Node))
        if (nodeDemanded(Succ))
          Pending.insert(Succ);
    };
    if (!Recording) {
      for (unsigned Node = 0; Node < Sys.numNodes(); ++Node)
        if (nodeDemanded(Node))
          Pending.insert(Node);
      while (!Pending.empty())
        Step();
      return;
    }
    // Element-wise drain with the same pop sequence as the all-pending
    // loop above: cross-element dependency edges point forward in WTO
    // order and positions of an element are contiguous, so the set
    // drains each top-level element completely (including re-activations
    // within it) before touching the next, and inserting an element's
    // vertices lazily at its turn changes nothing.
    beginSweep();
    bool Ignored = false;
    for (unsigned E = 0; E < NumElems; ++E) {
      if (!elemDemanded(E))
        continue; // activation is filtered, so nothing can be pending
      if (canReplay(E)) {
        // Nodes of this element re-activated by earlier elements are
        // provably stable (that is what the replay check verified), so
        // evaluating them could neither change a value nor activate a
        // successor; drop them with the element.
        while (!Pending.empty() && ElemOf[*Pending.begin()] == E)
          Pending.erase(Pending.begin());
        replayElement(E, /*Descending=*/false, Stats, Ignored);
        continue;
      }
      for (unsigned V : ElemVerts[E])
        Pending.insert(V);
      uint64_t Before = Stats.AscendingSteps;
      while (!Pending.empty() && ElemOf[*Pending.begin()] == E)
        Step();
      SweepChangedBuf[E] = 1;
      SweepStepsBuf[E] = Stats.AscendingSteps - Before;
      updateMatched(E);
    }
    endSweep();
  }

  //===--------------------------------------------------------------------===//
  // Descending phase (shared by Lfp narrowing and Gfp)
  //===--------------------------------------------------------------------===//

  /// One full descending sweep in WTO order, stabilizing components with
  /// narrowing at their heads. Returns true when any value changed.
  bool descendOnce() {
    if (!Recording) {
      bool Changed = false;
      for (unsigned E = 0; E < Order.elements().size(); ++E)
        if (elemDemanded(E))
          descendElement(Order.elements()[E], Changed, Stats);
      return Changed;
    }
    beginSweep();
    bool Changed = false;
    for (unsigned E = 0; E < NumElems; ++E) {
      if (!elemDemanded(E))
        continue;
      if (canReplay(E)) {
        replayElement(E, /*Descending=*/true, Stats, Changed);
        continue;
      }
      bool ElemChanged = false;
      uint64_t Before = Stats.DescendingSteps;
      descendElement(Order.elements()[E], ElemChanged, Stats);
      Changed |= ElemChanged;
      SweepChangedBuf[E] = ElemChanged;
      SweepStepsBuf[E] = Stats.DescendingSteps - Before;
      updateMatched(E);
    }
    endSweep();
    return Changed;
  }

  void descendElement(const WtoElement &E, bool &Changed, SolverStats &S) {
    if (!E.IsComponent) {
      ++S.DescendingSteps;
      ++NodeSteps[E.Vertex];
      Value New = Sys.evaluate(E.Vertex, X);
      // Converged equations resolve in O(1) when the lattice ops are
      // delta-aware: evaluate() then returns a value sharing its
      // representation with X[E.Vertex], and equal() short-circuits on
      // that identity before any entry-wise comparison.
      if (!Sys.equal(New, X[E.Vertex])) {
        X[E.Vertex] = std::move(New);
        Changed = true;
      }
      return;
    }
    // Stabilize the component: iterate while the head *or* its body
    // still changes. Termination: every cycle passes through a head, and
    // heads use narrowing (finite chains); between heads the body is
    // acyclic. The sweep bound is a safety net only.
    traceEvent(Trace, TraceEventKind::ComponentBegin, E.Vertex,
               /*Descending=*/1);
    for (unsigned Sweep = 0; Sweep < MaxComponentSweeps; ++Sweep) {
      ++S.DescendingSteps;
      ++NodeSteps[E.Vertex];
      Value New = Sys.evaluate(E.Vertex, X);
      ++S.Narrowings;
      traceEvent(Trace, TraceEventKind::Narrowing, E.Vertex);
      Value Narrowed = Sys.narrow(X[E.Vertex], New);
      // A stable head comes back pointer-identical (delta-aware
      // narrow), so this equality check — the convergence test of the
      // whole descending phase — is O(1) on the steady state, and the
      // assignment below is skipped to keep the stored value's
      // identity (and its memoized hash) untouched.
      bool SweepChanged = !Sys.equal(Narrowed, X[E.Vertex]);
      if (SweepChanged)
        X[E.Vertex] = std::move(Narrowed);
      for (const WtoElement &Sub : E.Body)
        descendElement(Sub, SweepChanged, S);
      Changed |= SweepChanged;
      if (!SweepChanged)
        break;
    }
    traceEvent(Trace, TraceEventKind::ComponentEnd, E.Vertex,
               /*Descending=*/1);
  }

  //===--------------------------------------------------------------------===//
  // Parallel strategy: DAG scheduling of top-level WTO elements
  //===--------------------------------------------------------------------===//
  //
  // Every top-level WTO element starts as one task. For every dependency
  // edge that crosses two tasks, a scheduling edge is added between them
  // *oriented by WTO order*, so the task graph is acyclic by
  // construction and scheduling respects exactly the ordering the serial
  // recursive strategy uses: a task runs only after every earlier task
  // it shares an edge with has finished, and before every later one.
  // Tasks with no path between them — the independent components — run
  // concurrently. Since each task is stabilized by the same recursive
  // ascent/descent and reads only values the serial schedule would see
  // in the same state, the solution and the step counters are identical
  // to the recursive strategy.
  //
  // Linear chains of the task DAG are then contracted: an edge a -> b is
  // merged when a has exactly one successor and b exactly one
  // predecessor. Contracting a chain never changes which tasks can run
  // concurrently, so the DAG keeps its full parallel width, but the long
  // plain-vertex runs between components collapse into a handful of
  // tasks instead of flooding the pool with thousands of one-vertex
  // jobs whose scheduling cost would swamp the analysis.

  struct ParallelTask {
    std::vector<unsigned> Elems; ///< top-level elements, in WTO order
    std::vector<unsigned> Succs; ///< task indices unblocked by this task
    unsigned NumPreds = 0;       ///< scheduling in-degree
  };

  void mapTaskVertices(const WtoElement &E, unsigned TaskIdx,
                       std::vector<unsigned> &TaskOf) {
    TaskOf[E.Vertex] = TaskIdx;
    for (const WtoElement &Sub : E.Body)
      mapTaskVertices(Sub, TaskIdx, TaskOf);
  }

  void prepareParallel() {
    if (!Tasks.empty() || Order.elements().empty())
      return;
    unsigned NumElems = static_cast<unsigned>(Order.elements().size());
    for (const WtoElement &E : Order.elements())
      if (E.IsComponent)
        ++Stats.ParallelComponents;
    // Element-level dependency digraph: edge A -> B (A < B in WTO order)
    // for every graph edge crossing two top-level elements, deduplicated.
    std::vector<unsigned> ElemOf(Sys.numNodes(), 0);
    for (unsigned E = 0; E < NumElems; ++E)
      mapTaskVertices(Order.elements()[E], E, ElemOf);
    std::vector<std::set<unsigned>> ESuccs(NumElems);
    std::vector<unsigned> EPreds(NumElems, 0);
    for (unsigned V = 0; V < Sys.numNodes(); ++V)
      for (unsigned U : Sys.graph().preds(V)) {
        unsigned A = ElemOf[U], B = ElemOf[V];
        if (A == B)
          continue;
        if (A > B)
          std::swap(A, B);
        if (ESuccs[A].insert(B).second)
          ++EPreds[B];
      }
    // Chain contraction. A merged edge a -> b always has a < b, so
    // scanning elements in WTO order visits every chain at its head, and
    // a task's element list stays sorted in WTO order.
    std::vector<unsigned> TaskOf(NumElems, NoTask);
    for (unsigned E = 0; E < NumElems; ++E) {
      if (TaskOf[E] != NoTask)
        continue; // absorbed by an earlier chain
      unsigned TaskIdx = static_cast<unsigned>(Tasks.size());
      Tasks.emplace_back();
      unsigned Cur = E;
      TaskOf[Cur] = TaskIdx;
      Tasks[TaskIdx].Elems.push_back(Cur);
      while (ESuccs[Cur].size() == 1) {
        unsigned Next = *ESuccs[Cur].begin();
        if (EPreds[Next] != 1 || TaskOf[Next] != NoTask)
          break;
        TaskOf[Next] = TaskIdx;
        Tasks[TaskIdx].Elems.push_back(Next);
        Cur = Next;
      }
    }
    // Task-level scheduling edges, deduplicated; still oriented by task
    // index (a crossing edge's head is a chain head, so its task was
    // created after the tail's task).
    std::set<std::pair<unsigned, unsigned>> EdgeSet;
    for (unsigned A = 0; A < NumElems; ++A)
      for (unsigned B : ESuccs[A])
        if (TaskOf[A] != TaskOf[B])
          EdgeSet.insert({std::min(TaskOf[A], TaskOf[B]),
                          std::max(TaskOf[A], TaskOf[B])});
    for (const auto &[A, B] : EdgeSet) {
      Tasks[A].Succs.push_back(B);
      ++Tasks[B].NumPreds;
    }
    // DAG shape counters: width 1 means the schedule degenerates to a
    // chain and threads cannot overlap any work.
    Stats.ParallelTasks = Tasks.size();
    std::vector<unsigned> Level(Tasks.size(), 0);
    unsigned MaxLevel = 0;
    for (unsigned A = 0; A < Tasks.size(); ++A)
      for (unsigned B : Tasks[A].Succs) {
        Level[B] = std::max(Level[B], Level[A] + 1);
        MaxLevel = std::max(MaxLevel, Level[B]);
      }
    std::vector<uint64_t> PerLevel(MaxLevel + 1, 0);
    for (unsigned T = 0; T < Tasks.size(); ++T)
      Stats.ParallelDagWidth =
          std::max(Stats.ParallelDagWidth, ++PerLevel[Level[T]]);
    Pool = std::make_unique<ThreadPool>(Opts.NumThreads);
  }

  /// Runs \p RunTask(TaskIdx) for every task, respecting the scheduling
  /// edges; independent tasks execute concurrently on the pool.
  template <typename Fn> void runTaskDag(Fn &&RunTask) {
    if (Tasks.empty())
      return;
    std::vector<std::atomic<unsigned>> Pending(Tasks.size());
    for (size_t T = 0; T < Tasks.size(); ++T)
      Pending[T].store(Tasks[T].NumPreds, std::memory_order_relaxed);
    std::function<void(unsigned)> Exec = [&](unsigned TaskIdx) {
      traceEvent(Trace, TraceEventKind::TaskRun, TaskIdx,
                 Tasks[TaskIdx].Elems.size());
      // The task bracket closes before successors run (even inline on a
      // zero-worker pool, where submit() recurses from the loop below),
      // so one thread never holds two open brackets of the same solve.
      hookParallelTaskBegin();
      RunTask(TaskIdx);
      hookParallelTaskEnd();
      traceEvent(Trace, TraceEventKind::TaskComplete, TaskIdx);
      for (unsigned S : Tasks[TaskIdx].Succs)
        if (Pending[S].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          traceEvent(Trace, TraceEventKind::TaskEnqueue, S);
          Pool->submit([&Exec, S] { Exec(S); });
        }
    };
    for (unsigned T = 0; T < Tasks.size(); ++T)
      if (Tasks[T].NumPreds == 0) {
        traceEvent(Trace, TraceEventKind::TaskEnqueue, T);
        Pool->submit([&Exec, T] { Exec(T); });
      }
    Pool->wait();
    // Every task finished (the pool's queue mutex publishes their
    // writes); fold the completed tasks' cache arenas into the shared
    // shards so the next sweep's lock-free probes can see them.
    hookParallelMergeBarrier();
  }

  void mergeStats(const SolverStats &Local) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats.AscendingSteps += Local.AscendingSteps;
    Stats.DescendingSteps += Local.DescendingSteps;
    Stats.Widenings += Local.Widenings;
    Stats.Narrowings += Local.Narrowings;
    Stats.ComponentSkips += Local.ComponentSkips;
    Stats.SkippedSteps += Local.SkippedSteps;
  }

  // The warm-start bookkeeping is safe under the task DAG: a feeder's
  // task completes (with an acq_rel edge) before any dependent task
  // starts, so reads of Matched[] and X[] see the feeder's writes, and
  // the per-element slots of Matched/FullyReplayed/SweepChangedBuf/
  // SweepStepsBuf written inside a task are distinct memory locations
  // from every concurrently-running task's.

  void ascendParallel() {
    beginSweep();
    runTaskDag([this](unsigned TaskIdx) {
      SolverStats Local;
      bool Ignored = false;
      for (unsigned E : Tasks[TaskIdx].Elems) {
        if (!elemDemanded(E))
          continue;
        if (Recording && canReplay(E)) {
          replayElement(E, /*Descending=*/false, Local, Ignored);
          continue;
        }
        uint64_t Before = Local.AscendingSteps;
        ascendElement(Order.elements()[E], Local);
        if (Recording) {
          SweepChangedBuf[E] = 1;
          SweepStepsBuf[E] = Local.AscendingSteps - Before;
          updateMatched(E);
        }
      }
      mergeStats(Local);
    });
    endSweep();
  }

  bool descendOnceParallel() {
    beginSweep();
    std::atomic<bool> Changed{false};
    runTaskDag([this, &Changed](unsigned TaskIdx) {
      SolverStats Local;
      bool TaskChanged = false;
      for (unsigned E : Tasks[TaskIdx].Elems) {
        if (!elemDemanded(E))
          continue;
        if (Recording && canReplay(E)) {
          replayElement(E, /*Descending=*/true, Local, TaskChanged);
          continue;
        }
        bool ElemChanged = false;
        uint64_t Before = Local.DescendingSteps;
        descendElement(Order.elements()[E], ElemChanged, Local);
        TaskChanged |= ElemChanged;
        if (Recording) {
          SweepChangedBuf[E] = ElemChanged;
          SweepStepsBuf[E] = Local.DescendingSteps - Before;
          updateMatched(E);
        }
      }
      if (TaskChanged)
        Changed.store(true, std::memory_order_relaxed);
      mergeStats(Local);
    });
    endSweep();
    return Changed.load();
  }

  static constexpr unsigned NoTask = ~0u;
  static constexpr unsigned MaxGfpSweeps = 1000;
  static constexpr unsigned MaxComponentSweeps = 1000;

  const System &Sys;
  Options Opts;
  Wto Order;
  TraceRecorder *Trace; ///< null = tracing off
  std::vector<Value> X;
  SolverStats Stats;
  std::vector<ParallelTask> Tasks;
  std::unique_ptr<ThreadPool> Pool;
  std::mutex StatsMutex;
  /// Per-node live evaluation counts (see nodeLiveSteps()). Parallel
  /// tasks write disjoint vertex slots — same argument as the
  /// per-element sweep buffers below.
  std::vector<uint64_t> NodeSteps;

  // Demand-driven scheduling state; empty/false on a full solve.
  bool Demand = false;
  std::vector<uint8_t> ElemDemanded; ///< per top-level element

  // Warm-start state; all empty/false when Options::Memo is null.
  bool Recording = false;  ///< memo present: record this run into it
  bool WarmReplay = false; ///< memo valid: replay stable elements
  unsigned NumElems = 0;
  unsigned CurBoundary = 0; ///< sweep boundary the current sweep targets
  std::vector<unsigned> ElemOf; ///< node -> top-level element index
  std::vector<std::vector<unsigned>> ElemVerts;
  std::vector<std::vector<unsigned>> ElemFeeders;
  std::vector<uint8_t> SeedClean;
  std::vector<uint8_t> ElemMembersValid;
  std::vector<uint8_t> Matched;
  std::vector<uint8_t> FullyReplayed;
  std::vector<uint8_t> SweepChangedBuf;
  std::vector<uint64_t> SweepStepsBuf;
  WarmStartMemo<Value> NewMemo;
};

} // namespace syntox

#endif // SYNTOX_FIXPOINT_SOLVER_H
