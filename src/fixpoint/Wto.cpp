//===- fixpoint/Wto.cpp - Weak topological ordering -----------------------===//
//
// Implements the hierarchical-decomposition algorithm of Bourdoncle,
// "Efficient chaotic iteration strategies with widenings", FMPA 1993.
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Wto.h"

#include <algorithm>
#include <limits>

using namespace syntox;

namespace {

constexpr unsigned InfDfn = std::numeric_limits<unsigned>::max();

class WtoBuilder {
public:
  explicit WtoBuilder(const Digraph &Graph)
      : Graph(Graph), Dfn(Graph.numNodes(), 0) {}

  std::vector<WtoElement> run(const std::vector<unsigned> &Roots) {
    std::vector<WtoElement> Partition;
    for (unsigned Root : Roots)
      if (Dfn[Root] == 0)
        visit(Root, Partition);
    // Vertices unreachable from the roots are decomposed too: they may
    // contain cycles that the solver still has to cut.
    for (unsigned V = 0; V < Graph.numNodes(); ++V)
      if (Dfn[V] == 0)
        visit(V, Partition);
    std::reverse(Partition.begin(), Partition.end());
    return Partition;
  }

private:
  /// Returns the head DFN of the strongly-connected region containing
  /// \p V; prepends finished elements to \p Partition (in reverse; the
  /// caller reverses once).
  unsigned visit(unsigned V, std::vector<WtoElement> &Partition) {
    Stack.push_back(V);
    Dfn[V] = ++Num;
    unsigned Head = Dfn[V];
    bool Loop = false;
    for (unsigned W : Graph.succs(V)) {
      unsigned Min = Dfn[W] == 0 ? visit(W, Partition) : Dfn[W];
      if (Min <= Head) {
        Head = Min;
        Loop = true;
      }
    }
    if (Head == Dfn[V]) {
      Dfn[V] = InfDfn;
      unsigned Element = Stack.back();
      Stack.pop_back();
      if (Loop) {
        while (Element != V) {
          Dfn[Element] = 0; // will be re-visited inside the component
          Element = Stack.back();
          Stack.pop_back();
        }
        Partition.push_back(makeComponent(V));
      } else {
        WtoElement E;
        E.Vertex = V;
        Partition.push_back(E);
      }
    }
    return Head;
  }

  WtoElement makeComponent(unsigned Head) {
    std::vector<WtoElement> Body;
    for (unsigned W : Graph.succs(Head))
      if (Dfn[W] == 0)
        visit(W, Body);
    std::reverse(Body.begin(), Body.end());
    WtoElement E;
    E.Vertex = Head;
    E.IsComponent = true;
    E.Body = std::move(Body);
    return E;
  }

  const Digraph &Graph;
  std::vector<unsigned> Dfn;
  std::vector<unsigned> Stack;
  unsigned Num = 0;
};

void annotate(const std::vector<WtoElement> &Elements, unsigned Depth,
              std::vector<bool> &Head, std::vector<unsigned> &Position,
              std::vector<unsigned> &DepthOf, unsigned &Pos) {
  for (const WtoElement &E : Elements) {
    Position[E.Vertex] = Pos++;
    DepthOf[E.Vertex] = Depth + (E.IsComponent ? 1 : 0);
    if (E.IsComponent) {
      Head[E.Vertex] = true;
      annotate(E.Body, Depth + 1, Head, Position, DepthOf, Pos);
    }
  }
}

void render(const std::vector<WtoElement> &Elements, std::string &Out) {
  bool First = true;
  for (const WtoElement &E : Elements) {
    if (!First)
      Out += ' ';
    First = false;
    if (E.IsComponent) {
      Out += '(';
      Out += std::to_string(E.Vertex);
      if (!E.Body.empty()) {
        Out += ' ';
        render(E.Body, Out);
      }
      Out += ')';
    } else {
      Out += std::to_string(E.Vertex);
    }
  }
}

void markTopElement(const WtoElement &E, unsigned Idx,
                    std::vector<unsigned> &TopElem) {
  TopElem[E.Vertex] = Idx;
  for (const WtoElement &Sub : E.Body)
    markTopElement(Sub, Idx, TopElem);
}

void collectHeads(const std::vector<WtoElement> &Elements,
                  std::vector<unsigned> &Out) {
  for (const WtoElement &E : Elements)
    if (E.IsComponent) {
      Out.push_back(E.Vertex);
      collectHeads(E.Body, Out);
    }
}

} // namespace

Wto::Wto(const Digraph &Graph, const std::vector<unsigned> &Roots) {
  WtoBuilder Builder(Graph);
  Elements = Builder.run(Roots);
  Head.assign(Graph.numNodes(), false);
  Position.assign(Graph.numNodes(), 0);
  Depth.assign(Graph.numNodes(), 0);
  unsigned Pos = 0;
  annotate(Elements, 0, Head, Position, Depth, Pos);
  TopElem.assign(Graph.numNodes(), 0);
  for (unsigned I = 0; I < Elements.size(); ++I)
    markTopElement(Elements[I], I, TopElem);
}

std::vector<unsigned> Wto::wideningPoints() const {
  std::vector<unsigned> Out;
  collectHeads(Elements, Out);
  return Out;
}

std::string Wto::str() const {
  std::string Out;
  render(Elements, Out);
  return Out;
}
