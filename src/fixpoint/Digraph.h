//===- fixpoint/Digraph.h - Simple directed graph ---------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal adjacency-list digraph used as the dependency graph of
/// equation systems (nodes = equations, edge u -> v when v depends on u).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FIXPOINT_DIGRAPH_H
#define SYNTOX_FIXPOINT_DIGRAPH_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace syntox {

class Digraph {
public:
  Digraph() = default;
  explicit Digraph(unsigned NumNodes) { resize(NumNodes); }

  unsigned addNode() {
    Succs.emplace_back();
    Preds.emplace_back();
    return static_cast<unsigned>(Succs.size() - 1);
  }

  void resize(unsigned NumNodes) {
    Succs.resize(NumNodes);
    Preds.resize(NumNodes);
  }

  void addEdge(unsigned From, unsigned To) {
    assert(From < Succs.size() && To < Succs.size() && "node out of range");
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  }

  unsigned numNodes() const { return static_cast<unsigned>(Succs.size()); }
  const std::vector<unsigned> &succs(unsigned Node) const {
    return Succs[Node];
  }
  const std::vector<unsigned> &preds(unsigned Node) const {
    return Preds[Node];
  }

  /// Returns the graph with every edge reversed.
  Digraph reversed() const {
    Digraph R(numNodes());
    for (unsigned U = 0; U < numNodes(); ++U)
      for (unsigned V : Succs[U])
        R.addEdge(V, U);
    return R;
  }

private:
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
};

} // namespace syntox

#endif // SYNTOX_FIXPOINT_DIGRAPH_H
