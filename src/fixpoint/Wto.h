//===- fixpoint/Wto.h - Weak topological ordering ---------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bourdoncle's weak topological ordering (WTO) of a directed graph — the
/// hierarchical decomposition of paper §6.3 and the companion FMPA'93
/// paper "Efficient chaotic iteration strategies with widenings". A WTO
/// is a well-parenthesized total order of the vertices such that every
/// cycle of the graph is "cut" by the head of one of its components;
/// those heads form an admissible set of widening points, and the nested
/// structure drives the recursive iteration strategy.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FIXPOINT_WTO_H
#define SYNTOX_FIXPOINT_WTO_H

#include "fixpoint/Digraph.h"

#include <string>
#include <vector>

namespace syntox {

/// One element of a WTO: a plain vertex, or a component `(head body...)`
/// whose body is itself a WTO.
struct WtoElement {
  unsigned Vertex = 0;           ///< the vertex, or the component head
  bool IsComponent = false;      ///< true when Body is a component body
  std::vector<WtoElement> Body;  ///< nested elements (components only)
};

/// The WTO of a digraph.
class Wto {
public:
  /// Computes a WTO by Bourdoncle's hierarchical-decomposition algorithm
  /// (depth-first, Tarjan-style). Unreachable vertices (from \p Roots)
  /// are appended as plain vertices at the end.
  Wto(const Digraph &Graph, const std::vector<unsigned> &Roots);

  const std::vector<WtoElement> &elements() const { return Elements; }

  /// True when \p Vertex is the head of some component (a widening
  /// point).
  bool isHead(unsigned Vertex) const { return Head[Vertex]; }

  /// Position of \p Vertex in the linearized order (for worklist
  /// prioritization).
  unsigned position(unsigned Vertex) const { return Position[Vertex]; }

  /// The nesting depth of each vertex (number of enclosing components);
  /// the paper's complexity bound is h * sum of depths.
  unsigned depth(unsigned Vertex) const { return Depth[Vertex]; }

  /// Index into elements() of the *top-level* element containing
  /// \p Vertex — the scheduling granule of the parallel strategy and the
  /// replay granule of warm starts.
  unsigned topElement(unsigned Vertex) const { return TopElem[Vertex]; }

  /// All widening points (component heads), in order.
  std::vector<unsigned> wideningPoints() const;

  /// Renders e.g. "0 (1 2 (3 4) 5) 6" with components parenthesized.
  std::string str() const;

private:
  std::vector<WtoElement> Elements;
  std::vector<bool> Head;
  std::vector<unsigned> Position;
  std::vector<unsigned> Depth;
  std::vector<unsigned> TopElem;
};

} // namespace syntox

#endif // SYNTOX_FIXPOINT_WTO_H
