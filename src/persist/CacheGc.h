//===- persist/CacheGc.h - Size-capped cache-directory GC -------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Garbage collection for a warm-start cache tree: bounds the total
/// bytes under a directory by deleting the oldest cache entries first.
/// An *entry* is one `syntox-<hash>.warm` file together with its
/// `.meta.json` sidecar — the pair is removed (or kept) atomically, and
/// anything else in the tree is left untouched. Entries are aged by the
/// `.warm` file's mtime, which the saver rewrites on every run, so
/// recency of *use* is what the collector preserves (an LRU policy over
/// cache entries).
///
/// The scan is recursive because the serving layer shards its cache
/// into one subdirectory per client document (see serve/Server.h);
/// subdirectories left empty by a collection are removed too.
///
/// Losing an entry is always safe — the cache is strictly an
/// optimization and the next run of the evicted configuration simply
/// solves cold and re-saves.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_PERSIST_CACHEGC_H
#define SYNTOX_PERSIST_CACHEGC_H

#include <cstdint>
#include <string>

namespace syntox {
namespace persist {

/// Outcome of one collection, for telemetry and the serve `gc` admin
/// response.
struct CacheGcResult {
  uint64_t BytesBefore = 0; ///< cache-entry bytes found by the scan
  uint64_t BytesAfter = 0;  ///< cache-entry bytes surviving it
  uint64_t FilesRemoved = 0; ///< files deleted (.warm and sidecars)
  uint64_t FilesKept = 0;    ///< files surviving
};

/// Deletes oldest-first cache entries under \p Dir (recursively) until
/// the surviving entries total at most \p MaxBytes. \p MaxBytes == 0
/// means "collect everything". A missing directory is an empty cache,
/// not an error; individual deletion failures are skipped (the entry
/// then still counts toward BytesAfter). Never throws.
CacheGcResult gcCacheDir(const std::string &Dir, uint64_t MaxBytes);

} // namespace persist
} // namespace syntox

#endif // SYNTOX_PERSIST_CACHEGC_H
