//===- persist/WarmCache.h - On-disk warm-start cache -----------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence of the analyzer's warm-start state (chain-slot memos,
/// boundary store snapshots, interprocedural edge-transfer memos) to a
/// versioned cache file, keyed entirely by the content-addressed keys of
/// semantics/StableIds.h so that a re-parse — or an edited program —
/// maps recorded state onto its structural counterparts:
///
///   file name        syntox-<options hash>.warm     (one file per
///                    options configuration; the supergraph hash lives
///                    in the header, informationally, because after an
///                    edit it never matches and mapping is per-key)
///   header           magic "SYXC", format version, options hash,
///                    supergraph hash, body length, FNV-1a body checksum
///   body             var-key table, recorded node-key table, forward /
///                    backward WTO element-key tables, a payload-deduped
///                    store pool (interval bounds as zigzag varints with
///                    +/-oo sentinel flags), the chain slots, and the
///                    edge-transfer memos keyed by edge key
///   sidecar          <file>.meta.json — the header decoded to JSON,
///                    validated by schemas/cache.schema.json
///
/// Loading maps recorded node keys onto the current supergraph: matched
/// nodes get their recorded boundary values, unmatched ones get
/// placeholder values with WarmStartMemo::NodeValid = 0 (the solver
/// then refuses to replay or verify anything touching them); WTO
/// elements whose sorted member-key set matches a recorded element
/// reuse its per-sweep change/cost rows, others are marked
/// non-replayable. Any header mismatch, checksum failure, or truncation
/// falls back to cold solving — the load is strictly an optimization
/// and the solver re-verifies every replayed value, so a stale or
/// corrupted cache can cost time but never change a result.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_PERSIST_WARMCACHE_H
#define SYNTOX_PERSIST_WARMCACHE_H

#include <cstdint>
#include <string>

namespace syntox {

class Analyzer;
struct AnalysisOptions;

namespace persist {

/// Cache file format version; bumped on any layout change.
/// v2: single-flags-byte store row codec matching the SoA payload
/// layout (bool kind folded into the flags, zigzag varint bounds).
inline constexpr uint32_t CacheFormatVersion = 2;
/// The four header magic bytes.
inline constexpr char CacheMagic[4] = {'S', 'Y', 'X', 'C'};

/// Outcome of a load attempt, for telemetry and tests.
struct CacheLoadResult {
  bool Loaded = false;        ///< chain slots were imported
  std::string FallbackReason; ///< human-readable cause when !Loaded
  uint64_t Slots = 0;         ///< chain slots restored
  uint64_t RestoredNodes = 0; ///< current nodes with a recorded value
  uint64_t InvalidatedNodes = 0; ///< current nodes without one
  uint64_t MatchedElements = 0;  ///< fwd+bwd WTO elements with rows
  uint64_t UnmatchedElements = 0;
  uint64_t RestoredEdgeMemos = 0;
};

/// Path of the cache file for \p Dir and \p Opts (one per options
/// configuration).
std::string cacheFilePath(const std::string &Dir,
                          const AnalysisOptions &Opts);

/// Serializes the warm-start state recorded by \p An's last run() to
/// the cache file (plus the .meta.json sidecar), creating \p Dir if
/// needed. Returns false with \p ErrorOut set on I/O failure or when
/// there is nothing to save yet.
bool saveWarmCache(const std::string &Dir, const Analyzer &An,
                   std::string *ErrorOut = nullptr);

/// Loads the cache file for \p An's options and maps its state into
/// \p An (chain slots via Analyzer::importChainSlots, edge memos via
/// Analyzer::importEdgeMemo). Never throws; every failure mode is a
/// clean fallback with CacheLoadResult::FallbackReason set.
CacheLoadResult loadWarmCache(const std::string &Dir, Analyzer &An);

} // namespace persist
} // namespace syntox

#endif // SYNTOX_PERSIST_WARMCACHE_H
