//===- persist/WarmCache.cpp - On-disk warm-start cache -------------------===//

#include "persist/WarmCache.h"

#include "fixpoint/Wto.h"
#include "persist/Serial.h"
#include "semantics/Analyzer.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <unordered_map>

using namespace syntox;
using namespace syntox::persist;

namespace {

constexpr size_t HeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;

std::string hex64(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Element keys
//===----------------------------------------------------------------------===//

void collectMembers(const WtoElement &E, std::vector<unsigned> &Out) {
  Out.push_back(E.Vertex);
  for (const WtoElement &Sub : E.Body)
    collectMembers(Sub, Out);
}

/// Content key of one top-level WTO element: the hash of its sorted
/// member node keys. Stable under any reordering of unrelated elements
/// and under edits that leave the member routines' fingerprints alone.
uint64_t elementKey(const WtoElement &E,
                    const std::vector<uint64_t> &NodeKeys) {
  std::vector<unsigned> Members;
  collectMembers(E, Members);
  std::vector<uint64_t> Keys;
  Keys.reserve(Members.size());
  for (unsigned V : Members)
    Keys.push_back(NodeKeys[V]);
  std::sort(Keys.begin(), Keys.end());
  uint64_t K = fpMix(fpSeed(), Keys.size());
  for (uint64_t Key : Keys)
    K = fpMix(K, Key);
  return K;
}

std::vector<uint64_t> elementKeys(const Wto &Order,
                                  const std::vector<uint64_t> &NodeKeys) {
  std::vector<uint64_t> Keys;
  Keys.reserve(Order.elements().size());
  for (const WtoElement &E : Order.elements())
    Keys.push_back(elementKey(E, NodeKeys));
  return Keys;
}

/// Key -> index map with duplicate poisoning: a key minted twice (e.g.
/// textually identical twin routines) is ambiguous and must not map, or
/// recorded state could be grafted onto the wrong twin.
std::unordered_map<uint64_t, unsigned>
indexByKey(const std::vector<uint64_t> &Keys) {
  constexpr unsigned Ambiguous = ~0u;
  std::unordered_map<uint64_t, unsigned> Map;
  Map.reserve(Keys.size());
  for (unsigned I = 0; I < Keys.size(); ++I) {
    auto [It, Inserted] = Map.emplace(Keys[I], I);
    if (!Inserted)
      It->second = Ambiguous;
  }
  for (auto It = Map.begin(); It != Map.end();)
    It = It->second == Ambiguous ? Map.erase(It) : std::next(It);
  return Map;
}

//===----------------------------------------------------------------------===//
// Value codec
//===----------------------------------------------------------------------===//

constexpr int64_t MinI64 = std::numeric_limits<int64_t>::min();
constexpr int64_t MaxI64 = std::numeric_limits<int64_t>::max();

/// Row codec (format v2, matching the SoA payload rows): one flags byte
/// folds the lane tag, the bool kind and the interval sentinels, so a
/// typical finite interval row is the flags byte plus two svarints and
/// a bool row is a single byte (format v1 spent a separate tag byte per
/// value and a whole byte per bool kind).
///   bit0        1 = bool lane, 0 = interval lane
///   bool lane:  bits1-2 = BoolLattice kind (Bottom/False/True/Top)
///   int lane:   bit1 = bottom, bit2 = Lo is -oo, bit3 = Hi is +oo;
///               finite bounds follow as svarints (zigzag varints)
void writeValue(ByteWriter &W, const AbsValue &V) {
  if (!V.isInt()) {
    W.u8(static_cast<uint8_t>(
        1u | (static_cast<unsigned>(V.asBool().kind()) << 1)));
    return;
  }
  const Interval &I = V.asInt();
  uint8_t Flags = 0;
  if (I.isBottom())
    Flags |= 2;
  else {
    if (I.Lo == MinI64)
      Flags |= 4; // -oo sentinel: no bound bytes follow
    if (I.Hi == MaxI64)
      Flags |= 8; // +oo sentinel
  }
  W.u8(Flags);
  if (!(Flags & 2)) {
    if (!(Flags & 4))
      W.svarint(I.Lo);
    if (!(Flags & 8))
      W.svarint(I.Hi);
  }
}

AbsValue readValue(ByteReader &R, bool &Ok) {
  uint8_t Flags = R.u8();
  if (Flags & 1) {
    if (Flags & ~0x7u) {
      Ok = false;
      return AbsValue();
    }
    switch ((Flags >> 1) & 3u) {
    case BoolLattice::Bottom:
      return AbsValue(BoolLattice::bottom());
    case BoolLattice::False:
      return AbsValue(BoolLattice(false));
    case BoolLattice::True:
      return AbsValue(BoolLattice(true));
    default:
      return AbsValue(BoolLattice::top());
    }
  }
  if (Flags & ~0xeu) {
    Ok = false;
    return AbsValue();
  }
  if (Flags & 2)
    return AbsValue(Interval::bottom());
  int64_t Lo = (Flags & 4) ? MinI64 : R.svarint();
  int64_t Hi = (Flags & 8) ? MaxI64 : R.svarint();
  return AbsValue(Interval(Lo, Hi));
}

//===----------------------------------------------------------------------===//
// Store pool (save side)
//===----------------------------------------------------------------------===//

/// Payload-identity-deduplicated pool of serialized stores. References
/// 0 and 1 are the implicit top and bottom stores; payload entries
/// start at 2. COW payload sharing across boundary snapshots makes the
/// pool the dominant size saver: a store unchanged across sweeps and
/// phases serializes once.
class StorePoolWriter {
public:
  explicit StorePoolWriter(const StableIds &Ids) : Ids(Ids) {}

  uint64_t ref(const AbstractStore &S) {
    if (S.isBottom())
      return 1;
    if (S.isTop())
      return 0;
    const void *Identity = S.payloadIdentity();
    auto It = ByPayload.find(Identity);
    if (It != ByPayload.end())
      return It->second;
    ByteWriter W;
    W.varint(S.numEntries());
    S.forEachEntry([&](const VarDecl *V, const AbsValue &Val) {
      W.varint(varIndex(V));
      writeValue(W, Val);
    });
    uint64_t Ref = 2 + Entries.size();
    Entries.push_back(W);
    ByPayload.emplace(Identity, Ref);
    return Ref;
  }

  const std::vector<uint64_t> &varKeys() const { return VarKeys; }

  void writePool(ByteWriter &W) const {
    W.varint(Entries.size());
    for (const ByteWriter &E : Entries)
      W.append(E);
  }

private:
  uint64_t varIndex(const VarDecl *V) {
    auto [It, Inserted] = VarIdx.emplace(V, VarKeys.size());
    if (Inserted)
      VarKeys.push_back(Ids.varKey(V));
    return It->second;
  }

  const StableIds &Ids;
  std::unordered_map<const VarDecl *, uint64_t> VarIdx;
  std::vector<uint64_t> VarKeys;
  std::unordered_map<const void *, uint64_t> ByPayload;
  std::vector<ByteWriter> Entries;
};

//===----------------------------------------------------------------------===//
// Store pool (load side)
//===----------------------------------------------------------------------===//

/// The deserialized pool: one reconstructed store per entry, plus a
/// validity bit — an entry mentioning a variable key with no
/// counterpart in the current program (or an ambiguous one) cannot be
/// reconstructed and poisons everything referencing it.
struct StorePoolReader {
  std::vector<AbstractStore> Stores; ///< index = ref
  std::vector<uint8_t> Valid;

  bool parse(ByteReader &R, const std::vector<const VarDecl *> &Vars) {
    uint64_t Count = R.varint();
    if (R.failed() || Count > R.remaining())
      return false;
    Stores.reserve(2 + Count);
    Valid.reserve(2 + Count);
    Stores.push_back(AbstractStore::top());
    Valid.push_back(1);
    Stores.push_back(AbstractStore::bottom());
    Valid.push_back(1);
    for (uint64_t I = 0; I < Count; ++I) {
      uint64_t NumEntries = R.varint();
      if (R.failed() || NumEntries > R.remaining())
        return false;
      AbstractStore S;
      bool Ok = true;
      for (uint64_t E = 0; E < NumEntries; ++E) {
        uint64_t VarIdx = R.varint();
        AbsValue Val = readValue(R, Ok);
        if (R.failed())
          return false;
        const VarDecl *V =
            VarIdx < Vars.size() ? Vars[VarIdx] : nullptr;
        if (!V) {
          Ok = false;
          continue;
        }
        if (Ok)
          S.set(V, Val);
      }
      Stores.push_back(Ok ? std::move(S) : AbstractStore::top());
      Valid.push_back(Ok);
    }
    return true;
  }

  bool valid(uint64_t Ref) const {
    return Ref < Valid.size() && Valid[Ref];
  }
  const AbstractStore &store(uint64_t Ref) const { return Stores[Ref]; }
};

void writeKeyTable(ByteWriter &W, const std::vector<uint64_t> &Keys) {
  W.varint(Keys.size());
  for (uint64_t K : Keys)
    W.u64(K);
}

std::vector<uint64_t> readKeyTable(ByteReader &R) {
  uint64_t Count = R.varint();
  if (R.failed() || Count > R.remaining() / 8 + 1)
    return {};
  std::vector<uint64_t> Keys;
  Keys.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I)
    Keys.push_back(R.u64());
  return Keys;
}

bool isForwardSig(Analyzer::PhaseSig Sig) {
  return Sig == Analyzer::PhaseSig::FwdNoEnv ||
         Sig == Analyzer::PhaseSig::FwdEnv;
}

} // namespace

std::string persist::cacheFilePath(const std::string &Dir,
                                   const AnalysisOptions &Opts) {
  std::filesystem::path P(Dir);
  char Name[64];
  std::snprintf(Name, sizeof(Name), "syntox-%016llx.warm",
                static_cast<unsigned long long>(Opts.optionsHash()));
  return (P / Name).string();
}

//===----------------------------------------------------------------------===//
// Save
//===----------------------------------------------------------------------===//

bool persist::saveWarmCache(const std::string &Dir, const Analyzer &An,
                            std::string *ErrorOut) {
  auto Fail = [&](const std::string &Why) {
    if (ErrorOut)
      *ErrorOut = Why;
    return false;
  };
  const AnalysisOptions &Opts = An.options();
  if (!Opts.WarmStart)
    return Fail("warm start disabled: nothing to persist");
  const std::vector<Analyzer::WarmSlot> &Slots = An.chainSlots();
  bool AnyValid = false;
  for (const Analyzer::WarmSlot &S : Slots)
    AnyValid |= S.Memo.Valid;
  if (!AnyValid)
    return Fail("no recorded run to persist");

  const SuperGraph &G = An.graph();
  const StableIds &Ids = G.stableIds();
  unsigned N = G.numNodes();

  Wto FwdOrder(An.forwardDependencies(), An.forwardRoots());
  Wto BwdOrder(An.backwardDependencies(), An.backwardRoots());
  std::vector<uint64_t> FwdElemKeys = elementKeys(FwdOrder, Ids.nodeKeys());
  std::vector<uint64_t> BwdElemKeys = elementKeys(BwdOrder, Ids.nodeKeys());

  StorePoolWriter Pool(Ids);

  // Slots and edge memos are serialized first (into side buffers) so
  // the pool they populate can be emitted ahead of them in the body.
  ByteWriter SlotsW;
  uint64_t SavedSlots = 0;
  SlotsW.varint(Slots.size());
  for (const Analyzer::WarmSlot &Slot : Slots) {
    const WarmStartMemo<AbstractStore> &M = Slot.Memo;
    size_t NumElems =
        isForwardSig(Slot.Sig) ? FwdElemKeys.size() : BwdElemKeys.size();
    bool Ok = M.Valid && M.NumNodes == N && !M.Boundaries.empty() &&
              M.ElemChanged.size() == M.Boundaries.size() &&
              M.ElemSteps.size() == M.Boundaries.size() &&
              M.ElemChanged.front().size() == NumElems &&
              (M.NodeValid.empty() || M.NodeValid.size() == N) &&
              (M.ElemReplayable.empty() ||
               M.ElemReplayable.size() == NumElems);
    for (const std::vector<AbstractStore> &B : M.Boundaries)
      Ok &= B.size() == N;
    SlotsW.u8(Ok);
    if (!Ok)
      continue;
    ++SavedSlots;
    SlotsW.u8(static_cast<uint8_t>(Slot.Sig));
    SlotsW.u8(Slot.HadEnv);
    SlotsW.u8(static_cast<uint8_t>(M.Kind));
    SlotsW.u8(static_cast<uint8_t>(M.Strategy));
    SlotsW.varint(M.Boundaries.size());
    for (size_t B = 0; B < M.Boundaries.size(); ++B) {
      for (unsigned V = 0; V < N; ++V)
        SlotsW.varint(Pool.ref(M.Boundaries[B][V]));
      for (size_t E = 0; E < NumElems; ++E)
        SlotsW.u8(M.ElemChanged[B][E]);
      for (size_t E = 0; E < NumElems; ++E)
        SlotsW.varint(M.ElemSteps[B][E]);
    }
    SlotsW.u8(!M.NodeValid.empty());
    for (uint8_t Bit : M.NodeValid)
      SlotsW.u8(Bit);
    SlotsW.u8(!M.ElemReplayable.empty());
    for (uint8_t Bit : M.ElemReplayable)
      SlotsW.u8(Bit);
    bool HasEnv = Slot.Env.size() == N;
    SlotsW.u8(HasEnv);
    if (HasEnv)
      for (unsigned V = 0; V < N; ++V)
        SlotsW.varint(Pool.ref(Slot.Env[V]));
    bool HasSeeds = Slot.Seeds.size() == N;
    SlotsW.u8(HasSeeds);
    if (HasSeeds)
      for (unsigned V = 0; V < N; ++V)
        SlotsW.varint(Pool.ref(Slot.Seeds[V]));
  }

  ByteWriter EdgesW;
  uint64_t SavedMemos = 0;
  {
    ByteWriter Records;
    const auto &Memos = G.edgeMemos();
    for (unsigned E = 0; E < Memos.size(); ++E)
      for (unsigned Dir = 0; Dir < 2; ++Dir) {
        const LinkTransferMemo &M = Memos[E][Dir];
        if (!M.Valid)
          continue;
        ++SavedMemos;
        Records.u64(Ids.edgeKey(E));
        Records.u8(static_cast<uint8_t>(Dir));
        Records.varint(Pool.ref(M.In1));
        Records.varint(Pool.ref(M.In2));
        Records.varint(Pool.ref(M.Out));
      }
    EdgesW.varint(SavedMemos);
    EdgesW.append(Records);
  }

  // Body: key tables, pool, slots, edge memos — in that order, so the
  // reader has every table it needs before the data referencing it.
  ByteWriter Body;
  writeKeyTable(Body, Pool.varKeys());
  writeKeyTable(Body, Ids.nodeKeys());
  writeKeyTable(Body, FwdElemKeys);
  writeKeyTable(Body, BwdElemKeys);
  Pool.writePool(Body);
  Body.append(SlotsW);
  Body.append(EdgesW);

  uint64_t Checksum = fnv1a(Body.buffer().data(), Body.size());
  ByteWriter File;
  File.bytes(CacheMagic, 4);
  File.u32(CacheFormatVersion);
  File.u64(Opts.optionsHash());
  File.u64(Ids.supergraphHash());
  File.u64(Body.size());
  File.u64(Checksum);
  File.append(Body);

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return Fail("cannot create cache directory: " + EC.message());
  std::string Path = cacheFilePath(Dir, Opts);
  {
    // Write-then-rename so a crash mid-save leaves the old file intact.
    std::string Tmp = Path + ".tmp";
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Fail("cannot open cache file for writing: " + Tmp);
    Out.write(File.buffer().data(),
              static_cast<std::streamsize>(File.size()));
    Out.close();
    if (!Out)
      return Fail("write failed: " + Tmp);
    std::filesystem::rename(Tmp, Path, EC);
    if (EC)
      return Fail("cannot move cache file into place: " + EC.message());
  }

  json::Value Meta = json::Value::object();
  Meta.set("magic", json::Value("SYXC"));
  Meta.set("version", json::Value(static_cast<int64_t>(CacheFormatVersion)));
  Meta.set("options_hash", json::Value(hex64(Opts.optionsHash())));
  Meta.set("supergraph_hash", json::Value(hex64(Ids.supergraphHash())));
  Meta.set("body_len", json::Value(static_cast<int64_t>(Body.size())));
  Meta.set("body_checksum", json::Value(hex64(Checksum)));
  Meta.set("num_nodes", json::Value(static_cast<int64_t>(N)));
  Meta.set("slots", json::Value(static_cast<int64_t>(SavedSlots)));
  Meta.set("edge_memos", json::Value(static_cast<int64_t>(SavedMemos)));
  std::ofstream MetaOut(Path + ".meta.json", std::ios::trunc);
  if (MetaOut)
    MetaOut << Meta.pretty() << "\n";
  return true;
}

//===----------------------------------------------------------------------===//
// Load
//===----------------------------------------------------------------------===//

CacheLoadResult persist::loadWarmCache(const std::string &Dir,
                                       Analyzer &An) {
  CacheLoadResult Res;
  auto Fallback = [&](const std::string &Why) {
    Res = CacheLoadResult();
    Res.FallbackReason = Why;
    return Res;
  };
  const AnalysisOptions &Opts = An.options();
  if (!Opts.WarmStart)
    return Fallback("warm start disabled");

  std::string Path = cacheFilePath(Dir, Opts);
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Fallback("no cache file");
  std::string Data((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  if (Data.size() < HeaderBytes)
    return Fallback("truncated header");

  if (std::memcmp(Data.data(), CacheMagic, 4) != 0)
    return Fallback("bad magic");
  ByteReader Header(Data.data() + 4, HeaderBytes - 4);
  if (Header.u32() != CacheFormatVersion)
    return Fallback("format version mismatch");
  if (Header.u64() != Opts.optionsHash())
    return Fallback("options mismatch");
  Header.u64(); // recorded supergraph hash: informational only
  uint64_t BodyLen = Header.u64();
  uint64_t Checksum = Header.u64();
  if (Data.size() - HeaderBytes != BodyLen)
    return Fallback("truncated body");
  if (fnv1a(Data.data() + HeaderBytes, BodyLen) != Checksum)
    return Fallback("checksum mismatch");

  const SuperGraph &G = An.graph();
  const StableIds &Ids = G.stableIds();
  unsigned NNew = G.numNodes();

  ByteReader R(Data.data() + HeaderBytes, BodyLen);
  std::vector<uint64_t> VarKeyTable = readKeyTable(R);
  std::vector<uint64_t> RecNodeKeys = readKeyTable(R);
  std::vector<uint64_t> RecFwdElemKeys = readKeyTable(R);
  std::vector<uint64_t> RecBwdElemKeys = readKeyTable(R);
  if (R.failed())
    return Fallback("malformed key tables");

  // Var table -> current VarDecls (null for keys with no counterpart).
  std::vector<const VarDecl *> Vars;
  Vars.reserve(VarKeyTable.size());
  for (uint64_t K : VarKeyTable)
    Vars.push_back(Ids.varForKey(K));

  StorePoolReader Pool;
  if (!Pool.parse(R, Vars) || R.failed())
    return Fallback("malformed store pool");

  // Recorded node index -> current node index (or -1): the heart of
  // edit-aware invalidation. Duplicate keys on either side are
  // ambiguous and stay unmapped.
  unsigned NRec = static_cast<unsigned>(RecNodeKeys.size());
  std::unordered_map<uint64_t, unsigned> RecNodeByKey =
      indexByKey(RecNodeKeys);
  std::vector<int64_t> RecOfNew(NNew, -1);
  {
    std::unordered_map<uint64_t, unsigned> NewNodeByKey =
        indexByKey(Ids.nodeKeys());
    for (unsigned I = 0; I < NNew; ++I) {
      auto It = NewNodeByKey.find(Ids.nodeKey(I));
      if (It == NewNodeByKey.end() || It->second != I)
        continue; // current-side duplicate: ambiguous
      auto Rec = RecNodeByKey.find(Ids.nodeKey(I));
      if (Rec != RecNodeByKey.end())
        RecOfNew[I] = Rec->second;
    }
  }
  for (unsigned I = 0; I < NNew; ++I)
    RecOfNew[I] >= 0 ? ++Res.RestoredNodes : ++Res.InvalidatedNodes;

  // Current WTO element keys per system, and the recorded-key lookup.
  Wto FwdOrder(An.forwardDependencies(), An.forwardRoots());
  Wto BwdOrder(An.backwardDependencies(), An.backwardRoots());
  std::vector<uint64_t> FwdElemKeys = elementKeys(FwdOrder, Ids.nodeKeys());
  std::vector<uint64_t> BwdElemKeys = elementKeys(BwdOrder, Ids.nodeKeys());
  std::unordered_map<uint64_t, unsigned> RecFwdByKey =
      indexByKey(RecFwdElemKeys);
  std::unordered_map<uint64_t, unsigned> RecBwdByKey =
      indexByKey(RecBwdElemKeys);

  uint64_t NumSlots = R.varint();
  if (R.failed() || NumSlots > 1024)
    return Fallback("malformed slot count");
  std::vector<Analyzer::WarmSlot> NewSlots;
  for (uint64_t SlotIdx = 0; SlotIdx < NumSlots; ++SlotIdx) {
    uint8_t Valid = R.u8();
    NewSlots.emplace_back();
    Analyzer::WarmSlot &Slot = NewSlots.back();
    if (!Valid)
      continue;
    uint8_t SigByte = R.u8();
    if (SigByte > static_cast<uint8_t>(Analyzer::PhaseSig::Eventually))
      return Fallback("malformed slot signature");
    Slot.Sig = static_cast<Analyzer::PhaseSig>(SigByte);
    Slot.HadEnv = R.u8() != 0;
    WarmStartMemo<AbstractStore> &M = Slot.Memo;
    M.Kind = static_cast<FixpointKind>(R.u8());
    M.Strategy = static_cast<IterationStrategy>(R.u8());
    M.NumNodes = NNew;

    bool Fwd = isForwardSig(Slot.Sig);
    const std::vector<uint64_t> &NewElemKeys =
        Fwd ? FwdElemKeys : BwdElemKeys;
    const std::unordered_map<uint64_t, unsigned> &RecElemByKey =
        Fwd ? RecFwdByKey : RecBwdByKey;
    size_t ERec = Fwd ? RecFwdElemKeys.size() : RecBwdElemKeys.size();
    size_t ENew = NewElemKeys.size();

    uint64_t NumBoundaries = R.varint();
    if (R.failed() || NumBoundaries == 0 || NumBoundaries > 100000)
      return Fallback("malformed boundary count");

    // Per-boundary recorded refs and rows, in *recorded* index space.
    std::vector<std::vector<uint64_t>> Refs(
        NumBoundaries, std::vector<uint64_t>(NRec));
    std::vector<std::vector<uint8_t>> RecChanged(
        NumBoundaries, std::vector<uint8_t>(ERec));
    std::vector<std::vector<uint64_t>> RecSteps(
        NumBoundaries, std::vector<uint64_t>(ERec));
    for (uint64_t B = 0; B < NumBoundaries; ++B) {
      for (unsigned V = 0; V < NRec; ++V)
        Refs[B][V] = R.varint();
      for (size_t E = 0; E < ERec; ++E)
        RecChanged[B][E] = R.u8();
      for (size_t E = 0; E < ERec; ++E)
        RecSteps[B][E] = R.varint();
    }
    std::vector<uint8_t> RecNodeValid;
    if (R.u8())
      for (unsigned V = 0; V < NRec; ++V)
        RecNodeValid.push_back(R.u8());
    std::vector<uint8_t> RecElemReplayable;
    if (R.u8())
      for (size_t E = 0; E < ERec; ++E)
        RecElemReplayable.push_back(R.u8());
    std::vector<uint64_t> EnvRefs, SeedRefs;
    if (R.u8())
      for (unsigned V = 0; V < NRec; ++V)
        EnvRefs.push_back(R.varint());
    if (R.u8())
      for (unsigned V = 0; V < NRec; ++V)
        SeedRefs.push_back(R.varint());
    if (R.failed())
      return Fallback("malformed slot body");
    for (const std::vector<uint64_t> &Row : Refs)
      for (uint64_t Ref : Row)
        if (Ref >= Pool.Stores.size())
          return Fallback("dangling store reference");

    // Remap into the current graph: values by node key, rows by
    // element key, placeholders (masked invalid) everywhere else.
    std::vector<uint8_t> NodeValid(NNew, 1);
    for (unsigned I = 0; I < NNew; ++I) {
      int64_t J = RecOfNew[I];
      if (J < 0 ||
          (!RecNodeValid.empty() && !RecNodeValid[J])) {
        NodeValid[I] = 0;
        continue;
      }
      for (uint64_t B = 0; B < NumBoundaries && NodeValid[I]; ++B)
        if (!Pool.valid(Refs[B][J]))
          NodeValid[I] = 0;
    }
    M.Boundaries.assign(NumBoundaries,
                        std::vector<AbstractStore>(NNew));
    for (uint64_t B = 0; B < NumBoundaries; ++B)
      for (unsigned I = 0; I < NNew; ++I)
        if (NodeValid[I])
          M.Boundaries[B][I] = Pool.store(Refs[B][RecOfNew[I]]);

    std::vector<uint8_t> ElemReplayable(ENew, 0);
    M.ElemChanged.assign(NumBoundaries, std::vector<uint8_t>(ENew, 1));
    M.ElemSteps.assign(NumBoundaries, std::vector<uint64_t>(ENew, 0));
    for (size_t E = 0; E < ENew; ++E) {
      auto It = RecElemByKey.find(NewElemKeys[E]);
      if (It == RecElemByKey.end())
        continue;
      unsigned RE = It->second;
      if (!RecElemReplayable.empty() && !RecElemReplayable[RE])
        continue;
      ElemReplayable[E] = 1;
      ++Res.MatchedElements;
      for (uint64_t B = 0; B < NumBoundaries; ++B) {
        M.ElemChanged[B][E] = RecChanged[B][RE];
        M.ElemSteps[B][E] = RecSteps[B][RE];
      }
    }
    Res.UnmatchedElements +=
        ENew - static_cast<size_t>(
                   std::count(ElemReplayable.begin(),
                              ElemReplayable.end(), uint8_t(1)));

    // Empty masks mean "all valid" to the solver; only keep them when
    // something is actually masked.
    if (std::count(NodeValid.begin(), NodeValid.end(), uint8_t(1)) !=
        static_cast<long>(NNew))
      M.NodeValid = std::move(NodeValid);
    if (std::count(ElemReplayable.begin(), ElemReplayable.end(),
                   uint8_t(1)) != static_cast<long>(ENew))
      M.ElemReplayable = std::move(ElemReplayable);

    // Recorded envelope/seeds, for the external-input dirtiness check.
    // Placeholder tops at unmatched nodes are harmless: those nodes are
    // invalid, so their elements never replay regardless.
    auto Remap = [&](const std::vector<uint64_t> &SrcRefs,
                     std::vector<AbstractStore> &Out) {
      if (SrcRefs.empty())
        return;
      Out.assign(NNew, AbstractStore());
      for (unsigned I = 0; I < NNew; ++I) {
        int64_t J = RecOfNew[I];
        if (J >= 0 && SrcRefs[J] < Pool.Stores.size() &&
            Pool.valid(SrcRefs[J]))
          Out[I] = Pool.store(SrcRefs[J]);
      }
    };
    Remap(EnvRefs, Slot.Env);
    Remap(SeedRefs, Slot.Seeds);
    M.Valid = true;
    ++Res.Slots;
  }

  uint64_t NumMemos = R.varint();
  if (R.failed())
    return Fallback("malformed edge memo count");
  std::unordered_map<uint64_t, unsigned> NewEdgeByKey =
      indexByKey(Ids.edgeKeys());
  for (uint64_t I = 0; I < NumMemos; ++I) {
    uint64_t Key = R.u64();
    uint8_t Dir = R.u8();
    uint64_t In1 = R.varint();
    uint64_t In2 = R.varint();
    uint64_t Out = R.varint();
    if (R.failed() || Dir > 1)
      return Fallback("malformed edge memo");
    auto It = NewEdgeByKey.find(Key);
    if (It == NewEdgeByKey.end() || !Pool.valid(In1) ||
        !Pool.valid(In2) || !Pool.valid(Out))
      continue;
    if (G.transferMemoEnabled()) {
      LinkTransferMemo M;
      M.Valid = true;
      M.In1 = Pool.store(In1);
      M.In2 = Pool.store(In2);
      M.Out = Pool.store(Out);
      An.importEdgeMemo(It->second, Dir, std::move(M));
      ++Res.RestoredEdgeMemos;
    }
  }
  if (!R.atEnd())
    return Fallback("trailing bytes");

  if (Res.Slots == 0)
    return Fallback("no usable slots in cache");
  An.importChainSlots(std::move(NewSlots));
  Res.Loaded = true;
  return Res;
}
