//===- persist/CacheGc.cpp - Size-capped cache-directory GC ---------------===//

#include "persist/CacheGc.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <vector>

using namespace syntox;
using namespace syntox::persist;

namespace fs = std::filesystem;

namespace {

struct Entry {
  fs::path Warm;
  fs::path Meta; ///< empty when the sidecar is missing
  uint64_t Bytes = 0;
  fs::file_time_type MTime;
};

bool isWarmFile(const fs::path &P) {
  return P.extension() == ".warm" &&
         P.filename().string().rfind("syntox-", 0) == 0;
}

} // namespace

CacheGcResult persist::gcCacheDir(const std::string &Dir,
                                  uint64_t MaxBytes) {
  CacheGcResult R;
  std::error_code EC;
  if (Dir.empty() || !fs::is_directory(Dir, EC))
    return R;

  std::vector<Entry> Entries;
  for (fs::recursive_directory_iterator
           It(Dir, fs::directory_options::skip_permission_denied, EC),
       End;
       !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC) || !isWarmFile(It->path()))
      continue;
    Entry E;
    E.Warm = It->path();
    E.Bytes = fs::file_size(E.Warm, EC);
    if (EC)
      continue;
    E.MTime = fs::last_write_time(E.Warm, EC);
    if (EC)
      continue;
    fs::path Meta = E.Warm;
    Meta += ".meta.json";
    if (fs::is_regular_file(Meta, EC))
      E.Meta = Meta;
    if (!E.Meta.empty())
      E.Bytes += fs::file_size(E.Meta, EC);
    Entries.push_back(std::move(E));
  }

  for (const Entry &E : Entries)
    R.BytesBefore += E.Bytes;
  R.BytesAfter = R.BytesBefore;

  // Oldest first; mtime ties broken by path for determinism.
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              if (A.MTime != B.MTime)
                return A.MTime < B.MTime;
              return A.Warm < B.Warm;
            });

  size_t Victim = 0;
  for (; Victim < Entries.size() && R.BytesAfter > MaxBytes; ++Victim) {
    const Entry &E = Entries[Victim];
    std::error_code DelEC;
    if (!fs::remove(E.Warm, DelEC) || DelEC)
      continue; // keep counting its bytes: the entry survived
    ++R.FilesRemoved;
    if (!E.Meta.empty() && fs::remove(E.Meta, DelEC) && !DelEC)
      ++R.FilesRemoved;
    R.BytesAfter -= std::min<uint64_t>(R.BytesAfter, E.Bytes);
  }
  for (const Entry &E : Entries)
    if (fs::exists(E.Warm, EC)) {
      ++R.FilesKept;
      if (!E.Meta.empty() && fs::exists(E.Meta, EC))
        ++R.FilesKept;
    }

  // Drop per-document shard directories a collection emptied out.
  std::vector<fs::path> Dirs;
  for (fs::recursive_directory_iterator
           It(Dir, fs::directory_options::skip_permission_denied, EC),
       End;
       !EC && It != End; It.increment(EC))
    if (It->is_directory(EC))
      Dirs.push_back(It->path());
  std::sort(Dirs.begin(), Dirs.end(),
            [](const fs::path &A, const fs::path &B) {
              return A.string().size() > B.string().size();
            });
  for (const fs::path &D : Dirs)
    if (fs::is_empty(D, EC) && !EC)
      fs::remove(D, EC);

  return R;
}
