//===- persist/Serial.h - Byte-level cache file codec -----------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The little-endian byte codec of the persistent warm-start cache
/// (persist/WarmCache.h): fixed-width integers for hashes, LEB128
/// varints for counts and indices, zigzag varints for interval bounds.
/// The reader is fail-soft — any out-of-bounds or malformed read sets a
/// sticky failure flag and yields zeros — so a truncated or corrupted
/// file parses to garbage that the caller rejects wholesale instead of
/// crashing, which is exactly the fallback-to-cold contract.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_PERSIST_SERIAL_H
#define SYNTOX_PERSIST_SERIAL_H

#include <cstdint>
#include <cstring>
#include <string>

namespace syntox {
namespace persist {

/// Appends primitive values to a byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  /// Unsigned LEB128.
  void varint(uint64_t V) {
    while (V >= 0x80) {
      u8(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    u8(static_cast<uint8_t>(V));
  }
  /// Zigzag-encoded signed LEB128 (small magnitudes stay small).
  void svarint(int64_t V) {
    varint((static_cast<uint64_t>(V) << 1) ^
           static_cast<uint64_t>(V >> 63));
  }
  void bytes(const void *Data, size_t Len) {
    Buf.append(static_cast<const char *>(Data), Len);
  }
  void append(const ByteWriter &Other) { Buf += Other.Buf; }

  const std::string &buffer() const { return Buf; }
  size_t size() const { return Buf.size(); }

private:
  std::string Buf;
};

/// Reads primitive values back; sticky failure on any malformed input.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Len)
      : Ptr(static_cast<const uint8_t *>(Data)),
        End(static_cast<const uint8_t *>(Data) + Len) {}

  uint8_t u8() {
    if (Ptr >= End) {
      Fail = true;
      return 0;
    }
    return *Ptr++;
  }
  uint32_t u32() {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(u8()) << (8 * I);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(u8()) << (8 * I);
    return V;
  }
  uint64_t varint() {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      uint8_t B = u8();
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if (!(B & 0x80))
        return V;
    }
    Fail = true; // over-long encoding
    return 0;
  }
  int64_t svarint() {
    uint64_t Z = varint();
    return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
  }

  bool failed() const { return Fail; }
  bool atEnd() const { return Ptr == End; }
  size_t remaining() const { return static_cast<size_t>(End - Ptr); }

private:
  const uint8_t *Ptr;
  const uint8_t *End;
  bool Fail = false;
};

/// FNV-1a over a byte range — the body checksum of the cache file.
inline uint64_t fnv1a(const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace persist
} // namespace syntox

#endif // SYNTOX_PERSIST_SERIAL_H
