//===- frontend/PrettyPrinter.cpp - AST to Pascal source ------------------===//

#include "frontend/PrettyPrinter.h"

#include <cassert>

using namespace syntox;

namespace {

class Printer {
public:
  std::string Out;

  void printRoutine(const RoutineDecl *R, unsigned Indent);
  void printBlock(const Block *B, unsigned Indent);
  void printStmt(const Stmt *S, unsigned Indent);
  void printStmtList(const std::vector<Stmt *> &Body, unsigned Indent);
  void expr(const Expr *E);

  void line(unsigned Indent, const std::string &Text) {
    Out.append(Indent * 2, ' ');
    Out += Text;
    Out += '\n';
  }
  void indentOnly(unsigned Indent) { Out.append(Indent * 2, ' '); }
};

/// Precedence levels matching the grammar: relation < additive < term <
/// factor.
unsigned precedence(const Expr *E) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B)
    return 4;
  switch (B->op()) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return 1;
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Or:
    return 2;
  default:
    return 3;
  }
}

std::string exprToString(const Expr *E);

void exprInto(std::string &Out, const Expr *E, unsigned MinPrec) {
  bool Paren = precedence(E) < MinPrec;
  if (Paren)
    Out += '(';
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    Out += std::to_string(cast<IntLiteralExpr>(E)->value());
    break;
  case Expr::Kind::BoolLiteral:
    Out += cast<BoolLiteralExpr>(E)->value() ? "true" : "false";
    break;
  case Expr::Kind::StringLiteral: {
    Out += '\'';
    for (char C : cast<StringLiteralExpr>(E)->value()) {
      Out += C;
      if (C == '\'')
        Out += '\'';
    }
    Out += '\'';
    break;
  }
  case Expr::Kind::VarRef:
    Out += cast<VarRefExpr>(E)->name();
    break;
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Out += I->base()->name();
    Out += '[';
    exprInto(Out, I->index(), 0);
    Out += ']';
    break;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    Out += C->callee();
    Out += '(';
    bool First = true;
    for (const Expr *Arg : C->args()) {
      if (!First)
        Out += ", ";
      First = false;
      exprInto(Out, Arg, 0);
    }
    Out += ')';
    break;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Out += U->op() == UnaryOp::Neg ? "-" : "not ";
    exprInto(Out, U->subExpr(), 4);
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    unsigned Prec = precedence(E);
    exprInto(Out, B->lhs(), Prec);
    Out += ' ';
    Out += binaryOpName(B->op());
    Out += ' ';
    // Left-associative: the right operand needs strictly higher precedence.
    exprInto(Out, B->rhs(), Prec + 1);
    break;
  }
  }
  if (Paren)
    Out += ')';
}

std::string exprToString(const Expr *E) {
  std::string Out;
  exprInto(Out, E, 0);
  return Out;
}

void Printer::expr(const Expr *E) { exprInto(Out, E, 0); }

void Printer::printStmtList(const std::vector<Stmt *> &Body,
                            unsigned Indent) {
  for (size_t I = 0; I < Body.size(); ++I) {
    printStmt(Body[I], Indent);
    if (I + 1 < Body.size()) {
      // The separator goes at the end of the previous line.
      assert(!Out.empty() && Out.back() == '\n');
      Out.pop_back();
      Out += ";\n";
    }
  }
}

void Printer::printStmt(const Stmt *S, unsigned Indent) {
  switch (S->kind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    indentOnly(Indent);
    expr(A->target());
    Out += " := ";
    expr(A->value());
    Out += '\n';
    return;
  }
  case Stmt::Kind::Compound: {
    line(Indent, "begin");
    printStmtList(cast<CompoundStmt>(S)->body(), Indent + 1);
    line(Indent, "end");
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    indentOnly(Indent);
    Out += "if ";
    expr(I->cond());
    Out += " then\n";
    printStmt(I->thenStmt(), Indent + 1);
    if (I->elseStmt()) {
      line(Indent, "else");
      printStmt(I->elseStmt(), Indent + 1);
    }
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    indentOnly(Indent);
    Out += "while ";
    expr(W->cond());
    Out += " do\n";
    printStmt(W->body(), Indent + 1);
    return;
  }
  case Stmt::Kind::Repeat: {
    const auto *Rep = cast<RepeatStmt>(S);
    line(Indent, "repeat");
    printStmtList(Rep->body(), Indent + 1);
    indentOnly(Indent);
    Out += "until ";
    expr(Rep->cond());
    Out += '\n';
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    indentOnly(Indent);
    Out += "for " + F->var()->name() + " := ";
    expr(F->from());
    Out += F->isDownward() ? " downto " : " to ";
    expr(F->to());
    Out += " do\n";
    printStmt(F->body(), Indent + 1);
    return;
  }
  case Stmt::Kind::Case: {
    const auto *C = cast<CaseStmt>(S);
    indentOnly(Indent);
    Out += "case ";
    expr(C->selector());
    Out += " of\n";
    for (const CaseArm &Arm : C->arms()) {
      indentOnly(Indent + 1);
      for (size_t I = 0; I < Arm.Labels.size(); ++I) {
        if (I)
          Out += ", ";
        Out += std::to_string(Arm.Labels[I]);
      }
      Out += ":\n";
      printStmt(Arm.Body, Indent + 2);
      Out.pop_back();
      Out += ";\n";
    }
    if (C->elseStmt()) {
      line(Indent + 1, "else");
      printStmt(C->elseStmt(), Indent + 2);
    }
    line(Indent, "end");
    return;
  }
  case Stmt::Kind::Call: {
    const auto *CS = cast<CallStmt>(S);
    indentOnly(Indent);
    const CallExpr *Call = CS->call();
    if (Call->args().empty()) {
      Out += Call->callee();
      Out += '\n';
    } else {
      expr(Call);
      Out += '\n';
    }
    return;
  }
  case Stmt::Kind::Read: {
    const auto *RS = cast<ReadStmt>(S);
    indentOnly(Indent);
    Out += "read(";
    bool First = true;
    for (const Expr *T : RS->targets()) {
      if (!First)
        Out += ", ";
      First = false;
      expr(T);
    }
    Out += ")\n";
    return;
  }
  case Stmt::Kind::Write: {
    const auto *WS = cast<WriteStmt>(S);
    indentOnly(Indent);
    Out += "writeln(";
    bool First = true;
    for (const Expr *V : WS->values()) {
      if (!First)
        Out += ", ";
      First = false;
      expr(V);
    }
    Out += ")\n";
    return;
  }
  case Stmt::Kind::Goto:
    line(Indent, "goto " + std::to_string(cast<GotoStmt>(S)->label()));
    return;
  case Stmt::Kind::Labeled: {
    const auto *L = cast<LabeledStmt>(S);
    line(Indent, std::to_string(L->label()) + ":");
    printStmt(L->subStmt(), Indent);
    return;
  }
  case Stmt::Kind::Empty:
    line(Indent, "");
    return;
  case Stmt::Kind::Assert: {
    const auto *A = cast<AssertStmt>(S);
    indentOnly(Indent);
    Out += A->isIntermittent() ? "intermittent(" : "invariant(";
    expr(A->cond());
    Out += ")\n";
    return;
  }
  }
}

void Printer::printBlock(const Block *B, unsigned Indent) {
  if (!B->Labels.empty()) {
    indentOnly(Indent);
    Out += "label ";
    for (size_t I = 0; I < B->Labels.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(B->Labels[I]);
    }
    Out += ";\n";
  }
  if (!B->Consts.empty()) {
    line(Indent, "const");
    for (const ConstDecl *C : B->Consts) {
      indentOnly(Indent + 1);
      Out += C->name() + " = ";
      if (C->isBool())
        Out += C->value() ? "true" : "false";
      else
        Out += std::to_string(C->value());
      Out += ";\n";
    }
  }
  if (!B->TypeAliases.empty()) {
    line(Indent, "type");
    for (const TypeAliasDecl *T : B->TypeAliases)
      line(Indent + 1, T->name() + " = " + T->type()->str() + ";");
  }
  if (!B->Vars.empty()) {
    line(Indent, "var");
    for (const VarDecl *V : B->Vars)
      line(Indent + 1, V->name() + " : " + V->type()->str() + ";");
  }
  for (const RoutineDecl *R : B->Routines)
    printRoutine(R, Indent);
  // The body keyword lines are emitted by the caller-side: we emit the
  // compound here.
  printStmt(B->Body, Indent);
}

void Printer::printRoutine(const RoutineDecl *R, unsigned Indent) {
  indentOnly(Indent);
  if (R->isProgram()) {
    Out += "program " + R->name() + ";\n";
  } else {
    Out += R->isFunction() ? "function " : "procedure ";
    Out += R->name();
    if (!R->params().empty()) {
      Out += '(';
      for (size_t I = 0; I < R->params().size(); ++I) {
        const VarDecl *P = R->params()[I];
        if (I)
          Out += "; ";
        if (P->isVarParam())
          Out += "var ";
        Out += P->name() + " : " + P->type()->str();
      }
      Out += ')';
    }
    if (R->isFunction())
      Out += " : " + R->resultType()->str();
    Out += ";\n";
  }
  printBlock(R->block(), Indent);
  if (R->isProgram()) {
    assert(!Out.empty() && Out.back() == '\n');
    Out.pop_back();
    Out += ".\n";
  } else {
    Out.pop_back();
    Out += ";\n";
  }
}

} // namespace

std::string syntox::printProgram(const RoutineDecl *Program) {
  Printer P;
  P.printRoutine(Program, 0);
  return P.Out;
}

std::string syntox::printExpr(const Expr *E) { return exprToString(E); }
