//===- frontend/Lexer.cpp - Pascal lexer ----------------------------------===//

#include "frontend/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace syntox;

const char *syntox::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::NotEqual:
    return "'<>'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwLabel:
    return "'label'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwType:
    return "'type'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwProcedure:
    return "'procedure'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwBegin:
    return "'begin'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwRepeat:
    return "'repeat'";
  case TokenKind::KwUntil:
    return "'until'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwDownto:
    return "'downto'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwOf:
    return "'of'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwDiv:
    return "'div'";
  case TokenKind::KwMod:
    return "'mod'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwInvariant:
    return "'invariant'";
  case TokenKind::KwIntermittent:
    return "'intermittent'";
  case TokenKind::Unknown:
    return "invalid character";
  }
  return "token";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"program", TokenKind::KwProgram},
      {"label", TokenKind::KwLabel},
      {"const", TokenKind::KwConst},
      {"type", TokenKind::KwType},
      {"var", TokenKind::KwVar},
      {"procedure", TokenKind::KwProcedure},
      {"function", TokenKind::KwFunction},
      {"begin", TokenKind::KwBegin},
      {"end", TokenKind::KwEnd},
      {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"repeat", TokenKind::KwRepeat},
      {"until", TokenKind::KwUntil},
      {"for", TokenKind::KwFor},
      {"to", TokenKind::KwTo},
      {"downto", TokenKind::KwDownto},
      {"case", TokenKind::KwCase},
      {"of", TokenKind::KwOf},
      {"goto", TokenKind::KwGoto},
      {"div", TokenKind::KwDiv},
      {"mod", TokenKind::KwMod},
      {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},
      {"not", TokenKind::KwNot},
      {"array", TokenKind::KwArray},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"invariant", TokenKind::KwInvariant},
      {"assert", TokenKind::KwInvariant},
      {"intermittent", TokenKind::KwIntermittent},
  };
  return Table;
}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advancing past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '{') {
      SourceLoc Start = loc();
      advance();
      while (!atEnd() && peek() != '}')
        advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated '{' comment");
        return;
      }
      advance(); // consume '}'
      continue;
    }
    if (C == '(' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == ')'))
        advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated '(*' comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::lexOne() {
  skipWhitespaceAndComments();
  Token Tok;
  Tok.Loc = loc();
  if (atEnd()) {
    Tok.Kind = TokenKind::EndOfFile;
    return Tok;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += static_cast<char>(
          std::tolower(static_cast<unsigned char>(advance())));
    auto It = keywordTable().find(Text);
    Tok.Kind = It != keywordTable().end() ? It->second : TokenKind::Identifier;
    Tok.Text = std::move(Text);
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text;
    bool Overflow = false;
    __int128 Value = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      char Digit = advance();
      Text += Digit;
      Value = Value * 10 + (Digit - '0');
      if (Value > INT64_MAX) {
        Overflow = true;
        Value = INT64_MAX;
      }
    }
    if (Overflow)
      Diags.error(Tok.Loc, "integer literal '" + Text + "' is too large");
    Tok.Kind = TokenKind::IntLiteral;
    Tok.Text = std::move(Text);
    Tok.IntValue = static_cast<int64_t>(Value);
    return Tok;
  }

  if (C == '\'') {
    advance();
    std::string Text;
    for (;;) {
      if (atEnd() || peek() == '\n') {
        Diags.error(Tok.Loc, "unterminated string literal");
        break;
      }
      char Ch = advance();
      if (Ch == '\'') {
        if (peek() == '\'') { // '' escapes a quote
          Text += '\'';
          advance();
          continue;
        }
        break;
      }
      Text += Ch;
    }
    Tok.Kind = TokenKind::StringLiteral;
    Tok.Text = std::move(Text);
    return Tok;
  }

  advance();
  switch (C) {
  case '+':
    Tok.Kind = TokenKind::Plus;
    return Tok;
  case '-':
    Tok.Kind = TokenKind::Minus;
    return Tok;
  case '*':
    Tok.Kind = TokenKind::Star;
    return Tok;
  case '/':
    Tok.Kind = TokenKind::Slash;
    return Tok;
  case '(':
    Tok.Kind = TokenKind::LParen;
    return Tok;
  case ')':
    Tok.Kind = TokenKind::RParen;
    return Tok;
  case '[':
    Tok.Kind = TokenKind::LBracket;
    return Tok;
  case ']':
    Tok.Kind = TokenKind::RBracket;
    return Tok;
  case ',':
    Tok.Kind = TokenKind::Comma;
    return Tok;
  case ';':
    Tok.Kind = TokenKind::Semicolon;
    return Tok;
  case '=':
    Tok.Kind = TokenKind::Equal;
    return Tok;
  case ':':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::Assign;
    } else {
      Tok.Kind = TokenKind::Colon;
    }
    return Tok;
  case '<':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::LessEq;
    } else if (peek() == '>') {
      advance();
      Tok.Kind = TokenKind::NotEqual;
    } else {
      Tok.Kind = TokenKind::Less;
    }
    return Tok;
  case '>':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::GreaterEq;
    } else {
      Tok.Kind = TokenKind::Greater;
    }
    return Tok;
  case '.':
    if (peek() == '.') {
      advance();
      Tok.Kind = TokenKind::DotDot;
    } else {
      Tok.Kind = TokenKind::Dot;
    }
    return Tok;
  default:
    Diags.error(Tok.Loc, std::string("stray character '") + C + "' in input");
    Tok.Kind = TokenKind::Unknown;
    Tok.Text = std::string(1, C);
    return Tok;
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(lexOne());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
