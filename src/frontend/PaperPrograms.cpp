//===- frontend/PaperPrograms.cpp - The paper's example programs ----------===//

#include "frontend/PaperPrograms.h"

using namespace syntox;

const char *const paper::ForProgram = R"pas(
program forprog;
var i, n : integer;
    T : array [1..100] of integer;
begin
  read(n);
  for i := 0 to n do
    read(T[i])
end.
)pas";

const char *const paper::ForProgram1ToN = R"pas(
program forprog;
var i, n : integer;
    T : array [1..100] of integer;
begin
  read(n);
  for i := 1 to n do
    read(T[i])
end.
)pas";

const char *const paper::WhileProgram = R"pas(
program whileprog;
var i : integer;
    b : boolean;
begin
  i := 0;
  read(b);
  while b and (i < 100) do
    i := i - 1
end.
)pas";

const char *const paper::FactProgram = R"pas(
program fact;
var x, y : integer;
function f(n : integer) : integer;
begin
  if n = 0 then
    f := 1
  else
    f := n * f(n - 1)
end;
begin
  read(x);
  y := f(x)
end.
)pas";

const char *const paper::SelectProgram = R"pas(
program selectprog;
var n, s : integer;
function select(n : integer) : integer;
begin
  if n > 10 then
    select := select(n + 1)
  else if n = 10 then
    select := 1
  else
    select := 0
end;
begin
  read(n);
  s := select(n);
  writeln(s)
end.
)pas";

const char *const paper::IntermittentProgram = R"pas(
program intermit;
var i : integer;
begin
  read(i);
  while i < 100 do
  begin
    i := i + 1;
    intermittent(i = 10)
  end
end.
)pas";

const char *const paper::IntermittentProgramPlain = R"pas(
program intermit;
var i : integer;
begin
  read(i);
  while i < 100 do
    i := i + 1
end.
)pas";

const char *const paper::McCarthyProgram = R"pas(
program mccarthy;
var m, n : integer;
function mc(n : integer) : integer;
begin
  if n > 100 then
    mc := n - 10
  else
    mc := mc(mc(mc(mc(mc(mc(mc(mc(mc(n + 81)))))))))
end;
begin
  read(n);
  m := mc(n);
  writeln(m)
end.
)pas";

const char *const paper::McCarthyWithInvariant = R"pas(
program mccarthy;
var m, n : integer;
function mc(n : integer) : integer;
begin
  invariant(n <= 101);
  if n > 100 then
    mc := n - 10
  else
    mc := mc(mc(mc(mc(mc(mc(mc(mc(mc(n + 81)))))))))
end;
begin
  read(n);
  m := mc(n);
  writeln(m)
end.
)pas";

const char *const paper::McCarthyBuggy = R"pas(
program mccarthy;
var m, n : integer;
function mc(n : integer) : integer;
begin
  if n > 100 then
    mc := n - 10
  else
    mc := mc(mc(mc(mc(mc(mc(mc(mc(mc(n + 71)))))))))
end;
begin
  read(n);
  m := mc(n);
  writeln(m)
end.
)pas";

std::string paper::mcCarthyK(unsigned K) {
  std::string Inner = "n + " + std::to_string(10 * K - 9);
  std::string Call = Inner;
  for (unsigned I = 0; I < K; ++I)
    Call = "mc(" + Call + ")";
  std::string Out = "program mccarthy;\n"
                    "var m, n : integer;\n"
                    "function mc(n : integer) : integer;\n"
                    "begin\n"
                    "  if n > 100 then\n"
                    "    mc := n - 10\n"
                    "  else\n"
                    "    mc := ";
  Out += Call;
  Out += "\nend;\n"
         "begin\n"
         "  read(n);\n"
         "  m := mc(n);\n"
         "  writeln(m)\n"
         "end.\n";
  return Out;
}

const char *const paper::BinarySearchProgram = R"pas(
program binarysearch;
type index = 1..100;
var n : index;
    key : integer;
    i : integer;
    T : array [index] of integer;
function find(key : integer) : boolean;
var m, left, right : integer;
begin
  left := 1;
  right := n;
  repeat
    m := (left + right) div 2;
    if key < T[m] then
      right := m - 1
    else
      left := m + 1
  until (key = T[m]) or (left > right);
  find := key = T[m]
end;
begin
  read(n, key);
  for i := 1 to n do
    read(T[i]);
  writeln(find(key))
end.
)pas";

const char *const paper::AckermannProgram = R"pas(
program ackermann;
var m, n, r : integer;
function ack(m : integer; n : integer) : integer;
begin
  if m = 0 then
    ack := n + 1
  else if n = 0 then
    ack := ack(m - 1, 1)
  else
    ack := ack(m - 1, ack(m, n - 1))
end;
begin
  read(m, n);
  r := ack(m, n);
  writeln(r)
end.
)pas";

const char *const paper::QuickSortProgram = R"pas(
program quicksort;
type index = 1..100;
var a : array [index] of integer;
    n : index;
    k : integer;
procedure sort(l : integer; r : integer);
var i, j, x, w : integer;
begin
  i := l;
  j := r;
  x := a[(l + r) div 2];
  repeat
    while a[i] < x do
      i := i + 1;
    while x < a[j] do
      j := j - 1;
    if i <= j then
    begin
      w := a[i];
      a[i] := a[j];
      a[j] := w;
      i := i + 1;
      j := j - 1
    end
  until i > j;
  if l < j then
    sort(l, j);
  if i < r then
    sort(i, r)
end;
begin
  read(n);
  for k := 1 to n do
    read(a[k]);
  sort(1, n);
  for k := 1 to n do
    writeln(a[k])
end.
)pas";

const char *const paper::HeapSortProgram = R"pas(
program heapsort;
type index = 1..100;
var a : array [index] of integer;
    n : index;
    i : integer;
    temp : integer;
procedure sift(l : index; r : index);
var j, x : integer;
    cont : boolean;
begin
  x := a[l];
  j := 2 * l;
  cont := true;
  while (j <= r) and cont do
  begin
    if j < r then
      if a[j] < a[j + 1] then
        j := j + 1;
    if x < a[j] then
    begin
      a[j div 2] := a[j];
      j := 2 * j
    end
    else
      cont := false
  end;
  a[j div 2] := x
end;
begin
  read(n);
  for i := 1 to n do
    read(a[i]);
  for i := n div 2 downto 1 do
    sift(i, n);
  for i := n downto 2 do
  begin
    temp := a[1];
    a[1] := a[i];
    a[i] := temp;
    sift(1, i - 1)
  end;
  for i := 1 to n do
    writeln(a[i])
end.
)pas";

const char *const paper::BubbleSortProgram = R"pas(
program bubblesort;
type index = 1..100;
var a : array [index] of integer;
    n : index;
    i, j, t : integer;
begin
  read(n);
  for i := 1 to n do
    read(a[i]);
  for i := 1 to n - 1 do
    for j := 1 to n - i do
      if a[j] > a[j + 1] then
      begin
        t := a[j];
        a[j] := a[j + 1];
        a[j + 1] := t
      end;
  for i := 1 to n do
    writeln(a[i])
end.
)pas";

const char *const paper::MatrixProgram = R"pas(
program matrix;
type index = 1..100;
var a, b, c : array [index] of integer;
    i, j, k, s : integer;
begin
  for i := 1 to 10 do
    for j := 1 to 10 do
      read(a[(i - 1) * 10 + j]);
  for i := 1 to 10 do
    for j := 1 to 10 do
      read(b[(i - 1) * 10 + j]);
  for i := 1 to 10 do
    for j := 1 to 10 do
    begin
      s := 0;
      for k := 1 to 10 do
        s := s + a[(i - 1) * 10 + k] * b[(k - 1) * 10 + j];
      c[(i - 1) * 10 + j] := s
    end;
  for i := 1 to 10 do
    for j := 1 to 10 do
      writeln(c[(i - 1) * 10 + j])
end.
)pas";

const char *const paper::ShuttleProgram = R"pas(
program shuttle;
type index = 1..100;
var a : array [index] of integer;
    n : index;
    i, lo, hi, t : integer;
    swapped : boolean;
begin
  read(n);
  for i := 1 to n do
    read(a[i]);
  lo := 1;
  hi := n;
  swapped := true;
  while swapped and (lo < hi) do
  begin
    swapped := false;
    for i := lo to hi - 1 do
      if a[i] > a[i + 1] then
      begin
        t := a[i];
        a[i] := a[i + 1];
        a[i + 1] := t;
        swapped := true
      end;
    hi := hi - 1;
    for i := hi downto lo + 1 do
      if a[i - 1] > a[i] then
      begin
        t := a[i - 1];
        a[i - 1] := a[i];
        a[i] := t;
        swapped := true
      end;
    lo := lo + 1
  end;
  for i := 1 to n do
    writeln(a[i])
end.
)pas";
