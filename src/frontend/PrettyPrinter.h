//===- frontend/PrettyPrinter.h - AST to Pascal source ----------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST back to compilable Pascal source. Round-tripping
/// (parse -> print -> parse -> print) is a fixpoint, which the golden
/// tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_PRETTYPRINTER_H
#define SYNTOX_FRONTEND_PRETTYPRINTER_H

#include "frontend/Ast.h"

#include <string>

namespace syntox {

/// Renders \p Program as Pascal source text.
std::string printProgram(const RoutineDecl *Program);

/// Renders a single expression (used in diagnostics and reports).
std::string printExpr(const Expr *E);

} // namespace syntox

#endif // SYNTOX_FRONTEND_PRETTYPRINTER_H
