//===- frontend/Ast.cpp - AST support code --------------------------------===//

#include "frontend/Ast.h"

using namespace syntox;

AstNode::~AstNode() = default;

std::string Type::str() const {
  switch (K) {
  case Kind::Integer:
    return "integer";
  case Kind::Boolean:
    return "boolean";
  case Kind::Subrange: {
    const auto *S = cast<SubrangeType>(this);
    return std::to_string(S->lo()) + ".." + std::to_string(S->hi());
  }
  case Kind::Array: {
    const auto *A = cast<ArrayType>(this);
    return "array [" + std::to_string(A->indexLo()) + ".." +
           std::to_string(A->indexHi()) + "] of " + A->elementType()->str();
  }
  }
  return "<invalid type>";
}

const char *syntox::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "div";
  case BinaryOp::Mod:
    return "mod";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  case BinaryOp::Eq:
    return "=";
  case BinaryOp::Ne:
    return "<>";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  }
  return "?";
}

bool syntox::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

namespace {

/// Plain type nodes for the two builtin scalar types.
class BuiltinType final : public Type {
public:
  explicit BuiltinType(Kind K) : Type(K) {}
};

} // namespace

AstContext::AstContext() {
  IntegerTy = create<BuiltinType>(Type::Kind::Integer);
  BooleanTy = create<BuiltinType>(Type::Kind::Boolean);
}

const SubrangeType *AstContext::getSubrangeType(int64_t Lo, int64_t Hi) {
  for (const SubrangeType *S : SubrangeTypes)
    if (S->lo() == Lo && S->hi() == Hi)
      return S;
  const SubrangeType *S = create<SubrangeType>(Lo, Hi);
  SubrangeTypes.push_back(S);
  return S;
}

const ArrayType *AstContext::getArrayType(int64_t IndexLo, int64_t IndexHi,
                                          const Type *Element) {
  for (const ArrayType *A : ArrayTypes)
    if (A->indexLo() == IndexLo && A->indexHi() == IndexHi &&
        A->elementType() == Element)
      return A;
  const ArrayType *A = create<ArrayType>(IndexLo, IndexHi, Element);
  ArrayTypes.push_back(A);
  return A;
}

size_t AstContext::approximateBytes() const {
  // Rough estimate: node count times an average node footprint. Exact
  // accounting is not needed; the Figure 4 memory column only compares
  // orders of magnitude between programs.
  return Nodes.size() * 96;
}
