//===- frontend/Ast.h - Abstract syntax tree --------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AST of the analyzed Pascal subset: types, expressions, statements
/// and declarations, plus the AstContext arena that owns every node.
///
/// The subset covers what the paper's evaluation needs: block-structured
/// programs with nested procedures and functions, value and `var`
/// (reference) parameters, recursion, subrange types, one-dimensional
/// arrays, `goto` to local *and non-local* labels, `read`/`write`, and the
/// two assertion statements of abstract debugging (`invariant` and
/// `intermittent`).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_AST_H
#define SYNTOX_FRONTEND_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace syntox {

class RoutineDecl;
class VarDecl;
class ConstDecl;
class LabeledStmt;

/// Root of every AST entity, providing arena ownership.
class AstNode {
public:
  virtual ~AstNode();
};

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// A Pascal type. Types are interned by AstContext and referenced by
/// pointer; pointer equality is type equality for Integer/Boolean, and
/// structural helpers cover subranges.
class Type : public AstNode {
public:
  enum class Kind { Integer, Boolean, Subrange, Array };

  Kind kind() const { return K; }

  /// True for integer and integer subranges.
  bool isIntegerLike() const {
    return K == Kind::Integer || K == Kind::Subrange;
  }
  bool isBoolean() const { return K == Kind::Boolean; }
  bool isArray() const { return K == Kind::Array; }
  /// True for types a scalar variable can have.
  bool isScalar() const { return K != Kind::Array; }

  /// Renders "integer", "boolean", "1..100", "array [1..100] of integer".
  std::string str() const;

protected:
  explicit Type(Kind K) : K(K) {}

private:
  Kind K;
};

/// An integer subrange `Lo..Hi`. Acts as a *permanent invariant
/// assertion* on every variable of this type (paper §6.5).
class SubrangeType : public Type {
public:
  SubrangeType(int64_t Lo, int64_t Hi)
      : Type(Kind::Subrange), Lo(Lo), Hi(Hi) {}

  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }

  static bool classof(const Type *T) { return T->kind() == Kind::Subrange; }

private:
  int64_t Lo;
  int64_t Hi;
};

/// A one-dimensional `array [Lo..Hi] of Element`.
class ArrayType : public Type {
public:
  ArrayType(int64_t IndexLo, int64_t IndexHi, const Type *Element)
      : Type(Kind::Array), IndexLo(IndexLo), IndexHi(IndexHi),
        Element(Element) {}

  int64_t indexLo() const { return IndexLo; }
  int64_t indexHi() const { return IndexHi; }
  const Type *elementType() const { return Element; }

  static bool classof(const Type *T) { return T->kind() == Kind::Array; }

private:
  int64_t IndexLo;
  int64_t IndexHi;
  const Type *Element;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr : public AstNode {
public:
  enum class Kind {
    IntLiteral,
    BoolLiteral,
    StringLiteral,
    VarRef,
    Index,
    Call,
    Unary,
    Binary,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// The type computed by Sema; null before type checking.
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
  const Type *Ty = nullptr;
};

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLoc Loc, int64_t Value)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

private:
  int64_t Value;
};

class BoolLiteralExpr : public Expr {
public:
  BoolLiteralExpr(SourceLoc Loc, bool Value)
      : Expr(Kind::BoolLiteral, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLiteral; }

private:
  bool Value;
};

/// A string literal; only valid as a write/writeln argument.
class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(SourceLoc Loc, std::string Value)
      : Expr(Kind::StringLiteral, Loc), Value(std::move(Value)) {}

  const std::string &value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == Kind::StringLiteral;
  }

private:
  std::string Value;
};

/// A bare identifier: a variable, a named constant, or (in an assignment
/// target inside a function) the function result. Sema fills exactly one
/// of the bindings.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  VarDecl *varDecl() const { return Var; }
  void setVarDecl(VarDecl *D) { Var = D; }

  const ConstDecl *constDecl() const { return Konst; }
  void setConstDecl(const ConstDecl *D) { Konst = D; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
  VarDecl *Var = nullptr;
  const ConstDecl *Konst = nullptr;
};

/// An array element `Base[Index]`.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, VarRefExpr *Base, Expr *Index)
      : Expr(Kind::Index, Loc), Base(Base), Index(Index) {}

  VarRefExpr *base() const { return Base; }
  Expr *index() const { return Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  VarRefExpr *Base;
  Expr *Index;
};

/// Builtin functions handled directly by the analyses.
enum class BuiltinFn { None, Abs, Sqr, Odd };

/// A function (or builtin) application `Callee(Args...)`. Also used for a
/// parameterless function call written as a bare identifier once Sema
/// resolves it. Procedure calls are CallStmt wrapping a CallExpr.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string Callee, std::vector<Expr *> Args)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  RoutineDecl *routine() const { return Routine; }
  void setRoutine(RoutineDecl *R) { Routine = R; }

  BuiltinFn builtin() const { return Builtin; }
  void setBuiltin(BuiltinFn B) { Builtin = B; }

  /// Unique id of the call site, assigned by Sema; used as the static
  /// component of interprocedural tokens (paper §6.4).
  unsigned callSiteId() const { return CallSiteId; }
  void setCallSiteId(unsigned Id) { CallSiteId = Id; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
  RoutineDecl *Routine = nullptr;
  BuiltinFn Builtin = BuiltinFn::None;
  unsigned CallSiteId = 0;
};

enum class UnaryOp { Neg, Not };

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, Expr *Sub)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(Sub) {}

  UnaryOp op() const { return Op; }
  Expr *subExpr() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  Expr *Sub;
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div, // integer 'div'
  Mod,
  And,
  Or,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// Renders "+", "div", "<=", "and", ...
const char *binaryOpName(BinaryOp Op);
/// True for =, <>, <, <=, >, >=.
bool isComparisonOp(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt : public AstNode {
public:
  enum class Kind {
    Assign,
    Compound,
    If,
    While,
    Repeat,
    For,
    Case,
    Call,
    Read,
    Write,
    Goto,
    Labeled,
    Empty,
    Assert,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// `Target := Value`. Target is a VarRefExpr (variable or function
/// result) or an IndexExpr.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, Expr *Target, Expr *Value)
      : Stmt(Kind::Assign, Loc), Target(Target), Value(Value) {}

  Expr *target() const { return Target; }
  Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  Expr *Target;
  Expr *Value;
};

class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLoc Loc, std::vector<Stmt *> Body)
      : Stmt(Kind::Compound, Loc), Body(std::move(Body)) {}

  const std::vector<Stmt *> &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }

private:
  std::vector<Stmt *> Body;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; } ///< may be null

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond, Stmt *Body)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

class RepeatStmt : public Stmt {
public:
  RepeatStmt(SourceLoc Loc, std::vector<Stmt *> Body, Expr *Cond)
      : Stmt(Kind::Repeat, Loc), Body(std::move(Body)), Cond(Cond) {}

  const std::vector<Stmt *> &body() const { return Body; }
  Expr *cond() const { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Repeat; }

private:
  std::vector<Stmt *> Body;
  Expr *Cond;
};

class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, VarRefExpr *Var, Expr *From, Expr *To, bool Down,
          Stmt *Body)
      : Stmt(Kind::For, Loc), Var(Var), From(From), To(To), Down(Down),
        Body(Body) {}

  VarRefExpr *var() const { return Var; }
  Expr *from() const { return From; }
  Expr *to() const { return To; }
  bool isDownward() const { return Down; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  VarRefExpr *Var;
  Expr *From;
  Expr *To;
  bool Down;
  Stmt *Body;
};

/// One arm of a case statement: a list of constant labels and a body.
struct CaseArm {
  std::vector<int64_t> Labels;
  Stmt *Body = nullptr;
};

/// `case Selector of 1: S1; 2, 3: S2; else S3 end`. The `else` part is an
/// extension (standard Pascal has none); selecting a value matched by no
/// arm and no else is a runtime error.
class CaseStmt : public Stmt {
public:
  CaseStmt(SourceLoc Loc, Expr *Selector, std::vector<CaseArm> Arms,
           Stmt *Else)
      : Stmt(Kind::Case, Loc), Selector(Selector), Arms(std::move(Arms)),
        Else(Else) {}

  Expr *selector() const { return Selector; }
  const std::vector<CaseArm> &arms() const { return Arms; }
  Stmt *elseStmt() const { return Else; } ///< may be null

  static bool classof(const Stmt *S) { return S->kind() == Kind::Case; }

private:
  Expr *Selector;
  std::vector<CaseArm> Arms;
  Stmt *Else;
};

/// A procedure call statement.
class CallStmt : public Stmt {
public:
  CallStmt(SourceLoc Loc, CallExpr *Call) : Stmt(Kind::Call, Loc), Call(Call) {}

  CallExpr *call() const { return Call; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }

private:
  CallExpr *Call;
};

/// `read(x, T[i], ...)` / `readln(...)`: assigns unknown input values.
class ReadStmt : public Stmt {
public:
  ReadStmt(SourceLoc Loc, std::vector<Expr *> Targets)
      : Stmt(Kind::Read, Loc), Targets(std::move(Targets)) {}

  const std::vector<Expr *> &targets() const { return Targets; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Read; }

private:
  std::vector<Expr *> Targets;
};

/// `write(...)` / `writeln(...)`: evaluates arguments, no state change.
class WriteStmt : public Stmt {
public:
  WriteStmt(SourceLoc Loc, std::vector<Expr *> Values)
      : Stmt(Kind::Write, Loc), Values(std::move(Values)) {}

  const std::vector<Expr *> &values() const { return Values; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Write; }

private:
  std::vector<Expr *> Values;
};

/// `goto L`. Sema resolves the target statement and the routine that
/// declares the label; when that routine is not the enclosing one, this
/// is a *non-local* jump (paper §5) which unwinds the activations in
/// between.
class GotoStmt : public Stmt {
public:
  GotoStmt(SourceLoc Loc, int64_t Label) : Stmt(Kind::Goto, Loc), Label(Label) {}

  int64_t label() const { return Label; }

  LabeledStmt *target() const { return Target; }
  void setTarget(LabeledStmt *T) { Target = T; }

  RoutineDecl *targetRoutine() const { return TargetRoutine; }
  void setTargetRoutine(RoutineDecl *R) { TargetRoutine = R; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Goto; }

private:
  int64_t Label;
  LabeledStmt *Target = nullptr;
  RoutineDecl *TargetRoutine = nullptr;
};

/// `L: S` where L was declared in the enclosing block's `label` section.
class LabeledStmt : public Stmt {
public:
  LabeledStmt(SourceLoc Loc, int64_t Label, Stmt *Sub)
      : Stmt(Kind::Labeled, Loc), Label(Label), Sub(Sub) {}

  int64_t label() const { return Label; }
  Stmt *subStmt() const { return Sub; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Labeled; }

private:
  int64_t Label;
  Stmt *Sub;
};

class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(SourceLoc Loc) : Stmt(Kind::Empty, Loc) {}

  static bool classof(const Stmt *S) { return S->kind() == Kind::Empty; }
};

/// The abstract-debugging assertions of paper §1: an *invariant* assertion
/// must always hold when control reaches it; an *intermittent* assertion
/// states that control must eventually reach this point with the property
/// holding.
class AssertStmt : public Stmt {
public:
  AssertStmt(SourceLoc Loc, bool Intermittent, Expr *Cond)
      : Stmt(Kind::Assert, Loc), Intermittent(Intermittent), Cond(Cond) {}

  bool isIntermittent() const { return Intermittent; }
  bool isInvariant() const { return !Intermittent; }
  Expr *cond() const { return Cond; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assert; }

private:
  bool Intermittent;
  Expr *Cond;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class Decl : public AstNode {
public:
  enum class Kind { Const, TypeAlias, Var, Routine };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }

protected:
  Decl(Kind K, SourceLoc Loc, std::string Name)
      : K(K), Loc(Loc), Name(std::move(Name)) {}

private:
  Kind K;
  SourceLoc Loc;
  std::string Name;
};

class ConstDecl : public Decl {
public:
  ConstDecl(SourceLoc Loc, std::string Name, int64_t Value, bool IsBool)
      : Decl(Kind::Const, Loc, std::move(Name)), Value(Value), IsBool(IsBool) {}

  int64_t value() const { return Value; }
  bool isBool() const { return IsBool; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Const; }

private:
  int64_t Value;
  bool IsBool;
};

class TypeAliasDecl : public Decl {
public:
  TypeAliasDecl(SourceLoc Loc, std::string Name, const Type *Ty)
      : Decl(Kind::TypeAlias, Loc, std::move(Name)), Ty(Ty) {}

  const Type *type() const { return Ty; }

  static bool classof(const Decl *D) { return D->kind() == Kind::TypeAlias; }

private:
  const Type *Ty;
};

/// How a variable is introduced; drives parameter passing and frames.
enum class VarKind {
  Local,          ///< block-local variable (program globals included)
  ValueParam,     ///< parameter passed by value (copy-in)
  VarParam,       ///< `var` parameter passed by reference
  FunctionResult, ///< the implicit result variable of a function
  ForIndex,       ///< same as Local; flagged for `for` restrictions
};

class VarDecl : public Decl {
public:
  VarDecl(SourceLoc Loc, std::string Name, const Type *Ty, VarKind VK)
      : Decl(Kind::Var, Loc, std::move(Name)), Ty(Ty), VK(VK) {}

  const Type *type() const { return Ty; }
  VarKind varKind() const { return VK; }
  bool isVarParam() const { return VK == VarKind::VarParam; }
  bool isParam() const {
    return VK == VarKind::ValueParam || VK == VarKind::VarParam;
  }

  /// The routine that declares this variable (the program routine for
  /// globals). Set by Sema.
  RoutineDecl *owner() const { return Owner; }
  void setOwner(RoutineDecl *R) { Owner = R; }

  /// Dense id unique within the owning routine, assigned by Sema.
  unsigned indexInOwner() const { return IndexInOwner; }
  void setIndexInOwner(unsigned I) { IndexInOwner = I; }

  /// Dense program-wide slot indexing this variable's entry in the flat
  /// AbstractStore payload. AstContext assigns creation order as a
  /// fallback so bare VarDecls are always usable; VarNumbering (built
  /// once per SuperGraph) reassigns slots so each routine's variables
  /// are contiguous.
  unsigned storeSlot() const {
    assert(StoreSlot != ~0u && "variable was never numbered");
    return StoreSlot;
  }
  void setStoreSlot(unsigned S) { StoreSlot = S; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Var; }

private:
  const Type *Ty;
  VarKind VK;
  RoutineDecl *Owner = nullptr;
  unsigned IndexInOwner = 0;
  unsigned StoreSlot = ~0u;
};

/// A block: the declarations and body shared by programs, procedures and
/// functions.
class Block : public AstNode {
public:
  std::vector<int64_t> Labels;
  std::vector<ConstDecl *> Consts;
  std::vector<TypeAliasDecl *> TypeAliases;
  std::vector<VarDecl *> Vars;
  std::vector<RoutineDecl *> Routines;
  CompoundStmt *Body = nullptr;
};

/// A program, procedure, or function declaration. The program itself is
/// the root routine (kind Program, nesting level 0).
class RoutineDecl : public Decl {
public:
  enum class RoutineKind { Program, Procedure, Function };

  RoutineDecl(SourceLoc Loc, std::string Name, RoutineKind RK)
      : Decl(Kind::Routine, Loc, std::move(Name)), RK(RK) {}

  RoutineKind routineKind() const { return RK; }
  bool isProgram() const { return RK == RoutineKind::Program; }
  bool isFunction() const { return RK == RoutineKind::Function; }

  const std::vector<VarDecl *> &params() const { return Params; }
  void setParams(std::vector<VarDecl *> P) { Params = std::move(P); }

  const Type *resultType() const { return ResultTy; }
  void setResultType(const Type *T) { ResultTy = T; }

  /// The implicit result variable of a function (null otherwise).
  VarDecl *resultVar() const { return ResultVar; }
  void setResultVar(VarDecl *V) { ResultVar = V; }

  Block *block() const { return Body; }
  void setBlock(Block *B) { Body = B; }

  /// Lexically enclosing routine; null for the program.
  RoutineDecl *parent() const { return Parent; }
  void setParent(RoutineDecl *P) { Parent = P; }

  /// Nesting depth: 0 for the program, 1 for its routines, ...
  unsigned level() const { return Level; }
  void setLevel(unsigned L) { Level = L; }

  /// Every variable this routine *declares*: params, result, locals.
  /// Populated by Sema in declaration order; indexInOwner() indexes it.
  const std::vector<VarDecl *> &ownedVars() const { return OwnedVars; }
  void addOwnedVar(VarDecl *V) { OwnedVars.push_back(V); }

  /// Unique dense routine id assigned by Sema (program = 0).
  unsigned routineId() const { return RoutineId; }
  void setRoutineId(unsigned Id) { RoutineId = Id; }

  /// Structural fingerprint: a content hash of this routine's signature
  /// and body with nested routine bodies elided, computed by
  /// computeFingerprints() (frontend/Fingerprint.h). Zero until that
  /// pass runs. Stable across process runs and across edits to other
  /// routines; every content-addressed identity of the analysis
  /// pipeline (variable keys, supergraph node keys, the persistent
  /// warm-start cache) derives from it.
  uint64_t fingerprint() const { return Fingerprint; }
  void setFingerprint(uint64_t F) { Fingerprint = F; }

  static bool classof(const Decl *D) { return D->kind() == Kind::Routine; }

private:
  RoutineKind RK;
  std::vector<VarDecl *> Params;
  const Type *ResultTy = nullptr;
  VarDecl *ResultVar = nullptr;
  Block *Body = nullptr;
  RoutineDecl *Parent = nullptr;
  unsigned Level = 0;
  unsigned RoutineId = 0;
  uint64_t Fingerprint = 0;
  std::vector<VarDecl *> OwnedVars;
};

//===----------------------------------------------------------------------===//
// AstContext
//===----------------------------------------------------------------------===//

/// Arena that owns every AST node and interns types.
class AstContext {
public:
  AstContext();

  template <typename T, typename... Args> T *create(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    T *Ptr = Node.get();
    // Every VarDecl leaves the arena with a valid dense store slot
    // (creation order); VarNumbering later repacks them per routine.
    if constexpr (std::is_same_v<T, VarDecl>)
      Ptr->setStoreSlot(NextVarSlot++);
    Nodes.push_back(std::move(Node));
    return Ptr;
  }

  const Type *integerType() const { return IntegerTy; }
  const Type *booleanType() const { return BooleanTy; }
  const SubrangeType *getSubrangeType(int64_t Lo, int64_t Hi);
  const ArrayType *getArrayType(int64_t IndexLo, int64_t IndexHi,
                                const Type *Element);

  /// Rough number of bytes held by the arena (for the Figure 4 memory
  /// column).
  size_t approximateBytes() const;

private:
  std::vector<std::unique_ptr<AstNode>> Nodes;
  unsigned NextVarSlot = 0;
  const Type *IntegerTy;
  const Type *BooleanTy;
  std::vector<const SubrangeType *> SubrangeTypes;
  std::vector<const ArrayType *> ArrayTypes;
};

} // namespace syntox

#endif // SYNTOX_FRONTEND_AST_H
