//===- frontend/Sema.cpp - Semantic analysis ------------------------------===//

#include "frontend/Sema.h"

#include <cassert>

using namespace syntox;

static bool typesCompatible(const Type *A, const Type *B) {
  if (!A || !B)
    return true; // error recovery: don't cascade
  if (A->isIntegerLike() && B->isIntegerLike())
    return true;
  if (A->isBoolean() && B->isBoolean())
    return true;
  return false;
}

bool Sema::analyze(RoutineDecl *Program) {
  if (!Program)
    return false;
  AllRoutines.clear();
  Scopes.clear();
  NextRoutineId = 0;
  NextCallSiteId = 1;
  LabelTable.clear();
  DeclaredLabels.clear();
  analyzeRoutine(Program, /*Parent=*/nullptr);
  return !Diags.hasErrors();
}

VarDecl *Sema::lookupVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Vars.find(Name);
    if (Found != It->Vars.end())
      return Found->second;
  }
  return nullptr;
}

RoutineDecl *Sema::lookupRoutine(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Routines.find(Name);
    if (Found != It->Routines.end())
      return Found->second;
  }
  return nullptr;
}

const ConstDecl *Sema::lookupConst(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Consts.find(Name);
    if (Found != It->Consts.end())
      return Found->second;
  }
  return nullptr;
}

void Sema::declareBlock(RoutineDecl *R) {
  Scope &S = Scopes.back();
  S.Owner = R;
  Block *B = R->block();
  if (!B)
    return;
  for (const ConstDecl *C : B->Consts)
    S.Consts[C->name()] = C;
  // Parameters and the function result are owned first, then locals; the
  // per-routine variable index is the position in ownedVars().
  auto Own = [&](VarDecl *V) {
    V->setOwner(R);
    V->setIndexInOwner(R->ownedVars().size());
    R->addOwnedVar(V);
  };
  for (VarDecl *P : R->params()) {
    if (S.Vars.count(P->name()))
      Diags.error(P->loc(), "duplicate parameter '" + P->name() + "'");
    S.Vars[P->name()] = P;
    Own(P);
    if (P->type() && P->type()->isArray())
      Diags.error(P->loc(), "array parameters are not supported");
  }
  if (R->isFunction()) {
    auto *Result = Ctx.create<VarDecl>(R->loc(), R->name(), R->resultType(),
                                       VarKind::FunctionResult);
    R->setResultVar(Result);
    Own(Result);
    if (R->resultType() && !R->resultType()->isScalar())
      Diags.error(R->loc(), "function result must be a scalar type");
  }
  for (VarDecl *V : B->Vars) {
    if (S.Vars.count(V->name()))
      Diags.error(V->loc(), "duplicate variable '" + V->name() + "'");
    S.Vars[V->name()] = V;
    Own(V);
  }
  DeclaredLabels[R] = B->Labels;
}

void Sema::analyzeRoutine(RoutineDecl *R, RoutineDecl *Parent) {
  R->setParent(Parent);
  R->setLevel(Parent ? Parent->level() + 1 : 0);
  R->setRoutineId(NextRoutineId++);
  AllRoutines.push_back(R);

  Scopes.emplace_back();
  declareBlock(R);

  Block *B = R->block();
  if (B) {
    // Declare nested routines before analyzing bodies so that mutual
    // visibility follows Pascal's declare-before-use rule per routine,
    // while recursion inside a routine's own body always works.
    for (RoutineDecl *Nested : B->Routines) {
      if (Scopes.back().Routines.count(Nested->name()))
        Diags.error(Nested->loc(),
                    "duplicate routine '" + Nested->name() + "'");
      Scopes.back().Routines[Nested->name()] = Nested;
    }
    // Collect this routine's labels before analyzing nested routines so
    // that their (non-local) gotos can resolve against them.
    if (B->Body)
      collectLabels(R, B->Body);
    for (RoutineDecl *Nested : B->Routines)
      analyzeRoutine(Nested, R);
    if (B->Body) {
      checkStmt(B->Body, R);
      resolveGotos(B->Body, R);
    }
  }
  Scopes.pop_back();
}

//===----------------------------------------------------------------------===//
// Labels
//===----------------------------------------------------------------------===//

void Sema::collectLabels(RoutineDecl *R, Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Labeled: {
    auto *L = cast<LabeledStmt>(S);
    const std::vector<int64_t> &Declared = DeclaredLabels[R];
    bool IsDeclared = false;
    for (int64_t D : Declared)
      IsDeclared |= (D == L->label());
    if (!IsDeclared)
      Diags.error(L->loc(), "label " + std::to_string(L->label()) +
                                " was not declared in a label section");
    auto &Table = LabelTable[R];
    if (Table.count(L->label()))
      Diags.error(L->loc(),
                  "duplicate label " + std::to_string(L->label()));
    Table[L->label()] = L;
    collectLabels(R, L->subStmt());
    return;
  }
  case Stmt::Kind::Compound:
    for (Stmt *Sub : cast<CompoundStmt>(S)->body())
      collectLabels(R, Sub);
    return;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    collectLabels(R, I->thenStmt());
    collectLabels(R, I->elseStmt());
    return;
  }
  case Stmt::Kind::While:
    collectLabels(R, cast<WhileStmt>(S)->body());
    return;
  case Stmt::Kind::Repeat:
    for (Stmt *Sub : cast<RepeatStmt>(S)->body())
      collectLabels(R, Sub);
    return;
  case Stmt::Kind::For:
    collectLabels(R, cast<ForStmt>(S)->body());
    return;
  case Stmt::Kind::Case: {
    auto *C = cast<CaseStmt>(S);
    for (const CaseArm &Arm : C->arms())
      collectLabels(R, Arm.Body);
    collectLabels(R, C->elseStmt());
    return;
  }
  default:
    return;
  }
}

void Sema::resolveGotos(Stmt *S, RoutineDecl *R) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Goto: {
    auto *G = cast<GotoStmt>(S);
    // Search the enclosing routines innermost-first; a hit in an outer
    // routine makes this a non-local jump (paper §5).
    for (RoutineDecl *Target = R; Target; Target = Target->parent()) {
      auto TableIt = LabelTable.find(Target);
      if (TableIt == LabelTable.end())
        continue;
      auto Found = TableIt->second.find(G->label());
      if (Found == TableIt->second.end())
        continue;
      G->setTarget(Found->second);
      G->setTargetRoutine(Target);
      return;
    }
    Diags.error(G->loc(),
                "undefined label " + std::to_string(G->label()));
    return;
  }
  case Stmt::Kind::Labeled:
    resolveGotos(cast<LabeledStmt>(S)->subStmt(), R);
    return;
  case Stmt::Kind::Compound:
    for (Stmt *Sub : cast<CompoundStmt>(S)->body())
      resolveGotos(Sub, R);
    return;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    resolveGotos(I->thenStmt(), R);
    resolveGotos(I->elseStmt(), R);
    return;
  }
  case Stmt::Kind::While:
    resolveGotos(cast<WhileStmt>(S)->body(), R);
    return;
  case Stmt::Kind::Repeat:
    for (Stmt *Sub : cast<RepeatStmt>(S)->body())
      resolveGotos(Sub, R);
    return;
  case Stmt::Kind::For:
    resolveGotos(cast<ForStmt>(S)->body(), R);
    return;
  case Stmt::Kind::Case: {
    auto *C = cast<CaseStmt>(S);
    for (const CaseArm &Arm : C->arms())
      resolveGotos(Arm.Body, R);
    resolveGotos(C->elseStmt(), R);
    return;
  }
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Sema::checkStmt(Stmt *S, RoutineDecl *R) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Assign:
    checkAssign(cast<AssignStmt>(S), R);
    return;
  case Stmt::Kind::Compound:
    for (Stmt *Sub : cast<CompoundStmt>(S)->body())
      checkStmt(Sub, R);
    return;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    const Type *CondTy = checkExpr(I->cond(), R);
    if (CondTy && !CondTy->isBoolean())
      Diags.error(I->cond()->loc(), "if condition must be boolean");
    checkStmt(I->thenStmt(), R);
    checkStmt(I->elseStmt(), R);
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    const Type *CondTy = checkExpr(W->cond(), R);
    if (CondTy && !CondTy->isBoolean())
      Diags.error(W->cond()->loc(), "while condition must be boolean");
    checkStmt(W->body(), R);
    return;
  }
  case Stmt::Kind::Repeat: {
    auto *Rep = cast<RepeatStmt>(S);
    for (Stmt *Sub : Rep->body())
      checkStmt(Sub, R);
    const Type *CondTy = checkExpr(Rep->cond(), R);
    if (CondTy && !CondTy->isBoolean())
      Diags.error(Rep->cond()->loc(), "until condition must be boolean");
    return;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    const Type *VarTy = checkVarRef(F->var(), R, /*IsAssignTarget=*/true);
    if (VarTy && !VarTy->isIntegerLike())
      Diags.error(F->var()->loc(), "for loop variable must be an integer");
    if (F->var()->constDecl())
      Diags.error(F->var()->loc(), "for loop variable cannot be a constant");
    const Type *FromTy = checkExpr(F->from(), R);
    const Type *ToTy = checkExpr(F->to(), R);
    if ((FromTy && !FromTy->isIntegerLike()) ||
        (ToTy && !ToTy->isIntegerLike()))
      Diags.error(F->loc(), "for loop bounds must be integers");
    checkStmt(F->body(), R);
    return;
  }
  case Stmt::Kind::Case: {
    auto *C = cast<CaseStmt>(S);
    const Type *SelTy = checkExpr(C->selector(), R);
    if (SelTy && !SelTy->isIntegerLike())
      Diags.error(C->selector()->loc(), "case selector must be an integer");
    for (const CaseArm &Arm : C->arms())
      checkStmt(Arm.Body, R);
    checkStmt(C->elseStmt(), R);
    return;
  }
  case Stmt::Kind::Call: {
    auto *CS = cast<CallStmt>(S);
    checkCall(CS->call(), R, /*AsStatement=*/true);
    return;
  }
  case Stmt::Kind::Read: {
    auto *RS = cast<ReadStmt>(S);
    for (Expr *Target : RS->targets()) {
      const Type *Ty = checkLValue(Target, R);
      if (Ty && !Ty->isIntegerLike() && !Ty->isBoolean())
        Diags.error(Target->loc(), "read target must be a scalar variable");
    }
    return;
  }
  case Stmt::Kind::Write: {
    auto *WS = cast<WriteStmt>(S);
    for (Expr *Value : WS->values()) {
      if (isa<StringLiteralExpr>(Value))
        continue;
      checkExpr(Value, R);
    }
    return;
  }
  case Stmt::Kind::Goto:
    return; // resolved in resolveGotos
  case Stmt::Kind::Labeled:
    checkStmt(cast<LabeledStmt>(S)->subStmt(), R);
    return;
  case Stmt::Kind::Empty:
    return;
  case Stmt::Kind::Assert: {
    auto *A = cast<AssertStmt>(S);
    const Type *CondTy = checkExpr(A->cond(), R);
    if (CondTy && !CondTy->isBoolean())
      Diags.error(A->cond()->loc(), "assertion condition must be boolean");
    return;
  }
  }
}

void Sema::checkAssign(AssignStmt *S, RoutineDecl *R) {
  const Type *TargetTy = checkLValue(S->target(), R);
  const Type *ValueTy = checkExpr(S->value(), R);
  if (TargetTy && ValueTy && !typesCompatible(TargetTy, ValueTy))
    Diags.error(S->loc(), "cannot assign " + ValueTy->str() + " to " +
                              TargetTy->str());
}

const Type *Sema::checkLValue(Expr *E, RoutineDecl *R) {
  if (auto *Ref = dyn_cast<VarRefExpr>(E)) {
    const Type *Ty = checkVarRef(Ref, R, /*IsAssignTarget=*/true);
    if (Ref->constDecl()) {
      Diags.error(E->loc(),
                  "cannot assign to constant '" + Ref->name() + "'");
      return nullptr;
    }
    if (Ty && Ty->isArray()) {
      Diags.error(E->loc(), "whole-array assignment is not supported");
      return nullptr;
    }
    return Ty;
  }
  if (auto *Idx = dyn_cast<IndexExpr>(E))
    return checkIndex(Idx, R);
  Diags.error(E->loc(), "expression is not assignable");
  checkExpr(E, R);
  return nullptr;
}

void Sema::checkCall(CallExpr *Call, RoutineDecl *R, bool AsStatement) {
  // Builtins first.
  if (Call->callee() == "abs" || Call->callee() == "sqr" ||
      Call->callee() == "odd") {
    BuiltinFn Fn = Call->callee() == "abs"   ? BuiltinFn::Abs
                   : Call->callee() == "sqr" ? BuiltinFn::Sqr
                                             : BuiltinFn::Odd;
    Call->setBuiltin(Fn);
    if (Call->args().size() != 1) {
      Diags.error(Call->loc(),
                  "'" + Call->callee() + "' takes exactly one argument");
    } else {
      const Type *ArgTy = checkExpr(Call->args()[0], R);
      if (ArgTy && !ArgTy->isIntegerLike())
        Diags.error(Call->args()[0]->loc(),
                    "'" + Call->callee() + "' needs an integer argument");
    }
    Call->setType(Fn == BuiltinFn::Odd ? Ctx.booleanType()
                                       : Ctx.integerType());
    if (AsStatement)
      Diags.error(Call->loc(),
                  "'" + Call->callee() + "' is a function, not a procedure");
    return;
  }

  RoutineDecl *Callee = lookupRoutine(Call->callee());
  if (!Callee) {
    Diags.error(Call->loc(), "unknown routine '" + Call->callee() + "'");
    Call->setType(Ctx.integerType());
    return;
  }
  Call->setRoutine(Callee);
  Call->setCallSiteId(NextCallSiteId++);
  if (AsStatement && Callee->isFunction())
    Diags.warning(Call->loc(), "function '" + Call->callee() +
                                   "' called as a procedure; result ignored");
  if (!AsStatement && !Callee->isFunction())
    Diags.error(Call->loc(),
                "procedure '" + Call->callee() + "' used in an expression");

  const std::vector<VarDecl *> &Formals = Callee->params();
  if (Call->args().size() != Formals.size()) {
    Diags.error(Call->loc(), "'" + Call->callee() + "' expects " +
                                 std::to_string(Formals.size()) +
                                 " argument(s), got " +
                                 std::to_string(Call->args().size()));
  }
  size_t N = std::min(Call->args().size(), Formals.size());
  for (size_t I = 0; I < N; ++I) {
    Expr *Arg = Call->args()[I];
    VarDecl *Formal = Formals[I];
    if (Formal->isVarParam()) {
      // A reference argument must be a scalar variable (this is what
      // creates aliasing; the analysis tracks it exactly via tokens).
      auto *Ref = dyn_cast<VarRefExpr>(Arg);
      const Type *ArgTy = Ref ? checkVarRef(Ref, R, /*IsAssignTarget=*/true)
                              : checkExpr(Arg, R);
      if (!Ref || !Ref->varDecl()) {
        Diags.error(Arg->loc(),
                    "argument for 'var' parameter '" + Formal->name() +
                        "' must be a variable");
        continue;
      }
      if (!typesCompatible(ArgTy, Formal->type()))
        Diags.error(Arg->loc(), "type mismatch for 'var' parameter '" +
                                    Formal->name() + "'");
      if (ArgTy && ArgTy->isArray())
        Diags.error(Arg->loc(), "array 'var' parameters are not supported");
    } else {
      const Type *ArgTy = checkExpr(Arg, R);
      if (!typesCompatible(ArgTy, Formal->type()))
        Diags.error(Arg->loc(), "type mismatch for parameter '" +
                                    Formal->name() + "'");
    }
  }
  Call->setType(Callee->isFunction() ? Callee->resultType()
                                     : Ctx.integerType());
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Type *Sema::checkVarRef(VarRefExpr *E, RoutineDecl *R,
                              bool IsAssignTarget) {
  // Inside function F, the target `F := ...` denotes the result variable.
  if (IsAssignTarget) {
    for (RoutineDecl *Fn = R; Fn; Fn = Fn->parent()) {
      if (Fn->isFunction() && Fn->name() == E->name()) {
        // Only assignable from within the function itself (not from
        // routines nested inside it, per ISO Pascal it is allowed from
        // nested routines too; we allow it as well — Fn is found by
        // innermost-first search either way).
        E->setVarDecl(Fn->resultVar());
        E->setType(Fn->resultType());
        return Fn->resultType();
      }
      if (lookupVar(E->name()))
        break; // shadowed by a variable
    }
  }
  if (VarDecl *V = lookupVar(E->name())) {
    E->setVarDecl(V);
    E->setType(V->type());
    return V->type();
  }
  if (const ConstDecl *C = lookupConst(E->name())) {
    E->setConstDecl(C);
    const Type *Ty = C->isBool() ? Ctx.booleanType() : Ctx.integerType();
    E->setType(Ty);
    return Ty;
  }
  Diags.error(E->loc(), "unknown identifier '" + E->name() + "'");
  E->setType(Ctx.integerType());
  return Ctx.integerType();
}

const Type *Sema::checkIndex(IndexExpr *E, RoutineDecl *R) {
  const Type *BaseTy = checkVarRef(E->base(), R, /*IsAssignTarget=*/false);
  const Type *IndexTy = checkExpr(E->index(), R);
  if (IndexTy && !IndexTy->isIntegerLike())
    Diags.error(E->index()->loc(), "array index must be an integer");
  if (!BaseTy || !BaseTy->isArray()) {
    if (BaseTy)
      Diags.error(E->loc(),
                  "'" + E->base()->name() + "' is not an array");
    E->setType(Ctx.integerType());
    return Ctx.integerType();
  }
  const Type *ElemTy = cast<ArrayType>(BaseTy)->elementType();
  E->setType(ElemTy);
  return ElemTy;
}

const Type *Sema::checkExpr(Expr *E, RoutineDecl *R) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    E->setType(Ctx.integerType());
    return E->type();
  case Expr::Kind::BoolLiteral:
    E->setType(Ctx.booleanType());
    return E->type();
  case Expr::Kind::StringLiteral:
    Diags.error(E->loc(), "string literals are only allowed in write");
    E->setType(Ctx.integerType());
    return E->type();
  case Expr::Kind::VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    // A bare identifier naming a visible function is a parameterless
    // recursive or ordinary call in standard Pascal — but only when the
    // name is not shadowed by a variable or constant.
    if (!lookupVar(Ref->name()) && !lookupConst(Ref->name())) {
      if (RoutineDecl *Fn = lookupRoutine(Ref->name())) {
        if (Fn->isFunction() && Fn->params().empty()) {
          Diags.error(E->loc(),
                      "parameterless function call '" + Ref->name() +
                          "' must use explicit parentheses: '" +
                          Ref->name() + "()'");
          E->setType(Fn->resultType());
          return E->type();
        }
      }
    }
    return checkVarRef(Ref, R, /*IsAssignTarget=*/false);
  }
  case Expr::Kind::Index:
    return checkIndex(cast<IndexExpr>(E), R);
  case Expr::Kind::Call: {
    auto *Call = cast<CallExpr>(E);
    checkCall(Call, R, /*AsStatement=*/false);
    return Call->type();
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    const Type *SubTy = checkExpr(U->subExpr(), R);
    if (U->op() == UnaryOp::Neg) {
      if (SubTy && !SubTy->isIntegerLike())
        Diags.error(E->loc(), "unary '-' needs an integer operand");
      E->setType(Ctx.integerType());
    } else {
      if (SubTy && !SubTy->isBoolean())
        Diags.error(E->loc(), "'not' needs a boolean operand");
      E->setType(Ctx.booleanType());
    }
    return E->type();
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    const Type *LhsTy = checkExpr(B->lhs(), R);
    const Type *RhsTy = checkExpr(B->rhs(), R);
    switch (B->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      if ((LhsTy && !LhsTy->isIntegerLike()) ||
          (RhsTy && !RhsTy->isIntegerLike()))
        Diags.error(E->loc(), std::string("'") + binaryOpName(B->op()) +
                                  "' needs integer operands");
      E->setType(Ctx.integerType());
      return E->type();
    case BinaryOp::And:
    case BinaryOp::Or:
      if ((LhsTy && !LhsTy->isBoolean()) || (RhsTy && !RhsTy->isBoolean()))
        Diags.error(E->loc(), std::string("'") + binaryOpName(B->op()) +
                                  "' needs boolean operands");
      E->setType(Ctx.booleanType());
      return E->type();
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (LhsTy && RhsTy && !typesCompatible(LhsTy, RhsTy))
        Diags.error(E->loc(), "comparison of incompatible types " +
                                  LhsTy->str() + " and " + RhsTy->str());
      if (LhsTy && LhsTy->isBoolean() && B->op() != BinaryOp::Eq &&
          B->op() != BinaryOp::Ne)
        Diags.error(E->loc(), "booleans can only be compared with = and <>");
      E->setType(Ctx.booleanType());
      return E->type();
    }
    E->setType(Ctx.integerType());
    return E->type();
  }
  }
  return Ctx.integerType();
}
