//===- frontend/Sema.h - Semantic analysis ----------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for the Pascal subset: name resolution (variables,
/// constants, routines, function results), type checking, label and goto
/// resolution (including jumps to *non-local* labels), and assignment of
/// the dense ids the analyses rely on (routine ids, per-routine variable
/// indices, call-site ids).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_SEMA_H
#define SYNTOX_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace syntox {

class Sema {
public:
  Sema(AstContext &Ctx, DiagnosticsEngine &Diags) : Ctx(Ctx), Diags(Diags) {}

  /// Analyzes the whole program; returns true on success (no errors).
  bool analyze(RoutineDecl *Program);

  /// All routines in declaration order (program first), filled by analyze.
  const std::vector<RoutineDecl *> &routines() const { return AllRoutines; }

  /// Number of call sites found (call-site ids are 1..numCallSites()).
  unsigned numCallSites() const { return NextCallSiteId - 1; }

private:
  struct Scope {
    std::unordered_map<std::string, VarDecl *> Vars;
    std::unordered_map<std::string, RoutineDecl *> Routines;
    std::unordered_map<std::string, const ConstDecl *> Consts;
    RoutineDecl *Owner = nullptr;
  };

  void analyzeRoutine(RoutineDecl *R, RoutineDecl *Parent);
  void declareBlock(RoutineDecl *R);

  VarDecl *lookupVar(const std::string &Name) const;
  RoutineDecl *lookupRoutine(const std::string &Name) const;
  const ConstDecl *lookupConst(const std::string &Name) const;

  // Statement checking.
  void checkStmt(Stmt *S, RoutineDecl *R);
  void checkAssign(AssignStmt *S, RoutineDecl *R);
  void checkCall(CallExpr *Call, RoutineDecl *R, bool AsStatement);

  // Expression checking; returns the expression type (never null — error
  // recovery substitutes integer).
  const Type *checkExpr(Expr *E, RoutineDecl *R);
  const Type *checkVarRef(VarRefExpr *E, RoutineDecl *R, bool IsAssignTarget);
  const Type *checkIndex(IndexExpr *E, RoutineDecl *R);

  /// Resolves an lvalue (assignment or read target). Returns its type or
  /// null on error.
  const Type *checkLValue(Expr *E, RoutineDecl *R);

  // Label handling.
  void collectLabels(RoutineDecl *R, Stmt *S);
  void resolveGotos(Stmt *S, RoutineDecl *R);

  AstContext &Ctx;
  DiagnosticsEngine &Diags;
  std::vector<Scope> Scopes;
  std::vector<RoutineDecl *> AllRoutines;
  unsigned NextRoutineId = 0;
  unsigned NextCallSiteId = 1;

  /// Labeled statements per routine: routine -> label -> statement.
  std::unordered_map<const RoutineDecl *,
                     std::unordered_map<int64_t, LabeledStmt *>>
      LabelTable;
  /// Labels declared in each routine's `label` section.
  std::unordered_map<const RoutineDecl *, std::vector<int64_t>> DeclaredLabels;
};

} // namespace syntox

#endif // SYNTOX_FRONTEND_SEMA_H
