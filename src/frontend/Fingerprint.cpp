//===- frontend/Fingerprint.cpp - Structural routine fingerprints ---------===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Fingerprint.h"

#include "frontend/Ast.h"
#include "support/Casting.h"

#include <string>

namespace syntox {
namespace {

uint64_t mixStr(uint64_t H, const std::string &S) {
  H = fpMix(H, S.size());
  for (char C : S)
    H = fpMix(H, static_cast<uint8_t>(C));
  return H;
}

/// Streams the structure of expressions and statements into a hash.
/// Source locations are deliberately excluded: moving a routine around
/// in the file (or reformatting it) must not change its fingerprint.
class StructHasher {
public:
  uint64_t H = fpSeed();

  void tag(unsigned T) { H = fpMix(H, 0xA0 + T); }

  void hashExpr(const Expr *E) {
    if (!E) {
      tag(0);
      return;
    }
    tag(1 + static_cast<unsigned>(E->kind()));
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      H = fpMix(H, static_cast<uint64_t>(cast<IntLiteralExpr>(E)->value()));
      break;
    case Expr::Kind::BoolLiteral:
      H = fpMix(H, cast<BoolLiteralExpr>(E)->value() ? 1 : 2);
      break;
    case Expr::Kind::StringLiteral:
      H = mixStr(H, cast<StringLiteralExpr>(E)->value());
      break;
    case Expr::Kind::VarRef:
      // By name, not by resolved declaration: binding changes caused by
      // edits to enclosing routines are covered by the ancestor
      // fingerprint chain in instance keys, and hashing the name keeps
      // the fingerprint computable from this routine's text alone.
      H = mixStr(H, cast<VarRefExpr>(E)->name());
      break;
    case Expr::Kind::Index: {
      const auto *IE = cast<IndexExpr>(E);
      hashExpr(IE->base());
      hashExpr(IE->index());
      break;
    }
    case Expr::Kind::Call: {
      const auto *CE = cast<CallExpr>(E);
      H = mixStr(H, CE->callee());
      H = fpMix(H, static_cast<unsigned>(CE->builtin()));
      // The caller's lowering depends on the callee's *signature*
      // (parameter kinds decide reference vs. copy passing), so embed
      // it — but never the callee's body.
      if (CE->routine())
        H = fpMix(H, hashRoutineSignature(CE->routine()));
      H = fpMix(H, CE->args().size());
      for (const Expr *A : CE->args())
        hashExpr(A);
      break;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      H = fpMix(H, static_cast<unsigned>(UE->op()));
      hashExpr(UE->subExpr());
      break;
    }
    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(E);
      H = fpMix(H, static_cast<unsigned>(BE->op()));
      hashExpr(BE->lhs());
      hashExpr(BE->rhs());
      break;
    }
    }
  }

  void hashStmt(const Stmt *S) {
    if (!S) {
      tag(32);
      return;
    }
    tag(33 + static_cast<unsigned>(S->kind()));
    switch (S->kind()) {
    case Stmt::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(S);
      hashExpr(AS->target());
      hashExpr(AS->value());
      break;
    }
    case Stmt::Kind::Compound: {
      const auto *CS = cast<CompoundStmt>(S);
      H = fpMix(H, CS->body().size());
      for (const Stmt *Sub : CS->body())
        hashStmt(Sub);
      break;
    }
    case Stmt::Kind::If: {
      const auto *IS = cast<IfStmt>(S);
      hashExpr(IS->cond());
      hashStmt(IS->thenStmt());
      hashStmt(IS->elseStmt());
      break;
    }
    case Stmt::Kind::While: {
      const auto *WS = cast<WhileStmt>(S);
      hashExpr(WS->cond());
      hashStmt(WS->body());
      break;
    }
    case Stmt::Kind::Repeat: {
      const auto *RS = cast<RepeatStmt>(S);
      H = fpMix(H, RS->body().size());
      for (const Stmt *Sub : RS->body())
        hashStmt(Sub);
      hashExpr(RS->cond());
      break;
    }
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(S);
      hashExpr(FS->var());
      hashExpr(FS->from());
      hashExpr(FS->to());
      H = fpMix(H, FS->isDownward() ? 1 : 2);
      hashStmt(FS->body());
      break;
    }
    case Stmt::Kind::Case: {
      const auto *CS = cast<CaseStmt>(S);
      hashExpr(CS->selector());
      H = fpMix(H, CS->arms().size());
      for (const CaseArm &Arm : CS->arms()) {
        H = fpMix(H, Arm.Labels.size());
        for (int64_t L : Arm.Labels)
          H = fpMix(H, static_cast<uint64_t>(L));
        hashStmt(Arm.Body);
      }
      hashStmt(CS->elseStmt());
      break;
    }
    case Stmt::Kind::Call:
      hashExpr(cast<CallStmt>(S)->call());
      break;
    case Stmt::Kind::Read: {
      const auto *RS = cast<ReadStmt>(S);
      H = fpMix(H, RS->targets().size());
      for (const Expr *T : RS->targets())
        hashExpr(T);
      break;
    }
    case Stmt::Kind::Write: {
      const auto *WS = cast<WriteStmt>(S);
      H = fpMix(H, WS->values().size());
      for (const Expr *V : WS->values())
        hashExpr(V);
      break;
    }
    case Stmt::Kind::Goto:
      H = fpMix(H, static_cast<uint64_t>(cast<GotoStmt>(S)->label()));
      break;
    case Stmt::Kind::Labeled: {
      const auto *LS = cast<LabeledStmt>(S);
      H = fpMix(H, static_cast<uint64_t>(LS->label()));
      hashStmt(LS->subStmt());
      break;
    }
    case Stmt::Kind::Empty:
      break;
    case Stmt::Kind::Assert: {
      const auto *AS = cast<AssertStmt>(S);
      H = fpMix(H, AS->isIntermittent() ? 1 : 2);
      hashExpr(AS->cond());
      break;
    }
    }
  }
};

uint64_t fingerprintRoutine(const RoutineDecl *R) {
  StructHasher SH;
  SH.H = fpMix(hashRoutineSignature(R), 0x51677478ull);
  const Block *B = R->block();
  if (!B)
    return SH.H;
  SH.H = fpMix(SH.H, B->Labels.size());
  for (int64_t L : B->Labels)
    SH.H = fpMix(SH.H, static_cast<uint64_t>(L));
  SH.H = fpMix(SH.H, B->Consts.size());
  for (const ConstDecl *C : B->Consts) {
    SH.H = mixStr(SH.H, C->name());
    SH.H = fpMix(SH.H, static_cast<uint64_t>(C->value()));
    SH.H = fpMix(SH.H, C->isBool() ? 1 : 2);
  }
  SH.H = fpMix(SH.H, B->TypeAliases.size());
  for (const TypeAliasDecl *A : B->TypeAliases) {
    SH.H = mixStr(SH.H, A->name());
    SH.H = fpMix(SH.H, hashType(A->type()));
  }
  SH.H = fpMix(SH.H, B->Vars.size());
  for (const VarDecl *V : B->Vars) {
    SH.H = mixStr(SH.H, V->name());
    SH.H = fpMix(SH.H, static_cast<unsigned>(V->varKind()));
    SH.H = fpMix(SH.H, hashType(V->type()));
  }
  // Nested routines are elided: editing one must not dirty this
  // fingerprint. Call sites inside the body embed callee signatures.
  SH.hashStmt(B->Body);
  return SH.H;
}

void computeTree(RoutineDecl *R) {
  R->setFingerprint(fingerprintRoutine(R));
  if (R->block())
    for (RoutineDecl *Sub : R->block()->Routines)
      computeTree(Sub);
}

} // namespace

uint64_t hashType(const Type *T) {
  if (!T)
    return 0x7f4a7c15ull;
  uint64_t H = fpMix(fpSeed(), 0x54 + static_cast<unsigned>(T->kind()));
  if (const auto *Sub = dyn_cast<SubrangeType>(T)) {
    H = fpMix(H, static_cast<uint64_t>(Sub->lo()));
    H = fpMix(H, static_cast<uint64_t>(Sub->hi()));
  } else if (const auto *Arr = dyn_cast<ArrayType>(T)) {
    H = fpMix(H, static_cast<uint64_t>(Arr->indexLo()));
    H = fpMix(H, static_cast<uint64_t>(Arr->indexHi()));
    H = fpMix(H, hashType(Arr->elementType()));
  }
  return H;
}

uint64_t hashRoutineSignature(const RoutineDecl *R) {
  uint64_t H = fpMix(fpSeed(), 0x52 + static_cast<unsigned>(R->routineKind()));
  H = mixStr(H, R->name());
  H = fpMix(H, R->params().size());
  for (const VarDecl *P : R->params()) {
    H = mixStr(H, P->name());
    H = fpMix(H, static_cast<unsigned>(P->varKind()));
    H = fpMix(H, hashType(P->type()));
  }
  H = fpMix(H, hashType(R->resultType()));
  return H;
}

void computeFingerprints(RoutineDecl *Program) { computeTree(Program); }

} // namespace syntox
