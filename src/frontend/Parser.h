//===- frontend/Parser.h - Pascal parser ------------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Pascal subset. Like classic one-pass
/// Pascal compilers it folds constants and resolves type names while
/// parsing (both must be declared before use), so subrange bounds like
/// `1..n` with `const n = 100` work. Name resolution and type checking of
/// expressions and statements are done later by Sema.
///
/// On a syntax error, the parser reports a diagnostic and synchronizes to
/// the next statement boundary, so one broken statement does not hide the
/// rest of the file.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_PARSER_H
#define SYNTOX_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace syntox {

class Parser {
public:
  Parser(std::vector<Token> Tokens, AstContext &Ctx, DiagnosticsEngine &Diags)
      : Tokens(std::move(Tokens)), Ctx(Ctx), Diags(Diags) {}

  /// Parses a whole `program ... .` unit. Returns null when errors make
  /// the tree unusable; partial errors still return a best-effort tree
  /// with diagnostics reported.
  RoutineDecl *parseProgram();

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(); }
  Token advance();
  bool check(TokenKind K) const { return current().is(K); }
  bool match(TokenKind K);
  /// Consumes a token of kind \p K or reports "expected ...".
  bool expect(TokenKind K, const char *Context);
  void syncToStatementBoundary();

  // Grammar productions.
  Block *parseBlock(RoutineDecl *Owner);
  void parseLabelSection(Block *B);
  void parseConstSection(Block *B);
  void parseTypeSection(Block *B);
  void parseVarSection(Block *B);
  RoutineDecl *parseRoutine();
  std::vector<VarDecl *> parseFormalParams();
  const Type *parseTypeExpr();
  const Type *parseNamedType();
  std::optional<int64_t> parseConstValue();

  CompoundStmt *parseCompound();
  Stmt *parseStatement();
  Stmt *parseUnlabeledStatement();
  Stmt *parseIdentifierStatement();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseRepeat();
  Stmt *parseFor();
  Stmt *parseCase();
  Stmt *parseGoto();
  Stmt *parseAssert(bool Intermittent);
  std::vector<Stmt *> parseStatementList(
      std::initializer_list<TokenKind> Terminators);

  Expr *parseExpr();
  Expr *parseSimpleExpr();
  Expr *parseTerm();
  Expr *parseFactor();
  std::vector<Expr *> parseArgs();

  // Single-pass scopes for constants and type names.
  struct Scope {
    std::unordered_map<std::string, const ConstDecl *> Consts;
    std::unordered_map<std::string, const Type *> Types;
  };
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  const ConstDecl *lookupConst(const std::string &Name) const;
  const Type *lookupType(const std::string &Name) const;

  std::vector<Token> Tokens;
  AstContext &Ctx;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  std::vector<Scope> Scopes;
};

} // namespace syntox

#endif // SYNTOX_FRONTEND_PARSER_H
