//===- frontend/Lexer.h - Pascal lexer --------------------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the Pascal subset. Supports `{ ... }` and
/// `(* ... *)` comments, case-insensitive keywords, and decimal integer
/// literals. Errors (stray characters, overflowing literals, unterminated
/// comments) are reported through the DiagnosticsEngine and produce
/// TokenKind::Unknown / truncated tokens, so parsing can keep going.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_LEXER_H
#define SYNTOX_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace syntox {

/// Lexes a whole buffer into a token vector (ending with EndOfFile).
class Lexer {
public:
  Lexer(std::string Source, DiagnosticsEngine &Diags)
      : Source(std::move(Source)), Diags(Diags) {}

  /// Lexes every token; always appends a final EndOfFile token.
  std::vector<Token> lexAll();

private:
  Token lexOne();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc loc() const { return SourceLoc(Line, Column); }
  void skipWhitespaceAndComments();

  std::string Source;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace syntox

#endif // SYNTOX_FRONTEND_LEXER_H
