//===- frontend/PaperPrograms.h - The paper's example programs --*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pascal sources for every program of the paper's evaluation: the six
/// Figure 1 examples, BinarySearch (Figure 3), and the Figure 4 benchmark
/// programs (Ackermann, QuickSort, HeapSort, McCarthy_k). Tests, examples
/// and benchmarks all share these fixtures.
///
/// The Figure 1 `Select` function body is partially garbled in the
/// archival OCR of the paper; the reconstruction here is chosen so that
/// *all three* behaviors the paper reports hold: termination iff n <= 10,
/// result = 1 iff n = 10, and "terminates without reaching the n = 10 arm"
/// iff n < 10.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_PAPERPROGRAMS_H
#define SYNTOX_FRONTEND_PAPERPROGRAMS_H

#include <string>

namespace syntox {
namespace paper {

/// Figure 1, program For: reads n and fills T[0..n] of a 1..100 array.
/// Bugs: T[0] is always out of bounds when the loop runs; T[101..] when
/// n > 100.
extern const char *const ForProgram;

/// Variant of For with the loop running from 1 to n (only the n <= 100
/// condition remains, paper §2).
extern const char *const ForProgram1ToN;

/// Figure 1, program While: loops forever unless b = false.
extern const char *const WhileProgram;

/// Figure 1, program Fact: recursive factorial; loops unless x >= 0.
extern const char *const FactProgram;

/// Figure 1, program Select (reconstructed, see file comment).
extern const char *const SelectProgram;

/// Figure 1, program Intermittent: counts i up to 100, with the paper's
/// `i = 10` intermittent assertion inserted after the increment.
extern const char *const IntermittentProgram;
/// Same program without any assertion.
extern const char *const IntermittentProgramPlain;

/// Figure 1, program McCarthy: the k = 9 generalization MC9 of McCarthy's
/// 91 function (else-branch applies MC 9 times to n + 81).
extern const char *const McCarthyProgram;

/// McCarthy with the invariant assertion n <= 101 at function entry
/// (paper §6.5: proves m = 91 at the end).
extern const char *const McCarthyWithInvariant;

/// The *buggy* McCarthy generalization of §6.5: 81 replaced by 71; loops
/// for every n <= 100.
extern const char *const McCarthyBuggy;

/// Returns the McCarthy_k program for any k >= 1 (Figure 4 uses k = 9 and
/// k = 30): else-branch applies MC k times to n + (10k - 9).
std::string mcCarthyK(unsigned K);

/// Figure 3: BinarySearch. Every array access is statically safe.
extern const char *const BinarySearchProgram;

/// Figure 4 benchmark: Ackermann(m, n) via recursion on scalars.
extern const char *const AckermannProgram;

/// Figure 4 benchmark: QuickSort over a global array with recursion.
extern const char *const QuickSortProgram;

/// Figure 4 benchmark: HeapSort over a global array (paper §6.5: every
/// access statically safe).
extern const char *const HeapSortProgram;

/// Simple extra sort used by the bound-check study: BubbleSort.
extern const char *const BubbleSortProgram;

/// §6.5 Markstein comparison: "every array access in programs Matrix and
/// Shuttle of Markstein et al. is statically proven correct by Syntox".
/// Matrix: 10x10 matrix multiplication over arrays flattened to 1..100
/// (the analysis must bound (i-1)*10 + j through the multiplication).
extern const char *const MatrixProgram;

/// §6.5 Markstein comparison, Shuttle: a bidirectional (cocktail) sort
/// whose window [lo, hi] shrinks from both ends.
extern const char *const ShuttleProgram;

} // namespace paper
} // namespace syntox

#endif // SYNTOX_FRONTEND_PAPERPROGRAMS_H
