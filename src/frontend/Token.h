//===- frontend/Token.h - Pascal token definitions --------------*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the analyzed Pascal subset. Keywords are case-insensitive, as
/// in standard Pascal. Two keywords extend the language with the paper's
/// assertions: `invariant` and `intermittent` (plus `assert` as an alias
/// of `invariant`).
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_TOKEN_H
#define SYNTOX_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace syntox {

enum class TokenKind {
  // Punctuation and operators.
  EndOfFile,
  Identifier,
  IntLiteral,
  StringLiteral, // 'text' (write/writeln arguments only)
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // / (real division; rejected by sema, lexed for diagnostics)
  Assign,     // :=
  Equal,      // =
  NotEqual,   // <>
  Less,       // <
  LessEq,     // <=
  Greater,    // >
  GreaterEq,  // >=
  LParen,     // (
  RParen,     // )
  LBracket,   // [
  RBracket,   // ]
  Comma,      // ,
  Semicolon,  // ;
  Colon,      // :
  Dot,        // .
  DotDot,     // ..
  // Keywords.
  KwProgram,
  KwLabel,
  KwConst,
  KwType,
  KwVar,
  KwProcedure,
  KwFunction,
  KwBegin,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwWhile,
  KwDo,
  KwRepeat,
  KwUntil,
  KwFor,
  KwTo,
  KwDownto,
  KwCase,
  KwOf,
  KwGoto,
  KwDiv,
  KwMod,
  KwAnd,
  KwOr,
  KwNot,
  KwArray,
  KwTrue,
  KwFalse,
  // Assertion extensions (paper §1/§2).
  KwInvariant,
  KwIntermittent,
  // Lexer error.
  Unknown,
};

/// Returns a human-readable spelling for diagnostics ("':='", "'begin'").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Identifier text is lower-cased (Pascal is
/// case-insensitive); the literal value of IntLiteral is pre-parsed.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string Text;     ///< normalized identifier text, or raw spelling
  int64_t IntValue = 0; ///< value for IntLiteral

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace syntox

#endif // SYNTOX_FRONTEND_TOKEN_H
