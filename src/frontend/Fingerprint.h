//===- frontend/Fingerprint.h - Structural routine fingerprints -*- C++ -*-===//
//
// Part of Syntox++, a reproduction of Bourdoncle's abstract debugger
// (PLDI 1993). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-derived identities for routines: a 64-bit structural hash of
/// a routine's signature and body that is stable across process runs and
/// across edits to *other* routines. Every stable key of the analysis
/// pipeline (variable keys, interprocedural instance keys, supergraph
/// node keys, and therefore the persistent warm-start cache) is derived
/// from these fingerprints — see DESIGN.md §8.
///
/// What a fingerprint covers, and why:
///  - the signature (kind, name, parameter names/kinds/types, result
///    type) and the block declarations (labels, constants, type aliases,
///    variables) — anything that changes the routine's own frame layout
///    or lowering;
///  - the body statements and expressions, structurally (variable
///    references by *name*: bindings resolved through ancestors are
///    covered by the ancestor-fingerprint chain in instance keys);
///  - the *signature hash* of every callee, because the caller's
///    lowering of a call (argument temporaries, reference passing,
///    result plumbing) depends on the callee's parameter kinds — but
///    NOT the callee's body, so an edit inside a callee never dirties
///    its callers' fingerprints;
///  - nested routine declarations are elided entirely (their call sites
///    already contribute signature hashes), so an edit inside a nested
///    routine never dirties the parent.
///
//===----------------------------------------------------------------------===//

#ifndef SYNTOX_FRONTEND_FINGERPRINT_H
#define SYNTOX_FRONTEND_FINGERPRINT_H

#include <cstdint>

namespace syntox {

class RoutineDecl;
class Type;

/// FNV-1a style mixing used by all fingerprint/key derivations. Kept in
/// one place so the on-disk cache keys are reproducible.
inline uint64_t fpSeed() { return 0xcbf29ce484222325ull; }
inline uint64_t fpMix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 12) + (H >> 3);
  return H * 0x100000001b3ull;
}

/// Hash of a routine's signature only: kind, name, parameter
/// names/kinds/types, result type. This is what callers embed at their
/// call sites.
uint64_t hashRoutineSignature(const RoutineDecl *R);

/// Structural hash of a type (subranges and array bounds included).
uint64_t hashType(const Type *T);

/// Computes and stores the fingerprint of \p Program and every routine
/// nested inside it (RoutineDecl::fingerprint()). Must run after Sema
/// (call-site callee bindings are consulted); idempotent.
void computeFingerprints(RoutineDecl *Program);

} // namespace syntox

#endif // SYNTOX_FRONTEND_FINGERPRINT_H
