//===- frontend/Parser.cpp - Pascal parser --------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace syntox;

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile sentinel
  return Tokens[Index];
}

Token Parser::advance() {
  Token Tok = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return Tok;
}

bool Parser::match(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (match(K))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(K) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::syncToStatementBoundary() {
  while (!check(TokenKind::EndOfFile)) {
    switch (current().Kind) {
    case TokenKind::Semicolon:
      advance();
      return;
    case TokenKind::KwEnd:
    case TokenKind::KwUntil:
    case TokenKind::KwElse:
      return;
    default:
      advance();
    }
  }
}

const ConstDecl *Parser::lookupConst(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Consts.find(Name);
    if (Found != It->Consts.end())
      return Found->second;
  }
  return nullptr;
}

const Type *Parser::lookupType(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Types.find(Name);
    if (Found != It->Types.end())
      return Found->second;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Program structure
//===----------------------------------------------------------------------===//

RoutineDecl *Parser::parseProgram() {
  pushScope();
  if (!expect(TokenKind::KwProgram, "at start of unit"))
    return nullptr;
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected program name");
    return nullptr;
  }
  Token NameTok = advance();
  auto *Program = Ctx.create<RoutineDecl>(NameTok.Loc, NameTok.Text,
                                          RoutineDecl::RoutineKind::Program);
  // Optional standard file parameter list: program P(input, output);
  if (match(TokenKind::LParen)) {
    do {
      if (!expect(TokenKind::Identifier, "in program parameter list"))
        break;
    } while (match(TokenKind::Comma));
    expect(TokenKind::RParen, "after program parameters");
  }
  expect(TokenKind::Semicolon, "after program header");
  Block *B = parseBlock(Program);
  Program->setBlock(B);
  expect(TokenKind::Dot, "at end of program");
  popScope();
  return Program;
}

Block *Parser::parseBlock(RoutineDecl *Owner) {
  (void)Owner;
  auto *B = Ctx.create<Block>();
  if (check(TokenKind::KwLabel))
    parseLabelSection(B);
  if (check(TokenKind::KwConst))
    parseConstSection(B);
  if (check(TokenKind::KwType))
    parseTypeSection(B);
  if (check(TokenKind::KwVar))
    parseVarSection(B);
  while (check(TokenKind::KwProcedure) || check(TokenKind::KwFunction)) {
    if (RoutineDecl *R = parseRoutine())
      B->Routines.push_back(R);
  }
  B->Body = parseCompound();
  return B;
}

void Parser::parseLabelSection(Block *B) {
  advance(); // 'label'
  do {
    if (!check(TokenKind::IntLiteral)) {
      Diags.error(current().Loc, "expected numeric label");
      break;
    }
    B->Labels.push_back(advance().IntValue);
  } while (match(TokenKind::Comma));
  expect(TokenKind::Semicolon, "after label declarations");
}

std::optional<int64_t> Parser::parseConstValue() {
  bool Negate = false;
  if (match(TokenKind::Minus))
    Negate = true;
  else
    (void)match(TokenKind::Plus);
  if (check(TokenKind::IntLiteral)) {
    int64_t V = advance().IntValue;
    return Negate ? -V : V;
  }
  if (check(TokenKind::Identifier)) {
    Token Tok = advance();
    if (const ConstDecl *C = lookupConst(Tok.Text)) {
      if (C->isBool()) {
        Diags.error(Tok.Loc, "boolean constant '" + Tok.Text +
                                 "' is not valid here");
        return std::nullopt;
      }
      return Negate ? -C->value() : C->value();
    }
    Diags.error(Tok.Loc, "unknown constant '" + Tok.Text + "'");
    return std::nullopt;
  }
  Diags.error(current().Loc, "expected constant expression");
  return std::nullopt;
}

void Parser::parseConstSection(Block *B) {
  advance(); // 'const'
  while (check(TokenKind::Identifier)) {
    Token NameTok = advance();
    if (!expect(TokenKind::Equal, "in constant definition")) {
      syncToStatementBoundary();
      continue;
    }
    ConstDecl *C = nullptr;
    if (check(TokenKind::KwTrue) || check(TokenKind::KwFalse)) {
      bool V = advance().is(TokenKind::KwTrue);
      C = Ctx.create<ConstDecl>(NameTok.Loc, NameTok.Text, V ? 1 : 0,
                                /*IsBool=*/true);
    } else if (std::optional<int64_t> V = parseConstValue()) {
      C = Ctx.create<ConstDecl>(NameTok.Loc, NameTok.Text, *V,
                                /*IsBool=*/false);
    }
    if (C) {
      B->Consts.push_back(C);
      Scopes.back().Consts[C->name()] = C;
    }
    expect(TokenKind::Semicolon, "after constant definition");
  }
}

void Parser::parseTypeSection(Block *B) {
  advance(); // 'type'
  while (check(TokenKind::Identifier)) {
    Token NameTok = advance();
    if (!expect(TokenKind::Equal, "in type definition")) {
      syncToStatementBoundary();
      continue;
    }
    const Type *Ty = parseTypeExpr();
    if (Ty) {
      auto *Alias = Ctx.create<TypeAliasDecl>(NameTok.Loc, NameTok.Text, Ty);
      B->TypeAliases.push_back(Alias);
      Scopes.back().Types[Alias->name()] = Ty;
    }
    expect(TokenKind::Semicolon, "after type definition");
  }
}

const Type *Parser::parseTypeExpr() {
  if (check(TokenKind::KwArray)) {
    advance();
    if (!expect(TokenKind::LBracket, "in array type"))
      return nullptr;
    const Type *IndexTy = parseTypeExpr();
    if (!expect(TokenKind::RBracket, "after array index type"))
      return nullptr;
    if (!expect(TokenKind::KwOf, "in array type"))
      return nullptr;
    const Type *ElemTy = parseTypeExpr();
    if (!IndexTy || !ElemTy)
      return nullptr;
    const auto *Subrange = dyn_cast<SubrangeType>(IndexTy);
    if (!Subrange) {
      Diags.error(current().Loc, "array index type must be a subrange");
      return nullptr;
    }
    if (ElemTy->isArray()) {
      Diags.error(current().Loc,
                  "multi-dimensional arrays are not supported");
      return nullptr;
    }
    return Ctx.getArrayType(Subrange->lo(), Subrange->hi(), ElemTy);
  }
  // A subrange starts with a constant (literal, signed literal, or a
  // constant identifier followed by '..').
  if (check(TokenKind::IntLiteral) || check(TokenKind::Minus) ||
      check(TokenKind::Plus) ||
      (check(TokenKind::Identifier) && lookupConst(current().Text) &&
       peek(1).is(TokenKind::DotDot))) {
    SourceLoc Loc = current().Loc;
    std::optional<int64_t> Lo = parseConstValue();
    if (!Lo)
      return nullptr;
    if (!expect(TokenKind::DotDot, "in subrange type"))
      return nullptr;
    std::optional<int64_t> Hi = parseConstValue();
    if (!Hi)
      return nullptr;
    if (*Lo > *Hi) {
      Diags.error(Loc, "empty subrange " + std::to_string(*Lo) + ".." +
                           std::to_string(*Hi));
      return nullptr;
    }
    return Ctx.getSubrangeType(*Lo, *Hi);
  }
  return parseNamedType();
}

const Type *Parser::parseNamedType() {
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected type");
    return nullptr;
  }
  Token Tok = advance();
  if (Tok.Text == "integer")
    return Ctx.integerType();
  if (Tok.Text == "boolean")
    return Ctx.booleanType();
  if (const Type *Ty = lookupType(Tok.Text))
    return Ty;
  Diags.error(Tok.Loc, "unknown type '" + Tok.Text + "'");
  return nullptr;
}

void Parser::parseVarSection(Block *B) {
  advance(); // 'var'
  while (check(TokenKind::Identifier)) {
    std::vector<Token> Names;
    Names.push_back(advance());
    while (match(TokenKind::Comma)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected variable name");
        break;
      }
      Names.push_back(advance());
    }
    if (!expect(TokenKind::Colon, "in variable declaration")) {
      syncToStatementBoundary();
      continue;
    }
    const Type *Ty = parseTypeExpr();
    expect(TokenKind::Semicolon, "after variable declaration");
    if (!Ty)
      continue;
    for (const Token &NameTok : Names)
      B->Vars.push_back(
          Ctx.create<VarDecl>(NameTok.Loc, NameTok.Text, Ty, VarKind::Local));
  }
}

RoutineDecl *Parser::parseRoutine() {
  bool IsFunction = check(TokenKind::KwFunction);
  SourceLoc Loc = advance().Loc; // 'procedure' / 'function'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected routine name");
    syncToStatementBoundary();
    return nullptr;
  }
  Token NameTok = advance();
  auto *Routine = Ctx.create<RoutineDecl>(
      Loc, NameTok.Text,
      IsFunction ? RoutineDecl::RoutineKind::Function
                 : RoutineDecl::RoutineKind::Procedure);
  pushScope();
  if (check(TokenKind::LParen))
    Routine->setParams(parseFormalParams());
  if (IsFunction) {
    if (expect(TokenKind::Colon, "before function result type"))
      Routine->setResultType(parseTypeExpr());
    if (!Routine->resultType())
      Routine->setResultType(Ctx.integerType());
  }
  expect(TokenKind::Semicolon, "after routine header");
  Routine->setBlock(parseBlock(Routine));
  popScope();
  expect(TokenKind::Semicolon, "after routine body");
  return Routine;
}

std::vector<VarDecl *> Parser::parseFormalParams() {
  std::vector<VarDecl *> Params;
  expect(TokenKind::LParen, "before formal parameters");
  if (match(TokenKind::RParen))
    return Params;
  do {
    bool IsVar = match(TokenKind::KwVar);
    std::vector<Token> Names;
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected parameter name");
      break;
    }
    Names.push_back(advance());
    while (match(TokenKind::Comma)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected parameter name");
        break;
      }
      Names.push_back(advance());
    }
    if (!expect(TokenKind::Colon, "in parameter declaration"))
      break;
    const Type *Ty = parseTypeExpr();
    if (!Ty)
      break;
    for (const Token &NameTok : Names)
      Params.push_back(Ctx.create<VarDecl>(
          NameTok.Loc, NameTok.Text, Ty,
          IsVar ? VarKind::VarParam : VarKind::ValueParam));
  } while (match(TokenKind::Semicolon));
  expect(TokenKind::RParen, "after formal parameters");
  return Params;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompound() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwBegin, "at start of compound statement");
  std::vector<Stmt *> Body =
      parseStatementList({TokenKind::KwEnd, TokenKind::EndOfFile});
  expect(TokenKind::KwEnd, "at end of compound statement");
  return Ctx.create<CompoundStmt>(Loc, std::move(Body));
}

std::vector<Stmt *>
Parser::parseStatementList(std::initializer_list<TokenKind> Terminators) {
  auto AtTerminator = [&] {
    for (TokenKind K : Terminators)
      if (check(K))
        return true;
    return false;
  };
  std::vector<Stmt *> Body;
  if (AtTerminator())
    return Body;
  for (;;) {
    size_t Before = Pos;
    if (Stmt *S = parseStatement())
      Body.push_back(S);
    if (match(TokenKind::Semicolon)) {
      if (AtTerminator()) // trailing semicolon = empty statement
        return Body;
      continue;
    }
    if (AtTerminator())
      return Body;
    Diags.error(current().Loc, std::string("expected ';', found ") +
                                   tokenKindName(current().Kind));
    syncToStatementBoundary();
    // Guarantee progress: a stray 'else'/'end' that is not one of our
    // terminators is consumed by neither parseStatement nor the
    // synchronizer and would loop forever otherwise.
    if (Pos == Before && !check(TokenKind::EndOfFile))
      advance();
    if (AtTerminator() || check(TokenKind::EndOfFile))
      return Body;
  }
}

Stmt *Parser::parseStatement() {
  // Numeric label prefix: `10: stmt`.
  if (check(TokenKind::IntLiteral) && peek(1).is(TokenKind::Colon)) {
    Token LabelTok = advance();
    advance(); // ':'
    Stmt *Sub = parseStatement();
    if (!Sub)
      Sub = Ctx.create<EmptyStmt>(LabelTok.Loc);
    return Ctx.create<LabeledStmt>(LabelTok.Loc, LabelTok.IntValue, Sub);
  }
  return parseUnlabeledStatement();
}

Stmt *Parser::parseUnlabeledStatement() {
  switch (current().Kind) {
  case TokenKind::KwBegin:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwRepeat:
    return parseRepeat();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwCase:
    return parseCase();
  case TokenKind::KwGoto:
    return parseGoto();
  case TokenKind::KwInvariant:
    return parseAssert(/*Intermittent=*/false);
  case TokenKind::KwIntermittent:
    return parseAssert(/*Intermittent=*/true);
  case TokenKind::Identifier:
    return parseIdentifierStatement();
  case TokenKind::Semicolon:
  case TokenKind::KwEnd:
  case TokenKind::KwUntil:
  case TokenKind::KwElse:
    return Ctx.create<EmptyStmt>(current().Loc);
  default:
    Diags.error(current().Loc, std::string("expected statement, found ") +
                                   tokenKindName(current().Kind));
    syncToStatementBoundary();
    return Ctx.create<EmptyStmt>(current().Loc);
  }
}

Stmt *Parser::parseIdentifierStatement() {
  Token NameTok = advance();
  SourceLoc Loc = NameTok.Loc;

  // Builtin IO procedures.
  if (NameTok.Text == "read" || NameTok.Text == "readln") {
    std::vector<Expr *> Targets;
    if (match(TokenKind::LParen)) {
      if (!check(TokenKind::RParen)) {
        do {
          if (Expr *E = parseExpr())
            Targets.push_back(E);
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after read arguments");
    }
    return Ctx.create<ReadStmt>(Loc, std::move(Targets));
  }
  if (NameTok.Text == "write" || NameTok.Text == "writeln") {
    std::vector<Expr *> Values;
    if (match(TokenKind::LParen)) {
      if (!check(TokenKind::RParen)) {
        do {
          if (check(TokenKind::StringLiteral)) {
            Token StrTok = advance();
            Values.push_back(
                Ctx.create<StringLiteralExpr>(StrTok.Loc, StrTok.Text));
          } else if (Expr *E = parseExpr()) {
            Values.push_back(E);
          }
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after write arguments");
    }
    return Ctx.create<WriteStmt>(Loc, std::move(Values));
  }

  // Array element assignment: `name[index] := value`.
  if (check(TokenKind::LBracket)) {
    advance();
    Expr *Index = parseExpr();
    expect(TokenKind::RBracket, "after array index");
    auto *Base = Ctx.create<VarRefExpr>(Loc, NameTok.Text);
    auto *Target = Ctx.create<IndexExpr>(Loc, Base, Index);
    if (!expect(TokenKind::Assign, "in array element assignment"))
      syncToStatementBoundary();
    Expr *Value = parseExpr();
    return Ctx.create<AssignStmt>(Loc, Target, Value);
  }

  // Plain assignment: `name := value`.
  if (match(TokenKind::Assign)) {
    auto *Target = Ctx.create<VarRefExpr>(Loc, NameTok.Text);
    Expr *Value = parseExpr();
    return Ctx.create<AssignStmt>(Loc, Target, Value);
  }

  // Procedure call, with or without arguments.
  std::vector<Expr *> Args;
  if (check(TokenKind::LParen))
    Args = parseArgs();
  auto *Call = Ctx.create<CallExpr>(Loc, NameTok.Text, std::move(Args));
  return Ctx.create<CallStmt>(Loc, Call);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = advance().Loc; // 'if'
  Expr *Cond = parseExpr();
  expect(TokenKind::KwThen, "in if statement");
  Stmt *Then = parseStatement();
  Stmt *Else = nullptr;
  if (match(TokenKind::KwElse))
    Else = parseStatement();
  return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = advance().Loc; // 'while'
  Expr *Cond = parseExpr();
  expect(TokenKind::KwDo, "in while statement");
  Stmt *Body = parseStatement();
  return Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseRepeat() {
  SourceLoc Loc = advance().Loc; // 'repeat'
  std::vector<Stmt *> Body =
      parseStatementList({TokenKind::KwUntil, TokenKind::EndOfFile});
  expect(TokenKind::KwUntil, "in repeat statement");
  Expr *Cond = parseExpr();
  return Ctx.create<RepeatStmt>(Loc, std::move(Body), Cond);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = advance().Loc; // 'for'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected loop variable");
    syncToStatementBoundary();
    return Ctx.create<EmptyStmt>(Loc);
  }
  Token VarTok = advance();
  auto *Var = Ctx.create<VarRefExpr>(VarTok.Loc, VarTok.Text);
  expect(TokenKind::Assign, "in for statement");
  Expr *From = parseExpr();
  bool Down = false;
  if (match(TokenKind::KwDownto))
    Down = true;
  else
    expect(TokenKind::KwTo, "in for statement");
  Expr *To = parseExpr();
  expect(TokenKind::KwDo, "in for statement");
  Stmt *Body = parseStatement();
  return Ctx.create<ForStmt>(Loc, Var, From, To, Down, Body);
}

Stmt *Parser::parseCase() {
  SourceLoc Loc = advance().Loc; // 'case'
  Expr *Selector = parseExpr();
  expect(TokenKind::KwOf, "in case statement");
  std::vector<CaseArm> Arms;
  Stmt *Else = nullptr;
  while (!check(TokenKind::KwEnd) && !check(TokenKind::KwElse) &&
         !check(TokenKind::EndOfFile)) {
    CaseArm Arm;
    do {
      if (std::optional<int64_t> V = parseConstValue())
        Arm.Labels.push_back(*V);
      else
        break;
    } while (match(TokenKind::Comma));
    expect(TokenKind::Colon, "after case labels");
    Arm.Body = parseStatement();
    Arms.push_back(std::move(Arm));
    if (!match(TokenKind::Semicolon))
      break;
  }
  if (match(TokenKind::KwElse)) {
    Else = parseStatement();
    (void)match(TokenKind::Semicolon);
  }
  expect(TokenKind::KwEnd, "at end of case statement");
  return Ctx.create<CaseStmt>(Loc, Selector, std::move(Arms), Else);
}

Stmt *Parser::parseGoto() {
  SourceLoc Loc = advance().Loc; // 'goto'
  if (!check(TokenKind::IntLiteral)) {
    Diags.error(current().Loc, "expected numeric label after 'goto'");
    return Ctx.create<EmptyStmt>(Loc);
  }
  return Ctx.create<GotoStmt>(Loc, advance().IntValue);
}

Stmt *Parser::parseAssert(bool Intermittent) {
  SourceLoc Loc = advance().Loc; // 'invariant' / 'intermittent' / 'assert'
  expect(TokenKind::LParen, "in assertion");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after assertion condition");
  return Ctx.create<AssertStmt>(Loc, Intermittent, Cond);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() {
  Expr *LHS = parseSimpleExpr();
  BinaryOp Op;
  switch (current().Kind) {
  case TokenKind::Equal:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::NotEqual:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEq:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEq:
    Op = BinaryOp::Ge;
    break;
  default:
    return LHS;
  }
  SourceLoc Loc = advance().Loc;
  Expr *RHS = parseSimpleExpr();
  return Ctx.create<BinaryExpr>(Loc, Op, LHS, RHS);
}

Expr *Parser::parseSimpleExpr() {
  SourceLoc SignLoc = current().Loc;
  bool Negate = false;
  if (match(TokenKind::Minus))
    Negate = true;
  else
    (void)match(TokenKind::Plus);
  Expr *LHS = parseTerm();
  if (Negate)
    LHS = Ctx.create<UnaryExpr>(SignLoc, UnaryOp::Neg, LHS);
  for (;;) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Plus:
      Op = BinaryOp::Add;
      break;
    case TokenKind::Minus:
      Op = BinaryOp::Sub;
      break;
    case TokenKind::KwOr:
      Op = BinaryOp::Or;
      break;
    default:
      return LHS;
    }
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseTerm();
    LHS = Ctx.create<BinaryExpr>(Loc, Op, LHS, RHS);
  }
}

Expr *Parser::parseTerm() {
  Expr *LHS = parseFactor();
  for (;;) {
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Star:
      Op = BinaryOp::Mul;
      break;
    case TokenKind::KwDiv:
      Op = BinaryOp::Div;
      break;
    case TokenKind::KwMod:
      Op = BinaryOp::Mod;
      break;
    case TokenKind::KwAnd:
      Op = BinaryOp::And;
      break;
    case TokenKind::Slash:
      Diags.error(current().Loc,
                  "real division '/' is not supported; use 'div'");
      Op = BinaryOp::Div;
      break;
    default:
      return LHS;
    }
    SourceLoc Loc = advance().Loc;
    Expr *RHS = parseFactor();
    LHS = Ctx.create<BinaryExpr>(Loc, Op, LHS, RHS);
  }
}

Expr *Parser::parseFactor() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral:
    return Ctx.create<IntLiteralExpr>(Loc, advance().IntValue);
  case TokenKind::KwTrue:
    advance();
    return Ctx.create<BoolLiteralExpr>(Loc, true);
  case TokenKind::KwFalse:
    advance();
    return Ctx.create<BoolLiteralExpr>(Loc, false);
  case TokenKind::KwNot: {
    advance();
    Expr *Sub = parseFactor();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Not, Sub);
  }
  case TokenKind::Minus: {
    advance();
    Expr *Sub = parseFactor();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Neg, Sub);
  }
  case TokenKind::LParen: {
    advance();
    Expr *Inner = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return Inner;
  }
  case TokenKind::Identifier: {
    Token NameTok = advance();
    if (check(TokenKind::LParen)) {
      std::vector<Expr *> Args = parseArgs();
      return Ctx.create<CallExpr>(Loc, NameTok.Text, std::move(Args));
    }
    if (match(TokenKind::LBracket)) {
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      auto *Base = Ctx.create<VarRefExpr>(Loc, NameTok.Text);
      return Ctx.create<IndexExpr>(Loc, Base, Index);
    }
    return Ctx.create<VarRefExpr>(Loc, NameTok.Text);
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(current().Kind));
    // Do not consume statement boundaries; the caller resynchronizes.
    switch (current().Kind) {
    case TokenKind::Semicolon:
    case TokenKind::KwEnd:
    case TokenKind::KwUntil:
    case TokenKind::KwElse:
    case TokenKind::KwThen:
    case TokenKind::KwDo:
    case TokenKind::EndOfFile:
      break;
    default:
      advance();
    }
    return Ctx.create<IntLiteralExpr>(Loc, 0);
  }
}

std::vector<Expr *> Parser::parseArgs() {
  std::vector<Expr *> Args;
  expect(TokenKind::LParen, "before arguments");
  if (match(TokenKind::RParen))
    return Args;
  do {
    if (Expr *E = parseExpr())
      Args.push_back(E);
  } while (match(TokenKind::Comma));
  expect(TokenKind::RParen, "after arguments");
  return Args;
}
