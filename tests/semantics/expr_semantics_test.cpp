//===- tests/semantics/expr_semantics_test.cpp - Expression semantics -----===//
//
// Unit and property tests for the forward/backward abstract expression
// semantics, including a randomized soundness sweep: for random
// expression trees and random concrete valuations drawn from the store,
// the concrete value must lie in the abstract evaluation, and backward
// refinement must never drop a valuation whose value satisfies the
// requirement.
//
//===----------------------------------------------------------------------===//

#include "semantics/ExprSemantics.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>

using namespace syntox;

namespace {

class ExprSemanticsTest : public ::testing::Test {
protected:
  ExprSemanticsTest() : Ops(D), Exprs(Ops) {
    I = Ctx.create<VarDecl>(SourceLoc(), "i", Ctx.integerType(),
                            VarKind::Local);
    J = Ctx.create<VarDecl>(SourceLoc(), "j", Ctx.integerType(),
                            VarKind::Local);
    B = Ctx.create<VarDecl>(SourceLoc(), "b", Ctx.booleanType(),
                            VarKind::Local);
  }

  Expr *lit(int64_t V) {
    auto *E = Ctx.create<IntLiteralExpr>(SourceLoc(), V);
    E->setType(Ctx.integerType());
    return E;
  }
  Expr *ref(VarDecl *V) {
    auto *E = Ctx.create<VarRefExpr>(SourceLoc(), V->name());
    E->setVarDecl(V);
    E->setType(V->type());
    return E;
  }
  Expr *bin(BinaryOp Op, Expr *L, Expr *R) {
    auto *E = Ctx.create<BinaryExpr>(SourceLoc(), Op, L, R);
    E->setType(isComparisonOp(Op) || Op == BinaryOp::And || Op == BinaryOp::Or
                   ? Ctx.booleanType()
                   : Ctx.integerType());
    return E;
  }
  Expr *neg(Expr *Sub) {
    auto *E = Ctx.create<UnaryExpr>(SourceLoc(), UnaryOp::Neg, Sub);
    E->setType(Ctx.integerType());
    return E;
  }
  Expr *builtin(BuiltinFn Fn, Expr *Arg) {
    auto *E = Ctx.create<CallExpr>(SourceLoc(), "f",
                                   std::vector<Expr *>{Arg});
    E->setBuiltin(Fn);
    E->setType(Fn == BuiltinFn::Odd ? Ctx.booleanType() : Ctx.integerType());
    return E;
  }

  AbstractStore store(Interval IV, Interval JV) {
    AbstractStore S;
    Ops.assign(S, I, AbsValue(IV));
    Ops.assign(S, J, AbsValue(JV));
    return S;
  }

  AstContext Ctx;
  IntervalDomain D;
  StoreOps Ops;
  ExprSemantics Exprs;
  FrameMap Frame;
  VarDecl *I, *J, *B;
};

TEST_F(ExprSemanticsTest, EvalLiteralAndVar) {
  AbstractStore S = store(Interval(1, 5), Interval(-2, 2));
  EXPECT_EQ(Exprs.evalInt(lit(42), S, Frame), Interval(42, 42));
  EXPECT_EQ(Exprs.evalInt(ref(I), S, Frame), Interval(1, 5));
}

TEST_F(ExprSemanticsTest, EvalArithmeticTree) {
  AbstractStore S = store(Interval(1, 5), Interval(2, 3));
  // (i + j) * 2
  Expr *E = bin(BinaryOp::Mul, bin(BinaryOp::Add, ref(I), ref(J)), lit(2));
  EXPECT_EQ(Exprs.evalInt(E, S, Frame), Interval(6, 16));
}

TEST_F(ExprSemanticsTest, EvalBooleans) {
  AbstractStore S = store(Interval(1, 5), Interval(10, 20));
  EXPECT_EQ(Exprs.evalBool(bin(BinaryOp::Lt, ref(I), ref(J)), S, Frame),
            BoolLattice(true));
  EXPECT_EQ(Exprs.evalBool(bin(BinaryOp::Gt, ref(I), ref(J)), S, Frame),
            BoolLattice(false));
  EXPECT_TRUE(Exprs.evalBool(bin(BinaryOp::Eq, ref(I), lit(3)), S, Frame)
                  .isTop());
  // not (i < j)
  auto *NotE = Ctx.create<UnaryExpr>(SourceLoc(), UnaryOp::Not,
                                     bin(BinaryOp::Lt, ref(I), ref(J)));
  NotE->setType(Ctx.booleanType());
  EXPECT_EQ(Exprs.evalBool(NotE, S, Frame), BoolLattice(false));
}

TEST_F(ExprSemanticsTest, EvalOddBuiltin) {
  AbstractStore S = store(Interval(3, 3), Interval(0, 9));
  EXPECT_EQ(Exprs.evalBool(builtin(BuiltinFn::Odd, ref(I)), S, Frame),
            BoolLattice(true));
  EXPECT_TRUE(Exprs.evalBool(builtin(BuiltinFn::Odd, ref(J)), S, Frame)
                  .isTop());
}

TEST_F(ExprSemanticsTest, RefineThroughArithmetic) {
  // Paper §2: k := j with j := i + 1 and k in [1, 100] => i in [0, 99].
  AbstractStore S = store(D.top(), D.top());
  Exprs.refineInt(bin(BinaryOp::Add, ref(I), lit(1)), Interval(1, 100), S,
                  Frame);
  EXPECT_EQ(Ops.get(S, I).asInt(), Interval(0, 99));
}

TEST_F(ExprSemanticsTest, RefineBothOperands) {
  AbstractStore S = store(Interval(0, 50), Interval(0, 50));
  // i - j = 0 and both in [0,50]: no refinement possible beyond ranges,
  // but i - j in [40, 100] forces i >= 40 and j <= 10.
  Exprs.refineInt(bin(BinaryOp::Sub, ref(I), ref(J)), Interval(40, 100), S,
                  Frame);
  EXPECT_EQ(Ops.get(S, I).asInt(), Interval(40, 50));
  EXPECT_EQ(Ops.get(S, J).asInt(), Interval(0, 10));
}

TEST_F(ExprSemanticsTest, RefineInfeasibleGoesBottom) {
  AbstractStore S = store(Interval(0, 5), Interval(0, 5));
  Exprs.refineInt(bin(BinaryOp::Add, ref(I), ref(J)), Interval(100, 200), S,
                  Frame);
  EXPECT_TRUE(S.isBottom());
}

TEST_F(ExprSemanticsTest, RefineBoolConjunction) {
  AbstractStore S = store(D.top(), D.top());
  // (i >= 1) and (i <= 10), required true.
  Expr *Cond = bin(BinaryOp::And, bin(BinaryOp::Ge, ref(I), lit(1)),
                   bin(BinaryOp::Le, ref(I), lit(10)));
  Exprs.refineBool(Cond, true, S, Frame);
  EXPECT_EQ(Ops.get(S, I).asInt(), Interval(1, 10));
}

TEST_F(ExprSemanticsTest, RefineBoolDisjunctionJoins) {
  AbstractStore S = store(Interval(0, 100), D.top());
  // (i <= 10) or (i >= 90): the interval join keeps [0, 100]; but
  // negating it ((i > 10) and (i < 90)) refines to [11, 89].
  Expr *Cond = bin(BinaryOp::Or, bin(BinaryOp::Le, ref(I), lit(10)),
                   bin(BinaryOp::Ge, ref(I), lit(90)));
  AbstractStore S1 = S;
  Exprs.refineBool(Cond, true, S1, Frame);
  EXPECT_EQ(Ops.get(S1, I).asInt(), Interval(0, 100));
  AbstractStore S2 = S;
  Exprs.refineBool(Cond, false, S2, Frame);
  EXPECT_EQ(Ops.get(S2, I).asInt(), Interval(11, 89));
}

TEST_F(ExprSemanticsTest, RefineBoolVariable) {
  AbstractStore S;
  Exprs.refineBool(ref(B), true, S, Frame);
  EXPECT_EQ(Ops.get(S, B).asBool(), BoolLattice(true));
  Exprs.refineBool(ref(B), false, S, Frame);
  EXPECT_TRUE(S.isBottom());
}

TEST_F(ExprSemanticsTest, FrameRedirection) {
  // A var formal redirected to a root reads and refines the root.
  VarDecl *Formal = Ctx.create<VarDecl>(SourceLoc(), "x", Ctx.integerType(),
                                        VarKind::VarParam);
  FrameMap F;
  F.redirect(Formal, I);
  AbstractStore S = store(Interval(7, 9), D.top());
  EXPECT_EQ(Exprs.evalInt(ref(Formal), S, F), Interval(7, 9));
  Exprs.refineInt(ref(Formal), Interval(8, 20), S, F);
  EXPECT_EQ(Ops.get(S, I).asInt(), Interval(8, 9));
}

//===----------------------------------------------------------------------===//
// Randomized soundness sweep
//===----------------------------------------------------------------------===//

/// Concrete evaluation with saturating semantics; nullopt on div/mod by
/// zero.
std::optional<int64_t> concreteEval(const Expr *E,
                                    const std::map<const VarDecl *, int64_t>
                                        &Env) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return cast<IntLiteralExpr>(E)->value();
  case Expr::Kind::VarRef:
    return Env.at(cast<VarRefExpr>(E)->varDecl());
  case Expr::Kind::Unary: {
    auto Sub = concreteEval(cast<UnaryExpr>(E)->subExpr(), Env);
    if (!Sub)
      return std::nullopt;
    return -*Sub;
  }
  case Expr::Kind::Call: {
    auto Arg = concreteEval(cast<CallExpr>(E)->args()[0], Env);
    if (!Arg)
      return std::nullopt;
    switch (cast<CallExpr>(E)->builtin()) {
    case BuiltinFn::Abs:
      return *Arg < 0 ? -*Arg : *Arg;
    case BuiltinFn::Sqr:
      return *Arg * *Arg;
    default:
      return std::nullopt;
    }
  }
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    auto L = concreteEval(Bin->lhs(), Env);
    auto R = concreteEval(Bin->rhs(), Env);
    if (!L || !R)
      return std::nullopt;
    switch (Bin->op()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    case BinaryOp::Div:
      if (*R == 0)
        return std::nullopt;
      return *L / *R;
    case BinaryOp::Mod:
      if (*R == 0)
        return std::nullopt;
      return *L % *R;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

class RandomExprTest : public ExprSemanticsTest {
protected:
  Expr *randomExpr(Rng &R, unsigned Depth) {
    if (Depth == 0 || R.chance(1, 3)) {
      if (R.chance(1, 2))
        return lit(R.range(-8, 8));
      return ref(R.chance(1, 2) ? I : J);
    }
    switch (R.below(7)) {
    case 0:
      return bin(BinaryOp::Add, randomExpr(R, Depth - 1),
                 randomExpr(R, Depth - 1));
    case 1:
      return bin(BinaryOp::Sub, randomExpr(R, Depth - 1),
                 randomExpr(R, Depth - 1));
    case 2:
      return bin(BinaryOp::Mul, randomExpr(R, Depth - 1),
                 randomExpr(R, Depth - 1));
    case 3:
      return bin(BinaryOp::Div, randomExpr(R, Depth - 1),
                 randomExpr(R, Depth - 1));
    case 4:
      return bin(BinaryOp::Mod, randomExpr(R, Depth - 1),
                 randomExpr(R, Depth - 1));
    case 5:
      return neg(randomExpr(R, Depth - 1));
    default:
      return builtin(R.chance(1, 2) ? BuiltinFn::Abs : BuiltinFn::Sqr,
                     randomExpr(R, Depth - 1));
    }
  }
};

TEST_F(RandomExprTest, ForwardEvalIsSound) {
  Rng R(31337);
  for (int Trial = 0; Trial < 500; ++Trial) {
    Expr *E = randomExpr(R, 3);
    int64_t ILo = R.range(-10, 10), IHi = ILo + R.range(0, 10);
    int64_t JLo = R.range(-10, 10), JHi = JLo + R.range(0, 10);
    AbstractStore S = store(Interval(ILo, IHi), Interval(JLo, JHi));
    Interval Abstract = Exprs.evalInt(E, S, Frame);
    for (int Probe = 0; Probe < 20; ++Probe) {
      std::map<const VarDecl *, int64_t> Env;
      Env[I] = R.range(ILo, IHi);
      Env[J] = R.range(JLo, JHi);
      auto Concrete = concreteEval(E, Env);
      if (!Concrete)
        continue;
      ASSERT_TRUE(Abstract.contains(*Concrete))
          << "trial " << Trial << ": concrete " << *Concrete << " not in "
          << Abstract.str();
    }
  }
}

TEST_F(RandomExprTest, BackwardRefineIsSound) {
  Rng R(777);
  for (int Trial = 0; Trial < 500; ++Trial) {
    Expr *E = randomExpr(R, 3);
    int64_t ILo = R.range(-10, 10), IHi = ILo + R.range(0, 10);
    int64_t JLo = R.range(-10, 10), JHi = JLo + R.range(0, 10);
    AbstractStore S = store(Interval(ILo, IHi), Interval(JLo, JHi));
    int64_t RLo = R.range(-30, 30), RHi = RLo + R.range(0, 30);
    Interval Required(RLo, RHi);
    AbstractStore Refined = S;
    Exprs.refineInt(E, Required, Refined, Frame);
    for (int Probe = 0; Probe < 20; ++Probe) {
      std::map<const VarDecl *, int64_t> Env;
      Env[I] = R.range(ILo, IHi);
      Env[J] = R.range(JLo, JHi);
      auto Concrete = concreteEval(E, Env);
      if (!Concrete || !Required.contains(*Concrete))
        continue;
      // This valuation satisfies the requirement: it must survive.
      ASSERT_FALSE(Refined.isBottom()) << "trial " << Trial;
      ASSERT_TRUE(Ops.get(Refined, I).asInt().contains(Env[I]))
          << "trial " << Trial;
      ASSERT_TRUE(Ops.get(Refined, J).asInt().contains(Env[J]))
          << "trial " << Trial;
    }
  }
}

TEST_F(RandomExprTest, BooleanRefineIsSound) {
  Rng R(4444);
  for (int Trial = 0; Trial < 300; ++Trial) {
    // Random comparison between two random arithmetic trees.
    BinaryOp CmpOps[] = {BinaryOp::Eq, BinaryOp::Ne, BinaryOp::Lt,
                         BinaryOp::Le, BinaryOp::Gt, BinaryOp::Ge};
    Expr *L = randomExpr(R, 2);
    Expr *Rhs = randomExpr(R, 2);
    BinaryOp Op = CmpOps[R.below(6)];
    Expr *Cond = bin(Op, L, Rhs);
    bool Sense = R.chance(1, 2);
    int64_t ILo = R.range(-6, 6), IHi = ILo + R.range(0, 8);
    int64_t JLo = R.range(-6, 6), JHi = JLo + R.range(0, 8);
    AbstractStore S = store(Interval(ILo, IHi), Interval(JLo, JHi));
    AbstractStore Refined = S;
    Exprs.refineBool(Cond, Sense, Refined, Frame);
    for (int Probe = 0; Probe < 20; ++Probe) {
      std::map<const VarDecl *, int64_t> Env;
      Env[I] = R.range(ILo, IHi);
      Env[J] = R.range(JLo, JHi);
      auto LV = concreteEval(L, Env);
      auto RV = concreteEval(Rhs, Env);
      if (!LV || !RV)
        continue;
      bool Holds;
      switch (Op) {
      case BinaryOp::Eq:
        Holds = *LV == *RV;
        break;
      case BinaryOp::Ne:
        Holds = *LV != *RV;
        break;
      case BinaryOp::Lt:
        Holds = *LV < *RV;
        break;
      case BinaryOp::Le:
        Holds = *LV <= *RV;
        break;
      case BinaryOp::Gt:
        Holds = *LV > *RV;
        break;
      default:
        Holds = *LV >= *RV;
        break;
      }
      if (Holds != Sense)
        continue;
      ASSERT_FALSE(Refined.isBottom()) << "trial " << Trial;
      ASSERT_TRUE(Ops.get(Refined, I).asInt().contains(Env[I]))
          << "trial " << Trial;
      ASSERT_TRUE(Ops.get(Refined, J).asInt().contains(Env[J]))
          << "trial " << Trial;
    }
  }
}

} // namespace
