//===- tests/semantics/soundness_test.cpp - Concrete/abstract agreement ---===//
//
// Property tests cross-validating the analyses against the concrete
// interpreter: the derived conditions must be *necessary* — whenever a
// concrete run satisfies the specification (terminates without a runtime
// error), its input must be inside the abstract envelope at the read
// point. A reported condition that a successful run violates would be a
// soundness bug.
//
//===----------------------------------------------------------------------===//

#include "frontend/PaperPrograms.h"
#include "interp/Interpreter.h"
#include "support/Rng.h"

#include "../common/AnalysisTestUtil.h"

#include <gtest/gtest.h>

using namespace syntox;
using namespace syntox::test;

namespace {

Interpreter::Result runConcrete(const FrontendResult &FE,
                                std::vector<int64_t> Inputs,
                                uint64_t MaxSteps = 2000000) {
  Interpreter I(FE.Program);
  Interpreter::Options Opts;
  Opts.Inputs = std::move(Inputs);
  Opts.MaxSteps = MaxSteps;
  return I.run(Opts);
}

/// Single-integer-input programs with the termination goal: any n for
/// which the program terminates cleanly must be inside the envelope right
/// after the read.
struct SingleReadCase {
  const char *Source;
  const char *ReadDesc; ///< point description of the read
  const char *Var;
  int64_t SweepLo, SweepHi;
};

class SingleReadSoundness : public ::testing::TestWithParam<SingleReadCase> {
};

TEST_P(SingleReadSoundness, SuccessfulInputsAreInEnvelope) {
  const SingleReadCase &C = GetParam();
  auto A = analyzeProgram(C.Source, withOptions().terminationGoal());
  const VarDecl *V = A.var("", C.Var);
  ASSERT_NE(V, nullptr);
  unsigned Node = A.node("", C.ReadDesc);
  Interval Env = A.envInt(Node, V);

  for (int64_t N = C.SweepLo; N <= C.SweepHi; ++N) {
    auto R = runConcrete(A.FE, {N});
    if (R.St != Interpreter::Status::Ok)
      continue; // failed or looped: no claim
    EXPECT_TRUE(Env.contains(N))
        << C.Var << " = " << N << " terminated OK but envelope is "
        << A.An->storeOps().domain().str(Env);
  }
  // And the envelope must exclude at least one bad input (usefulness).
  bool ExcludesSomething = false;
  for (int64_t N = C.SweepLo; N <= C.SweepHi; ++N)
    ExcludesSomething |= !Env.contains(N);
  EXPECT_TRUE(ExcludesSomething);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPrograms, SingleReadSoundness,
    ::testing::Values(
        SingleReadCase{paper::FactProgram, "after read x", "x", -5, 20},
        SingleReadCase{paper::SelectProgram, "after read n", "n", -5, 25},
        SingleReadCase{paper::McCarthyBuggy, "after read n", "n", 90, 130}));

TEST(SoundnessTest, ForProgramConditionIsNecessary) {
  // Every terminating run of For must have n < 0 (the loop body always
  // fails the bound check at i = 0).
  auto A = analyzeProgram(paper::ForProgram);
  const VarDecl *N = A.var("", "n");
  Interval Env = A.envInt(A.node("", "after read n"), N);
  for (int64_t Val = -5; Val <= 5; ++Val) {
    std::vector<int64_t> Inputs(1, Val);
    for (int I = 0; I <= Val; ++I)
      Inputs.push_back(I); // array values, if the loop runs
    auto R = runConcrete(A.FE, Inputs);
    if (R.St == Interpreter::Status::Ok) {
      EXPECT_TRUE(Env.contains(Val)) << "n = " << Val;
      EXPECT_LT(Val, 0);
    } else if (Val >= 0) {
      EXPECT_EQ(R.St, Interpreter::Status::RuntimeError);
    }
  }
}

TEST(SoundnessTest, WhileProgramConditionIsNecessary) {
  auto A = analyzeProgram(paper::WhileProgram, withOptions().terminationGoal());
  const VarDecl *B = A.var("", "b");
  BoolLattice Env =
      A.An->storeOps().get(A.An->envelopeAt(A.node("", "after read b")), B)
          .asBool();
  // b = true loops; b = false terminates. Envelope must cover false.
  auto RFalse = runConcrete(A.FE, {0});
  EXPECT_EQ(RFalse.St, Interpreter::Status::Ok);
  EXPECT_TRUE(Env.mayBeFalse());
  auto RTrue = runConcrete(A.FE, {1}, /*MaxSteps=*/50000);
  EXPECT_EQ(RTrue.St, Interpreter::Status::StepLimit);
  EXPECT_FALSE(Env.mayBeTrue());
}

TEST(SoundnessTest, McCarthyForwardCoversConcreteResults) {
  // Forward analysis at the exit must cover every concrete result.
  auto A = analyzeProgram(paper::McCarthyProgram);
  const VarDecl *M = A.var("", "m");
  Interval Fwd = A.fwdInt(A.node("", "exit of mccarthy"), M);
  for (int64_t N : {-50, 0, 77, 100, 101, 150, 1000}) {
    auto R = runConcrete(A.FE, {N}, 10000000);
    ASSERT_EQ(R.St, Interpreter::Status::Ok) << "n=" << N;
    int64_t Result = std::stoll(R.Output);
    EXPECT_TRUE(Fwd.contains(Result)) << "mc(" << N << ") = " << Result;
  }
}

TEST(SoundnessTest, RandomGuardedAccessPrograms) {
  // Generated family: read(i); if lo <= i <= hi then T[i] := i.
  // The analysis must prove the guarded access safe, and the concrete
  // interpreter must agree for every input.
  Rng R(99);
  for (int Trial = 0; Trial < 20; ++Trial) {
    int64_t Lo = R.range(1, 50);
    int64_t Hi = R.range(Lo, 100);
    std::string Source =
        "program p; var T : array [1..100] of integer; i : integer;\n"
        "begin read(i);\n"
        "  if (i >= " + std::to_string(Lo) + ") and (i <= " +
        std::to_string(Hi) + ") then T[i] := i\nend.";
    auto A = analyzeProgram(Source);
    // The abstract claim: the access is safe.
    unsigned CheckNode = A.node("", "bound check");
    (void)CheckNode;
    for (int Probe = 0; Probe < 10; ++Probe) {
      int64_t Input = R.range(-20, 120);
      auto Res = runConcrete(A.FE, {Input});
      EXPECT_EQ(Res.St, Interpreter::Status::Ok)
          << Source << "input " << Input << ": " << Res.Error;
    }
  }
}

TEST(SoundnessTest, IntermittentConditionIsNecessary) {
  // For the paper's Intermittent program, the analysis says reaching
  // i = 10 after an increment requires i <= 9 initially; check against
  // the interpreter (instrumented via the final value: the loop always
  // ends at 100, so we detect "reached 10" by the initial value).
  auto A = analyzeProgram(paper::IntermittentProgram);
  Interval Env = A.envInt(A.node("", "after read i"), A.var("", "i"));
  for (int64_t Init = 0; Init <= 20; ++Init) {
    bool ReachesTen = Init <= 9; // i climbs Init+1, ..., 100
    if (ReachesTen) {
      EXPECT_TRUE(Env.contains(Init)) << Init;
    }
  }
  EXPECT_FALSE(Env.contains(10));
}

} // namespace
