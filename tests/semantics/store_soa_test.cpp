//===- tests/semantics/store_soa_test.cpp - SoA kernel differential -------===//
//
// The structure-of-arrays lattice kernels (word-at-a-time join / meet /
// widen / narrow / equal / hash over the Lo/Hi rows) must be
// observationally identical to the per-key scalar semantics they
// replaced: entry absent = top of the variable's kind, any bottom value
// collapses the store, delta-aware ops return their input payload when
// nothing changed. This battery fuzzes stores wide enough to span
// several 64-slot bitmap words (including +/-oo bounds, singletons,
// boolean lanes, empty and bottom stores) and compares every kernel
// against a get()-based scalar reference, then pins the COW fast paths
// and moved-from safety the solver relies on.
//
//===----------------------------------------------------------------------===//

#include "semantics/AbstractStore.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using namespace syntox;

namespace {

/// ~2.2 words of slots: enough for partial-word heads and full-word
/// middles in every kernel.
constexpr unsigned NumVars = 140;

class StoreSoaTest : public ::testing::Test {
protected:
  StoreSoaTest() : Ops(D) {
    for (unsigned I = 0; I < NumVars; ++I) {
      // Every third variable is a boolean lane; a few are subranges
      // (their type range matters only to typeRange, not the kernels).
      const Type *Ty = I % 3 == 2        ? Ctx.booleanType()
                       : I % 7 == 0      ? Ctx.getSubrangeType(1, 100)
                                         : Ctx.integerType();
      Vars.push_back(Ctx.create<VarDecl>(SourceLoc(), "v" + std::to_string(I),
                                         Ty, VarKind::Local));
    }
  }

  /// A random non-bottom value of \p V's kind. Integer lanes draw from
  /// a pool heavy on edge cases: +/-oo bounds, singletons, wide spans.
  AbsValue randomValue(std::mt19937_64 &Rng, const VarDecl *V) {
    if (V->type()->isBoolean()) {
      switch (Rng() % 3) {
      case 0:
        return AbsValue(BoolLattice(false));
      case 1:
        return AbsValue(BoolLattice(true));
      default:
        return AbsValue(BoolLattice::top());
      }
    }
    auto Bound = [&](bool IsLo) -> int64_t {
      switch (Rng() % 5) {
      case 0:
        return IsLo ? D.minValue() : D.maxValue();
      case 1:
        return 0;
      case 2:
        return static_cast<int64_t>(Rng() % 7) - 3;
      default:
        return static_cast<int64_t>(Rng() % 2001) - 1000;
      }
    };
    int64_t Lo = Bound(true), Hi = Bound(false);
    if (Lo > Hi)
      std::swap(Lo, Hi);
    return AbsValue(Interval(Lo, Hi));
  }

  /// A random store: each variable present with probability
  /// \p Density/100. Occasionally the bottom or the top store.
  AbstractStore randomStore(std::mt19937_64 &Rng, unsigned Density) {
    if (Rng() % 16 == 0)
      return Rng() % 2 ? AbstractStore::bottom() : AbstractStore::top();
    AbstractStore S;
    for (const VarDecl *V : Vars)
      if (Rng() % 100 < Density)
        S.set(V, randomValue(Rng, V));
    return S;
  }

  AstContext Ctx;
  IntervalDomain D;
  StoreOps Ops;
  std::vector<VarDecl *> Vars;
};

/// The scalar store ops the kernels replaced, rebuilt per key on top of
/// get(): the paper's pointwise lattice with absent-entry = top and
/// bottom-value collapse.
struct ScalarRef {
  const StoreOps &Ops;
  const IntervalDomain &D;
  const std::vector<VarDecl *> &Vars;

  enum class Op { Join, Meet, Widen, Narrow };

  AbsValue apply(Op O, const AbsValue &A, const AbsValue &B) const {
    switch (O) {
    case Op::Join:
      return Ops.joinValues(A, B);
    case Op::Meet:
      return Ops.meetValues(A, B);
    case Op::Widen:
      return Ops.widenValues(A, B);
    case Op::Narrow:
      if (A.isInt())
        return AbsValue(D.narrow(A.asInt(), B.asInt()));
      return AbsValue(A.asBool().meet(B.asBool()));
    }
    return A;
  }

  /// Pointwise expected result: kernel output \p Got must read back the
  /// scalar value at every key and agree on bottomness.
  void expectPointwise(Op O, const AbstractStore &A, const AbstractStore &B,
                       const AbstractStore &Got, const char *What) const {
    // Store-level bottom short-circuits (paper §6.1).
    if (O == Op::Join) {
      if (A.isBottom() && B.isBottom()) {
        EXPECT_TRUE(Got.isBottom()) << What;
        return;
      }
      if (A.isBottom() || B.isBottom()) {
        const AbstractStore &Other = A.isBottom() ? B : A;
        EXPECT_TRUE(Ops.equal(Got, Other)) << What;
        return;
      }
    }
    if (O == Op::Widen) {
      if (A.isBottom()) {
        EXPECT_TRUE(Ops.equal(Got, B)) << What;
        return;
      }
      if (B.isBottom()) {
        EXPECT_TRUE(Ops.equal(Got, A)) << What;
        return;
      }
    }
    if ((O == Op::Meet || O == Op::Narrow) &&
        (A.isBottom() || B.isBottom())) {
      EXPECT_TRUE(Got.isBottom()) << What;
      return;
    }
    // Per-key expected value. Narrow is *not* pointwise over get():
    // when B has no explicit entry the store keeps A's entry verbatim
    // (x /\~ absent-T = x — the seed's termination-preserving rule),
    // whereas an explicit top entry in B runs the §6.1 operator, which
    // replaces non-omega bounds. Every other op is pointwise.
    auto Expected = [&](const VarDecl *V) {
      if (O == Op::Narrow && !B.hasEntry(V))
        return Ops.get(A, V);
      return apply(O, Ops.get(A, V), Ops.get(B, V));
    };
    // Pointwise: any bottom value collapses the whole result store.
    bool AnyBottom = false;
    for (const VarDecl *V : Vars)
      if (Expected(V).isBottom())
        AnyBottom = true;
    if (AnyBottom) {
      EXPECT_TRUE(Got.isBottom()) << What << ": expected collapse";
      return;
    }
    ASSERT_FALSE(Got.isBottom()) << What << ": unexpected collapse";
    for (const VarDecl *V : Vars) {
      AbsValue Want = Expected(V);
      AbsValue Have = Ops.get(Got, V);
      EXPECT_TRUE(Want == Have)
          << What << " differs at " << V->name() << " (slot "
          << V->storeSlot() << ")";
    }
  }

  bool scalarEqual(const AbstractStore &A, const AbstractStore &B) const {
    if (A.isBottom() || B.isBottom())
      return A.isBottom() == B.isBottom();
    for (const VarDecl *V : Vars)
      if (!(Ops.get(A, V) == Ops.get(B, V)))
        return false;
    return true;
  }

  bool scalarLeq(const AbstractStore &A, const AbstractStore &B) const {
    if (A.isBottom())
      return true;
    if (B.isBottom())
      return false;
    for (const VarDecl *V : Vars)
      if (!Ops.leqValues(Ops.get(A, V), Ops.get(B, V)))
        return false;
    return true;
  }
};

TEST_F(StoreSoaTest, FuzzedKernelsMatchScalarReference) {
  ScalarRef Ref{Ops, D, Vars};
  std::mt19937_64 Rng(0x50a50a);
  for (unsigned Iter = 0; Iter < 400; ++Iter) {
    // Sweep densities so delta fast paths, sparse/sparse and
    // dense/dense pairs all occur; correlated pairs (B derived from A)
    // exercise the return-input-on-no-change paths.
    unsigned Density = 5 + Rng() % 90;
    AbstractStore A = randomStore(Rng, Density);
    AbstractStore B;
    if (Rng() % 3 == 0) {
      B = A; // shared payload
      if (Rng() % 2) {
        const VarDecl *V = Vars[Rng() % NumVars];
        B.set(V, randomValue(Rng, V)); // detached single-slot delta
      }
    } else {
      B = randomStore(Rng, Density);
    }
    SCOPED_TRACE("iter " + std::to_string(Iter));

    Ref.expectPointwise(ScalarRef::Op::Join, A, B, Ops.join(A, B), "join");
    Ref.expectPointwise(ScalarRef::Op::Meet, A, B, Ops.meet(A, B), "meet");
    Ref.expectPointwise(ScalarRef::Op::Widen, A, B, Ops.widen(A, B), "widen");
    Ref.expectPointwise(ScalarRef::Op::Narrow, A, B, Ops.narrow(A, B),
                        "narrow");

    EXPECT_EQ(Ops.equal(A, B), Ref.scalarEqual(A, B));
    EXPECT_EQ(Ops.leq(A, B), Ref.scalarLeq(A, B));
    // Hash respects semantic equality (content-keyed caches depend on
    // it): equal stores hash identically, including across distinct
    // payloads with the same content.
    if (Ref.scalarEqual(A, B)) {
      EXPECT_EQ(Ops.hash(A), Ops.hash(B));
    }
  }
}

TEST_F(StoreSoaTest, LatticeLawsOnFuzzedStores) {
  std::mt19937_64 Rng(0xbeef);
  for (unsigned Iter = 0; Iter < 200; ++Iter) {
    AbstractStore A = randomStore(Rng, 40);
    AbstractStore B = randomStore(Rng, 40);
    SCOPED_TRACE("iter " + std::to_string(Iter));
    AbstractStore J = Ops.join(A, B);
    EXPECT_TRUE(Ops.leq(A, J));
    EXPECT_TRUE(Ops.leq(B, J));
    AbstractStore M = Ops.meet(A, B);
    EXPECT_TRUE(Ops.leq(M, A));
    EXPECT_TRUE(Ops.leq(M, B));
    // Widening covers the join; narrowing refines from above.
    AbstractStore W = Ops.widen(A, B);
    EXPECT_TRUE(Ops.leq(J, W));
    AbstractStore N = Ops.narrow(W, A);
    EXPECT_TRUE(Ops.leq(N, W));
  }
}

TEST_F(StoreSoaTest, CowFastPathsPreserveIdentity) {
  std::mt19937_64 Rng(0xc0ffee);
  AbstractStore A = randomStore(Rng, 60);
  ASSERT_FALSE(A.isBottom());
  ASSERT_GT(A.numEntries(), 0u);

  // Copies share the payload; all delta-aware ops on a converged pair
  // return the *input* store so samePayload keeps firing.
  AbstractStore Copy = A;
  EXPECT_TRUE(A.samePayload(Copy));
  EXPECT_EQ(Ops.join(A, Copy).payloadIdentity(), A.payloadIdentity());
  EXPECT_EQ(Ops.widen(A, Copy).payloadIdentity(), A.payloadIdentity());
  EXPECT_EQ(Ops.narrow(A, Copy).payloadIdentity(), A.payloadIdentity());
  EXPECT_EQ(Ops.meet(A, Copy).payloadIdentity(), A.payloadIdentity());
  EXPECT_TRUE(Ops.equal(A, Copy));

  // join(A, B) with B strictly below A changes nothing: input returned.
  AbstractStore Below = A;
  const VarDecl *IntVar = Vars[0];
  Below.set(IntVar, AbsValue(Interval(1, 2)));
  AbstractStore A2 = A;
  Ops.assign(A2, IntVar, AbsValue(Interval(0, 5)));
  EXPECT_EQ(Ops.join(A2, Below).payloadIdentity(), A2.payloadIdentity());

  // Writing through a shared payload detaches the writer only.
  const void *Ident = A.payloadIdentity();
  Copy.set(Vars[1], AbsValue(Interval(7, 7)));
  EXPECT_EQ(A.payloadIdentity(), Ident);
  EXPECT_NE(Copy.payloadIdentity(), Ident);
}

TEST_F(StoreSoaTest, MovedFromStoresAreSafe) {
  std::mt19937_64 Rng(1);
  AbstractStore A = randomStore(Rng, 50);
  AbstractStore Taken = std::move(A);
  // The moved-from store is a valid (payload-free, i.e. top) store:
  // every op must be well-defined on it.
  EXPECT_TRUE(A.isTop() || A.isBottom());
  EXPECT_NO_FATAL_FAILURE({
    (void)Ops.join(A, Taken);
    (void)Ops.equal(A, Taken);
    (void)Ops.hash(A);
    AbstractStore B = A;
    B.set(Vars[0], AbsValue(Interval(1, 1)));
    (void)Ops.get(B, Vars[0]);
  });
}

TEST_F(StoreSoaTest, RestrictToMasksAndIdentity) {
  std::mt19937_64 Rng(2);
  AbstractStore A;
  for (const VarDecl *V : Vars)
    A.set(V, randomValue(Rng, V));
  const size_t Words = (NumVars + 63) / 64;

  // Full mask: nothing drops, the input payload is returned.
  std::vector<uint64_t> All(Words, ~0ull);
  uint64_t Dropped = 0;
  AbstractStore Same = Ops.restrictTo(A, All.data(), All.size(), &Dropped);
  EXPECT_EQ(Same.payloadIdentity(), A.payloadIdentity());
  EXPECT_EQ(Dropped, 0u);

  // Every other slot dead: exactly those entries read top afterwards.
  std::vector<uint64_t> Odd(Words, 0xaaaaaaaaaaaaaaaaull);
  Dropped = 0;
  AbstractStore R = Ops.restrictTo(A, Odd.data(), Odd.size(), &Dropped);
  uint64_t WantDropped = 0;
  for (const VarDecl *V : Vars) {
    bool Live = V->storeSlot() & 1;
    if (!Live)
      ++WantDropped;
    AbsValue Got = Ops.get(R, V);
    if (Live)
      EXPECT_TRUE(Got == Ops.get(A, V)) << V->name();
    else
      EXPECT_TRUE(!Got.isBottom() &&
                  (Got.isInt() ? D.isTop(Got.asInt()) : Got.asBool().isTop()))
          << V->name();
  }
  EXPECT_EQ(Dropped, WantDropped);

  // Bottom and top pass through untouched; slots past the mask words
  // are dead.
  EXPECT_TRUE(
      Ops.restrictTo(AbstractStore::bottom(), Odd.data(), Odd.size(), nullptr)
          .isBottom());
  EXPECT_TRUE(
      Ops.restrictTo(AbstractStore::top(), Odd.data(), Odd.size(), nullptr)
          .isTop());
  AbstractStore Empty = Ops.restrictTo(A, Odd.data(), 0, &Dropped);
  EXPECT_EQ(Empty.numEntries(), 0u);
}

} // namespace
