//===- tests/semantics/transfer_test.cpp - Action transfer tests ----------===//
//
// Unit tests for the forward and backward transfer functions of each CFG
// action — the [x := e] / [x := e]^-1 / [i < 100] primitives of paper §4
// — including the round-trip property fwd(a, bwd(a, S)) <= S-ish checks
// that catch inverted primitives.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "semantics/Transfer.h"

#include <gtest/gtest.h>

using namespace syntox;

namespace {

class TransferTest : public ::testing::Test {
protected:
  TransferTest() : Ops(D), Exprs(Ops), Xfer(Ops, Exprs, Cfg) {
    I = Ctx.create<VarDecl>(SourceLoc(), "i", Ctx.integerType(),
                            VarKind::Local);
    J = Ctx.create<VarDecl>(SourceLoc(), "j", Ctx.integerType(),
                            VarKind::Local);
    B = Ctx.create<VarDecl>(SourceLoc(), "b", Ctx.booleanType(),
                            VarKind::Local);
    T = Ctx.create<VarDecl>(SourceLoc(), "t",
                            Ctx.getArrayType(1, 10, Ctx.integerType()),
                            VarKind::Local);
  }

  Expr *lit(int64_t V) {
    auto *E = Ctx.create<IntLiteralExpr>(SourceLoc(), V);
    E->setType(Ctx.integerType());
    return E;
  }
  Expr *ref(VarDecl *V) {
    auto *E = Ctx.create<VarRefExpr>(SourceLoc(), V->name());
    E->setVarDecl(V);
    E->setType(V->type());
    return E;
  }
  Expr *add(Expr *L, Expr *R) {
    auto *E = Ctx.create<BinaryExpr>(SourceLoc(), BinaryOp::Add, L, R);
    E->setType(Ctx.integerType());
    return E;
  }
  Expr *lt(Expr *L, Expr *R) {
    auto *E = Ctx.create<BinaryExpr>(SourceLoc(), BinaryOp::Lt, L, R);
    E->setType(Ctx.booleanType());
    return E;
  }

  AbstractStore storeI(Interval V) {
    AbstractStore S;
    Ops.assign(S, I, AbsValue(V));
    return S;
  }

  AstContext Ctx;
  ProgramCfg Cfg;
  IntervalDomain D;
  StoreOps Ops;
  ExprSemantics Exprs;
  Transfer Xfer;
  FrameMap Frame;
  VarDecl *I, *J, *B, *T;
};

TEST_F(TransferTest, NopIsIdentity) {
  AbstractStore S = storeI(Interval(1, 2));
  EXPECT_TRUE(Ops.equal(Xfer.fwd(Action::nop(), S, Frame), S));
  EXPECT_TRUE(Ops.equal(Xfer.bwd(Action::nop(), S, Frame), S));
}

TEST_F(TransferTest, ForwardAssign) {
  AbstractStore S = storeI(Interval(1, 5));
  // j := i + 1
  AbstractStore Out =
      Xfer.fwd(Action::assign(J, add(ref(I), lit(1))), S, Frame);
  EXPECT_EQ(Ops.get(Out, J).asInt(), Interval(2, 6));
  EXPECT_EQ(Ops.get(Out, I).asInt(), Interval(1, 5));
}

TEST_F(TransferTest, ForwardAssignSelfReference) {
  AbstractStore S = storeI(Interval(0, 0));
  AbstractStore Out =
      Xfer.fwd(Action::assign(I, add(ref(I), lit(1))), S, Frame);
  EXPECT_EQ(Ops.get(Out, I).asInt(), Interval(1, 1));
}

TEST_F(TransferTest, BackwardAssign) {
  // After i := i + 1 the requirement i in [1, 100] becomes i in [0, 99].
  AbstractStore After = storeI(Interval(1, 100));
  AbstractStore Before =
      Xfer.bwd(Action::assign(I, add(ref(I), lit(1))), After, Frame);
  EXPECT_EQ(Ops.get(Before, I).asInt(), Interval(0, 99));
}

TEST_F(TransferTest, BackwardAssignDropsTargetConstraint) {
  // j := 5 satisfies any requirement on j containing 5; the pre-state
  // must not constrain j.
  AbstractStore After;
  Ops.assign(After, J, AbsValue(Interval(0, 10)));
  AbstractStore Before = Xfer.bwd(Action::assign(J, lit(5)), After, Frame);
  EXPECT_FALSE(Before.hasEntry(J));
  // But an unsatisfiable requirement kills the state.
  AbstractStore Bad;
  Ops.assign(Bad, J, AbsValue(Interval(100, 200)));
  EXPECT_TRUE(Xfer.bwd(Action::assign(J, lit(5)), Bad, Frame).isBottom());
}

TEST_F(TransferTest, BooleanAssign) {
  AbstractStore S = storeI(Interval(1, 5));
  AbstractStore Out =
      Xfer.fwd(Action::assign(B, lt(ref(I), lit(3))), S, Frame);
  EXPECT_TRUE(Ops.get(Out, B).asBool().isTop());
  AbstractStore S2 = storeI(Interval(1, 2));
  AbstractStore Out2 =
      Xfer.fwd(Action::assign(B, lt(ref(I), lit(3))), S2, Frame);
  EXPECT_EQ(Ops.get(Out2, B).asBool(), BoolLattice(true));
}

TEST_F(TransferTest, BackwardBooleanAssign) {
  // Requirement b = true after b := i < 3 forces i <= 2.
  AbstractStore After = storeI(Interval(0, 10));
  Ops.assign(After, B, AbsValue(BoolLattice(true)));
  AbstractStore Before =
      Xfer.bwd(Action::assign(B, lt(ref(I), lit(3))), After, Frame);
  EXPECT_EQ(Ops.get(Before, I).asInt(), Interval(0, 2));
  EXPECT_FALSE(Before.hasEntry(B));
}

TEST_F(TransferTest, ForwardRead) {
  AbstractStore S = storeI(Interval(1, 2));
  AbstractStore Out = Xfer.fwd(Action::readScalar(I), S, Frame);
  EXPECT_FALSE(Out.hasEntry(I));
}

TEST_F(TransferTest, BackwardRead) {
  // A satisfiable requirement survives with the target released.
  AbstractStore After = storeI(Interval(5, 5));
  AbstractStore Before = Xfer.bwd(Action::readScalar(I), After, Frame);
  EXPECT_FALSE(Before.isBottom());
  EXPECT_FALSE(Before.hasEntry(I));
}

TEST_F(TransferTest, AssumeBothDirections) {
  Action Assume = Action::assume(lt(ref(I), lit(10)), true);
  AbstractStore S = storeI(Interval(0, 100));
  EXPECT_EQ(Ops.get(Xfer.fwd(Assume, S, Frame), I).asInt(), Interval(0, 9));
  EXPECT_EQ(Ops.get(Xfer.bwd(Assume, S, Frame), I).asInt(), Interval(0, 9));
  Action AssumeFalse = Action::assume(lt(ref(I), lit(10)), false);
  EXPECT_EQ(Ops.get(Xfer.fwd(AssumeFalse, S, Frame), I).asInt(),
            Interval(10, 100));
}

TEST_F(TransferTest, ArrayStoreIsWeak) {
  AbstractStore S = storeI(Interval(1, 10));
  Ops.assign(S, T, AbsValue(Interval(0, 0)));
  AbstractStore Out =
      Xfer.fwd(Action::arrayStore(T, ref(I), lit(7)), S, Frame);
  // The summary joins old and new values.
  EXPECT_EQ(Ops.get(Out, T).asInt(), Interval(0, 7));
}

TEST_F(TransferTest, ArrayStoreBackward) {
  // Requirement "all elements in [0, 5]" after t[i] := j requires j in
  // [0, 5] and releases the summary.
  AbstractStore After = storeI(Interval(1, 10));
  Ops.assign(After, T, AbsValue(Interval(0, 5)));
  Ops.assign(After, J, AbsValue(D.top()));
  AbstractStore Before =
      Xfer.bwd(Action::arrayStore(T, ref(I), ref(J)), After, Frame);
  EXPECT_EQ(Ops.get(Before, J).asInt(), Interval(0, 5));
  EXPECT_FALSE(Before.hasEntry(T));
}

TEST_F(TransferTest, ReadArrayForgetsSummary) {
  AbstractStore S = storeI(Interval(1, 10));
  Ops.assign(S, T, AbsValue(Interval(0, 0)));
  AbstractStore Out = Xfer.fwd(Action::readArray(T, ref(I)), S, Frame);
  EXPECT_FALSE(Out.hasEntry(T));
}

TEST_F(TransferTest, CheckActions) {
  unsigned InRange = Cfg.registerCheck(CheckInfo{
      0, CheckKind::ArrayBound, SourceLoc(), ref(I), 1, 10, "index of t"});
  AbstractStore S = storeI(Interval(-5, 100));
  AbstractStore Out = Xfer.fwd(Action::check(InRange, ref(I)), S, Frame);
  EXPECT_EQ(Ops.get(Out, I).asInt(), Interval(1, 10));
  // Backward applies the same refinement.
  AbstractStore Pre = Xfer.bwd(Action::check(InRange, ref(I)), S, Frame);
  EXPECT_EQ(Ops.get(Pre, I).asInt(), Interval(1, 10));

  unsigned NonZero = Cfg.registerCheck(CheckInfo{
      0, CheckKind::DivByZero, SourceLoc(), ref(I), 0, 0, "divisor"});
  AbstractStore Z = storeI(Interval(0, 5));
  AbstractStore OutZ = Xfer.fwd(Action::check(NonZero, ref(I)), Z, Frame);
  EXPECT_EQ(Ops.get(OutZ, I).asInt(), Interval(1, 5));
  AbstractStore OnlyZero = storeI(Interval(0, 0));
  EXPECT_TRUE(
      Xfer.fwd(Action::check(NonZero, ref(I)), OnlyZero, Frame).isBottom());

  unsigned CaseFall = Cfg.registerCheck(CheckInfo{
      0, CheckKind::CaseMatch, SourceLoc(), ref(I), 1, 3, "case selector"});
  EXPECT_TRUE(
      Xfer.fwd(Action::check(CaseFall, ref(I)), S, Frame).isBottom());
}

TEST_F(TransferTest, InvariantRefines) {
  Action Inv = Action::invariant(lt(ref(I), lit(0)));
  AbstractStore S = storeI(Interval(-10, 10));
  EXPECT_EQ(Ops.get(Xfer.fwd(Inv, S, Frame), I).asInt(), Interval(-10, -1));
  EXPECT_EQ(Ops.get(Xfer.bwd(Inv, S, Frame), I).asInt(), Interval(-10, -1));
}

TEST_F(TransferTest, BottomPropagates) {
  AbstractStore Bot = AbstractStore::bottom();
  EXPECT_TRUE(Xfer.fwd(Action::assign(I, lit(1)), Bot, Frame).isBottom());
  EXPECT_TRUE(Xfer.bwd(Action::assign(I, lit(1)), Bot, Frame).isBottom());
  EXPECT_TRUE(Xfer.fwd(Action::readScalar(I), Bot, Frame).isBottom());
}

TEST_F(TransferTest, FwdBwdGaloisStyleRoundTrip) {
  // For deterministic actions: fwd(a, bwd(a, S)) must stay inside S
  // whenever bwd(a, S) is non-bottom (the preimage maps back into S).
  AbstractStore Req = storeI(Interval(10, 20));
  for (const Action &A :
       {Action::assign(I, add(ref(I), lit(3))),
        Action::assign(I, lit(15)),
        Action::assume(lt(ref(I), lit(18)), true),
        Action::invariant(lt(ref(I), lit(18)))}) {
    AbstractStore Pre = Xfer.bwd(A, Req, Frame);
    if (Pre.isBottom())
      continue;
    AbstractStore RoundTrip = Xfer.fwd(A, Pre, Frame);
    EXPECT_TRUE(Ops.leq(RoundTrip, Req));
  }
}

} // namespace
