//===- tests/semantics/endtoend_random_test.cpp - Differential fuzzing ----===//
//
// Generates random *terminating* Pascal programs (bounded for-loops,
// branches, total arithmetic) and checks the whole pipeline end to end:
// the concrete interpreter runs the program, and every final variable
// value it prints must be contained in the forward abstract invariant at
// the program exit. Any containment failure is a soundness bug in some
// layer (frontend, CFG lowering, transfer functions, fixpoint engine or
// the interprocedural plumbing).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "support/Rng.h"

#include "../common/AnalysisTestUtil.h"
#include "../common/RandomProgramGen.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace syntox;
using namespace syntox::test;

namespace {

TEST(EndToEndRandomTest, ForwardInvariantCoversConcreteRuns) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    ProgramGenerator Gen(Seed * 7919);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);

    auto A = analyzeProgram(Source);
    ASSERT_TRUE(A.FE.SemaOk);

    Interpreter I(A.FE.Program);
    Interpreter::Options Opts;
    Opts.MaxSteps = 500000;
    Interpreter::Result Res = I.run(Opts);
    ASSERT_EQ(Res.St, Interpreter::Status::Ok) << Res.Error;

    // Parse the printed final values.
    std::istringstream Values(Res.Output);
    unsigned ExitNode = A.node("", "exit of gen");
    for (int V = 0; V < 5; ++V) {
      int64_t Concrete = 0;
      ASSERT_TRUE(static_cast<bool>(Values >> Concrete)) << Res.Output;
      const VarDecl *Var = A.var("", "v" + std::to_string(V));
      Interval Abstract = A.fwdInt(ExitNode, Var);
      EXPECT_TRUE(Abstract.contains(Concrete))
          << "v" << V << " = " << Concrete << " not in "
          << A.An->storeOps().domain().str(Abstract);
    }
  }
}

TEST(EndToEndRandomTest, EnvelopeCoversSuccessfulRunsToo) {
  // With the termination goal, successful runs must also sit inside the
  // final envelope (these programs always terminate, so the eventually
  // analysis must not exclude any reachable state).
  for (uint64_t Seed = 100; Seed <= 120; ++Seed) {
    ProgramGenerator Gen(Seed * 104729);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);

    auto A = analyzeProgram(Source, withOptions().terminationGoal());
    ASSERT_TRUE(A.FE.SemaOk);

    Interpreter I(A.FE.Program);
    Interpreter::Options RunOpts;
    RunOpts.MaxSteps = 500000;
    Interpreter::Result Res = I.run(RunOpts);
    ASSERT_EQ(Res.St, Interpreter::Status::Ok) << Res.Error;

    std::istringstream Values(Res.Output);
    unsigned ExitNode = A.node("", "exit of gen");
    for (int V = 0; V < 5; ++V) {
      int64_t Concrete = 0;
      ASSERT_TRUE(static_cast<bool>(Values >> Concrete));
      const VarDecl *Var = A.var("", "v" + std::to_string(V));
      Interval Env = A.envInt(ExitNode, Var);
      EXPECT_TRUE(Env.contains(Concrete))
          << "v" << V << " = " << Concrete << " not in envelope "
          << A.An->storeOps().domain().str(Env);
    }
  }
}

TEST(EndToEndRandomTest, ParallelStrategyWithCacheIsSound) {
  // The soundness oracle for the parallel solver and the transfer cache:
  // every random program is analyzed with the parallel strategy (thread
  // counts cycling through 1, 2 and 8) and the memoizing transfer cache,
  // and the concrete final state observed by the interpreter must stay
  // inside the computed intervals. Every fourth seed is additionally
  // re-analyzed with the serial recursive strategy and no cache, and the
  // forward invariants must be identical at every supergraph node — the
  // parallel strategy is bit-equal to the recursive one by construction.
  const unsigned Threads[] = {1, 2, 8};
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    ProgramGenerator Gen(Seed * 6271);
    std::string Source = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);

    auto A = analyzeProgram(Source, withOptions()
                                        .strategy(IterationStrategy::Parallel)
                                        .threads(Threads[Seed % 3])
                                        .transferCache(true));
    ASSERT_TRUE(A.FE.SemaOk);

    Interpreter I(A.FE.Program);
    Interpreter::Options RunOpts;
    RunOpts.MaxSteps = 500000;
    Interpreter::Result Res = I.run(RunOpts);
    ASSERT_EQ(Res.St, Interpreter::Status::Ok) << Res.Error;

    std::istringstream Values(Res.Output);
    unsigned ExitNode = A.node("", "exit of gen");
    for (int V = 0; V < 5; ++V) {
      int64_t Concrete = 0;
      ASSERT_TRUE(static_cast<bool>(Values >> Concrete)) << Res.Output;
      const VarDecl *Var = A.var("", "v" + std::to_string(V));
      Interval Abstract = A.fwdInt(ExitNode, Var);
      EXPECT_TRUE(Abstract.contains(Concrete))
          << "v" << V << " = " << Concrete << " not in "
          << A.An->storeOps().domain().str(Abstract);
    }

    if (Seed % 4 == 0) {
      auto B = reanalyze(A, withOptions().transferCache(false));
      const StoreOps &Ops = B->storeOps();
      for (unsigned Node = 0; Node < B->graph().numNodes(); ++Node) {
        EXPECT_TRUE(Ops.equal(A.An->forwardAt(Node), B->forwardAt(Node)))
            << "forward invariant differs at node " << Node;
        EXPECT_TRUE(Ops.equal(A.An->envelopeAt(Node), B->envelopeAt(Node)))
            << "envelope differs at node " << Node;
      }
    }
  }
}

} // namespace
