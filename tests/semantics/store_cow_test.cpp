//===- tests/semantics/store_cow_test.cpp - COW store invariants ----------===//
//
// The copy-on-write store suite: aliasing (mutation after a copy never
// leaks into the sibling), moved-from safety, agreement of the
// pointer-equality fast paths with deep comparison, payload-stability of
// the delta-aware lattice ops, hash memoization — plus a 200-seed
// differential battery that replays random operation sequences against a
// reference reimplementation of the seed's map-based store semantics and
// asserts bit-identical results.
//
//===----------------------------------------------------------------------===//

#include "semantics/AbstractStore.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace syntox;

namespace {

class StoreCowTest : public ::testing::Test {
protected:
  StoreCowTest() : Ops(D) {
    for (int I = 0; I < 8; ++I)
      Ints.push_back(Ctx.create<VarDecl>(SourceLoc(),
                                         "i" + std::to_string(I),
                                         Ctx.integerType(), VarKind::Local));
    for (int I = 0; I < 2; ++I)
      Bools.push_back(Ctx.create<VarDecl>(SourceLoc(),
                                          "b" + std::to_string(I),
                                          Ctx.booleanType(), VarKind::Local));
  }

  AbstractStore makeStore(int64_t Base) {
    AbstractStore S;
    for (size_t I = 0; I < Ints.size(); ++I)
      S.set(Ints[I], AbsValue(Interval(Base, Base + static_cast<int64_t>(I))));
    return S;
  }

  AstContext Ctx;
  IntervalDomain D;
  StoreOps Ops;
  std::vector<VarDecl *> Ints, Bools;
};

//===----------------------------------------------------------------------===//
// Aliasing
//===----------------------------------------------------------------------===//

TEST_F(StoreCowTest, CopySharesPayload) {
  AbstractStore A = makeStore(0);
  AbstractStore B = A;
  EXPECT_TRUE(A.samePayload(B));
  EXPECT_EQ(A.numEntries(), B.numEntries());
  EXPECT_TRUE(Ops.equal(A, B));
}

TEST_F(StoreCowTest, MutationAfterCopyNeverLeaksIntoSibling) {
  AbstractStore A = makeStore(0);
  AbstractStore B = A;
  B.set(Ints[0], AbsValue(Interval(100, 200)));
  EXPECT_FALSE(A.samePayload(B));
  EXPECT_EQ(Ops.get(A, Ints[0]).asInt(), Interval(0, 0));
  EXPECT_EQ(Ops.get(B, Ints[0]).asInt(), Interval(100, 200));

  // Mutating the *original* must not leak into the copy either.
  AbstractStore C = B;
  B.forget(Ints[1]);
  EXPECT_TRUE(C.hasEntry(Ints[1]));
  EXPECT_FALSE(B.hasEntry(Ints[1]));

  // And an exclusively-owned store mutates in place (no detach).
  const void *Id = B.payloadIdentity();
  B.set(Ints[2], AbsValue(Interval(7, 7)));
  EXPECT_EQ(B.payloadIdentity(), Id);
}

TEST_F(StoreCowTest, ChainedCopiesIsolateCorrectly) {
  AbstractStore A = makeStore(0);
  AbstractStore B = A;
  AbstractStore C = B;
  C.set(Ints[3], AbsValue(Interval(-5, 5)));
  EXPECT_TRUE(A.samePayload(B));
  EXPECT_FALSE(A.samePayload(C));
  EXPECT_EQ(Ops.get(A, Ints[3]).asInt(), Interval(0, 3));
  EXPECT_EQ(Ops.get(B, Ints[3]).asInt(), Interval(0, 3));
  EXPECT_EQ(Ops.get(C, Ints[3]).asInt(), Interval(-5, 5));
}

TEST_F(StoreCowTest, MovedFromStoreIsSafe) {
  AbstractStore A = makeStore(0);
  AbstractStore B = std::move(A);
  EXPECT_EQ(Ops.get(B, Ints[0]).asInt(), Interval(0, 0));
  // The moved-from store must be a valid (top) store: readable,
  // writable, comparable.
  EXPECT_TRUE(A.isTop()); // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(A.hasEntry(Ints[0]));
  EXPECT_TRUE(Ops.equal(A, AbstractStore::top()));
  A.set(Ints[0], AbsValue(Interval(1, 2)));
  EXPECT_EQ(Ops.get(A, Ints[0]).asInt(), Interval(1, 2));
  EXPECT_EQ(Ops.get(B, Ints[0]).asInt(), Interval(0, 0));
}

TEST_F(StoreCowTest, SetBottomDropsThePayload) {
  AbstractStore A = makeStore(0);
  AbstractStore B = A;
  B.setBottom();
  EXPECT_TRUE(B.isBottom());
  EXPECT_EQ(B.payloadIdentity(), nullptr);
  EXPECT_EQ(Ops.get(A, Ints[0]).asInt(), Interval(0, 0));
}

//===----------------------------------------------------------------------===//
// Fast-path agreement
//===----------------------------------------------------------------------===//

TEST_F(StoreCowTest, PointerFastPathAgreesWithDeepEqual) {
  AbstractStore A = makeStore(0);
  AbstractStore Shared = A;             // pointer-equal
  AbstractStore Rebuilt = makeStore(0); // deep-equal, distinct payload
  ASSERT_TRUE(A.samePayload(Shared));
  ASSERT_FALSE(A.samePayload(Rebuilt));
  EXPECT_TRUE(Ops.equal(A, Shared));
  EXPECT_TRUE(Ops.equal(A, Rebuilt));
  EXPECT_TRUE(Ops.leq(A, Shared));
  EXPECT_TRUE(Ops.leq(A, Rebuilt));
  EXPECT_EQ(Ops.hash(A), Ops.hash(Rebuilt));

  // A diverged-then-restored sibling is deep-equal again even though the
  // payloads stay distinct.
  AbstractStore C = A;
  C.set(Ints[0], AbsValue(Interval(9, 9)));
  EXPECT_FALSE(Ops.equal(A, C));
  C.set(Ints[0], AbsValue(Interval(0, 0)));
  EXPECT_FALSE(A.samePayload(C));
  EXPECT_TRUE(Ops.equal(A, C));
  EXPECT_EQ(Ops.hash(A), Ops.hash(C));
}

TEST_F(StoreCowTest, ExplicitTopEntryEqualsMissingEntry) {
  AbstractStore Empty;
  AbstractStore WithTop;
  WithTop.set(Ints[0], AbsValue(D.top()));
  WithTop.set(Bools[0], AbsValue(BoolLattice::top()));
  EXPECT_TRUE(Ops.equal(Empty, WithTop));
  EXPECT_TRUE(Ops.equal(WithTop, Empty));
  EXPECT_EQ(Ops.hash(Empty), Ops.hash(WithTop));
  EXPECT_TRUE(Ops.leq(Empty, WithTop));
  EXPECT_TRUE(Ops.leq(WithTop, Empty));
}

//===----------------------------------------------------------------------===//
// Payload stability of the delta-aware ops
//===----------------------------------------------------------------------===//

TEST_F(StoreCowTest, ConvergedOpsReturnTheInputPayload) {
  AbstractStore A = makeStore(0);
  AbstractStore Narrower = makeStore(0); // distinct payload, equal content
  Narrower.set(Ints[0], AbsValue(Interval(0, 0))); // still equal

  // join(A, X) == A when X adds nothing: the result must *be* A.
  EXPECT_TRUE(Ops.join(A, Narrower).samePayload(A));
  // Symmetric case: A absorbed into the second operand.
  AbstractStore Wider = makeStore(0);
  Wider.set(Ints[0], AbsValue(Interval(-10, 10)));
  EXPECT_TRUE(Ops.join(A, Wider).samePayload(Wider));

  // Stable widening returns the first operand.
  EXPECT_TRUE(Ops.widen(A, Narrower).samePayload(A));
  // meet(A, X) == A when A already implies X.
  EXPECT_TRUE(Ops.meet(A, Narrower).samePayload(A));
  // narrow(A, X) == A when X refines no omega bound of A.
  AbstractStore Bounded = makeStore(0); // nothing at omega to refine
  EXPECT_TRUE(Ops.narrow(Bounded, Bounded).samePayload(Bounded));
  AbstractStore SameAgain = makeStore(0);
  EXPECT_TRUE(Ops.narrow(Bounded, SameAgain).samePayload(Bounded));

  // Sanity: when the result genuinely differs, a fresh payload appears.
  AbstractStore Grown = makeStore(-1);
  AbstractStore J = Ops.join(A, Grown);
  EXPECT_FALSE(J.samePayload(A));
  EXPECT_FALSE(J.samePayload(Grown));
  EXPECT_EQ(Ops.get(J, Ints[0]).asInt(), Interval(-1, 0));
}

TEST_F(StoreCowTest, HashIsMemoizedInTheSharedPayload) {
  AbstractStore A = makeStore(0);
  uint64_t H = Ops.hash(A);
  EXPECT_EQ(H, Ops.hash(A));
  // A copy shares the memoized hash (same payload, no rehash needed for
  // a different answer to even be possible).
  AbstractStore B = A;
  EXPECT_EQ(H, Ops.hash(B));
  // Mutation invalidates only the mutated store's hash.
  B.set(Ints[0], AbsValue(Interval(5, 5)));
  EXPECT_NE(Ops.hash(B), H);
  EXPECT_EQ(Ops.hash(A), H);
}

//===----------------------------------------------------------------------===//
// Differential battery vs. the seed's map-based semantics
//===----------------------------------------------------------------------===//

/// A reference store: the seed's `std::map<const VarDecl*, AbsValue>`
/// representation with the lattice operations transcribed from the seed
/// implementation. The COW store must be observationally identical.
struct RefStore {
  std::map<const VarDecl *, AbsValue> Values;
  bool IsBottom = false;
};

class RefOps {
public:
  explicit RefOps(const StoreOps &Ops) : Ops(Ops), D(Ops.domain()) {}

  AbsValue get(const RefStore &S, const VarDecl *V) const {
    if (S.IsBottom)
      return V->type()->isBoolean() ? AbsValue(BoolLattice::bottom())
                                    : AbsValue(Interval::bottom());
    auto It = S.Values.find(V);
    return It != S.Values.end() ? It->second : Ops.topFor(V);
  }

  bool leq(const RefStore &A, const RefStore &B) const {
    if (A.IsBottom)
      return true;
    if (B.IsBottom)
      return false;
    for (const auto &[V, BV] : B.Values) {
      auto It = A.Values.find(V);
      const AbsValue &AV = It != A.Values.end() ? It->second : Ops.topFor(V);
      if (!Ops.leqValues(AV, BV))
        return false;
    }
    return true;
  }

  bool equal(const RefStore &A, const RefStore &B) const {
    return leq(A, B) && leq(B, A);
  }

  RefStore join(const RefStore &A, const RefStore &B) const {
    if (A.IsBottom)
      return B;
    if (B.IsBottom)
      return A;
    RefStore Out;
    for (const auto &[V, AV] : A.Values) {
      auto It = B.Values.find(V);
      if (It == B.Values.end())
        continue;
      AbsValue J = Ops.joinValues(AV, It->second);
      if (!Ops.leqValues(Ops.topFor(V), J))
        Out.Values.emplace(V, std::move(J));
    }
    return Out;
  }

  RefStore meet(const RefStore &A, const RefStore &B) const {
    if (A.IsBottom || B.IsBottom)
      return RefStore{{}, true};
    RefStore Out = A;
    for (const auto &[V, BV] : B.Values) {
      auto It = Out.Values.find(V);
      AbsValue M =
          It == Out.Values.end() ? BV : Ops.meetValues(It->second, BV);
      if (M.isBottom())
        return RefStore{{}, true};
      Out.Values[V] = std::move(M);
    }
    return Out;
  }

  RefStore widen(const RefStore &A, const RefStore &B) const {
    if (A.IsBottom)
      return B;
    if (B.IsBottom)
      return A;
    RefStore Out;
    for (const auto &[V, AV] : A.Values) {
      auto It = B.Values.find(V);
      if (It == B.Values.end())
        continue;
      if (AV.isInt()) {
        Interval W = D.widen(AV.asInt(), It->second.asInt());
        if (!D.leq(D.top(), W))
          Out.Values.emplace(V, AbsValue(W));
      } else {
        BoolLattice W = AV.asBool().join(It->second.asBool());
        if (!W.isTop())
          Out.Values.emplace(V, AbsValue(W));
      }
    }
    return Out;
  }

  RefStore narrow(const RefStore &A, const RefStore &B) const {
    if (A.IsBottom || B.IsBottom)
      return RefStore{{}, true};
    RefStore Out;
    for (const auto &[V, AV] : A.Values) {
      auto It = B.Values.find(V);
      if (It == B.Values.end()) {
        Out.Values.emplace(V, AV);
        continue;
      }
      AbsValue N = AV.isInt()
                       ? AbsValue(D.narrow(AV.asInt(), It->second.asInt()))
                       : AbsValue(AV.asBool().meet(It->second.asBool()));
      if (N.isBottom())
        return RefStore{{}, true};
      Out.Values.emplace(V, std::move(N));
    }
    for (const auto &[V, BV] : B.Values) {
      if (Out.Values.count(V) || A.Values.count(V))
        continue;
      if (BV.isBottom())
        return RefStore{{}, true};
      Out.Values.emplace(V, BV);
    }
    return Out;
  }

  void assign(RefStore &S, const VarDecl *V, const AbsValue &Value) const {
    if (S.IsBottom)
      return;
    if (Value.isBottom()) {
      S.IsBottom = true;
      S.Values.clear();
      return;
    }
    if (Ops.leqValues(Ops.topFor(V), Value))
      S.Values.erase(V);
    else
      S.Values[V] = Value;
  }

  void refine(RefStore &S, const VarDecl *V, const AbsValue &Value) const {
    if (S.IsBottom)
      return;
    AbsValue M = Ops.meetValues(get(S, V), Value);
    if (M.isBottom()) {
      S.IsBottom = true;
      S.Values.clear();
      return;
    }
    assign(S, V, M);
  }

private:
  const StoreOps &Ops;
  const IntervalDomain &D;
};

class StoreDifferentialTest : public StoreCowTest {
protected:
  /// Asserts the COW store and the reference store are observationally
  /// identical: bottom flag and the value of every variable.
  void expectSame(const AbstractStore &S, const RefStore &R, RefOps &Ref,
                  unsigned Seed) {
    ASSERT_EQ(S.isBottom(), R.IsBottom) << "seed " << Seed;
    auto CheckVar = [&](const VarDecl *V) {
      AbsValue New = Ops.get(S, V), Old = Ref.get(R, V);
      ASSERT_EQ(New.kind(), Old.kind()) << "seed " << Seed;
      ASSERT_TRUE(New == Old)
          << "seed " << Seed << " var " << V->name() << ": cow="
          << (New.isInt() ? D.str(New.asInt()) : New.asBool().str())
          << " ref="
          << (Old.isInt() ? D.str(Old.asInt()) : Old.asBool().str());
    };
    for (VarDecl *V : Ints)
      CheckVar(V);
    for (VarDecl *V : Bools)
      CheckVar(V);
  }
};

TEST_F(StoreDifferentialTest, RandomOpSequencesMatchSeedSemantics200Seeds) {
  RefOps Ref(Ops);
  for (unsigned Seed = 0; Seed < 200; ++Seed) {
    std::mt19937 Rng(Seed);
    auto RandInt = [&](int64_t Lo, int64_t Hi) {
      return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
    };
    auto RandValue = [&](const VarDecl *V) -> AbsValue {
      if (V->type()->isBoolean()) {
        switch (RandInt(0, 3)) {
        case 0:
          return AbsValue(BoolLattice::top());
        case 1:
          return AbsValue(BoolLattice::bottom());
        case 2:
          return AbsValue(BoolLattice(true));
        default:
          return AbsValue(BoolLattice(false));
        }
      }
      // Occasionally produce unbounded and empty intervals.
      switch (RandInt(0, 9)) {
      case 0:
        return AbsValue(D.top());
      case 1:
        return AbsValue(Interval::bottom());
      case 2:
        return AbsValue(D.make(D.minValue(), RandInt(-50, 50)));
      case 3:
        return AbsValue(D.make(RandInt(-50, 50), D.maxValue()));
      default: {
        int64_t Lo = RandInt(-50, 50);
        return AbsValue(Interval(Lo, Lo + RandInt(0, 40)));
      }
      }
    };
    auto RandVar = [&]() -> VarDecl * {
      if (RandInt(0, 4) == 0)
        return Bools[RandInt(0, static_cast<int64_t>(Bools.size()) - 1)];
      return Ints[RandInt(0, static_cast<int64_t>(Ints.size()) - 1)];
    };

    // A small population of paired stores; binary ops draw two members.
    constexpr unsigned PoolSize = 4;
    std::vector<AbstractStore> Cow(PoolSize);
    std::vector<RefStore> Old(PoolSize);

    for (unsigned Step = 0; Step < 150; ++Step) {
      unsigned A = static_cast<unsigned>(RandInt(0, PoolSize - 1));
      unsigned B = static_cast<unsigned>(RandInt(0, PoolSize - 1));
      switch (RandInt(0, 7)) {
      case 0: {
        const VarDecl *V = RandVar();
        AbsValue Val = RandValue(V);
        Ops.assign(Cow[A], V, Val);
        Ref.assign(Old[A], V, Val);
        break;
      }
      case 1: {
        const VarDecl *V = RandVar();
        AbsValue Val = RandValue(V);
        Ops.refine(Cow[A], V, Val);
        Ref.refine(Old[A], V, Val);
        break;
      }
      case 2: {
        const VarDecl *V = RandVar();
        Cow[A].forget(V);
        if (!Old[A].IsBottom)
          Old[A].Values.erase(V);
        break;
      }
      case 3:
        Cow[A] = Ops.join(Cow[A], Cow[B]);
        Old[A] = Ref.join(Old[A], Old[B]);
        break;
      case 4:
        Cow[A] = Ops.meet(Cow[A], Cow[B]);
        Old[A] = Ref.meet(Old[A], Old[B]);
        break;
      case 5:
        Cow[A] = Ops.widen(Cow[A], Cow[B]);
        Old[A] = Ref.widen(Old[A], Old[B]);
        break;
      case 6:
        Cow[A] = Ops.narrow(Cow[A], Cow[B]);
        Old[A] = Ref.narrow(Old[A], Old[B]);
        break;
      default:
        // COW copy through the pool: the aliasing the solver performs.
        Cow[A] = Cow[B];
        Old[A] = Old[B];
        break;
      }
      expectSame(Cow[A], Old[A], Ref, Seed);
      // Cross-pair ordering must agree too (this exercises leq/equal on
      // stores with unrelated payload histories).
      ASSERT_EQ(Ops.leq(Cow[A], Cow[B]), Ref.leq(Old[A], Old[B]))
          << "seed " << Seed;
      ASSERT_EQ(Ops.equal(Cow[A], Cow[B]), Ref.equal(Old[A], Old[B]))
          << "seed " << Seed;
    }
  }
}

TEST_F(StoreDifferentialTest, HashAgreesWithReferenceEquality) {
  // equal stores must hash equal, whatever their payload history. Run a
  // small randomized search for pairs that are equal and check.
  RefOps Ref(Ops);
  std::mt19937 Rng(7);
  auto RandInt = [&](int64_t Lo, int64_t Hi) {
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
  };
  for (int Trial = 0; Trial < 500; ++Trial) {
    AbstractStore A, B;
    for (VarDecl *V : Ints) {
      if (RandInt(0, 1)) {
        int64_t Lo = RandInt(-5, 5);
        Interval X(Lo, Lo + RandInt(0, 3));
        if (RandInt(0, 1))
          A.set(V, AbsValue(X));
        if (RandInt(0, 1))
          B.set(V, AbsValue(X));
      }
    }
    if (Ops.equal(A, B)) {
      EXPECT_EQ(Ops.hash(A), Ops.hash(B));
    }
  }
}

} // namespace
